# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lang")
subdirs("sema")
subdirs("cfg")
subdirs("dataflow")
subdirs("pdg")
subdirs("bytecode")
subdirs("compiler")
subdirs("vm")
subdirs("log")
subdirs("trace")
subdirs("pardyn")
subdirs("core")
subdirs("tools")
