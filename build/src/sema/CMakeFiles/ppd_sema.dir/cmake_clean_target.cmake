file(REMOVE_RECURSE
  "libppd_sema.a"
)
