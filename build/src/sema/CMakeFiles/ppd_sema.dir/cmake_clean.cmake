file(REMOVE_RECURSE
  "CMakeFiles/ppd_sema.dir/Accesses.cpp.o"
  "CMakeFiles/ppd_sema.dir/Accesses.cpp.o.d"
  "CMakeFiles/ppd_sema.dir/CallGraph.cpp.o"
  "CMakeFiles/ppd_sema.dir/CallGraph.cpp.o.d"
  "CMakeFiles/ppd_sema.dir/ProgramDatabase.cpp.o"
  "CMakeFiles/ppd_sema.dir/ProgramDatabase.cpp.o.d"
  "CMakeFiles/ppd_sema.dir/Sema.cpp.o"
  "CMakeFiles/ppd_sema.dir/Sema.cpp.o.d"
  "libppd_sema.a"
  "libppd_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
