# Empty dependencies file for ppd_sema.
# This may be replaced when dependencies are built.
