# Empty dependencies file for ppd_support.
# This may be replaced when dependencies are built.
