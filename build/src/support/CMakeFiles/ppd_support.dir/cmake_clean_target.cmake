file(REMOVE_RECURSE
  "libppd_support.a"
)
