file(REMOVE_RECURSE
  "CMakeFiles/ppd_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/ppd_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/ppd_support.dir/DotWriter.cpp.o"
  "CMakeFiles/ppd_support.dir/DotWriter.cpp.o.d"
  "CMakeFiles/ppd_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/ppd_support.dir/SourceLoc.cpp.o.d"
  "libppd_support.a"
  "libppd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
