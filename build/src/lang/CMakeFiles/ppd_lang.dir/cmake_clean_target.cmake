file(REMOVE_RECURSE
  "libppd_lang.a"
)
