# Empty dependencies file for ppd_lang.
# This may be replaced when dependencies are built.
