file(REMOVE_RECURSE
  "CMakeFiles/ppd_lang.dir/Ast.cpp.o"
  "CMakeFiles/ppd_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/ppd_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/ppd_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/ppd_lang.dir/Lexer.cpp.o"
  "CMakeFiles/ppd_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/ppd_lang.dir/Parser.cpp.o"
  "CMakeFiles/ppd_lang.dir/Parser.cpp.o.d"
  "libppd_lang.a"
  "libppd_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
