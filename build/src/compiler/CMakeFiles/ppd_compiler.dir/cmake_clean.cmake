file(REMOVE_RECURSE
  "CMakeFiles/ppd_compiler.dir/CodeGen.cpp.o"
  "CMakeFiles/ppd_compiler.dir/CodeGen.cpp.o.d"
  "CMakeFiles/ppd_compiler.dir/Compiler.cpp.o"
  "CMakeFiles/ppd_compiler.dir/Compiler.cpp.o.d"
  "CMakeFiles/ppd_compiler.dir/EBlockPartition.cpp.o"
  "CMakeFiles/ppd_compiler.dir/EBlockPartition.cpp.o.d"
  "libppd_compiler.a"
  "libppd_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
