file(REMOVE_RECURSE
  "libppd_compiler.a"
)
