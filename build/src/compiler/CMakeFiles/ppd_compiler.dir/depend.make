# Empty dependencies file for ppd_compiler.
# This may be replaced when dependencies are built.
