file(REMOVE_RECURSE
  "libppd_pdg.a"
)
