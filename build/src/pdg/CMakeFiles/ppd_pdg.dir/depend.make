# Empty dependencies file for ppd_pdg.
# This may be replaced when dependencies are built.
