file(REMOVE_RECURSE
  "CMakeFiles/ppd_pdg.dir/ControlDependence.cpp.o"
  "CMakeFiles/ppd_pdg.dir/ControlDependence.cpp.o.d"
  "CMakeFiles/ppd_pdg.dir/SimplifiedStaticGraph.cpp.o"
  "CMakeFiles/ppd_pdg.dir/SimplifiedStaticGraph.cpp.o.d"
  "CMakeFiles/ppd_pdg.dir/StaticPdg.cpp.o"
  "CMakeFiles/ppd_pdg.dir/StaticPdg.cpp.o.d"
  "libppd_pdg.a"
  "libppd_pdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_pdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
