file(REMOVE_RECURSE
  "CMakeFiles/ppd_core.dir/Controller.cpp.o"
  "CMakeFiles/ppd_core.dir/Controller.cpp.o.d"
  "CMakeFiles/ppd_core.dir/DeadlockAnalyzer.cpp.o"
  "CMakeFiles/ppd_core.dir/DeadlockAnalyzer.cpp.o.d"
  "CMakeFiles/ppd_core.dir/DebugSession.cpp.o"
  "CMakeFiles/ppd_core.dir/DebugSession.cpp.o.d"
  "CMakeFiles/ppd_core.dir/DynamicGraph.cpp.o"
  "CMakeFiles/ppd_core.dir/DynamicGraph.cpp.o.d"
  "CMakeFiles/ppd_core.dir/GraphBuilder.cpp.o"
  "CMakeFiles/ppd_core.dir/GraphBuilder.cpp.o.d"
  "CMakeFiles/ppd_core.dir/Replay.cpp.o"
  "CMakeFiles/ppd_core.dir/Replay.cpp.o.d"
  "libppd_core.a"
  "libppd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
