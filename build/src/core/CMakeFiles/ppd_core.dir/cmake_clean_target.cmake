file(REMOVE_RECURSE
  "libppd_core.a"
)
