# Empty dependencies file for ppd.
# This may be replaced when dependencies are built.
