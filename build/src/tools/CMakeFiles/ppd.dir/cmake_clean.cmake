file(REMOVE_RECURSE
  "CMakeFiles/ppd.dir/ppd.cpp.o"
  "CMakeFiles/ppd.dir/ppd.cpp.o.d"
  "ppd"
  "ppd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
