file(REMOVE_RECURSE
  "libppd_pardyn.a"
)
