file(REMOVE_RECURSE
  "CMakeFiles/ppd_pardyn.dir/ParallelDynamicGraph.cpp.o"
  "CMakeFiles/ppd_pardyn.dir/ParallelDynamicGraph.cpp.o.d"
  "CMakeFiles/ppd_pardyn.dir/RaceDetector.cpp.o"
  "CMakeFiles/ppd_pardyn.dir/RaceDetector.cpp.o.d"
  "libppd_pardyn.a"
  "libppd_pardyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_pardyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
