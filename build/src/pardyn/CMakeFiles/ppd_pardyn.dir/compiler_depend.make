# Empty compiler generated dependencies file for ppd_pardyn.
# This may be replaced when dependencies are built.
