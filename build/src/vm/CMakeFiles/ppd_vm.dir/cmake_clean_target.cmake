file(REMOVE_RECURSE
  "libppd_vm.a"
)
