# Empty compiler generated dependencies file for ppd_vm.
# This may be replaced when dependencies are built.
