file(REMOVE_RECURSE
  "CMakeFiles/ppd_vm.dir/Machine.cpp.o"
  "CMakeFiles/ppd_vm.dir/Machine.cpp.o.d"
  "libppd_vm.a"
  "libppd_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
