file(REMOVE_RECURSE
  "CMakeFiles/ppd_log.dir/ExecutionLog.cpp.o"
  "CMakeFiles/ppd_log.dir/ExecutionLog.cpp.o.d"
  "libppd_log.a"
  "libppd_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
