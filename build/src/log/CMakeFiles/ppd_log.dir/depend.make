# Empty dependencies file for ppd_log.
# This may be replaced when dependencies are built.
