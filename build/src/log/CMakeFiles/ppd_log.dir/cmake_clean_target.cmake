file(REMOVE_RECURSE
  "libppd_log.a"
)
