file(REMOVE_RECURSE
  "CMakeFiles/ppd_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/ppd_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/ppd_cfg.dir/Dominators.cpp.o"
  "CMakeFiles/ppd_cfg.dir/Dominators.cpp.o.d"
  "libppd_cfg.a"
  "libppd_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
