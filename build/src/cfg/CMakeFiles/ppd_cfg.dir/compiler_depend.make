# Empty compiler generated dependencies file for ppd_cfg.
# This may be replaced when dependencies are built.
