file(REMOVE_RECURSE
  "libppd_cfg.a"
)
