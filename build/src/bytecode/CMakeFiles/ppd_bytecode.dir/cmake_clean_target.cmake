file(REMOVE_RECURSE
  "libppd_bytecode.a"
)
