# Empty compiler generated dependencies file for ppd_bytecode.
# This may be replaced when dependencies are built.
