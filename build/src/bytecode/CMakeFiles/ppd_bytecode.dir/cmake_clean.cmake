file(REMOVE_RECURSE
  "CMakeFiles/ppd_bytecode.dir/Chunk.cpp.o"
  "CMakeFiles/ppd_bytecode.dir/Chunk.cpp.o.d"
  "libppd_bytecode.a"
  "libppd_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
