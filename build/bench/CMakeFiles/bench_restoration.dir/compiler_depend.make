# Empty compiler generated dependencies file for bench_restoration.
# This may be replaced when dependencies are built.
