# Empty compiler generated dependencies file for bench_varset.
# This may be replaced when dependencies are built.
