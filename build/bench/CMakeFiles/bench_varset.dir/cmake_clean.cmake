file(REMOVE_RECURSE
  "CMakeFiles/bench_varset.dir/bench_varset.cpp.o"
  "CMakeFiles/bench_varset.dir/bench_varset.cpp.o.d"
  "bench_varset"
  "bench_varset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_varset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
