file(REMOVE_RECURSE
  "CMakeFiles/bench_flowback.dir/bench_flowback.cpp.o"
  "CMakeFiles/bench_flowback.dir/bench_flowback.cpp.o.d"
  "bench_flowback"
  "bench_flowback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flowback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
