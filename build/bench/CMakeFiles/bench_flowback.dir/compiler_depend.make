# Empty compiler generated dependencies file for bench_flowback.
# This may be replaced when dependencies are built.
