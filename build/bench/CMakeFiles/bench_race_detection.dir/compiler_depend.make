# Empty compiler generated dependencies file for bench_race_detection.
# This may be replaced when dependencies are built.
