file(REMOVE_RECURSE
  "CMakeFiles/bench_tracing_vs_logging.dir/bench_tracing_vs_logging.cpp.o"
  "CMakeFiles/bench_tracing_vs_logging.dir/bench_tracing_vs_logging.cpp.o.d"
  "bench_tracing_vs_logging"
  "bench_tracing_vs_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracing_vs_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
