# Empty compiler generated dependencies file for bench_tracing_vs_logging.
# This may be replaced when dependencies are built.
