file(REMOVE_RECURSE
  "CMakeFiles/bench_eblock_granularity.dir/bench_eblock_granularity.cpp.o"
  "CMakeFiles/bench_eblock_granularity.dir/bench_eblock_granularity.cpp.o.d"
  "bench_eblock_granularity"
  "bench_eblock_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eblock_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
