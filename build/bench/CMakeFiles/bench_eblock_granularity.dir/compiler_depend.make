# Empty compiler generated dependencies file for bench_eblock_granularity.
# This may be replaced when dependencies are built.
