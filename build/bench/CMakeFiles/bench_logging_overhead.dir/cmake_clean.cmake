file(REMOVE_RECURSE
  "CMakeFiles/bench_logging_overhead.dir/bench_logging_overhead.cpp.o"
  "CMakeFiles/bench_logging_overhead.dir/bench_logging_overhead.cpp.o.d"
  "bench_logging_overhead"
  "bench_logging_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logging_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
