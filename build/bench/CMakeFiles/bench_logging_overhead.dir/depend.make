# Empty dependencies file for bench_logging_overhead.
# This may be replaced when dependencies are built.
