
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_logging_overhead.cpp" "bench/CMakeFiles/bench_logging_overhead.dir/bench_logging_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_logging_overhead.dir/bench_logging_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ppd_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pardyn/CMakeFiles/ppd_pardyn.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/ppd_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/ppd_log.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/ppd_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/ppd_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ppd_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/ppd_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ppd_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ppd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
