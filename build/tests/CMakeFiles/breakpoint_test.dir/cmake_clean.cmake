file(REMOVE_RECURSE
  "CMakeFiles/breakpoint_test.dir/breakpoint_test.cpp.o"
  "CMakeFiles/breakpoint_test.dir/breakpoint_test.cpp.o.d"
  "breakpoint_test"
  "breakpoint_test.pdb"
  "breakpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
