file(REMOVE_RECURSE
  "CMakeFiles/pdg_test.dir/pdg_test.cpp.o"
  "CMakeFiles/pdg_test.dir/pdg_test.cpp.o.d"
  "pdg_test"
  "pdg_test.pdb"
  "pdg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
