# Empty dependencies file for pdg_test.
# This may be replaced when dependencies are built.
