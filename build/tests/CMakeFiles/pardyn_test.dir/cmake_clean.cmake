file(REMOVE_RECURSE
  "CMakeFiles/pardyn_test.dir/pardyn_test.cpp.o"
  "CMakeFiles/pardyn_test.dir/pardyn_test.cpp.o.d"
  "pardyn_test"
  "pardyn_test.pdb"
  "pardyn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardyn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
