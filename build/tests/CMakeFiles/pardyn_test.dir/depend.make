# Empty dependencies file for pardyn_test.
# This may be replaced when dependencies are built.
