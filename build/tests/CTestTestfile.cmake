# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/pdg_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/pardyn_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/breakpoint_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
