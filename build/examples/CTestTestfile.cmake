# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_compile_fig41 "/root/repo/build/src/tools/ppd" "compile" "/root/repo/examples/programs/fig41.ppl" "--dump-db")
set_tests_properties(cli_compile_fig41 PROPERTIES  PASS_REGULAR_EXPRESSION "2 function.*2 e-block" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_run_fig41 "/root/repo/build/src/tools/ppd" "run" "/root/repo/examples/programs/fig41.ppl")
set_tests_properties(cli_run_fig41 PROPERTIES  PASS_REGULAR_EXPRESSION "\\[p0\\] 6" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_run_bounded_buffer "/root/repo/build/src/tools/ppd" "run" "/root/repo/examples/programs/bounded_buffer.ppl" "--seed" "5")
set_tests_properties(cli_run_bounded_buffer PROPERTIES  PASS_REGULAR_EXPRESSION "-- completed" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_races_bank "/root/repo/build/src/tools/ppd" "races" "/root/repo/examples/programs/bank_race.ppl")
set_tests_properties(cli_races_bank PROPERTIES  PASS_REGULAR_EXPRESSION "race on shared variable 'balance'" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_races_clean "/root/repo/build/src/tools/ppd" "races" "/root/repo/examples/programs/bounded_buffer.ppl")
set_tests_properties(cli_races_clean PROPERTIES  PASS_REGULAR_EXPRESSION "race-free" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_deadlock "/root/repo/build/src/tools/ppd" "run" "/root/repo/examples/programs/deadlock.ppl")
set_tests_properties(cli_deadlock PROPERTIES  PASS_REGULAR_EXPRESSION "DEADLOCK.*wait-for cycle" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;41;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_crash_report "/root/repo/build/src/tools/ppd" "run" "/root/repo/examples/programs/crash.ppl")
set_tests_properties(cli_crash_report PROPERTIES  PASS_REGULAR_EXPRESSION "FAILED: process 0: divide by zero" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;45;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_breakpoint "/root/repo/build/src/tools/ppd" "run" "/root/repo/examples/programs/fig41.ppl" "--break" "15")
set_tests_properties(cli_breakpoint PROPERTIES  PASS_REGULAR_EXPRESSION "BREAKPOINT: process 0.*line 15" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;49;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_debug_piped "bash" "-c" "printf 'where 0\\nback\\nstats\\nquit\\n' | /root/repo/build/src/tools/ppd debug /root/repo/examples/programs/crash.ppl")
set_tests_properties(cli_debug_piped PROPERTIES  PASS_REGULAR_EXPRESSION "int z = d - 4" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;54;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_debug_expand_and_races "bash" "-c" "printf 'where 0\\nraces\\nlist\\nquit\\n' | /root/repo/build/src/tools/ppd debug /root/repo/examples/programs/bank_race.ppl")
set_tests_properties(cli_debug_expand_and_races PROPERTIES  PASS_REGULAR_EXPRESSION "race on shared variable 'balance'.*\\(x" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;60;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_compile_dump_ir "/root/repo/build/src/tools/ppd" "compile" "/root/repo/examples/programs/fig41.ppl" "--dump-ir")
set_tests_properties(cli_compile_dump_ir PROPERTIES  PASS_REGULAR_EXPRESSION "== main \\[object\\] ==.*Prelog" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;66;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_compile_dump_simplified "/root/repo/build/src/tools/ppd" "compile" "/root/repo/examples/programs/bounded_buffer.ppl" "--dump-simplified")
set_tests_properties(cli_compile_dump_simplified PROPERTIES  PASS_REGULAR_EXPRESSION "digraph \"simplified_static_produce\"" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;71;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_leaf_inheritance_flag "/root/repo/build/src/tools/ppd" "compile" "/root/repo/examples/programs/fig41.ppl" "--leaf-inheritance")
set_tests_properties(cli_leaf_inheritance_flag PROPERTIES  PASS_REGULAR_EXPRESSION "1 e-block" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;76;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/src/tools/ppd" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;81;add_test;/root/repo/examples/CMakeLists.txt;0;")
