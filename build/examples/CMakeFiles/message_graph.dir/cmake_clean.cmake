file(REMOVE_RECURSE
  "CMakeFiles/message_graph.dir/message_graph.cpp.o"
  "CMakeFiles/message_graph.dir/message_graph.cpp.o.d"
  "message_graph"
  "message_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
