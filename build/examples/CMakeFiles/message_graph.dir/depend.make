# Empty dependencies file for message_graph.
# This may be replaced when dependencies are built.
