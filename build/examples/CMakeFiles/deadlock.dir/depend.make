# Empty dependencies file for deadlock.
# This may be replaced when dependencies are built.
