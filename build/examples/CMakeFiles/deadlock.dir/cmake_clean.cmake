file(REMOVE_RECURSE
  "CMakeFiles/deadlock.dir/deadlock.cpp.o"
  "CMakeFiles/deadlock.dir/deadlock.cpp.o.d"
  "deadlock"
  "deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
