file(REMOVE_RECURSE
  "CMakeFiles/sync_units.dir/sync_units.cpp.o"
  "CMakeFiles/sync_units.dir/sync_units.cpp.o.d"
  "sync_units"
  "sync_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
