# Empty dependencies file for sync_units.
# This may be replaced when dependencies are built.
