//===- tests/replay_test.cpp - Incremental-tracing replay tests -----------===//
//
// Part of PPD test suite: replay fidelity (postlog verification), nested
// interval skipping (Fig 5.2), unit-log restoration under concurrency
// (§5.5), failure reproduction, what-if overrides (§5.7).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/Replay.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Replays every completed interval of every process and asserts the
/// replayed final values match the logged postlogs — the §5.5 validity
/// property of incremental tracing on race-free executions.
void expectAllIntervalsReplayFaithfully(const Ran &R) {
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  unsigned Replayed = 0;
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid) {
    for (const LogInterval &Interval : Index.intervals(Pid)) {
      if (Interval.PostlogRecord == InvalidId)
        continue;
      ReplayResult Res = Engine.replay(R.Log, Pid, Interval);
      EXPECT_TRUE(Res.Ok) << "pid " << Pid << " interval " << Interval.Index
                          << ": " << Res.Error;
      EXPECT_FALSE(Res.Partial);
      EXPECT_TRUE(Res.PostlogMismatches.empty())
          << "pid " << Pid << " interval " << Interval.Index << " var "
          << (Res.PostlogMismatches.empty()
                  ? 0u
                  : Res.PostlogMismatches[0].Var);
      ++Replayed;
    }
  }
  EXPECT_GT(Replayed, 0u);
}

TEST(ReplayTest, SequentialProgramReplaysFaithfully) {
  auto R = runProgram(R"(
func main() {
  int i = 0;
  int sum = 0;
  while (i < 10) {
    if (i % 2 == 0) sum = sum + i;
    i = i + 1;
  }
  print(sum);
}
)");
  expectAllIntervalsReplayFaithfully(R);
}

TEST(ReplayTest, EventsMatchExecution) {
  auto R = runProgram("func main() { int x = 3; int y = x * 2; print(y); }");
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;

  // Three statement events: the two declarations and the print.
  ASSERT_EQ(Res.Events.Events.size(), 3u);
  EXPECT_EQ(Res.Events.Events[0].Writes.size(), 1u);
  EXPECT_EQ(Res.Events.Events[0].Writes[0].Value, 3);
  EXPECT_EQ(Res.Events.Events[1].Reads.size(), 1u);
  EXPECT_EQ(Res.Events.Events[1].Reads[0].Value, 3);
  EXPECT_EQ(Res.Events.Events[1].Writes[0].Value, 6);
  EXPECT_EQ(Res.Events.Events[2].Reads[0].Value, 6);
  EXPECT_EQ(Res.Output.size(), 1u);
  EXPECT_EQ(Res.Output[0].Value, 6);
}

TEST(ReplayTest, PredicateEventsCarryBranchOutcomes) {
  auto R = runProgram(
      "func main() { int x = 5; if (x > 3) print(1); else print(2); }");
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  const TraceEvent *Predicate = nullptr;
  for (const TraceEvent &E : Res.Events.Events)
    if (E.IsPredicate)
      Predicate = &E;
  ASSERT_NE(Predicate, nullptr);
  EXPECT_TRUE(Predicate->BranchTaken);
}

TEST(ReplayTest, NestedCallSkippedWithPostlogApplied) {
  auto R = runProgram(R"(
shared int sv;
func bump(int d) { sv = sv + d; return sv; }
func main() {
  sv = 10;
  int got = bump(5);
  print(got + sv);
}
)");
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  // main's interval is interval 0; bump's nested interval follows.
  const LogInterval &Main = Index.intervals(0)[0];
  ASSERT_EQ(Main.Depth, 0u);
  ReplayResult Res = Engine.replay(R.Log, 0, Main);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.PostlogMismatches.empty());

  // The call appears as a CallSkipped event with the logged return value.
  const TraceEvent *Skipped = nullptr;
  for (const TraceEvent &E : Res.Events.Events)
    if (E.Kind == TraceEventKind::CallSkipped)
      Skipped = &E;
  ASSERT_NE(Skipped, nullptr);
  EXPECT_EQ(Skipped->Value, 15);
  ASSERT_EQ(Skipped->Args.size(), 1u);
  EXPECT_EQ(Skipped->Args[0], 5);
  // And the print saw got + sv = 15 + 15.
  ASSERT_EQ(Res.Output.size(), 1u);
  EXPECT_EQ(Res.Output[0].Value, 30);
}

TEST(ReplayTest, NestedIntervalReplaysIndependently) {
  auto R = runProgram(R"(
shared int sv;
func bump(int d) { sv = sv + d; return sv; }
func main() {
  sv = 10;
  print(bump(5));
}
)");
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  // Find bump's interval (depth 1).
  const LogInterval *Nested = nullptr;
  for (const LogInterval &Interval : Index.intervals(0))
    if (Interval.Depth == 1)
      Nested = &Interval;
  ASSERT_NE(Nested, nullptr);
  ReplayResult Res = Engine.replay(R.Log, 0, *Nested);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.PostlogMismatches.empty());
  EXPECT_TRUE(Res.HasReturn);
  EXPECT_EQ(Res.ReturnValue, 15);
}

TEST(ReplayTest, InheritedLeafReexecutesInline) {
  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = true;
  auto R = runProgram(R"(
func leaf(int x) { return x * x; }
func main() { print(leaf(7)); }
)",
                      1, {}, COpts);
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;

  bool SawBegin = false, SawEnd = false, SawSkipped = false;
  for (const TraceEvent &E : Res.Events.Events) {
    SawBegin |= E.Kind == TraceEventKind::CallBegin;
    SawEnd |= E.Kind == TraceEventKind::CallEnd;
    SawSkipped |= E.Kind == TraceEventKind::CallSkipped;
  }
  EXPECT_TRUE(SawBegin && SawEnd)
      << "unlogged leaves replay inline with full detail";
  EXPECT_FALSE(SawSkipped);
  EXPECT_EQ(Res.Output[0].Value, 49);
}

TEST(ReplayTest, FailureReproducedAtSameStatement) {
  auto R = runProgram(R"(
func main() {
  int d = 4;
  int z = d - 4;
  print(d / z);
}
)",
                      1, {}, {}, /*ExpectCompleted=*/false);
  ASSERT_EQ(int(R.Result.Outcome), int(RunResult::Status::Failed));
  LogIndex Index(R.Log);
  const LogInterval *Open = Index.lastOpenInterval(0);
  ASSERT_NE(Open, nullptr) << "failure leaves the interval open";

  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, *Open);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.FailureHit);
  EXPECT_EQ(int(Res.Failure.Kind), int(R.Result.Error.Kind));
  EXPECT_EQ(Res.Failure.Stmt, R.Result.Error.Stmt);
}

TEST(ReplayTest, SharedValuesRestoredFromUnitLogs) {
  // The child reads sv *after* synchronizing; its replay must see the
  // value main wrote, via the unit log, not the stale prelog value.
  auto R = runProgram(R"(
shared int sv;
sem ready;
chan result;
func child() {
  P(ready);
  send(result, sv * 10);
}
func main() {
  spawn child();
  sv = 7;
  V(ready);
  print(recv(result));
}
)");
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{70}));
  expectAllIntervalsReplayFaithfully(R);

  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 1, Index.intervals(1)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  // The send's value expression read sv = 7.
  bool SawRead7 = false;
  for (const TraceEvent &E : Res.Events.Events)
    for (const TraceAccess &A : E.Reads)
      SawRead7 |= A.Value == 7;
  EXPECT_TRUE(SawRead7);
}

TEST(ReplayTest, RecvValuesComeFromLog) {
  auto R = runProgram(R"(
chan c[2];
func sender() { send(c, 123); }
func main() {
  spawn sender();
  print(recv(c) + 1);
}
)");
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{124}));
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.Output[0].Value, 124);
}

TEST(ReplayTest, InputValuesComeFromLog) {
  MachineOptions MOpts;
  MOpts.ProcessInputs = {{41}};
  auto R = runProgram("func main() { print(input() + 1); }", 1, MOpts);
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.Output[0].Value, 42);
}

TEST(ReplayTest, WhatIfOverrideChangesOutcome) {
  auto R = runProgram(R"(
func main() {
  int x = 10;
  if (x > 5) print(111);
  else print(222);
}
)");
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);

  // Find x's VarId.
  VarId X = varNamed(*R.Prog->Symbols, "x");
  ReplayOptions Options;
  // Event 0 is `int x = 10`; change x before event 1 (the if).
  Options.Overrides.push_back({1, X, -1, 2});
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0], Options);
  ASSERT_FALSE(Res.Output.empty());
  EXPECT_EQ(Res.Output[0].Value, 222)
      << "the what-if run takes the other branch (§5.7)";
}

TEST(ReplayTest, LoopEBlocksReplaySegmentsIndependently) {
  CompileOptions COpts;
  COpts.EBlocks.LoopBlocks = true;
  auto R = runProgram(R"(
func main() {
  int i = 0;
  int sum = 0;
  while (i < 6) { sum = sum + i; i = i + 1; }
  print(sum);
}
)",
                      1, {}, COpts);
  LogIndex Index(R.Log);
  // Three sequential intervals: pre-loop, loop, post-loop.
  ASSERT_EQ(Index.intervals(0).size(), 3u);
  for (const LogInterval &Interval : Index.intervals(0))
    EXPECT_EQ(Interval.Depth, 0u) << "segments are siblings, not nested";

  ReplayEngine Engine(*R.Prog);
  // Replaying only the *post-loop* segment must not re-execute the loop:
  // few instructions, and the print value is right.
  ReplayResult Post = Engine.replay(R.Log, 0, Index.intervals(0)[2]);
  ASSERT_TRUE(Post.Ok) << Post.Error;
  ASSERT_EQ(Post.Output.size(), 1u);
  EXPECT_EQ(Post.Output[0].Value, 15);
  EXPECT_LT(Post.Instructions, 20u);

  // The loop segment replays faithfully too.
  ReplayResult Loop = Engine.replay(R.Log, 0, Index.intervals(0)[1]);
  ASSERT_TRUE(Loop.Ok) << Loop.Error;
  EXPECT_TRUE(Loop.PostlogMismatches.empty());
}

// Property sweep: across seeds and a workload mixing semaphores, channels,
// nested calls and loops, every completed interval replays faithfully.
class ReplayFidelityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayFidelityTest, AllIntervalsFaithfulAcrossSchedules) {
  auto R = runProgram(R"(
shared int account;
sem lock = 1;
chan done;
func deposit(int amount) {
  P(lock);
  account = account + amount;
  V(lock);
  return account;
}
func worker(int n) {
  int i = 0;
  int last = 0;
  for (i = 0; i < n; i = i + 1) last = deposit(i + 1);
  send(done, last);
}
func main() {
  spawn worker(5);
  spawn worker(5);
  int a = recv(done);
  int b = recv(done);
  print(account);
}
)",
                      GetParam());
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{30}));
  expectAllIntervalsReplayFaithfully(R);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayFidelityTest,
                         ::testing::Values(1, 2, 3, 5, 11, 17, 23, 31));


TEST(ReplayTest, LoopEBlockWithSyncOpsInsideReplaysFaithfully) {
  // The critical interaction: a loop that is its own e-block *and*
  // synchronizes every iteration — unit logs must re-seed shared values
  // inside the loop region's replay.
  CompileOptions COpts;
  COpts.EBlocks.LoopBlocks = true;
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
sem done;
func other() {
  int i = 0;
  for (i = 0; i < 8; i = i + 1) {
    P(m);
    sv = sv + 10;
    V(m);
  }
  V(done);
}
func main() {
  spawn other();
  int j = 0;
  int acc = 0;
  while (j < 8) {
    P(m);
    sv = sv + 1;
    acc = acc + sv;
    V(m);
    j = j + 1;
  }
  P(done);
  print(acc);
}
)",
                      7, {}, COpts);
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  unsigned LoopIntervals = 0;
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid) {
    for (const LogInterval &Interval : Index.intervals(Pid)) {
      if (Interval.PostlogRecord == InvalidId)
        continue;
      if (R.Prog->eblock(Interval.EBlock).Kind == EBlockKind::Loop)
        ++LoopIntervals;
      ReplayResult Res = Engine.replay(R.Log, Pid, Interval);
      ASSERT_TRUE(Res.Ok) << "pid " << Pid << ": " << Res.Error;
      EXPECT_TRUE(Res.PostlogMismatches.empty())
          << "pid " << Pid << " interval " << Interval.Index;
    }
  }
  EXPECT_GE(LoopIntervals, 2u) << "both processes had loop e-blocks";
}

TEST(ReplayTest, WhatIfDivergenceIsFlagged) {
  // Overriding the loop bound changes the number of input() consumptions:
  // the run leaves the logged record path and must say so.
  MachineOptions MOpts;
  MOpts.ProcessInputs = {{10, 20, 30}};
  auto R = runProgram(R"(
func main() {
  int n = 3;
  int i = 0;
  int acc = 0;
  for (i = 0; i < n; i = i + 1) acc = acc + input();
  print(acc);
}
)",
                      1, MOpts);
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{60}));
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  VarId N = varNamed(*R.Prog->Symbols, "n");
  ReplayOptions Options;
  Options.Overrides.push_back({1, N, -1, 5}); // ask for 5 inputs; only 3 logged
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0], Options);
  EXPECT_TRUE(Res.Diverged);
}

//===----------------------------------------------------------------------===//
// Replay-service determinism (the §5.5 independence property, exploited):
// the same flowback query answered serially, from the cache, and fanned
// across a thread pool must produce bit-identical traces and graphs.
//===----------------------------------------------------------------------===//

/// Everything a flowback query materializes: per-interval event streams
/// plus the spliced dynamic-graph edges.
struct ReplayedWorld {
  std::vector<std::vector<TraceEvent>> Streams;
  std::vector<std::tuple<int, DynNodeId, DynNodeId, VarId, int>> Edges;
  uint64_t EngineReplays = 0;
  uint64_t CacheHits = 0;
};

/// Traces every completed interval of every process through a controller
/// configured with \p Threads workers, resolves all cross-process reads,
/// and snapshots the result. \p QueryTwice re-asks the replay service for
/// every interval afterwards, so the answers must come from the cache.
ReplayedWorld replayWorld(const Ran &R, unsigned Threads, bool QueryTwice) {
  PpdControllerOptions Opts;
  Opts.Service.Threads = Threads;
  PpdController C(*R.Prog, R.Log, Opts);

  std::vector<ParallelReplayer::IntervalRef> All;
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid)
    for (const LogInterval &Interval : C.logIndex().intervals(Pid))
      if (Interval.PostlogRecord != InvalidId)
        All.push_back({Pid, Interval.Index});

  C.ensureIntervals(All);
  C.resolveAllCrossReads();

  ReplayedWorld World;
  for (const auto &[Pid, IntervalIdx] : All) {
    const ReplayResult *Res = C.replayOf(Pid, IntervalIdx);
    EXPECT_NE(Res, nullptr) << "pid " << Pid << " interval " << IntervalIdx;
    if (QueryTwice && Res) {
      ParallelReplayer::ReplayPtr Again =
          C.replayService().get(Pid, IntervalIdx);
      EXPECT_TRUE(Again && Again->Events.Events == Res->Events.Events)
          << "cached answer differs for pid " << Pid << " interval "
          << IntervalIdx;
    }
    World.Streams.push_back(Res ? Res->Events.Events
                                : std::vector<TraceEvent>{});
  }
  for (const DynEdge &E : C.graph().edges())
    World.Edges.push_back(
        {int(E.Kind), E.From, E.To, E.Var, int(E.Branch)});
  World.EngineReplays = C.replayService().stats().EngineReplays;
  World.CacheHits = C.replayService().stats().Cache.Hits;
  return World;
}

class ReplayDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayDeterminismTest, SerialCachedParallelBitIdentical) {
  auto R = runProgram(R"(
shared int account;
sem lock = 1;
chan done;
func deposit(int amount) {
  P(lock);
  account = account + amount;
  V(lock);
  return account;
}
func worker(int n) {
  int i = 0;
  int last = 0;
  for (i = 0; i < n; i = i + 1) last = deposit(i + 1);
  send(done, last);
}
func main() {
  spawn worker(4);
  spawn worker(4);
  int a = recv(done);
  int b = recv(done);
  print(account);
}
)",
                      GetParam());
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{20}));

  ReplayedWorld Serial = replayWorld(R, 0, /*QueryTwice=*/false);
  ReplayedWorld Cached = replayWorld(R, 0, /*QueryTwice=*/true);
  ReplayedWorld Parallel = replayWorld(R, 4, /*QueryTwice=*/false);

  // The cached pass answered its repeats from the cache, not the engine.
  EXPECT_EQ(Cached.EngineReplays, Serial.EngineReplays);
  EXPECT_GT(Cached.CacheHits, 0u);

  ASSERT_EQ(Serial.Streams.size(), Cached.Streams.size());
  ASSERT_EQ(Serial.Streams.size(), Parallel.Streams.size());
  for (size_t I = 0; I != Serial.Streams.size(); ++I) {
    EXPECT_EQ(Serial.Streams[I], Cached.Streams[I]) << "stream " << I;
    EXPECT_EQ(Serial.Streams[I], Parallel.Streams[I]) << "stream " << I;
  }
  EXPECT_EQ(Serial.Edges, Cached.Edges);
  EXPECT_EQ(Serial.Edges, Parallel.Edges);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminismTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 13, 17, 23, 29, 31));

TEST(ReplayTest, WhatIfOnLoggedPathDoesNotDiverge) {
  auto R = runProgram("func main() { int x = 4; print(x * 2); }");
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  VarId X = varNamed(*R.Prog->Symbols, "x");
  ReplayOptions Options;
  Options.Overrides.push_back({1, X, -1, 7});
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0], Options);
  EXPECT_FALSE(Res.Diverged);
  ASSERT_EQ(Res.Output.size(), 1u);
  EXPECT_EQ(Res.Output[0].Value, 14);
}

} // namespace
