//===- tests/deadlock_test.cpp - DeadlockAnalyzer coverage ----------------===//
//
// Part of PPD test suite. The analyzer reconstructs who-holds-what from
// the execution log's sync events and walks the wait-for graph; these
// tests pin the three structural outcomes — a true cycle, a cycle-free
// deadlock (waiting on a semaphore nobody holds), and a self-wait — plus
// a sweep over generator-built deadlock-prone programs asserting every
// report is well-formed.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/DeadlockAnalyzer.h"
#include "support/Rng.h"
#include "testing/ProgramGen.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Runs \p Source expecting a deadlock, and returns the analyzer's report.
DeadlockReport analyzeDeadlock(const std::string &Source, Ran &R,
                               uint64_t Seed = 1) {
  R = runProgram(Source, Seed, {}, {}, /*ExpectCompleted=*/false);
  EXPECT_EQ(int(R.Result.Outcome), int(RunResult::Status::Deadlock));
  DeadlockAnalyzer Analyzer(*R.Prog, R.Log);
  return Analyzer.analyze(R.Result.Deadlock);
}

TEST(DeadlockTest, OppositeLockOrdersFormACycle) {
  // The handshake sems force the classic interleaving on every schedule:
  // w0 cannot attempt P(b) until w1 already holds b, and vice versa.
  Ran R;
  DeadlockReport Report = analyzeDeadlock(R"(
sem a = 1;
sem b = 1;
sem hasA = 0;
sem hasB = 0;
sem join = 0;
func w0() { P(a); V(hasA); P(hasB); P(b); V(join); }
func w1() { P(b); V(hasB); P(hasA); P(a); V(join); }
func main() { spawn w0(); spawn w1(); P(join); P(join); }
)",
                                          R);
  // main blocked on join, w0 on b, w1 on a.
  ASSERT_EQ(Report.Waits.size(), 3u);
  ASSERT_TRUE(Report.hasCycle());
  // The cycle is exactly the two workers (pids 1 and 2, spawn order) —
  // main waits on a semaphore nobody holds and must stay outside it.
  std::vector<uint32_t> Cycle = Report.Cycle;
  std::sort(Cycle.begin(), Cycle.end());
  EXPECT_EQ(Cycle, (std::vector<uint32_t>{1, 2}));
  for (const DeadlockReport::Wait &W : Report.Waits) {
    if (W.Pid == 0)
      EXPECT_TRUE(W.Holders.empty()) << "join has no holder";
    else
      ASSERT_EQ(W.Holders.size(), 1u);
  }
  std::string Text = Report.str(*R.Prog->Ast);
  EXPECT_NE(Text.find("wait-for cycle"), std::string::npos);
}

TEST(DeadlockTest, WaitWithNoHolderHasNoCycle) {
  Ran R;
  DeadlockReport Report = analyzeDeadlock(R"(
sem never = 0;
func main() { P(never); }
)",
                                          R);
  ASSERT_EQ(Report.Waits.size(), 1u);
  EXPECT_EQ(Report.Waits[0].Pid, 0u);
  EXPECT_TRUE(Report.Waits[0].Holders.empty());
  EXPECT_FALSE(Report.hasCycle());
  std::string Text = Report.str(*R.Prog->Ast);
  EXPECT_NE(Text.find("P(never)"), std::string::npos);
  EXPECT_EQ(Text.find("wait-for cycle"), std::string::npos);
}

TEST(DeadlockTest, DoubleAcquireIsASelfCycle) {
  Ran R;
  DeadlockReport Report = analyzeDeadlock(R"(
sem s = 1;
func main() { P(s); P(s); }
)",
                                          R);
  ASSERT_EQ(Report.Waits.size(), 1u);
  EXPECT_EQ(Report.Waits[0].Pid, 0u);
  // The process holds s (one acquire, no signal) and waits on it.
  EXPECT_EQ(Report.Waits[0].Holders, (std::vector<uint32_t>{0}));
  ASSERT_TRUE(Report.hasCycle());
  EXPECT_EQ(Report.Cycle, (std::vector<uint32_t>{0}));
}

/// Every deadlock the generator's deadlock-prone profile produces must
/// yield a well-formed report: waits for exactly the blocked processes,
/// holder pids in range, and any cycle drawn from the blocked set.
TEST(DeadlockTest, GeneratedDeadlocksAnalyzeCleanly) {
  unsigned Deadlocks = 0;
  for (uint64_t Seed = 1; Seed != 120; ++Seed) {
    ppd::testing::GenProgram Program = ppd::testing::generateProgram(Seed);
    if (Program.Profile != ppd::testing::GenProfile::DeadlockProne)
      continue;
    DiagnosticEngine Diags;
    auto Prog = Compiler::compile(Program.render(), CompileOptions(), Diags);
    ASSERT_TRUE(Prog != nullptr) << "seed " << Seed << ": " << Diags.str();
    MachineOptions MOpts;
    MOpts.Seed = Program.SchedSeed;
    MOpts.Quantum = Program.Quantum;
    // Same input recipe as the differential driver: deep streams of
    // small values, so input exhaustion never masks a deadlock.
    Rng InputRng(Program.SchedSeed ^ 0x9e3779b97f4a7c15ull);
    MOpts.ProcessInputs.resize(8);
    for (auto &Stream : MOpts.ProcessInputs)
      for (int I = 0; I != 16; ++I)
        Stream.push_back(int64_t(InputRng.nextBelow(97)));
    Machine M(*Prog, MOpts);
    RunResult Result = M.run();
    if (Result.Outcome != RunResult::Status::Deadlock)
      continue;
    ++Deadlocks;
    ExecutionLog Log = M.takeLog();
    DeadlockReport Report = DeadlockAnalyzer(*Prog, Log).analyze(
        Result.Deadlock);
    ASSERT_EQ(Report.Waits.size(), Result.Deadlock.Blocked.size())
        << "seed " << Seed;
    std::vector<uint32_t> BlockedPids;
    for (const DeadlockReport::Wait &W : Report.Waits) {
      BlockedPids.push_back(W.Pid);
      EXPECT_LT(W.Pid, Log.Procs.size()) << "seed " << Seed;
      for (uint32_t Holder : W.Holders)
        EXPECT_LT(Holder, Log.Procs.size()) << "seed " << Seed;
    }
    for (uint32_t Pid : Report.Cycle)
      EXPECT_NE(std::find(BlockedPids.begin(), BlockedPids.end(), Pid),
                BlockedPids.end())
          << "seed " << Seed << ": cycle member p" << Pid << " not blocked";
    // Rendering must not crash and names every blocked process.
    std::string Text = Report.str(*Prog->Ast);
    for (uint32_t Pid : BlockedPids)
      EXPECT_NE(Text.find("process " + std::to_string(Pid)),
                std::string::npos)
          << "seed " << Seed;
  }
  // The profile exists to exercise this analyzer: the sweep must actually
  // hit it. (~24 deadlock-prone seeds in range; opposite lock orders
  // deadlock on a healthy fraction of schedules.)
  EXPECT_GE(Deadlocks, 3u);
}

} // namespace
