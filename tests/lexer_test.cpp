//===- tests/lexer_test.cpp - Lexer tests ---------------------------------===//
//
// Part of PPD test suite.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace ppd;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Source) {
  DiagnosticEngine Diags;
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source, Diags))
    Out.push_back(T.Kind);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Out;
}

TEST(LexerTest, EmptyInputIsJustEof) {
  EXPECT_EQ(kinds(""), (std::vector<TokenKind>{TokenKind::Eof}));
  EXPECT_EQ(kinds("   \n\t  "), (std::vector<TokenKind>{TokenKind::Eof}));
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(kinds("func int shared sem chan if else while for return"),
            (std::vector<TokenKind>{
                TokenKind::KwFunc, TokenKind::KwInt, TokenKind::KwShared,
                TokenKind::KwSem, TokenKind::KwChan, TokenKind::KwIf,
                TokenKind::KwElse, TokenKind::KwWhile, TokenKind::KwFor,
                TokenKind::KwReturn, TokenKind::Eof}));
  EXPECT_EQ(kinds("spawn send recv print input P V"),
            (std::vector<TokenKind>{
                TokenKind::KwSpawn, TokenKind::KwSend, TokenKind::KwRecv,
                TokenKind::KwPrint, TokenKind::KwInput, TokenKind::KwP,
                TokenKind::KwV, TokenKind::Eof}));
}

TEST(LexerTest, IdentifiersVsKeywords) {
  DiagnosticEngine Diags;
  auto Tokens = lex("Px vP func_ _if", Diags);
  ASSERT_EQ(Tokens.size(), 5u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "Px");
  EXPECT_EQ(Tokens[3].Text, "_if");
}

TEST(LexerTest, IntegerLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lex("0 42 9223372036854775807", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Tokens[0].Value, 0);
  EXPECT_EQ(Tokens[1].Value, 42);
  EXPECT_EQ(Tokens[2].Value, INT64_MAX);
}

TEST(LexerTest, OverflowingLiteralDiagnosed) {
  DiagnosticEngine Diags;
  lex("9223372036854775808", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(kinds("= == != < <= > >= && || ! + - * / %"),
            (std::vector<TokenKind>{
                TokenKind::Assign, TokenKind::EqEq, TokenKind::NotEq,
                TokenKind::Less, TokenKind::LessEq, TokenKind::Greater,
                TokenKind::GreaterEq, TokenKind::AmpAmp, TokenKind::PipePipe,
                TokenKind::Bang, TokenKind::Plus, TokenKind::Minus,
                TokenKind::Star, TokenKind::Slash, TokenKind::Percent,
                TokenKind::Eof}));
}

TEST(LexerTest, CommentsAreSkipped) {
  EXPECT_EQ(kinds("a // line comment\n b /* block\n comment */ c"),
            (std::vector<TokenKind>{TokenKind::Identifier,
                                    TokenKind::Identifier,
                                    TokenKind::Identifier, TokenKind::Eof}));
}

TEST(LexerTest, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine Diags;
  lex("a /* never ends", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  DiagnosticEngine Diags;
  auto Tokens = lex("ab\n  cd", Diags);
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLoc(2, 3));
}

TEST(LexerTest, UnknownCharacterDiagnosedAndSkipped) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a @ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The '@' is skipped; lexing continues.
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, SingleAmpersandDiagnosed) {
  DiagnosticEngine Diags;
  lex("a & b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
