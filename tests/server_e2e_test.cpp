//===- tests/server_e2e_test.cpp - ppd serve over a real socket -----------===//
//
// Part of PPD test suite: end-to-end coverage of the shipped daemon. The
// test forks the real `ppd` binary (PPD_TOOL_PATH), points it at a
// program written to a temp file, speaks the wire protocol over the unix
// socket with the same ClientConnection the `ppd client` tool uses, and
// checks the full lifecycle: scripted session, pipelined queries all
// answered before a shutdown on the same connection takes effect, and a
// zero exit status after the graceful drain.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/Wire.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ppd;

namespace {

const char *E2eSource = R"(
shared int total;
func add(int v) { total = total + v; }
func main() {
  add(10);
  add(32);
  print(total);
}
)";

/// The transport flag the serve child runs with. PPD_E2E_TRANSPORT=
/// threaded re-runs this whole suite over the legacy thread-per-
/// connection loop (a CI leg), anything else uses the epoll default.
const char *transportUnderTest() {
  const char *Env = ::getenv("PPD_E2E_TRANSPORT");
  return (Env && std::string(Env) == "threaded") ? "threaded" : "epoll";
}

/// Runs one `ppd serve` child; kills it on destruction if still alive.
struct ServerProcess {
  pid_t Pid = -1;
  std::string SocketPath;
  std::string ProgramPath;
  int StdoutFd = -1; ///< read end of the child's stdout (TCP mode).
  uint16_t TcpPort = 0;

  bool start(bool WithTcp = false) {
    std::string Base = "/tmp/ppd-e2e-" + std::to_string(::getpid()) + "-" +
                       std::to_string(::rand());
    SocketPath = Base + ".sock";
    ProgramPath = Base + ".ppl";
    {
      std::ofstream Out(ProgramPath);
      if (!Out)
        return false;
      Out << E2eSource;
    }
    int Pipe[2] = {-1, -1};
    if (WithTcp && ::pipe(Pipe) != 0)
      return false;
    Pid = ::fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      if (WithTcp) {
        ::dup2(Pipe[1], 1);
        ::close(Pipe[0]);
        ::close(Pipe[1]);
      }
      // Inline request execution: frames on one connection are answered
      // strictly in order, which the pipelining assertions rely on.
      if (WithTcp)
        ::execl(PPD_TOOL_PATH, "ppd", "serve", ProgramPath.c_str(),
                "--socket", SocketPath.c_str(), "--tcp", "127.0.0.1:0",
                "--server-threads", "0", (char *)nullptr);
      else
        ::execl(PPD_TOOL_PATH, "ppd", "serve", ProgramPath.c_str(),
                "--socket", SocketPath.c_str(), "--server-threads", "0",
                "--transport", transportUnderTest(), (char *)nullptr);
      _exit(127);
    }
    if (WithTcp) {
      ::close(Pipe[1]);
      StdoutFd = Pipe[0];
    }
    return true;
  }

  /// Reads the child's stdout until the "listening on tcp HOST port N"
  /// line appears and returns N (the ephemeral port), or 0 on EOF.
  uint16_t awaitTcpPort() {
    std::string Buf;
    char C;
    while (TcpPort == 0 && ::read(StdoutFd, &C, 1) == 1) {
      if (C != '\n') {
        Buf.push_back(C);
        continue;
      }
      size_t At = Buf.find("listening on tcp ");
      size_t PortAt = Buf.rfind(" port ");
      if (At != std::string::npos && PortAt != std::string::npos)
        TcpPort = uint16_t(std::strtoul(Buf.c_str() + PortAt + 6,
                                        nullptr, 10));
      Buf.clear();
    }
    return TcpPort;
  }

  /// Polls until the server accepts a connection (it needs time to
  /// compile and run the program before listening).
  bool connectWithRetry(ClientConnection &Conn) {
    for (int Attempt = 0; Attempt != 200; ++Attempt) {
      if (Conn.connect(SocketPath))
        return true;
      int Status = 0;
      if (::waitpid(Pid, &Status, WNOHANG) == Pid) {
        Pid = -1; // died before listening
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  }

  /// Waits for exit and returns the status, or -1 on timeout (the child
  /// is then killed).
  int waitExit() {
    if (Pid < 0)
      return -1;
    for (int Attempt = 0; Attempt != 400; ++Attempt) {
      int Status = 0;
      pid_t Got = ::waitpid(Pid, &Status, WNOHANG);
      if (Got == Pid) {
        Pid = -1;
        return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return -1;
  }

  ~ServerProcess() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
    if (StdoutFd >= 0)
      ::close(StdoutFd);
    if (!SocketPath.empty())
      ::unlink(SocketPath.c_str());
    if (!ProgramPath.empty())
      ::unlink(ProgramPath.c_str());
  }
};

/// Strips the length prefix off an encoded frame.
std::vector<uint8_t> payloadOf(const Request &Req) {
  LogWriter W;
  encodeRequest(Req, W);
  return std::vector<uint8_t>(W.data() + 4, W.data() + W.size());
}

TEST(ServerE2eTest, ScriptedSessionPipelinedDrainAndCleanExit) {
  ServerProcess Server;
  ASSERT_TRUE(Server.start());

  ClientConnection Conn;
  ASSERT_TRUE(Server.connectWithRetry(Conn))
      << "server never came up on " << Server.SocketPath;

  // --- Scripted session over the client the ppd tool ships. ---
  Request Req;
  Response Resp;
  Req.Type = MsgType::OpenSession;
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  ASSERT_EQ(int(Resp.Type), int(RespType::SessionOpened));
  uint64_t Session = Resp.SessionId;
  ASSERT_NE(Session, 0u);

  Req = Request();
  Req.Type = MsgType::Query;
  Req.SessionId = Session;
  Req.Command = "restore 0 2";
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
  EXPECT_NE(Resp.Text.find("total = 42"), std::string::npos);

  Req = Request();
  Req.Type = MsgType::Stats;
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::StatsText));
  EXPECT_NE(Resp.Text.find("server: requests"), std::string::npos);

  Req = Request();
  Req.Type = MsgType::Query;
  Req.SessionId = Session + 999;
  Req.Command = "list";
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Error));
  EXPECT_EQ(int(Resp.Code), int(ErrCode::NoSuchSession));

  // --- Pipelined queries + shutdown on a raw second connection. ---
  int Fd = connectUnix(Server.SocketPath);
  ASSERT_GE(Fd, 0);
  constexpr unsigned NumPipelined = 16;
  for (unsigned I = 0; I != NumPipelined; ++I) {
    Request Q;
    Q.Type = MsgType::Query;
    Q.RequestId = 1000 + I;
    Q.SessionId = Session;
    Q.Command = "where 0";
    std::vector<uint8_t> P = payloadOf(Q);
    ASSERT_TRUE(sendFrame(Fd, P.data(), P.size()));
  }
  Request Shut;
  Shut.Type = MsgType::Shutdown;
  Shut.RequestId = 2000;
  std::vector<uint8_t> P = payloadOf(Shut);
  ASSERT_TRUE(sendFrame(Fd, P.data(), P.size()));

  // Graceful drain: every query sent ahead of the shutdown is answered,
  // in order, before the ShutdownAck — nothing accepted is dropped.
  std::string FirstText;
  for (unsigned I = 0; I != NumPipelined; ++I) {
    std::vector<uint8_t> Frame;
    ASSERT_TRUE(recvFrame(Fd, Frame)) << "response " << I << " lost";
    Response R;
    ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), R));
    ASSERT_EQ(int(R.Type), int(RespType::Result)) << "response " << I;
    EXPECT_EQ(R.RequestId, 1000 + I);
    if (I == 0)
      FirstText = R.Text;
    else
      EXPECT_EQ(R.Text, FirstText) << "identical queries, identical answers";
  }
  std::vector<uint8_t> AckFrame;
  ASSERT_TRUE(recvFrame(Fd, AckFrame));
  Response Ack;
  ASSERT_TRUE(decodeResponse(AckFrame.data(), AckFrame.size(), Ack));
  EXPECT_EQ(int(Ack.Type), int(RespType::ShutdownAck));
  EXPECT_EQ(Ack.RequestId, 2000u);
  ::close(Fd);
  Conn.disconnect();

  EXPECT_EQ(Server.waitExit(), 0) << "clean shutdown exits 0";
}

TEST(ServerE2eTest, MalformedStreamGetsErrorFrameNotCrash) {
  ServerProcess Server;
  ASSERT_TRUE(Server.start());

  ClientConnection Probe;
  ASSERT_TRUE(Server.connectWithRetry(Probe));
  Probe.disconnect();

  // A garbage (but length-sane) frame: the server answers BadFrame and
  // drops the connection without dying.
  int Fd = connectUnix(Server.SocketPath);
  ASSERT_GE(Fd, 0);
  std::vector<uint8_t> Garbage(32, 0xee);
  ASSERT_TRUE(sendFrame(Fd, Garbage.data(), Garbage.size()));
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(recvFrame(Fd, Frame));
  Response R;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), R));
  EXPECT_EQ(int(R.Type), int(RespType::Error));
  EXPECT_EQ(int(R.Code), int(ErrCode::BadFrame));
  ::close(Fd);

  // The server is still alive and serving.
  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(Server.SocketPath));
  Request Shut;
  Shut.Type = MsgType::Shutdown;
  Response Ack;
  ASSERT_TRUE(Conn.roundTrip(Shut, Ack));
  EXPECT_EQ(int(Ack.Type), int(RespType::ShutdownAck));
  Conn.disconnect();
  EXPECT_EQ(Server.waitExit(), 0);
}

TEST(ServerE2eTest, TcpListenerServesAndDrainsCleanly) {
  // `ppd serve --tcp 127.0.0.1:0` picks an ephemeral port and prints it;
  // the test parses the child's stdout for the port, then runs a full
  // session over TCP — the unix listener stays usable on the same
  // server — and shuts down over TCP.
  ServerProcess Server;
  ASSERT_TRUE(Server.start(/*WithTcp=*/true));
  uint16_t Port = Server.awaitTcpPort();
  ASSERT_NE(Port, 0) << "server never announced its TCP port";

  std::string Endpoint = "tcp:127.0.0.1:" + std::to_string(Port);
  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(Endpoint));

  Request Req;
  Response Resp;
  Req.Type = MsgType::OpenSession;
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  ASSERT_EQ(int(Resp.Type), int(RespType::SessionOpened));
  uint64_t Session = Resp.SessionId;

  Req = Request();
  Req.Type = MsgType::Query;
  Req.SessionId = Session;
  Req.Command = "restore 0 2";
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
  EXPECT_NE(Resp.Text.find("total = 42"), std::string::npos);

  // Both listeners front one server: the TCP session answers over unix.
  ClientConnection Unix;
  ASSERT_TRUE(Unix.connect(Server.SocketPath));
  Req = Request();
  Req.Type = MsgType::Query;
  Req.SessionId = Session;
  Req.Command = "where 0";
  ASSERT_TRUE(Unix.roundTrip(Req, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
  Unix.disconnect();

  Request Shut;
  Shut.Type = MsgType::Shutdown;
  ASSERT_TRUE(Conn.roundTrip(Shut, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::ShutdownAck));
  Conn.disconnect();
  EXPECT_EQ(Server.waitExit(), 0) << "clean shutdown exits 0";
}

} // namespace
