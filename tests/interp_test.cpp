//===- tests/interp_test.cpp - Decoded vs legacy engine differentials -----===//
//
// Part of PPD test suite.
//
// The execution-engine fast path (pre-decoded stream + threaded dispatch +
// mode specialization, vm/Machine.cpp runSlice and core/Replay.cpp
// runDecoded) must be observationally identical to the legacy
// one-instruction switch interpreters: same step counts, same preemption
// points, same log records down to the byte, same traces, same failures.
// This suite drives both engines across the examples/ corpus, many seeds,
// every run mode, and awkward quanta (quantum 1 splits every fused
// superinstruction at a budget boundary), and asserts full agreement. A
// golden hash fixture pins the v2 log bytes of one execution instance so
// regressions in either engine — or in the log encoder — surface even if
// both engines drift together.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Replay.h"
#include "log/LogIO.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ppd;
using namespace ppd::test;

namespace {

/// The examples/ corpus: every program ships with the repo and exercises a
/// distinct engine aspect (races, semaphores+channels, a runtime failure, a
/// deadlock, the paper's Fig 4.1).
const char *const Corpus[] = {
    "bank_race.ppl", "bounded_buffer.ppl", "crash.ppl",
    "deadlock.ppl",  "fig41.ppl",
};

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(PPD_EXAMPLES_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open corpus file " << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

StmtId stmtAtLine(const Program &P, unsigned Line) {
  for (StmtId Id = 0; Id != P.numStmts(); ++Id)
    if (P.stmt(Id)->getLoc().Line == Line && !isa<BlockStmt>(P.stmt(Id)))
      return Id;
  ADD_FAILURE() << "no statement at line " << Line;
  return InvalidId;
}

/// Everything externally observable about one machine run.
struct Observed {
  RunResult Result;
  std::vector<int64_t> Shared;
  std::vector<OutputRecord> Output;
  std::vector<TraceBuffer> Traces;
  ExecutionLog Log;
};

Observed runOnce(const CompiledProgram &Prog, const MachineOptions &MOpts) {
  Machine M(Prog, MOpts);
  Observed Out;
  Out.Result = M.run();
  Out.Shared = M.sharedMemory();
  Out.Traces = M.traces();
  Out.Log = M.takeLog();
  Out.Output = Out.Log.Output;
  return Out;
}

void expectSameOutput(const std::vector<OutputRecord> &A,
                      const std::vector<OutputRecord> &B,
                      const std::string &Label) {
  ASSERT_EQ(A.size(), B.size()) << Label;
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Pid, B[I].Pid) << Label << " output " << I;
    EXPECT_EQ(A[I].Value, B[I].Value) << Label << " output " << I;
    EXPECT_EQ(A[I].Stmt, B[I].Stmt) << Label << " output " << I;
  }
}

/// Decoded and legacy must agree on *everything*, including step counts
/// and traces — they interleave identically because preemption points are
/// preserved across fusion.
void expectEnginesAgree(const Observed &D, const Observed &L,
                        const std::string &Label) {
  EXPECT_EQ(int(D.Result.Outcome), int(L.Result.Outcome)) << Label;
  EXPECT_EQ(D.Result.Steps, L.Result.Steps) << Label;
  EXPECT_EQ(int(D.Result.Error.Kind), int(L.Result.Error.Kind)) << Label;
  EXPECT_EQ(D.Result.Error.Pid, L.Result.Error.Pid) << Label;
  EXPECT_EQ(D.Result.Error.Stmt, L.Result.Error.Stmt) << Label;
  EXPECT_EQ(D.Result.BreakPid, L.Result.BreakPid) << Label;
  EXPECT_EQ(D.Result.BreakStmt, L.Result.BreakStmt) << Label;
  EXPECT_EQ(D.Shared, L.Shared) << Label;
  expectSameOutput(D.Output, L.Output, Label);
  ASSERT_EQ(D.Traces.size(), L.Traces.size()) << Label;
  for (size_t P = 0; P != D.Traces.size(); ++P)
    EXPECT_TRUE(D.Traces[P].Events == L.Traces[P].Events)
        << Label << " trace of pid " << P;
}

std::vector<uint8_t> v2Bytes(const ExecutionLog &Log, const char *Tag) {
  std::string Path = ::testing::TempDir() + "/interp_" + Tag + ".bin";
  EXPECT_TRUE(Log.save(Path, LogFormat::V2));
  std::vector<uint8_t> Bytes;
  EXPECT_TRUE(readFileBytes(Path, Bytes));
  std::remove(Path.c_str());
  return Bytes;
}

uint64_t fnv1a(const std::vector<uint8_t> &Bytes) {
  uint64_t Hash = 1469598103934665603ull;
  for (uint8_t B : Bytes) {
    Hash ^= B;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

// The ISSUE acceptance differential: across seeds and the whole corpus,
// the fast path and the legacy engine agree in every mode, and the three
// modes agree with each other on the externally visible outcome (shared
// memory, outputs, failure). Mode-dependent fields (logs, traces) are
// compared engine-vs-engine above, not mode-vs-mode.
TEST(InterpTest, EnginesAgreeAcrossSeedsAndModes) {
  const RunMode Modes[] = {RunMode::Plain, RunMode::Logging,
                           RunMode::FullTrace};
  for (const char *Name : Corpus) {
    auto Prog = compileOk(readCorpusFile(Name));
    ASSERT_TRUE(Prog);
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      Observed PerMode[3];
      for (int M = 0; M != 3; ++M) {
        MachineOptions Decoded;
        Decoded.Seed = Seed;
        Decoded.Mode = Modes[M];
        Decoded.UseDecoded = true;
        MachineOptions Legacy = Decoded;
        Legacy.UseDecoded = false;
        std::string Label = std::string(Name) + " seed " +
                            std::to_string(Seed) + " mode " +
                            std::to_string(M);
        Observed D = runOnce(*Prog, Decoded);
        Observed L = runOnce(*Prog, Legacy);
        expectEnginesAgree(D, L, Label);
        PerMode[M] = std::move(D);
      }
      // Cross-mode: instrumentation must not change what the program
      // computes. Plain and Logging run the same object chunk, so the
      // interleaving matches exactly. FullTrace runs the emulation chunk,
      // whose extra trace instructions shift preemption boundaries — the
      // probe effect — so for the racy program only the outcome kind is
      // comparable, not the (race-dependent) final state.
      bool Racy = std::string(Name) == "bank_race.ppl";
      for (int M = 1; M != 3; ++M) {
        std::string Label = std::string(Name) + " seed " +
                            std::to_string(Seed) + " mode 0 vs " +
                            std::to_string(M);
        EXPECT_EQ(int(PerMode[0].Result.Outcome),
                  int(PerMode[M].Result.Outcome))
            << Label;
        EXPECT_EQ(int(PerMode[0].Result.Error.Kind),
                  int(PerMode[M].Result.Error.Kind))
            << Label;
        if (M == 2 && Racy)
          continue;
        EXPECT_EQ(PerMode[0].Shared, PerMode[M].Shared) << Label;
        expectSameOutput(PerMode[0].Output, PerMode[M].Output, Label);
      }
    }
  }
}

// Quantum 1 forces a preemption check between the two halves of every
// fused superinstruction; 2 and 3 land the boundary on every possible
// phase. The v2 log must still be bit-identical to the legacy engine's.
TEST(InterpTest, V2LogBytesBitIdenticalAcrossQuanta) {
  const uint32_t Quanta[] = {1, 2, 3, 8};
  for (const char *Name : Corpus) {
    auto Prog = compileOk(readCorpusFile(Name));
    ASSERT_TRUE(Prog);
    for (uint32_t Quantum : Quanta) {
      MachineOptions Decoded;
      Decoded.Seed = 7;
      Decoded.Mode = RunMode::Logging;
      Decoded.Quantum = Quantum;
      Decoded.UseDecoded = true;
      MachineOptions Legacy = Decoded;
      Legacy.UseDecoded = false;
      Observed D = runOnce(*Prog, Decoded);
      Observed L = runOnce(*Prog, Legacy);
      std::string Label =
          std::string(Name) + " quantum " + std::to_string(Quantum);
      expectEnginesAgree(D, L, Label);
      EXPECT_EQ(v2Bytes(D.Log, "decoded"), v2Bytes(L.Log, "legacy"))
          << Label;
    }
  }
}

// Golden fixture: the v2 log bytes of one pinned execution instance,
// hashed. Catches silent lockstep drift of both engines (the differential
// above can't) and any accidental change to the log encoding. If a
// *deliberate* format or instrumentation change lands, re-pin the constant
// from the test's failure message.
TEST(InterpTest, GoldenV2LogFixture) {
  auto Prog = compileOk(readCorpusFile("bounded_buffer.ppl"));
  ASSERT_TRUE(Prog);
  MachineOptions MOpts;
  MOpts.Seed = 3;
  MOpts.Mode = RunMode::Logging;
  MOpts.Quantum = 3;
  for (bool UseDecoded : {true, false}) {
    MOpts.UseDecoded = UseDecoded;
    Observed O = runOnce(*Prog, MOpts);
    EXPECT_EQ(int(O.Result.Outcome), int(RunResult::Status::Completed));
    uint64_t Hash = fnv1a(v2Bytes(O.Log, "golden"));
    EXPECT_EQ(Hash, 0x398f02cd27ee92a9ull)
        << "golden v2 log drifted (decoded=" << UseDecoded << "); actual 0x"
        << std::hex << Hash;
  }
}

// The emulation package: every interval of every process, replayed on both
// engines, must produce identical traces and final state — including open
// (postlog-less) intervals and the failing interval of crash.ppl.
TEST(InterpTest, ReplayEnginesAgreeOnEveryInterval) {
  for (const char *Name : Corpus) {
    if (std::string(Name) == "deadlock.ppl")
      continue; // no completed run to index (outcome is Deadlock)
    std::string Source = readCorpusFile(Name);
    bool Fails = std::string(Name) == "crash.ppl";
    Ran R = runProgram(Source, 5, {}, {}, /*ExpectCompleted=*/!Fails);
    ASSERT_TRUE(R.Prog);
    LogIndex Index(R.Log);
    ReplayEngine Engine(*R.Prog);
    unsigned Replayed = 0, FailuresHit = 0;
    for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid) {
      for (const LogInterval &Interval : Index.intervals(Pid)) {
        ReplayOptions Decoded;
        Decoded.Engine = ReplayEngineKind::Decoded;
        ReplayOptions Legacy;
        Legacy.Engine = ReplayEngineKind::Legacy;
        ReplayResult D = Engine.replay(R.Log, Pid, Interval, Decoded);
        ReplayResult L = Engine.replay(R.Log, Pid, Interval, Legacy);
        std::string Label = std::string(Name) + " pid " +
                            std::to_string(Pid) + " interval " +
                            std::to_string(Interval.Index);
        EXPECT_EQ(D.Ok, L.Ok) << Label;
        EXPECT_EQ(D.Partial, L.Partial) << Label;
        EXPECT_EQ(D.FailureHit, L.FailureHit) << Label;
        EXPECT_EQ(int(D.Failure.Kind), int(L.Failure.Kind)) << Label;
        EXPECT_EQ(D.Failure.Stmt, L.Failure.Stmt) << Label;
        EXPECT_EQ(D.Diverged, L.Diverged) << Label;
        EXPECT_EQ(D.Error, L.Error) << Label;
        EXPECT_EQ(D.PostlogMismatches.size(), L.PostlogMismatches.size())
            << Label;
        EXPECT_EQ(D.Instructions, L.Instructions) << Label;
        EXPECT_EQ(D.Shared, L.Shared) << Label;
        EXPECT_EQ(D.PrivateGlobals, L.PrivateGlobals) << Label;
        EXPECT_EQ(D.RootSlots, L.RootSlots) << Label;
        EXPECT_EQ(D.HasReturn, L.HasReturn) << Label;
        EXPECT_EQ(D.ReturnValue, L.ReturnValue) << Label;
        EXPECT_TRUE(D.Events.Events == L.Events.Events) << Label;
        FailuresHit += D.FailureHit;
        ++Replayed;
      }
    }
    EXPECT_GT(Replayed, 0u) << Name;
    if (Fails) {
      EXPECT_GT(FailuresHit, 0u) << "crash.ppl replay must re-hit the "
                                    "divide by zero on both engines";
    }
  }
}

// Breakpoints must fire on the same statement transition in both engines
// even at quantum 1, where the decoded loop re-enters mid-way through
// fused superinstructions.
TEST(InterpTest, BreakpointAgreesAtQuantumOne) {
  auto Prog = compileOk("shared int g;\n"
                        "func main() {\n"
                        "  int i = 0;\n"
                        "  for (i = 0; i < 10; i = i + 1)\n"
                        "    g = g + i;\n"
                        "  g = 99;\n" // line 6 ← break here
                        "}\n");
  ASSERT_TRUE(Prog);
  StmtId Break = stmtAtLine(*Prog->Ast, 6);
  MachineOptions Decoded;
  Decoded.Quantum = 1;
  Decoded.Breakpoints = {Break};
  Decoded.UseDecoded = true;
  MachineOptions Legacy = Decoded;
  Legacy.UseDecoded = false;
  Observed D = runOnce(*Prog, Decoded);
  Observed L = runOnce(*Prog, Legacy);
  ASSERT_EQ(int(D.Result.Outcome), int(RunResult::Status::Breakpoint));
  EXPECT_EQ(D.Result.BreakStmt, Break);
  expectEnginesAgree(D, L, "breakpoint at quantum 1");
  // The breakpoint halted *before* line 6 executed.
  EXPECT_EQ(D.Shared[0], 45);
}

} // namespace
