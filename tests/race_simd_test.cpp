//===- tests/race_simd_test.cpp - Vectorized race tier differentials ------===//
//
// Part of PPD test suite.
//
// The vectorized race-detection tier (SIMD set kernels + batched
// happens-before closure + sharded sweep) must produce byte-identical race
// lists to NaiveAllPairs and VarIndexed on every input: the examples/
// corpus, a fuzz sweep of generated programs, every SIMD dispatch level
// the host can run (including the forced portable fallback), any worker
// count, and the rowless closure fallback for oversized traces. This suite
// asserts all of that, plus the closure's simultaneity answers against the
// vector-clock oracle and the SIMD kernels against their portable
// reference.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pardyn/EdgeClosure.h"
#include "pardyn/ParallelDynamicGraph.h"
#include "pardyn/RaceDetector.h"
#include "support/Simd.h"
#include "support/ThreadPool.h"
#include "testing/ProgramGen.h"

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace ppd;
using namespace ppd::test;
using ppd::testing::GenProgram;
using ppd::testing::generateProgram;

namespace {

/// Restores the host-detected dispatch level when a test that forced one
/// exits (including via an assertion failure).
struct ScopedSimdLevel {
  explicit ScopedSimdLevel(simd::Level L) { simd::forceLevel(L); }
  ~ScopedSimdLevel() { simd::forceLevel(simd::detectedLevel()); }
};

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(PPD_EXAMPLES_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open corpus file " << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::string describeRace(const Race &R) {
  std::ostringstream Out;
  Out << "s" << R.SharedIdx << " p" << R.First.Pid << "e" << R.First.EndNode
      << "/p" << R.Second.Pid << "e" << R.Second.EndNode << " "
      << (R.Kind == RaceKind::WriteWrite ? "WW" : "RW");
  return Out.str();
}

/// All three algorithms over one execution instance must agree
/// element-for-element; returns the (canonical) race list.
std::vector<Race> expectAgreement(const ExecutionLog &Log,
                                  const SymbolTable &Symbols,
                                  const std::string &Label,
                                  ThreadPool *Pool = nullptr) {
  ParallelDynamicGraph Graph(Log, Symbols.NumSharedVars);
  RaceDetector Detector(Graph, Symbols);
  RaceDetectionResult Naive = Detector.detect(RaceAlgorithm::NaiveAllPairs);
  RaceDetectionResult Indexed = Detector.detect(RaceAlgorithm::VarIndexed);
  RaceDetectionResult Vec =
      Detector.detect(RaceAlgorithm::Vectorized, Pool);
  EXPECT_EQ(Naive.Races.size(), Indexed.Races.size()) << Label;
  EXPECT_EQ(Naive.Races.size(), Vec.Races.size()) << Label;
  size_t N = std::min(Naive.Races.size(),
                      std::min(Indexed.Races.size(), Vec.Races.size()));
  for (size_t I = 0; I != N; ++I) {
    EXPECT_TRUE(Naive.Races[I] == Indexed.Races[I])
        << Label << " race " << I << ": naive "
        << describeRace(Naive.Races[I]) << " vs indexed "
        << describeRace(Indexed.Races[I]);
    EXPECT_TRUE(Naive.Races[I] == Vec.Races[I])
        << Label << " race " << I << ": naive "
        << describeRace(Naive.Races[I]) << " vs vectorized "
        << describeRace(Vec.Races[I]);
  }
  return Naive.Races;
}

//===----------------------------------------------------------------------===//
// SIMD kernels: every runnable level against the portable reference.
//===----------------------------------------------------------------------===//

TEST(SimdKernelTest, AllLevelsMatchPortableReference) {
  std::mt19937_64 Rng(0x5eed);
  std::vector<simd::Level> Levels = {simd::Level::Portable,
                                     simd::detectedLevel()};
#if defined(__x86_64__)
  // An AVX2 host can also run the SSE2 bodies; exercise them too.
  if (simd::detectedLevel() == simd::Level::AVX2)
    Levels.push_back(simd::Level::SSE2);
#endif
  // Widths straddle every vector-stride boundary (AVX2 does 8-word then
  // 4-word strides, SSE2 2-word, portable 4-word unrolled).
  for (size_t Words : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
    std::vector<uint64_t> A(Words), B(Words);
    for (int Trial = 0; Trial != 8; ++Trial) {
      for (size_t I = 0; I != Words; ++I) {
        // Mix dense, sparse, and zero words so the early-exit paths and
        // the all-zero case both occur.
        A[I] = Trial % 3 == 0 ? Rng() : Rng() & Rng() & Rng();
        B[I] = Trial % 2 == 0 ? Rng() : Rng() & Rng() & Rng();
        if (Trial == 5)
          B[I] = ~A[I]; // disjoint: intersects must say false.
      }
      ScopedSimdLevel Force(simd::Level::Portable);
      bool RefNonEmpty = simd::intersectsNonEmpty(A.data(), B.data(), Words);
      uint64_t RefPop = simd::popcountWords(A.data(), Words);
      std::vector<uint64_t> RefAnd(Words), RefOr(A);
      simd::intersectInto(RefAnd.data(), A.data(), B.data(), Words);
      simd::orInto(RefOr.data(), B.data(), Words);

      for (simd::Level L : Levels) {
        simd::forceLevel(L);
        if (simd::activeLevel() != L)
          continue; // clamped: the build lacks this level's bodies.
        EXPECT_EQ(simd::intersectsNonEmpty(A.data(), B.data(), Words),
                  RefNonEmpty)
            << simd::levelName(L) << " words=" << Words;
        EXPECT_EQ(simd::popcountWords(A.data(), Words), RefPop)
            << simd::levelName(L) << " words=" << Words;
        std::vector<uint64_t> And(Words), Or(A);
        simd::intersectInto(And.data(), A.data(), B.data(), Words);
        simd::orInto(Or.data(), B.data(), Words);
        EXPECT_EQ(And, RefAnd) << simd::levelName(L) << " words=" << Words;
        EXPECT_EQ(Or, RefOr) << simd::levelName(L) << " words=" << Words;
      }
    }
  }
}

TEST(SimdKernelTest, ForceLevelClampsUnrunnableLevels) {
  ScopedSimdLevel Restore(simd::detectedLevel());
#if defined(__x86_64__)
  simd::forceLevel(simd::Level::NEON); // wrong architecture entirely.
#else
  simd::forceLevel(simd::Level::AVX2);
#endif
  EXPECT_EQ(int(simd::activeLevel()), int(simd::Level::Portable));
  simd::forceLevel(simd::Level::Portable);
  EXPECT_EQ(int(simd::activeLevel()), int(simd::Level::Portable));
}

//===----------------------------------------------------------------------===//
// EdgeClosure: bit rows and interval bounds against the vector-clock
// oracle.
//===----------------------------------------------------------------------===//

TEST(EdgeClosureTest, MatchesVectorClockOracle) {
  // Racy generated programs give graphs with real concurrency; sweep a
  // few seeds so different interleavings are covered.
  for (uint64_t Seed : {2u, 7u, 11u, 23u, 40u}) {
    GenProgram Gen = generateProgram(Seed);
    MachineOptions MOpts;
    MOpts.Quantum = Gen.Quantum;
    Ran R = runProgram(Gen.render(), Gen.SchedSeed, MOpts, {},
                       /*ExpectCompleted=*/false);
    if (!R.Prog)
      continue;
    ParallelDynamicGraph Graph(R.Log, R.Prog->Symbols->NumSharedVars);
    std::vector<EdgeRef> Edges = Graph.allEdges();
    // Rows materialized (default cap) and the rowless interval fallback
    // must both reproduce Def 6.1 exactly.
    EdgeClosure WithRows(Graph);
    EdgeClosure Rowless(Graph, /*MaxRowBytes=*/0);
    EXPECT_FALSE(Rowless.hasRows());
    for (EdgeRef A : Edges)
      for (EdgeRef B : Edges) {
        bool Oracle = Graph.simultaneous(A, B);
        uint32_t Ga = WithRows.globalId(A), Gb = WithRows.globalId(B);
        EXPECT_EQ(WithRows.simultaneous(Ga, Gb), Oracle)
            << "seed " << Seed << " rows: p" << A.Pid << "e" << A.EndNode
            << " vs p" << B.Pid << "e" << B.EndNode;
        EXPECT_EQ(Rowless.simultaneous(Ga, Gb), Oracle)
            << "seed " << Seed << " bounds: p" << A.Pid << "e" << A.EndNode
            << " vs p" << B.Pid << "e" << B.EndNode;
        EXPECT_EQ(WithRows.edgeOf(Ga), A);
      }
  }
}

//===----------------------------------------------------------------------===//
// Differential: corpus programs.
//===----------------------------------------------------------------------===//

TEST(RaceSimdDifferentialTest, ExamplesCorpus) {
  // Every shipped example, including the deliberately racy one; crash and
  // deadlock programs don't complete, which is fine — races are detected
  // over whatever log the run produced.
  const char *const Corpus[] = {
      "bank_race.ppl", "bounded_buffer.ppl", "crash.ppl",
      "deadlock.ppl",  "fig41.ppl",
  };
  bool SawRace = false;
  for (const char *Name : Corpus) {
    std::string Source = readCorpusFile(Name);
    for (uint64_t Seed : {1u, 5u, 9u}) {
      Ran R = runProgram(Source, Seed, {}, {}, /*ExpectCompleted=*/false);
      ASSERT_TRUE(R.Prog) << Name;
      std::string Label = std::string(Name) + " seed " + std::to_string(Seed);
      SawRace |= !expectAgreement(R.Log, *R.Prog->Symbols, Label).empty();
    }
  }
  // The corpus includes bank_race.ppl: at least one instance must race,
  // otherwise this differential is vacuous.
  EXPECT_TRUE(SawRace) << "no corpus instance raced; differential is vacuous";
}

//===----------------------------------------------------------------------===//
// Differential: generated-program fuzz sweep.
//===----------------------------------------------------------------------===//

TEST(RaceSimdDifferentialTest, FuzzSweep) {
  // 16 seeds spanning the generator's profiles (racy, sync-heavy,
  // channels, ...). Each runs with its derived schedule seed and quantum.
  unsigned Raced = 0;
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    GenProgram Gen = generateProgram(Seed);
    MachineOptions MOpts;
    MOpts.Quantum = Gen.Quantum;
    Ran R = runProgram(Gen.render(), Gen.SchedSeed, MOpts, {},
                       /*ExpectCompleted=*/false);
    ASSERT_TRUE(R.Prog) << "seed " << Seed;
    std::string Label = "gen seed " + std::to_string(Seed);
    Raced += !expectAgreement(R.Log, *R.Prog->Symbols, Label).empty();
  }
  EXPECT_GT(Raced, 0u) << "no generated instance raced; sweep is vacuous";
}

TEST(RaceSimdDifferentialTest, PortableFallbackAgrees) {
  // Force the portable kernels and re-run the differential: the dispatch
  // level must never change the race list.
  ScopedSimdLevel Force(simd::Level::Portable);
  ASSERT_EQ(int(simd::activeLevel()), int(simd::Level::Portable));
  for (uint64_t Seed : {2u, 3u, 7u, 13u}) {
    GenProgram Gen = generateProgram(Seed);
    MachineOptions MOpts;
    MOpts.Quantum = Gen.Quantum;
    Ran R = runProgram(Gen.render(), Gen.SchedSeed, MOpts, {},
                       /*ExpectCompleted=*/false);
    ASSERT_TRUE(R.Prog) << "seed " << Seed;
    expectAgreement(R.Log, *R.Prog->Symbols,
                    "portable gen seed " + std::to_string(Seed));
  }
}

TEST(RaceSimdDifferentialTest, ParallelSweepIsDeterministic) {
  // The sharded sweep must merge deterministically: byte-identical output
  // at any worker count, asserted against the serial run and both legacy
  // algorithms.
  ThreadPool Pool(3);
  for (uint64_t Seed : {2u, 5u, 8u, 12u}) {
    GenProgram Gen = generateProgram(Seed);
    MachineOptions MOpts;
    MOpts.Quantum = Gen.Quantum;
    Ran R = runProgram(Gen.render(), Gen.SchedSeed, MOpts, {},
                       /*ExpectCompleted=*/false);
    ASSERT_TRUE(R.Prog) << "seed " << Seed;
    std::string Label = "pooled gen seed " + std::to_string(Seed);
    expectAgreement(R.Log, *R.Prog->Symbols, Label, &Pool);

    ParallelDynamicGraph Graph(R.Log, R.Prog->Symbols->NumSharedVars);
    RaceDetector Detector(Graph, *R.Prog->Symbols);
    RaceDetectionResult Serial = Detector.detect(RaceAlgorithm::Vectorized);
    RaceDetectionResult Pooled =
        Detector.detect(RaceAlgorithm::Vectorized, &Pool);
    ASSERT_EQ(Serial.Races.size(), Pooled.Races.size()) << Label;
    for (size_t I = 0; I != Serial.Races.size(); ++I)
      EXPECT_TRUE(Serial.Races[I] == Pooled.Races[I])
          << Label << " race " << I;
    // The cost counter is schedule-independent too: both runs enumerate
    // the same candidate combinations.
    EXPECT_EQ(Serial.PairsExamined, Pooled.PairsExamined) << Label;
  }
}

TEST(RaceSimdDifferentialTest, RepeatedDetectIsIdempotent) {
  // The detector reuses member scratch between calls; repeated detection
  // on one instance must not be contaminated by earlier passes.
  std::string Source = readCorpusFile("bank_race.ppl");
  Ran R = runProgram(Source, 1, {}, {}, /*ExpectCompleted=*/false);
  ASSERT_TRUE(R.Prog);
  ParallelDynamicGraph Graph(R.Log, R.Prog->Symbols->NumSharedVars);
  RaceDetector Detector(Graph, *R.Prog->Symbols);
  RaceDetectionResult First = Detector.detect(RaceAlgorithm::Vectorized);
  for (RaceAlgorithm A : {RaceAlgorithm::NaiveAllPairs,
                          RaceAlgorithm::VarIndexed,
                          RaceAlgorithm::Vectorized}) {
    RaceDetectionResult Again = Detector.detect(A);
    ASSERT_EQ(First.Races.size(), Again.Races.size())
        << raceAlgorithmName(A);
    for (size_t I = 0; I != First.Races.size(); ++I)
      EXPECT_TRUE(First.Races[I] == Again.Races[I])
          << raceAlgorithmName(A) << " race " << I;
  }
}

TEST(RaceSimdDifferentialTest, AlgorithmNamesRoundTrip) {
  RaceAlgorithm A = RaceAlgorithm::NaiveAllPairs;
  EXPECT_TRUE(parseRaceAlgorithm("naive", A));
  EXPECT_EQ(int(A), int(RaceAlgorithm::NaiveAllPairs));
  EXPECT_TRUE(parseRaceAlgorithm("indexed", A));
  EXPECT_EQ(int(A), int(RaceAlgorithm::VarIndexed));
  EXPECT_TRUE(parseRaceAlgorithm("vectorized", A));
  EXPECT_EQ(int(A), int(RaceAlgorithm::Vectorized));
  EXPECT_FALSE(parseRaceAlgorithm("avx512", A));
  EXPECT_EQ(int(A), int(RaceAlgorithm::Vectorized)) << "Out must be untouched";
  EXPECT_STREQ(raceAlgorithmName(RaceAlgorithm::Vectorized), "vectorized");
}

} // namespace
