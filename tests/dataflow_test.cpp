//===- tests/dataflow_test.cpp - Dataflow analysis tests ------------------===//
//
// Part of PPD test suite: MOD/REF, reaching definitions, USED/DEFINED.
// Most suites are typed over both set representations (experiment E6's
// requirement that they be interchangeable).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Cfg.h"
#include "dataflow/ModRef.h"
#include "dataflow/ReachingDefs.h"
#include "dataflow/UsedDefined.h"
#include "sema/CallGraph.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

template <typename T> class ModRefTest : public ::testing::Test {};
using SetTypes = ::testing::Types<BitVarSet, ListVarSet>;
TYPED_TEST_SUITE(ModRefTest, SetTypes);

TYPED_TEST(ModRefTest, DirectEffects) {
  auto C = check(R"(
shared int sv;
int g;
func reader() { return sv; }
func writer() { g = 1; }
func main() { writer(); print(reader()); }
)");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  VarId Sv = varNamed(*C.Symbols, "sv");
  VarId G = varNamed(*C.Symbols, "g");

  const FuncDecl *Reader = C.Prog->findFunc("reader");
  const FuncDecl *Writer = C.Prog->findFunc("writer");
  EXPECT_TRUE(MR.Ref[Reader->Index].contains(Sv));
  EXPECT_TRUE(MR.Mod[Reader->Index].empty());
  EXPECT_TRUE(MR.Mod[Writer->Index].contains(G));
  EXPECT_TRUE(MR.Ref[Writer->Index].empty());
}

TYPED_TEST(ModRefTest, TransitiveThroughCalls) {
  auto C = check(R"(
shared int sv;
func inner() { sv = sv + 1; }
func outer() { inner(); }
func main() { outer(); }
)");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  VarId Sv = varNamed(*C.Symbols, "sv");
  const FuncDecl *Outer = C.Prog->findFunc("outer");
  const FuncDecl *Main = C.Prog->findFunc("main");
  EXPECT_TRUE(MR.Mod[Outer->Index].contains(Sv));
  EXPECT_TRUE(MR.Ref[Outer->Index].contains(Sv));
  EXPECT_TRUE(MR.Mod[Main->Index].contains(Sv));
}

TYPED_TEST(ModRefTest, LocalsAndParamsExcluded) {
  auto C = check("func f(int a) { int l = a * 2; return l; }\n"
                 "func main() { print(f(3)); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  const FuncDecl *F = C.Prog->findFunc("f");
  EXPECT_TRUE(MR.Mod[F->Index].empty());
  EXPECT_TRUE(MR.Ref[F->Index].empty());
}

TYPED_TEST(ModRefTest, RecursionConverges) {
  auto C = check(R"(
shared int sv;
func even(int n) { if (n == 0) return 1; return odd(n - 1); }
func odd(int n) { if (n == 0) return 0; sv = sv + 1; return even(n - 1); }
func main() { print(even(4)); }
)");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  VarId Sv = varNamed(*C.Symbols, "sv");
  // Mutual recursion: both functions mod/ref sv.
  EXPECT_TRUE(MR.Mod[C.Prog->findFunc("even")->Index].contains(Sv));
  EXPECT_TRUE(MR.Mod[C.Prog->findFunc("odd")->Index].contains(Sv));
  EXPECT_TRUE(MR.Ref[C.Prog->findFunc("even")->Index].contains(Sv));
}

TYPED_TEST(ModRefTest, SpawnEffectsNotInherited) {
  auto C = check(R"(
shared int sv;
func w() { sv = 1; }
func main() { spawn w(); }
)");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  VarId Sv = varNamed(*C.Symbols, "sv");
  EXPECT_FALSE(MR.Mod[C.Prog->findFunc("main")->Index].contains(Sv))
      << "a spawned body runs concurrently, not as part of the caller";
}

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

template <typename T> class ReachingDefsTest : public ::testing::Test {};
TYPED_TEST_SUITE(ReachingDefsTest, SetTypes);

/// Helper: the set of lines whose defs of Var reach the node of statement
/// at line UseLine (0 = ENTRY).
template <typename Set>
std::vector<unsigned> defLines(const Checked &C, const Cfg &G,
                               const ReachingDefs<Set> &RD, unsigned UseLine,
                               VarId Var) {
  CfgNodeId UseNode = InvalidId;
  for (StmtId Id = 0; Id != C.Prog->numStmts(); ++Id)
    if (C.Prog->stmt(Id)->getLoc().Line == UseLine &&
        G.nodeOf(Id) != InvalidId)
      UseNode = G.nodeOf(Id);
  EXPECT_NE(UseNode, InvalidId);
  std::vector<unsigned> Lines;
  for (unsigned DefId : RD.reachingDefsOf(UseNode, Var)) {
    const Definition &D = RD.definitions()[DefId];
    if (D.Node == Cfg::EntryId)
      Lines.push_back(0);
    else
      Lines.push_back(C.Prog->stmt(G.node(D.Node).Stmt)->getLoc().Line);
  }
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

TYPED_TEST(ReachingDefsTest, StrongKillsPriorDef) {
  auto C = check("func main() {\n"
                 "  int x = 1;\n" // line 2
                 "  x = 2;\n"     // line 3
                 "  print(x);\n"  // line 4
                 "}\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  ReachingDefs<TypeParam> RD(*C.Prog, *C.Symbols, G, MR);
  EXPECT_EQ(defLines(C, G, RD, 4, varNamed(*C.Symbols, "x")),
            (std::vector<unsigned>{3}));
}

TYPED_TEST(ReachingDefsTest, BranchMergesDefs) {
  auto C = check("func main() {\n"
                 "  int x = input();\n" // 2
                 "  if (x > 0)\n"       // 3
                 "    x = 1;\n"         // 4
                 "  else\n"
                 "    x = 2;\n"         // 6
                 "  print(x);\n"        // 7
                 "}\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  ReachingDefs<TypeParam> RD(*C.Prog, *C.Symbols, G, MR);
  EXPECT_EQ(defLines(C, G, RD, 7, varNamed(*C.Symbols, "x")),
            (std::vector<unsigned>{4, 6}));
}

TYPED_TEST(ReachingDefsTest, LoopCarriedDef) {
  auto C = check("func main() {\n"
                 "  int i = 0;\n"       // 2
                 "  while (i < 3)\n"    // 3
                 "    i = i + 1;\n"     // 4
                 "  print(i);\n"        // 5
                 "}\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  ReachingDefs<TypeParam> RD(*C.Prog, *C.Symbols, G, MR);
  VarId I = varNamed(*C.Symbols, "i");
  // Both the init and the loop-carried def reach the condition...
  EXPECT_EQ(defLines(C, G, RD, 3, I), (std::vector<unsigned>{2, 4}));
  // ...and the use after the loop.
  EXPECT_EQ(defLines(C, G, RD, 5, I), (std::vector<unsigned>{2, 4}));
}

TYPED_TEST(ReachingDefsTest, ArrayWritesAreWeak) {
  auto C = check("func main() {\n"
                 "  int a[4];\n"        // 2: strong (zero-fill)
                 "  a[0] = 1;\n"        // 3: weak
                 "  a[1] = 2;\n"        // 4: weak
                 "  print(a[0]);\n"     // 5
                 "}\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  ReachingDefs<TypeParam> RD(*C.Prog, *C.Symbols, G, MR);
  EXPECT_EQ(defLines(C, G, RD, 5, varNamed(*C.Symbols, "a")),
            (std::vector<unsigned>{2, 3, 4}));
}

TYPED_TEST(ReachingDefsTest, ParamUseReachesEntry) {
  auto C = check("func f(int p) {\n"
                 "  return p;\n" // 2
                 "}\n"
                 "func main() { print(f(1)); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  ReachingDefs<TypeParam> RD(*C.Prog, *C.Symbols, G, MR);
  EXPECT_EQ(defLines(C, G, RD, 2, varNamed(*C.Symbols, "p")),
            (std::vector<unsigned>{0}));
}

TYPED_TEST(ReachingDefsTest, CallModIsWeakDef) {
  auto C = check("shared int sv;\n"
                 "func bump() { sv = sv + 1; }\n"
                 "func main() {\n"
                 "  sv = 5;\n"      // 4: strong
                 "  bump();\n"      // 5: weak def via MOD
                 "  print(sv);\n"   // 6
                 "}\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[1]);
  ReachingDefs<TypeParam> RD(*C.Prog, *C.Symbols, G, MR);
  // Both the direct def (weakly surviving the call) and the call's MOD def
  // reach the print.
  EXPECT_EQ(defLines(C, G, RD, 6, varNamed(*C.Symbols, "sv")),
            (std::vector<unsigned>{4, 5}));
}

//===----------------------------------------------------------------------===//
// USED / DEFINED (e-block summaries)
//===----------------------------------------------------------------------===//

template <typename T> class UsedDefinedTest : public ::testing::Test {};
TYPED_TEST_SUITE(UsedDefinedTest, SetTypes);

/// Computes USED/DEFINED of a whole function as one region (the paper's
/// default: one e-block per subroutine).
template <typename Set>
RegionSummary<Set> wholeFunc(const Checked &C, const Cfg &G,
                             const ModRefResult<Set> &MR,
                             bool CalleesLogged = true) {
  std::vector<CfgNodeId> Region;
  for (CfgNodeId Id = 0; Id != G.size(); ++Id)
    Region.push_back(Id);
  return computeUsedDefined<Set>(
      *C.Prog, *C.Symbols, G, Region, Cfg::EntryId, MR,
      [CalleesLogged](const FuncDecl &) { return CalleesLogged; });
}

TYPED_TEST(UsedDefinedTest, ParamsUsedLocalsNot) {
  auto C = check("func f(int p) { int l = p + 1; return l; }\n"
                 "func main() { print(f(1)); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  auto Summary = wholeFunc<TypeParam>(C, G, MR);
  EXPECT_TRUE(Summary.Used.contains(varNamed(*C.Symbols, "p")));
  EXPECT_FALSE(Summary.Used.contains(varNamed(*C.Symbols, "l")))
      << "l is written before read: not upward-exposed, not in the prelog";
  EXPECT_TRUE(Summary.Defined.contains(varNamed(*C.Symbols, "l")));
}

TYPED_TEST(UsedDefinedTest, ReadAfterConditionalWriteIsExposed) {
  auto C = check("shared int sv;\n"
                 "func f(int p) { if (p) sv = 1; return sv; }\n"
                 "func main() { print(f(1)); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  auto Summary = wholeFunc<TypeParam>(C, G, MR);
  EXPECT_TRUE(Summary.Used.contains(varNamed(*C.Symbols, "sv")))
      << "on the p==0 path sv is read without a prior write";
}

TYPED_TEST(UsedDefinedTest, ReadAfterUnconditionalWriteNotExposed) {
  auto C = check("shared int sv;\n"
                 "func f() { sv = 7; return sv; }\n"
                 "func main() { print(f()); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  auto Summary = wholeFunc<TypeParam>(C, G, MR);
  EXPECT_FALSE(Summary.Used.contains(varNamed(*C.Symbols, "sv")));
  EXPECT_TRUE(Summary.Defined.contains(varNamed(*C.Symbols, "sv")));
}

TYPED_TEST(UsedDefinedTest, LoopReadIsExposed) {
  auto C = check("func f(int n) { int s = 0; int i = 0;\n"
                 "  while (i < n) { s = s + i; i = i + 1; } return s; }\n"
                 "func main() { print(f(3)); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  auto Summary = wholeFunc<TypeParam>(C, G, MR);
  EXPECT_TRUE(Summary.Used.contains(varNamed(*C.Symbols, "n")));
  EXPECT_FALSE(Summary.Used.contains(varNamed(*C.Symbols, "s")));
  EXPECT_FALSE(Summary.Used.contains(varNamed(*C.Symbols, "i")));
}

TYPED_TEST(UsedDefinedTest, LoggedCalleeContributesNoReads) {
  auto C = check("shared int sv;\n"
                 "func callee() { return sv; }\n"
                 "func f() { int x = callee(); return x; }\n"
                 "func main() { print(f()); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[1]);
  VarId Sv = varNamed(*C.Symbols, "sv");

  auto Logged = wholeFunc<TypeParam>(C, G, MR, /*CalleesLogged=*/true);
  EXPECT_FALSE(Logged.Used.contains(Sv))
      << "replay applies the callee's postlog; its reads are not ours";

  auto Inherited = wholeFunc<TypeParam>(C, G, MR, /*CalleesLogged=*/false);
  EXPECT_TRUE(Inherited.Used.contains(Sv))
      << "an unlogged leaf's REF is inherited by the caller (paper §5.4)";
}

TYPED_TEST(UsedDefinedTest, CalleeModAlwaysInDefined) {
  auto C = check("shared int sv;\n"
                 "func callee() { sv = 1; }\n"
                 "func f() { callee(); }\n"
                 "func main() { f(); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[1]);
  VarId Sv = varNamed(*C.Symbols, "sv");
  for (bool LoggedFlag : {true, false}) {
    auto Summary = wholeFunc<TypeParam>(C, G, MR, LoggedFlag);
    EXPECT_TRUE(Summary.Defined.contains(Sv));
  }
}

TYPED_TEST(UsedDefinedTest, LoopRegionSummary) {
  // USED/DEFINED of just the loop, as if it were its own e-block (§5.4's
  // loop e-blocks).
  auto C = check("func f(int n) {\n"
                 "  int s = 0;\n"
                 "  int i = 0;\n"
                 "  while (i < n) {\n"
                 "    s = s + i;\n"
                 "    i = i + 1;\n"
                 "  }\n"
                 "  return s;\n"
                 "}\n"
                 "func main() { print(f(4)); }\n");
  CallGraph CG(*C.Prog);
  auto MR = computeModRef<TypeParam>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);

  // Region: the while node and its body.
  std::vector<CfgNodeId> Region;
  CfgNodeId Header = InvalidId;
  for (StmtId Id = 0; Id != C.Prog->numStmts(); ++Id) {
    const Stmt *S = C.Prog->stmt(Id);
    if (G.nodeOf(Id) == InvalidId)
      continue;
    unsigned Line = S->getLoc().Line;
    if (Line >= 4 && Line <= 6) {
      Region.push_back(G.nodeOf(Id));
      if (S->getKind() == StmtKind::While)
        Header = G.nodeOf(Id);
    }
  }
  ASSERT_NE(Header, InvalidId);
  auto Summary = computeUsedDefined<TypeParam>(
      *C.Prog, *C.Symbols, G, Region, Header, MR,
      [](const FuncDecl &) { return true; });
  EXPECT_TRUE(Summary.Used.contains(varNamed(*C.Symbols, "n")));
  EXPECT_TRUE(Summary.Used.contains(varNamed(*C.Symbols, "s")));
  EXPECT_TRUE(Summary.Used.contains(varNamed(*C.Symbols, "i")));
  EXPECT_TRUE(Summary.Defined.contains(varNamed(*C.Symbols, "s")));
  EXPECT_TRUE(Summary.Defined.contains(varNamed(*C.Symbols, "i")));
  EXPECT_FALSE(Summary.Defined.contains(varNamed(*C.Symbols, "n")));
}

// Cross-representation property: both set types produce identical
// summaries on a family of generated programs.
class UsedDefinedCrossTest : public ::testing::TestWithParam<int> {};

TEST_P(UsedDefinedCrossTest, RepresentationsAgree) {
  int N = GetParam();
  std::string Source = "shared int sv;\nfunc f(int p) {\n";
  for (int I = 0; I != N; ++I) {
    Source += "  int v" + std::to_string(I) + " = p + " + std::to_string(I) +
              ";\n";
    if (I % 3 == 0)
      Source += "  if (v" + std::to_string(I) + " > 2) sv = sv + 1;\n";
  }
  Source += "  return sv;\n}\nfunc main() { print(f(1)); }\n";
  auto C = check(Source);
  ASSERT_TRUE(C.Symbols);
  CallGraph CG(*C.Prog);
  auto MRBits = computeModRef<BitVarSet>(*C.Prog, *C.Symbols, CG);
  auto MRList = computeModRef<ListVarSet>(*C.Prog, *C.Symbols, CG);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  std::vector<CfgNodeId> Region;
  for (CfgNodeId Id = 0; Id != G.size(); ++Id)
    Region.push_back(Id);
  auto True = [](const FuncDecl &) { return true; };
  auto Bits = computeUsedDefined<BitVarSet>(*C.Prog, *C.Symbols, G, Region,
                                            Cfg::EntryId, MRBits, True);
  auto List = computeUsedDefined<ListVarSet>(*C.Prog, *C.Symbols, G, Region,
                                             Cfg::EntryId, MRList, True);
  EXPECT_EQ(Bits.Used.toVector(), List.Used.toVector());
  EXPECT_EQ(Bits.Defined.toVector(), List.Defined.toVector());
}

INSTANTIATE_TEST_SUITE_P(Sizes, UsedDefinedCrossTest,
                         ::testing::Values(1, 4, 9, 16));

} // namespace
