//===- tests/fuzzdiff_test.cpp - Differential fuzzing harness tests -------===//
//
// Part of PPD test suite. Exercises the `ppd fuzz` machinery from
// src/testing/: the grammar-directed program generator (deterministic,
// always compilable), the differential oracle driver (a bounded smoke
// sweep that must stay divergence-free), and the delta-debugging
// minimizer (drives an injected predicate to a small repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "testing/DiffOracles.h"
#include "testing/Fuzzer.h"
#include "testing/Minimizer.h"
#include "testing/ProgramGen.h"

#include <gtest/gtest.h>

#include <set>

using namespace ppd;
using namespace ppd::test;
using namespace ppd::testing;

namespace {

TEST(ProgramGenTest, SameSeedSameProgram) {
  for (uint64_t Seed : {1ull, 7ull, 19ull, 101ull}) {
    GenProgram A = generateProgram(Seed);
    GenProgram B = generateProgram(Seed);
    EXPECT_EQ(A.render(), B.render()) << "seed " << Seed;
    EXPECT_EQ(A.SchedSeed, B.SchedSeed);
    EXPECT_EQ(A.Quantum, B.Quantum);
    EXPECT_EQ(int(A.Profile), int(B.Profile));
  }
}

TEST(ProgramGenTest, EverySeedCompiles) {
  for (uint64_t Seed = 1; Seed != 120; ++Seed) {
    GenProgram Program = generateProgram(Seed);
    std::string Source = Program.render();
    DiagnosticEngine Diags;
    auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
    ASSERT_TRUE(Prog != nullptr)
        << "seed " << Seed << ":\n" << Diags.str() << "\n" << Source;
  }
}

TEST(ProgramGenTest, AllProfilesReachable) {
  std::set<int> Seen;
  for (uint64_t Seed = 1; Seed != 30; ++Seed)
    Seen.insert(int(generateProgram(Seed).Profile));
  EXPECT_EQ(Seen.size(), 6u);
}

TEST(ProgramGenTest, SingleUnitRemovalsStayWellFormed) {
  // Unit-tree rendering guarantees every removal is *parse*-clean (no
  // dangling braces); deleting a still-referenced declaration may fail
  // semantic analysis, but then the compiler must answer with diagnostics
  // — that rendering is exactly what the minimizer's predicate feeds the
  // pipeline. Each mutant either compiles or names its undeclared symbol.
  GenProgram Program = generateProgram(5);
  std::vector<uint32_t> Removable = Program.removableUnits();
  ASSERT_FALSE(Removable.empty());
  unsigned StillCompile = 0;
  for (uint32_t Unit : Removable) {
    std::vector<bool> Removed(Program.Units.size(), false);
    Removed[Unit] = true;
    std::string Source = Program.render(&Removed);
    DiagnosticEngine Diags;
    auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
    if (Prog != nullptr) {
      ++StillCompile;
      continue;
    }
    EXPECT_NE(Diags.str().find("error"), std::string::npos)
        << "unit " << Unit << " failed without a diagnostic:\n" << Source;
  }
  // Most units are plain statements whose removal is harmless; only the
  // handful of referenced declarations may fail semantically.
  EXPECT_GT(StillCompile * 2, unsigned(Removable.size()));
}

TEST(MinimizerTest, ShrinksToThePredicateCore) {
  // The "bug" is the presence of a P(s0) line: the minimizer must strip
  // everything else while keeping the predicate true at every step.
  GenProgram Program = generateProgram(2); // sync-heavy: has P/V traffic
  std::string Full = Program.render();
  ASSERT_NE(Full.find("P(s0)"), std::string::npos);
  // Compilability is part of the predicate, exactly as in the fuzzer
  // (runDifferential reports a non-compiling candidate under the
  // "compile" oracle, which never matches the divergence being chased).
  unsigned Calls = 0;
  MinimizeResult Min = minimizeProgram(Program, [&](const std::string &S) {
    ++Calls;
    if (S.find("P(s0)") == std::string::npos)
      return false;
    DiagnosticEngine Diags;
    return Compiler::compile(S, CompileOptions(), Diags) != nullptr;
  });
  EXPECT_NE(Min.Source.find("P(s0)"), std::string::npos);
  EXPECT_LT(Min.Statements, GenProgram::countStatements(Full));
  EXPECT_GT(Min.UnitsRemoved, 0u);
  EXPECT_EQ(Min.PredicateCalls, Calls);
  // The predicate held at every accepted step, so the result compiles.
  DiagnosticEngine Diags;
  EXPECT_TRUE(Compiler::compile(Min.Source, CompileOptions(), Diags) !=
              nullptr)
      << Diags.str() << "\n" << Min.Source;
}

TEST(MinimizerTest, MinimumIsOneWhenAnythingMatches) {
  GenProgram Program = generateProgram(3);
  MinimizeResult Min =
      minimizeProgram(Program, [](const std::string &) { return true; });
  // An always-true predicate lets the minimizer delete every removable
  // unit; only the fixed skeleton remains.
  std::vector<bool> AllRemoved(Program.Units.size(), false);
  for (uint32_t Unit : Program.removableUnits())
    AllRemoved[Unit] = true;
  EXPECT_EQ(Min.Source, Program.render(&AllRemoved));
}

/// The PR-gate differential smoke: a bounded sweep that must be
/// divergence-free. Split into shards so ctest runs them in parallel.
class FuzzDiffSmoke : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDiffSmoke, TwentyFiveSeedsNoDivergence) {
  FuzzOptions Options;
  Options.FirstSeed = 1 + GetParam() * 25;
  Options.Runs = 25;
  Options.Minimize = false; // a failure here reports seed + oracle; the
                            // developer reruns `ppd fuzz --minimize`
  FuzzResult Result = runFuzz(Options);
  EXPECT_FALSE(Result.Failed) << summarizeFuzz(Result);
  EXPECT_EQ(Result.Stats.Runs, 25u);
}

INSTANTIATE_TEST_SUITE_P(Shards, FuzzDiffSmoke,
                         ::testing::Range(uint64_t(0), uint64_t(4)));

} // namespace
