//===- tests/partition_test.cpp - E-block partition edge cases ------------===//
//
// Part of PPD test suite: the §5.4 partitioner interacting with early
// returns, nested loops, unlogged callees containing synchronization, and
// every combination's replay fidelity.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/Replay.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

void expectFaithful(const Ran &R) {
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid)
    for (const LogInterval &Interval : Index.intervals(Pid)) {
      if (Interval.PostlogRecord == InvalidId)
        continue;
      ReplayResult Res = Engine.replay(R.Log, Pid, Interval);
      ASSERT_TRUE(Res.Ok) << "pid " << Pid << " i" << Interval.Index << ": "
                          << Res.Error;
      EXPECT_TRUE(Res.PostlogMismatches.empty())
          << "pid " << Pid << " i" << Interval.Index;
    }
}

TEST(PartitionTest, EarlyReturnInFirstSegmentSkipsLaterOnes) {
  CompileOptions COpts;
  COpts.EBlocks.LoopBlocks = true;
  auto R = runProgram(R"(
func f(int early) {
  if (early) return 111;
  int i = 0;
  int acc = 0;
  while (i < 5) { acc = acc + i; i = i + 1; }
  return acc;
}
func main() {
  print(f(1));
  print(f(0));
}
)",
                      1, {}, COpts);
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{111, 10}));

  LogIndex Index(R.Log);
  // f(1) produced only the first segment's interval (exits-function
  // postlog inside it); f(0) produced all three.
  unsigned ExitingSegments = 0, LoopIntervals = 0;
  for (const LogInterval &Interval : Index.intervals(0)) {
    if (R.Prog->eblock(Interval.EBlock).Kind == EBlockKind::Loop)
      ++LoopIntervals;
    if (Interval.ExitsFunction && Interval.Depth == 1)
      ++ExitingSegments;
  }
  EXPECT_EQ(LoopIntervals, 1u) << "only f(0) reached the loop";
  EXPECT_EQ(ExitingSegments, 2u) << "each call exits through exactly one "
                                    "exits-function postlog";
  expectFaithful(R);
}

TEST(PartitionTest, NestedLoopsOnlyTopLevelBecomesEBlock) {
  CompileOptions COpts;
  COpts.EBlocks.LoopBlocks = true;
  auto R = runProgram(R"(
func main() {
  int i = 0;
  int total = 0;
  while (i < 4) {
    int j = 0;
    while (j < 3) { total = total + 1; j = j + 1; }
    i = i + 1;
  }
  print(total);
}
)",
                      1, {}, COpts);
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{12}));
  unsigned LoopBlocks = 0;
  for (const EBlockInfo &E : R.Prog->EBlocks)
    LoopBlocks += E.Kind == EBlockKind::Loop;
  EXPECT_EQ(LoopBlocks, 1u)
      << "the inner loop stays inside the outer loop's region";
  expectFaithful(R);
}

TEST(PartitionTest, UnloggedLeafWithSyncOpsReplaysInline) {
  // The subtle §5.4/§5.5 interaction: an inherited leaf that synchronizes.
  // Its UnitLog instrumentation lives in the (unlogged) leaf and must be
  // produced by the object code and consumed by the caller's inline
  // replay.
  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = true;
  COpts.EBlocks.LeafMaxStmts = 10;
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
sem done;
func locked_add(int d) {
  P(m);
  sv = sv + d;
  V(m);
  return sv;
}
func other() {
  int k = locked_add(100);
  V(done);
}
func main() {
  spawn other();
  int a = locked_add(1);
  P(done);
  print(sv);
}
)",
                      5, {}, COpts);
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{101}));
  // locked_add is unlogged...
  EXPECT_FALSE(R.Prog->Plan.isLogged(*R.Prog->Ast->findFunc("locked_add")));
  // ...yet its unit logs exist in the object code and replay stays
  // faithful across both processes.
  expectFaithful(R);

  // The caller's replay contains the leaf's statements inline.
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  ReplayResult Res = Engine.replay(R.Log, 0, Index.intervals(0)[0]);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  bool SawLeafBody = false;
  for (const TraceEvent &E : Res.Events.Events)
    if (E.Kind == TraceEventKind::Stmt)
      for (const TraceAccess &W : E.Writes)
        SawLeafBody |= R.Prog->Symbols->var(W.Var).Name == "sv";
  EXPECT_TRUE(SawLeafBody);
}

TEST(PartitionTest, AllKnobsTogetherStayFaithfulAcrossSeeds) {
  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = true;
  COpts.EBlocks.LoopBlocks = true;
  COpts.EBlocks.SplitLargeFunctions = true;
  COpts.EBlocks.MaxSegmentStmts = 2;
  for (uint64_t Seed : {1, 9, 27}) {
    auto R = runProgram(R"(
shared int sv;
sem m = 1;
sem done;
func tiny(int x) { return x * 2; }
func worker(int n) {
  int i = 0;
  for (i = 0; i < n; i = i + 1) {
    P(m);
    sv = sv + tiny(i);
    V(m);
  }
  V(done);
}
func main() {
  spawn worker(6);
  spawn worker(6);
  P(done);
  P(done);
  print(sv);
}
)",
                        Seed, {}, COpts);
    ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{60}))
        << "seed " << Seed;
    expectFaithful(R);
  }
}

TEST(PartitionTest, FlowbackWorksThroughSegmentBoundaries) {
  // A value produced before a loop e-block and consumed after it: the
  // consumer's prelog carries it; the dependence surfaces as an edge from
  // the later segment's ENTRY (expandable to the earlier interval).
  CompileOptions COpts;
  COpts.EBlocks.LoopBlocks = true;
  auto R = runProgram(R"(
func main() {
  int seed = 37;
  int i = 0;
  int noise = 0;
  while (i < 5) { noise = noise + i; i = i + 1; }
  print(seed + noise);
}
)",
                      1, {}, COpts);
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{47}));
  PpdController Controller(*R.Prog, std::move(R.Log));
  DynNodeId Print = Controller.startAtLastEvent(0);
  ASSERT_NE(Print, InvalidId);
  // The final segment's fragment is tiny (incremental tracing!): the
  // print's reads come from its ENTRY node.
  EXPECT_LE(Controller.stats().EventsTraced, 3u);
  bool EntrySource = false;
  for (const DynEdge &E : Controller.dependencesOf(Print))
    if (E.Kind == DynEdgeKind::Data &&
        Controller.graph().node(E.From).Kind == DynNodeKind::Entry)
      EntrySource = true;
  EXPECT_TRUE(EntrySource);
}

} // namespace
