//===- tests/log_test.cpp - Log structure and serialization ---------------===//
//
// Part of PPD test suite: log-interval structure (Figs 5.1/5.2), the
// open-interval rule (§5.3), binary save/load round trips, byte-size
// accounting (experiment E2's currency).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ppd;
using namespace ppd::test;

namespace {

TEST(LogTest, NestedIntervalsMirrorCallNesting) {
  auto R = runProgram(R"(
func inner(int x) { return x + 1; }
func outer(int x) { return inner(x) * 2; }
func main() { print(outer(10)); }
)");
  LogIndex Index(R.Log);
  const auto &Intervals = Index.intervals(0);
  // main, outer, inner — one interval each.
  ASSERT_EQ(Intervals.size(), 3u);

  // Intervals are numbered by prelog order: main(0), outer(1), inner(2);
  // inner nests in outer nests in main (Fig 5.2).
  EXPECT_EQ(Intervals[0].Depth, 0u);
  EXPECT_EQ(Intervals[1].Depth, 1u);
  EXPECT_EQ(Intervals[2].Depth, 2u);
  EXPECT_EQ(Intervals[1].Parent, Intervals[0].Index);
  EXPECT_EQ(Intervals[2].Parent, Intervals[1].Index);
  for (const LogInterval &Interval : Intervals) {
    EXPECT_NE(Interval.PostlogRecord, InvalidId);
    EXPECT_LT(Interval.PrelogRecord, Interval.PostlogRecord);
    EXPECT_TRUE(Interval.ExitsFunction);
  }
  EXPECT_EQ(Index.lastOpenInterval(0), nullptr);
}

TEST(LogTest, LoopsMakeRepeatedIntervalsOfOneEBlock) {
  auto R = runProgram(R"(
func f(int x) { return x; }
func main() {
  int i = 0;
  int s = 0;
  for (i = 0; i < 4; i = i + 1) s = s + f(i);
  print(s);
}
)");
  LogIndex Index(R.Log);
  // "a given e-block of a program may have several corresponding log
  // intervals during execution" (§5.1): f's e-block has 4 intervals.
  unsigned FIntervals = 0;
  uint32_t FEBlock = InvalidId;
  for (const LogInterval &Interval : Index.intervals(0)) {
    if (Interval.Depth != 1)
      continue;
    ++FIntervals;
    if (FEBlock == InvalidId)
      FEBlock = Interval.EBlock;
    EXPECT_EQ(Interval.EBlock, FEBlock);
  }
  EXPECT_EQ(FIntervals, 4u);
}

TEST(LogTest, FailureLeavesOpenIntervalStack) {
  auto R = runProgram(R"(
func crash(int x) { int z = 0; return x / z; }
func middle(int x) { return crash(x); }
func main() { print(middle(3)); }
)",
                      1, {}, {}, /*ExpectCompleted=*/false);
  ASSERT_EQ(int(R.Result.Outcome), int(RunResult::Status::Failed));
  LogIndex Index(R.Log);
  // All three intervals are open; the *last* prelog without a postlog is
  // crash's (§5.3: where the debugging session starts).
  const LogInterval *Open = Index.lastOpenInterval(0);
  ASSERT_NE(Open, nullptr);
  EXPECT_EQ(Open->Depth, 2u);
  const EBlockInfo &EBlock = R.Prog->eblock(Open->EBlock);
  EXPECT_EQ(R.Prog->func(EBlock.Func).Name, "crash");
}

TEST(LogTest, EnclosingFindsInnermostInterval) {
  auto R = runProgram(R"(
func g(int x) { return x + 1; }
func main() { print(g(1)); }
)");
  LogIndex Index(R.Log);
  const auto &Intervals = Index.intervals(0);
  ASSERT_EQ(Intervals.size(), 2u);
  // A record inside g's span belongs to g's interval.
  uint32_t Mid =
      (Intervals[1].PrelogRecord + Intervals[1].PostlogRecord) / 2;
  const LogInterval *Enclosing = Index.enclosing(0, Mid);
  ASSERT_NE(Enclosing, nullptr);
  EXPECT_EQ(Enclosing->Index, Intervals[1].Index);
}

TEST(LogTest, SaveLoadRoundTrip) {
  MachineOptions MOpts;
  MOpts.ProcessInputs = {{5}};
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
chan c[2];
func child(int k) { P(m); sv = sv + k; V(m); send(c, k); }
func main() {
  spawn child(2);
  int got = recv(c);
  print(got + input());
}
)",
                      1, MOpts);

  std::string Path = ::testing::TempDir() + "/ppd_log_roundtrip.bin";
  ASSERT_TRUE(R.Log.save(Path));

  ExecutionLog Loaded;
  ASSERT_TRUE(ExecutionLog::load(Path, Loaded));
  ASSERT_EQ(Loaded.Procs.size(), R.Log.Procs.size());
  for (uint32_t Pid = 0; Pid != Loaded.Procs.size(); ++Pid) {
    const ProcessLog &A = R.Log.Procs[Pid];
    const ProcessLog &B = Loaded.Procs[Pid];
    EXPECT_EQ(A.RootFunc, B.RootFunc);
    EXPECT_EQ(A.Args, B.Args);
    ASSERT_EQ(A.Records.size(), B.Records.size());
    for (size_t I = 0; I != A.Records.size(); ++I) {
      EXPECT_EQ(int(A.Records[I].Kind), int(B.Records[I].Kind));
      EXPECT_EQ(A.Records[I].Id, B.Records[I].Id);
      EXPECT_EQ(A.Records[I].Value, B.Records[I].Value);
      EXPECT_EQ(A.Records[I].Seq, B.Records[I].Seq);
      EXPECT_EQ(A.Records[I].PartnerSeq, B.Records[I].PartnerSeq);
      EXPECT_EQ(A.Records[I].Vars.size(), B.Records[I].Vars.size());
      EXPECT_EQ(A.Records[I].ReadSet, B.Records[I].ReadSet);
      EXPECT_EQ(A.Records[I].WriteSet, B.Records[I].WriteSet);
    }
  }
  ASSERT_EQ(Loaded.Output.size(), R.Log.Output.size());
  for (size_t I = 0; I != Loaded.Output.size(); ++I)
    EXPECT_EQ(Loaded.Output[I].Value, R.Log.Output[I].Value);
  std::remove(Path.c_str());
}

TEST(LogTest, LoadRejectsGarbage) {
  std::string Path = ::testing::TempDir() + "/ppd_log_garbage.bin";
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("this is not a PPD log", F);
  std::fclose(F);
  ExecutionLog Loaded;
  EXPECT_FALSE(ExecutionLog::load(Path, Loaded));
  std::remove(Path.c_str());
}

TEST(LogTest, ByteSizeGrowsWithRecords) {
  auto Small = runProgram("func main() { print(1); }");
  auto Large = runProgram(R"(
shared int sv;
func f(int x) { sv = sv + x; return sv; }
func main() {
  int i = 0;
  for (i = 0; i < 50; i = i + 1) sv = sv + f(i);
  print(sv);
}
)");
  EXPECT_GT(Large.Log.byteSize(), Small.Log.byteSize() * 5);
}

TEST(LogTest, PerProcessLogsAreSeparate) {
  // "There is one log file for each process" (§5.6).
  auto R = runProgram(R"(
chan done;
func w(int id) { send(done, id); }
func main() {
  spawn w(1);
  spawn w(2);
  int a = recv(done);
  int b = recv(done);
  print(a + b);
}
)");
  ASSERT_EQ(R.Log.Procs.size(), 3u);
  for (uint32_t Pid = 0; Pid != 3; ++Pid) {
    EXPECT_EQ(R.Log.Procs[Pid].Pid, Pid);
    EXPECT_FALSE(R.Log.Procs[Pid].Records.empty());
  }
  EXPECT_EQ(R.Log.Procs[1].RootFunc, R.Prog->Ast->findFunc("w")->Index);
  EXPECT_EQ(R.Log.Procs[1].Args.size(), 1u);
}

} // namespace
