//===- tests/log_test.cpp - Log structure and serialization ---------------===//
//
// Part of PPD test suite: log-interval structure (Figs 5.1/5.2), the
// open-interval rule (§5.3), binary save/load round trips, byte-size
// accounting (experiment E2's currency).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "log/LogIO.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Field-by-field equality of two logs, including the fields the existing
/// round-trip test leaves unchecked (Flags, Sync, Stmt, Vars contents,
/// PrelogCount, Output statements).
void expectLogsEqual(const ExecutionLog &A, const ExecutionLog &B) {
  ASSERT_EQ(A.Procs.size(), B.Procs.size());
  for (uint32_t Pid = 0; Pid != A.Procs.size(); ++Pid) {
    const ProcessLog &PA = A.Procs[Pid];
    const ProcessLog &PB = B.Procs[Pid];
    EXPECT_EQ(PA.Pid, PB.Pid);
    EXPECT_EQ(PA.RootFunc, PB.RootFunc);
    EXPECT_EQ(PA.Args, PB.Args);
    EXPECT_EQ(PA.PrelogCount, PB.PrelogCount);
    ASSERT_EQ(PA.Records.size(), PB.Records.size());
    for (size_t I = 0; I != PA.Records.size(); ++I) {
      const LogRecord &RA = PA.Records[I];
      const LogRecord &RB = PB.Records[I];
      EXPECT_EQ(int(RA.Kind), int(RB.Kind));
      EXPECT_EQ(RA.Id, RB.Id);
      EXPECT_EQ(RA.Flags, RB.Flags);
      EXPECT_EQ(RA.Value, RB.Value);
      EXPECT_EQ(RA.Seq, RB.Seq);
      EXPECT_EQ(RA.PartnerSeq, RB.PartnerSeq);
      EXPECT_EQ(int(RA.Sync), int(RB.Sync));
      EXPECT_EQ(RA.Stmt, RB.Stmt);
      ASSERT_EQ(RA.Vars.size(), RB.Vars.size());
      for (size_t V = 0; V != RA.Vars.size(); ++V) {
        EXPECT_EQ(RA.Vars[V].Var, RB.Vars[V].Var);
        EXPECT_EQ(RA.Vars[V].Values, RB.Vars[V].Values);
      }
      EXPECT_EQ(RA.ReadSet, RB.ReadSet);
      EXPECT_EQ(RA.WriteSet, RB.WriteSet);
    }
  }
  ASSERT_EQ(A.Output.size(), B.Output.size());
  for (size_t I = 0; I != A.Output.size(); ++I) {
    EXPECT_EQ(A.Output[I].Pid, B.Output[I].Pid);
    EXPECT_EQ(A.Output[I].Value, B.Output[I].Value);
    EXPECT_EQ(A.Output[I].Stmt, B.Output[I].Stmt);
  }
}

/// Builds a randomized log in the canonical shape the machine emits: each
/// record populates exactly the fields its kind carries, postlogs close a
/// previously opened e-block, sync sequence numbers rise globally, and
/// READ/WRITE sets are ascending.
ExecutionLog randomCanonicalLog(uint64_t Seed, uint32_t NumProcs) {
  Rng Rand(Seed);
  ExecutionLog Log;
  Log.Procs.resize(NumProcs);
  uint64_t GlobalSeq = 0;

  auto fillVars = [&Rand](LogRecord &R) {
    unsigned NumVars = unsigned(Rand.nextBelow(4));
    for (unsigned V = 0; V != NumVars; ++V) {
      VarValue &Val = R.Vars.emplace_back();
      Val.Var = VarId(Rand.nextBelow(32));
      unsigned NumValues = 1 + unsigned(Rand.nextBelow(4));
      for (unsigned K = 0; K != NumValues; ++K)
        Val.Values.push_back(Rand.nextInRange(-(1ll << 40), 1ll << 40));
    }
  };
  auto fillSet = [&Rand](SmallVec<uint32_t, 4> &Set) {
    unsigned Count = unsigned(Rand.nextBelow(7));
    uint32_t Next = uint32_t(Rand.nextBelow(4));
    for (unsigned K = 0; K != Count; ++K) {
      Set.push_back(Next);
      Next += 1 + uint32_t(Rand.nextBelow(3));
    }
  };

  for (uint32_t Pid = 0; Pid != NumProcs; ++Pid) {
    ProcessLog &P = Log.Procs[Pid];
    P.Pid = Pid;
    P.RootFunc = uint32_t(Rand.nextBelow(8));
    unsigned NumArgs = unsigned(Rand.nextBelow(4));
    for (unsigned A = 0; A != NumArgs; ++A)
      P.Args.push_back(Rand.nextInRange(-1000, 1000));

    std::vector<uint32_t> OpenBlocks;
    unsigned NumRecords = 16 + unsigned(Rand.nextBelow(48));
    for (unsigned I = 0; I != NumRecords; ++I) {
      unsigned Pick = unsigned(Rand.nextBelow(5));
      if (Pick == 1 && OpenBlocks.empty())
        Pick = 0;
      LogRecord &R = P.Records.emplace_back();
      switch (Pick) {
      case 0:
        R.Kind = LogRecordKind::Prelog;
        R.Id = uint32_t(Rand.nextBelow(64));
        OpenBlocks.push_back(R.Id);
        ++P.PrelogCount;
        fillVars(R);
        break;
      case 1:
        R.Kind = LogRecordKind::Postlog;
        R.Id = OpenBlocks.back();
        OpenBlocks.pop_back();
        if (Rand.nextBelow(2) == 0) {
          R.Flags = PostlogExitsFunction;
          R.Value = Rand.nextInRange(-100000, 100000);
        }
        fillVars(R);
        break;
      case 2:
        R.Kind = LogRecordKind::UnitLog;
        R.Id = uint32_t(Rand.nextBelow(64));
        fillVars(R);
        break;
      case 3:
        R.Kind = LogRecordKind::Input;
        R.Value = Rand.nextInRange(-100000, 100000);
        break;
      default:
        R.Kind = LogRecordKind::SyncEvent;
        R.Sync = SyncKind(Rand.nextBelow(8));
        R.Id = uint32_t(Rand.nextBelow(16));
        R.Stmt = Rand.nextBelow(3) == 0 ? InvalidId
                                        : StmtId(Rand.nextBelow(200));
        R.Value = Rand.nextInRange(-100000, 100000);
        GlobalSeq += 1 + Rand.nextBelow(5);
        R.Seq = GlobalSeq;
        R.PartnerSeq = Rand.nextBelow(3) == 0 ? NoPartner
                                              : Rand.nextBelow(GlobalSeq + 8);
        fillSet(R.ReadSet);
        fillSet(R.WriteSet);
        break;
      }
    }
    if (Rand.nextBelow(3) == 0) {
      LogRecord &R = P.Records.emplace_back();
      R.Kind = LogRecordKind::Stop;
      R.Stmt = Rand.nextBelow(2) == 0 ? InvalidId : StmtId(Rand.nextBelow(200));
    }
  }

  unsigned NumOut = unsigned(Rand.nextBelow(12));
  for (unsigned I = 0; I != NumOut; ++I) {
    OutputRecord O;
    O.Pid = uint32_t(Rand.nextBelow(NumProcs));
    O.Value = Rand.nextInRange(-100000, 100000);
    O.Stmt = Rand.nextBelow(4) == 0 ? InvalidId : StmtId(Rand.nextBelow(200));
    Log.Output.push_back(O);
  }
  return Log;
}

TEST(LogTest, NestedIntervalsMirrorCallNesting) {
  auto R = runProgram(R"(
func inner(int x) { return x + 1; }
func outer(int x) { return inner(x) * 2; }
func main() { print(outer(10)); }
)");
  LogIndex Index(R.Log);
  const auto &Intervals = Index.intervals(0);
  // main, outer, inner — one interval each.
  ASSERT_EQ(Intervals.size(), 3u);

  // Intervals are numbered by prelog order: main(0), outer(1), inner(2);
  // inner nests in outer nests in main (Fig 5.2).
  EXPECT_EQ(Intervals[0].Depth, 0u);
  EXPECT_EQ(Intervals[1].Depth, 1u);
  EXPECT_EQ(Intervals[2].Depth, 2u);
  EXPECT_EQ(Intervals[1].Parent, Intervals[0].Index);
  EXPECT_EQ(Intervals[2].Parent, Intervals[1].Index);
  for (const LogInterval &Interval : Intervals) {
    EXPECT_NE(Interval.PostlogRecord, InvalidId);
    EXPECT_LT(Interval.PrelogRecord, Interval.PostlogRecord);
    EXPECT_TRUE(Interval.ExitsFunction);
  }
  EXPECT_EQ(Index.lastOpenInterval(0), nullptr);
}

TEST(LogTest, LoopsMakeRepeatedIntervalsOfOneEBlock) {
  auto R = runProgram(R"(
func f(int x) { return x; }
func main() {
  int i = 0;
  int s = 0;
  for (i = 0; i < 4; i = i + 1) s = s + f(i);
  print(s);
}
)");
  LogIndex Index(R.Log);
  // "a given e-block of a program may have several corresponding log
  // intervals during execution" (§5.1): f's e-block has 4 intervals.
  unsigned FIntervals = 0;
  uint32_t FEBlock = InvalidId;
  for (const LogInterval &Interval : Index.intervals(0)) {
    if (Interval.Depth != 1)
      continue;
    ++FIntervals;
    if (FEBlock == InvalidId)
      FEBlock = Interval.EBlock;
    EXPECT_EQ(Interval.EBlock, FEBlock);
  }
  EXPECT_EQ(FIntervals, 4u);
}

TEST(LogTest, FailureLeavesOpenIntervalStack) {
  auto R = runProgram(R"(
func crash(int x) { int z = 0; return x / z; }
func middle(int x) { return crash(x); }
func main() { print(middle(3)); }
)",
                      1, {}, {}, /*ExpectCompleted=*/false);
  ASSERT_EQ(int(R.Result.Outcome), int(RunResult::Status::Failed));
  LogIndex Index(R.Log);
  // All three intervals are open; the *last* prelog without a postlog is
  // crash's (§5.3: where the debugging session starts).
  const LogInterval *Open = Index.lastOpenInterval(0);
  ASSERT_NE(Open, nullptr);
  EXPECT_EQ(Open->Depth, 2u);
  const EBlockInfo &EBlock = R.Prog->eblock(Open->EBlock);
  EXPECT_EQ(R.Prog->func(EBlock.Func).Name, "crash");
}

TEST(LogTest, EnclosingFindsInnermostInterval) {
  auto R = runProgram(R"(
func g(int x) { return x + 1; }
func main() { print(g(1)); }
)");
  LogIndex Index(R.Log);
  const auto &Intervals = Index.intervals(0);
  ASSERT_EQ(Intervals.size(), 2u);
  // A record inside g's span belongs to g's interval.
  uint32_t Mid =
      (Intervals[1].PrelogRecord + Intervals[1].PostlogRecord) / 2;
  const LogInterval *Enclosing = Index.enclosing(0, Mid);
  ASSERT_NE(Enclosing, nullptr);
  EXPECT_EQ(Enclosing->Index, Intervals[1].Index);
}

TEST(LogTest, SaveLoadRoundTrip) {
  MachineOptions MOpts;
  MOpts.ProcessInputs = {{5}};
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
chan c[2];
func child(int k) { P(m); sv = sv + k; V(m); send(c, k); }
func main() {
  spawn child(2);
  int got = recv(c);
  print(got + input());
}
)",
                      1, MOpts);

  std::string Path = ::testing::TempDir() + "/ppd_log_roundtrip.bin";
  ASSERT_TRUE(R.Log.save(Path));

  ExecutionLog Loaded;
  ASSERT_TRUE(ExecutionLog::load(Path, Loaded));
  ASSERT_EQ(Loaded.Procs.size(), R.Log.Procs.size());
  for (uint32_t Pid = 0; Pid != Loaded.Procs.size(); ++Pid) {
    const ProcessLog &A = R.Log.Procs[Pid];
    const ProcessLog &B = Loaded.Procs[Pid];
    EXPECT_EQ(A.RootFunc, B.RootFunc);
    EXPECT_EQ(A.Args, B.Args);
    ASSERT_EQ(A.Records.size(), B.Records.size());
    for (size_t I = 0; I != A.Records.size(); ++I) {
      EXPECT_EQ(int(A.Records[I].Kind), int(B.Records[I].Kind));
      EXPECT_EQ(A.Records[I].Id, B.Records[I].Id);
      EXPECT_EQ(A.Records[I].Value, B.Records[I].Value);
      EXPECT_EQ(A.Records[I].Seq, B.Records[I].Seq);
      EXPECT_EQ(A.Records[I].PartnerSeq, B.Records[I].PartnerSeq);
      EXPECT_EQ(A.Records[I].Vars.size(), B.Records[I].Vars.size());
      EXPECT_EQ(A.Records[I].ReadSet, B.Records[I].ReadSet);
      EXPECT_EQ(A.Records[I].WriteSet, B.Records[I].WriteSet);
    }
  }
  ASSERT_EQ(Loaded.Output.size(), R.Log.Output.size());
  for (size_t I = 0; I != Loaded.Output.size(); ++I)
    EXPECT_EQ(Loaded.Output[I].Value, R.Log.Output[I].Value);
  std::remove(Path.c_str());
}

TEST(LogTest, LoadRejectsGarbage) {
  std::string Path = ::testing::TempDir() + "/ppd_log_garbage.bin";
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("this is not a PPD log", F);
  std::fclose(F);
  ExecutionLog Loaded;
  EXPECT_FALSE(ExecutionLog::load(Path, Loaded));
  std::remove(Path.c_str());
}

TEST(LogTest, ByteSizeGrowsWithRecords) {
  auto Small = runProgram("func main() { print(1); }");
  auto Large = runProgram(R"(
shared int sv;
func f(int x) { sv = sv + x; return sv; }
func main() {
  int i = 0;
  for (i = 0; i < 50; i = i + 1) sv = sv + f(i);
  print(sv);
}
)");
  EXPECT_GT(Large.Log.byteSize(), Small.Log.byteSize() * 5);
}

TEST(LogTest, PerProcessLogsAreSeparate) {
  // "There is one log file for each process" (§5.6).
  auto R = runProgram(R"(
chan done;
func w(int id) { send(done, id); }
func main() {
  spawn w(1);
  spawn w(2);
  int a = recv(done);
  int b = recv(done);
  print(a + b);
}
)");
  ASSERT_EQ(R.Log.Procs.size(), 3u);
  for (uint32_t Pid = 0; Pid != 3; ++Pid) {
    EXPECT_EQ(R.Log.Procs[Pid].Pid, Pid);
    EXPECT_FALSE(R.Log.Procs[Pid].Records.empty());
  }
  EXPECT_EQ(R.Log.Procs[1].RootFunc, R.Prog->Ast->findFunc("w")->Index);
  EXPECT_EQ(R.Log.Procs[1].Args.size(), 1u);
}

TEST(LogTest, RoundTripPropertyBothFormats) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    ExecutionLog Log = randomCanonicalLog(Seed, 1 + uint32_t(Seed % 4));
    std::string V1Path = ::testing::TempDir() + "/ppd_log_prop_v1.bin";
    std::string V2Path = ::testing::TempDir() + "/ppd_log_prop_v2.bin";
    ASSERT_TRUE(Log.save(V1Path, LogFormat::V1));
    ASSERT_TRUE(Log.save(V2Path, LogFormat::V2));

    ExecutionLog FromV1, FromV2;
    ASSERT_TRUE(ExecutionLog::load(V1Path, FromV1));
    ASSERT_TRUE(ExecutionLog::load(V2Path, FromV2));
    expectLogsEqual(Log, FromV1);
    expectLogsEqual(Log, FromV2);

    // v1 -> v2 migration: re-saving a v1 log in the compact format must
    // preserve the log's content and hence its byteSize accounting (E2's
    // currency is unchanged by the on-disk encoding).
    std::string MigratedPath = ::testing::TempDir() + "/ppd_log_prop_mig.bin";
    ASSERT_TRUE(FromV1.save(MigratedPath, LogFormat::V2));
    ExecutionLog Migrated;
    ASSERT_TRUE(ExecutionLog::load(MigratedPath, Migrated));
    expectLogsEqual(Log, Migrated);
    EXPECT_EQ(Migrated.byteSize(), Log.byteSize());

    std::remove(V1Path.c_str());
    std::remove(V2Path.c_str());
    std::remove(MigratedPath.c_str());
  }
}

TEST(LogTest, TruncatedLoadFailsCleanlyBothFormats) {
  auto R = runProgram(R"(
chan c;
func child(int k) { send(c, k * 3); }
func main() { spawn child(7); print(recv(c)); }
)");
  for (LogFormat Format : {LogFormat::V1, LogFormat::V2}) {
    std::string Path = ::testing::TempDir() + "/ppd_log_trunc.bin";
    ASSERT_TRUE(R.Log.save(Path, Format));
    std::vector<uint8_t> Bytes;
    ASSERT_TRUE(readFileBytes(Path, Bytes));
    ASSERT_FALSE(Bytes.empty());
    // Keep the exhaustive every-byte-offset sweep cheap.
    ASSERT_LT(Bytes.size(), 64u * 1024u);

    // A sentinel the failed loads must leave untouched.
    ExecutionLog Sentinel;
    Sentinel.Procs.resize(1);
    Sentinel.Procs[0].RootFunc = 7777;

    for (size_t Len = 0; Len != Bytes.size(); ++Len) {
      LogWriter Prefix;
      for (size_t I = 0; I != Len; ++I)
        Prefix.u8(Bytes[I]);
      ASSERT_TRUE(Prefix.writeFile(Path));
      EXPECT_FALSE(ExecutionLog::load(Path, Sentinel))
          << "prefix of " << Len << " bytes loaded";
      ASSERT_EQ(Sentinel.Procs.size(), 1u);
      EXPECT_EQ(Sentinel.Procs[0].RootFunc, 7777u);
    }
    std::remove(Path.c_str());
  }
}

TEST(LogTest, V2FilesAreSmallerThanV1) {
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
chan done;
func w(int id) {
  int i = 0;
  for (i = 0; i < 20; i = i + 1) { P(m); sv = sv + id; V(m); }
  send(done, id);
}
func main() {
  spawn w(1);
  spawn w(2);
  int a = recv(done);
  int b = recv(done);
  print(sv + a + b);
}
)");
  std::string V1Path = ::testing::TempDir() + "/ppd_log_size_v1.bin";
  std::string V2Path = ::testing::TempDir() + "/ppd_log_size_v2.bin";
  ASSERT_TRUE(R.Log.save(V1Path, LogFormat::V1));
  ASSERT_TRUE(R.Log.save(V2Path, LogFormat::V2));
  std::vector<uint8_t> V1Bytes, V2Bytes;
  ASSERT_TRUE(readFileBytes(V1Path, V1Bytes));
  ASSERT_TRUE(readFileBytes(V2Path, V2Bytes));
  EXPECT_LT(V2Bytes.size(), V1Bytes.size());
  std::remove(V1Path.c_str());
  std::remove(V2Path.c_str());
}

TEST(LogTest, ParallelLoadAndIndexMatchSerial) {
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
chan done;
func bump(int x) { P(m); sv = sv + x; V(m); return sv; }
func w(int id) {
  int i = 0;
  int acc = 0;
  for (i = 0; i < 10; i = i + 1) acc = acc + bump(id);
  send(done, acc);
}
func main() {
  spawn w(1);
  spawn w(2);
  spawn w(3);
  int a = recv(done);
  int b = recv(done);
  int c = recv(done);
  print(a + b + c);
}
)");
  ASSERT_EQ(R.Log.Procs.size(), 4u);
  std::string Path = ::testing::TempDir() + "/ppd_log_parallel.bin";
  ASSERT_TRUE(R.Log.save(Path, LogFormat::V2));

  ExecutionLog Serial, Parallel;
  ASSERT_TRUE(ExecutionLog::load(Path, Serial));
  {
    ThreadPool Pool(4);
    ASSERT_TRUE(ExecutionLog::load(Path, Parallel, &Pool));
  }
  expectLogsEqual(Serial, Parallel);
  expectLogsEqual(R.Log, Parallel);

  // Serial and pooled LogIndex construction must agree interval-for-
  // interval (bit-identical acceptance criterion).
  LogIndex SerialIndex(Parallel);
  ThreadPool IndexPool(4);
  LogIndex ParallelIndex(Parallel, &IndexPool);
  for (uint32_t Pid = 0; Pid != Parallel.Procs.size(); ++Pid) {
    const auto &A = SerialIndex.intervals(Pid);
    const auto &B = ParallelIndex.intervals(Pid);
    ASSERT_EQ(A.size(), B.size());
    EXPECT_EQ(A.size(), Parallel.Procs[Pid].PrelogCount);
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I].Index, B[I].Index);
      EXPECT_EQ(A[I].EBlock, B[I].EBlock);
      EXPECT_EQ(A[I].PrelogRecord, B[I].PrelogRecord);
      EXPECT_EQ(A[I].PostlogRecord, B[I].PostlogRecord);
      EXPECT_EQ(A[I].Parent, B[I].Parent);
      EXPECT_EQ(A[I].Depth, B[I].Depth);
      EXPECT_EQ(A[I].ExitsFunction, B[I].ExitsFunction);
    }
    const LogInterval *OpenA = SerialIndex.lastOpenInterval(Pid);
    const LogInterval *OpenB = ParallelIndex.lastOpenInterval(Pid);
    ASSERT_EQ(OpenA == nullptr, OpenB == nullptr);
    if (OpenA) {
      EXPECT_EQ(OpenA->Index, OpenB->Index);
    }
  }
  std::remove(Path.c_str());
}

} // namespace
