//===- tests/pardyn_test.cpp - Parallel dynamic graph & races -------------===//
//
// Part of PPD test suite: Fig 6.1 structure, happens-before ordering,
// Defs 6.1–6.4 race detection, algorithm agreement (E5).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pardyn/ParallelDynamicGraph.h"
#include "pardyn/RaceDetector.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

ParallelDynamicGraph graphOf(const Ran &R) {
  return ParallelDynamicGraph(R.Log, R.Prog->Symbols->NumSharedVars);
}

TEST(ParallelGraphTest, NodesAndInternalEdges) {
  auto R = runProgram(R"(
sem s;
func main() {
  V(s);
  P(s);
}
)");
  auto G = graphOf(R);
  ASSERT_EQ(G.numProcs(), 1u);
  // ProcStart, V, P, ProcEnd.
  ASSERT_EQ(G.nodes(0).size(), 4u);
  EXPECT_EQ(int(G.nodes(0)[0].Kind), int(SyncKind::ProcStart));
  EXPECT_EQ(int(G.nodes(0)[1].Kind), int(SyncKind::SemSignal));
  EXPECT_EQ(int(G.nodes(0)[2].Kind), int(SyncKind::SemAcquire));
  EXPECT_EQ(int(G.nodes(0)[3].Kind), int(SyncKind::ProcEnd));
  EXPECT_EQ(G.edges(0).size(), 3u);
}

TEST(ParallelGraphTest, SameProcessVPGetsNoEdgeByConvention) {
  // §6.2.1: "we do not construct a synchronization edge ... if the V and P
  // operation are done by the same process."
  auto R = runProgram("sem s;\nfunc main() { V(s); P(s); }");
  auto G = graphOf(R);
  EXPECT_EQ(G.nodes(0)[2].PartnerSeq, NoPartner);
}

TEST(ParallelGraphTest, CrossProcessVPEdge) {
  auto R = runProgram(R"(
sem s;
chan done;
func child() { P(s); send(done, 1); }
func main() {
  spawn child();
  V(s);
  int x = recv(done);
}
)");
  auto G = graphOf(R);
  // Child's P partners main's V.
  const SyncNode *ChildP = nullptr;
  uint32_t ChildPIdx = 0;
  for (uint32_t I = 0; I != G.nodes(1).size(); ++I)
    if (G.nodes(1)[I].Kind == SyncKind::SemAcquire) {
      ChildP = &G.nodes(1)[I];
      ChildPIdx = I;
    }
  ASSERT_NE(ChildP, nullptr);
  SyncNodeRef Partner = G.partnerOf({1, ChildPIdx});
  ASSERT_TRUE(Partner.valid());
  EXPECT_EQ(Partner.Pid, 0u);
  EXPECT_EQ(int(G.node(Partner).Kind), int(SyncKind::SemSignal));
}

TEST(ParallelGraphTest, BlockingSendProducesFig61Shape) {
  // Fig 6.1: blocking send n3 (sender), receive n4, unblock n5; the
  // sender's internal edge e4 between n3 and n5 contains zero events.
  // Whether the sender actually blocks (rather than handing off to an
  // already-waiting receiver) depends on the schedule, so sweep seeds for
  // an instance where it does.
  const char *Source = R"(
chan c;
func sender() { send(c, 9); }
func main() {
  spawn sender();
  int busy = 0;
  int i = 0;
  for (i = 0; i < 20; i = i + 1) busy = busy + i;
  int v = recv(c);
  print(v + busy * 0);
}
)";
  Ran R;
  bool FoundBlockingInstance = false;
  for (uint64_t Seed = 1; Seed <= 40 && !FoundBlockingInstance; ++Seed) {
    R = runProgram(Source, Seed);
    for (const LogRecord &Rec : R.Log.Procs[1].Records)
      if (Rec.Kind == LogRecordKind::SyncEvent &&
          Rec.Sync == SyncKind::ChanSendUnblock)
        FoundBlockingInstance = true;
  }
  ASSERT_TRUE(FoundBlockingInstance)
      << "no schedule in the sweep blocked the sender";
  auto G = graphOf(R);
  // Sender (pid 1): ProcStart, ChanSend, ChanSendUnblock, ProcEnd.
  std::vector<SyncKind> Kinds;
  for (const SyncNode &N : G.nodes(1))
    Kinds.push_back(N.Kind);
  EXPECT_EQ(Kinds,
            (std::vector<SyncKind>{SyncKind::ProcStart, SyncKind::ChanSend,
                                   SyncKind::ChanSendUnblock,
                                   SyncKind::ProcEnd}));

  // recv partners the send; unblock partners the recv.
  uint32_t RecvIdx = InvalidId;
  for (uint32_t I = 0; I != G.nodes(0).size(); ++I)
    if (G.nodes(0)[I].Kind == SyncKind::ChanRecv)
      RecvIdx = I;
  ASSERT_NE(RecvIdx, InvalidId);
  SyncNodeRef SendRef = G.partnerOf({0, RecvIdx});
  ASSERT_TRUE(SendRef.valid());
  EXPECT_EQ(int(G.node(SendRef).Kind), int(SyncKind::ChanSend));
  SyncNodeRef UnblockPartner = G.partnerOf({1, 2});
  ASSERT_TRUE(UnblockPartner.valid());
  EXPECT_EQ(UnblockPartner.Pid, 0u);
  EXPECT_EQ(UnblockPartner.Index, RecvIdx);

  // e4 (between send and unblock) carries no shared accesses.
  const InternalEdge &E4 = G.edge({1, 2});
  EXPECT_TRUE(E4.Reads.empty());
  EXPECT_TRUE(E4.Writes.empty());

  // The DOT output renders per-process clusters and dashed sync edges.
  std::string Dot = G.dot(*R.Prog->Ast);
  EXPECT_NE(Dot.find("cluster_p0"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
}

TEST(ParallelGraphTest, HappensBeforeIsStrictPartialOrder) {
  auto R = runProgram(R"(
sem a;
sem b;
chan done;
func child() { P(a); V(b); send(done, 1); }
func main() {
  spawn child();
  V(a);
  P(b);
  int x = recv(done);
}
)");
  auto G = graphOf(R);
  std::vector<SyncNodeRef> All;
  for (uint32_t Pid = 0; Pid != G.numProcs(); ++Pid)
    for (uint32_t I = 0; I != G.nodes(Pid).size(); ++I)
      All.push_back({Pid, I});

  for (const SyncNodeRef &X : All) {
    EXPECT_FALSE(G.happensBefore(X, X)) << "irreflexive";
    for (const SyncNodeRef &Y : All) {
      if (G.happensBefore(X, Y)) {
        EXPECT_FALSE(G.happensBefore(Y, X)) << "antisymmetric";
      }
      for (const SyncNodeRef &Z : All)
        if (G.happensBefore(X, Y) && G.happensBefore(Y, Z)) {
          EXPECT_TRUE(G.happensBefore(X, Z)) << "transitive";
        }
    }
  }

  // Program order within a process.
  for (uint32_t Pid = 0; Pid != G.numProcs(); ++Pid)
    for (uint32_t I = 1; I < G.nodes(Pid).size(); ++I)
      EXPECT_TRUE(G.happensBefore({Pid, I - 1}, {Pid, I}));

  // Causality across the V(a) → P(a) pair.
  // main's V(a) is node 2 (ProcStart, Spawn, V); child's P(a) is node 1.
  EXPECT_TRUE(G.happensBefore({0, 2}, {1, 1}));
  EXPECT_FALSE(G.happensBefore({1, 1}, {0, 2}));
}

//===----------------------------------------------------------------------===//
// Race detection
//===----------------------------------------------------------------------===//

const char *RacyProgram = R"(
shared int sv;
chan done;
func w(int x) { sv = sv + x; send(done, 1); }
func main() {
  spawn w(1);
  spawn w(2);
  int a = recv(done);
  int b = recv(done);
  print(sv);
}
)";

const char *SynchronizedProgram = R"(
shared int sv;
sem m = 1;
chan done;
func w(int x) { P(m); sv = sv + x; V(m); send(done, 1); }
func main() {
  spawn w(1);
  spawn w(2);
  int a = recv(done);
  int b = recv(done);
  print(sv);
}
)";

TEST(RaceTest, UnsynchronizedWritesDetected) {
  auto R = runProgram(RacyProgram);
  auto G = graphOf(R);
  RaceDetector Detector(G, *R.Prog->Symbols);
  auto Result = Detector.detect(RaceAlgorithm::NaiveAllPairs);
  EXPECT_FALSE(Result.raceFree());
  bool SawWriteWrite = false;
  for (const Race &Race : Result.Races) {
    EXPECT_EQ(R.Prog->Symbols->var(Race.Var).Name, "sv");
    SawWriteWrite |= Race.Kind == RaceKind::WriteWrite;
  }
  EXPECT_TRUE(SawWriteWrite);
  std::string Text = Detector.describe(Result.Races[0], *R.Prog->Ast);
  EXPECT_NE(Text.find("race on shared variable 'sv'"), std::string::npos);
}

TEST(RaceTest, MutexedProgramRaceFree) {
  for (uint64_t Seed : {1, 7, 31}) {
    auto R = runProgram(SynchronizedProgram, Seed);
    auto G = graphOf(R);
    RaceDetector Detector(G, *R.Prog->Symbols);
    EXPECT_TRUE(Detector.detect(RaceAlgorithm::NaiveAllPairs).raceFree())
        << "seed " << Seed;
  }
}

TEST(RaceTest, ReadWriteRaceDetected) {
  auto R = runProgram(R"(
shared int sv;
chan done;
func writer() { sv = 42; send(done, 1); }
func reader() { int x = sv; send(done, x); }
func main() {
  spawn writer();
  spawn reader();
  int a = recv(done);
  int b = recv(done);
}
)");
  auto G = graphOf(R);
  RaceDetector Detector(G, *R.Prog->Symbols);
  auto Result = Detector.detect(RaceAlgorithm::VarIndexed);
  ASSERT_FALSE(Result.raceFree());
  EXPECT_EQ(int(Result.Races[0].Kind), int(RaceKind::ReadWrite));
}

TEST(RaceTest, OrderedAccessesAreNotRaces) {
  // The V/P ordering makes the accesses sequential, not simultaneous.
  auto R = runProgram(R"(
shared int sv;
sem ready;
chan done;
func child() { P(ready); sv = sv * 2; send(done, 1); }
func main() {
  spawn child();
  sv = 21;
  V(ready);
  int x = recv(done);
  print(sv);
}
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{42}));
  auto G = graphOf(R);
  RaceDetector Detector(G, *R.Prog->Symbols);
  EXPECT_TRUE(Detector.detect(RaceAlgorithm::NaiveAllPairs).raceFree());
}

TEST(RaceTest, AlgorithmsAgreeAndIndexExaminesFewerPairs) {
  for (const char *Source : {RacyProgram, SynchronizedProgram}) {
    for (uint64_t Seed : {1, 13}) {
      auto R = runProgram(Source, Seed);
      auto G = graphOf(R);
      RaceDetector Detector(G, *R.Prog->Symbols);
      auto Naive = Detector.detect(RaceAlgorithm::NaiveAllPairs);
      auto Indexed = Detector.detect(RaceAlgorithm::VarIndexed);
      EXPECT_EQ(Naive.Races.size(), Indexed.Races.size());
      for (size_t I = 0; I != Naive.Races.size(); ++I)
        EXPECT_TRUE(Naive.Races[I] == Indexed.Races[I]);
      EXPECT_LE(Indexed.PairsExamined, Naive.PairsExamined);
    }
  }
}

// Property: across seeds, the racy program always shows the race (it's a
// property of the program structure here — both workers write sv between
// independent sync points), and the mutexed one never does.
class RaceSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaceSweepTest, GroundTruthStableAcrossSchedules) {
  auto Racy = runProgram(RacyProgram, GetParam());
  auto RacyGraph = graphOf(Racy);
  RaceDetector RacyDetector(RacyGraph, *Racy.Prog->Symbols);
  EXPECT_FALSE(RacyDetector.detect(RaceAlgorithm::VarIndexed).raceFree());

  auto Safe = runProgram(SynchronizedProgram, GetParam());
  auto SafeGraph = graphOf(Safe);
  RaceDetector SafeDetector(SafeGraph, *Safe.Prog->Symbols);
  EXPECT_TRUE(SafeDetector.detect(RaceAlgorithm::VarIndexed).raceFree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));


TEST(RaceTest, SummaryGroupsPerIterationRaces) {
  // A loop races on the same statement pair many times; the grouped
  // summary collapses them with a count.
  auto R = runProgram(R"(
shared int sv;
sem tick;
chan done;
func writer() {
  int i = 0;
  for (i = 0; i < 10; i = i + 1) {
    sv = sv + 1;
    V(tick);
  }
  send(done, 1);
}
func reader() {
  int i = 0;
  int acc = 0;
  for (i = 0; i < 10; i = i + 1) {
    P(tick);
    acc = acc + sv;
  }
  send(done, acc);
}
func main() {
  spawn writer();
  spawn reader();
  int a = recv(done);
  int b = recv(done);
}
)");
  auto G = graphOf(R);
  RaceDetector Detector(G, *R.Prog->Symbols);
  auto Result = Detector.detect(RaceAlgorithm::VarIndexed);
  ASSERT_FALSE(Result.raceFree());
  std::string Summary = Detector.summarize(Result, *R.Prog->Ast);
  // Many races, few summary lines, each with an occurrence count.
  EXPECT_GT(Result.Races.size(), 3u);
  unsigned Lines = 0;
  for (char C : Summary)
    Lines += C == '\n';
  EXPECT_LT(Lines, Result.Races.size());
  EXPECT_NE(Summary.find("(x"), std::string::npos);
  EXPECT_NE(Summary.find("sv"), std::string::npos);
}

TEST(RaceTest, SummaryOfCleanInstance) {
  auto R = runProgram("func main() { print(1); }");
  auto G = graphOf(R);
  RaceDetector Detector(G, *R.Prog->Symbols);
  auto Result = Detector.detect(RaceAlgorithm::NaiveAllPairs);
  EXPECT_NE(Detector.summarize(Result, *R.Prog->Ast).find("race-free"),
            std::string::npos);
}

} // namespace
