//===- tests/server_test.cpp - Debug server + wire protocol ---------------===//
//
// Part of PPD test suite: the framed wire protocol (round-trips, byte-
// prefix truncation sweeps, garbage rejection), the session registry
// (ref-counting, idle eviction, shared replay cache), the bounded request
// scheduler (Busy backpressure, timeouts, drain), and the transport-free
// end-to-end server — including the concurrency contract: N client
// threads over shared and distinct sessions receive responses
// bit-identical to a serial single-session run.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/DebugSession.h"
#include "server/DebugServer.h"
#include "server/Protocol.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>

using namespace ppd;
using namespace ppd::test;

namespace {

//===----------------------------------------------------------------------===//
// Protocol codec
//===----------------------------------------------------------------------===//

/// Encodes \p Req and returns the payload (length prefix stripped).
std::vector<uint8_t> requestPayload(const Request &Req) {
  LogWriter W;
  encodeRequest(Req, W);
  EXPECT_GE(W.size(), 4u);
  uint32_t Len = 0;
  std::memcpy(&Len, W.data(), 4);
  EXPECT_EQ(size_t(Len) + 4, W.size()) << "length prefix covers payload";
  return std::vector<uint8_t>(W.data() + 4, W.data() + W.size());
}

std::vector<uint8_t> responsePayload(const Response &Resp) {
  LogWriter W;
  encodeResponse(Resp, W);
  uint32_t Len = 0;
  std::memcpy(&Len, W.data(), 4);
  EXPECT_EQ(size_t(Len) + 4, W.size());
  return std::vector<uint8_t>(W.data() + 4, W.data() + W.size());
}

/// One exemplar request per message type, fields exercised.
std::vector<Request> sampleRequests() {
  std::vector<Request> Out;
  Request R;
  R.Type = MsgType::OpenSession;
  R.RequestId = 101;
  R.ProgramIndex = 2;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Query;
  R.RequestId = 102;
  R.SessionId = 7;
  R.Command = "where 0";
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Step;
  R.RequestId = 103;
  R.SessionId = 7;
  R.Direction = 1;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Races;
  R.RequestId = 104;
  R.SessionId = 9;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Stats;
  R.RequestId = 105;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::CloseSession;
  R.RequestId = 106;
  R.SessionId = 3;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Shutdown;
  R.RequestId = 107;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::StreamHello;
  R.RequestId = 108;
  R.ProgramIndex = 1;
  R.ProgramHash = 0xdeadbeefcafef00dull;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::SectionData;
  R.RequestId = 109;
  R.StreamId = 4;
  R.CutSeq = 3;
  R.Pid = 2;
  R.FirstRecord = 17;
  R.Flags = SectionLastInCut;
  R.Stalls = 5;
  R.Blob = {0x01, 0x02, 0x03, 0xff};
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::StreamEnd;
  R.RequestId = 110;
  R.StreamId = 4;
  R.Stalls = 6;
  R.Blob = {0xaa, 0xbb};
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::TailQuery;
  R.RequestId = 111;
  R.StreamId = 4;
  R.Command = "where 0";
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Frontier;
  R.RequestId = 112;
  R.StreamId = 0;
  Out.push_back(R);
  return Out;
}

std::vector<Response> sampleResponses() {
  std::vector<Response> Out;
  Response R;
  R.Type = RespType::SessionOpened;
  R.RequestId = 201;
  R.SessionId = 5;
  Out.push_back(R);
  R = Response();
  R.Type = RespType::Result;
  R.RequestId = 202;
  R.Text = "at: print(x) (line 3)\n";
  Out.push_back(R);
  R = Response();
  R.Type = RespType::StatsText;
  R.RequestId = 203;
  R.Text = "cache: hits 3\n";
  Out.push_back(R);
  R = Response();
  R.Type = RespType::Closed;
  R.RequestId = 204;
  Out.push_back(R);
  R = Response();
  R.Type = RespType::Busy;
  R.RequestId = 205;
  Out.push_back(R);
  R = Response();
  R.Type = RespType::Error;
  R.RequestId = 206;
  R.Code = ErrCode::NoSuchSession;
  R.Text = "no session 42";
  Out.push_back(R);
  R = Response();
  R.Type = RespType::ShutdownAck;
  R.RequestId = 207;
  Out.push_back(R);
  R = Response();
  R.Type = RespType::Ack;
  R.RequestId = 208;
  R.StreamId = 11;
  R.Credits = 8;
  Out.push_back(R);
  R = Response();
  R.Type = RespType::Error;
  R.RequestId = 209;
  R.Code = ErrCode::StreamProtocol;
  R.Text = "cut 3 is not a consistent extension";
  Out.push_back(R);
  return Out;
}

TEST(ProtocolTest, RequestRoundTripEveryType) {
  for (const Request &Req : sampleRequests()) {
    std::vector<uint8_t> Payload = requestPayload(Req);
    Request Back;
    ASSERT_TRUE(decodeRequest(Payload.data(), Payload.size(), Back))
        << "type " << unsigned(Req.Type);
    EXPECT_EQ(int(Back.Type), int(Req.Type));
    EXPECT_EQ(Back.RequestId, Req.RequestId);
    EXPECT_EQ(Back.ProgramIndex, Req.ProgramIndex);
    EXPECT_EQ(Back.SessionId, Req.SessionId);
    EXPECT_EQ(Back.Direction, Req.Direction);
    EXPECT_EQ(Back.Command, Req.Command);
    EXPECT_EQ(Back.ProgramHash, Req.ProgramHash);
    EXPECT_EQ(Back.StreamId, Req.StreamId);
    EXPECT_EQ(Back.CutSeq, Req.CutSeq);
    EXPECT_EQ(Back.Pid, Req.Pid);
    EXPECT_EQ(Back.FirstRecord, Req.FirstRecord);
    EXPECT_EQ(Back.Flags, Req.Flags);
    EXPECT_EQ(Back.Stalls, Req.Stalls);
    EXPECT_EQ(Back.Blob, Req.Blob);
  }
}

TEST(ProtocolTest, ResponseRoundTripEveryType) {
  for (const Response &Resp : sampleResponses()) {
    std::vector<uint8_t> Payload = responsePayload(Resp);
    Response Back;
    ASSERT_TRUE(decodeResponse(Payload.data(), Payload.size(), Back))
        << "type " << unsigned(Resp.Type);
    EXPECT_EQ(int(Back.Type), int(Resp.Type));
    EXPECT_EQ(Back.RequestId, Resp.RequestId);
    EXPECT_EQ(Back.SessionId, Resp.SessionId);
    if (Resp.Type == RespType::Error) {
      EXPECT_EQ(int(Back.Code), int(Resp.Code));
    }
    EXPECT_EQ(Back.Text, Resp.Text);
    EXPECT_EQ(Back.StreamId, Resp.StreamId);
    EXPECT_EQ(Back.Credits, Resp.Credits);
  }
}

// The byte-prefix truncation sweep, against every message type: any
// strict prefix of a valid payload must decode cleanly to failure (every
// body field is mandatory and trailing bytes are rejected, so a prefix
// can never alias another valid message).
TEST(ProtocolTest, TruncatedRequestFailsCleanlyEveryType) {
  for (const Request &Req : sampleRequests()) {
    std::vector<uint8_t> Payload = requestPayload(Req);
    for (size_t Keep = 0; Keep != Payload.size(); ++Keep) {
      Request Out;
      EXPECT_FALSE(decodeRequest(Payload.data(), Keep, Out))
          << "type " << unsigned(Req.Type) << " prefix " << Keep << "/"
          << Payload.size();
    }
  }
}

TEST(ProtocolTest, TruncatedResponseFailsCleanlyEveryType) {
  for (const Response &Resp : sampleResponses()) {
    std::vector<uint8_t> Payload = responsePayload(Resp);
    for (size_t Keep = 0; Keep != Payload.size(); ++Keep) {
      Response Out;
      EXPECT_FALSE(decodeResponse(Payload.data(), Keep, Out))
          << "type " << unsigned(Resp.Type) << " prefix " << Keep << "/"
          << Payload.size();
    }
  }
}

TEST(ProtocolTest, RejectsWrongVersionUnknownTypeAndTrailingGarbage) {
  Request Req;
  Req.Type = MsgType::Races;
  Req.SessionId = 1;
  std::vector<uint8_t> Payload = requestPayload(Req);

  std::vector<uint8_t> BadVersion = Payload;
  BadVersion[0] = ProtocolVersion + 1;
  Request Out;
  EXPECT_FALSE(decodeRequest(BadVersion.data(), BadVersion.size(), Out));

  std::vector<uint8_t> BadType = Payload;
  BadType[1] = 0;
  EXPECT_FALSE(decodeRequest(BadType.data(), BadType.size(), Out));
  BadType[1] = 99;
  EXPECT_FALSE(decodeRequest(BadType.data(), BadType.size(), Out));

  std::vector<uint8_t> Trailing = Payload;
  Trailing.push_back(0xab);
  EXPECT_FALSE(decodeRequest(Trailing.data(), Trailing.size(), Out))
      << "trailing bytes are malformed, not ignored";
}

TEST(ProtocolTest, RejectsStringLengthBeyondPayload) {
  Request Req;
  Req.Type = MsgType::Query;
  Req.SessionId = 1;
  Req.Command = "where 0";
  std::vector<uint8_t> Payload = requestPayload(Req);
  // The command-length u32 sits after version(1)+type(1)+id(8)+session(8).
  uint32_t Huge = 0x7fffffff;
  std::memcpy(Payload.data() + 18, &Huge, 4);
  Request Out;
  EXPECT_FALSE(decodeRequest(Payload.data(), Payload.size(), Out));
}

TEST(ProtocolTest, FrameReaderReassemblesByteAtATime) {
  LogWriter W;
  for (const Request &Req : sampleRequests())
    encodeRequest(Req, W);

  FrameReader Frames;
  std::vector<std::vector<uint8_t>> Got;
  for (size_t I = 0; I != W.size(); ++I) {
    Frames.feed(W.data() + I, 1);
    std::vector<uint8_t> Payload;
    while (Frames.next(Payload))
      Got.push_back(Payload);
  }
  std::vector<Request> Expected = sampleRequests();
  ASSERT_EQ(Got.size(), Expected.size());
  for (size_t I = 0; I != Got.size(); ++I) {
    Request Out;
    ASSERT_TRUE(decodeRequest(Got[I].data(), Got[I].size(), Out));
    EXPECT_EQ(Out.RequestId, Expected[I].RequestId);
  }
  EXPECT_FALSE(Frames.malformed());
}

TEST(ProtocolTest, FrameReaderPoisonsOnOversizedLength) {
  FrameReader Frames;
  uint32_t Len = MaxFramePayload + 1;
  uint8_t Prefix[4];
  std::memcpy(Prefix, &Len, 4);
  Frames.feed(Prefix, 4);
  std::vector<uint8_t> Payload;
  EXPECT_FALSE(Frames.next(Payload));
  EXPECT_TRUE(Frames.malformed());
  // Poisoned for good: even valid bytes afterwards yield nothing.
  Request Req;
  Req.Type = MsgType::Shutdown;
  LogWriter W;
  encodeRequest(Req, W);
  Frames.feed(W.data(), W.size());
  EXPECT_FALSE(Frames.next(Payload));
}

//===----------------------------------------------------------------------===//
// Server fixtures
//===----------------------------------------------------------------------===//

const char *WorkloadSource = R"(
shared int acc;
chan done;
func worker(int base) {
  acc = acc + base;
  acc = acc + base + 1;
  acc = acc + base + 2;
  send(done, base);
}
func main() {
  spawn worker(10);
  int first = recv(done);
  int tail = first * 2;
  print(acc);
  print(tail);
}
)";

/// A server over one compiled program + log, plus a second identical
/// compile-and-run of the same source: compilation and seeded execution
/// are deterministic, so Baseline.Prog/Baseline.Log are the serial
/// oracle's view of the exact same execution the server serves.
struct ServerFixture {
  Ran Baseline;
  std::unique_ptr<DebugServer> Server;

  explicit ServerFixture(DebugServerOptions Options = DebugServerOptions()) {
    Ran R = runProgram(WorkloadSource);
    Baseline = runProgram(WorkloadSource);
    Server = std::make_unique<DebugServer>(Options);
    Server->addProgram(std::move(R.Prog), std::move(R.Log));
  }

  const CompiledProgram &program() { return *Baseline.Prog; }

  Response call(Request Req) {
    static std::atomic<uint64_t> NextId{1};
    Req.RequestId = NextId.fetch_add(1);
    return Server->handle(Req);
  }

  uint64_t openSession() {
    Request Req;
    Req.Type = MsgType::OpenSession;
    Response Resp = call(Req);
    EXPECT_EQ(int(Resp.Type), int(RespType::SessionOpened));
    return Resp.SessionId;
  }

  Response query(uint64_t Session, const std::string &Cmd) {
    Request Req;
    Req.Type = MsgType::Query;
    Req.SessionId = Session;
    Req.Command = Cmd;
    return call(Req);
  }

  /// Round-trips one request through the async submitFrame path,
  /// synchronously. Never hangs: the callback always delivers.
  Response submit(const Request &Req) {
    LogWriter W;
    encodeRequest(Req, W);
    std::promise<Response> Done;
    Server->submitFrame(
        std::vector<uint8_t>(W.data() + 4, W.data() + W.size()),
        [&](std::vector<uint8_t> Frame) {
          Response Resp;
          bool Ok = Frame.size() >= 4 &&
                    decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp);
          EXPECT_TRUE(Ok) << "undecodable response frame";
          Done.set_value(Resp);
        });
    return Done.get_future().get();
  }
};

//===----------------------------------------------------------------------===//
// Dispatch basics (synchronous, deterministic)
//===----------------------------------------------------------------------===//

TEST(DebugServerTest, OpenQueryCloseLifecycle) {
  ServerFixture F;
  uint64_t S = F.openSession();
  EXPECT_NE(S, 0u);
  EXPECT_EQ(F.Server->registry().numSessions(), 1u);

  Response Where = F.query(S, "where 0");
  EXPECT_EQ(int(Where.Type), int(RespType::Result));
  EXPECT_FALSE(Where.Text.empty());

  Request Close;
  Close.Type = MsgType::CloseSession;
  Close.SessionId = S;
  EXPECT_EQ(int(F.call(Close).Type), int(RespType::Closed));
  EXPECT_EQ(F.Server->registry().numSessions(), 0u);

  Response Gone = F.query(S, "where 0");
  EXPECT_EQ(int(Gone.Type), int(RespType::Error));
  EXPECT_EQ(int(Gone.Code), int(ErrCode::NoSuchSession));
}

TEST(DebugServerTest, ResponsesMatchSerialDebugSession) {
  ServerFixture F;
  uint64_t S = F.openSession();

  PpdController Controller(F.program(), F.Baseline.Log);
  DebugSession Serial(F.program(), Controller);

  for (const char *Cmd :
       {"where 0", "back", "back", "fwd", "races", "restore 0 1", "list"}) {
    Response Resp = F.query(S, Cmd);
    ASSERT_EQ(int(Resp.Type), int(RespType::Result)) << Cmd;
    EXPECT_EQ(Resp.Text, Serial.execute(Cmd)) << Cmd;
  }
}

TEST(DebugServerTest, StepMessageMapsToBackAndFwd) {
  ServerFixture F;
  uint64_t S = F.openSession();
  F.query(S, "where 0");

  PpdController Controller(F.program(), F.Baseline.Log);
  DebugSession Serial(F.program(), Controller);
  Serial.execute("where 0");

  Request Step;
  Step.Type = MsgType::Step;
  Step.SessionId = S;
  Step.Direction = 0;
  EXPECT_EQ(F.call(Step).Text, Serial.execute("back"));
  Step.Direction = 1;
  EXPECT_EQ(F.call(Step).Text, Serial.execute("fwd"));
}

TEST(DebugServerTest, ErrorsOnBadProgramAndSession) {
  ServerFixture F;
  Request Open;
  Open.Type = MsgType::OpenSession;
  Open.ProgramIndex = 42;
  Response Resp = F.call(Open);
  EXPECT_EQ(int(Resp.Type), int(RespType::Error));
  EXPECT_EQ(int(Resp.Code), int(ErrCode::NoSuchProgram));

  EXPECT_EQ(int(F.query(999, "where 0").Code), int(ErrCode::NoSuchSession));

  Request Close;
  Close.Type = MsgType::CloseSession;
  Close.SessionId = 999;
  EXPECT_EQ(int(F.call(Close).Code), int(ErrCode::NoSuchSession));
}

TEST(DebugServerTest, SessionCapGivesTooManySessions) {
  DebugServerOptions Options;
  Options.Registry.MaxSessions = 2;
  ServerFixture F(Options);
  EXPECT_NE(F.openSession(), 0u);
  EXPECT_NE(F.openSession(), 0u);
  Request Open;
  Open.Type = MsgType::OpenSession;
  Response Resp = F.call(Open);
  EXPECT_EQ(int(Resp.Type), int(RespType::Error));
  EXPECT_EQ(int(Resp.Code), int(ErrCode::TooManySessions));
}

TEST(DebugServerTest, StatsMessagesRenderSessionAndServerViews) {
  ServerFixture F;
  uint64_t S = F.openSession();
  F.query(S, "restore 0 1");

  Request Stats;
  Stats.Type = MsgType::Stats;
  Stats.SessionId = S;
  Response SessionStats = F.call(Stats);
  EXPECT_EQ(int(SessionStats.Type), int(RespType::StatsText));
  EXPECT_NE(SessionStats.Text.find("cache: hits"), std::string::npos);
  EXPECT_NE(SessionStats.Text.find("pool: submitted"), std::string::npos);

  Stats.SessionId = 0;
  Response ServerStats = F.call(Stats);
  EXPECT_EQ(int(ServerStats.Type), int(RespType::StatsText));
  EXPECT_NE(ServerStats.Text.find("server: requests"), std::string::npos);
  EXPECT_NE(ServerStats.Text.find("requests by type:"), std::string::npos);
  EXPECT_NE(ServerStats.Text.find("latency: count"), std::string::npos);
  EXPECT_NE(ServerStats.Text.find("cache: hits"), std::string::npos);
}

TEST(DebugServerTest, SessionsShareTheReplayCache) {
  ServerFixture F;
  uint64_t S1 = F.openSession();
  uint64_t S2 = F.openSession();
  // `where` builds a graph fragment, which replays the focused interval
  // through the replay service (`restore` would not: it only accumulates
  // postlogs straight from the log).
  ASSERT_EQ(int(F.query(S1, "where 0").Type), int(RespType::Result));
  uint64_t MissesAfterFirst =
      F.Server->registry().aggregateReplayStats().Cache.Misses;
  ASSERT_EQ(int(F.query(S2, "where 0").Type), int(RespType::Result));
  ReplayServiceStats After = F.Server->registry().aggregateReplayStats();
  EXPECT_GT(After.Cache.Hits, 0u)
      << "second session's replay must hit the shared cache";
  EXPECT_EQ(After.Cache.Misses, MissesAfterFirst)
      << "second session replays nothing new";
}

TEST(DebugServerTest, MalformedFramesGetErrorResponsesNeverCrash) {
  ServerFixture F;
  std::vector<std::vector<uint8_t>> Bad = {
      {},
      {0x01},
      {ProtocolVersion, 0x63},
      std::vector<uint8_t>(64, 0xff),
  };
  // Every truncation of a valid query frame.
  Request Req;
  Req.Type = MsgType::Query;
  Req.RequestId = 7777;
  Req.SessionId = 1;
  Req.Command = "where 0";
  std::vector<uint8_t> Full = requestPayload(Req);
  for (size_t Keep = 0; Keep != Full.size(); ++Keep)
    Bad.emplace_back(Full.begin(), Full.begin() + long(Keep));

  for (const std::vector<uint8_t> &Frame : Bad) {
    static const uint8_t Nothing = 0;
    const uint8_t *Data = Frame.empty() ? &Nothing : Frame.data();
    std::vector<uint8_t> RespFrame = F.Server->handleFrame(Data, Frame.size());
    ASSERT_GE(RespFrame.size(), 4u);
    Response Resp;
    ASSERT_TRUE(
        decodeResponse(RespFrame.data() + 4, RespFrame.size() - 4, Resp));
    EXPECT_EQ(int(Resp.Type), int(RespType::Error));
    EXPECT_EQ(int(Resp.Code), int(ErrCode::BadFrame));
  }
  EXPECT_GE(F.Server->metrics().malformedFrames(), Bad.size());

  // RequestId recovery: a truncated-body frame still addresses its error.
  std::vector<uint8_t> Headerful(Full.begin(), Full.begin() + 12);
  std::vector<uint8_t> RespFrame =
      F.Server->handleFrame(Headerful.data(), Headerful.size());
  Response Resp;
  ASSERT_TRUE(
      decodeResponse(RespFrame.data() + 4, RespFrame.size() - 4, Resp));
  EXPECT_EQ(Resp.RequestId, 7777u);
}

//===----------------------------------------------------------------------===//
// Scheduler: backpressure, timeouts, drain
//===----------------------------------------------------------------------===//

/// A gate that parks scheduler workers until released, and reports when a
/// worker has actually entered it — tests that need the (LIFO) worker
/// provably occupied must wait for that before submitting more work.
struct Gate {
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Open = false;
  bool Entered = false;
  void release() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Open = true;
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Entered = true;
    Cv.notify_all();
    Cv.wait(Lock, [this] { return Open; });
  }
  void awaitEntered() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [this] { return Entered; });
  }
};

TEST(RequestSchedulerTest, BusyBeyondQueueLimit) {
  RequestSchedulerOptions Options;
  Options.Threads = 1;
  Options.QueueLimit = 2;
  RequestScheduler Scheduler(Options);

  Gate G;
  std::atomic<int> Executed{0};
  auto Blocker = [&](bool) {
    G.wait();
    ++Executed;
  };
  EXPECT_EQ(int(Scheduler.submit(Blocker)),
            int(RequestScheduler::Admission::Accepted));
  EXPECT_EQ(int(Scheduler.submit(Blocker)),
            int(RequestScheduler::Admission::Accepted));
  EXPECT_EQ(int(Scheduler.submit(Blocker)),
            int(RequestScheduler::Admission::Busy))
      << "third submission exceeds QueueLimit=2";
  EXPECT_EQ(Scheduler.highWater(), 2u);

  G.release();
  Scheduler.drain();
  EXPECT_EQ(Executed.load(), 2) << "rejected work never executed";
  EXPECT_EQ(int(Scheduler.submit(Blocker)),
            int(RequestScheduler::Admission::ShuttingDown))
      << "drain stops admission";
}

TEST(RequestSchedulerTest, ExpiredRequestsAreHandedBackTimedOut) {
  RequestSchedulerOptions Options;
  Options.Threads = 1;
  Options.QueueLimit = 8;
  Options.TimeoutMs = 1;
  RequestScheduler Scheduler(Options);

  Gate G;
  Scheduler.submit([&](bool) { G.wait(); });
  G.awaitEntered(); // the worker is provably parked in the gate
  std::promise<bool> Flag;
  Scheduler.submit([&](bool TimedOut) { Flag.set_value(TimedOut); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  G.release();
  EXPECT_TRUE(Flag.get_future().get())
      << "a request that waited 50ms against a 1ms budget is expired";
  Scheduler.drain();
}

TEST(DebugServerTest, BusyBackpressureUnderQueueSaturation) {
  DebugServerOptions Options;
  Options.Threads = 1;
  Options.QueueLimit = 1;
  ServerFixture F(Options);
  uint64_t S = F.openSession();

  // Park the only worker so the queue cap is reached.
  Gate G;
  ASSERT_EQ(int(F.Server->scheduler().submit([&](bool) { G.wait(); })),
            int(RequestScheduler::Admission::Accepted));

  Request Req;
  Req.Type = MsgType::Query;
  Req.RequestId = 31;
  Req.SessionId = S;
  Req.Command = "races";
  Response Resp = F.submit(Req);
  EXPECT_EQ(int(Resp.Type), int(RespType::Busy));
  EXPECT_EQ(Resp.RequestId, 31u);
  EXPECT_GE(F.Server->metrics().busyRejections(), 1u);

  G.release();
  F.Server->drain();
}

TEST(DebugServerTest, QueuedRequestsPastTimeoutGetTimeoutErrors) {
  DebugServerOptions Options;
  Options.Threads = 1;
  Options.QueueLimit = 8;
  Options.TimeoutMs = 1;
  ServerFixture F(Options);
  uint64_t S = F.openSession();

  Gate G;
  ASSERT_EQ(int(F.Server->scheduler().submit([&](bool) { G.wait(); })),
            int(RequestScheduler::Admission::Accepted));
  G.awaitEntered(); // the worker is provably parked in the gate

  Request Req;
  Req.Type = MsgType::Query;
  Req.RequestId = 32;
  Req.SessionId = S;
  Req.Command = "races";
  LogWriter W;
  encodeRequest(Req, W);
  std::promise<Response> Done;
  F.Server->submitFrame(
      std::vector<uint8_t>(W.data() + 4, W.data() + W.size()),
      [&](std::vector<uint8_t> Frame) {
        Response Resp;
        EXPECT_TRUE(Frame.size() >= 4 &&
                    decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp));
        Done.set_value(Resp);
      });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  G.release();
  Response Resp = Done.get_future().get();
  EXPECT_EQ(int(Resp.Type), int(RespType::Error));
  EXPECT_EQ(int(Resp.Code), int(ErrCode::Timeout));
  EXPECT_EQ(Resp.RequestId, 32u);
  EXPECT_GE(F.Server->metrics().timeouts(), 1u);
  F.Server->drain();
}

TEST(DebugServerTest, ShutdownDrainsThenRejects) {
  ServerFixture F;
  uint64_t S = F.openSession();

  Request Shut;
  Shut.Type = MsgType::Shutdown;
  Shut.RequestId = 41;
  Response Ack = F.submit(Shut);
  EXPECT_EQ(int(Ack.Type), int(RespType::ShutdownAck));
  EXPECT_TRUE(F.Server->shuttingDown());
  F.Server->drain();

  Request Req;
  Req.Type = MsgType::Query;
  Req.RequestId = 42;
  Req.SessionId = S;
  Req.Command = "where 0";
  Response Resp = F.submit(Req);
  EXPECT_EQ(int(Resp.Type), int(RespType::Error));
  EXPECT_EQ(int(Resp.Code), int(ErrCode::ShuttingDown));
}

//===----------------------------------------------------------------------===//
// Session registry: pinning and idle eviction
//===----------------------------------------------------------------------===//

TEST(SessionRegistryTest, IdleSessionsAreEvictedPinnedOnesSurvive) {
  ServerFixture F;
  SessionRegistry &Registry = F.Server->registry();
  uint64_t Old = F.openSession();
  uint64_t Pinned = F.openSession();

  SessionRegistry::Handle Pin = Registry.acquire(Pinned);
  ASSERT_TRUE(bool(Pin));

  // Ticks advance on every acquire; age both earlier sessions.
  uint64_t Fresh = F.openSession();
  for (int I = 0; I != 8; ++I)
    Registry.acquire(Fresh);

  EXPECT_EQ(Registry.evictIdle(4), 1u)
      << "the unpinned idle session goes; the pinned one stays";
  EXPECT_FALSE(bool(Registry.acquire(Old)));
  EXPECT_TRUE(bool(Registry.acquire(Pinned)))
      << "pinned sessions survive eviction";
  EXPECT_TRUE(bool(Registry.acquire(Fresh)));

  // Commands still work on a session that was pinned through eviction.
  Response Resp = F.query(Pinned, "where 0");
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
}

TEST(SessionRegistryTest, CloseKeepsPinnedSessionsAliveUntilRelease) {
  ServerFixture F;
  SessionRegistry &Registry = F.Server->registry();
  uint64_t S = F.openSession();
  SessionRegistry::Handle Pin = Registry.acquire(S);
  ASSERT_TRUE(bool(Pin));

  EXPECT_TRUE(Registry.close(S));
  EXPECT_EQ(Registry.numSessions(), 0u);
  // The handle still works: the session object outlives its map entry.
  {
    std::lock_guard<std::mutex> Lock(Pin->Mutex);
    EXPECT_FALSE(Pin->Debug->execute("list").empty());
  }
  // But new acquires fail.
  EXPECT_FALSE(bool(Registry.acquire(S)));
}

//===----------------------------------------------------------------------===//
// Concurrency: bit-identical to serial (the satellite-4 contract)
//===----------------------------------------------------------------------===//

const std::vector<std::string> &concurrencyScript() {
  static const std::vector<std::string> Script = {
      "where 0",     "back",    "back", "fwd",  "races",
      "restore 0 1", "where 1", "back", "list"};
  return Script;
}

TEST(DebugServerTest, DistinctSessionsConcurrentlyMatchSerialBitForBit) {
  DebugServerOptions Options;
  Options.Threads = 4;
  Options.QueueLimit = 0; // no cap: this test wants every answer
  ServerFixture F(Options);

  // Serial oracle: one fresh session, the script once.
  std::vector<std::string> Expected;
  {
    PpdController Controller(F.program(), F.Baseline.Log);
    DebugSession Session(F.program(), Controller);
    for (const std::string &Cmd : concurrencyScript())
      Expected.push_back(Session.execute(Cmd));
  }

  constexpr unsigned NumClients = 8;
  std::vector<uint64_t> Sessions;
  for (unsigned I = 0; I != NumClients; ++I)
    Sessions.push_back(F.openSession());

  std::vector<std::vector<std::string>> Got(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I != NumClients; ++I)
    Clients.emplace_back([&, I] {
      for (size_t C = 0; C != concurrencyScript().size(); ++C) {
        Request Req;
        Req.Type = MsgType::Query;
        Req.RequestId = I * 1000 + C;
        Req.SessionId = Sessions[I];
        Req.Command = concurrencyScript()[C];
        LogWriter W;
        encodeRequest(Req, W);
        std::promise<std::string> Done;
        F.Server->submitFrame(
            std::vector<uint8_t>(W.data() + 4, W.data() + W.size()),
            [&](std::vector<uint8_t> Frame) {
              Response Resp;
              bool Ok =
                  Frame.size() >= 4 &&
                  decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp);
              EXPECT_TRUE(Ok);
              EXPECT_EQ(int(Resp.Type), int(RespType::Result));
              Done.set_value(Resp.Text);
            });
        Got[I].push_back(Done.get_future().get());
      }
    });
  for (std::thread &T : Clients)
    T.join();

  for (unsigned I = 0; I != NumClients; ++I)
    for (size_t C = 0; C != Expected.size(); ++C)
      EXPECT_EQ(Got[I][C], Expected[C])
          << "client " << I << " command '" << concurrencyScript()[C]
          << "' diverged from the serial run";
}

TEST(DebugServerTest, SharedSessionInterleavedQueriesMatchSerial) {
  DebugServerOptions Options;
  Options.Threads = 4;
  Options.QueueLimit = 0;
  ServerFixture F(Options);
  uint64_t S = F.openSession();

  // Focus-independent commands only: with N clients interleaving on ONE
  // session, whole commands are atomic (the session mutex), and none of
  // these depends on the focus another client may have moved — so every
  // response must still be the serial answer.
  const std::vector<std::string> Script = {"where 0", "races", "restore 0 1",
                                           "list"};
  std::vector<std::string> Expected;
  {
    PpdController Controller(F.program(), F.Baseline.Log);
    DebugSession Session(F.program(), Controller);
    for (const std::string &Cmd : Script)
      Expected.push_back(Session.execute(Cmd));
  }

  constexpr unsigned NumClients = 8;
  std::vector<std::vector<std::string>> Got(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I != NumClients; ++I)
    Clients.emplace_back([&, I] {
      for (const std::string &Cmd : Script) {
        Response Resp = F.query(S, Cmd);
        EXPECT_EQ(int(Resp.Type), int(RespType::Result));
        Got[I].push_back(Resp.Text);
      }
    });
  for (std::thread &T : Clients)
    T.join();

  for (unsigned I = 0; I != NumClients; ++I)
    for (size_t C = 0; C != Script.size(); ++C)
      EXPECT_EQ(Got[I][C], Expected[C])
          << "client " << I << " command '" << Script[C] << "'";
}

} // namespace
