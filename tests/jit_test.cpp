//===- tests/jit_test.cpp - JIT replay tier differentials -----------------===//
//
// Part of PPD test suite.
//
// The copy-and-patch JIT tier (vm/Jit.cpp) must be observationally
// bit-identical to the decoded replay engine: same traces event by event,
// same instruction accounting at every quantum, same failures, same final
// shadow state. This suite pins the ExecMem arena's W^X contract, then
// drives the JIT against the decoded oracle across the examples/ corpus ×
// seeds × quanta, through every bailout path (side-exits, quantum expiry
// at each possible budget, breakpoint-stopped partial logs, the crash.ppl
// failing interval), and through repeated executions of the same compiled
// code. On hosts without the backend every JIT-tier replay transparently
// runs decoded, so the differentials still pass — they just stop proving
// anything about native code; the exercised-at-least-once assertion is
// gated on PPD_JIT_ENABLED.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Replay.h"
#include "log/ExecutionLog.h"
#include "support/ExecMem.h"
#include "vm/Jit.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace ppd;
using namespace ppd::test;

namespace {

const char *const Corpus[] = {
    "bank_race.ppl", "bounded_buffer.ppl", "crash.ppl",
    "deadlock.ppl",  "fig41.ppl",
};

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(PPD_EXAMPLES_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open corpus file " << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Full-field equality of two replay results — the bit-identity contract
/// between tiers. Mirrors the fuzz matrix's cmpReplay.
void expectReplayEqual(const ReplayResult &J, const ReplayResult &D,
                       const std::string &Label) {
  EXPECT_EQ(J.Ok, D.Ok) << Label;
  EXPECT_EQ(J.Partial, D.Partial) << Label;
  EXPECT_EQ(J.FailureHit, D.FailureHit) << Label;
  if (J.FailureHit && D.FailureHit) {
    EXPECT_EQ(int(J.Failure.Kind), int(D.Failure.Kind)) << Label;
    EXPECT_EQ(J.Failure.Stmt, D.Failure.Stmt) << Label;
    EXPECT_EQ(J.Failure.Pid, D.Failure.Pid) << Label;
  }
  EXPECT_EQ(J.Diverged, D.Diverged) << Label;
  EXPECT_EQ(J.Error, D.Error) << Label;
  EXPECT_EQ(J.Instructions, D.Instructions) << Label;
  ASSERT_EQ(J.Events.Events.size(), D.Events.Events.size()) << Label;
  for (size_t I = 0; I != J.Events.Events.size(); ++I)
    EXPECT_TRUE(J.Events.Events[I] == D.Events.Events[I])
        << Label << " event " << I;
  EXPECT_EQ(J.Shared, D.Shared) << Label;
  EXPECT_EQ(J.PrivateGlobals, D.PrivateGlobals) << Label;
  EXPECT_EQ(J.RootSlots, D.RootSlots) << Label;
  ASSERT_EQ(J.PostlogMismatches.size(), D.PostlogMismatches.size()) << Label;
  for (size_t I = 0; I != J.PostlogMismatches.size(); ++I) {
    EXPECT_EQ(J.PostlogMismatches[I].Var, D.PostlogMismatches[I].Var)
        << Label;
    EXPECT_EQ(J.PostlogMismatches[I].Actual, D.PostlogMismatches[I].Actual)
        << Label;
  }
  ASSERT_EQ(J.Output.size(), D.Output.size()) << Label;
  for (size_t I = 0; I != J.Output.size(); ++I) {
    EXPECT_EQ(J.Output[I].Pid, D.Output[I].Pid) << Label << " output " << I;
    EXPECT_EQ(J.Output[I].Value, D.Output[I].Value)
        << Label << " output " << I;
    EXPECT_EQ(J.Output[I].Stmt, D.Output[I].Stmt) << Label << " output " << I;
  }
  EXPECT_EQ(J.HasReturn, D.HasReturn) << Label;
  EXPECT_EQ(J.ReturnValue, D.ReturnValue) << Label;
}

/// Replays every interval of \p R through a tier-immediately JIT engine
/// and the decoded oracle, asserting bit-identity. Returns the number of
/// replays that entered native code.
uint64_t diffAllIntervals(const Ran &R, const std::string &Label,
                          uint64_t MaxInstructions = 50'000'000) {
  LogIndex Index(R.Log);
  JitOptions JOpts;
  JOpts.HotThreshold = 1; // native from the very first replay
  std::shared_ptr<JitProgram> JP = JitProgram::create(*R.Prog, JOpts);
  ReplayEngine JitEngine(*R.Prog, JP);
  ReplayEngine RefEngine(*R.Prog);
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid) {
    for (const LogInterval &Interval : Index.intervals(Pid)) {
      ReplayOptions J, D;
      J.Engine = ReplayEngineKind::Jit;
      J.MaxInstructions = MaxInstructions;
      D.Engine = ReplayEngineKind::Decoded;
      D.MaxInstructions = MaxInstructions;
      ReplayResult RJ = JitEngine.replay(R.Log, Pid, Interval, J);
      ReplayResult RD = RefEngine.replay(R.Log, Pid, Interval, D);
      expectReplayEqual(RJ, RD, Label + " pid " + std::to_string(Pid) +
                                    " interval " +
                                    std::to_string(Interval.Index));
    }
  }
  return JP ? JP->stats().JittedReplays : 0;
}

//===----------------------------------------------------------------------===//
// ExecMem arena: the W^X substrate
//===----------------------------------------------------------------------===//

TEST(ExecMemTest, AllocateWriteProtectExecute) {
  if (!ExecMemArena::supported())
    GTEST_SKIP() << "no mmap/mprotect on this platform";
  ExecMemArena Arena;
  ExecMemArena::Block *B = Arena.allocate(16);
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->Writable);
  EXPECT_GE(B->Size, size_t(16));
  EXPECT_GT(Arena.bytesReserved(), size_t(0));
#if defined(__x86_64__)
  // mov eax, 42; ret
  const uint8_t Code[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  std::memcpy(B->Data, Code, sizeof(Code));
  ASSERT_TRUE(Arena.makeExecutable(*B));
  EXPECT_FALSE(B->Writable);
  auto Fn = reinterpret_cast<int (*)()>(B->Data);
  EXPECT_EQ(Fn(), 42);

  // W^X round trip: flip back, patch the immediate, re-protect, re-run.
  ASSERT_TRUE(Arena.makeWritable(*B));
  EXPECT_TRUE(B->Writable);
  B->Data[1] = 0x07;
  ASSERT_TRUE(Arena.makeExecutable(*B));
  EXPECT_EQ(Fn(), 7);
#endif
}

TEST(ExecMemTest, ReleasedBlocksAreReused) {
  if (!ExecMemArena::supported())
    GTEST_SKIP() << "no mmap/mprotect on this platform";
  ExecMemArena Arena(size_t(1) << 16);
  ExecMemArena::Block *A = Arena.allocate(100);
  ASSERT_NE(A, nullptr);
  size_t Reserved = Arena.bytesReserved();
  Arena.release(A);
  // A smaller request must be served from the free list: no new mapping.
  ExecMemArena::Block *B = Arena.allocate(50);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(Arena.bytesReserved(), Reserved);
  EXPECT_TRUE(B->Writable);
}

TEST(ExecMemTest, BudgetExhaustionReturnsNull) {
  if (!ExecMemArena::supported())
    GTEST_SKIP() << "no mmap/mprotect on this platform";
  ExecMemArena Arena(4096);
  EXPECT_EQ(Arena.allocate(0), nullptr);
  EXPECT_EQ(Arena.allocate(size_t(1) << 20), nullptr) << "over budget";
  ExecMemArena::Block *A = Arena.allocate(1);
  ASSERT_NE(A, nullptr) << "one page fits a 4096-byte budget";
  EXPECT_EQ(Arena.allocate(1), nullptr) << "budget is exhausted";
  // Released pages satisfy later requests even at full budget.
  Arena.release(A);
  EXPECT_NE(Arena.allocate(1), nullptr);
}

//===----------------------------------------------------------------------===//
// JIT vs decoded differentials
//===----------------------------------------------------------------------===//

// The main oracle: every interval of every corpus program, across seeds
// and quanta (quantum 1 forces a budget side-exit at every fused
// superinstruction boundary), replays bit-identically on both tiers.
TEST(JitTest, MatchesDecodedAcrossCorpusSeedsAndQuanta) {
  uint64_t Jitted = 0;
  for (const char *Name : Corpus) {
    if (std::string(Name) == "deadlock.ppl")
      continue; // no completed run to index (outcome is Deadlock)
    std::string Source = readCorpusFile(Name);
    bool Fails = std::string(Name) == "crash.ppl";
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      for (uint32_t Quantum : {1u, 2u, 3u, 8u}) {
        MachineOptions MOpts;
        MOpts.Quantum = Quantum;
        Ran R = runProgram(Source, Seed, MOpts, {},
                           /*ExpectCompleted=*/!Fails);
        ASSERT_TRUE(R.Prog);
        Jitted += diffAllIntervals(
            R, std::string(Name) + " seed " + std::to_string(Seed) +
                   " quantum " + std::to_string(Quantum));
      }
    }
  }
#if PPD_JIT_ENABLED
  EXPECT_GT(Jitted, uint64_t(0))
      << "the differential never entered native code";
#endif
}

// A breakpoint-stopped run leaves open (postlog-less) intervals whose
// replay ends on the Stop path mid-interval; both tiers must cut the
// trace at the same event.
TEST(JitTest, BreakpointPartialLogsMatchDecoded) {
  std::string Source = readCorpusFile("bounded_buffer.ppl");
  auto Prog = compileOk(Source);
  ASSERT_TRUE(Prog);
  // Break on every statement in turn is overkill; one mid-program line
  // per quantum exercises the Stop bailout at different trace depths.
  for (uint32_t Quantum : {1u, 3u}) {
    for (StmtId Break = 0; Break != 6; ++Break) {
      MachineOptions MOpts;
      MOpts.Seed = 5;
      MOpts.Quantum = Quantum;
      MOpts.Breakpoints = {Break};
      Machine M(*Prog, MOpts);
      RunResult Result = M.run();
      Ran R;
      R.Prog = compileOk(Source);
      R.Result = Result;
      R.Log = M.takeLog();
      diffAllIntervals(R, "breakpoint stmt " + std::to_string(Break) +
                              " quantum " + std::to_string(Quantum));
    }
  }
}

// Quantum expiry inside native code: sweep the replay budget through
// every value up to the interval's full length, so the Budget side-exit
// fires at each possible slot — including mid-fused-superinstruction —
// and the charged-instruction accounting matches exactly.
TEST(JitTest, BudgetExpiryAgreesAtEveryCutoff) {
  Ran R = runProgram(readCorpusFile("fig41.ppl"), 3);
  ASSERT_TRUE(R.Prog);
  for (uint64_t Budget = 0; Budget <= 60; ++Budget)
    diffAllIntervals(R, "budget " + std::to_string(Budget), Budget);
}

// An impossible code budget makes every compile fail; the tier must fall
// back to decoded transparently, not error.
TEST(JitTest, CodeBudgetExhaustionFallsBackToDecoded) {
  Ran R = runProgram(readCorpusFile("bank_race.ppl"), 2);
  ASSERT_TRUE(R.Prog);
  LogIndex Index(R.Log);
  JitOptions JOpts;
  JOpts.HotThreshold = 1;
  JOpts.CodeBudgetBytes = 64; // below one page: every allocation fails
  std::shared_ptr<JitProgram> JP = JitProgram::create(*R.Prog, JOpts);
  ReplayEngine JitEngine(*R.Prog, JP);
  ReplayEngine RefEngine(*R.Prog);
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid)
    for (const LogInterval &Interval : Index.intervals(Pid)) {
      ReplayOptions J, D;
      J.Engine = ReplayEngineKind::Jit;
      D.Engine = ReplayEngineKind::Decoded;
      expectReplayEqual(JitEngine.replay(R.Log, Pid, Interval, J),
                        RefEngine.replay(R.Log, Pid, Interval, D),
                        "starved interval " + std::to_string(Interval.Index));
    }
  if (JP) {
    EXPECT_EQ(JP->stats().JittedReplays, uint64_t(0));
    EXPECT_GT(JP->stats().CompileFailures, uint64_t(0));
  }
}

// Compiled code is reused across replays: running the same intervals
// three times through one shared JitProgram must be idempotent (same
// results every pass) and must not recompile.
TEST(JitTest, RepeatedExecutionIsIdempotent) {
  Ran R = runProgram(readCorpusFile("bounded_buffer.ppl"), 7);
  ASSERT_TRUE(R.Prog);
  LogIndex Index(R.Log);
  JitOptions JOpts;
  JOpts.HotThreshold = 1;
  std::shared_ptr<JitProgram> JP = JitProgram::create(*R.Prog, JOpts);
  ReplayEngine JitEngine(*R.Prog, JP);
  ReplayOptions J;
  J.Engine = ReplayEngineKind::Jit;
  std::vector<ReplayResult> First;
  for (int Pass = 0; Pass != 3; ++Pass) {
    size_t Idx = 0;
    for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid)
      for (const LogInterval &Interval : Index.intervals(Pid)) {
        ReplayResult RR = JitEngine.replay(R.Log, Pid, Interval, J);
        if (Pass == 0)
          First.push_back(std::move(RR));
        else
          expectReplayEqual(RR, First[Idx],
                            "pass " + std::to_string(Pass) + " interval " +
                                std::to_string(Idx));
        ++Idx;
      }
  }
  if (JP) {
    JitStats S = JP->stats();
    EXPECT_LE(S.Compiles, uint64_t(R.Prog->Funcs.size()))
        << "recompiled a function that was already published";
  }
}

// The tier-up policy: with the default threshold of 2 the first (cold)
// replay of an e-block runs decoded and only re-executions go native.
TEST(JitTest, DefaultThresholdWarmsUpDecodedFirst) {
  Ran R = runProgram(readCorpusFile("fig41.ppl"), 1);
  ASSERT_TRUE(R.Prog);
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog); // default options: HotThreshold = 2
  if (!Engine.jit())
    GTEST_SKIP() << "JIT backend unavailable on this host";
  ASSERT_FALSE(Index.intervals(0).empty());
  const LogInterval &Interval = Index.intervals(0)[0];
  ReplayOptions J;
  J.Engine = ReplayEngineKind::Jit;
  Engine.replay(R.Log, 0, Interval, J);
  uint64_t AfterCold = Engine.jit()->stats().JittedReplays;
  Engine.replay(R.Log, 0, Interval, J);
  uint64_t AfterWarm = Engine.jit()->stats().JittedReplays;
#if PPD_JIT_ENABLED
  EXPECT_EQ(AfterCold, uint64_t(0)) << "cold replay must run decoded";
  EXPECT_GT(AfterWarm, AfterCold) << "warm replay must go native";
#else
  EXPECT_EQ(AfterWarm, uint64_t(0));
#endif
}

// What-if overrides replay through the same tier plumbing; divergence
// detection and override application must not differ across tiers.
TEST(JitTest, WhatIfOverridesMatchDecoded) {
  Ran R = runProgram(readCorpusFile("fig41.ppl"), 1);
  ASSERT_TRUE(R.Prog);
  LogIndex Index(R.Log);
  ASSERT_FALSE(Index.intervals(0).empty());
  JitOptions JOpts;
  JOpts.HotThreshold = 1;
  ReplayEngine JitEngine(*R.Prog, JitProgram::create(*R.Prog, JOpts));
  ReplayEngine RefEngine(*R.Prog);
  VarId Var = varNamed(*R.Prog->Symbols, "a");
  for (uint32_t Event = 1; Event <= 4; ++Event) {
    ReplayOptions J, D;
    J.Engine = ReplayEngineKind::Jit;
    D.Engine = ReplayEngineKind::Decoded;
    ReplayOverride O;
    O.AtEvent = Event;
    O.Var = Var;
    O.Value = 41;
    J.Overrides = {O};
    D.Overrides = {O};
    const LogInterval &Interval = Index.intervals(0)[0];
    expectReplayEqual(JitEngine.replay(R.Log, 0, Interval, J),
                      RefEngine.replay(R.Log, 0, Interval, D),
                      "what-if at event " + std::to_string(Event));
  }
}

} // namespace
