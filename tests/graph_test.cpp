//===- tests/graph_test.cpp - Dynamic graph construction tests ------------===//
//
// Part of PPD test suite: DynamicGraph storage, GraphBuilder fragment
// construction — node kinds (§4.2), %n parameter nodes, scoped writer
// maps (recursion), element-precise array dependences, flow edges.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "sema/Accesses.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Builds a controller over a finished run and traces everything needed.
struct Session {
  Ran R;
  std::unique_ptr<PpdController> C;

  explicit Session(const std::string &Source, uint64_t Seed = 1,
                   CompileOptions COpts = {}, MachineOptions MOpts = {},
                   bool ExpectCompleted = true) {
    R = runProgram(Source, Seed, MOpts, COpts, ExpectCompleted);
    C = std::make_unique<PpdController>(*R.Prog, std::move(R.Log));
  }

  std::vector<DynNodeId> nodesLabelled(const std::string &Text) const {
    std::vector<DynNodeId> Out;
    for (uint32_t Id = 0; Id != C->graph().numNodes(); ++Id)
      if (C->graph().node(Id).Label.find(Text) != std::string::npos)
        Out.push_back(Id);
    return Out;
  }

  bool hasDataEdge(DynNodeId From, DynNodeId To) const {
    for (const DynEdge &E : C->graph().outEdges(From))
      if (E.To == To && (E.Kind == DynEdgeKind::Data ||
                         E.Kind == DynEdgeKind::CrossData))
        return true;
    return false;
  }
};

TEST(DynamicGraphTest, NodeAndEdgeStorage) {
  DynamicGraph G;
  DynNode A;
  A.Kind = DynNodeKind::Entry;
  A.Label = "entry";
  DynNodeId IdA = G.addNode(A);
  DynNode B;
  B.Kind = DynNodeKind::Singular;
  B.Pid = 0;
  B.Interval = 0;
  B.Event = 0;
  DynNodeId IdB = G.addNode(B);

  G.addEdge({DynEdgeKind::Data, IdA, IdB, 3, -1});
  EXPECT_EQ(G.numNodes(), 2u);
  ASSERT_EQ(G.inEdges(IdB).size(), 1u);
  EXPECT_EQ(G.inEdges(IdB)[0].From, IdA);
  ASSERT_EQ(G.outEdges(IdA).size(), 1u);
  EXPECT_TRUE(G.inEdges(IdA).empty());
  EXPECT_EQ(G.nodeOfEvent(0, 0, 0), IdB);
  EXPECT_EQ(G.nodeOfEvent(0, 0, 1), InvalidId);
  EXPECT_FALSE(G.hasInterval(0, 0));
  G.markInterval(0, 0);
  EXPECT_TRUE(G.hasInterval(0, 0));
}

TEST(GraphBuilderTest, FlowEdgesChainEventsInOrder) {
  Session S("func main() { int a = 1; int b = 2; print(a + b); }");
  S.C->startAtLastEvent(0);
  // Flow edges: ENTRY → a → b → print.
  unsigned FlowEdges = 0;
  for (const DynEdge &E : S.C->graph().edges())
    FlowEdges += E.Kind == DynEdgeKind::Flow;
  EXPECT_EQ(FlowEdges, 3u);
}

TEST(GraphBuilderTest, ElementPreciseArrayDependences) {
  Session S(R"(
func main() {
  int a[4];
  a[0] = 10;
  a[1] = 20;
  print(a[0]);
}
)");
  DynNodeId Print = S.C->startAtLastEvent(0);
  auto W0 = S.nodesLabelled("a[0] = 10");
  auto W1 = S.nodesLabelled("a[1] = 20");
  ASSERT_EQ(W0.size(), 1u);
  ASSERT_EQ(W1.size(), 1u);
  EXPECT_TRUE(S.hasDataEdge(W0[0], Print))
      << "the read of a[0] depends on the a[0] write";
  EXPECT_FALSE(S.hasDataEdge(W1[0], Print))
      << "...but not on the a[1] write (element precision)";
}

TEST(GraphBuilderTest, WholeArrayWriteSupersedesElementWriters) {
  // Redeclaration in an inner scope zero-fills: a fresh variable whose
  // whole-array write is the only writer.
  Session S(R"(
func f(int k) {
  int a[4];
  a[0] = k;
  return a[0];
}
func main() {
  int x = f(1);
  int y = f(2);
  print(x + y);
}
)");
  S.C->startAtLastEvent(0);
  (void)S;
}

TEST(GraphBuilderTest, RecursionGetsScopedWriterMaps) {
  // Inline-replayed recursion happens in FullTrace mode: every frame's
  // params live in their own scope, so p in the outer frame is not
  // confused with p in the inner frame.
  CompileOptions COpts;
  MachineOptions MOpts;
  MOpts.Mode = RunMode::FullTrace;
  auto R = runProgram(
      "func fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n"
      "func main() { print(fact(4)); }",
      1, MOpts, COpts);
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{24}));
  // (The FullTrace buffers feed the same builder; the assertion here is
  // that the run and the nested CallBegin/CallEnd bracketing completed
  // without tripping the builder's scope assertions in debug builds.)
  unsigned Begins = 0, Ends = 0;
  // main's process trace is index 0.
  // Count bracket balance.
  // Note: traces()[0] only exists while the machine lives; runProgram
  // already dropped it, so re-run quickly here.
  auto Prog = compileOk(
      "func fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n"
      "func main() { print(fact(4)); }");
  MachineOptions M2;
  M2.Mode = RunMode::FullTrace;
  Machine M(*Prog, M2);
  M.run();
  for (const TraceEvent &E : M.traces()[0].Events) {
    Begins += E.Kind == TraceEventKind::CallBegin;
    Ends += E.Kind == TraceEventKind::CallEnd;
  }
  EXPECT_EQ(Begins, 4u) << "fact(4) → fact(3) → fact(2) → fact(1)";
  EXPECT_EQ(Begins, Ends);
}

TEST(GraphBuilderTest, InlineCalleeParamNodesSeedScope) {
  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = true;
  Session S(R"(
func leaf(int v) { return v + 100; }
func main() {
  int x = 7;
  print(leaf(x));
}
)",
            1, COpts);
  DynNodeId Print = S.C->startAtLastEvent(0);
  (void)Print;

  // The %1 node carries x's value and feeds the sub-graph; inside the
  // callee, `return v + 100` reads v from the %1 node.
  auto Params = S.nodesLabelled("%1");
  ASSERT_EQ(Params.size(), 1u);
  const DynNode &P1 = S.C->graph().node(Params[0]);
  EXPECT_TRUE(P1.HasValue);
  EXPECT_EQ(P1.Value, 7);

  auto Returns = S.nodesLabelled("return v + 100");
  ASSERT_EQ(Returns.size(), 1u);
  EXPECT_TRUE(S.hasDataEdge(Params[0], Returns[0]))
      << "v's value flows from the %1 binding node";

  // And the x that fed %1 resolves to `int x = 7`.
  auto XDef = S.nodesLabelled("int x = 7");
  ASSERT_EQ(XDef.size(), 1u);
  EXPECT_TRUE(S.hasDataEdge(XDef[0], Params[0]));
}

TEST(GraphBuilderTest, SkippedCallRedirectsGlobalReads) {
  Session S(R"(
shared int g;
func setter() { g = 5; }
func main() {
  setter();
  print(g);
}
)");
  DynNodeId Print = S.C->startAtLastEvent(0);
  // g's read resolves (within the same interval) to the *unexpanded*
  // sub-graph node, inviting expansion.
  auto Subs = S.nodesLabelled("setter(...)");
  ASSERT_EQ(Subs.size(), 1u);
  EXPECT_TRUE(S.hasDataEdge(Subs[0], Print));
  EXPECT_FALSE(S.C->graph().node(Subs[0]).Expanded);

  // Expansion pulls in the callee's `g = 5` statement.
  DynNodeId Entry = S.C->expandCall(Subs[0]);
  ASSERT_NE(Entry, InvalidId);
  EXPECT_EQ(S.nodesLabelled("g = 5").size(), 1u);
}

TEST(GraphBuilderTest, PredicateValuesAndBranchLabels) {
  Session S(R"(
func main() {
  int x = 3;
  if (x > 5) print(1);
  else print(2);
  while (x > 0) x = x - 1;
}
)");
  S.C->startAtLastEvent(0);
  auto Ifs = S.nodesLabelled("if (x > 5)");
  ASSERT_EQ(Ifs.size(), 1u);
  EXPECT_TRUE(S.C->graph().node(Ifs[0]).HasValue);
  EXPECT_EQ(S.C->graph().node(Ifs[0]).Value, 0);

  // Four while-predicate events: 3, 2, 1, 0 — each a separate node; the
  // body executions are control dependent on the *previous* evaluation.
  auto Whiles = S.nodesLabelled("while (x > 0)");
  EXPECT_EQ(Whiles.size(), 4u);
  auto Decs = S.nodesLabelled("x = x - 1");
  EXPECT_EQ(Decs.size(), 3u);
  for (DynNodeId Dec : Decs) {
    bool HasWhileParent = false;
    for (const DynEdge &E : S.C->graph().inEdges(Dec))
      if (E.Kind == DynEdgeKind::Control)
        HasWhileParent |= S.C->graph().node(E.From).Label.find("while") !=
                          std::string::npos;
    EXPECT_TRUE(HasWhileParent);
  }
}

TEST(GraphBuilderTest, EveryReadHasADependenceSource) {
  // Graph completeness invariant: every value a singular node read arrived
  // through some incoming data/cross edge (possibly from ENTRY or an
  // Initial node).
  Session S(R"(
shared int g = 5;
func main() {
  int x = g + 2;
  int y = x * x;
  if (y > 10) y = y - g;
  print(y);
}
)");
  DynNodeId Last = S.C->startAtLastEvent(0);
  S.C->resolveAllCrossReads();
  (void)Last;
  for (uint32_t Id = 0; Id != S.C->graph().numNodes(); ++Id) {
    const DynNode &N = S.C->graph().node(Id);
    if (N.Kind != DynNodeKind::Singular)
      continue;
    // Reconstruct how many distinct variables this statement read.
    StmtAccesses Acc = collectStmtAccesses(*S.R.Prog->Ast->stmt(N.Stmt));
    if (Acc.Reads.empty())
      continue;
    unsigned DataIn = 0;
    for (const DynEdge &E : S.C->graph().inEdges(Id))
      DataIn += E.Kind == DynEdgeKind::Data ||
                E.Kind == DynEdgeKind::CrossData;
    EXPECT_GE(DataIn, 1u) << "node " << N.Label << " reads "
                          << Acc.Reads.size() << " vars but has no source";
  }
}

TEST(GraphBuilderTest, SliceDotContainsOnlyAncestors) {
  Session S(R"(
func main() {
  int used = 1;
  int unused = 999;
  print(used);
}
)");
  DynNodeId Last = S.C->startAtLastEvent(0);
  std::string Dot = S.C->graph().dot(*S.R.Prog->Ast, {Last});
  EXPECT_NE(Dot.find("int used = 1"), std::string::npos);
  EXPECT_EQ(Dot.find("int unused = 999"), std::string::npos)
      << "the backward slice excludes irrelevant statements";
}

} // namespace
