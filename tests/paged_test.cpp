//===- tests/paged_test.cpp - Paged log store tier ------------------------===//
//
// Part of PPD test suite.
//
// The paged log tier (PageStore + BufferPool + ProgramDb) must be
// observationally identical to the whole-load path: a debugging session
// over a pooled store answers every query with the same bytes a session
// over an eagerly decoded log answers, whatever the pool budget. This
// suite drives pooled-vs-whole differentials across the examples/ corpus
// × seeds under an eviction-forcing budget, pins the eviction/pinning
// contract of the pool directly (pinned frames never evicted, single
// decode under concurrent faults), validates the skim-built index against
// the decoded one, round-trips the `.ppdb` sidecar through staleness and
// every-byte truncation, and checks `ppd compact`'s streaming v1→v2
// migration produces byte-identical files to a direct v2 save.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/DebugSession.h"
#include "log/BufferPool.h"
#include "log/PageStore.h"
#include "log/ProgramDb.h"
#include "pardyn/ParallelDynamicGraph.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ppd;
using namespace ppd::test;

namespace {

const char *const Corpus[] = {
    "bank_race.ppl", "bounded_buffer.ppl", "crash.ppl",
    "deadlock.ppl",  "fig41.ppl",
};

std::string readCorpusFile(const std::string &Name) {
  std::ifstream In(std::string(PPD_EXAMPLES_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open corpus file " << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Four processes (main + three workers): enough distinct sections to
/// exercise eviction and concurrent fault-in.
const char *const FourProcSource = R"(
shared int total;
chan done;
func worker(int n) {
  int i = 0;
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + i;
    total = total + 1;
  }
  send(done, acc);
}
func main() {
  spawn worker(8);
  spawn worker(12);
  spawn worker(16);
  int a = recv(done);
  int b = recv(done);
  int c = recv(done);
  print(a + b + c);
}
)";

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/ppd_paged_" + Name;
}

/// Saves \p Log as v2 and opens it as a paged store.
std::shared_ptr<const PageStore> saveAndOpen(const ExecutionLog &Log,
                                             const std::string &Path) {
  EXPECT_TRUE(Log.save(Path));
  std::string Error;
  auto Store = PageStore::open(Path, &Error);
  EXPECT_TRUE(Store != nullptr) << Error;
  return Store;
}

void expectIndexEqual(const LogIndex &A, const LogIndex &B,
                      const std::string &Label) {
  ASSERT_EQ(A.numProcs(), B.numProcs()) << Label;
  for (uint32_t Pid = 0; Pid != A.numProcs(); ++Pid) {
    const std::vector<LogInterval> &IA = A.intervals(Pid);
    const std::vector<LogInterval> &IB = B.intervals(Pid);
    ASSERT_EQ(IA.size(), IB.size()) << Label << " pid " << Pid;
    for (size_t I = 0; I != IA.size(); ++I) {
      EXPECT_EQ(IA[I].Index, IB[I].Index) << Label;
      EXPECT_EQ(IA[I].EBlock, IB[I].EBlock) << Label;
      EXPECT_EQ(IA[I].PrelogRecord, IB[I].PrelogRecord) << Label;
      EXPECT_EQ(IA[I].PostlogRecord, IB[I].PostlogRecord) << Label;
      EXPECT_EQ(IA[I].Parent, IB[I].Parent) << Label;
      EXPECT_EQ(IA[I].Depth, IB[I].Depth) << Label;
      EXPECT_EQ(IA[I].ExitsFunction, IB[I].ExitsFunction) << Label;
    }
    EXPECT_EQ(A.openIntervals(Pid), B.openIntervals(Pid))
        << Label << " pid " << Pid;
  }
}

/// Field-for-field equality of two parallel dynamic graphs, including
/// the finalize()-derived vector clocks — an adopted sidecar graph must
/// be indistinguishable from one built by scanning the records.
void expectGraphEqual(const ParallelDynamicGraph &A,
                      const ParallelDynamicGraph &B,
                      const std::string &Label) {
  ASSERT_EQ(A.numProcs(), B.numProcs()) << Label;
  for (uint32_t Pid = 0; Pid != A.numProcs(); ++Pid) {
    const std::vector<SyncNode> &NA = A.nodes(Pid);
    const std::vector<SyncNode> &NB = B.nodes(Pid);
    ASSERT_EQ(NA.size(), NB.size()) << Label << " pid " << Pid;
    for (size_t I = 0; I != NA.size(); ++I) {
      EXPECT_EQ(int(NA[I].Kind), int(NB[I].Kind)) << Label;
      EXPECT_EQ(NA[I].Object, NB[I].Object) << Label;
      EXPECT_EQ(NA[I].Seq, NB[I].Seq) << Label;
      EXPECT_EQ(NA[I].PartnerSeq, NB[I].PartnerSeq) << Label;
      EXPECT_EQ(NA[I].Stmt, NB[I].Stmt) << Label;
      EXPECT_EQ(NA[I].RecordIdx, NB[I].RecordIdx) << Label;
      EXPECT_EQ(NA[I].Clock, NB[I].Clock) << Label << " clock pid " << Pid
                                          << " node " << I;
    }
    const std::vector<InternalEdge> &EA = A.edges(Pid);
    const std::vector<InternalEdge> &EB = B.edges(Pid);
    ASSERT_EQ(EA.size(), EB.size()) << Label << " pid " << Pid;
    for (size_t I = 0; I != EA.size(); ++I) {
      EXPECT_EQ(EA[I].Pid, EB[I].Pid) << Label;
      EXPECT_EQ(EA[I].EndNode, EB[I].EndNode) << Label;
      EXPECT_EQ(EA[I].Reads.toVector(), EB[I].Reads.toVector()) << Label;
      EXPECT_EQ(EA[I].Writes.toVector(), EB[I].Writes.toVector()) << Label;
    }
  }
}

std::vector<uint8_t> readFileRaw(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFileRaw(const std::string &Path, const uint8_t *Data,
                  size_t Size) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Data), std::streamsize(Size));
  ASSERT_TRUE(Out.good()) << Path;
}

//===----------------------------------------------------------------------===//
// Pooled-vs-whole differentials
//===----------------------------------------------------------------------===//

// The main oracle: the same debug-session script over the same log must
// produce byte-identical answers whether the log was decoded whole up
// front or faulted in section by section through an 8 KiB pool — a budget
// small enough that multi-process logs evict sections mid-session.
TEST(PagedTest, SessionMatchesWholeLoadAcrossCorpusAndSeeds) {
  const char *Script[] = {"where 0", "back",  "back",        "fwd",
                          "where 1", "back",  "races",       "restore 0 1",
                          "node 3",  "where 0"};
  int FileIdx = 0;
  for (const char *Name : Corpus) {
    std::string Source = readCorpusFile(Name);
    for (uint64_t Seed : {1, 5, 11}) {
      Ran R = runProgram(Source, Seed, {}, {}, /*ExpectCompleted=*/false);
      ASSERT_TRUE(R.Prog != nullptr);
      std::string Label =
          std::string(Name) + " seed " + std::to_string(Seed);
      std::string Path =
          tempPath("corpus_" + std::to_string(FileIdx++) + ".log");
      auto Store = saveAndOpen(R.Log, Path);
      ASSERT_TRUE(Store != nullptr);

      ExecutionLog WholeLog;
      ASSERT_TRUE(ExecutionLog::load(Path, WholeLog)) << Label;
      PpdController Whole(*R.Prog, std::move(WholeLog));
      DebugSession WholeSession(*R.Prog, Whole);

      auto Pool = std::make_shared<BufferPool>(size_t(8) << 10);
      PpdController Paged(*R.Prog, PagedLog{Store, Pool});
      DebugSession PagedSession(*R.Prog, Paged);

      EXPECT_EQ(Whole.log().Procs.size(), Paged.log().Procs.size())
          << Label;
      for (const char *Cmd : Script)
        EXPECT_EQ(WholeSession.execute(Cmd), PagedSession.execute(Cmd))
            << Label << " cmd '" << Cmd << "'";
      std::remove(Path.c_str());
    }
  }
}

// The skim-built index (no record bodies decoded) must equal the index
// derived from fully decoded records, and the store facade must carry the
// same headers and output trailer as the real log.
TEST(PagedTest, SkimIndexAndFacadeMatchDecodedLog) {
  for (const char *Name : Corpus) {
    std::string Source = readCorpusFile(Name);
    Ran R = runProgram(Source, 7, {}, {}, /*ExpectCompleted=*/false);
    ASSERT_TRUE(R.Prog != nullptr);
    std::string Path = tempPath(std::string("skim_") + Name + ".log");
    auto Store = saveAndOpen(R.Log, Path);
    ASSERT_TRUE(Store != nullptr);

    LogIndex Decoded(R.Log);
    LogIndex Skimmed(*Store);
    expectIndexEqual(Decoded, Skimmed, Name);

    ExecutionLog Facade = Store->facadeLog();
    ASSERT_EQ(Facade.Procs.size(), R.Log.Procs.size()) << Name;
    for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid) {
      EXPECT_EQ(Facade.Procs[Pid].Pid, R.Log.Procs[Pid].Pid);
      EXPECT_EQ(Facade.Procs[Pid].RootFunc, R.Log.Procs[Pid].RootFunc);
      EXPECT_EQ(Facade.Procs[Pid].Args, R.Log.Procs[Pid].Args);
      EXPECT_EQ(Facade.Procs[Pid].PrelogCount,
                R.Log.Procs[Pid].PrelogCount);
      EXPECT_EQ(Facade.Procs[Pid].Records.size(), size_t(0)) << Name;
      EXPECT_EQ(Store->section(Pid).NumRecords,
                R.Log.Procs[Pid].Records.size());
    }
    ASSERT_EQ(Facade.Output.size(), R.Log.Output.size()) << Name;
    for (size_t I = 0; I != Facade.Output.size(); ++I) {
      EXPECT_EQ(Facade.Output[I].Pid, R.Log.Output[I].Pid);
      EXPECT_EQ(Facade.Output[I].Value, R.Log.Output[I].Value);
      EXPECT_EQ(Facade.Output[I].Stmt, R.Log.Output[I].Stmt);
    }
    std::remove(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// BufferPool eviction and concurrency
//===----------------------------------------------------------------------===//

// A one-byte budget forces eviction on every unpinned insert, but pinned
// frames must survive any pressure and keep serving correct bytes.
TEST(PagedTest, EvictionUnderPressureNeverDropsPinnedFrames) {
  Ran R = runProgram(FourProcSource, 3);
  ASSERT_TRUE(R.Prog != nullptr);
  ASSERT_EQ(R.Log.Procs.size(), size_t(4));
  std::string Path = tempPath("evict.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);

  BufferPool Pool(/*BudgetBytes=*/1, /*NumShards=*/1);
  BufferPool::Pin P0 = Pool.pin(*Store, 0);
  ASSERT_TRUE(P0);
  // Insert the remaining sections while section 0 stays pinned: the pool
  // is over budget the whole time, yet the pinned frame must survive.
  for (uint32_t Pid = 1; Pid != 4; ++Pid) {
    BufferPool::Pin P = Pool.pin(*Store, Pid);
    ASSERT_TRUE(P);
    EXPECT_EQ(P.log().Records.size(), Store->section(Pid).NumRecords);
  }
  EXPECT_EQ(P0.log().Records.size(), Store->section(0).NumRecords);
  BufferPoolStats S = Pool.stats();
  EXPECT_GT(S.Evictions, uint64_t(0));
  EXPECT_GT(S.BytesPinned, uint64_t(0));
  EXPECT_EQ(S.Misses, uint64_t(4));

  // Re-pinning section 0 is a hit — pinned frames were never evicted.
  BufferPool::Pin Again = Pool.pin(*Store, 0);
  ASSERT_TRUE(Again);
  EXPECT_EQ(Pool.stats().Hits, S.Hits + 1);

  // After every pin drops, eviction pressure may reclaim everything but
  // the per-shard LRU survivor.
  P0 = BufferPool::Pin();
  Again = BufferPool::Pin();
  EXPECT_EQ(Pool.stats().BytesPinned, uint64_t(0));
  std::remove(Path.c_str());
}

// With room for everything, concurrent faults on the same sections must
// decode each section exactly once (single-flight) and every pin must
// observe fully decoded records. Run under TSan in CI.
TEST(PagedTest, ConcurrentPinsDecodeEachSectionOnce) {
  Ran R = runProgram(FourProcSource, 5);
  ASSERT_TRUE(R.Prog != nullptr);
  std::string Path = tempPath("concurrent.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);

  BufferPool Pool(size_t(64) << 20);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 8; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != 64; ++I) {
        uint32_t Pid = (T + I) % Store->numProcs();
        BufferPool::Pin P = Pool.pin(*Store, Pid);
        ASSERT_TRUE(P);
        EXPECT_EQ(P.log().Records.size(),
                  Store->section(Pid).NumRecords);
        if (I % 16 == 0)
          (void)Pool.stats();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  BufferPoolStats S = Pool.stats();
  EXPECT_EQ(S.Insertions, uint64_t(Store->numProcs()));
  EXPECT_EQ(S.Evictions, uint64_t(0));
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(8 * 64));
  std::remove(Path.c_str());
}

// A pooled session under a starved pool and a concurrent replay service
// still matches the whole-load session: eviction churn must never change
// an answer. Run under TSan in CI.
TEST(PagedTest, StarvedPoolWithReplayWorkersMatchesWhole) {
  Ran R = runProgram(FourProcSource, 9);
  ASSERT_TRUE(R.Prog != nullptr);
  std::string Path = tempPath("starved.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);

  PpdControllerOptions COpts;
  COpts.Service.Threads = 4;
  ExecutionLog WholeLog;
  ASSERT_TRUE(ExecutionLog::load(Path, WholeLog));
  PpdController Whole(*R.Prog, std::move(WholeLog), COpts);
  DebugSession WholeSession(*R.Prog, Whole);

  auto Pool = std::make_shared<BufferPool>(/*BudgetBytes=*/1);
  PpdController Paged(*R.Prog, PagedLog{Store, Pool}, nullptr, COpts);
  DebugSession PagedSession(*R.Prog, Paged);

  const char *Script[] = {"where 0", "back", "where 1", "back", "where 2",
                          "back",    "fwd",  "races",   "restore 0 1"};
  for (const char *Cmd : Script)
    EXPECT_EQ(WholeSession.execute(Cmd), PagedSession.execute(Cmd))
        << "cmd '" << Cmd << "'";
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The .ppdb sidecar
//===----------------------------------------------------------------------===//

TEST(PagedTest, ProgramDbRoundTripAdoptsPersistedIndex) {
  Ran R = runProgram(readCorpusFile("bounded_buffer.ppl"), 3);
  ASSERT_TRUE(R.Prog != nullptr);
  std::string Path = tempPath("ppdb_rt.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);
  std::string DbPath = programDbPathFor(Path);

  LogIndex Skimmed(*Store);
  ASSERT_TRUE(writeProgramDb(DbPath, *R.Prog, *Store, Skimmed));

  std::shared_ptr<const LogIndex> Adopted;
  EXPECT_EQ(int(readProgramDb(DbPath, *R.Prog, *Store, Adopted)),
            int(ProgramDbStatus::Ok));
  ASSERT_TRUE(Adopted != nullptr);
  expectIndexEqual(Skimmed, *Adopted, "round trip");

  std::remove(Path.c_str());
  std::remove(DbPath.c_str());
}

// The sidecar's persisted parallel dynamic graph, adopted on a warm
// open, must match the graph built by scanning the whole decoded log —
// node rows, edge READ/WRITE sets, and the recomputed vector clocks.
// Multi-process source so partner edges and cross-process clocks are
// actually exercised.
TEST(PagedTest, ProgramDbRoundTripAdoptsPersistedGraph) {
  Ran R = runProgram(FourProcSource, 7);
  ASSERT_TRUE(R.Prog != nullptr);
  std::string Path = tempPath("ppdb_graph.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);
  std::string DbPath = programDbPathFor(Path);

  LogIndex Skimmed(*Store);
  ASSERT_TRUE(writeProgramDb(DbPath, *R.Prog, *Store, Skimmed));

  std::shared_ptr<const LogIndex> Index;
  std::shared_ptr<const ParallelDynamicGraph> Adopted;
  ASSERT_EQ(int(readProgramDb(DbPath, *R.Prog, *Store, Index, &Adopted)),
            int(ProgramDbStatus::Ok));
  ASSERT_TRUE(Adopted != nullptr);

  ParallelDynamicGraph FromLog(R.Log, R.Prog->Symbols->NumSharedVars);
  expectGraphEqual(FromLog, *Adopted, "graph round trip");

  // A session adopting the graph answers queries identically to a
  // whole-load session (the graph feeds races and cross-process reads).
  PpdController Whole(*R.Prog, R.Log);
  DebugSession WholeSession(*R.Prog, Whole);
  auto Pool = std::make_shared<BufferPool>(size_t(1) << 20);
  PpdControllerOptions COpts;
  COpts.AdoptedGraph = Adopted;
  PpdController Paged(*R.Prog, PagedLog{Store, Pool}, Index, COpts);
  DebugSession PagedSession(*R.Prog, Paged);
  const char *Script[] = {"where 0", "back", "races", "where 1", "back"};
  for (const char *Cmd : Script)
    EXPECT_EQ(WholeSession.execute(Cmd), PagedSession.execute(Cmd))
        << "cmd '" << Cmd << "'";

  std::remove(Path.c_str());
  std::remove(DbPath.c_str());
}

TEST(PagedTest, ProgramDbDetectsStaleProgramAndStaleLog) {
  std::string Source = readCorpusFile("bounded_buffer.ppl");
  Ran R = runProgram(Source, 3);
  ASSERT_TRUE(R.Prog != nullptr);
  std::string Path = tempPath("ppdb_stale.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);
  std::string DbPath = programDbPathFor(Path);
  std::remove(DbPath.c_str());

  std::shared_ptr<const LogIndex> Index;
  EXPECT_EQ(int(readProgramDb(DbPath, *R.Prog, *Store, Index)),
            int(ProgramDbStatus::Missing));

  LogIndex Skimmed(*Store);
  ASSERT_TRUE(writeProgramDb(DbPath, *R.Prog, *Store, Skimmed));

  // Same source, different partitioning: a recompile that changes
  // debugging-visible structure must read as Stale.
  CompileOptions LoopOpts;
  LoopOpts.EBlocks.LoopBlocks = true;
  auto OtherProg = compileOk(Source, LoopOpts);
  ASSERT_TRUE(OtherProg != nullptr);
  EXPECT_EQ(int(readProgramDb(DbPath, *OtherProg, *Store, Index)),
            int(ProgramDbStatus::Stale));

  // Same program, different execution instance: the sidecar is keyed to
  // one exact log file. (Mutate the log rather than re-running with a
  // different seed — bounded_buffer's channel synchronization makes its
  // schedule, and therefore its log bytes, seed-independent.)
  ExecutionLog OtherLog = R.Log;
  OtherLog.Output.push_back({0, 42, InvalidId});
  std::string OtherPath = tempPath("ppdb_stale_other.log");
  auto OtherStore = saveAndOpen(OtherLog, OtherPath);
  ASSERT_TRUE(OtherStore != nullptr);
  EXPECT_EQ(int(readProgramDb(DbPath, *R.Prog, *OtherStore, Index)),
            int(ProgramDbStatus::Stale));
  EXPECT_TRUE(Index == nullptr);

  std::remove(Path.c_str());
  std::remove(OtherPath.c_str());
  std::remove(DbPath.c_str());
}

// Truncation at every byte offset: the sidecar codec must answer
// Corrupt/Stale — never Ok, never crash, never hand back an index.
TEST(PagedTest, ProgramDbTruncationAtEveryByteIsRejected) {
  Ran R = runProgram(readCorpusFile("bounded_buffer.ppl"), 3);
  ASSERT_TRUE(R.Prog != nullptr);
  std::string Path = tempPath("ppdb_trunc.log");
  auto Store = saveAndOpen(R.Log, Path);
  ASSERT_TRUE(Store != nullptr);
  std::string DbPath = programDbPathFor(Path);
  LogIndex Skimmed(*Store);
  ASSERT_TRUE(writeProgramDb(DbPath, *R.Prog, *Store, Skimmed));

  std::vector<uint8_t> Bytes = readFileRaw(DbPath);
  ASSERT_GT(Bytes.size(), size_t(0));
  std::string TruncPath = tempPath("ppdb_trunc.log.ppdb.cut");
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    writeFileRaw(TruncPath, Bytes.data(), Len);
    std::shared_ptr<const LogIndex> Index;
    std::shared_ptr<const ParallelDynamicGraph> Graph;
    ProgramDbStatus Status =
        readProgramDb(TruncPath, *R.Prog, *Store, Index, &Graph);
    EXPECT_NE(int(Status), int(ProgramDbStatus::Ok)) << "length " << Len;
    EXPECT_TRUE(Index == nullptr) << "length " << Len;
    EXPECT_TRUE(Graph == nullptr) << "length " << Len;
  }

  std::remove(Path.c_str());
  std::remove(DbPath.c_str());
  std::remove(TruncPath.c_str());
}

//===----------------------------------------------------------------------===//
// PageStore validation and compact migration
//===----------------------------------------------------------------------===//

// A store must reject a truncated v2 file at every byte offset (open
// validates section extents and the output trailer), and name the
// compact migration when pointed at a v1 file.
TEST(PagedTest, StoreRejectsV1AndEveryTruncation) {
  Ran R = runProgram(readCorpusFile("fig41.ppl"), 1);
  ASSERT_TRUE(R.Prog != nullptr);

  std::string V1Path = tempPath("store_v1.log");
  ASSERT_TRUE(R.Log.save(V1Path, LogFormat::V1));
  std::string Error;
  EXPECT_TRUE(PageStore::open(V1Path, &Error) == nullptr);
  EXPECT_NE(Error.find("ppd compact"), std::string::npos) << Error;

  std::string V2Path = tempPath("store_v2.log");
  ASSERT_TRUE(R.Log.save(V2Path));
  std::vector<uint8_t> Bytes = readFileRaw(V2Path);
  std::string CutPath = tempPath("store_cut.log");
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    writeFileRaw(CutPath, Bytes.data(), Len);
    EXPECT_TRUE(PageStore::open(CutPath, &Error) == nullptr)
        << "length " << Len;
  }

  std::remove(V1Path.c_str());
  std::remove(V2Path.c_str());
  std::remove(CutPath.c_str());
}

// The streaming v1→v2 migration must produce the exact bytes a direct v2
// save produces, and the result must open as a paged store.
TEST(PagedTest, CompactProducesByteIdenticalV2) {
  for (const char *Name : Corpus) {
    Ran R = runProgram(readCorpusFile(Name), 5, {}, {},
                       /*ExpectCompleted=*/false);
    ASSERT_TRUE(R.Prog != nullptr);
    std::string V1Path = tempPath(std::string("compact_") + Name + ".v1");
    std::string V2Path = tempPath(std::string("compact_") + Name + ".v2");
    ASSERT_TRUE(R.Log.save(V1Path, LogFormat::V1));
    ASSERT_TRUE(R.Log.save(V2Path, LogFormat::V2));

    std::string Message;
    EXPECT_EQ(int(compactLogFile(V1Path, Message)),
              int(CompactResult::Converted))
        << Message;
    EXPECT_EQ(readFileRaw(V1Path), readFileRaw(V2Path)) << Name;

    // Idempotent: a second compact reports AlreadyV2 and changes nothing.
    EXPECT_EQ(int(compactLogFile(V1Path, Message)),
              int(CompactResult::AlreadyV2));
    EXPECT_EQ(readFileRaw(V1Path), readFileRaw(V2Path)) << Name;

    std::string Error;
    EXPECT_TRUE(PageStore::open(V1Path, &Error) != nullptr) << Error;
    std::remove(V1Path.c_str());
    std::remove(V2Path.c_str());
  }
}

} // namespace
