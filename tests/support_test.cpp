//===- tests/support_test.cpp - Support library tests ---------------------===//
//
// Part of PPD test suite: VarSet representations, Rng determinism,
// diagnostics, DOT writer.
//
//===----------------------------------------------------------------------===//

#include "log/RecordArena.h"
#include "support/Diagnostics.h"
#include "support/DotWriter.h"
#include "support/FixedVarSet.h"
#include "support/Rng.h"
#include "support/SmallVec.h"
#include "support/VarSet.h"

#include <gtest/gtest.h>

#include <string>

using namespace ppd;

namespace {

//===----------------------------------------------------------------------===//
// VarSet: typed tests run the same behaviour against both representations,
// since the dataflow analyses are templated over them (experiment E6).
//===----------------------------------------------------------------------===//

template <typename T> class VarSetTest : public ::testing::Test {};
using SetTypes = ::testing::Types<BitVarSet, ListVarSet>;
TYPED_TEST_SUITE(VarSetTest, SetTypes);

TYPED_TEST(VarSetTest, StartsEmpty) {
  TypeParam Set;
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_FALSE(Set.contains(0));
  EXPECT_TRUE(Set.toVector().empty());
}

TYPED_TEST(VarSetTest, InsertAndContains) {
  TypeParam Set;
  EXPECT_TRUE(Set.insert(5));
  EXPECT_FALSE(Set.insert(5)) << "second insert must report no change";
  EXPECT_TRUE(Set.insert(200));
  EXPECT_TRUE(Set.contains(5));
  EXPECT_TRUE(Set.contains(200));
  EXPECT_FALSE(Set.contains(6));
  EXPECT_EQ(Set.size(), 2u);
}

TYPED_TEST(VarSetTest, RemoveReportsPresence) {
  TypeParam Set;
  Set.insert(7);
  EXPECT_TRUE(Set.remove(7));
  EXPECT_FALSE(Set.remove(7));
  EXPECT_FALSE(Set.contains(7));
  EXPECT_TRUE(Set.empty());
}

TYPED_TEST(VarSetTest, UnionWithReportsChange) {
  TypeParam A, B;
  A.insert(1);
  B.insert(1);
  B.insert(64); // crosses a word boundary in the bit representation
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)) << "second union must be a no-op";
  EXPECT_TRUE(A.contains(64));
  EXPECT_EQ(A.size(), 2u);
}

TYPED_TEST(VarSetTest, IntersectWith) {
  TypeParam A, B;
  for (unsigned I : {1u, 2u, 3u, 100u})
    A.insert(I);
  for (unsigned I : {2u, 100u, 300u})
    B.insert(I);
  A.intersectWith(B);
  EXPECT_EQ(A.toVector(), (std::vector<unsigned>{2, 100}));
}

TYPED_TEST(VarSetTest, Subtract) {
  TypeParam A, B;
  for (unsigned I : {1u, 2u, 3u})
    A.insert(I);
  B.insert(2);
  B.insert(9);
  A.subtract(B);
  EXPECT_EQ(A.toVector(), (std::vector<unsigned>{1, 3}));
}

TYPED_TEST(VarSetTest, IntersectsIsSymmetricAndPrecise) {
  TypeParam A, B;
  A.insert(63);
  B.insert(64);
  EXPECT_FALSE(A.intersects(B));
  EXPECT_FALSE(B.intersects(A));
  B.insert(63);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(B.intersects(A));
}

TYPED_TEST(VarSetTest, ToVectorSorted) {
  TypeParam Set;
  for (unsigned I : {300u, 5u, 64u, 0u})
    Set.insert(I);
  EXPECT_EQ(Set.toVector(), (std::vector<unsigned>{0, 5, 64, 300}));
}

TYPED_TEST(VarSetTest, EqualityIgnoresCapacity) {
  TypeParam A, B;
  A.insert(500);
  A.remove(500); // A may have grown internal storage
  EXPECT_TRUE(A == B);
  A.insert(1);
  B.insert(1);
  EXPECT_TRUE(A == B);
}

// Property sweep: both representations agree on randomized workloads.
TEST(VarSetCross, RepresentationsAgreeOnRandomOps) {
  Rng R(42);
  for (int Round = 0; Round != 20; ++Round) {
    BitVarSet Bits;
    ListVarSet List;
    for (int Op = 0; Op != 200; ++Op) {
      unsigned Id = unsigned(R.nextBelow(150));
      switch (R.nextBelow(3)) {
      case 0:
        EXPECT_EQ(Bits.insert(Id), List.insert(Id));
        break;
      case 1:
        EXPECT_EQ(Bits.remove(Id), List.remove(Id));
        break;
      case 2:
        EXPECT_EQ(Bits.contains(Id), List.contains(Id));
        break;
      }
    }
    EXPECT_EQ(Bits.toVector(), List.toVector());
    EXPECT_EQ(Bits.size(), List.size());
  }
}

//===----------------------------------------------------------------------===//
// BitVarSet extensions for the vectorized race tier: the fused conflict
// pretest, the capacity-reusing intersection, and the trailing-zero-word
// trim that makes numWords() a tight bound for the arena memcpy.
//===----------------------------------------------------------------------===//

TEST(BitVarSetTest, IntersectsAnyIsFusedUnionTest) {
  BitVarSet W, R1, W1;
  W.insert(5);
  W.insert(200);
  EXPECT_FALSE(W.intersectsAny(R1, W1)); // both empty
  R1.insert(6);
  W1.insert(7);
  EXPECT_FALSE(W.intersectsAny(R1, W1));
  R1.insert(200); // hit in the second operand only
  EXPECT_TRUE(W.intersectsAny(R1, W1));
  R1.remove(200);
  W1.insert(5); // hit in the third operand only
  EXPECT_TRUE(W.intersectsAny(R1, W1));
}

TEST(BitVarSetTest, IntersectsAnyHandlesDifferingWordCounts) {
  // The three sets deliberately span different word counts so every tail
  // loop of the fused test runs: this longer than B1, B1 longer than B2,
  // and the element sits in the non-common region.
  BitVarSet W, R1, W1;
  W.insert(500);
  R1.insert(3);
  EXPECT_FALSE(W.intersectsAny(R1, W1));
  R1.insert(500);
  EXPECT_TRUE(W.intersectsAny(R1, W1));
  R1.remove(500);
  W1.insert(500);
  EXPECT_TRUE(W.intersectsAny(R1, W1));
  BitVarSet Short;
  Short.insert(500);
  EXPECT_TRUE(Short.intersectsAny(W, R1));
}

TEST(BitVarSetTest, ShrinkingOpsTrimTrailingZeroWords) {
  BitVarSet A, B;
  A.insert(2);
  A.insert(700); // ~11 words
  B.insert(2);
  A.intersectWith(B);
  EXPECT_EQ(A.numWords(), 1u) << "intersectWith must drop the zero tail";
  EXPECT_TRUE(A.contains(2));

  BitVarSet C, D;
  C.insert(1);
  C.insert(640);
  D.insert(640);
  C.subtract(D);
  EXPECT_EQ(C.numWords(), 1u) << "subtract must drop the zero tail";
  EXPECT_EQ(C.toVector(), (std::vector<unsigned>{1}));

  BitVarSet E;
  E.insert(900);
  E.assignIntersection(A, C); // {2} ∩ {1} = ∅
  EXPECT_TRUE(E.empty());
  EXPECT_EQ(E.numWords(), 0u) << "assignIntersection must trim to empty";
}

TEST(BitVarSetTest, AssignIntersectionMatchesCopyingForm) {
  Rng R(7);
  for (int Round = 0; Round != 30; ++Round) {
    BitVarSet A, B;
    for (int I = 0; I != 40; ++I) {
      A.insert(unsigned(R.nextBelow(400)));
      B.insert(unsigned(R.nextBelow(400)));
    }
    BitVarSet Copied = A;
    Copied.intersectWith(B);
    BitVarSet Assigned;
    Assigned.insert(999); // pre-existing garbage must be overwritten
    Assigned.assignIntersection(A, B);
    EXPECT_TRUE(Assigned == Copied);
    EXPECT_EQ(Assigned.toVector(), Copied.toVector());
  }
}

//===----------------------------------------------------------------------===//
// FixedVarSet / VarSetArena: the flat-arena representation behind the
// vectorized tier's per-edge rows and closure rows.
//===----------------------------------------------------------------------===//

TEST(FixedVarSetTest, ArenaRowsAreIndependentAndZeroed) {
  VarSetArena Arena(3, 130); // 3 rows × 3 words
  EXPECT_EQ(Arena.numRows(), 3u);
  EXPECT_EQ(Arena.wordsPerRow(), 3u);
  EXPECT_EQ(Arena.bytes(), 3u * 3u * sizeof(uint64_t));
  for (uint32_t I = 0; I != 3; ++I)
    EXPECT_TRUE(Arena.row(I).empty());
  Arena.row(1).insert(129);
  EXPECT_TRUE(Arena.row(0).empty());
  EXPECT_TRUE(Arena.row(2).empty());
  EXPECT_TRUE(Arena.row(1).contains(129));
  EXPECT_EQ(Arena.row(1).size(), 1u);
}

TEST(FixedVarSetTest, SetOperationsMatchBitVarSet) {
  Rng R(11);
  for (int Round = 0; Round != 20; ++Round) {
    VarSetArena Arena(3, 256);
    FixedVarSet A = Arena.row(0), B = Arena.row(1), Out = Arena.row(2);
    BitVarSet RefA, RefB;
    for (int I = 0; I != 60; ++I) {
      unsigned IdA = unsigned(R.nextBelow(256));
      unsigned IdB = unsigned(R.nextBelow(256));
      EXPECT_EQ(A.insert(IdA), RefA.insert(IdA));
      EXPECT_EQ(B.insert(IdB), RefB.insert(IdB));
    }
    EXPECT_EQ(A.intersects(B), RefA.intersects(RefB));
    EXPECT_EQ(A.size(), RefA.size());
    Out.assignIntersection(A, B);
    BitVarSet RefOut = RefA;
    RefOut.intersectWith(RefB);
    EXPECT_EQ(Out.toVector(), RefOut.toVector());
    Out.clear();
    EXPECT_TRUE(Out.empty());
    Out.unionWith(A);
    Out.unionWith(B);
    BitVarSet RefUnion = RefA;
    RefUnion.unionWith(RefB);
    EXPECT_EQ(Out.toVector(), RefUnion.toVector());
  }
}

TEST(FixedVarSetTest, InsertRangeFillsWordSpans) {
  VarSetArena Arena(1, 300);
  FixedVarSet Set = Arena.row(0);
  Set.insertRange(10, 5); // empty range: no-op
  EXPECT_TRUE(Set.empty());
  Set.insertRange(7, 7); // single element
  EXPECT_EQ(Set.toVector(), (std::vector<unsigned>{7}));
  Set.clear();
  Set.insertRange(60, 200); // straddles word boundaries, fills middle words
  EXPECT_EQ(Set.size(), 141u);
  EXPECT_FALSE(Set.contains(59));
  EXPECT_TRUE(Set.contains(60));
  EXPECT_TRUE(Set.contains(64));
  EXPECT_TRUE(Set.contains(128));
  EXPECT_TRUE(Set.contains(200));
  EXPECT_FALSE(Set.contains(201));
  Set.clear();
  Set.insertRange(65, 70); // within one non-first word
  EXPECT_EQ(Set.toVector(), (std::vector<unsigned>{65, 66, 67, 68, 69, 70}));
}

TEST(FixedVarSetTest, ForEachFromStartsMidWord) {
  VarSetArena Arena(1, 200);
  FixedVarSet Set = Arena.row(0);
  for (unsigned Id : {0u, 3u, 63u, 64u, 100u, 199u})
    Set.insert(Id);
  auto From = [&Set](unsigned Start) {
    std::vector<unsigned> Out;
    Set.forEachFrom(Start, [&Out](unsigned Id) { Out.push_back(Id); });
    return Out;
  };
  EXPECT_EQ(From(0), (std::vector<unsigned>{0, 3, 63, 64, 100, 199}));
  EXPECT_EQ(From(1), (std::vector<unsigned>{3, 63, 64, 100, 199}));
  EXPECT_EQ(From(63), (std::vector<unsigned>{63, 64, 100, 199}));
  EXPECT_EQ(From(64), (std::vector<unsigned>{64, 100, 199}));
  EXPECT_EQ(From(101), (std::vector<unsigned>{199}));
  EXPECT_EQ(From(199), (std::vector<unsigned>{199}));
  EXPECT_TRUE(From(200).empty());
  EXPECT_TRUE(From(100000).empty()); // past the universe: no read
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(7), B(8);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(3);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsOnlyErrors) {
  DiagnosticEngine D;
  D.warning(SourceLoc(1, 1), "w");
  D.note(SourceLoc(1, 2), "n");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(2, 1), "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, Formatting) {
  DiagnosticEngine D;
  D.error(SourceLoc(3, 7), "bad thing");
  EXPECT_EQ(D.diagnostics()[0].str(), "3:7: error: bad thing");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(SourceLocTest, OrderingAndValidity) {
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_LT(SourceLoc(1, 9), SourceLoc(2, 1));
  EXPECT_LT(SourceLoc(2, 1), SourceLoc(2, 5));
  EXPECT_EQ(SourceLoc(4, 2).str(), "4:2");
}

//===----------------------------------------------------------------------===//
// DotWriter
//===----------------------------------------------------------------------===//

TEST(DotWriterTest, BasicStructure) {
  DotWriter W("g");
  W.node("a", "label A", {"shape=box"});
  W.edge("a", "b", {"style=dashed"});
  std::string Dot = W.str();
  EXPECT_NE(Dot.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(Dot.find("\"a\" [label=\"label A\", shape=box];"),
            std::string::npos);
  EXPECT_NE(Dot.find("\"a\" -> \"b\" [style=dashed];"), std::string::npos);
}

TEST(DotWriterTest, EscapesQuotesAndNewlines) {
  EXPECT_EQ(DotWriter::escape("a\"b\nc"), "a\\\"b\\nc");
}

TEST(DotWriterTest, Clusters) {
  DotWriter W("g");
  W.beginCluster("p1", "process 1");
  W.node("x", "x");
  W.endCluster();
  std::string Dot = W.str();
  EXPECT_NE(Dot.find("subgraph \"cluster_p1\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"process 1\";"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// SmallVec: the emit path's no-allocation container.
//===----------------------------------------------------------------------===//

TEST(SmallVecTest, InlineThenSpill) {
  SmallVec<int, 4> V;
  EXPECT_TRUE(V.empty());
  for (int I = 0; I != 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u) << "still inline";
  V.push_back(4); // spills to heap
  V.push_back(5);
  ASSERT_EQ(V.size(), 6u);
  for (int I = 0; I != 6; ++I)
    EXPECT_EQ(V[size_t(I)], I);
  EXPECT_EQ(V.back(), 5);
}

TEST(SmallVecTest, CopyAndMovePreserveElements) {
  SmallVec<std::string, 2> V;
  V.push_back("a");
  V.push_back("b");
  V.push_back("c"); // spilled

  SmallVec<std::string, 2> Copy(V);
  EXPECT_EQ(Copy, V);

  SmallVec<std::string, 2> Moved(std::move(V));
  EXPECT_EQ(Moved, Copy);

  SmallVec<std::string, 2> Assigned;
  Assigned.push_back("x");
  Assigned = Copy;
  EXPECT_EQ(Assigned, Copy);

  SmallVec<std::string, 2> Inline;
  Inline.push_back("only");
  SmallVec<std::string, 2> MovedInline(std::move(Inline));
  ASSERT_EQ(MovedInline.size(), 1u);
  EXPECT_EQ(MovedInline[0], "only");
}

TEST(SmallVecTest, AssignResizeClearAndVectorEquality) {
  std::vector<uint32_t> Src{7, 8, 9, 10, 11};
  SmallVec<uint32_t, 4> V;
  V.assign(Src.begin(), Src.end());
  EXPECT_EQ(V, Src);
  EXPECT_EQ(Src, V);

  V.resize(2);
  EXPECT_EQ(V, (std::vector<uint32_t>{7, 8}));
  V.resize(4);
  EXPECT_EQ(V, (std::vector<uint32_t>{7, 8, 0, 0}));

  V.clear();
  EXPECT_TRUE(V.empty());
  EXPECT_NE(V, Src);
}

//===----------------------------------------------------------------------===//
// RecordArena / RecordStore: stable-address chunked record storage.
//===----------------------------------------------------------------------===//

TEST(RecordStoreTest, AppendAcrossChunksKeepsAddressesStable) {
  RecordStore<int, 4> Store; // 16-element chunks for the test
  std::vector<const int *> Addrs;
  for (int I = 0; I != 100; ++I)
    Addrs.push_back(&Store.emplace_back(I));
  ASSERT_EQ(Store.size(), 100u);
  for (int I = 0; I != 100; ++I) {
    EXPECT_EQ(Store[size_t(I)], I);
    EXPECT_EQ(&Store[size_t(I)], Addrs[size_t(I)])
        << "append must never move existing records";
  }
  EXPECT_EQ(Store.back(), 99);
}

TEST(RecordStoreTest, IterationCopyAndMove) {
  RecordStore<std::string, 2> Store;
  for (int I = 0; I != 10; ++I)
    Store.emplace_back(std::to_string(I));

  int N = 0;
  for (const std::string &S : Store)
    EXPECT_EQ(S, std::to_string(N++));
  EXPECT_EQ(N, 10);

  RecordStore<std::string, 2> Copy(Store);
  ASSERT_EQ(Copy.size(), 10u);
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(Copy[I], Store[I]);

  RecordStore<std::string, 2> Moved(std::move(Store));
  ASSERT_EQ(Moved.size(), 10u);
  EXPECT_EQ(Moved[7], "7");

  Copy.clear();
  EXPECT_TRUE(Copy.empty());
}

TEST(RecordArenaTest, AlignedAllocationsAndReset) {
  RecordArena Arena;
  void *A = Arena.allocate(3, 1);
  void *B = Arena.allocate(8, 8);
  void *C = Arena.allocate(100000, 16); // larger than one block
  EXPECT_NE(A, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(B) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(C) % 16, 0u);
  EXPECT_GE(Arena.bytesAllocated(), size_t(100000));
  Arena.reset();
  EXPECT_EQ(Arena.bytesAllocated(), 0u);
}

} // namespace
