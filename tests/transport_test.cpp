//===- tests/transport_test.cpp - epoll transport + TCP + lifetimes -------===//
//
// Part of PPD test suite: the readiness-based server transport
// (DESIGN.md §14). The epoll dispatcher is checked against the legacy
// threaded transport as a byte-level differential oracle, TCP against
// the unix listener the same way, and the connection-lifetime fixes are
// pinned down directly: fd counts flat across connect/disconnect churn
// (both transports), idle-timeout reaping, slow-reader disconnection at
// the write-queue bound (typed metric, bounded memory), malformed and
// truncated frames over TCP, stream ingest over TCP, client desync
// disconnects, and listenUnix refusing a live server's socket while
// still cleaning stale files.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "log/ProgramDb.h"
#include "server/DebugServer.h"
#include "server/EventDispatcher.h"
#include "server/Protocol.h"
#include "server/Transport.h"
#include "server/Wire.h"
#include "stream/Ingest.h"
#include "stream/StreamClient.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ppd;
using namespace ppd::test;

namespace {

const char *WorkloadSource = R"(
shared int acc;
chan done;
func worker(int base) {
  acc = acc + base;
  acc = acc + base + 1;
  send(done, base);
}
func main() {
  spawn worker(10);
  int first = recv(done);
  print(acc);
  print(first * 2);
}
)";

std::string tempName(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return "/tmp/ppd-transport-" + std::to_string(::getpid()) + "-" + Tag +
         "-" + std::to_string(Counter.fetch_add(1));
}

/// Open fds of this process, via /proc/self/fd. The counting dirfd
/// itself is excluded.
size_t openFdCount() {
  DIR *D = ::opendir("/proc/self/fd");
  if (!D)
    return 0;
  size_t N = 0;
  while (struct dirent *E = ::readdir(D)) {
    if (E->d_name[0] == '.')
      continue;
    ++N;
  }
  ::closedir(D);
  return N - 1; // the opendir fd
}

/// Polls until the fd count drops back to \p Baseline (reaping can be
/// asynchronous on both transports). False on timeout.
bool awaitFdBaseline(size_t Baseline, int TimeoutMs = 5000) {
  for (int Waited = 0; Waited < TimeoutMs; Waited += 10) {
    if (openFdCount() <= Baseline)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return openFdCount() <= Baseline;
}

std::vector<uint8_t> payloadOf(const Request &Req) {
  LogWriter W;
  encodeRequest(Req, W);
  return std::vector<uint8_t>(W.data() + 4, W.data() + W.size());
}

/// An in-process server on the epoll transport, listening on a unix
/// socket and/or TCP, with the dispatcher loop on a background thread.
struct EpollServer {
  DebugServer Server;
  std::string UnixPath;
  uint16_t TcpPort = 0;
  std::thread Loop;
  int ExitCode = -1;

  explicit EpollServer(DebugServerOptions SOpts = {}) : Server(SOpts) {}

  void addWorkload() {
    Ran R = runProgram(WorkloadSource);
    Server.addProgram(std::move(R.Prog), std::move(R.Log));
  }

  void start(bool WithUnix, bool WithTcp, EpollServerOptions TOpts = {}) {
    if (WithUnix) {
      UnixPath = tempName("srv") + ".sock";
      TOpts.UnixListenFd = listenUnix(UnixPath);
      ASSERT_GE(TOpts.UnixListenFd, 0);
      TOpts.UnixPath = UnixPath;
    }
    if (WithTcp) {
      TOpts.TcpListenFd = listenTcp("127.0.0.1:0", &TcpPort);
      ASSERT_GE(TOpts.TcpListenFd, 0);
    }
    Loop = std::thread(
        [this, TOpts] { ExitCode = runEpollServer(Server, TOpts); });
  }

  std::string tcpEndpoint() const {
    return "tcp:127.0.0.1:" + std::to_string(TcpPort);
  }

  void shutdown() {
    if (!Loop.joinable())
      return;
    ClientConnection Conn;
    std::string Addr = UnixPath.empty() ? tcpEndpoint() : UnixPath;
    if (Conn.connect(Addr)) {
      Request Shut;
      Shut.Type = MsgType::Shutdown;
      Response Ack;
      Conn.roundTrip(Shut, Ack);
    }
    Loop.join();
  }

  ~EpollServer() {
    shutdown();
    if (!UnixPath.empty())
      ::unlink(UnixPath.c_str());
  }
};

/// The legacy threaded transport, same shape: in-process DebugServer
/// plus runUnixServer on a background thread.
struct ThreadedServer {
  DebugServer Server;
  std::string UnixPath;
  std::thread Loop;
  int ExitCode = -1;

  void addWorkload() {
    Ran R = runProgram(WorkloadSource);
    Server.addProgram(std::move(R.Prog), std::move(R.Log));
  }

  void start() {
    UnixPath = tempName("thr") + ".sock";
    int Fd = listenUnix(UnixPath);
    ASSERT_GE(Fd, 0);
    Loop = std::thread(
        [this, Fd] { ExitCode = runUnixServer(Server, Fd, UnixPath); });
  }

  void shutdown() {
    if (!Loop.joinable())
      return;
    ClientConnection Conn;
    if (Conn.connect(UnixPath)) {
      Request Shut;
      Shut.Type = MsgType::Shutdown;
      Response Ack;
      Conn.roundTrip(Shut, Ack);
    }
    Loop.join();
  }

  ~ThreadedServer() {
    shutdown();
    if (!UnixPath.empty())
      ::unlink(UnixPath.c_str());
  }
};

/// The request matrix both differentials replay: a full session
/// lifecycle plus every error path a client can trip from outside.
std::vector<Request> differentialScript() {
  std::vector<Request> Out;
  Request R;
  R.Type = MsgType::OpenSession; // -> session 1 on a fresh server
  Out.push_back(R);
  for (const char *Cmd : {"where 0", "back", "fwd", "races", "restore 0 1",
                          "list"}) {
    R = Request();
    R.Type = MsgType::Query;
    R.SessionId = 1;
    R.Command = Cmd;
    Out.push_back(R);
  }
  R = Request();
  R.Type = MsgType::Step;
  R.SessionId = 1;
  R.Direction = 0;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Step;
  R.SessionId = 1;
  R.Direction = 1;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Races;
  R.SessionId = 1;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Query; // error: unknown session
  R.SessionId = 999;
  R.Command = "where 0";
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::OpenSession; // error: unknown program
  R.ProgramIndex = 42;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::Stats; // type-compared only: embeds timings
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::CloseSession;
  R.SessionId = 1;
  Out.push_back(R);
  R = Request();
  R.Type = MsgType::CloseSession; // error: already closed
  R.SessionId = 1;
  Out.push_back(R);
  return Out;
}

/// Sends the script over \p Address frame by frame and returns the raw
/// response frames (length prefix stripped).
std::vector<std::vector<uint8_t>> replayScript(const std::string &Address) {
  std::vector<std::vector<uint8_t>> Out;
  int Fd = connectEndpoint(Address);
  EXPECT_GE(Fd, 0) << Address;
  if (Fd < 0)
    return Out;
  uint64_t NextId = 1;
  for (Request Req : differentialScript()) {
    Req.RequestId = NextId++;
    std::vector<uint8_t> P = payloadOf(Req);
    EXPECT_TRUE(sendFrame(Fd, P.data(), P.size()));
    std::vector<uint8_t> Frame;
    EXPECT_TRUE(recvFrame(Fd, Frame));
    Out.push_back(std::move(Frame));
  }
  ::close(Fd);
  return Out;
}

/// Byte-compares two response sequences; Stats responses (index \p
/// StatsAt) compare by decoded type only, their text embeds timings.
void expectSameResponses(const std::vector<std::vector<uint8_t>> &A,
                         const std::vector<std::vector<uint8_t>> &B) {
  std::vector<Request> Script = differentialScript();
  ASSERT_EQ(A.size(), Script.size());
  ASSERT_EQ(B.size(), Script.size());
  for (size_t I = 0; I != Script.size(); ++I) {
    if (Script[I].Type == MsgType::Stats) {
      Response Ra, Rb;
      ASSERT_TRUE(decodeResponse(A[I].data(), A[I].size(), Ra));
      ASSERT_TRUE(decodeResponse(B[I].data(), B[I].size(), Rb));
      EXPECT_EQ(int(Ra.Type), int(Rb.Type)) << "script step " << I;
      continue;
    }
    EXPECT_EQ(A[I], B[I]) << "script step " << I << " (type "
                          << unsigned(Script[I].Type) << ") diverged";
  }
}

//===----------------------------------------------------------------------===//
// Differentials: epoll vs threaded, TCP vs unix
//===----------------------------------------------------------------------===//

TEST(TransportDiffTest, EpollResponsesByteIdenticalToThreaded) {
  // Two servers over two deterministic compiles+runs of the same source:
  // their programs and logs are identical, so every non-Stats response
  // must match byte for byte across transports.
  EpollServer Epoll;
  Epoll.addWorkload();
  Epoll.start(/*WithUnix=*/true, /*WithTcp=*/false);
  ThreadedServer Threaded;
  Threaded.addWorkload();
  Threaded.start();

  std::vector<std::vector<uint8_t>> FromEpoll = replayScript(Epoll.UnixPath);
  std::vector<std::vector<uint8_t>> FromThreaded =
      replayScript(Threaded.UnixPath);
  expectSameResponses(FromEpoll, FromThreaded);

  Epoll.shutdown();
  Threaded.shutdown();
  EXPECT_EQ(Epoll.ExitCode, 0);
  EXPECT_EQ(Threaded.ExitCode, 0);
}

TEST(TransportDiffTest, TcpResponsesByteIdenticalToUnix) {
  EpollServer OverUnix;
  OverUnix.addWorkload();
  OverUnix.start(/*WithUnix=*/true, /*WithTcp=*/false);
  EpollServer OverTcp;
  OverTcp.addWorkload();
  OverTcp.start(/*WithUnix=*/false, /*WithTcp=*/true);

  std::vector<std::vector<uint8_t>> FromUnix = replayScript(OverUnix.UnixPath);
  std::vector<std::vector<uint8_t>> FromTcp =
      replayScript(OverTcp.tcpEndpoint());
  expectSameResponses(FromUnix, FromTcp);
}

TEST(TransportDiffTest, BothListenersShareOneServer) {
  // One server, both listeners: a session opened over TCP is visible
  // over the unix socket — the listeners share the DebugServer, not
  // just a port.
  EpollServer S;
  S.addWorkload();
  S.start(/*WithUnix=*/true, /*WithTcp=*/true);

  ClientConnection Tcp;
  ASSERT_TRUE(Tcp.connect(S.tcpEndpoint()));
  Request Open;
  Open.Type = MsgType::OpenSession;
  Response Resp;
  ASSERT_TRUE(Tcp.roundTrip(Open, Resp));
  ASSERT_EQ(int(Resp.Type), int(RespType::SessionOpened));
  uint64_t Session = Resp.SessionId;

  ClientConnection Unix;
  ASSERT_TRUE(Unix.connect(S.UnixPath));
  Request Query;
  Query.Type = MsgType::Query;
  Query.SessionId = Session;
  Query.Command = "where 0";
  ASSERT_TRUE(Unix.roundTrip(Query, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
  EXPECT_FALSE(Resp.Text.empty());
}

//===----------------------------------------------------------------------===//
// Malformed and truncated frames over TCP
//===----------------------------------------------------------------------===//

TEST(TransportRobustnessTest, GarbageFrameOverTcpGetsBadFrameThenClose) {
  EpollServer S;
  S.addWorkload();
  S.start(/*WithUnix=*/false, /*WithTcp=*/true);

  int Fd = connectTcp("127.0.0.1:" + std::to_string(S.TcpPort));
  ASSERT_GE(Fd, 0);
  std::vector<uint8_t> Garbage(32, 0xee);
  ASSERT_TRUE(sendFrame(Fd, Garbage.data(), Garbage.size()));
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(recvFrame(Fd, Frame));
  Response R;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), R));
  EXPECT_EQ(int(R.Type), int(RespType::Error));
  EXPECT_EQ(int(R.Code), int(ErrCode::BadFrame));
  EXPECT_GE(S.Server.metrics().malformedFrames(), 1u);
  // The framing itself was valid, so the connection stays synced — the
  // same connection serves a well-formed request next (matching the
  // threaded transport; only unsyncable framing closes, see below).
  Request Open;
  Open.Type = MsgType::OpenSession;
  Open.RequestId = 2;
  std::vector<uint8_t> P = payloadOf(Open);
  ASSERT_TRUE(sendFrame(Fd, P.data(), P.size()));
  ASSERT_TRUE(recvFrame(Fd, Frame));
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), R));
  EXPECT_EQ(int(R.Type), int(RespType::SessionOpened));
  ::close(Fd);

  // The server survives and serves fresh connections.
  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(S.tcpEndpoint()));
  Request Open2;
  Open2.Type = MsgType::OpenSession;
  Response Resp;
  ASSERT_TRUE(Conn.roundTrip(Open2, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::SessionOpened));
}

TEST(TransportRobustnessTest, OversizedLengthPrefixPoisonsConnection) {
  EpollServer S;
  S.addWorkload();
  S.start(/*WithUnix=*/false, /*WithTcp=*/true);

  int Fd = connectTcp("127.0.0.1:" + std::to_string(S.TcpPort));
  ASSERT_GE(Fd, 0);
  uint32_t Len = MaxFramePayload + 1;
  uint8_t Prefix[4];
  std::memcpy(Prefix, &Len, 4);
  ASSERT_EQ(::send(Fd, Prefix, 4, MSG_NOSIGNAL), 4);
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(recvFrame(Fd, Frame)) << "a BadFrame error precedes the close";
  Response R;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), R));
  EXPECT_EQ(int(R.Type), int(RespType::Error));
  EXPECT_EQ(int(R.Code), int(ErrCode::BadFrame));
  EXPECT_FALSE(recvFrame(Fd, Frame));
  ::close(Fd);
}

TEST(TransportRobustnessTest, TruncatedFrameThenHangupIsReapedQuietly) {
  EpollServer S;
  S.addWorkload();
  S.start(/*WithUnix=*/false, /*WithTcp=*/true);

  // Half a frame, then hang up: the server must reap the connection
  // (EOF mid-frame) without answering and without dying.
  Request Req;
  Req.Type = MsgType::OpenSession;
  Req.RequestId = 1;
  std::vector<uint8_t> P = payloadOf(Req);
  int Fd = connectTcp("127.0.0.1:" + std::to_string(S.TcpPort));
  ASSERT_GE(Fd, 0);
  uint32_t Len = uint32_t(P.size());
  ASSERT_EQ(::send(Fd, &Len, 4, MSG_NOSIGNAL), 4);
  ASSERT_EQ(::send(Fd, P.data(), P.size() / 2, MSG_NOSIGNAL),
            ssize_t(P.size() / 2));
  ::close(Fd);

  // Accepted-then-closed must converge: the half-framed conn is gone.
  for (int Waited = 0; Waited < 5000; Waited += 10) {
    if (S.Server.metrics().connsClosed() >= 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(S.Server.metrics().connsClosed(), 1u);

  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(S.tcpEndpoint()));
  Request Open;
  Open.Type = MsgType::OpenSession;
  Response Resp;
  ASSERT_TRUE(Conn.roundTrip(Open, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::SessionOpened));
}

//===----------------------------------------------------------------------===//
// Connection lifetime: fd churn, idle timeout, slow readers
//===----------------------------------------------------------------------===//

TEST(ConnLifetimeTest, FdCountFlatAcrossChurnEpoll) {
  EpollServer S;
  S.addWorkload();
  S.start(/*WithUnix=*/true, /*WithTcp=*/true);

  // Warm up one connection so lazily-created fds exist before baseline.
  {
    ClientConnection Warm;
    ASSERT_TRUE(Warm.connect(S.UnixPath));
    Request Open;
    Open.Type = MsgType::OpenSession;
    Response Resp;
    ASSERT_TRUE(Warm.roundTrip(Open, Resp));
  }
  ASSERT_TRUE(awaitFdBaseline(openFdCount()));
  size_t Baseline = openFdCount();

  constexpr int Cycles = 200;
  for (int I = 0; I != Cycles; ++I) {
    // Alternate listeners; every cycle does one full round trip.
    ClientConnection Conn;
    ASSERT_TRUE(Conn.connect(I % 2 ? S.UnixPath : S.tcpEndpoint()))
        << "cycle " << I;
    Request Stats;
    Stats.Type = MsgType::Stats;
    Response Resp;
    ASSERT_TRUE(Conn.roundTrip(Stats, Resp));
  }

  EXPECT_TRUE(awaitFdBaseline(Baseline))
      << "fd count " << openFdCount() << " never returned to baseline "
      << Baseline << " after " << Cycles << " connect/disconnect cycles";
  EXPECT_GE(S.Server.metrics().connsAccepted(), uint64_t(Cycles));
  EXPECT_GE(S.Server.metrics().connsClosed(), uint64_t(Cycles));
}

TEST(ConnLifetimeTest, FdCountFlatAcrossChurnThreaded) {
  // The regression the tentpole fixed: the old accept loop parked every
  // Connection until shutdown, leaking one fd and one thread per
  // disconnected client.
  ThreadedServer S;
  S.addWorkload();
  S.start();

  {
    ClientConnection Warm;
    ASSERT_TRUE(Warm.connect(S.UnixPath));
    Request Open;
    Open.Type = MsgType::OpenSession;
    Response Resp;
    ASSERT_TRUE(Warm.roundTrip(Open, Resp));
  }
  ASSERT_TRUE(awaitFdBaseline(openFdCount()));
  size_t Baseline = openFdCount();

  constexpr int Cycles = 200;
  for (int I = 0; I != Cycles; ++I) {
    ClientConnection Conn;
    ASSERT_TRUE(Conn.connect(S.UnixPath)) << "cycle " << I;
    Request Stats;
    Stats.Type = MsgType::Stats;
    Response Resp;
    ASSERT_TRUE(Conn.roundTrip(Stats, Resp));
  }

  EXPECT_TRUE(awaitFdBaseline(Baseline))
      << "fd count " << openFdCount() << " never returned to baseline "
      << Baseline << " after " << Cycles << " connect/disconnect cycles";
}

TEST(ConnLifetimeTest, IdleConnectionsAreReaped) {
  EpollServer S;
  S.addWorkload();
  EpollServerOptions TOpts;
  TOpts.IdleTimeoutMs = 50;
  S.start(/*WithUnix=*/false, /*WithTcp=*/true, TOpts);

  int Fd = connectTcp("127.0.0.1:" + std::to_string(S.TcpPort));
  ASSERT_GE(Fd, 0);
  // One round trip proves the connection is live, then go idle.
  Request Req;
  Req.Type = MsgType::Stats;
  Req.RequestId = 1;
  std::vector<uint8_t> P = payloadOf(Req);
  ASSERT_TRUE(sendFrame(Fd, P.data(), P.size()));
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(recvFrame(Fd, Frame));

  // The idle timer (50ms) fires and the server hangs up on us.
  EXPECT_FALSE(recvFrame(Fd, Frame)) << "idle connection was not reaped";
  ::close(Fd);
  EXPECT_GE(S.Server.metrics().idleDisconnects(), 1u);

  // Active connections are NOT reaped: keep one busy past the timeout.
  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(S.tcpEndpoint()));
  for (int I = 0; I != 10; ++I) {
    Request Stats;
    Stats.Type = MsgType::Stats;
    Response Resp;
    ASSERT_TRUE(Conn.roundTrip(Stats, Resp)) << "round " << I;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(ConnLifetimeTest, SlowReaderIsDisconnectedAtWriteQueueBound) {
  EpollServer S;
  S.addWorkload();
  EpollServerOptions TOpts;
  // A small userspace bound plus a small kernel send buffer make the
  // overflow reachable with a few hundred responses.
  TOpts.MaxWriteQueueBytes = 16 << 10;
  TOpts.SendBufBytes = 4 << 10;
  S.start(/*WithUnix=*/false, /*WithTcp=*/true, TOpts);

  int Fd = connectTcp("127.0.0.1:" + std::to_string(S.TcpPort));
  ASSERT_GE(Fd, 0);
  int RcvBuf = 4 << 10;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &RcvBuf, sizeof(RcvBuf));

  Request Open;
  Open.Type = MsgType::OpenSession;
  Open.RequestId = 1;
  std::vector<uint8_t> P = payloadOf(Open);
  ASSERT_TRUE(sendFrame(Fd, P.data(), P.size()));
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(recvFrame(Fd, Frame));
  Response Resp;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Resp));
  ASSERT_EQ(int(Resp.Type), int(RespType::SessionOpened));

  // Pipeline queries and never read: responses pile up in the
  // connection's write queue until the bound trips and the server
  // disconnects us — memory stays bounded by construction.
  Request Query;
  Query.Type = MsgType::Query;
  Query.SessionId = Resp.SessionId;
  Query.Command = "list";
  bool Disconnected = false;
  for (int I = 0; I != 4096 && !Disconnected; ++I) {
    Query.RequestId = 100 + I;
    std::vector<uint8_t> QP = payloadOf(Query);
    LogWriter W;
    encodeRequest(Query, W);
    ssize_t N = ::send(Fd, W.data(), W.size(), MSG_NOSIGNAL);
    if (N < 0 && (errno == EPIPE || errno == ECONNRESET))
      Disconnected = true;
    if (I % 64 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Either the send side already saw the reset, or the read side sees
  // EOF now; both mean the server dropped us at the bound.
  if (!Disconnected) {
    for (int Waited = 0; Waited < 5000; Waited += 10) {
      if (S.Server.metrics().writeOverflows() >= 1)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ::close(Fd);
  EXPECT_GE(S.Server.metrics().writeOverflows(), 1u)
      << "the write-queue bound never tripped";

  // The loop thread is fine; a well-behaved client still gets answers.
  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(S.tcpEndpoint()));
  Request Stats;
  Stats.Type = MsgType::Stats;
  ASSERT_TRUE(Conn.roundTrip(Stats, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::StatsText));
  EXPECT_NE(Resp.Text.find("write-overflows"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Stream ingest over TCP
//===----------------------------------------------------------------------===//

TEST(TransportStreamTest, StreamIngestOverTcpMatchesBatchLog) {
  EpollServer S;
  stream::IngestRegistry Ingest(S.Server, stream::IngestOptions());
  S.Server.setStreamDispatcher(
      [&Ingest](const Request &Req) { return Ingest.dispatch(Req); });
  auto Prog = compileOk(WorkloadSource);
  auto SrvProg = compileOk(WorkloadSource);
  uint64_t Hash = programHash(*SrvProg);
  uint32_t Index = S.Server.addProgram(std::move(SrvProg), ExecutionLog());
  S.start(/*WithUnix=*/false, /*WithTcp=*/true);

  stream::StreamClientOptions COpts;
  COpts.SocketPath = S.tcpEndpoint();
  COpts.Sealer.ProgramIndex = Index;
  COpts.Sealer.ProgramHash = Hash;
  COpts.Sealer.SectionRecords = 4;
  stream::StreamClient Client(COpts);
  ASSERT_TRUE(Client.start()) << Client.error();

  MachineOptions MOpts;
  MOpts.Seed = 1;
  MOpts.Mode = RunMode::Logging;
  Machine M(*Prog, MOpts);
  M.onRound([&](Machine &Mach) { Client.pollRound(Mach.log()); });
  M.run();
  ASSERT_TRUE(Client.finish(M.log())) << Client.error();
  EXPECT_FALSE(Client.failed());
  EXPECT_GE(Client.sectionsShipped(), 1u);

  // The ingested frontier equals the batch log's shape.
  ExecutionLog Batch = M.takeLog();
  ExecutionLog Frontier;
  ASSERT_TRUE(Ingest.frontierLog(Client.streamId(), Frontier));
  ASSERT_EQ(Frontier.Procs.size(), Batch.Procs.size());
  for (size_t Pid = 0; Pid != Batch.Procs.size(); ++Pid)
    EXPECT_EQ(Frontier.Procs[Pid].Records.size(),
              Batch.Procs[Pid].Records.size())
        << "pid " << Pid;

  // And a tail query over TCP answers like a local session would.
  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(S.tcpEndpoint()));
  Request Tail;
  Tail.Type = MsgType::TailQuery;
  Tail.StreamId = Client.streamId();
  Tail.Command = "where 0";
  Response Resp;
  ASSERT_TRUE(Conn.roundTrip(Tail, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
  EXPECT_FALSE(Resp.Text.empty());
}

//===----------------------------------------------------------------------===//
// Client desync (satellite: roundTrip poisons the connection)
//===----------------------------------------------------------------------===//

/// A one-shot fake server: accepts one connection on a unix socket,
/// reads one frame, answers with \p MakeReply's bytes.
void fakeServerOnce(int ListenFd,
                    std::function<std::vector<uint8_t>(uint64_t)> MakeReply) {
  int Fd = ::accept(ListenFd, nullptr, nullptr);
  ASSERT_GE(Fd, 0);
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(recvFrame(Fd, Payload));
  Request Req;
  ASSERT_TRUE(decodeRequest(Payload.data(), Payload.size(), Req));
  std::vector<uint8_t> Reply = MakeReply(Req.RequestId);
  ASSERT_TRUE(sendFrame(Fd, Reply.data(), Reply.size()));
  ::close(Fd);
}

TEST(ClientDesyncTest, MismatchedRequestIdDisconnects) {
  std::string Path = tempName("desync") + ".sock";
  int ListenFd = listenUnix(Path);
  ASSERT_GE(ListenFd, 0);
  std::thread Server(fakeServerOnce, ListenFd, [](uint64_t Id) {
    Response Resp;
    Resp.Type = RespType::Closed;
    Resp.RequestId = Id + 7; // wrong id: a stale or reordered response
    LogWriter W;
    encodeResponse(Resp, W);
    return std::vector<uint8_t>(W.data() + 4, W.data() + W.size());
  });

  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(Path));
  Request Req;
  Req.Type = MsgType::Stats;
  Response Resp;
  EXPECT_FALSE(Conn.roundTrip(Req, Resp));
  EXPECT_FALSE(Conn.connected())
      << "a desynced connection must be dropped, not reused";
  Server.join();
  ::close(ListenFd);
  ::unlink(Path.c_str());
}

TEST(ClientDesyncTest, UndecodableResponseDisconnects) {
  std::string Path = tempName("desync") + ".sock";
  int ListenFd = listenUnix(Path);
  ASSERT_GE(ListenFd, 0);
  std::thread Server(fakeServerOnce, ListenFd, [](uint64_t) {
    return std::vector<uint8_t>(16, 0xc7); // garbage payload
  });

  ClientConnection Conn;
  ASSERT_TRUE(Conn.connect(Path));
  Request Req;
  Req.Type = MsgType::Stats;
  Response Resp;
  EXPECT_FALSE(Conn.roundTrip(Req, Resp));
  EXPECT_FALSE(Conn.connected());
  Server.join();
  ::close(ListenFd);
  ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// listenUnix: live sockets refused, stale ones cleaned
//===----------------------------------------------------------------------===//

TEST(ListenUnixTest, RefusesLiveSocketCleansStaleRefusesNonSocket) {
  std::string Path = tempName("listen") + ".sock";

  // Live: a second bind against a listening server is refused.
  int First = listenUnix(Path);
  ASSERT_GE(First, 0);
  EXPECT_EQ(listenUnix(Path), -1)
      << "stole the socket from a live server";
  // The refusal must not have unlinked the live socket either.
  int Probe = connectUnix(Path);
  EXPECT_GE(Probe, 0) << "the live server's socket was clobbered";
  if (Probe >= 0)
    ::close(Probe);

  // Stale: after the server dies the path remains; a new bind cleans it.
  ::close(First);
  int Second = listenUnix(Path);
  EXPECT_GE(Second, 0) << "stale socket file was not cleaned up";
  if (Second >= 0)
    ::close(Second);
  ::unlink(Path.c_str());

  // A regular file at the path is never unlinked.
  {
    std::ofstream Out(Path);
    Out << "precious";
  }
  EXPECT_EQ(listenUnix(Path), -1);
  std::ifstream Check(Path);
  std::string Content;
  Check >> Content;
  EXPECT_EQ(Content, "precious") << "listenUnix deleted a non-socket file";
  ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// EventDispatcher unit coverage
//===----------------------------------------------------------------------===//

TEST(EventDispatcherTest, TimersFireCancelHoldsAndPostWakes) {
  EventDispatcher Loop;
  ASSERT_TRUE(Loop.valid());

  std::atomic<int> Fired{0};
  Loop.addTimer(10, [&] { ++Fired; });
  EventDispatcher::TimerId Cancelled = Loop.addTimer(10, [&] { Fired += 100; });
  Loop.cancelTimer(Cancelled);
  // A long timer scheduled behind the short ones; stops the loop.
  Loop.addTimer(60, [&] { Loop.stop(); });

  std::thread Poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Loop.post([&] { Fired += 10; });
  });
  EXPECT_TRUE(Loop.run());
  Poster.join();
  EXPECT_EQ(Fired.load(), 11)
      << "short timer and posted fn fired; cancelled timer did not";
}

TEST(EventDispatcherTest, HandlerCanRemoveItselfWhileDispatching) {
  EventDispatcher Loop;
  ASSERT_TRUE(Loop.valid());
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  std::atomic<int> Calls{0};
  ASSERT_TRUE(Loop.add(Fds[0], EPOLLIN, [&](uint32_t) {
    ++Calls;
    Loop.remove(Fds[0]); // self-removal mid-dispatch must be safe
    ::close(Fds[0]);
    Loop.stop();
  }));
  ASSERT_EQ(::send(Fds[1], "x", 1, 0), 1);
  EXPECT_TRUE(Loop.run());
  EXPECT_EQ(Calls.load(), 1);
  ::close(Fds[1]);
}

} // namespace
