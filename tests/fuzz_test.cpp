//===- tests/fuzz_test.cpp - Randomized whole-pipeline properties ---------===//
//
// Part of PPD test suite. A seeded random program generator produces
// terminating PPL programs (straight-line code, bounded loops, nested
// conditionals, calls, shared and private state); for each the suite
// checks the pipeline-wide invariants:
//
//   * Plain, Logging, and FullTrace runs print identical outputs
//     (instrumentation must never change semantics);
//   * every completed log interval replays faithfully (Ok, not partial,
//     postlog-verified) — incremental tracing's core guarantee;
//   * the debugging session reconstructs the exact printed values from
//     the log alone;
//   * the dynamic graph is well-formed (every edge endpoint exists; every
//     value-carrying read has a source).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/Replay.h"
#include "server/DebugServer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Generates a random terminating PPL program. All loops are bounded `for`
/// loops; divisions are guarded by construction (`% k + 1` divisors).
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Out.clear();
    Out += "shared int g0;\nshared int g1;\nint p0;\n";
    // A couple of helper functions the main body can call.
    for (int F = 0; F != 2; ++F) {
      Out += "func helper" + std::to_string(F) + "(int a, int b) {\n";
      Indent = 1;
      Vars = {"a", "b", "g0", "g1", "p0"};
      AllowCalls = false;
      genStmts(3, 2);
      line("return a + b;");
      Out += "}\n";
    }
    Out += "func main() {\n";
    Indent = 1;
    Vars = {"v0", "v1", "v2", "g0", "g1", "p0"};
    AllowCalls = true;
    for (int V = 0; V != 3; ++V)
      line("int v" + std::to_string(V) + " = " +
           std::to_string(R.nextInRange(-5, 20)) + ";");
    genStmts(6, 3);
    line("print(g0);");
    line("print(g1 + p0);");
    line("print(v0 + v1 + v2);");
    Out += "}\n";
    return Out;
  }

private:
  void line(const std::string &Text) {
    Out.append(Indent * 2, ' ');
    Out += Text;
    Out += '\n';
  }

  std::string randVar() { return Vars[R.nextBelow(Vars.size())]; }

  std::string randExpr(unsigned Depth) {
    // Calls are only generated in main's body: a helper calling helpers
    // could recurse unboundedly at run time.
    switch (Depth == 0 ? R.nextBelow(2) : R.nextBelow(AllowCalls ? 6 : 5)) {
    case 0:
      return std::to_string(R.nextInRange(-9, 9));
    case 1:
      return randVar();
    case 2:
      return "(" + randExpr(Depth - 1) + " + " + randExpr(Depth - 1) + ")";
    case 3:
      return "(" + randExpr(Depth - 1) + " * " + randExpr(Depth - 1) + ")";
    case 4: // guarded division
      return "(" + randExpr(Depth - 1) + " / (abs(" + randExpr(Depth - 1) +
             ") % 7 + 1))";
    default:
      return "helper" + std::to_string(R.nextBelow(2)) + "(" +
             randExpr(Depth - 1) + ", " + randExpr(Depth - 1) + ")";
    }
  }

  std::string randCond(unsigned Depth) {
    static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    return randExpr(Depth) + " " + Ops[R.nextBelow(6)] + " " +
           randExpr(Depth);
  }

  void genStmts(unsigned Count, unsigned Depth) {
    for (unsigned I = 0; I != Count; ++I) {
      switch (Depth == 0 ? R.nextBelow(2) : R.nextBelow(5)) {
      case 0:
      case 1:
        line(randVar() + " = " + randExpr(2) + ";");
        break;
      case 2: {
        line("if (" + randCond(1) + ") {");
        ++Indent;
        genStmts(2, Depth - 1);
        --Indent;
        line("} else {");
        ++Indent;
        genStmts(1, Depth - 1);
        --Indent;
        line("}");
        break;
      }
      case 3: {
        // Bounded loop over a fresh iterator.
        std::string It = "i" + std::to_string(LoopCounter++);
        line("int " + It + " = 0;");
        line("for (" + It + " = 0; " + It + " < " +
             std::to_string(R.nextInRange(1, 5)) + "; " + It + " = " + It +
             " + 1) {");
        ++Indent;
        genStmts(2, Depth - 1);
        --Indent;
        line("}");
        break;
      }
      default:
        line("print(" + randExpr(1) + ");");
        break;
      }
    }
  }

  Rng R;
  std::string Out;
  std::vector<std::string> Vars;
  bool AllowCalls = false;
  unsigned Indent = 0;
  unsigned LoopCounter = 0;
};

std::vector<int64_t> outputsOf(const CompiledProgram &Prog, RunMode Mode,
                               uint64_t Seed) {
  MachineOptions MOpts;
  MOpts.Mode = Mode;
  MOpts.Seed = Seed;
  Machine M(Prog, MOpts);
  RunResult Result = M.run();
  EXPECT_EQ(int(Result.Outcome), int(RunResult::Status::Completed))
      << Result.Error.str();
  std::vector<int64_t> Out;
  for (const OutputRecord &O : M.output())
    Out.push_back(O.Value);
  return Out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, PipelineInvariantsHold) {
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();

  // 1. All run modes agree on the observable output.
  auto Plain = outputsOf(*Prog, RunMode::Plain, 3);
  auto Logged = outputsOf(*Prog, RunMode::Logging, 3);
  auto Traced = outputsOf(*Prog, RunMode::FullTrace, 3);
  EXPECT_EQ(Plain, Logged);
  EXPECT_EQ(Plain, Traced);
  ASSERT_GE(Plain.size(), 3u);

  // 2. Every completed interval replays faithfully.
  MachineOptions MOpts;
  MOpts.Seed = 3;
  Machine M(*Prog, MOpts);
  ASSERT_EQ(int(M.run().Outcome), int(RunResult::Status::Completed));
  ExecutionLog Log = M.takeLog();
  LogIndex Index(Log);
  ReplayEngine Engine(*Prog);
  std::vector<OutputRecord> ReplayedOutput;
  for (const LogInterval &Interval : Index.intervals(0)) {
    if (Interval.PostlogRecord == InvalidId)
      continue;
    ReplayResult Res = Engine.replay(Log, 0, Interval);
    ASSERT_TRUE(Res.Ok) << Res.Error << "\ninterval " << Interval.Index;
    EXPECT_FALSE(Res.Partial);
    EXPECT_TRUE(Res.PostlogMismatches.empty())
        << "interval " << Interval.Index;
    if (Interval.Depth == 0)
      for (const OutputRecord &O : Res.Output)
        ReplayedOutput.push_back(O);
  }
  // 3. Replayed top-level intervals reproduce main's prints in order.
  //    (Nested intervals' prints are re-derived only when expanded, so
  //    compare against the prints main's own statements made.)
  std::vector<int64_t> ReplayedValues;
  for (const OutputRecord &O : ReplayedOutput)
    ReplayedValues.push_back(O.Value);
  std::vector<int64_t> MainPrints;
  for (const OutputRecord &O : Log.Output) {
    const Stmt *S = Prog->Ast->stmt(O.Stmt);
    if (Prog->Database->owningFunc(S->Id) == Prog->Ast->findFunc("main"))
      MainPrints.push_back(O.Value);
  }
  EXPECT_EQ(ReplayedValues, MainPrints);

  // 4. The debugging session's graph is well-formed.
  PpdController Controller(*Prog, std::move(Log));
  DynNodeId Last = Controller.startAtLastEvent(0);
  ASSERT_NE(Last, InvalidId);
  Controller.resolveAllCrossReads();
  const DynamicGraph &G = Controller.graph();
  for (const DynEdge &E : G.edges()) {
    EXPECT_LT(E.From, G.numNodes());
    EXPECT_LT(E.To, G.numNodes());
    EXPECT_NE(E.From, E.To);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t(1), uint64_t(25)));

/// Wire-protocol robustness: arbitrary bytes — pure noise and bit-flipped
/// or truncated valid frames — fed to the debug server must never crash
/// it, and every answer must itself be a decodable response frame.
class ProtocolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzzTest, ServerAnswersArbitraryFramesWithValidFrames) {
  Rng R(GetParam() * 977 + 11);
  Ran Run = runProgram("func main() { int a = 1; print(a); }");
  DebugServer Server;
  Server.addProgram(std::move(Run.Prog), std::move(Run.Log));

  // One real session so stateful message types sometimes hit a target.
  Request Open;
  Open.Type = MsgType::OpenSession;
  Open.RequestId = 1;
  Server.handle(Open);

  for (unsigned Iter = 0; Iter != 200; ++Iter) {
    std::vector<uint8_t> Payload;
    if (R.nextBelow(2) == 0) {
      size_t N = R.nextBelow(64);
      for (size_t I = 0; I != N; ++I)
        Payload.push_back(uint8_t(R.nextBelow(256)));
    } else {
      Request Req;
      Req.Type = MsgType(1 + R.nextBelow(7));
      Req.RequestId = Iter;
      Req.ProgramIndex = uint32_t(R.nextBelow(3));
      Req.SessionId = R.nextBelow(3);
      Req.Direction = uint8_t(R.nextBelow(2));
      if (Req.Type == MsgType::Query)
        Req.Command = "where 0";
      LogWriter W;
      encodeRequest(Req, W);
      Payload.assign(W.data() + 4, W.data() + W.size());
      unsigned Flips = unsigned(R.nextBelow(4));
      for (unsigned F = 0; F != Flips && !Payload.empty(); ++F)
        Payload[R.nextBelow(Payload.size())] ^= uint8_t(1 + R.nextBelow(255));
      if (R.nextBelow(3) == 0 && !Payload.empty())
        Payload.resize(R.nextBelow(Payload.size()));
    }
    static const uint8_t Nothing = 0;
    const uint8_t *Data = Payload.empty() ? &Nothing : Payload.data();
    std::vector<uint8_t> Frame = Server.handleFrame(Data, Payload.size());
    ASSERT_GE(Frame.size(), 4u);
    Response Resp;
    ASSERT_TRUE(decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp))
        << "iteration " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Range(uint64_t(1), uint64_t(9)));

/// Targeted mutations of well-formed frames. Unlike the noise test above,
/// every input here starts as a valid request, so the assertions can be
/// sharper: a flipped version byte or a truncated body must draw a typed
/// Error response that still echoes the request id, and after any amount
/// of such abuse the session must keep answering real requests — the
/// server never treats a malformed frame as a reason to give up.
TEST_P(ProtocolFuzzTest, MutatedValidFramesDrawTypedErrors) {
  Rng R(GetParam() * 8191 + 3);
  Ran Run = runProgram("func main() { int a = 1; print(a); }");
  DebugServer Server;
  Server.addProgram(std::move(Run.Prog), std::move(Run.Log));

  Request Open;
  Open.Type = MsgType::OpenSession;
  Open.RequestId = 1;
  Response Opened = Server.handle(Open);
  ASSERT_EQ(int(Opened.Type), int(RespType::SessionOpened));
  uint64_t Session = Opened.SessionId;

  auto RoundTrip = [&](const std::vector<uint8_t> &Payload) {
    std::vector<uint8_t> Frame =
        Server.handleFrame(Payload.data(), Payload.size());
    Response Resp;
    EXPECT_GE(Frame.size(), 4u);
    EXPECT_TRUE(decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp));
    return Resp;
  };

  for (unsigned Iter = 0; Iter != 100; ++Iter) {
    // A well-formed session-bearing request...
    Request Req;
    static const MsgType SessionTypes[] = {MsgType::Query, MsgType::Step,
                                           MsgType::Races, MsgType::Stats};
    Req.Type = SessionTypes[R.nextBelow(4)];
    Req.RequestId = 1000 + Iter;
    Req.SessionId = Session;
    if (Req.Type == MsgType::Query)
      Req.Command = "where 0";
    LogWriter W;
    encodeRequest(Req, W);
    // ...as payload bytes: u8 version | u8 type | u64 request-id | body.
    std::vector<uint8_t> Payload(W.data() + 4, W.data() + W.size());
    ASSERT_GE(Payload.size(), 10u);

    switch (R.nextBelow(3)) {
    case 0: {
      // Flipped version byte: typed error, request id still recovered.
      Payload[0] ^= uint8_t(1 + R.nextBelow(255));
      Response Resp = RoundTrip(Payload);
      EXPECT_EQ(int(Resp.Type), int(RespType::Error)) << "iteration " << Iter;
      EXPECT_TRUE(Resp.Code == ErrCode::BadFrame ||
                  Resp.Code == ErrCode::BadVersion)
          << "iteration " << Iter;
      EXPECT_EQ(Resp.RequestId, Req.RequestId) << "iteration " << Iter;
      break;
    }
    case 1: {
      // Shuffled request id: the frame stays valid and the response —
      // success or error alike — must echo the rewritten id.
      uint64_t NewId = R.next();
      std::memcpy(Payload.data() + 2, &NewId, 8);
      Response Resp = RoundTrip(Payload);
      EXPECT_EQ(Resp.RequestId, NewId) << "iteration " << Iter;
      break;
    }
    case 2: {
      // Mid-body truncation: header intact, body cut short. Stats with
      // its lone u64 can only lose bytes 11..17; longer bodies anywhere.
      size_t Cut = 10 + R.nextBelow(Payload.size() - 10);
      Payload.resize(Cut);
      Response Resp = RoundTrip(Payload);
      EXPECT_EQ(int(Resp.Type), int(RespType::Error)) << "iteration " << Iter;
      EXPECT_EQ(int(Resp.Code), int(ErrCode::BadFrame))
          << "iteration " << Iter;
      EXPECT_EQ(Resp.RequestId, Req.RequestId) << "iteration " << Iter;
      break;
    }
    }
  }

  // The session survived the abuse: a real query still answers.
  Request Probe;
  Probe.Type = MsgType::Query;
  Probe.RequestId = 9999;
  Probe.SessionId = Session;
  Probe.Command = "where 0";
  Response Final = Server.handle(Probe);
  EXPECT_EQ(int(Final.Type), int(RespType::Result));
  EXPECT_EQ(Final.RequestId, 9999u);
}

} // namespace
