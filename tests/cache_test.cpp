//===- tests/cache_test.cpp - Replay cache / thread pool / service --------===//
//
// Part of PPD test suite: the sharded LRU trace cache (hit/miss/eviction
// accounting, byte budgets), the work-stealing thread pool, and the
// parallel replay service's memoization, single-flight dedup, transitive
// interval sets, and prefetch plumbing.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ReplayService.h"
#include "support/ThreadPool.h"
#include "trace/ReplayCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace ppd;
using namespace ppd::test;

namespace {

//===----------------------------------------------------------------------===//
// ReplayCache
//===----------------------------------------------------------------------===//

std::shared_ptr<const int> boxed(int V) {
  return std::make_shared<const int>(V);
}

TEST(ReplayCacheTest, LookupMissThenHit) {
  ReplayCache<int> Cache(/*CapacityBytes=*/1024, /*ShardCount=*/4);
  ReplayKey Key{0, 7, 0};
  EXPECT_EQ(Cache.lookup(Key), nullptr);
  Cache.insert(Key, boxed(42), 100);
  auto Hit = Cache.lookup(Key);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(*Hit, 42);

  ReplayCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Bytes, 100u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ReplayCacheTest, FingerprintSeparatesWhatIfReplays) {
  ReplayCache<int> Cache(1024);
  Cache.insert({0, 0, 0}, boxed(1), 10);
  Cache.insert({0, 0, 0xdeadbeef}, boxed(2), 10);
  EXPECT_EQ(*Cache.lookup({0, 0, 0}), 1);
  EXPECT_EQ(*Cache.lookup({0, 0, 0xdeadbeef}), 2);
}

TEST(ReplayCacheTest, EvictsLeastRecentlyUsedWithinBudget) {
  // One shard so the LRU order is global and observable.
  ReplayCache<int> Cache(/*CapacityBytes=*/300, /*ShardCount=*/1);
  Cache.insert({0, 0, 0}, boxed(0), 100);
  Cache.insert({0, 1, 0}, boxed(1), 100);
  Cache.insert({0, 2, 0}, boxed(2), 100);
  // Touch interval 0 so interval 1 is the LRU victim.
  EXPECT_NE(Cache.lookup({0, 0, 0}), nullptr);
  Cache.insert({0, 3, 0}, boxed(3), 100);

  EXPECT_EQ(Cache.lookup({0, 1, 0}), nullptr) << "LRU entry evicted";
  EXPECT_NE(Cache.lookup({0, 0, 0}), nullptr);
  EXPECT_NE(Cache.lookup({0, 3, 0}), nullptr);
  EXPECT_GE(Cache.stats().Evictions, 1u);
  EXPECT_LE(Cache.stats().Bytes, 300u);
}

TEST(ReplayCacheTest, EvictedEntryStaysValidForHolders) {
  ReplayCache<int> Cache(/*CapacityBytes=*/100, /*ShardCount=*/1);
  Cache.insert({0, 0, 0}, boxed(7), 100);
  auto Held = Cache.lookup({0, 0, 0});
  ASSERT_NE(Held, nullptr);
  // This insert blows the budget and evicts interval 0.
  Cache.insert({0, 1, 0}, boxed(8), 100);
  EXPECT_EQ(Cache.lookup({0, 0, 0}), nullptr);
  EXPECT_EQ(*Held, 7) << "shared_ptr keeps the value alive past eviction";
}

TEST(ReplayCacheTest, ReplacementDoesNotLeakBytes) {
  ReplayCache<int> Cache(/*CapacityBytes=*/0, /*ShardCount=*/1);
  Cache.insert({0, 0, 0}, boxed(1), 100);
  Cache.insert({0, 0, 0}, boxed(2), 40);
  ReplayCacheStats S = Cache.stats();
  EXPECT_EQ(S.Bytes, 40u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(*Cache.lookup({0, 0, 0}), 2);
}

TEST(ReplayCacheTest, ZeroCapacityMeansUnbounded) {
  ReplayCache<int> Cache(/*CapacityBytes=*/0, /*ShardCount=*/2);
  for (uint32_t I = 0; I != 64; ++I)
    Cache.insert({0, I, 0}, boxed(int(I)), 1 << 20);
  EXPECT_EQ(Cache.stats().Evictions, 0u);
  EXPECT_EQ(Cache.stats().Entries, 64u);
}

TEST(ReplayCacheTest, ClearEmptiesEveryShard) {
  ReplayCache<int> Cache(0, 4);
  for (uint32_t I = 0; I != 16; ++I)
    Cache.insert({I, I, 0}, boxed(int(I)), 8);
  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Bytes, 0u);
  EXPECT_EQ(Cache.lookup({3, 3, 0}), nullptr);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 0u);
  bool Ran = false;
  Pool.submit([&] { Ran = true; });
  EXPECT_TRUE(Ran) << "serial pool executes on the calling thread";
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    for (int I = 0; I != 200; ++I)
      Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    // Destructor drains the queues before joining.
  }
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, WorkDistributesAcrossThreads) {
  std::mutex Mutex;
  std::set<std::thread::id> Ids;
  std::atomic<int> Remaining{64};
  {
    ThreadPool Pool(4);
    for (int I = 0; I != 64; ++I)
      Pool.submit([&] {
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Ids.insert(std::this_thread::get_id());
        }
        // A little pause so tasks overlap and stealing can happen.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        Remaining.fetch_sub(1);
      });
  }
  EXPECT_EQ(Remaining.load(), 0);
  EXPECT_GE(Ids.size(), 1u);
  EXPECT_FALSE(Ids.count(std::this_thread::get_id()))
      << "with workers, the submitting thread is not drafted";
}

TEST(ThreadPoolTest, RunOneTaskHelpsDrainTheQueue) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I != 16; ++I)
    Pool.submit([&] { Count.fetch_add(1); });
  // The caller can steal work instead of idling.
  while (Pool.runOneTask())
    ;
  // Whatever the worker grabbed finishes by destruction time.
  while (Count.load() != 16)
    std::this_thread::yield();
  EXPECT_EQ(Count.load(), 16);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 8; ++I)
      Pool.submit([&Pool, &Count] {
        Pool.submit([&Count] { Count.fetch_add(1); });
      });
  }
  EXPECT_EQ(Count.load(), 8) << "nested submissions drain before shutdown";
}

//===----------------------------------------------------------------------===//
// ParallelReplayer
//===----------------------------------------------------------------------===//

const char *CacheWorkload = R"(
shared int acc;
sem lock = 1;
chan done;
func add(int d) {
  P(lock);
  acc = acc + d;
  V(lock);
  return acc;
}
func worker(int n) {
  int i = 0;
  for (i = 0; i < n; i = i + 1) add(i);
  send(done, n);
}
func main() {
  spawn worker(3);
  spawn worker(3);
  int a = recv(done);
  int b = recv(done);
  print(acc);
}
)";

struct ServiceFixture {
  Ran R;
  std::unique_ptr<LogIndex> Index;
  std::unique_ptr<ParallelReplayer> Service;

  explicit ServiceFixture(ReplayServiceOptions Options = {},
                          uint64_t Seed = 1) {
    R = runProgram(CacheWorkload, Seed);
    Index = std::make_unique<LogIndex>(R.Log);
    Service = std::make_unique<ParallelReplayer>(*R.Prog, R.Log, *Index,
                                                 Options);
  }
};

TEST(ReplayServiceTest, RepeatRequestIsACacheHit) {
  ServiceFixture F;
  auto First = F.Service->get(0, 0);
  ASSERT_NE(First, nullptr);
  EXPECT_TRUE(First->Ok) << First->Error;
  auto Second = F.Service->get(0, 0);
  EXPECT_EQ(First.get(), Second.get()) << "same shared immutable result";

  ReplayServiceStats S = F.Service->stats();
  EXPECT_EQ(S.EngineReplays, 1u);
  EXPECT_EQ(S.Cache.Hits, 1u);
  EXPECT_EQ(S.Cache.Misses, 1u);
}

TEST(ReplayServiceTest, OverridesGetTheirOwnCacheSlot) {
  ServiceFixture F;
  VarId Acc = varNamed(*F.R.Prog->Symbols, "acc");
  auto Faithful = F.Service->get(0, 0);
  auto Tweaked = F.Service->get(0, 0, {{1, Acc, -1, 99}});
  auto TweakedAgain = F.Service->get(0, 0, {{1, Acc, -1, 99}});
  EXPECT_NE(Faithful.get(), Tweaked.get());
  EXPECT_EQ(Tweaked.get(), TweakedAgain.get());
  EXPECT_EQ(F.Service->stats().EngineReplays, 2u);
}

TEST(ReplayServiceTest, FingerprintIsOrderSensitiveAndZeroReserved) {
  EXPECT_EQ(ParallelReplayer::fingerprint({}), 0u);
  std::vector<ReplayOverride> A = {{1, 2, -1, 10}, {3, 4, -1, 20}};
  std::vector<ReplayOverride> B = {{3, 4, -1, 20}, {1, 2, -1, 10}};
  EXPECT_NE(ParallelReplayer::fingerprint(A), 0u);
  EXPECT_NE(ParallelReplayer::fingerprint(A),
            ParallelReplayer::fingerprint(B));
}

TEST(ReplayServiceTest, GetManyMatchesSerialGets) {
  for (unsigned Threads : {0u, 4u}) {
    ServiceFixture F({.Threads = Threads});
    std::vector<ParallelReplayer::IntervalRef> All;
    for (uint32_t Pid = 0; Pid != F.R.Log.Procs.size(); ++Pid)
      for (const LogInterval &Interval : F.Index->intervals(Pid))
        if (Interval.PostlogRecord != InvalidId)
          All.push_back({Pid, Interval.Index});
    ASSERT_GT(All.size(), 4u);

    auto Results = F.Service->getMany(All);
    ASSERT_EQ(Results.size(), All.size());
    for (size_t I = 0; I != All.size(); ++I) {
      ASSERT_NE(Results[I], nullptr) << "request " << I;
      EXPECT_TRUE(Results[I]->Ok) << Results[I]->Error;
      // Identical to an individual (now cached) request.
      EXPECT_EQ(Results[I].get(),
                F.Service->get(All[I].first, All[I].second).get());
    }
    EXPECT_EQ(F.Service->stats().EngineReplays, All.size())
        << "each interval replayed exactly once at " << Threads
        << " threads";
  }
}

TEST(ReplayServiceTest, TransitiveIntervalsCoverAncestrySiblingsChildren) {
  ServiceFixture F;
  // Process 1 (a worker) has a root interval with nested add() calls.
  const std::vector<LogInterval> &Intervals = F.Index->intervals(1);
  ASSERT_GT(Intervals.size(), 2u);
  // Pick a nested interval that has a preceding sibling.
  const LogInterval *Nested = nullptr;
  for (const LogInterval &Interval : Intervals)
    if (Interval.Depth == 1 && Interval.Index > 1)
      Nested = &Interval;
  ASSERT_NE(Nested, nullptr);

  auto Set = F.Service->transitiveIntervals(1, Nested->Index);
  std::set<uint32_t> Got;
  for (const auto &[Pid, Idx] : Set) {
    EXPECT_EQ(Pid, 1u);
    Got.insert(Idx);
  }
  EXPECT_TRUE(Got.count(Nested->Index)) << "the interval itself";
  ASSERT_NE(Nested->Parent, InvalidId);
  EXPECT_TRUE(Got.count(Nested->Parent)) << "its parent";
  // Every preceding sibling (same parent, earlier prelog).
  for (const LogInterval &Other : Intervals)
    if (Other.Parent == Nested->Parent &&
        Other.PrelogRecord < Nested->PrelogRecord) {
      EXPECT_TRUE(Got.count(Other.Index))
          << "preceding sibling " << Other.Index;
    }
}

TEST(ReplayServiceTest, PrefetchWarmsParentAndPrecedingSibling) {
  ServiceFixture F({.Threads = 2, .Prefetch = true});
  const std::vector<LogInterval> &Intervals = F.Index->intervals(1);
  const LogInterval *Nested = nullptr;
  for (const LogInterval &Interval : Intervals)
    if (Interval.Depth == 1 && Interval.Index > 1)
      Nested = &Interval;
  ASSERT_NE(Nested, nullptr);

  F.Service->prefetchNeighbors(1, Nested->Index);
  F.Service->drain();
  ReplayServiceStats S = F.Service->stats();
  EXPECT_EQ(S.PrefetchesIssued, 2u) << "parent + preceding sibling";
  EXPECT_EQ(S.EngineReplays, 2u);
  // The prefetched parent now answers from the cache.
  F.Service->get(1, Nested->Parent);
  EXPECT_EQ(F.Service->stats().EngineReplays, 2u);
  EXPECT_GE(F.Service->stats().Cache.Hits, 1u);
}

TEST(ReplayServiceTest, PrefetchIsInertWithoutWorkersOrOptIn) {
  ServiceFixture Serial({.Threads = 0, .Prefetch = true});
  Serial.Service->prefetchNeighbors(1, 1);
  EXPECT_EQ(Serial.Service->stats().PrefetchesIssued, 0u);

  ServiceFixture NotAsked({.Threads = 2, .Prefetch = false});
  NotAsked.Service->prefetchNeighbors(1, 1);
  EXPECT_EQ(NotAsked.Service->stats().PrefetchesIssued, 0u);
}

TEST(ReplayServiceTest, ConcurrentGetsOfOneIntervalReplayOnce) {
  ServiceFixture F({.Threads = 4});
  constexpr int NumCallers = 8;
  std::vector<std::thread> Callers;
  std::vector<ParallelReplayer::ReplayPtr> Got(NumCallers);
  for (int I = 0; I != NumCallers; ++I)
    Callers.emplace_back(
        [&F, &Got, I] { Got[I] = F.Service->get(0, 0); });
  for (std::thread &T : Callers)
    T.join();
  for (const auto &Ptr : Got) {
    ASSERT_NE(Ptr, nullptr);
    EXPECT_EQ(Ptr.get(), Got[0].get());
  }
  EXPECT_EQ(F.Service->stats().EngineReplays, 1u)
      << "single-flight dedup: one engine run for eight callers";
}

TEST(ReplayServiceTest, TinyCacheBudgetEvictsButStaysCorrect) {
  // A budget smaller than one trace: each insert evicts its predecessor
  // (never itself), so alternating intervals always re-replay — slower,
  // never wrong.
  ServiceFixture F({.CacheBytes = 1, .CacheShards = 1});
  ASSERT_GT(F.Index->intervals(1).size(), 1u);
  auto A = F.Service->get(1, 0);
  F.Service->get(1, 1); // evicts interval 0
  auto A2 = F.Service->get(1, 0);
  EXPECT_TRUE(A->Ok);
  EXPECT_EQ(A->Events.Events, A2->Events.Events);
  EXPECT_GE(F.Service->stats().Cache.Evictions, 1u);
  EXPECT_EQ(F.Service->stats().EngineReplays, 3u)
      << "interval 0 was replayed twice";
}

} // namespace
