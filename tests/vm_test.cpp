//===- tests/vm_test.cpp - SMMP simulator tests ---------------------------===//
//
// Part of PPD test suite: bytecode execution semantics, scheduling
// determinism, semaphores, channels, spawn, runtime failures, deadlock.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

TEST(VmTest, ArithmeticAndPrint) {
  auto R = runProgram(
      "func main() { print(1 + 2 * 3); print(10 / 3); print(10 % 3); "
      "print(-4); print(abs(-5)); print(min(2, 1)); print(max(2, 1)); "
      "print(sqrt(16)); print(sqrt(17)); }");
  EXPECT_EQ(R.PrintedValues,
            (std::vector<int64_t>{7, 3, 1, -4, 5, 1, 2, 4, 4}));
}

TEST(VmTest, ComparisonsAndLogic) {
  auto R = runProgram(
      "func main() { print(1 < 2); print(2 <= 1); print(3 > 2); "
      "print(2 >= 3); print(2 == 2); print(2 != 2); "
      "print(1 && 0); print(1 || 0); print(!5); print(!0); }");
  EXPECT_EQ(R.PrintedValues,
            (std::vector<int64_t>{1, 0, 1, 0, 1, 0, 0, 1, 0, 1}));
}

TEST(VmTest, ShortCircuitSkipsRhs) {
  // The RHS would divide by zero; short-circuiting must avoid it.
  auto R = runProgram("func main() { int z = 0; print(0 && 1 / z); "
                      "print(1 || 1 / z); }");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{0, 1}));
}

TEST(VmTest, ControlFlow) {
  auto R = runProgram(R"(
func main() {
  int i = 0;
  int sum = 0;
  while (i < 5) { sum = sum + i; i = i + 1; }
  print(sum);
  for (i = 10; i > 7; i = i - 1) print(i);
  if (sum == 10) print(100); else print(200);
}
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{10, 10, 9, 8, 100}));
}

TEST(VmTest, FunctionsAndRecursion) {
  auto R = runProgram(R"(
func fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
func fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
func main() { print(fact(6)); print(fib(10)); }
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{720, 55}));
}

TEST(VmTest, ArraysAndGlobals) {
  auto R = runProgram(R"(
shared int total;
int bias = 10;
func main() {
  int a[5];
  int i = 0;
  for (i = 0; i < 5; i = i + 1) a[i] = i * i;
  for (i = 0; i < 5; i = i + 1) total = total + a[i];
  print(total + bias);
}
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{40}));
}

TEST(VmTest, GlobalInitializers) {
  auto R = runProgram("shared int s = 7; int p = -3;\n"
                      "func main() { print(s); print(p); }");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{7, -3}));
}

TEST(VmTest, InputStream) {
  MachineOptions MOpts;
  MOpts.ProcessInputs = {{5, 6}};
  auto R = runProgram("func main() { print(input() + input()); }", 1, MOpts);
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{11}));
}

TEST(VmTest, PrivateGlobalsArePerProcess) {
  auto R = runProgram(R"(
int mine = 1;
chan done;
func child() {
  mine = 99;       // only the child's copy changes
  send(done, mine);
}
func main() {
  spawn child();
  int c = recv(done);
  print(c);
  print(mine);
}
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{99, 1}));
}

TEST(VmTest, SemaphoreMutualExclusion) {
  // With the mutex, the final count is exact under any schedule.
  const char *Source = R"(
shared int count;
shared int done;
sem m = 1;
sem finished;
func worker(int reps) {
  int i = 0;
  for (i = 0; i < reps; i = i + 1) {
    P(m);
    count = count + 1;
    V(m);
  }
  V(finished);
}
func main() {
  spawn worker(50);
  spawn worker(50);
  P(finished);
  P(finished);
  print(count);
}
)";
  for (uint64_t Seed : {1, 7, 42, 1234}) {
    auto R = runProgram(Source, Seed);
    EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{100}))
        << "seed " << Seed;
  }
}

TEST(VmTest, ChannelFifoOrder) {
  auto R = runProgram(R"(
chan c[10];
func producer() {
  int i = 0;
  for (i = 1; i <= 4; i = i + 1) send(c, i * 11);
}
func main() {
  spawn producer();
  print(recv(c)); print(recv(c)); print(recv(c)); print(recv(c));
}
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{11, 22, 33, 44}));
}

TEST(VmTest, RendezvousBlockingSend) {
  // Capacity-0 channel: the sender cannot run ahead of the receiver.
  auto R = runProgram(R"(
chan c;
chan ack;
func child() {
  send(c, 1);      // blocks until main receives
  int a = recv(ack);
  print(a + 100);
}
func main() {
  spawn child();
  int v = recv(c);
  print(v);
  send(ack, 7);
}
)");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{1, 107}));
}

TEST(VmTest, SchedulingIsDeterministicPerSeed) {
  const char *Racy = R"(
shared int sv;
chan done;
func w(int x) { sv = sv + x; send(done, 1); }
func main() {
  spawn w(1);
  spawn w(2);
  int i = recv(done);
  i = recv(done);
  print(sv);
}
)";
  for (uint64_t Seed : {3, 99}) {
    auto A = runProgram(Racy, Seed);
    auto B = runProgram(Racy, Seed);
    EXPECT_EQ(A.PrintedValues, B.PrintedValues) << "seed " << Seed;
    EXPECT_EQ(A.Result.Steps, B.Result.Steps) << "seed " << Seed;
  }
}

TEST(VmTest, RuntimeFailures) {
  struct Case {
    const char *Source;
    RuntimeErrorKind Kind;
  };
  const Case Cases[] = {
      {"func main() { int z = 0; print(1 / z); }",
       RuntimeErrorKind::DivideByZero},
      {"func main() { int z = 0; print(1 % z); }",
       RuntimeErrorKind::ModuloByZero},
      {"func main() { int a[3]; int i = 5; a[i] = 1; }",
       RuntimeErrorKind::IndexOutOfBounds},
      {"func main() { int a[3]; int i = -1; print(a[i]); }",
       RuntimeErrorKind::IndexOutOfBounds},
      {"func main() { int x = 0 - 4; print(sqrt(x)); }",
       RuntimeErrorKind::NegativeSqrt},
      {"func main() { print(input()); }",
       RuntimeErrorKind::InputExhausted},
      {"func f(int n) { return f(n + 1); } func main() { print(f(0)); }",
       RuntimeErrorKind::StackOverflow},
  };
  for (const Case &C : Cases) {
    auto R = runProgram(C.Source, 1, {}, {}, /*ExpectCompleted=*/false);
    EXPECT_EQ(int(R.Result.Outcome), int(RunResult::Status::Failed))
        << C.Source;
    EXPECT_EQ(int(R.Result.Error.Kind), int(C.Kind)) << C.Source;
    EXPECT_NE(R.Result.Error.Stmt, InvalidId)
        << "failures must name the statement (the flowback root)";
  }
}

TEST(VmTest, DeadlockDetected) {
  auto R = runProgram(R"(
sem a = 1;
sem b = 1;
chan go;
func left() { P(a); int x = recv(go); P(b); V(b); V(a); }
func main() {
  spawn left();
  P(b);
  send(go, 1);
  P(a);   // deadlock: left holds a, main holds b
  V(a);
  V(b);
}
)",
                      1, {}, {}, /*ExpectCompleted=*/false);
  EXPECT_EQ(int(R.Result.Outcome), int(RunResult::Status::Deadlock));
  EXPECT_EQ(R.Result.Deadlock.Blocked.size(), 2u);
}

TEST(VmTest, StepLimitStopsRunawayLoops) {
  MachineOptions MOpts;
  MOpts.MaxSteps = 10'000;
  auto R = runProgram("func main() { while (1) { } }", 1, MOpts, {},
                      /*ExpectCompleted=*/false);
  EXPECT_EQ(int(R.Result.Outcome), int(RunResult::Status::StepLimit));
}

TEST(VmTest, PlainModeProducesNoLogRecords) {
  MachineOptions MOpts;
  MOpts.Mode = RunMode::Plain;
  auto R = runProgram("shared int s;\nfunc main() { s = 1; print(s); }", 1,
                      MOpts);
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{1}));
  EXPECT_TRUE(R.Log.Procs[0].Records.empty());
}

TEST(VmTest, LoggingModeEmitsPreAndPostlogs) {
  auto R = runProgram("shared int s;\nfunc main() { s = 41; s = s + 1; "
                      "print(s); }");
  unsigned Prelogs = 0, Postlogs = 0;
  for (const LogRecord &Rec : R.Log.Procs[0].Records) {
    Prelogs += Rec.Kind == LogRecordKind::Prelog;
    Postlogs += Rec.Kind == LogRecordKind::Postlog;
  }
  EXPECT_EQ(Prelogs, 1u) << "main is one e-block";
  EXPECT_EQ(Postlogs, 1u);
}

TEST(VmTest, SyncEventsCarryEdgeSets) {
  auto R = runProgram(R"(
shared int sv;
sem m = 1;
func main() {
  P(m);
  sv = sv + 1;
  V(m);
}
)");
  // The V's record carries the read+write of sv on the edge P→V.
  const LogRecord *VRec = nullptr;
  for (const LogRecord &Rec : R.Log.Procs[0].Records)
    if (Rec.Kind == LogRecordKind::SyncEvent &&
        Rec.Sync == SyncKind::SemSignal)
      VRec = &Rec;
  ASSERT_NE(VRec, nullptr);
  EXPECT_EQ(VRec->ReadSet, (std::vector<uint32_t>{0}));
  EXPECT_EQ(VRec->WriteSet, (std::vector<uint32_t>{0}));
}

TEST(VmTest, PartnerSequencesMatchSemantics) {
  auto R = runProgram(R"(
sem s;
chan done;
func child() { P(s); send(done, 1); }
func main() {
  spawn child();
  V(s);
  int x = recv(done);
  print(x);
}
)");
  // Child's P must have a partner (main's V); child's ProcStart partners
  // main's spawn; main's recv partners child's send.
  auto FindSync = [&](uint32_t Pid, SyncKind Kind) -> const LogRecord * {
    for (const LogRecord &Rec : R.Log.Procs[Pid].Records)
      if (Rec.Kind == LogRecordKind::SyncEvent && Rec.Sync == Kind)
        return &Rec;
    return nullptr;
  };
  const LogRecord *ChildP = FindSync(1, SyncKind::SemAcquire);
  const LogRecord *MainV = FindSync(0, SyncKind::SemSignal);
  ASSERT_TRUE(ChildP && MainV);
  EXPECT_EQ(ChildP->PartnerSeq, MainV->Seq);

  const LogRecord *ChildStart = FindSync(1, SyncKind::ProcStart);
  const LogRecord *MainSpawn = FindSync(0, SyncKind::SpawnChild);
  ASSERT_TRUE(ChildStart && MainSpawn);
  EXPECT_EQ(ChildStart->PartnerSeq, MainSpawn->Seq);

  const LogRecord *MainRecv = FindSync(0, SyncKind::ChanRecv);
  const LogRecord *ChildSend = FindSync(1, SyncKind::ChanSend);
  ASSERT_TRUE(MainRecv && ChildSend);
  EXPECT_EQ(MainRecv->PartnerSeq, ChildSend->Seq);
  EXPECT_EQ(MainRecv->Value, 1);
}

// Parameterized schedule sweep: a well-synchronized pipeline computes the
// same answer under many interleavings.
class ScheduleSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScheduleSweepTest, PipelineDeterministicAcrossSeeds) {
  auto R = runProgram(R"(
chan stage1[4];
chan stage2[4];
func square() {
  int i = 0;
  for (i = 0; i < 6; i = i + 1) {
    int v = recv(stage1);
    send(stage2, v * v);
  }
}
func main() {
  spawn square();
  int i = 0;
  for (i = 1; i <= 6; i = i + 1) send(stage1, i);
  int sum = 0;
  for (i = 0; i < 6; i = i + 1) sum = sum + recv(stage2);
  print(sum);
}
)",
                      GetParam());
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{91}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
