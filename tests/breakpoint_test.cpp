//===- tests/breakpoint_test.cpp - Breakpoints and stop markers -----------===//
//
// Part of PPD test suite. The paper's debugging phase begins "when the
// program halts, due to either an error or user intervention" (§3.2.2);
// breakpoints are the user-intervention path. The machine freezes all
// co-operating processes and writes Stop markers so replay reconstructs
// each process's history exactly up to where it actually stopped — the
// timely-halt concern §5.7 raises (citing [24]).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/Replay.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

/// The StmtId of the first statement on \p Line.
StmtId stmtAtLine(const Program &P, unsigned Line) {
  for (StmtId Id = 0; Id != P.numStmts(); ++Id)
    if (P.stmt(Id)->getLoc().Line == Line && !isa<BlockStmt>(P.stmt(Id)))
      return Id;
  ADD_FAILURE() << "no statement at line " << Line;
  return InvalidId;
}

TEST(BreakpointTest, HaltsBeforeTheStatementExecutes) {
  auto Prog = compileOk("shared int g;\n"
                        "func main() {\n"
                        "  g = 1;\n"  // line 3
                        "  g = 2;\n"  // line 4 ← break here
                        "  g = 3;\n"  // line 5
                        "}\n");
  MachineOptions MOpts;
  MOpts.Breakpoints = {stmtAtLine(*Prog->Ast, 4)};
  Machine M(*Prog, MOpts);
  RunResult Result = M.run();
  ASSERT_EQ(int(Result.Outcome), int(RunResult::Status::Breakpoint));
  EXPECT_EQ(Result.BreakPid, 0u);
  EXPECT_EQ(Result.BreakStmt, stmtAtLine(*Prog->Ast, 4));
  // g = 2 did NOT execute.
  EXPECT_EQ(M.sharedMemory()[0], 1);
}

TEST(BreakpointTest, StopMarkerWritten) {
  auto Prog = compileOk("func main() { int a = 1; print(a); }");
  MachineOptions MOpts;
  MOpts.Breakpoints = {stmtAtLine(*Prog->Ast, 1)};
  Machine M(*Prog, MOpts);
  ASSERT_EQ(int(M.run().Outcome), int(RunResult::Status::Breakpoint));
  const auto &Records = M.log().Procs[0].Records;
  ASSERT_FALSE(Records.empty());
  EXPECT_EQ(int(Records.back().Kind), int(LogRecordKind::Stop));
  EXPECT_NE(Records.back().Stmt, InvalidId);
}

TEST(BreakpointTest, ReplayStopsExactlyAtTheBreak) {
  auto Prog = compileOk("shared int g;\n"
                        "func main() {\n"
                        "  g = 1;\n"
                        "  g = 2;\n"
                        "  g = 3;\n" // line 5 ← break here
                        "  g = 4;\n"
                        "}\n");
  StmtId Break = stmtAtLine(*Prog->Ast, 5);
  MachineOptions MOpts;
  MOpts.Breakpoints = {Break};
  Machine M(*Prog, MOpts);
  ASSERT_EQ(int(M.run().Outcome), int(RunResult::Status::Breakpoint));

  PpdController Controller(*Prog, M.takeLog());
  DynNodeId Last = Controller.startAtLastEvent(0);
  ASSERT_NE(Last, InvalidId);
  // The session's focus is g = 2 — the last statement that *executed*.
  EXPECT_NE(Controller.graph().node(Last).Label.find("g = 2"),
            std::string::npos);
  // No node for g = 3 or g = 4 exists: replay must not fabricate events
  // past the freeze.
  for (uint32_t Id = 0; Id != Controller.graph().numNodes(); ++Id) {
    EXPECT_EQ(Controller.graph().node(Id).Label.find("g = 3"),
              std::string::npos);
    EXPECT_EQ(Controller.graph().node(Id).Label.find("g = 4"),
              std::string::npos);
  }
}

TEST(BreakpointTest, BreakInsideLoopStopsAtSomeOccurrence) {
  auto Prog = compileOk("shared int g;\n"
                        "func main() {\n"
                        "  int i = 0;\n"
                        "  while (i < 5) {\n"
                        "    g = g + 1;\n" // line 5 ← break
                        "    i = i + 1;\n"
                        "  }\n"
                        "}\n");
  MachineOptions MOpts;
  MOpts.Breakpoints = {stmtAtLine(*Prog->Ast, 5)};
  Machine M(*Prog, MOpts);
  RunResult Result = M.run();
  ASSERT_EQ(int(Result.Outcome), int(RunResult::Status::Breakpoint));
  // Breaks on the first iteration, before the first increment.
  EXPECT_EQ(M.sharedMemory()[0], 0);
}

TEST(BreakpointTest, OtherProcessesFreezeWithStopMarkers) {
  auto Prog = compileOk(R"(
shared int g;
chan pace;
func spinner() {
  int i = 0;
  for (i = 0; i < 1000000; i = i + 1) g = g + 1;
}
func main() {
  spawn spinner();
  int j = 0;
  j = j + 1;
  j = j + 2;
  print(j);
}
)");
  // Break on main's print; the spinner freezes mid-loop.
  StmtId Break = InvalidId;
  for (StmtId Id = 0; Id != Prog->Ast->numStmts(); ++Id)
    if (isa<PrintStmt>(Prog->Ast->stmt(Id)))
      Break = Id;
  ASSERT_NE(Break, InvalidId);
  MachineOptions MOpts;
  MOpts.Breakpoints = {Break};
  Machine M(*Prog, MOpts);
  ASSERT_EQ(int(M.run().Outcome), int(RunResult::Status::Breakpoint));

  // Both processes carry Stop markers.
  for (uint32_t Pid = 0; Pid != 2; ++Pid)
    EXPECT_EQ(int(M.log().Procs[Pid].Records.back().Kind),
              int(LogRecordKind::Stop))
        << "pid " << Pid;

  // The spinner's replay is partial and bounded: it must not run the
  // remaining hundreds of thousands of iterations.
  ExecutionLog Log = M.takeLog();
  LogIndex Index(Log);
  const LogInterval *Open = Index.lastOpenInterval(1);
  ASSERT_NE(Open, nullptr);
  ReplayEngine Engine(*Prog);
  ReplayResult Res = Engine.replay(Log, 1, *Open);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.Partial);
}

TEST(BreakpointTest, NoBreakpointsMeansNormalCompletion) {
  auto R = runProgram("func main() { print(42); }");
  EXPECT_EQ(R.PrintedValues, (std::vector<int64_t>{42}));
}

TEST(BreakpointTest, StopMarkersSurviveSerialization) {
  auto Prog = compileOk("func main() { int a = 1; int b = 2; print(a); }");
  MachineOptions MOpts;
  for (StmtId Id = 0; Id != Prog->Ast->numStmts(); ++Id)
    if (isa<PrintStmt>(Prog->Ast->stmt(Id)))
      MOpts.Breakpoints = {Id};
  Machine M(*Prog, MOpts);
  ASSERT_EQ(int(M.run().Outcome), int(RunResult::Status::Breakpoint));

  std::string Path = ::testing::TempDir() + "/ppd_break_log.bin";
  ASSERT_TRUE(M.log().save(Path));
  ExecutionLog Loaded;
  ASSERT_TRUE(ExecutionLog::load(Path, Loaded));
  EXPECT_EQ(int(Loaded.Procs[0].Records.back().Kind),
            int(LogRecordKind::Stop));
  std::remove(Path.c_str());
}

} // namespace
