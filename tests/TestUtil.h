//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of PPD test suite.
//
//===----------------------------------------------------------------------===//

#ifndef PPD_TESTS_TESTUTIL_H
#define PPD_TESTS_TESTUTIL_H

#include "compiler/Compiler.h"
#include "lang/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ppd::test {

/// A parsed and semantically checked program.
struct Checked {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<SymbolTable> Symbols;
  DiagnosticEngine Diags;
};

/// Parses and runs sema on \p Source, failing the current test on any
/// diagnostic.
inline Checked check(const std::string &Source) {
  Checked Out;
  Out.Prog = Parser::parse(Source, Out.Diags);
  EXPECT_TRUE(Out.Prog != nullptr) << Out.Diags.str();
  if (!Out.Prog)
    return Out;
  Sema S(*Out.Prog, Out.Diags);
  Out.Symbols = S.run();
  EXPECT_TRUE(Out.Symbols != nullptr) << Out.Diags.str();
  return Out;
}

/// Finds the unique variable named \p Name, failing the test if absent or
/// ambiguous... returns InvalidId on failure.
inline VarId varNamed(const SymbolTable &Symbols, const std::string &Name) {
  VarId Found = InvalidId;
  for (const VarInfo &Info : Symbols.Vars) {
    if (Info.Name != Name)
      continue;
    EXPECT_EQ(Found, InvalidId) << "ambiguous variable name " << Name;
    Found = Info.Id;
  }
  EXPECT_NE(Found, InvalidId) << "no variable named " << Name;
  return Found;
}

/// Compiles \p Source, failing the test on diagnostics.
inline std::unique_ptr<CompiledProgram>
compileOk(const std::string &Source, const CompileOptions &Options = {}) {
  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, Options, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

/// One compiled-and-executed program.
struct Ran {
  std::unique_ptr<CompiledProgram> Prog;
  RunResult Result;
  ExecutionLog Log;
  std::vector<int64_t> PrintedValues;
};

/// Compiles and runs \p Source; by default expects successful completion.
inline Ran runProgram(const std::string &Source, uint64_t Seed = 1,
                      MachineOptions MOpts = {},
                      const CompileOptions &COpts = {},
                      bool ExpectCompleted = true) {
  Ran Out;
  Out.Prog = compileOk(Source, COpts);
  if (!Out.Prog)
    return Out;
  MOpts.Seed = Seed;
  Machine M(*Out.Prog, MOpts);
  Out.Result = M.run();
  if (ExpectCompleted) {
    EXPECT_EQ(int(Out.Result.Outcome), int(RunResult::Status::Completed))
        << Out.Result.Error.str();
  }
  Out.Log = M.takeLog();
  for (const OutputRecord &O : Out.Log.Output)
    Out.PrintedValues.push_back(O.Value);
  return Out;
}

} // namespace ppd::test

#endif // PPD_TESTS_TESTUTIL_H
