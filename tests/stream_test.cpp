//===- tests/stream_test.cpp - Live attach: streamed ingest ---------------===//
//
// Part of PPD test suite: the live-attach subsystem (DESIGN.md §13).
//
//   * the streamed-vs-batch differential over 16 generated programs,
//     checking EVERY frontier (not a sample): tail answers at each
//     applied cut equal a batch controller over the same prefix, and the
//     final frontier serializes to v2 bytes identical to the batch log;
//   * ingest validation: hash mismatch, non-dense pids, replayed cuts,
//     undecodable blobs, interleaved cuts — each a typed StreamProtocol
//     error that kills the stream without corrupting the registry;
//   * the credit scheme's Ack values and the ingest counters;
//   * spill durability: a connection dropped mid-stream leaves a spill
//     openable up to the last sealed cut, a file truncated mid-chunk
//     recovers the complete-cut prefix with Truncated set;
//   * `--spill-budget`: typed Busy once the budget cannot admit a cut,
//     for the session and for new hellos after exhaustion;
//   * concurrent ingest + tail/frontier queries on live streams (the
//     TSan target: the per-stream mutex makes cut application atomic
//     under queries).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/DebugSession.h"
#include "log/ProgramDb.h"
#include "server/DebugServer.h"
#include "server/Protocol.h"
#include "stream/Ingest.h"
#include "stream/Spill.h"
#include "stream/StreamClient.h"
#include "testing/ProgramGen.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace ppd;
using namespace ppd::test;

namespace {

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

std::vector<uint8_t> fileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

/// A DebugServer with an IngestRegistry installed as its stream
/// dispatcher, plus one registered program (a second compile of the same
/// source is the batch oracle's copy).
struct IngestFixture {
  DebugServer Server;
  stream::IngestRegistry Ingest;
  std::unique_ptr<CompiledProgram> Prog; ///< batch-side compile.
  uint32_t ProgramIndex = 0;
  uint64_t Hash = 0;

  explicit IngestFixture(const std::string &Source,
                         stream::IngestOptions Options = {})
      : Ingest(Server, std::move(Options)) {
    Server.setStreamDispatcher(
        [this](const Request &Req) { return Ingest.dispatch(Req); });
    Prog = compileOk(Source);
    auto SrvProg = compileOk(Source);
    Hash = programHash(*SrvProg);
    ProgramIndex = Server.addProgram(std::move(SrvProg), ExecutionLog());
  }

  Response hello() {
    Request Req;
    Req.Type = MsgType::StreamHello;
    Req.ProgramIndex = ProgramIndex;
    Req.ProgramHash = Hash;
    return Ingest.dispatch(Req);
  }

  Response tail(uint64_t Sid, const std::string &Cmd) {
    Request Req;
    Req.Type = MsgType::TailQuery;
    Req.StreamId = Sid;
    Req.Command = Cmd;
    return Ingest.dispatch(Req);
  }

  Response frontier(uint64_t Sid) {
    Request Req;
    Req.Type = MsgType::Frontier;
    Req.StreamId = Sid;
    return Ingest.dispatch(Req);
  }
};

/// Runs \p Prog with a StreamSealer hooked into the scheduler rounds —
/// cuts are only consistent when sealed DURING execution — dispatching
/// every frame into \p F's registry. \p OnCut (optional) fires after each
/// applied cut. Returns the machine's own (batch) log.
struct StreamedRun {
  uint64_t Sid = 0;
  ExecutionLog BatchLog;
  uint64_t Cuts = 0;
  uint64_t Sections = 0;
};

StreamedRun streamRun(IngestFixture &F, uint32_t SectionRecords,
                      MachineOptions MOpts = {},
                      std::function<void(uint64_t)> OnCut = {}) {
  StreamedRun Out;
  Response Hello = F.hello();
  EXPECT_EQ(int(Hello.Type), int(RespType::Ack));
  Out.Sid = Hello.StreamId;

  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = SectionRecords;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Out.Sid);

  auto Ship = [&](std::vector<Request> Frames) {
    for (Request &Fr : Frames) {
      ++Out.Sections;
      bool Last = (Fr.Flags & SectionLastInCut) != 0;
      Response R = F.Ingest.dispatch(Fr);
      ASSERT_EQ(int(R.Type), int(RespType::Ack))
          << "cut " << Fr.CutSeq << ": " << R.Text;
      if (Last) {
        ++Out.Cuts;
        if (OnCut)
          OnCut(Out.Sid);
      }
    }
  };

  MOpts.Mode = RunMode::Logging;
  Machine M(*F.Prog, MOpts);
  M.onRound([&](Machine &Mach) { Ship(Sealer.sealRound(Mach.log())); });
  M.run();
  Ship(Sealer.sealRound(M.log(), /*Force=*/true));
  Response End = F.Ingest.dispatch(Sealer.endFrame(M.log()));
  EXPECT_EQ(int(End.Type), int(RespType::Ack)) << End.Text;
  EXPECT_EQ(End.Credits, 0u) << "StreamEnd returns no send credit";
  Out.BatchLog = M.takeLog();
  return Out;
}

const char *PipelineSource = R"(
shared int acc;
chan stage;
func worker(int base) {
  int i = 0;
  while (i < 4) {
    acc = acc + base + i;
    i = i + 1;
  }
  send(stage, base);
}
func main() {
  spawn worker(10);
  spawn worker(20);
  int a = recv(stage);
  int b = recv(stage);
  print(acc);
  print(a + b);
}
)";

//===----------------------------------------------------------------------===//
// The 16-seed streamed-vs-batch differential (the acceptance bar):
// EVERY frontier's tail answers equal a batch load of the same prefix,
// and the final frontier is bit-identical to the batch log as v2.
//===----------------------------------------------------------------------===//

TEST(StreamDiffTest, SixteenSeedsEveryPrefixMatchesBatch) {
  for (uint64_t Seed = 0; Seed != 16; ++Seed) {
    ppd::testing::GenProgram G = ppd::testing::generateProgram(Seed);
    std::string Source = G.render();
    IngestFixture F(Source);
    ASSERT_TRUE(F.Prog) << "seed " << Seed;

    MachineOptions MOpts;
    MOpts.Seed = G.SchedSeed;
    MOpts.Quantum = G.Quantum;
    MOpts.MaxSteps = 2'000'000;
    MOpts.ProcessInputs.resize(8);
    for (size_t S = 0; S != 8; ++S)
      for (int I = 0; I != 16; ++I)
        MOpts.ProcessInputs[S].push_back(int64_t((Seed * 31 + S * 7 + I) % 97));

    // Check EVERY applied cut: the cached tail snapshot (incremental
    // index + graph, adopted) against a from-scratch batch controller
    // over a copy of the same prefix.
    unsigned Checked = 0;
    auto OnCut = [&](uint64_t Sid) {
      ExecutionLog Prefix;
      ASSERT_TRUE(F.Ingest.frontierLog(Sid, Prefix));
      if (Prefix.Procs.empty())
        return;
      ++Checked;
      PpdController Batch(*F.Prog, ExecutionLog(Prefix));
      DebugSession BatchSess(*F.Prog, Batch);
      for (const char *Cmd : {"where 0", "races"}) {
        Response R = F.tail(Sid, Cmd);
        ASSERT_EQ(int(R.Type), int(RespType::Result))
            << "seed " << Seed << " '" << Cmd << "': " << R.Text;
        EXPECT_EQ(R.Text, BatchSess.execute(Cmd))
            << "seed " << Seed << " cut-frontier '" << Cmd << "'";
      }
    };

    // Section threshold randomized down to one record, so cut boundaries
    // land everywhere.
    StreamedRun Run = streamRun(F, 1 + uint32_t(Seed % 7), MOpts, OnCut);
    if (::testing::Test::HasFatalFailure())
      return;
    EXPECT_GT(Run.Cuts, 0u) << "seed " << Seed;
    EXPECT_GT(Checked, 0u) << "seed " << Seed;

    // Final state: field-level equality is subsumed by byte equality of
    // the canonical v2 serializations.
    ExecutionLog Frontier;
    ASSERT_TRUE(F.Ingest.frontierLog(Run.Sid, Frontier));
    std::string Dir = ::testing::TempDir();
    std::string PathA = Dir + "/stream_diff_" + std::to_string(Seed) + ".a";
    std::string PathB = Dir + "/stream_diff_" + std::to_string(Seed) + ".b";
    ASSERT_TRUE(Frontier.save(PathA, LogFormat::V2));
    ASSERT_TRUE(Run.BatchLog.save(PathB, LogFormat::V2));
    EXPECT_EQ(fileBytes(PathA), fileBytes(PathB))
        << "seed " << Seed << ": streamed frontier is not bit-identical "
        << "to the batch v2 log";
    std::remove(PathA.c_str());
    std::remove(PathB.c_str());

    // And the ended frontier still answers tail queries like a batch
    // session over the batch log (output and races included).
    PpdController Batch(*F.Prog, ExecutionLog(Run.BatchLog));
    DebugSession BatchSess(*F.Prog, Batch);
    for (const char *Cmd : {"where 0", "back", "races", "list"}) {
      Response R = F.tail(Run.Sid, Cmd);
      ASSERT_EQ(int(R.Type), int(RespType::Result)) << Cmd;
      EXPECT_EQ(R.Text, BatchSess.execute(Cmd)) << "seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===//
// Credit scheme + counters
//===----------------------------------------------------------------------===//

TEST(StreamIngestTest, AckCreditsFollowTheScheme) {
  stream::IngestOptions Options;
  Options.CreditWindow = 3;
  IngestFixture F(PipelineSource, Options);

  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));
  EXPECT_EQ(Hello.Credits, 3u) << "hello grants the full window";
  EXPECT_NE(Hello.StreamId, 0u);

  StreamedRun Run = streamRun(F, 4); // per-frame acks checked inside
  EXPECT_GT(Run.Sections, 0u);

  const ServerMetrics &Metrics = F.Server.metrics();
  EXPECT_EQ(Metrics.sectionsIngested(), Run.Sections);
  EXPECT_GT(Metrics.bytesIngested(), 0u);
  EXPECT_GE(Metrics.ingestQueueDepth(), 1u);

  // The `stats` rendering carries the ingest block.
  std::string Text = Metrics.render("");
  EXPECT_NE(Text.find("ingest: sections"), std::string::npos);
  EXPECT_NE(Text.find("credit stalls"), std::string::npos);
}

TEST(StreamIngestTest, StalledTracerCountsReachTheServer) {
  IngestFixture F(PipelineSource);
  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));

  // A SectionData frame stamps the tracer's cumulative stall count; the
  // server meters the delta.
  Ran R = runProgram(PipelineSource);
  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = 1;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Hello.StreamId);
  Sealer.noteStall();
  Sealer.noteStall();
  std::vector<Request> Frames = Sealer.sealRound(R.Log, /*Force=*/true);
  ASSERT_FALSE(Frames.empty());
  EXPECT_EQ(Frames.front().Stalls, 2u);
  for (Request &Fr : Frames)
    ASSERT_EQ(int(F.Ingest.dispatch(Fr).Type), int(RespType::Ack));
  EXPECT_EQ(F.Server.metrics().creditStalls(), 2u);
}

//===----------------------------------------------------------------------===//
// Validation: every malformed stream dies with a typed error
//===----------------------------------------------------------------------===//

TEST(StreamIngestTest, HelloRejectsUnknownProgramAndWrongHash) {
  IngestFixture F(PipelineSource);

  Request Req;
  Req.Type = MsgType::StreamHello;
  Req.ProgramIndex = 42;
  Req.ProgramHash = F.Hash;
  Response R = F.Ingest.dispatch(Req);
  EXPECT_EQ(int(R.Type), int(RespType::Error));
  EXPECT_EQ(int(R.Code), int(ErrCode::NoSuchProgram));

  Req.ProgramIndex = F.ProgramIndex;
  Req.ProgramHash = F.Hash ^ 1;
  R = F.Ingest.dispatch(Req);
  EXPECT_EQ(int(R.Type), int(RespType::Error));
  EXPECT_EQ(int(R.Code), int(ErrCode::StreamProtocol));
  EXPECT_EQ(F.Ingest.numStreams(), 0u) << "rejected hellos leave no stream";
}

TEST(StreamIngestTest, UnknownStreamIdsGetNoSuchStream) {
  IngestFixture F(PipelineSource);
  for (MsgType Type : {MsgType::SectionData, MsgType::StreamEnd,
                       MsgType::TailQuery, MsgType::Frontier}) {
    Request Req;
    Req.Type = Type;
    Req.StreamId = 99;
    Response R = F.Ingest.dispatch(Req);
    EXPECT_EQ(int(R.Type), int(RespType::Error)) << unsigned(Type);
    EXPECT_EQ(int(R.Code), int(ErrCode::NoSuchStream)) << unsigned(Type);
  }
  Response Empty = F.frontier(0);
  EXPECT_EQ(int(Empty.Type), int(RespType::Result));
  EXPECT_EQ(Empty.Text, "no streams");
}

TEST(StreamIngestTest, MalformedCutsKillTheStreamTyped) {
  struct Case {
    const char *Name;
    std::function<void(Request &)> Mangle;
  };
  const Case Cases[] = {
      {"undecodable blob", [](Request &R) { R.Blob = {0xff, 0xff, 0xff}; }},
      {"replayed cut", [](Request &R) { R.CutSeq = 0; }},
      {"non-dense pid", [](Request &R) { R.Pid = 7; }},
      {"record gap", [](Request &R) { R.FirstRecord = 1000; }},
  };
  for (const Case &C : Cases) {
    IngestFixture F(PipelineSource);
    Response Hello = F.hello();
    ASSERT_EQ(int(Hello.Type), int(RespType::Ack));

    Ran R = runProgram(PipelineSource);
    stream::SealerOptions SOpts;
    SOpts.ProgramIndex = F.ProgramIndex;
    SOpts.ProgramHash = F.Hash;
    SOpts.SectionRecords = 1;
    stream::StreamSealer Sealer(SOpts);
    Sealer.setStreamId(Hello.StreamId);
    std::vector<Request> Frames = Sealer.sealRound(R.Log, /*Force=*/true);
    ASSERT_FALSE(Frames.empty());

    // Mangle the first frame and mark it last-in-cut so validation runs.
    Request Bad = Frames.front();
    Bad.Flags |= SectionLastInCut;
    C.Mangle(Bad);
    Response Err = F.Ingest.dispatch(Bad);
    EXPECT_EQ(int(Err.Type), int(RespType::Error)) << C.Name;
    EXPECT_EQ(int(Err.Code), int(ErrCode::StreamProtocol)) << C.Name;

    // The stream is dead: good frames are rejected, tail queries error,
    // frontier reports the state.
    Response After = F.Ingest.dispatch(Frames.front());
    EXPECT_EQ(int(After.Type), int(RespType::Error)) << C.Name;
    Response Tail = F.tail(Hello.StreamId, "where 0");
    EXPECT_EQ(int(Tail.Type), int(RespType::Error)) << C.Name;
    Response Desc = F.frontier(Hello.StreamId);
    ASSERT_EQ(int(Desc.Type), int(RespType::Result)) << C.Name;
    EXPECT_NE(Desc.Text.find("dead"), std::string::npos) << C.Name;
  }
}

TEST(StreamIngestTest, InterleavedCutsAreRejected) {
  IngestFixture F(PipelineSource);
  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));

  Ran R = runProgram(PipelineSource);
  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = 1;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Hello.StreamId);
  std::vector<Request> Frames = Sealer.sealRound(R.Log, /*Force=*/true);
  ASSERT_GE(Frames.size(), 2u) << "pipeline program has several processes";

  // Open cut 1, then claim a frame of cut 2 mid-cut.
  Request First = Frames.front();
  First.Flags &= uint8_t(~SectionLastInCut);
  ASSERT_EQ(int(F.Ingest.dispatch(First).Type), int(RespType::Ack));
  Request Interloper = Frames[1];
  Interloper.CutSeq = First.CutSeq + 1;
  Response Err = F.Ingest.dispatch(Interloper);
  EXPECT_EQ(int(Err.Type), int(RespType::Error));
  EXPECT_EQ(int(Err.Code), int(ErrCode::StreamProtocol));
  EXPECT_NE(Err.Text.find("interleaved"), std::string::npos);
}

TEST(StreamIngestTest, TailOnEmptyFrontierIsAnAnswerNotAnError) {
  IngestFixture F(PipelineSource);
  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));
  Response R = F.tail(Hello.StreamId, "where 0");
  ASSERT_EQ(int(R.Type), int(RespType::Result));
  EXPECT_NE(R.Text.find("frontier is empty"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Spill durability
//===----------------------------------------------------------------------===//

TEST(StreamSpillTest, DroppedConnectionLeavesSpillOpenableToLastCut) {
  std::string Dir = ::testing::TempDir();
  stream::IngestOptions Options;
  Options.SpillDir = Dir;
  IngestFixture F(PipelineSource, Options);
  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));
  uint64_t Sid = Hello.StreamId;

  // Seal during a live run (consistency), but buffer the frames so the
  // "connection" can drop after exactly two cuts.
  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = 2;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Sid);
  std::vector<std::vector<Request>> CutFrames; // grouped by cut
  MachineOptions MOpts;
  Machine M(*F.Prog, MOpts);
  M.onRound([&](Machine &Mach) {
    std::vector<Request> Frames = Sealer.sealRound(Mach.log());
    std::vector<Request> Cut;
    for (Request &Fr : Frames) {
      bool Last = (Fr.Flags & SectionLastInCut) != 0;
      Cut.push_back(std::move(Fr));
      if (Last) {
        CutFrames.push_back(std::move(Cut));
        Cut.clear();
      }
    }
    EXPECT_TRUE(Cut.empty()) << "sealRound returns whole cuts";
  });
  M.run();
  ASSERT_GE(CutFrames.size(), 3u) << "need cuts to drop";

  const size_t Applied = 2;
  for (size_t C = 0; C != Applied; ++C)
    for (Request &Fr : CutFrames[C])
      ASSERT_EQ(int(F.Ingest.dispatch(Fr).Type), int(RespType::Ack));
  // ...and the tracer vanishes here: no cut 3, no StreamEnd.

  std::string SpillPath = F.Ingest.spillPathOf(Sid);
  ASSERT_FALSE(SpillPath.empty());
  uint64_t Hash = 0;
  std::vector<stream::SpillCut> Cuts;
  bool Truncated = true;
  ASSERT_TRUE(stream::loadSpill(SpillPath, Hash, Cuts, &Truncated));
  EXPECT_EQ(Hash, F.Hash);
  EXPECT_FALSE(Truncated);
  ASSERT_EQ(Cuts.size(), Applied);

  // The recovered prefix equals the live frontier, record for record.
  ExecutionLog Recovered, Frontier;
  ASSERT_TRUE(stream::buildLogFromCuts(Cuts, Cuts.size(), Recovered));
  ASSERT_TRUE(F.Ingest.frontierLog(Sid, Frontier));
  std::string PathA = Dir + "/recovered.ppdlog";
  std::string PathB = Dir + "/frontier.ppdlog";
  ASSERT_TRUE(Recovered.save(PathA, LogFormat::V2));
  ASSERT_TRUE(Frontier.save(PathB, LogFormat::V2));
  EXPECT_EQ(fileBytes(PathA), fileBytes(PathB));
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());

  // Crash mid-chunk: append a chunk header promising more bytes than
  // exist. The complete-cut prefix still loads, now flagged Truncated.
  {
    std::ofstream Out(SpillPath, std::ios::binary | std::ios::app);
    uint32_t Len = 100;
    Out.write(reinterpret_cast<const char *>(&Len), 4);
    const char Partial[10] = {};
    Out.write(Partial, sizeof(Partial));
  }
  Cuts.clear();
  ASSERT_TRUE(stream::loadSpill(SpillPath, Hash, Cuts, &Truncated));
  EXPECT_TRUE(Truncated);
  EXPECT_EQ(Cuts.size(), Applied);
}

TEST(StreamSpillTest, EndedStreamFinalizesCanonicalV2Log) {
  std::string Dir = ::testing::TempDir();
  stream::IngestOptions Options;
  Options.SpillDir = Dir;
  IngestFixture F(PipelineSource, Options);

  StreamedRun Run = streamRun(F, 4);
  std::string FinalPath = F.Ingest.finalLogPathOf(Run.Sid);
  ASSERT_FALSE(FinalPath.empty());

  // The finalized file is exactly what the batch run would have saved.
  std::string BatchPath = Dir + "/batch.ppdlog";
  ASSERT_TRUE(Run.BatchLog.save(BatchPath, LogFormat::V2));
  EXPECT_EQ(fileBytes(FinalPath), fileBytes(BatchPath));
  std::remove(BatchPath.c_str());

  // And it opens through the ordinary batch loader.
  ExecutionLog Loaded;
  ASSERT_TRUE(ExecutionLog::load(FinalPath, Loaded));
  EXPECT_EQ(Loaded.Procs.size(), Run.BatchLog.Procs.size());
  EXPECT_EQ(Loaded.Output.size(), Run.BatchLog.Output.size());
}

// Durability (--spill-sync): the sync hook counts exactly the calls the
// contract promises — finalization is always durable (fsync the tmp file
// and the directory around the rename: 2 calls), and SpillSync adds one
// fdatasync per acked cut on top. strace-free by injection.
TEST(StreamSpillTest, SyncHookCountsFinalizeAlwaysPerCutWhenEnabled) {
  for (bool SpillSync : {false, true}) {
    std::string Dir = ::testing::TempDir();
    uint64_t SyncCalls = 0;
    stream::IngestOptions Options;
    Options.SpillDir = Dir;
    Options.SpillSync = SpillSync;
    Options.Sync = [&SyncCalls](int Fd) {
      EXPECT_GE(Fd, 0);
      ++SyncCalls;
      return 0; // counted, not performed: the test wants call sites
    };
    IngestFixture F(PipelineSource, Options);
    StreamedRun Run = streamRun(F, 4);
    ASSERT_GE(Run.Cuts, 1u);
    uint64_t Expected = SpillSync ? 2 + Run.Cuts : 2;
    EXPECT_EQ(SyncCalls, Expected)
        << (SpillSync ? "with" : "without") << " --spill-sync over "
        << Run.Cuts << " cuts";
  }
}

TEST(StreamSpillTest, FailedFinalizeSyncKillsStreamAndRemovesTmp) {
  std::string Dir = ::testing::TempDir();
  stream::IngestOptions Options;
  Options.SpillDir = Dir;
  Options.Sync = [](int) { return -1; }; // the platter said no
  IngestFixture F(PipelineSource, Options);

  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));
  uint64_t Sid = Hello.StreamId;
  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = 4;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Sid);
  MachineOptions MOpts;
  MOpts.Mode = RunMode::Logging;
  Machine M(*F.Prog, MOpts);
  M.onRound([&](Machine &Mach) {
    for (Request &Fr : Sealer.sealRound(Mach.log()))
      ASSERT_EQ(int(F.Ingest.dispatch(Fr).Type), int(RespType::Ack));
  });
  M.run();
  for (Request &Fr : Sealer.sealRound(M.log(), /*Force=*/true))
    ASSERT_EQ(int(F.Ingest.dispatch(Fr).Type), int(RespType::Ack));

  Response End = F.Ingest.dispatch(Sealer.endFrame(M.log()));
  EXPECT_EQ(int(End.Type), int(RespType::Error))
      << "an unsyncable finalized log must not be acked durable";
  EXPECT_NE(End.Text.find("sync"), std::string::npos) << End.Text;
  EXPECT_TRUE(F.Ingest.finalLogPathOf(Sid).empty());
  // No half-finalized tmp file left behind.
  std::string TmpPath =
      Dir + "/stream-" + std::to_string(Sid) + ".ppdlog.tmp";
  std::ifstream Tmp(TmpPath, std::ios::binary);
  EXPECT_FALSE(Tmp.good()) << "tmp file survived the failed finalize";
}

//===----------------------------------------------------------------------===//
// Spill budget
//===----------------------------------------------------------------------===//

TEST(StreamBudgetTest, ExhaustedBudgetGivesTypedBusy) {
  stream::IngestOptions Options;
  Options.SpillBudget = 8; // far below any real cut chunk
  IngestFixture F(PipelineSource, Options);
  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack))
      << "an empty registry is under budget";

  Ran R = runProgram(PipelineSource);
  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = 1;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Hello.StreamId);
  std::vector<Request> Frames = Sealer.sealRound(R.Log, /*Force=*/true);
  ASSERT_FALSE(Frames.empty());
  Response Last;
  for (Request &Fr : Frames)
    Last = F.Ingest.dispatch(Fr);
  EXPECT_EQ(int(Last.Type), int(RespType::Busy))
      << "the cut-closing frame hits the budget gate";
  EXPECT_GE(F.Server.metrics().busyRejections(), 1u);
  EXPECT_EQ(F.Ingest.frontierVersion(Hello.StreamId), 0u)
      << "a rejected cut applies nothing";

  // The budget-killed stream takes no more frames.
  Response After = F.Ingest.dispatch(Frames.front());
  EXPECT_EQ(int(After.Type), int(RespType::Error));
}

TEST(StreamBudgetTest, SpillHeaderBytesCountAndBlockNewHellos) {
  // With a spill dir, each accepted hello writes a 16-byte header; a
  // 16-byte budget admits exactly one stream, then hellos go Busy.
  std::string Dir = ::testing::TempDir();
  stream::IngestOptions Options;
  Options.SpillDir = Dir;
  Options.SpillBudget = 16;
  IngestFixture F(PipelineSource, Options);
  ASSERT_EQ(int(F.hello().Type), int(RespType::Ack));
  EXPECT_EQ(F.Ingest.spillBytes(), 16u);
  Response Second = F.hello();
  EXPECT_EQ(int(Second.Type), int(RespType::Busy));
  EXPECT_EQ(F.Ingest.numStreams(), 1u);
}

//===----------------------------------------------------------------------===//
// Concurrency (the TSan target): ingest under live tail/frontier queries
//===----------------------------------------------------------------------===//

TEST(StreamConcurrencyTest, TailAndFrontierQueriesRaceIngestSafely) {
  IngestFixture F(PipelineSource);
  Response Hello = F.hello();
  ASSERT_EQ(int(Hello.Type), int(RespType::Ack));
  uint64_t Sid = Hello.StreamId;

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Queries{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 3; ++T)
    Readers.emplace_back([&, T] {
      const char *Cmd = T == 0 ? "where 0" : T == 1 ? "races" : "list";
      while (!Done.load(std::memory_order_acquire)) {
        Response R = F.tail(Sid, Cmd);
        // Every answer is a Result: empty-frontier text before the first
        // cut, a real answer after — never an error, never a crash.
        EXPECT_EQ(int(R.Type), int(RespType::Result)) << R.Text;
        Response Fr = F.frontier(Sid);
        EXPECT_EQ(int(Fr.Type), int(RespType::Result));
        Queries.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // The writer: a live streamed run with one-record sections, maximizing
  // cut applications racing the queries above.
  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = F.ProgramIndex;
  SOpts.ProgramHash = F.Hash;
  SOpts.SectionRecords = 1;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Sid);
  // Provable overlap: the writer does not start until every reader has
  // answered at least one query, and each scheduler round yields until
  // fresh queries have raced the cut that round applied.
  while (Queries.load(std::memory_order_relaxed) < 3)
    std::this_thread::yield();
  MachineOptions MOpts;
  Machine M(*F.Prog, MOpts);
  M.onRound([&](Machine &Mach) {
    for (Request &Fr : Sealer.sealRound(Mach.log()))
      ASSERT_EQ(int(F.Ingest.dispatch(Fr).Type), int(RespType::Ack));
    uint64_t Seen = Queries.load(std::memory_order_relaxed);
    while (Queries.load(std::memory_order_relaxed) == Seen)
      std::this_thread::yield();
  });
  M.run();
  for (Request &Fr : Sealer.sealRound(M.log(), /*Force=*/true))
    ASSERT_EQ(int(F.Ingest.dispatch(Fr).Type), int(RespType::Ack));
  ASSERT_EQ(int(F.Ingest.dispatch(Sealer.endFrame(M.log())).Type),
            int(RespType::Ack));

  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Queries.load(), 0u);
  EXPECT_GT(F.Ingest.frontierVersion(Sid), 0u);

  // After the race: the frontier still answers exactly like batch.
  ExecutionLog Frontier;
  ASSERT_TRUE(F.Ingest.frontierLog(Sid, Frontier));
  PpdController Batch(*F.Prog, ExecutionLog(Frontier));
  DebugSession BatchSess(*F.Prog, Batch);
  for (const char *Cmd : {"where 0", "races", "list"}) {
    Response R = F.tail(Sid, Cmd);
    ASSERT_EQ(int(R.Type), int(RespType::Result));
    EXPECT_EQ(R.Text, BatchSess.execute(Cmd));
  }
}

//===----------------------------------------------------------------------===//
// Server plumbing: stream frames route through the dispatcher hook
//===----------------------------------------------------------------------===//

TEST(StreamServerTest, SubmitFrameRoutesStreamMessagesToTheDispatcher) {
  IngestFixture F(PipelineSource);
  Request Req;
  Req.Type = MsgType::Frontier;
  Req.RequestId = 77;
  Req.StreamId = 0;
  LogWriter W;
  encodeRequest(Req, W);
  std::vector<uint8_t> Frame =
      F.Server.handleFrame(W.data() + 4, W.size() - 4);
  ASSERT_GE(Frame.size(), 4u);
  Response Resp;
  ASSERT_TRUE(decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp));
  EXPECT_EQ(int(Resp.Type), int(RespType::Result));
  EXPECT_EQ(Resp.RequestId, 77u);
  EXPECT_EQ(Resp.Text, "no streams");
}

} // namespace
