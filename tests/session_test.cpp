//===- tests/session_test.cpp - DebugSession command tests ----------------===//
//
// Part of PPD test suite: the text-command debugging session backing the
// `ppd debug` REPL — the user-facing surface the paper's §7 interface
// discussion asks for.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/DebugSession.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

struct SessionFixture {
  Ran R;
  std::unique_ptr<PpdController> Controller;
  std::unique_ptr<DebugSession> Session;

  explicit SessionFixture(const std::string &Source, uint64_t Seed = 1,
                          bool ExpectCompleted = true) {
    R = runProgram(Source, Seed, {}, {}, ExpectCompleted);
    Controller =
        std::make_unique<PpdController>(*R.Prog, std::move(R.Log));
    Session = std::make_unique<DebugSession>(*R.Prog, *Controller);
  }

  std::string run(const std::string &Command) {
    return Session->execute(Command);
  }
};

TEST(SessionTest, HelpListsEveryCommand) {
  SessionFixture S("func main() { print(1); }");
  std::string Help = S.run("help");
  for (const char *Cmd : {"where", "node", "back", "fwd", "expand", "races",
                          "restore", "whatif", "list", "graphdot", "pardot",
                          "stats"})
    EXPECT_NE(Help.find(Cmd), std::string::npos) << Cmd;
}

TEST(SessionTest, UnknownCommandGivesHint) {
  SessionFixture S("func main() { print(1); }");
  EXPECT_NE(S.run("frobnicate").find("unknown command"), std::string::npos);
  EXPECT_EQ(S.run(""), "");
}

TEST(SessionTest, WhereFocusesLastEventWithSourceLine) {
  SessionFixture S("func main() {\n  int x = 1;\n  print(x);\n}");
  std::string Out = S.run("where 0");
  EXPECT_NE(Out.find("print(x)"), std::string::npos);
  EXPECT_NE(Out.find("(line 3)"), std::string::npos);
  EXPECT_NE(S.Session->current(), InvalidId);
}

TEST(SessionTest, WhereRejectsBadPid) {
  SessionFixture S("func main() { print(1); }");
  EXPECT_NE(S.run("where 9").find("no such process"), std::string::npos);
}

TEST(SessionTest, BackFollowsDataDependence) {
  SessionFixture S("func main() {\n"
                   "  int a = 5;\n"
                   "  int b = a * 2;\n"
                   "  print(b);\n"
                   "}");
  S.run("where 0");
  EXPECT_NE(S.run("back").find("int b = a * 2"), std::string::npos);
  EXPECT_NE(S.run("back").find("int a = 5"), std::string::npos);
  EXPECT_NE(S.run("back").find("no data dependence"), std::string::npos);
}

TEST(SessionTest, FwdReversesBack) {
  SessionFixture S("func main() { int a = 5; int b = a + 1; print(b); }");
  S.run("where 0");
  DynNodeId Print = S.Session->current();
  S.run("back");
  EXPECT_NE(S.Session->current(), Print);
  S.run("fwd");
  EXPECT_EQ(S.Session->current(), Print);
}

TEST(SessionTest, BackRequiresFocus) {
  SessionFixture S("func main() { print(1); }");
  EXPECT_NE(S.run("back").find("use 'where' first"), std::string::npos);
  EXPECT_NE(S.run("fwd").find("use 'where' first"), std::string::npos);
}

TEST(SessionTest, ExpandSubGraphNode) {
  SessionFixture S("func sq(int v) { return v * v; }\n"
                   "func main() { print(sq(6)); }");
  S.run("where 0");
  // Find the sub-graph node id.
  DynNodeId Sub = InvalidId;
  for (uint32_t Id = 0; Id != S.Controller->graph().numNodes(); ++Id)
    if (S.Controller->graph().node(Id).Kind == DynNodeKind::SubGraph)
      Sub = Id;
  ASSERT_NE(Sub, InvalidId);
  std::string Out = S.run("expand " + std::to_string(Sub));
  EXPECT_NE(Out.find("expanded; callee detail begins"), std::string::npos);
  EXPECT_NE(S.run("expand " + std::to_string(Sub))
                .find("not an unexpanded sub-graph node"),
            std::string::npos)
      << "double expansion is rejected";
}

TEST(SessionTest, RacesCommand) {
  SessionFixture Racy(R"(
shared int sv;
chan done;
func w(int x) { sv = sv + x; send(done, 1); }
func main() {
  spawn w(1);
  spawn w(2);
  int a = recv(done);
  int b = recv(done);
}
)");
  EXPECT_NE(Racy.run("races").find("race on shared variable 'sv'"),
            std::string::npos);

  SessionFixture Clean("func main() { print(1); }");
  EXPECT_NE(Clean.run("races").find("race-free"), std::string::npos);
}

TEST(SessionTest, RestoreShowsGlobals) {
  SessionFixture S(R"(
shared int total;
func add(int v) { total = total + v; }
func main() {
  add(10);
  add(32);
  print(total);
}
)");
  EXPECT_NE(S.run("restore 0 1").find("total = 10"), std::string::npos);
  EXPECT_NE(S.run("restore 0 2").find("total = 42"), std::string::npos);
  EXPECT_NE(S.run("restore 0 99").find("no such interval"),
            std::string::npos);
}

TEST(SessionTest, WhatIfCommand) {
  SessionFixture S("func main() {\n"
                   "  int x = 10;\n"
                   "  if (x > 5) print(111);\n"
                   "  else print(222);\n"
                   "}");
  std::string Out = S.run("whatif 0 0 1 x 0");
  EXPECT_NE(Out.find("222"), std::string::npos);
  EXPECT_NE(S.run("whatif 0 0 1 nosuchvar 0").find("usage:"),
            std::string::npos);
}

TEST(SessionTest, ListShowsSource) {
  SessionFixture S("shared int sv;\nfunc main() { sv = 3; print(sv); }");
  std::string Out = S.run("list");
  EXPECT_NE(Out.find("shared int sv;"), std::string::npos);
  EXPECT_NE(Out.find("func main()"), std::string::npos);
}

TEST(SessionTest, DotCommands) {
  SessionFixture S("func main() { int a = 1; print(a); }");
  S.run("where 0");
  EXPECT_NE(S.run("graphdot").find("digraph"), std::string::npos);
  EXPECT_NE(S.run("pardot").find("digraph"), std::string::npos);
}

TEST(SessionTest, FailureSessionWalksToTheBug) {
  // The paper's end-to-end story: failure → flowback → bug.
  SessionFixture S("func main() {\n"
                   "  int d = 4;\n"
                   "  int z = d - 4;\n" // the bug: z becomes 0
                   "  print(d / z);\n"  // the failure
                   "}",
                   1, /*ExpectCompleted=*/false);
  std::string Where = S.run("where 0");
  EXPECT_NE(Where.find("print(d / z)"), std::string::npos);
  // The focused node's dependence list already names both sources — the
  // faulty assignment among them, with the erroneous value visible one
  // `node` hop away.
  EXPECT_NE(Where.find("int z = d - 4"), std::string::npos)
      << "the dependence list names the faulty assignment";
  std::string Back = S.run("back");
  EXPECT_NE(Back.find("int d = 4"), std::string::npos)
      << "back follows the first data dependence (the divisor's left arm)";
}

} // namespace
