//===- tests/parser_test.cpp - Parser tests -------------------------------===//
//
// Part of PPD test suite: structure of parsed programs, statement table
// invariants, error recovery, and parse/print round-trip stability.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace ppd;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = Parser::parse(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  return P;
}

bool parseFails(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = Parser::parse(Source, Diags);
  return !P && Diags.hasErrors();
}

TEST(ParserTest, TopLevelDecls) {
  auto P = parseOk("shared int sv = 3;\n"
                   "int priv;\n"
                   "shared int arr[10];\n"
                   "sem mutex = 1;\n"
                   "chan c[4];\n"
                   "chan r;\n"
                   "func main() { }\n");
  ASSERT_EQ(P->Globals.size(), 3u);
  EXPECT_TRUE(P->Globals[0].Shared);
  EXPECT_EQ(P->Globals[0].Init, 3);
  EXPECT_FALSE(P->Globals[1].Shared);
  EXPECT_EQ(P->Globals[2].ArraySize, 10);
  ASSERT_EQ(P->Sems.size(), 1u);
  EXPECT_EQ(P->Sems[0].Init, 1);
  ASSERT_EQ(P->Chans.size(), 2u);
  EXPECT_EQ(P->Chans[0].Capacity, 4);
  EXPECT_EQ(P->Chans[1].Capacity, 0);
  ASSERT_EQ(P->Funcs.size(), 1u);
}

TEST(ParserTest, NegativeGlobalInitializer) {
  auto P = parseOk("int g = -5; func main() { }");
  EXPECT_EQ(P->Globals[0].Init, -5);
}

TEST(ParserTest, FunctionParams) {
  auto P = parseOk("func f(int a, int b) { return a + b; } func main() { }");
  ASSERT_EQ(P->Funcs[0]->Params.size(), 2u);
  EXPECT_EQ(P->Funcs[0]->Params[0].Name, "a");
  EXPECT_EQ(P->Funcs[0]->Params[1].Name, "b");
  EXPECT_EQ(P->Funcs[0]->Index, 0u);
  EXPECT_EQ(P->Funcs[1]->Index, 1u);
}

TEST(ParserTest, StatementKinds) {
  auto P = parseOk(R"(
sem s; chan c;
func f(int x) { return x; }
func main() {
  int i = 0;
  int a[4];
  a[i] = 3;
  i = f(i) + 1;
  if (i > 0) print(i); else i = 0;
  while (i < 10) i = i + 1;
  for (i = 0; i < 4; i = i + 1) a[i] = i;
  P(s);
  V(s);
  send(c, i);
  i = recv(c);
  spawn f(1);
  f(2);
  i = input();
}
)");
  const BlockStmt *Body = P->Funcs[1]->Body.get();
  std::vector<StmtKind> Kinds;
  for (const StmtPtr &S : Body->Body)
    Kinds.push_back(S->getKind());
  EXPECT_EQ(Kinds,
            (std::vector<StmtKind>{
                StmtKind::VarDecl, StmtKind::VarDecl, StmtKind::Assign,
                StmtKind::Assign, StmtKind::If, StmtKind::While, StmtKind::For,
                StmtKind::P, StmtKind::V, StmtKind::Send, StmtKind::Assign,
                StmtKind::Spawn, StmtKind::Expr, StmtKind::Assign}));
}

TEST(ParserTest, StatementTableIsDenseAndConsistent) {
  auto P = parseOk(R"(
func main() {
  int i = 0;
  if (i > 0) { i = 1; } else { i = 2; }
  while (i < 5) i = i + 1;
}
)");
  ASSERT_GT(P->numStmts(), 0u);
  for (StmtId Id = 0; Id != P->numStmts(); ++Id) {
    ASSERT_NE(P->stmt(Id), nullptr);
    EXPECT_EQ(P->stmt(Id)->Id, Id);
  }
}

TEST(ParserTest, PredicatesRegisteredBeforeChildren) {
  auto P = parseOk("func main() { int i = 0; if (i) i = 1; while (i) i = 2; }");
  for (StmtId Id = 0; Id != P->numStmts(); ++Id) {
    const Stmt *S = P->stmt(Id);
    if (const auto *I = dyn_cast<IfStmt>(S)) {
      EXPECT_LT(S->Id, I->Then->Id);
    }
    if (const auto *W = dyn_cast<WhileStmt>(S)) {
      EXPECT_LT(S->Id, W->Body->Id);
    }
  }
}

TEST(ParserTest, ExpressionPrecedence) {
  auto P = parseOk("func main() { int x = 1 + 2 * 3 - 4 / 2; }");
  const auto *Decl = cast<VarDeclStmt>(P->Funcs[0]->Body->Body[0].get());
  AstPrinter Pr;
  EXPECT_EQ(Pr.print(*Decl->Init), "(1 + (2 * 3)) - (4 / 2)");
}

TEST(ParserTest, LogicalOperatorsPrecedence) {
  auto P = parseOk("func main() { int x = 1 < 2 && 3 == 3 || !(4 > 5); }");
  const auto *Decl = cast<VarDeclStmt>(P->Funcs[0]->Body->Body[0].get());
  AstPrinter Pr;
  EXPECT_EQ(Pr.print(*Decl->Init), "((1 < 2) && (3 == 3)) || !(4 > 5)");
}

TEST(ParserTest, UnaryChain) {
  auto P = parseOk("func main() { int x = --1; int y = !!0; }");
  (void)P;
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_TRUE(parseFails("func main() { int ; }"));
  EXPECT_TRUE(parseFails("func main() { x = ; }"));
  EXPECT_TRUE(parseFails("func main() { if i > 0 x = 1; }"));
  EXPECT_TRUE(parseFails("func () { }"));
  EXPECT_TRUE(parseFails("func main() { P(); }"));
  EXPECT_TRUE(parseFails("int a[0]; func main() { }"));
  EXPECT_TRUE(parseFails("func main() { for (int i = 0; i < 3; i = i + 1) "
                          "print(i); }"))
      << "declarations in for initializers are rejected";
}

TEST(ParserTest, ErrorRecoveryReportsMultipleErrors) {
  DiagnosticEngine Diags;
  Parser::parse("func main() { x = ; y = ; }", Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(ParserTest, RoundTripStable) {
  const char *Source = R"(shared int sv;
sem m = 1;
chan c;
func worker(int id)
{
  int i = 0;
  while (i < 10)
  {
    P(m);
    sv = sv + id;
    V(m);
    i = i + 1;
  }
}
func main()
{
  spawn worker(1);
  spawn worker(2);
  print(sv);
}
)";
  DiagnosticEngine Diags;
  auto P1 = Parser::parse(Source, Diags);
  ASSERT_TRUE(P1 != nullptr) << Diags.str();
  AstPrinter Pr;
  std::string Printed1 = Pr.print(*P1);
  auto P2 = Parser::parse(Printed1, Diags);
  ASSERT_TRUE(P2 != nullptr) << Diags.str();
  std::string Printed2 = Pr.print(*P2);
  EXPECT_EQ(Printed1, Printed2) << "pretty-printing must be a fixpoint";
}

// Malformed-input robustness: token streams violating the lexer's usual
// guarantees (hand-built, truncated) must fail with ordinary diagnostics —
// never crash or read out of bounds, even in release builds.
TEST(ParserTest, EmptyTokenVectorParsesAsEmptyProgram) {
  DiagnosticEngine Diags;
  Parser P({}, Diags);
  auto Prog = P.parseProgram();
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  EXPECT_TRUE(Prog->Globals.empty());
  EXPECT_TRUE(Prog->Funcs.empty());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(ParserTest, NonEofTerminatedTokenVectorIsDiagnosed) {
  std::vector<Token> Tokens(1);
  Tokens[0].Kind = TokenKind::Identifier;
  Tokens[0].Text = "stray";
  DiagnosticEngine Diags;
  Parser P(std::move(Tokens), Diags);
  auto Prog = P.parseProgram();
  EXPECT_TRUE(Prog == nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, NonEofTerminatedDeclSequenceIsRecovered) {
  // A plausible but unterminated stream: `func main ( ) {` — the parser
  // must synthesize Eof, diagnose the missing body, and return cleanly.
  std::vector<Token> Tokens(5);
  Tokens[0].Kind = TokenKind::KwFunc;
  Tokens[1].Kind = TokenKind::Identifier;
  Tokens[1].Text = "main";
  Tokens[2].Kind = TokenKind::LParen;
  Tokens[3].Kind = TokenKind::RParen;
  Tokens[4].Kind = TokenKind::LBrace;
  DiagnosticEngine Diags;
  Parser P(std::move(Tokens), Diags);
  auto Prog = P.parseProgram();
  EXPECT_TRUE(Prog == nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, EveryTruncationOfAValidProgramFailsCleanly) {
  const std::string Full = "shared int g[4];\n"
                           "sem lock = 1;\n"
                           "chan c[2];\n"
                           "func worker(int n) {\n"
                           "  P(lock);\n"
                           "  g[n % 4] = g[n % 4] + 1;\n"
                           "  V(lock);\n"
                           "  send(c, n * 2);\n"
                           "}\n"
                           "func main() {\n"
                           "  spawn worker(3);\n"
                           "  int v = recv(c);\n"
                           "  if (v > 0 && g[3] != v) { print(v); }\n"
                           "  else { print(-v); }\n"
                           "}\n";
  for (size_t Len = 0; Len != Full.size(); ++Len) {
    DiagnosticEngine Diags;
    auto Prog = Parser::parse(Full.substr(0, Len), Diags);
    // Either outcome is acceptable (a prefix can be a complete program);
    // a null result must come with diagnostics, never silently.
    if (!Prog)
      EXPECT_TRUE(Diags.hasErrors()) << "prefix length " << Len;
  }
}

// Round-trip property over a family of generated programs.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  int N = GetParam();
  std::string Source = "shared int g;\nfunc main() {\n";
  for (int I = 0; I != N; ++I) {
    std::string V = "v" + std::to_string(I);
    Source += "  int " + V + " = " + std::to_string(I) + ";\n";
    Source += "  if (" + V + " % 2 == 0) g = g + " + V + ";\n";
    Source += "  else g = g - " + V + ";\n";
  }
  Source += "  print(g);\n}\n";

  DiagnosticEngine Diags;
  auto P1 = Parser::parse(Source, Diags);
  ASSERT_TRUE(P1 != nullptr) << Diags.str();
  AstPrinter Pr;
  std::string Printed1 = Pr.print(*P1);
  auto P2 = Parser::parse(Printed1, Diags);
  ASSERT_TRUE(P2 != nullptr) << Diags.str();
  EXPECT_EQ(Printed1, Pr.print(*P2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundTripTest,
                         ::testing::Values(1, 3, 8, 20, 50));

} // namespace
