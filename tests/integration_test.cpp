//===- tests/integration_test.cpp - Classic concurrency scenarios ---------===//
//
// Part of PPD test suite. Realistic multi-process programs — the kind the
// paper's introduction motivates — each checked end to end: correct
// output across schedules, race certification (Def 6.4), full replay
// fidelity, and a flowback query.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/Replay.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

struct Scenario {
  const char *Name;
  const char *Source;
  std::vector<int64_t> ExpectedOutput;
  bool ExpectRaceFree;
};

const Scenario Scenarios[] = {
    {"banking",
     R"(
shared int balance = 100;
sem lock = 1;
sem settled;
func transfer(int amount, int times) {
  int i = 0;
  for (i = 0; i < times; i = i + 1) {
    P(lock);
    balance = balance + amount;
    V(lock);
  }
  V(settled);
}
func main() {
  spawn transfer(7, 10);
  spawn transfer(-3, 10);
  P(settled);
  P(settled);
  print(balance);
}
)",
     {140},
     true},

    {"barrier",
     R"(
shared int phase1[3];
shared int result;
sem arrived;
sem release;
chan done;
func worker(int id) {
  phase1[id] = (id + 1) * 10;   // distinct slots: no conflict
  V(arrived);
  P(release);
  send(done, id);
}
func main() {
  spawn worker(0);
  spawn worker(1);
  spawn worker(2);
  P(arrived);
  P(arrived);
  P(arrived);
  result = phase1[0] + phase1[1] + phase1[2];
  V(release);
  V(release);
  V(release);
  int i = 0;
  for (i = 0; i < 3; i = i + 1) { int d = recv(done); }
  print(result);
}
)",
     {60},
     // Workers write distinct elements of one shared array concurrently;
     // race READ/WRITE sets are per-variable (array granularity, the
     // conservative §7-style choice), so this reports benign conflicts.
     false},

    {"readers_writers",
     R"(
shared int data;
shared int readcount;
sem mutex = 1;
sem wrt = 1;
chan results[8];
func reader(int id) {
  P(mutex);
  readcount = readcount + 1;
  if (readcount == 1) P(wrt);
  V(mutex);
  int seen = data;
  P(mutex);
  readcount = readcount - 1;
  if (readcount == 0) V(wrt);
  V(mutex);
  send(results, seen);
}
func writer(int value) {
  P(wrt);
  data = value;
  V(wrt);
  send(results, 0 - 1);
}
func main() {
  spawn writer(5);
  spawn reader(1);
  spawn reader(2);
  int i = 0;
  int acc = 0;
  for (i = 0; i < 3; i = i + 1) {
    int r = recv(results);
    if (r >= 0) acc = acc + 1;
  }
  print(acc);
}
)",
     {2},
     true},

    {"token_ring",
     R"(
chan ring0;
chan ring1;
chan ring2;
func stage1() {
  int t = recv(ring0);
  send(ring1, t + 1);
}
func stage2() {
  int t = recv(ring1);
  send(ring2, t * 2);
}
func main() {
  spawn stage1();
  spawn stage2();
  send(ring0, 10);
  print(recv(ring2));
}
)",
     {22},
     true},

    {"map_reduce",
     R"(
shared int partial[4];
sem done;
func mapper(int id, int lo, int hi) {
  int i = 0;
  int sum = 0;
  for (i = lo; i < hi; i = i + 1) sum = sum + i * i;
  partial[id] = sum;
  V(done);
}
func main() {
  spawn mapper(0, 0, 25);
  spawn mapper(1, 25, 50);
  spawn mapper(2, 50, 75);
  spawn mapper(3, 75, 100);
  int i = 0;
  for (i = 0; i < 4; i = i + 1) P(done);
  int total = 0;
  for (i = 0; i < 4; i = i + 1) total = total + partial[i];
  print(total);
}
)",
     // sum of squares 0..99 = 99*100*199/6 = 328350
     {328350},
     // The four mappers write distinct elements of one array; PPD's race
     // sets are per-variable (array granularity, the documented §7-style
     // conservative choice), so this reports benign conflicts.
     false},
};

class IntegrationTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(IntegrationTest, ScenarioBehavesAcrossSchedules) {
  const Scenario &S = Scenarios[std::get<0>(GetParam())];
  uint64_t Seed = std::get<1>(GetParam());
  SCOPED_TRACE(S.Name);

  auto R = runProgram(S.Source, Seed);
  ASSERT_EQ(R.PrintedValues, S.ExpectedOutput) << "seed " << Seed;

  // Replay fidelity for every completed interval of every process.
  LogIndex Index(R.Log);
  ReplayEngine Engine(*R.Prog);
  for (uint32_t Pid = 0; Pid != R.Log.Procs.size(); ++Pid)
    for (const LogInterval &Interval : Index.intervals(Pid)) {
      if (Interval.PostlogRecord == InvalidId)
        continue;
      ReplayResult Res = Engine.replay(R.Log, Pid, Interval);
      ASSERT_TRUE(Res.Ok)
          << S.Name << " pid " << Pid << ": " << Res.Error;
      EXPECT_TRUE(Res.PostlogMismatches.empty())
          << S.Name << " pid " << Pid << " interval " << Interval.Index;
    }

  // Race certification.
  PpdController Controller(*R.Prog, std::move(R.Log));
  auto Races = Controller.detectRaces();
  EXPECT_EQ(Races.raceFree(), S.ExpectRaceFree) << S.Name;

  // A flowback query from the final print terminates and yields sources.
  DynNodeId Last = Controller.startAtLastEvent(0);
  ASSERT_NE(Last, InvalidId);
  EXPECT_FALSE(Controller.dependencesOf(Last).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(uint64_t(1), uint64_t(17),
                                         uint64_t(911))),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>> &Info) {
      return std::string(Scenarios[std::get<0>(Info.param)].Name) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
