//===- tests/cfg_test.cpp - CFG and dominator tests -----------------------===//
//
// Part of PPD test suite.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Returns the Cfg node of the \p Index'th statement (in statement-table
/// order) of function \p Name whose kind matches \p Kind.
CfgNodeId nthNodeOfKind(const Checked &C, const Cfg &G, StmtKind Kind,
                        unsigned Index = 0) {
  unsigned Seen = 0;
  for (StmtId Id = 0; Id != C.Prog->numStmts(); ++Id) {
    const Stmt *S = C.Prog->stmt(Id);
    if (S->getKind() != Kind || G.nodeOf(Id) == InvalidId)
      continue;
    if (Seen++ == Index)
      return G.nodeOf(Id);
  }
  ADD_FAILURE() << "no such node";
  return InvalidId;
}

TEST(CfgTest, StraightLine) {
  auto C = check("func main() { int a = 1; int b = 2; print(a + b); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  // ENTRY, EXIT, 3 statements.
  EXPECT_EQ(G.size(), 5u);
  // ENTRY has one successor; chain reaches EXIT.
  CfgNodeId Cur = Cfg::EntryId;
  for (int Steps = 0; Steps != 4; ++Steps) {
    ASSERT_EQ(G.node(Cur).Succs.size(), 1u);
    Cur = G.node(Cur).Succs[0].Node;
  }
  EXPECT_EQ(Cur, Cfg::ExitId);
}

TEST(CfgTest, IfElseDiamond) {
  auto C = check(
      "func main() { int x = input(); if (x > 0) x = 1; else x = 2; "
      "print(x); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  CfgNodeId If = nthNodeOfKind(C, G, StmtKind::If);
  ASSERT_EQ(G.node(If).Succs.size(), 2u);
  int Labels = 0;
  for (const CfgSucc &S : G.node(If).Succs)
    Labels += S.Label;
  EXPECT_EQ(Labels, 1) << "one true and one false successor";
  CfgNodeId Print = nthNodeOfKind(C, G, StmtKind::Print);
  EXPECT_EQ(G.node(Print).Preds.size(), 2u) << "join point";
}

TEST(CfgTest, IfWithoutElseFallsThrough) {
  auto C = check("func main() { int x = 1; if (x) x = 2; print(x); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  CfgNodeId If = nthNodeOfKind(C, G, StmtKind::If);
  CfgNodeId Print = nthNodeOfKind(C, G, StmtKind::Print);
  bool FalseEdgeToPrint = false;
  for (const CfgSucc &S : G.node(If).Succs)
    if (S.Label == 0 && S.Node == Print)
      FalseEdgeToPrint = true;
  EXPECT_TRUE(FalseEdgeToPrint);
}

TEST(CfgTest, WhileLoopBackEdge) {
  auto C = check("func main() { int i = 0; while (i < 3) i = i + 1; }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  CfgNodeId While = nthNodeOfKind(C, G, StmtKind::While);
  CfgNodeId Body = nthNodeOfKind(C, G, StmtKind::Assign, 0);
  ASSERT_EQ(G.node(Body).Succs.size(), 1u);
  EXPECT_EQ(G.node(Body).Succs[0].Node, While) << "back edge to condition";
  EXPECT_EQ(G.node(While).Preds.size(), 2u);
}

TEST(CfgTest, ForLoopStructure) {
  auto C = check(
      "func main() { int i = 0; for (i = 0; i < 3; i = i + 1) print(i); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  CfgNodeId For = nthNodeOfKind(C, G, StmtKind::For);
  CfgNodeId Print = nthNodeOfKind(C, G, StmtKind::Print);
  // for-cond true edge goes to the body.
  bool TrueToBody = false;
  for (const CfgSucc &S : G.node(For).Succs)
    if (S.Label == 1 && S.Node == Print)
      TrueToBody = true;
  EXPECT_TRUE(TrueToBody);
  // print -> step -> cond.
  ASSERT_EQ(G.node(Print).Succs.size(), 1u);
  CfgNodeId Step = G.node(Print).Succs[0].Node;
  ASSERT_EQ(G.node(Step).Succs.size(), 1u);
  EXPECT_EQ(G.node(Step).Succs[0].Node, For);
}

TEST(CfgTest, ReturnGoesToExitAndTailUnreachable) {
  auto C = check("func f() { return 1; } func main() { f(); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  CfgNodeId Ret = nthNodeOfKind(C, G, StmtKind::Return);
  ASSERT_EQ(G.node(Ret).Succs.size(), 1u);
  EXPECT_EQ(G.node(Ret).Succs[0].Node, Cfg::ExitId);
}

TEST(CfgTest, EarlyReturnLeavesRestUnreachable) {
  auto C = check("func main() { return; print(1); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  CfgNodeId Print = nthNodeOfKind(C, G, StmtKind::Print);
  EXPECT_TRUE(G.node(Print).Preds.empty());
}

TEST(CfgTest, RpoCoversAllNodesOnce) {
  auto C = check(R"(
func main() {
  int i = 0;
  while (i < 10) {
    if (i % 2 == 0) print(i);
    i = i + 1;
  }
  return;
}
)");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  const auto &Rpo = G.reversePostOrder();
  EXPECT_EQ(Rpo.size(), G.size());
  std::vector<bool> Seen(G.size(), false);
  for (CfgNodeId Id : Rpo) {
    EXPECT_FALSE(Seen[Id]);
    Seen[Id] = true;
  }
  EXPECT_EQ(Rpo[0], Cfg::EntryId);
}

//===----------------------------------------------------------------------===//
// Dominators
//===----------------------------------------------------------------------===//

TEST(DomTest, DiamondDominance) {
  auto C = check(
      "func main() { int x = input(); if (x) x = 1; else x = 2; print(x); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  DomTree Dom(G, /*Post=*/false);
  CfgNodeId If = nthNodeOfKind(C, G, StmtKind::If);
  CfgNodeId Then = nthNodeOfKind(C, G, StmtKind::Assign, 0);
  CfgNodeId Else = nthNodeOfKind(C, G, StmtKind::Assign, 1);
  CfgNodeId Print = nthNodeOfKind(C, G, StmtKind::Print);

  EXPECT_TRUE(Dom.dominates(If, Then));
  EXPECT_TRUE(Dom.dominates(If, Else));
  EXPECT_TRUE(Dom.dominates(If, Print));
  EXPECT_FALSE(Dom.dominates(Then, Print));
  EXPECT_EQ(Dom.idom(Print), If);
  EXPECT_TRUE(Dom.dominates(Cfg::EntryId, Cfg::ExitId));
  EXPECT_EQ(Dom.idom(Cfg::EntryId), InvalidId);
}

TEST(DomTest, PostDominance) {
  auto C = check(
      "func main() { int x = input(); if (x) x = 1; else x = 2; print(x); }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  DomTree PostDom(G, /*Post=*/true);
  CfgNodeId If = nthNodeOfKind(C, G, StmtKind::If);
  CfgNodeId Then = nthNodeOfKind(C, G, StmtKind::Assign, 0);
  CfgNodeId Print = nthNodeOfKind(C, G, StmtKind::Print);

  EXPECT_TRUE(PostDom.dominates(Print, If));
  EXPECT_TRUE(PostDom.dominates(Print, Then));
  EXPECT_FALSE(PostDom.dominates(Then, If))
      << "the then-arm does not postdominate the branch";
  EXPECT_EQ(PostDom.idom(If), Print);
  EXPECT_EQ(PostDom.root(), Cfg::ExitId);
}

TEST(DomTest, LoopConditionPostdominatesBody) {
  auto C = check("func main() { int i = 0; while (i < 3) i = i + 1; }");
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  DomTree PostDom(G, /*Post=*/true);
  CfgNodeId While = nthNodeOfKind(C, G, StmtKind::While);
  CfgNodeId Body = nthNodeOfKind(C, G, StmtKind::Assign, 0);
  EXPECT_TRUE(PostDom.dominates(While, Body));
  EXPECT_FALSE(PostDom.dominates(Body, While));
}

// Property: on arbitrary structured programs, idom(n) strictly dominates n
// and every node (reachable) is dominated by ENTRY.
class DomPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DomPropertyTest, IdomInvariants) {
  // Generate a nest of ifs/whiles of the given depth.
  int Depth = GetParam();
  std::string Source = "func main() { int x = input();\n";
  for (int I = 0; I != Depth; ++I)
    Source += (I % 2 == 0) ? "if (x > " + std::to_string(I) + ") {\n"
                           : "while (x < " + std::to_string(100 + I) + ") {\n";
  Source += "x = x + 1;\n";
  for (int I = 0; I != Depth; ++I) {
    if (Depth % 2 == 1 && I == 0)
      Source += "x = x * 2;\n";
    Source += "}\n";
  }
  Source += "print(x); }\n";

  auto C = check(Source);
  ASSERT_TRUE(C.Symbols);
  Cfg G(*C.Prog, *C.Prog->Funcs[0]);
  DomTree Dom(G, /*Post=*/false);
  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    if (Node == Cfg::EntryId || Dom.level(Node) == InvalidId)
      continue;
    CfgNodeId Idom = Dom.idom(Node);
    ASSERT_NE(Idom, InvalidId);
    EXPECT_TRUE(Dom.dominates(Idom, Node));
    EXPECT_NE(Idom, Node);
    EXPECT_TRUE(Dom.dominates(Cfg::EntryId, Node));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DomPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

} // namespace
