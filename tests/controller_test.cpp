//===- tests/controller_test.cpp - PPD Controller integration -------------===//
//
// Part of PPD test suite: flowback analysis end to end (Fig 4.1),
// incremental tracing behaviour, cross-process dependence resolution
// (§6.3), sub-graph expansion, what-if, restoration, deadlock analysis.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Controller.h"
#include "core/DeadlockAnalyzer.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

/// The paper's Fig 4.1 program fragment, completed into a runnable PPL
/// program. SubD(a, b, a+b+c) with d = -16 drives the else branch; s6 is
/// `a = a + sq`.
const char *Fig41Program = R"(
func SubD(int p1, int p2, int p3) {
  return p1 * p2 - p3;
}
func main() {
  int a = 2;
  int b = 3;
  int c = 17;
  int d = SubD(a, b, a + b + c);
  int sq = 0;
  if (d > 0)
    sq = sqrt(d);
  else
    sq = sqrt(-d);
  a = a + sq;
  print(a);
}
)";

/// Walks one data/cross-data dependence step backwards from \p Node,
/// returning the source labelled with variable \p Name (or InvalidId).
DynNodeId dataSource(PpdController &C, DynNodeId Node,
                     const std::string &Name) {
  for (const DynEdge &E : C.dependencesOf(Node)) {
    if (E.Kind != DynEdgeKind::Data && E.Kind != DynEdgeKind::CrossData)
      continue;
    if (E.Var != InvalidId &&
        C.program().Symbols->var(E.Var).Name == Name)
      return E.From;
  }
  return InvalidId;
}

TEST(ControllerTest, Fig41FlowbackChain) {
  auto R = runProgram(Fig41Program);
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{6}));

  PpdController C(*R.Prog, std::move(R.Log));
  DynNodeId Last = C.startAtLastEvent(0);
  ASSERT_NE(Last, InvalidId);
  // The session starts at print(a).
  EXPECT_NE(C.graph().node(Last).Label.find("print"), std::string::npos);

  // print(a) ← a = a + sq (s6).
  DynNodeId S6 = dataSource(C, Last, "a");
  ASSERT_NE(S6, InvalidId);
  EXPECT_NE(C.graph().node(S6).Label.find("a = a + sq"),
            std::string::npos);
  EXPECT_TRUE(C.graph().node(S6).HasValue);
  EXPECT_EQ(C.graph().node(S6).Value, 6);

  // s6 reads sq, defined by the else branch sq = sqrt(-d).
  DynNodeId Sq = dataSource(C, S6, "sq");
  ASSERT_NE(Sq, InvalidId);
  EXPECT_NE(C.graph().node(Sq).Label.find("sq = sqrt(-d)"),
            std::string::npos);
  EXPECT_EQ(C.graph().node(Sq).Value, 4);

  // sq = sqrt(-d) is control dependent on the false arm of `if (d > 0)`.
  bool SawControl = false;
  for (const DynEdge &E : C.dependencesOf(Sq)) {
    if (E.Kind != DynEdgeKind::Control)
      continue;
    SawControl = true;
    EXPECT_EQ(E.Branch, 0) << "false arm";
    const DynNode &Predicate = C.graph().node(E.From);
    EXPECT_NE(Predicate.Label.find("if (d > 0)"), std::string::npos);
    EXPECT_TRUE(Predicate.HasValue);
    EXPECT_EQ(Predicate.Value, 0) << "the predicate evaluated false";
  }
  EXPECT_TRUE(SawControl);

  // sq's defining statement reads d, produced by the SubD call statement.
  DynNodeId D = dataSource(C, Sq, "d");
  ASSERT_NE(D, InvalidId);
  EXPECT_NE(C.graph().node(D).Label.find("SubD"), std::string::npos);
  EXPECT_EQ(C.graph().node(D).Value, -16);
}

TEST(ControllerTest, Fig41SubGraphExpansion) {
  auto R = runProgram(Fig41Program);
  PpdController C(*R.Prog, std::move(R.Log));
  C.startAtLastEvent(0);

  // Find the unexpanded SubD sub-graph node.
  DynNodeId SubGraph = InvalidId;
  for (uint32_t Id = 0; Id != C.graph().numNodes(); ++Id) {
    const DynNode &N = C.graph().node(Id);
    if (N.Kind == DynNodeKind::SubGraph && !N.Expanded)
      SubGraph = Id;
  }
  ASSERT_NE(SubGraph, InvalidId);
  EXPECT_TRUE(C.graph().node(SubGraph).HasValue);
  EXPECT_EQ(C.graph().node(SubGraph).Value, -16);

  // Fig 4.1's %1/%2/%3 parameter nodes feed the sub-graph node; %3 is the
  // fictional node for the expression argument a+b+c.
  unsigned ParamCount = 0;
  for (uint32_t Id = 0; Id != C.graph().numNodes(); ++Id) {
    const DynNode &N = C.graph().node(Id);
    if (N.Kind == DynNodeKind::Param && N.Parent == SubGraph) {
      ++ParamCount;
      if (N.Label == "%3") {
        EXPECT_EQ(N.Value, 22) << "a+b+c = 2+3+17";
      }
    }
  }
  EXPECT_EQ(ParamCount, 3u);

  // Expanding replays SubD's nested interval (incremental tracing!).
  uint64_t ReplaysBefore = C.stats().Replays;
  DynNodeId CalleeEntry = C.expandCall(SubGraph);
  ASSERT_NE(CalleeEntry, InvalidId);
  EXPECT_EQ(C.stats().Replays, ReplaysBefore + 1);
  EXPECT_TRUE(C.graph().node(SubGraph).Expanded);
  EXPECT_NE(C.graph().node(CalleeEntry).Label.find("SubD"),
            std::string::npos);

  // The callee fragment contains `return p1 * p2 - p3`.
  bool SawReturn = false;
  for (uint32_t Id = 0; Id != C.graph().numNodes(); ++Id)
    if (C.graph().node(Id).Label.find("return (p1 * p2) - p3") !=
        std::string::npos)
      SawReturn = true;
  EXPECT_TRUE(SawReturn);
}

TEST(ControllerTest, IncrementalTracingOnlyReplaysWhatIsAsked) {
  auto R = runProgram(R"(
func unrelated(int n) {
  int i = 0;
  int s = 0;
  for (i = 0; i < n; i = i + 1) s = s + i;
  return s;
}
func main() {
  int waste = unrelated(100);
  int x = 5;
  print(x + waste);
}
)");
  PpdController C(*R.Prog, std::move(R.Log));
  C.startAtLastEvent(0);
  // Only main's interval was replayed; `unrelated` (a nested interval with
  // hundreds of events) stays untraced until the user expands it.
  EXPECT_EQ(C.stats().Replays, 1u);
  EXPECT_LT(C.stats().EventsTraced, 10u);
}

TEST(ControllerTest, FailureSessionStartsAtFailingStatement) {
  auto R = runProgram(R"(
func main() {
  int d = 3;
  int z = d - 3;
  print(d / z);
}
)",
                      1, {}, {}, /*ExpectCompleted=*/false);
  ASSERT_EQ(int(R.Result.Outcome), int(RunResult::Status::Failed));
  StmtId FailStmt = R.Result.Error.Stmt;

  PpdController C(*R.Prog, std::move(R.Log));
  DynNodeId Root = C.startAtFailure(0);
  ASSERT_NE(Root, InvalidId);
  EXPECT_EQ(C.graph().node(Root).Stmt, FailStmt);

  // Flowback: the failing print reads z, defined by `int z = d - 3`.
  DynNodeId Z = dataSource(C, Root, "z");
  ASSERT_NE(Z, InvalidId);
  EXPECT_EQ(C.graph().node(Z).Value, 0);
}

TEST(ControllerTest, CrossProcessResolution) {
  auto R = runProgram(R"(
shared int sv;
sem ready;
func consumer() {
  P(ready);
  print(sv + 1);
}
func main() {
  spawn consumer();
  sv = 41;
  V(ready);
}
)");
  ASSERT_EQ(R.PrintedValues, (std::vector<int64_t>{42}));

  PpdController C(*R.Prog, std::move(R.Log));
  DynNodeId Print = C.startAtLastEvent(1); // consumer's print
  ASSERT_NE(Print, InvalidId);

  // Resolving the read of sv must pull in main's interval and produce a
  // cross-process edge from `sv = 41`.
  DynNodeId Producer = dataSource(C, Print, "sv");
  ASSERT_NE(Producer, InvalidId);
  const DynNode &P = C.graph().node(Producer);
  EXPECT_EQ(P.Pid, 0u) << "the producer lives in main's process";
  EXPECT_NE(P.Label.find("sv = 41"), std::string::npos);
  EXPECT_GE(C.stats().Replays, 2u);
}

TEST(ControllerTest, RacyReadYieldsRaceNode) {
  auto R = runProgram(R"(
shared int sv;
chan done;
func reader() { send(done, sv); }
func writer() { sv = 9; send(done, 1); }
func main() {
  spawn reader();
  spawn writer();
  int a = recv(done);
  int b = recv(done);
}
)");
  PpdController C(*R.Prog, std::move(R.Log));
  DynNodeId Send = C.startAtLastEvent(1); // reader's send
  ASSERT_NE(Send, InvalidId);
  C.dependencesOf(Send);
  // The read of sv is involved in a race: a RACE node must appear.
  bool SawRace = false;
  for (uint32_t Id = 0; Id != C.graph().numNodes(); ++Id)
    if (C.graph().node(Id).Label.find("RACE on sv") != std::string::npos)
      SawRace = true;
  EXPECT_TRUE(SawRace);
  EXPECT_FALSE(C.detectRaces().raceFree());
}

TEST(ControllerTest, SyncEdgesSplicedBetweenTracedFragments) {
  auto R = runProgram(R"(
chan c;
func sender() { send(c, 5); }
func main() {
  spawn sender();
  print(recv(c));
}
)");
  PpdController C(*R.Prog, std::move(R.Log));
  C.startAtLastEvent(0);
  C.startAtLastEvent(1);
  bool SawSyncEdge = false;
  for (const DynEdge &E : C.graph().edges())
    SawSyncEdge |= E.Kind == DynEdgeKind::Sync;
  EXPECT_TRUE(SawSyncEdge);
}

TEST(ControllerTest, WhatIfFlipsBranch) {
  auto R = runProgram(R"(
func main() {
  int x = 10;
  if (x > 5) print(111);
  else print(222);
}
)");
  PpdController C(*R.Prog, std::move(R.Log));
  VarId X = varNamed(*R.Prog->Symbols, "x");
  ReplayResult Res = C.whatIf(0, 0, {{1, X, -1, 0}});
  ASSERT_FALSE(Res.Output.empty());
  EXPECT_EQ(Res.Output[0].Value, 222);
}

TEST(ControllerTest, RestorationAccumulatesPostlogs) {
  auto R = runProgram(R"(
shared int sv;
func setter(int v) { sv = v; }
func main() {
  setter(10);
  setter(20);
  setter(30);
  print(sv);
}
)");
  PpdController C(*R.Prog, std::move(R.Log));
  const LogIndex &Index = C.logIndex();
  // Intervals: main(0), setter(1), setter(2), setter(3).
  ASSERT_EQ(Index.intervals(0).size(), 4u);
  VarId Sv = varNamed(*R.Prog->Symbols, "sv");
  uint32_t Offset = R.Prog->Symbols->var(Sv).Offset;
  EXPECT_EQ(C.restoreGlobals(0, 1).Shared[Offset], 10);
  EXPECT_EQ(C.restoreGlobals(0, 2).Shared[Offset], 20);
  EXPECT_EQ(C.restoreGlobals(0, 3).Shared[Offset], 30);
}

TEST(ControllerTest, DeadlockAnalysisFindsCycle) {
  auto R = runProgram(R"(
sem a = 1;
sem b = 1;
chan go;
func left() { P(a); int x = recv(go); P(b); V(b); V(a); }
func main() {
  spawn left();
  P(b);
  send(go, 1);
  P(a);
  V(a);
  V(b);
}
)",
                      1, {}, {}, /*ExpectCompleted=*/false);
  ASSERT_EQ(int(R.Result.Outcome), int(RunResult::Status::Deadlock));

  DeadlockAnalyzer Analyzer(*R.Prog, R.Log);
  DeadlockReport Report = Analyzer.analyze(R.Result.Deadlock);
  ASSERT_EQ(Report.Waits.size(), 2u);
  EXPECT_TRUE(Report.hasCycle());
  EXPECT_EQ(Report.Cycle.size(), 2u);
  std::string Text = Report.str(*R.Prog->Ast);
  EXPECT_NE(Text.find("wait-for cycle"), std::string::npos);
  EXPECT_NE(Text.find("P(a)"), std::string::npos);
}

TEST(ControllerTest, DotOutputRendersFig41Styles) {
  auto R = runProgram(Fig41Program);
  PpdController C(*R.Prog, std::move(R.Log));
  DynNodeId Last = C.startAtLastEvent(0);
  C.resolveAllCrossReads();
  std::string Dot = C.graph().dot(*R.Prog->Ast, {Last});
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos)
      << "sub-graph node present";
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos)
      << "control dependence edges dashed";
  EXPECT_NE(Dot.find("%3"), std::string::npos) << "fictional param node";
}

TEST(ControllerTest, DebuggingFromSavedLogFile) {
  // Execution phase and debugging phase in separate "invocations": the
  // log round-trips through a file.
  std::string Path = ::testing::TempDir() + "/ppd_session_log.bin";
  auto R = runProgram(Fig41Program);
  ASSERT_TRUE(R.Log.save(Path));

  ExecutionLog Loaded;
  ASSERT_TRUE(ExecutionLog::load(Path, Loaded));
  PpdController C(*R.Prog, std::move(Loaded));
  DynNodeId Last = C.startAtLastEvent(0);
  ASSERT_NE(Last, InvalidId);
  EXPECT_NE(dataSource(C, Last, "a"), InvalidId);
  std::remove(Path.c_str());
}

// Property: flowing back from the final print of a sequential compute
// chain reaches the initial constant through the expected number of hops.
class FlowbackDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowbackDepthTest, ChainDepthMatches) {
  int N = GetParam();
  std::string Source = "func main() {\n  int v0 = 1;\n";
  for (int I = 1; I <= N; ++I)
    Source += "  int v" + std::to_string(I) + " = v" +
              std::to_string(I - 1) + " + " + std::to_string(I) + ";\n";
  Source += "  print(v" + std::to_string(N) + ");\n}\n";

  auto R = runProgram(Source);
  PpdController C(*R.Prog, std::move(R.Log));
  DynNodeId Node = C.startAtLastEvent(0);
  ASSERT_NE(Node, InvalidId);

  int Hops = 0;
  for (;;) {
    DynNodeId Prev = InvalidId;
    for (const DynEdge &E : C.dependencesOf(Node))
      if (E.Kind == DynEdgeKind::Data &&
          C.graph().node(E.From).Kind == DynNodeKind::Singular)
        Prev = E.From;
    if (Prev == InvalidId)
      break;
    Node = Prev;
    ++Hops;
  }
  EXPECT_EQ(Hops, N + 1) << "print → vN → ... → v0";
  EXPECT_EQ(C.graph().node(Node).Value, 1);
}

INSTANTIATE_TEST_SUITE_P(Depths, FlowbackDepthTest,
                         ::testing::Values(1, 2, 5, 10, 25));

} // namespace
