//===- tests/pdg_test.cpp - Dependence graph tests ------------------------===//
//
// Part of PPD test suite: control dependence, static PDG, simplified
// static graph and synchronization units (paper Fig 5.3).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pdg/SimplifiedStaticGraph.h"
#include "pdg/StaticPdg.h"
#include "sema/CallGraph.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

struct PdgFixture {
  Checked C;
  std::unique_ptr<CallGraph> CG;
  ModRefResult<BitVarSet> MR;
  std::unique_ptr<Cfg> G;
  std::unique_ptr<StaticPdg> Pdg;

  explicit PdgFixture(const std::string &Source, unsigned FuncIndex = 0)
      : C(check(Source)) {
    CG = std::make_unique<CallGraph>(*C.Prog);
    MR = computeModRef<BitVarSet>(*C.Prog, *C.Symbols, *CG);
    G = std::make_unique<Cfg>(*C.Prog, *C.Prog->Funcs[FuncIndex]);
    Pdg = std::make_unique<StaticPdg>(*C.Prog, *C.Symbols, *G, MR);
  }

  CfgNodeId nodeAtLine(unsigned Line) const {
    for (StmtId Id = 0; Id != C.Prog->numStmts(); ++Id)
      if (C.Prog->stmt(Id)->getLoc().Line == Line &&
          G->nodeOf(Id) != InvalidId)
        return G->nodeOf(Id);
    ADD_FAILURE() << "no node at line " << Line;
    return InvalidId;
  }

  bool hasControlParent(CfgNodeId Node, CfgNodeId Branch, int Label) const {
    for (const ControlDep &Dep : Pdg->controlParents(Node))
      if (Dep.Branch == Branch && (Label == -2 || Dep.Label == Label))
        return true;
    return false;
  }

  bool hasDataDep(CfgNodeId From, CfgNodeId To, const char *VarName) const {
    VarId Var = varNamed(*C.Symbols, VarName);
    for (const DataDep &Dep : Pdg->dataDepsOf(To))
      if (Dep.From == From && Dep.Var == Var)
        return true;
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Control dependence
//===----------------------------------------------------------------------===//

TEST(ControlDepTest, IfArmsDependOnPredicate) {
  PdgFixture F("func main() {\n"
               "  int x = input();\n" // 2
               "  if (x > 0)\n"       // 3
               "    x = 1;\n"         // 4
               "  else\n"
               "    x = 2;\n"         // 6
               "  print(x);\n"        // 7
               "}\n");
  CfgNodeId If = F.nodeAtLine(3);
  EXPECT_TRUE(F.hasControlParent(F.nodeAtLine(4), If, 1));
  EXPECT_TRUE(F.hasControlParent(F.nodeAtLine(6), If, 0));
  EXPECT_FALSE(F.hasControlParent(F.nodeAtLine(7), If, -2))
      << "the join point is not control dependent on the branch";
  EXPECT_TRUE(F.hasControlParent(F.nodeAtLine(7), Cfg::EntryId, -2));
  EXPECT_TRUE(F.hasControlParent(If, Cfg::EntryId, -2));
}

TEST(ControlDepTest, NestedIf) {
  PdgFixture F("func main() {\n"
               "  int x = input();\n" // 2
               "  if (x > 0) {\n"     // 3
               "    if (x > 10)\n"    // 4
               "      x = 10;\n"      // 5
               "  }\n"
               "  print(x);\n"        // 7
               "}\n");
  EXPECT_TRUE(F.hasControlParent(F.nodeAtLine(4), F.nodeAtLine(3), 1));
  EXPECT_TRUE(F.hasControlParent(F.nodeAtLine(5), F.nodeAtLine(4), 1));
  EXPECT_FALSE(F.hasControlParent(F.nodeAtLine(5), F.nodeAtLine(3), -2))
      << "control dependence is on the immediate governing predicate only";
}

TEST(ControlDepTest, WhileBodyAndSelfDependence) {
  PdgFixture F("func main() {\n"
               "  int i = 0;\n"     // 2
               "  while (i < 3)\n"  // 3
               "    i = i + 1;\n"   // 4
               "  print(i);\n"      // 5
               "}\n");
  CfgNodeId While = F.nodeAtLine(3);
  EXPECT_TRUE(F.hasControlParent(F.nodeAtLine(4), While, 1));
  EXPECT_TRUE(F.hasControlParent(While, While, 1))
      << "whether the condition runs again depends on itself";
  EXPECT_FALSE(F.hasControlParent(F.nodeAtLine(5), While, -2));
}

//===----------------------------------------------------------------------===//
// Static PDG data dependences
//===----------------------------------------------------------------------===//

TEST(StaticPdgTest, StraightLineFlow) {
  PdgFixture F("func main() {\n"
               "  int a = 1;\n"     // 2
               "  int b = a + 1;\n" // 3
               "  print(b);\n"      // 4
               "}\n");
  EXPECT_TRUE(F.hasDataDep(F.nodeAtLine(2), F.nodeAtLine(3), "a"));
  EXPECT_TRUE(F.hasDataDep(F.nodeAtLine(3), F.nodeAtLine(4), "b"));
  EXPECT_FALSE(F.hasDataDep(F.nodeAtLine(2), F.nodeAtLine(4), "a"));
}

TEST(StaticPdgTest, BothBranchDefsReachUse) {
  PdgFixture F("func main() {\n"
               "  int x = input();\n" // 2
               "  if (x > 0)\n"       // 3
               "    x = 1;\n"         // 4
               "  else\n"
               "    x = 2;\n"         // 6
               "  print(x);\n"        // 7
               "}\n");
  EXPECT_TRUE(F.hasDataDep(F.nodeAtLine(4), F.nodeAtLine(7), "x"));
  EXPECT_TRUE(F.hasDataDep(F.nodeAtLine(6), F.nodeAtLine(7), "x"));
  EXPECT_FALSE(F.hasDataDep(F.nodeAtLine(2), F.nodeAtLine(7), "x"))
      << "the input def is strongly killed on both paths";
  // The predicate reads the input value.
  EXPECT_TRUE(F.hasDataDep(F.nodeAtLine(2), F.nodeAtLine(3), "x"));
}

TEST(StaticPdgTest, CallRefEdgeThroughGlobal) {
  PdgFixture F("shared int sv;\n"
               "func reader() { return sv; }\n"
               "func main() {\n"
               "  sv = 3;\n"            // 4
               "  print(reader());\n"   // 5
               "}\n",
               /*FuncIndex=*/1);
  EXPECT_TRUE(F.hasDataDep(F.nodeAtLine(4), F.nodeAtLine(5), "sv"))
      << "REF(reader) makes the call read sv";
}

TEST(StaticPdgTest, ParamReadsDependOnEntry) {
  PdgFixture F("func f(int p) {\n"
               "  return p + 1;\n" // 2
               "}\n"
               "func main() { print(f(1)); }\n");
  EXPECT_TRUE(F.hasDataDep(Cfg::EntryId, F.nodeAtLine(2), "p"));
}

TEST(StaticPdgTest, DotContainsLegendStyles) {
  PdgFixture F("func main() { int a = 1; if (a) print(a); }");
  std::string Dot = F.Pdg->dot(*F.C.Prog);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos)
      << "control dependences drawn dashed (Fig 4.1 legend)";
  EXPECT_NE(Dot.find("label=\"a\""), std::string::npos)
      << "data edges labelled with the variable";
}

//===----------------------------------------------------------------------===//
// Simplified static graph and synchronization units (Fig 5.3)
//===----------------------------------------------------------------------===//

/// The paper's Fig 5.3 subroutine foo3, transcribed to PPL. The statement
/// `SV = a + b + SV` sits behind the p/q branches exactly as in the figure.
constexpr const char *Foo3 = R"(
shared int SV;
func foo3(int a, int b, int p, int q) {
  int r = 0;
  if (p == 1) {
    if (q == 1) {
      r = 1;
    } else {
      r = 2;
    }
  } else {
    SV = a + b + SV;
    r = 3;
  }
  return r;
}
func main() { print(foo3(1, 2, 3, 4)); }
)";

struct SimpFixture {
  Checked C;
  std::unique_ptr<CallGraph> CG;
  ModRefResult<BitVarSet> MR;
  std::unique_ptr<Cfg> G;
  std::unique_ptr<SimplifiedStaticGraph> Simp;

  explicit SimpFixture(const std::string &Source, unsigned FuncIndex = 0,
                       bool CalleesLogged = true)
      : C(check(Source)) {
    CG = std::make_unique<CallGraph>(*C.Prog);
    MR = computeModRef<BitVarSet>(*C.Prog, *C.Symbols, *CG);
    G = std::make_unique<Cfg>(*C.Prog, *C.Prog->Funcs[FuncIndex]);
    Simp = std::make_unique<SimplifiedStaticGraph>(
        *C.Prog, *C.Symbols, *G, MR,
        [CalleesLogged](const FuncDecl &) { return CalleesLogged; });
  }
};

TEST(SimplifiedGraphTest, Foo3HasSingleUnitCoveringAll) {
  SimpFixture F(Foo3);
  // foo3 contains no synchronization operations: only ENTRY starts a unit.
  ASSERT_EQ(F.Simp->units().size(), 1u);
  const SyncUnit &U = F.Simp->units()[0];
  EXPECT_EQ(U.Start, Cfg::EntryId);
  // The one unit's shared-read set is {SV}, because SV may be read on the
  // p!=1 path — exactly the additional prelog Fig 5.3 motivates.
  ASSERT_EQ(U.SharedReads.size(), 1u);
  EXPECT_EQ(F.C.Symbols->var(U.SharedReads[0]).Name, "SV");
}

TEST(SimplifiedGraphTest, SemaphoresSplitUnits) {
  SimpFixture F(R"(
shared int SV;
sem m = 1;
func f() {
  int x = 0;
  P(m);
  x = SV;
  V(m);
  return x;
}
func main() { print(f()); }
)");
  // Units start at ENTRY, P, and V.
  ASSERT_EQ(F.Simp->units().size(), 3u);
  const SyncUnit *EntryUnit = F.Simp->unitStartingAt(Cfg::EntryId);
  ASSERT_NE(EntryUnit, nullptr);
  EXPECT_TRUE(EntryUnit->SharedReads.empty())
      << "SV is only read after the P; the entry unit logs nothing";

  // Exactly one unit reads SV: the one starting at P(m).
  unsigned UnitsReadingSv = 0;
  for (const SyncUnit &U : F.Simp->units())
    if (!U.SharedReads.empty())
      ++UnitsReadingSv;
  EXPECT_EQ(UnitsReadingSv, 1u);
}

TEST(SimplifiedGraphTest, UnitsMayOverlap) {
  // Two paths join: the statement after the join is reachable from both
  // boundary nodes without crossing another boundary — so it belongs to
  // two units, like e8/e9 in Fig 5.3.
  SimpFixture F(R"(
shared int SV;
sem m;
func f(int p) {
  if (p == 1) {
    P(m);
  } else {
    V(m);
  }
  SV = SV + 1;
}
func main() { f(1); }
)");
  VarId Sv = varNamed(*F.C.Symbols, "SV");
  unsigned UnitsWithSv = 0;
  for (const SyncUnit &U : F.Simp->units())
    for (VarId V : U.SharedReads)
      if (V == Sv)
        ++UnitsWithSv;
  EXPECT_GE(UnitsWithSv, 2u) << "the SV read is in both the P-unit and the "
                                "V-unit (overlap like Fig 5.3)";
}

TEST(SimplifiedGraphTest, LoggedCallIsBoundaryUnloggedIsNot) {
  const char *Source = R"(
shared int SV;
func callee() { return SV; }
func f() {
  int x = callee();
  return x + SV;
}
func main() { print(f()); }
)";
  {
    SimpFixture F(Source, /*FuncIndex=*/1, /*CalleesLogged=*/true);
    EXPECT_EQ(F.Simp->units().size(), 2u)
        << "the logged call starts a second unit";
  }
  {
    SimpFixture F(Source, /*FuncIndex=*/1, /*CalleesLogged=*/false);
    ASSERT_EQ(F.Simp->units().size(), 1u);
    // The inlined callee's shared REF is inherited into the entry unit.
    ASSERT_EQ(F.Simp->units()[0].SharedReads.size(), 1u);
    EXPECT_EQ(F.C.Symbols->var(F.Simp->units()[0].SharedReads[0]).Name, "SV");
  }
}

TEST(SimplifiedGraphTest, SendRecvSpawnAreBoundaries) {
  SimpFixture F(R"(
chan c;
func w(int x) { send(c, x); }
func main() {
  spawn w(1);
  int v = recv(c);
  print(v);
}
)",
                /*FuncIndex=*/1);
  // main: ENTRY, spawn, recv-assign are unit starts.
  EXPECT_EQ(F.Simp->units().size(), 3u);
}

TEST(SimplifiedGraphTest, DotHasFig53Legend) {
  SimpFixture F(Foo3);
  std::string Dot = F.Simp->dot(*F.C.Prog);
  EXPECT_NE(Dot.find("shape=circle"), std::string::npos)
      << "branching nodes drawn as circles";
  EXPECT_NE(Dot.find("shape=box"), std::string::npos)
      << "non-branching nodes drawn as boxes";
  EXPECT_NE(Dot.find("ENTRY"), std::string::npos);
  EXPECT_NE(Dot.find("EXIT"), std::string::npos);
}

} // namespace
