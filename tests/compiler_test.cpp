//===- tests/compiler_test.cpp - Preparatory-phase tests ------------------===//
//
// Part of PPD test suite: e-block partitioning, USED/DEFINED metadata,
// dual-artifact code generation, unit instrumentation.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "bytecode/Chunk.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

/// Counts instructions of kind \p Opcode in \p C.
unsigned countOps(const Chunk &C, Op Opcode) {
  unsigned N = 0;
  for (uint32_t Pc = 0; Pc != C.size(); ++Pc)
    N += C.at(Pc).Opcode == Opcode;
  return N;
}

TEST(CompilerTest, DefaultPlanOneEBlockPerFunction) {
  auto Prog = compileOk(R"(
func helper(int x) { return x + 1; }
func main() { print(helper(1)); }
)");
  EXPECT_EQ(Prog->EBlocks.size(), 2u);
  EXPECT_TRUE(Prog->Funcs[0].Logged);
  EXPECT_TRUE(Prog->Funcs[1].Logged);
  for (const CompiledFunction &F : Prog->Funcs) {
    EXPECT_EQ(countOps(F.Object, Op::Prelog), 1u) << F.Name;
    EXPECT_GE(countOps(F.Object, Op::Postlog), 1u) << F.Name;
    EXPECT_EQ(countOps(F.Object, Op::TraceStmt), 0u)
        << "object code carries no trace instrumentation";
    EXPECT_GT(countOps(F.Emu, Op::TraceStmt), 0u)
        << "emulation package traces statements";
  }
}

TEST(CompilerTest, LeafInheritanceUnlogsSmallLeaves) {
  CompileOptions Opts;
  Opts.EBlocks.LeafInheritance = true;
  Opts.EBlocks.LeafMaxStmts = 10;
  auto Prog = compileOk(R"(
func tiny(int x) { return x * 2; }
func big(int x) {
  int a = x; int b = a; int c = b; int d = c; int e = d;
  int f = e; int g = f; int h = g; int i = h; int j = i;
  int k = j;
  return k;
}
func spawned() { }
func main() { spawn spawned(); print(big(tiny(3))); }
)",
                        Opts);
  const FuncDecl *Tiny = Prog->Ast->findFunc("tiny");
  const FuncDecl *Big = Prog->Ast->findFunc("big");
  const FuncDecl *Spawned = Prog->Ast->findFunc("spawned");
  EXPECT_FALSE(Prog->Plan.isLogged(*Tiny)) << "small leaf is inherited";
  EXPECT_TRUE(Prog->Plan.isLogged(*Big)) << "large leaf stays logged";
  EXPECT_TRUE(Prog->Plan.isLogged(*Spawned))
      << "spawn targets are process roots and must stay logged";
  EXPECT_EQ(countOps(Prog->Funcs[Tiny->Index].Object, Op::Prelog), 0u);
}

TEST(CompilerTest, LoopBlocksSplitFunctionIntoRegions) {
  CompileOptions Opts;
  Opts.EBlocks.LoopBlocks = true;
  auto Prog = compileOk(R"(
func main() {
  int i = 0;
  int sum = 0;
  while (i < 10) { sum = sum + i; i = i + 1; }
  print(sum);
}
)",
                        Opts);
  // Regions: [decls] [loop] [print + implicit return].
  ASSERT_EQ(Prog->EBlocks.size(), 3u);
  EXPECT_EQ(int(Prog->EBlocks[0].Kind), int(EBlockKind::FunctionSegment));
  EXPECT_EQ(int(Prog->EBlocks[1].Kind), int(EBlockKind::Loop));
  EXPECT_EQ(int(Prog->EBlocks[2].Kind), int(EBlockKind::FunctionSegment));
  EXPECT_EQ(countOps(Prog->Funcs[0].Object, Op::Prelog), 3u);
}

TEST(CompilerTest, TrailingLoopGetsEmptyFinalSegment) {
  CompileOptions Opts;
  Opts.EBlocks.LoopBlocks = true;
  auto Prog = compileOk(R"(
func main() {
  int i = 0;
  while (i < 3) i = i + 1;
}
)",
                        Opts);
  // [decl] [loop] [empty trailing segment owning the implicit return].
  ASSERT_EQ(Prog->EBlocks.size(), 3u);
  EXPECT_EQ(int(Prog->EBlocks.back().Kind),
            int(EBlockKind::FunctionSegment));
  EXPECT_TRUE(Prog->EBlocks.back().Used.empty());
}

TEST(CompilerTest, SplitLargeFunctions) {
  CompileOptions Opts;
  Opts.EBlocks.SplitLargeFunctions = true;
  Opts.EBlocks.MaxSegmentStmts = 3;
  std::string Source = "func main() {\n";
  for (int I = 0; I != 10; ++I)
    Source += "  print(" + std::to_string(I) + ");\n";
  Source += "}\n";
  auto Prog = compileOk(Source, Opts);
  EXPECT_EQ(Prog->EBlocks.size(), 4u) << "10 statements in chunks of 3";
}

TEST(CompilerTest, EBlockUsedDefinedMetadata) {
  auto Prog = compileOk(R"(
shared int sv;
func f(int p) {
  int l = p + sv;
  sv = l;
  return l;
}
func main() { print(f(1)); }
)");
  const FuncDecl *F = Prog->Ast->findFunc("f");
  const EBlockInfo *FBlock = nullptr;
  for (const EBlockInfo &E : Prog->EBlocks)
    if (E.Func == F->Index)
      FBlock = &E;
  ASSERT_NE(FBlock, nullptr);

  auto Has = [&](const std::vector<VarId> &Vars, const char *Name) {
    for (VarId V : Vars)
      if (Prog->Symbols->var(V).Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has(FBlock->Used, "p"));
  EXPECT_TRUE(Has(FBlock->Used, "sv"));
  EXPECT_FALSE(Has(FBlock->Used, "l")) << "l is written before read";
  EXPECT_TRUE(Has(FBlock->Defined, "l"));
  EXPECT_TRUE(Has(FBlock->Defined, "sv"));
  EXPECT_FALSE(Has(FBlock->Defined, "p"));
}

TEST(CompilerTest, UnitLogPlacedAfterSyncOps) {
  auto Prog = compileOk(R"(
shared int sv;
sem m = 1;
func main() {
  P(m);
  sv = sv + 1;
  V(m);
  print(sv);
}
)");
  const Chunk &Object = Prog->Funcs[0].Object;
  // The unit starting at P reads sv → one UnitLog after the P. The unit
  // starting at V also reads sv (the print) → one UnitLog after V.
  EXPECT_EQ(countOps(Object, Op::UnitLog), 2u);
  // Emu carries the same UnitLog markers for replay restoration.
  EXPECT_EQ(countOps(Prog->Funcs[0].Emu, Op::UnitLog), 2u);
}

TEST(CompilerTest, NoSharedReadsNoUnitLog) {
  // Paper §5.5: units without shared accesses generate no log entry.
  auto Prog = compileOk(R"(
sem m = 1;
func main() {
  int x = 1;
  P(m);
  x = x + 1;
  V(m);
  print(x);
}
)");
  EXPECT_EQ(countOps(Prog->Funcs[0].Object, Op::UnitLog), 0u);
}

TEST(CompilerTest, DisableInstrumentationOption) {
  CompileOptions Opts;
  Opts.Instrument = false;
  auto Prog = compileOk("shared int s;\nfunc main() { s = 1; print(s); }",
                        Opts);
  const Chunk &Object = Prog->Funcs[0].Object;
  EXPECT_EQ(countOps(Object, Op::Prelog), 0u);
  EXPECT_EQ(countOps(Object, Op::Postlog), 0u);
  EXPECT_EQ(countOps(Object, Op::UnitLog), 0u);
}

TEST(CompilerTest, DisassemblerMentionsOpsAndStatements) {
  auto Prog = compileOk("func main() { int x = 1; print(x + 1); }");
  std::string Listing = Prog->Funcs[0].Object.disassemble("main");
  EXPECT_NE(Listing.find("== main =="), std::string::npos);
  EXPECT_NE(Listing.find("PushConst"), std::string::npos);
  EXPECT_NE(Listing.find("PrintVal"), std::string::npos);
  EXPECT_NE(Listing.find("; s"), std::string::npos);
}

TEST(CompilerTest, BothArtifactsBehaveIdentically) {
  // Running the emulation package in FullTrace mode must produce the same
  // output as the object code: same codegen, different instrumentation.
  const char *Source = R"(
shared int sv;
func helper(int x) { sv = sv + x; return sv; }
func main() {
  int i = 0;
  for (i = 1; i <= 4; i = i + 1) print(helper(i));
}
)";
  auto Object = runProgram(Source, 9);
  MachineOptions MOpts;
  MOpts.Mode = RunMode::FullTrace;
  auto Emu = runProgram(Source, 9, MOpts);
  EXPECT_EQ(Object.PrintedValues, Emu.PrintedValues);
}

TEST(CompilerTest, EmuEntryPcPointsAtPrelog) {
  auto Prog = compileOk("func main() { print(1); }");
  const EBlockInfo &E = Prog->EBlocks[0];
  EXPECT_EQ(Prog->Funcs[0].Emu.at(E.EmuEntryPc).Opcode, Op::Prelog);
  EXPECT_EQ(Prog->Funcs[0].Object.at(E.ObjectEntryPc).Opcode, Op::Prelog);
}

} // namespace
