//===- tests/sema_test.cpp - Semantic analysis tests ----------------------===//
//
// Part of PPD test suite: name resolution, storage layout, accesses,
// call graph, program database.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "sema/Accesses.h"
#include "sema/CallGraph.h"
#include "sema/ProgramDatabase.h"

#include <gtest/gtest.h>

using namespace ppd;
using namespace ppd::test;

namespace {

bool semaFails(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = Parser::parse(Source, Diags);
  if (!P)
    return false; // must be a *semantic* failure
  Sema S(*P, Diags);
  return S.run() == nullptr && Diags.hasErrors();
}

TEST(SemaTest, ResolvesKindsAndSharedIndices) {
  auto C = check("shared int s1; shared int s2; int p;\n"
                 "func f(int a) { int l = a; return l; }\n"
                 "func main() { }\n");
  const SymbolTable &Sym = *C.Symbols;
  EXPECT_EQ(Sym.var(varNamed(Sym, "s1")).Kind, VarKind::SharedGlobal);
  EXPECT_EQ(Sym.var(varNamed(Sym, "s2")).Kind, VarKind::SharedGlobal);
  EXPECT_EQ(Sym.var(varNamed(Sym, "p")).Kind, VarKind::PrivateGlobal);
  EXPECT_EQ(Sym.var(varNamed(Sym, "a")).Kind, VarKind::Param);
  EXPECT_EQ(Sym.var(varNamed(Sym, "l")).Kind, VarKind::Local);
  EXPECT_EQ(Sym.NumSharedVars, 2u);
  EXPECT_EQ(Sym.var(varNamed(Sym, "s1")).SharedIndex, 0u);
  EXPECT_EQ(Sym.var(varNamed(Sym, "s2")).SharedIndex, 1u);
  EXPECT_EQ(Sym.var(varNamed(Sym, "p")).SharedIndex, InvalidId);
}

TEST(SemaTest, StorageLayout) {
  auto C = check("shared int s; shared int arr[5]; int p1; int p2;\n"
                 "func f(int a, int b) { int x; int y[3]; int z; }\n"
                 "func main() { }\n");
  const SymbolTable &Sym = *C.Symbols;
  EXPECT_EQ(Sym.SharedMemorySize, 6u); // s + arr[5]
  EXPECT_EQ(Sym.PrivateGlobalSize, 2u);
  EXPECT_EQ(Sym.var(varNamed(Sym, "arr")).Offset, 1u);
  EXPECT_EQ(Sym.var(varNamed(Sym, "p2")).Offset, 1u);
  const FrameInfo &Frame = Sym.frame(*C.Prog->Funcs[0]);
  EXPECT_EQ(Frame.FrameSize, 7u); // a b x y[3] z
  EXPECT_EQ(Sym.var(varNamed(Sym, "z")).Offset, 6u);
}

TEST(SemaTest, ScopingAndShadowing) {
  auto C = check("int g;\n"
                 "func main() { int x = g; { int g = 2; x = g; } x = g; }\n");
  // Two variables named g exist: the global and the block-local.
  EXPECT_EQ(C.Prog->numStmts() > 0, true);
  std::vector<VarId> Gs;
  for (const VarInfo &Info : C.Symbols->Vars)
    if (Info.Name == "g")
      Gs.push_back(Info.Id);
  ASSERT_EQ(Gs.size(), 2u);

  // The inner `x = g` must resolve to the local, the outer ones to the
  // global.
  const auto *MainBody = C.Prog->Funcs[0]->Body.get();
  const auto *InnerBlock = cast<BlockStmt>(MainBody->Body[1].get());
  const auto *InnerAssign = cast<AssignStmt>(InnerBlock->Body[1].get());
  const auto *InnerRef = cast<VarRefExpr>(InnerAssign->Value.get());
  EXPECT_EQ(C.Symbols->var(InnerRef->Var).Kind, VarKind::Local);
  const auto *OuterAssign = cast<AssignStmt>(MainBody->Body[2].get());
  const auto *OuterRef = cast<VarRefExpr>(OuterAssign->Value.get());
  EXPECT_EQ(C.Symbols->var(OuterRef->Var).Kind, VarKind::PrivateGlobal);
}

TEST(SemaTest, SemanticErrors) {
  EXPECT_TRUE(semaFails("func main() { x = 1; }"));
  EXPECT_TRUE(semaFails("func main() { int a[3]; a = 1; }"));
  EXPECT_TRUE(semaFails("func main() { int x; x[0] = 1; }"));
  EXPECT_TRUE(semaFails("func main() { int a[3]; int y = a; }"));
  EXPECT_TRUE(semaFails("func main() { P(s); }"));
  EXPECT_TRUE(semaFails("func main() { send(c, 1); }"));
  EXPECT_TRUE(semaFails("func main() { int y = recv(c); }"));
  EXPECT_TRUE(semaFails("func main() { f(1); }"));
  EXPECT_TRUE(semaFails("func f(int a) { } func main() { f(); }"));
  EXPECT_TRUE(semaFails("func f(int a) { } func main() { spawn f(); }"));
  EXPECT_TRUE(semaFails("func main() { int x; int x; }"));
  EXPECT_TRUE(semaFails("int g; int g; func main() { }"));
  EXPECT_TRUE(semaFails("sem s; chan s; func main() { }"));
  EXPECT_TRUE(semaFails("func f() { } func f() { } func main() { }"));
  EXPECT_TRUE(semaFails("func f() { }")) << "missing main";
  EXPECT_TRUE(semaFails("func main(int a) { }"));
  EXPECT_TRUE(semaFails("func main() { int x = sqrt(1, 2); }"));
  EXPECT_TRUE(semaFails("sem s; func main() { s = 3; }"))
      << "semaphores are not variables";
}

TEST(SemaTest, BuiltinsResolve) {
  auto C = check(
      "func main() { int x = sqrt(16) + abs(-3) + min(1, 2) + max(3, 4); }");
  const auto *Decl = cast<VarDeclStmt>(C.Prog->Funcs[0]->Body->Body[0].get());
  (void)Decl;
}

TEST(SemaTest, RedeclarationInNestedScopeAllowed) {
  auto C = check("func main() { int x; { int x; } }");
  (void)C;
}

//===----------------------------------------------------------------------===//
// Accesses
//===----------------------------------------------------------------------===//

TEST(AccessesTest, AssignReadsAndWrites) {
  auto C = check("int g;\nfunc main() { int x = 1; g = x + g; }");
  const auto *Assign = cast<AssignStmt>(C.Prog->Funcs[0]->Body->Body[1].get());
  StmtAccesses Acc = collectStmtAccesses(*Assign);
  VarId G = varNamed(*C.Symbols, "g");
  VarId X = varNamed(*C.Symbols, "x");
  EXPECT_EQ(Acc.Writes, (std::vector<VarId>{G}));
  ASSERT_EQ(Acc.Reads.size(), 2u);
  EXPECT_TRUE((Acc.Reads[0] == X && Acc.Reads[1] == G) ||
              (Acc.Reads[0] == G && Acc.Reads[1] == X));
}

TEST(AccessesTest, ArrayElementStoreIsWeakUpdate) {
  auto C = check("func main() { int a[4]; int i = 0; a[i] = 9; }");
  const auto *Assign = cast<AssignStmt>(C.Prog->Funcs[0]->Body->Body[2].get());
  StmtAccesses Acc = collectStmtAccesses(*Assign);
  VarId A = varNamed(*C.Symbols, "a");
  EXPECT_EQ(Acc.Writes, (std::vector<VarId>{A}));
  // Reads include the index variable and the array itself (weak update).
  EXPECT_NE(std::find(Acc.Reads.begin(), Acc.Reads.end(), A),
            Acc.Reads.end());
}

TEST(AccessesTest, ArrayDeclIsStrongWrite) {
  auto C = check("func main() { int a[4]; }");
  const auto *Decl = cast<VarDeclStmt>(C.Prog->Funcs[0]->Body->Body[0].get());
  StmtAccesses Acc = collectStmtAccesses(*Decl);
  EXPECT_TRUE(Acc.Reads.empty());
  EXPECT_EQ(Acc.Writes.size(), 1u);
}

TEST(AccessesTest, CallArgsReadCalleeRecorded) {
  auto C = check("func f(int a) { return a; }\n"
                 "func main() { int x = 1; int y = f(x + 2); }");
  const auto *Decl = cast<VarDeclStmt>(C.Prog->Funcs[1]->Body->Body[1].get());
  StmtAccesses Acc = collectStmtAccesses(*Decl);
  EXPECT_EQ(Acc.Reads, (std::vector<VarId>{varNamed(*C.Symbols, "x")}));
  ASSERT_EQ(Acc.Callees.size(), 1u);
  EXPECT_EQ(Acc.Callees[0]->Name, "f");
}

TEST(AccessesTest, SpawnArgsReadButTargetNotCallee) {
  auto C = check("func w(int a) { }\nfunc main() { int x = 1; spawn w(x); }");
  const auto *Spawn = cast<SpawnStmt>(C.Prog->Funcs[1]->Body->Body[1].get());
  StmtAccesses Acc = collectStmtAccesses(*Spawn);
  EXPECT_EQ(Acc.Reads, (std::vector<VarId>{varNamed(*C.Symbols, "x")}));
  EXPECT_TRUE(Acc.Callees.empty())
      << "spawned body runs in another process, not in this statement";
}

TEST(AccessesTest, ForEachStmtVisitsEverythingOnce) {
  auto C = check(R"(
func main() {
  int i = 0;
  for (i = 0; i < 3; i = i + 1) {
    if (i == 1) print(i);
    else print(0 - i);
  }
  while (i > 0) i = i - 1;
}
)");
  unsigned Count = 0;
  std::vector<bool> Seen(C.Prog->numStmts(), false);
  forEachStmt(*C.Prog->Funcs[0]->Body, [&](const Stmt &S) {
    ++Count;
    EXPECT_FALSE(Seen[S.Id]) << "statement visited twice";
    Seen[S.Id] = true;
  });
  EXPECT_EQ(Count, C.Prog->numStmts());
}

//===----------------------------------------------------------------------===//
// CallGraph
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, EdgesAndLeaves) {
  auto C = check(R"(
func leaf(int x) { return x * 2; }
func mid(int x) { return leaf(x) + leaf(x + 1); }
func main() { int r = mid(3); print(r); }
)");
  CallGraph CG(*C.Prog);
  const FuncDecl *Leaf = C.Prog->findFunc("leaf");
  const FuncDecl *Mid = C.Prog->findFunc("mid");
  const FuncDecl *Main = C.Prog->findFunc("main");
  EXPECT_TRUE(CG.isLeaf(*Leaf));
  EXPECT_FALSE(CG.isLeaf(*Mid));
  ASSERT_EQ(CG.callees(*Mid).size(), 1u);
  EXPECT_EQ(CG.callees(*Mid)[0], Leaf);
  ASSERT_EQ(CG.callers(*Leaf).size(), 1u);
  EXPECT_EQ(CG.callers(*Leaf)[0], Mid);
  EXPECT_FALSE(CG.isRecursive(*Leaf));
  EXPECT_FALSE(CG.isRecursive(*Main));
}

TEST(CallGraphTest, BottomUpOrder) {
  auto C = check(R"(
func a(int x) { return x; }
func b(int x) { return a(x); }
func c(int x) { return b(x); }
func main() { print(c(1)); }
)");
  CallGraph CG(*C.Prog);
  const auto &Order = CG.bottomUpOrder();
  auto Pos = [&](const char *Name) {
    for (size_t I = 0; I != Order.size(); ++I)
      if (Order[I]->Name == Name)
        return I;
    ADD_FAILURE() << Name << " not in order";
    return size_t(0);
  };
  EXPECT_LT(Pos("a"), Pos("b"));
  EXPECT_LT(Pos("b"), Pos("c"));
  EXPECT_LT(Pos("c"), Pos("main"));
}

TEST(CallGraphTest, RecursionDetected) {
  auto C = check(R"(
func fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
func even(int n) { if (n == 0) return 1; return odd(n - 1); }
func odd(int n) { if (n == 0) return 0; return even(n - 1); }
func main() { print(fact(5) + even(4)); }
)");
  CallGraph CG(*C.Prog);
  EXPECT_TRUE(CG.isRecursive(*C.Prog->findFunc("fact")));
  EXPECT_TRUE(CG.isRecursive(*C.Prog->findFunc("even")));
  EXPECT_TRUE(CG.isRecursive(*C.Prog->findFunc("odd")));
  EXPECT_FALSE(CG.isRecursive(*C.Prog->findFunc("main")));
  EXPECT_EQ(CG.sccId(*C.Prog->findFunc("even")),
            CG.sccId(*C.Prog->findFunc("odd")));
  EXPECT_NE(CG.sccId(*C.Prog->findFunc("even")),
            CG.sccId(*C.Prog->findFunc("fact")));
}

TEST(CallGraphTest, SpawnTargets) {
  auto C = check(R"(
func w1(int x) { }
func w2(int x) { }
func helper() { spawn w2(2); }
func main() { spawn w1(1); helper(); }
)");
  CallGraph CG(*C.Prog);
  const auto &Spawned = CG.spawnTargets();
  ASSERT_EQ(Spawned.size(), 2u);
  EXPECT_EQ(Spawned[0]->Name, "w1");
  EXPECT_EQ(Spawned[1]->Name, "w2");
}

//===----------------------------------------------------------------------===//
// ProgramDatabase
//===----------------------------------------------------------------------===//

TEST(ProgramDatabaseTest, DefsAndUses) {
  auto C = check("int g;\n"
                 "func main() {\n"
                 "  g = 1;\n"        // def of g (line 3)
                 "  int x = g + g;\n" // use of g, def of x (line 4)
                 "  print(x);\n"      // use of x (line 5)
                 "}\n");
  ProgramDatabase DB(*C.Prog, *C.Symbols);
  VarId G = varNamed(*C.Symbols, "g");
  VarId X = varNamed(*C.Symbols, "x");

  const VarSites &GS = DB.sites(G);
  ASSERT_EQ(GS.Defs.size(), 1u);
  EXPECT_EQ(C.Prog->stmt(GS.Defs[0])->getLoc().Line, 3u);
  ASSERT_EQ(GS.Uses.size(), 1u) << "double read in one statement dedups? no:"
                                   " both reads are the same statement";
  EXPECT_EQ(C.Prog->stmt(GS.Uses[0])->getLoc().Line, 4u);

  const VarSites &XS = DB.sites(X);
  ASSERT_EQ(XS.Defs.size(), 1u);
  ASSERT_EQ(XS.Uses.size(), 1u);
  EXPECT_EQ(C.Prog->stmt(XS.Uses[0])->getLoc().Line, 5u);
}

TEST(ProgramDatabaseTest, LookupByNameAndOwner) {
  auto C = check("int v;\nfunc f() { int v; v = 1; }\nfunc main() { v = 2; }");
  ProgramDatabase DB(*C.Prog, *C.Symbols);
  auto Vs = DB.lookup("v");
  EXPECT_EQ(Vs.size(), 2u);
  const auto *FAssign = C.Prog->Funcs[0]->Body->Body[1].get();
  EXPECT_EQ(DB.owningFunc(FAssign->Id), C.Prog->Funcs[0].get());
  std::string Dump = DB.dump(*C.Prog);
  EXPECT_NE(Dump.find("v (global)"), std::string::npos);
  EXPECT_NE(Dump.find("v (local of f)"), std::string::npos);
}

} // namespace
