//===- bench/bench_restoration.cpp - Experiment E7 ------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E7 exercises §5.7's state restoration: "we can restore the program state
// by using the postlogs from postlog(1) up to postlog(i)". The cost of
// restoring to interval i therefore grows with i (the prefix of postlogs
// scanned), and a what-if replay from the restored point costs one
// interval's re-execution — both measured here.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/Controller.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

std::string restorationWorkload(unsigned Calls) {
  return R"(
shared int state;
shared int history[16];
func mutate(int k) {
  state = (state * 31 + k) % 99991;
  history[k % 16] = state;
}
func main() {
  int i = 0;
  for (i = 0; i < )" +
         std::to_string(Calls) + R"(; i = i + 1) mutate(i);
  print(state);
}
)";
}

struct Session {
  std::unique_ptr<CompiledProgram> Prog;
  std::unique_ptr<PpdController> Controller;
};

Session prepare(unsigned Calls) {
  Session S;
  S.Prog = mustCompile(restorationWorkload(Calls));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*S.Prog, MOpts);
  M.run();
  S.Controller = std::make_unique<PpdController>(*S.Prog, M.takeLog());
  return S;
}

/// Restores to the interval given by the fraction range(1)/100 of the run.
void restoreAtFraction(benchmark::State &State) {
  auto S = prepare(unsigned(State.range(0)));
  const auto &Intervals = S.Controller->logIndex().intervals(0);
  uint32_t Target =
      uint32_t((Intervals.size() - 1) * uint64_t(State.range(1)) / 100);

  for (auto _ : State) {
    RestoredState Restored = S.Controller->restoreGlobals(0, Target);
    benchmark::DoNotOptimize(Restored.Shared.data());
  }
  State.counters["Intervals"] = double(Intervals.size());
  State.counters["TargetInterval"] = double(Target);
}

void whatIfReplay(benchmark::State &State) {
  auto S = prepare(unsigned(State.range(0)));
  const auto &Intervals = S.Controller->logIndex().intervals(0);
  uint32_t Target = uint32_t(Intervals.size() / 2);
  VarId StateVar = InvalidId;
  for (const VarInfo &Info : S.Prog->Symbols->Vars)
    if (Info.Name == "state")
      StateVar = Info.Id;

  // Vary the override value each iteration: what-if replays are memoized
  // by override fingerprint, and E7 measures the replay, not the cache.
  int64_t Tweak = 0;
  for (auto _ : State) {
    ReplayResult Res =
        S.Controller->whatIf(0, Target, {{0, StateVar, -1, 12345 + Tweak}});
    ++Tweak;
    benchmark::DoNotOptimize(Res.Instructions);
  }
}

} // namespace

// Args: {mutate calls, restore point as % of the run}.
BENCHMARK(restoreAtFraction)
    ->Args({200, 10})
    ->Args({200, 50})
    ->Args({200, 100})
    ->Args({2000, 10})
    ->Args({2000, 50})
    ->Args({2000, 100});
BENCHMARK(whatIfReplay)->Arg(200)->Arg(2000);

BENCHMARK_MAIN();
