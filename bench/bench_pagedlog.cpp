//===- bench/bench_pagedlog.cpp - Experiment E11 --------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E11 measures the cold-open promise of the paged log tier (DESIGN.md
// §12): the time from "the debugger is pointed at a log file" to "the
// first flowback query is answered". The paper's debugging phase begins
// with the program database and the log already on disk; what a user
// feels is exactly this open-to-first-query latency.
//
//   * `coldopen_whole`       — the pre-paging path: decode every record
//     of every process into memory, build the interval index from the
//     decoded records, then answer one query.
//   * `coldopen_pooled`      — PageStore::open (mmap + header walk),
//     skim-build the index from encoded bytes, then answer the query by
//     faulting in only the one section it touches.
//   * `coldopen_pooled_ppdb` — the same, but a warm `.ppdb` sidecar
//     replaces even the skim: open, validate the sidecar, adopt its
//     persisted index, fault in one section, answer.
//
// The first query (startAtLastEvent on the main process) replays one
// interval of one process, so the pooled rows decode one section out of
// Workers+1 — the whole-load row's decode cost is the overhead being
// deleted. PoolResidentBytes/PoolPeakBytes counters show the residency
// bound; process-wide peak RSS must be measured per-row in separate
// processes (see EXPERIMENTS.md E11 methodology).
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/Controller.h"
#include "log/BufferPool.h"
#include "log/PageStore.h"
#include "log/ProgramDb.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include <unistd.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

/// Process-wide peak resident set (VmHWM), in bytes. Meaningful only
/// when one row runs per process (`--benchmark_filter=coldopen_...`),
/// the E11 methodology — rows sharing a process see the max of all
/// earlier rows.
double peakRssBytes() {
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  long KiB = 0;
  while (std::fgets(Line, sizeof(Line), F))
    if (std::sscanf(Line, "VmHWM: %ld kB", &KiB) == 1)
      break;
  std::fclose(F);
  return double(KiB) * 1024.0;
}

/// Workers+1 processes, each with many sibling intervals: the log has
/// Workers+1 independent v2 sections, and a query on the main process
/// needs exactly one of them. Spawn statements are unrolled so every
/// worker is a distinct process section.
std::string pagedWorkload(unsigned Workers, unsigned UnitsPerWorker) {
  std::string Source = R"(
shared int acc;
sem done;
func unit(int k) {
  int i = 0;
  int s = 0;
  for (i = 0; i < 60; i = i + 1) s = (s + k * i) % 9973;
  return s;
}
func worker(int w) {
  int j = 0;
  int s = 0;
  for (j = 0; j < )" +
                       std::to_string(UnitsPerWorker) +
                       R"(; j = j + 1) s = s + unit(w * 1000 + j);
  acc = acc + s;
  V(done);
}
func main() {
)";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "  spawn worker(" + std::to_string(W) + ");\n";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "  P(done);\n";
  Source += "  print(acc);\n}\n";
  return Source;
}

/// One saved log per (Workers, Units) argument pair, shared by all three
/// rows so their open costs are over identical bytes. The `.ppdb` is
/// written once here; the ppdb row's timed region re-reads and
/// re-validates it every iteration (that *is* the warm-open cost).
struct ColdOpenWorld {
  std::unique_ptr<CompiledProgram> Prog;
  std::string LogPath;
  std::string DbPath;
  size_t FileBytes = 0;

  ColdOpenWorld(unsigned Workers, unsigned UnitsPerWorker) {
    Prog = mustCompile(pagedWorkload(Workers, UnitsPerWorker));
    MachineOptions MOpts;
    MOpts.Seed = 11;
    Machine M(*Prog, MOpts);
    M.run();
    ExecutionLog Log = M.takeLog();
    LogPath = "/tmp/ppd_bench_e11_" + std::to_string(::getpid()) + "_" +
              std::to_string(Workers) + ".log";
    if (!Log.save(LogPath, LogFormat::V2)) {
      std::fprintf(stderr, "E11: cannot save %s\n", LogPath.c_str());
      std::abort();
    }
    std::string Error;
    auto Store = PageStore::open(LogPath, &Error);
    if (!Store) {
      std::fprintf(stderr, "E11: %s\n", Error.c_str());
      std::abort();
    }
    FileBytes = Store->fileBytes();
    LogIndex Index(*Store);
    DbPath = programDbPathFor(LogPath);
    if (!writeProgramDb(DbPath, *Prog, *Store, Index)) {
      std::fprintf(stderr, "E11: cannot write %s\n", DbPath.c_str());
      std::abort();
    }
  }

  ~ColdOpenWorld() {
    std::remove(LogPath.c_str());
    std::remove(DbPath.c_str());
  }
};

void coldopen_whole(benchmark::State &State) {
  ColdOpenWorld W(unsigned(State.range(0)), unsigned(State.range(1)));
  for (auto _ : State) {
    ExecutionLog Log;
    if (!ExecutionLog::load(W.LogPath, Log))
      State.SkipWithError("load failed");
    PpdController Controller(*W.Prog, std::move(Log));
    benchmark::DoNotOptimize(Controller.startAtLastEvent(0));
  }
  State.counters["FileBytes"] = double(W.FileBytes);
  State.counters["PeakRSSBytes"] = peakRssBytes();
}

void coldopen_pooled(benchmark::State &State) {
  ColdOpenWorld W(unsigned(State.range(0)), unsigned(State.range(1)));
  BufferPoolStats Last;
  for (auto _ : State) {
    std::string Error;
    auto Store = PageStore::open(W.LogPath, &Error);
    if (!Store)
      State.SkipWithError(Error.c_str());
    auto Pool = std::make_shared<BufferPool>(size_t(256) << 20);
    PpdController Controller(*W.Prog, PagedLog{Store, Pool});
    benchmark::DoNotOptimize(Controller.startAtLastEvent(0));
    Last = Pool->stats();
  }
  State.counters["FileBytes"] = double(W.FileBytes);
  State.counters["PoolResidentBytes"] = double(Last.BytesResident);
  State.counters["PoolPeakBytes"] = double(Last.PeakBytes);
  State.counters["SectionsFaulted"] = double(Last.Insertions);
  State.counters["PeakRSSBytes"] = peakRssBytes();
}

void coldopen_pooled_ppdb(benchmark::State &State) {
  ColdOpenWorld W(unsigned(State.range(0)), unsigned(State.range(1)));
  BufferPoolStats Last;
  for (auto _ : State) {
    std::string Error;
    auto Store = PageStore::open(W.LogPath, &Error);
    if (!Store)
      State.SkipWithError(Error.c_str());
    std::shared_ptr<const LogIndex> Index;
    std::shared_ptr<const ParallelDynamicGraph> Graph;
    if (readProgramDb(W.DbPath, *W.Prog, *Store, Index, &Graph) !=
        ProgramDbStatus::Ok)
      State.SkipWithError("sidecar not warm");
    auto Pool = std::make_shared<BufferPool>(size_t(256) << 20);
    PpdControllerOptions COpts;
    COpts.AdoptedGraph = std::move(Graph);
    PpdController Controller(*W.Prog, PagedLog{Store, Pool},
                             std::move(Index), COpts);
    benchmark::DoNotOptimize(Controller.startAtLastEvent(0));
    Last = Pool->stats();
  }
  State.counters["FileBytes"] = double(W.FileBytes);
  State.counters["PoolResidentBytes"] = double(Last.BytesResident);
  State.counters["PoolPeakBytes"] = double(Last.PeakBytes);
  State.counters["SectionsFaulted"] = double(Last.Insertions);
  State.counters["PeakRSSBytes"] = peakRssBytes();
}

} // namespace

// Args: {Workers, UnitsPerWorker}. {8,64} is a mid-size log; {32,128} is
// the largest log any bench generates, the E11 headline row.
BENCHMARK(coldopen_whole)->Args({8, 64})->Args({32, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(coldopen_pooled)->Args({8, 64})->Args({32, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(coldopen_pooled_ppdb)->Args({8, 64})->Args({32, 128})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
