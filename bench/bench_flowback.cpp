//===- bench/bench_flowback.cpp - Experiment E8 ---------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E8 measures the debugging-phase promise of incremental tracing (§3.2.3,
// §5.3): answering a flowback query should cost time proportional to the
// log intervals the query touches, not to the whole execution.
//
//   * `incremental_session` — execution in Logging mode; the session
//     replays only the failure interval and walks five dependence steps.
//   * `fulltrace_session`   — Balzer's strawman: the execution itself runs
//     in FullTrace mode (every process traced), then the same five-step
//     walk is free of replays. The *session* is cheap but the execution
//     paid for everything; TotalEvents counts the events materialized.
//
// The program puts the bug at the end of a run with much unrelated work,
// the paper's motivating shape (§3.1: "the user needs traces for only
// those events that may have led to the detected error").
//
// The replay-service rows measure the trace-regeneration engine itself on
// a many-interval query (the transitive set of a deep flowback):
//
//   * `flowback_cold_serial`   — every interval replayed once, no cache,
//     no workers: the pre-service cost of a wide query.
//   * `flowback_cold_parallel` — the same misses fanned across N worker
//     threads (arg 1); log intervals are independent (§5.5), so this
//     scales with cores.
//   * `flowback_warm_cached`   — the same query against a warm cache:
//     every answer is a lookup. The cold/warm ratio is the price of a
//     repeat query, the paper's interactive-session common case.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/Controller.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

std::string buggyWorkload(unsigned UnrelatedWork) {
  return R"(
shared int noise;
func churn(int n) {
  int i = 0;
  for (i = 0; i < n; i = i + 1) noise = (noise + i) % 65521;
  return noise;
}
func main() {
  int w = churn()" +
         std::to_string(UnrelatedWork) + R"();
  int d = 4;
  int z = d - 4;
  print(w / z);    // divide by zero: the failure
}
)";
}

void walkBack(PpdController &Controller, DynNodeId Start, unsigned Steps) {
  DynNodeId Node = Start;
  for (unsigned I = 0; I != Steps && Node != InvalidId; ++I) {
    DynNodeId Next = InvalidId;
    for (const DynEdge &E : Controller.dependencesOf(Node))
      if (E.Kind == DynEdgeKind::Data &&
          Controller.graph().node(E.From).Kind == DynNodeKind::Singular)
        Next = E.From;
    Node = Next;
  }
}

void incremental_session(benchmark::State &State) {
  auto Prog = mustCompile(buggyWorkload(unsigned(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Prog, MOpts);
  M.run();
  ExecutionLog Log = M.takeLog();

  uint64_t Events = 0;
  for (auto _ : State) {
    PpdController Controller(*Prog, Log);
    DynNodeId Root = Controller.startAtFailure(0);
    walkBack(Controller, Root, 5);
    Events = Controller.stats().EventsTraced;
  }
  State.counters["TotalEvents"] = double(Events);
}

void fulltrace_session(benchmark::State &State) {
  auto Prog = mustCompile(buggyWorkload(unsigned(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  MOpts.Mode = RunMode::FullTrace;

  uint64_t Events = 0;
  for (auto _ : State) {
    // The strawman pays at execution time, inside the timed region.
    Machine M(*Prog, MOpts);
    M.run();
    Events = 0;
    for (const TraceBuffer &T : M.traces())
      Events += T.Events.size();
    benchmark::DoNotOptimize(Events);
  }
  State.counters["TotalEvents"] = double(Events);
}

/// The execution phase that precedes an incremental session, for an
/// apples-to-apples total: incremental total = this + incremental_session.
void incremental_execution(benchmark::State &State) {
  auto Prog = mustCompile(buggyWorkload(unsigned(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  for (auto _ : State) {
    Machine M(*Prog, MOpts);
    benchmark::DoNotOptimize(M.run().Steps);
  }
}

//===----------------------------------------------------------------------===//
// Replay-service variants: cold / cold-parallel / warm
//===----------------------------------------------------------------------===//
// The workload and interval set come from BenchPrograms.h
// (manyIntervalWorkload / makeReplayWorld), shared with bench_interp's E9
// replay rows so both experiments sweep identical interval sets.

void serviceCounters(benchmark::State &State,
                     const ParallelReplayer &Service, size_t Intervals) {
  ReplayServiceStats S = Service.stats();
  State.counters["Intervals"] = double(Intervals);
  State.counters["EngineReplays"] = double(S.EngineReplays);
  State.counters["CacheHits"] = double(S.Cache.Hits);
  State.counters["CacheBytes"] = double(S.Cache.Bytes);
}

/// Cold: every iteration starts with an empty cache and regenerates the
/// full interval set through \p Threads workers.
void flowback_cold(benchmark::State &State, unsigned Threads) {
  ReplayWorld W = makeReplayWorld(unsigned(State.range(0)));
  ReplayServiceOptions Options;
  Options.Threads = Threads;
  uint64_t Events = 0;
  for (auto _ : State) {
    ParallelReplayer Service(*W.Prog, W.Log, *W.Index, Options);
    auto Results = Service.getMany(W.All);
    Events = 0;
    for (const auto &R : Results)
      Events += R->Events.Events.size();
    benchmark::DoNotOptimize(Events);
  }
  // Representative of the last iteration (one full miss sweep).
  ParallelReplayer Probe(*W.Prog, W.Log, *W.Index, Options);
  auto Results = Probe.getMany(W.All);
  benchmark::DoNotOptimize(Results.data());
  serviceCounters(State, Probe, W.All.size());
  State.counters["TotalEvents"] = double(Events);
}

void flowback_cold_serial(benchmark::State &State) {
  flowback_cold(State, 0);
}

void flowback_cold_parallel(benchmark::State &State) {
  flowback_cold(State, unsigned(State.range(1)));
}

/// Warm: the cache already holds every interval; each iteration re-asks
/// the full query and must be answered entirely by lookups.
void flowback_warm_cached(benchmark::State &State) {
  ReplayWorld W = makeReplayWorld(unsigned(State.range(0)));
  ParallelReplayer Service(*W.Prog, W.Log, *W.Index, {});
  auto Warmup = Service.getMany(W.All);
  benchmark::DoNotOptimize(Warmup.data());
  for (auto _ : State) {
    auto Results = Service.getMany(W.All);
    benchmark::DoNotOptimize(Results.data());
  }
  serviceCounters(State, Service, W.All.size());
}

} // namespace

BENCHMARK(incremental_session)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(incremental_execution)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(fulltrace_session)->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK(flowback_cold_serial)->Arg(32)->Arg(128);
BENCHMARK(flowback_cold_parallel)
    ->Args({32, 2})
    ->Args({32, 4})
    ->Args({128, 2})
    ->Args({128, 4});
BENCHMARK(flowback_warm_cached)->Arg(32)->Arg(128);

BENCHMARK_MAIN();
