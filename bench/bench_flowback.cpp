//===- bench/bench_flowback.cpp - Experiment E8 ---------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E8 measures the debugging-phase promise of incremental tracing (§3.2.3,
// §5.3): answering a flowback query should cost time proportional to the
// log intervals the query touches, not to the whole execution.
//
//   * `incremental_session` — execution in Logging mode; the session
//     replays only the failure interval and walks five dependence steps.
//   * `fulltrace_session`   — Balzer's strawman: the execution itself runs
//     in FullTrace mode (every process traced), then the same five-step
//     walk is free of replays. The *session* is cheap but the execution
//     paid for everything; TotalEvents counts the events materialized.
//
// The program puts the bug at the end of a run with much unrelated work,
// the paper's motivating shape (§3.1: "the user needs traces for only
// those events that may have led to the detected error").
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/Controller.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

std::string buggyWorkload(unsigned UnrelatedWork) {
  return R"(
shared int noise;
func churn(int n) {
  int i = 0;
  for (i = 0; i < n; i = i + 1) noise = (noise + i) % 65521;
  return noise;
}
func main() {
  int w = churn()" +
         std::to_string(UnrelatedWork) + R"();
  int d = 4;
  int z = d - 4;
  print(w / z);    // divide by zero: the failure
}
)";
}

void walkBack(PpdController &Controller, DynNodeId Start, unsigned Steps) {
  DynNodeId Node = Start;
  for (unsigned I = 0; I != Steps && Node != InvalidId; ++I) {
    DynNodeId Next = InvalidId;
    for (const DynEdge &E : Controller.dependencesOf(Node))
      if (E.Kind == DynEdgeKind::Data &&
          Controller.graph().node(E.From).Kind == DynNodeKind::Singular)
        Next = E.From;
    Node = Next;
  }
}

void incremental_session(benchmark::State &State) {
  auto Prog = mustCompile(buggyWorkload(unsigned(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Prog, MOpts);
  M.run();
  ExecutionLog Log = M.takeLog();

  uint64_t Events = 0;
  for (auto _ : State) {
    PpdController Controller(*Prog, Log);
    DynNodeId Root = Controller.startAtFailure(0);
    walkBack(Controller, Root, 5);
    Events = Controller.stats().EventsTraced;
  }
  State.counters["TotalEvents"] = double(Events);
}

void fulltrace_session(benchmark::State &State) {
  auto Prog = mustCompile(buggyWorkload(unsigned(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  MOpts.Mode = RunMode::FullTrace;

  uint64_t Events = 0;
  for (auto _ : State) {
    // The strawman pays at execution time, inside the timed region.
    Machine M(*Prog, MOpts);
    M.run();
    Events = 0;
    for (const TraceBuffer &T : M.traces())
      Events += T.Events.size();
    benchmark::DoNotOptimize(Events);
  }
  State.counters["TotalEvents"] = double(Events);
}

/// The execution phase that precedes an incremental session, for an
/// apples-to-apples total: incremental total = this + incremental_session.
void incremental_execution(benchmark::State &State) {
  auto Prog = mustCompile(buggyWorkload(unsigned(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  for (auto _ : State) {
    Machine M(*Prog, MOpts);
    benchmark::DoNotOptimize(M.run().Steps);
  }
}

} // namespace

BENCHMARK(incremental_session)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(incremental_execution)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(fulltrace_session)->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_MAIN();
