//===- bench/bench_logging_overhead.cpp - Experiment E1 -------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E1 reproduces the paper's only quantitative claim (§7):
//
//   "Our measurements show that the tracing added less than 15% to the
//    program execution time."
//
// Each iteration runs the workload twice, back to back: once as the
// uninstrumented baseline (object code compiled without instrumentation,
// Plain mode) and once as the execution phase proper (instrumented object
// code, Logging mode). Interleaving the two inside one timing loop cancels
// CPU-frequency drift; the OverheadPct counter is the paper's number, and
// LogBytes the log volume per run.
//
// The `calls_inherited` row shows §5.4's leaf-inheritance knob rescuing
// the call-dominated worst case.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace ppd;
using namespace ppd::bench;

namespace {

void overheadBench(benchmark::State &State, const std::string &Source,
                   CompileOptions COpts = {}) {
  CompileOptions BaseOpts = COpts;
  BaseOpts.Instrument = false;
  auto Baseline = mustCompile(Source, BaseOpts);
  COpts.Instrument = true;
  auto Instrumented = mustCompile(Source, COpts);

  MachineOptions BaseMode;
  BaseMode.Mode = RunMode::Plain;
  BaseMode.Seed = 11;
  MachineOptions LogMode;
  LogMode.Mode = RunMode::Logging;
  LogMode.Seed = 11;

  auto RunOnce = [](const CompiledProgram &Prog, const MachineOptions &MOpts,
                    size_t *LogBytes) {
    Machine M(Prog, MOpts);
    RunResult Result = M.run();
    if (Result.Outcome != RunResult::Status::Completed) {
      std::fprintf(stderr, "benchmark workload did not complete\n");
      std::abort();
    }
    if (LogBytes)
      *LogBytes = M.log().byteSize();
    return Result.Steps;
  };

  using Clock = std::chrono::steady_clock;
  double BaseSeconds = 0, LogSeconds = 0;
  size_t LogBytes = 0;
  uint64_t Steps = 0;
  for (auto _ : State) {
    auto T0 = Clock::now();
    Steps = RunOnce(*Baseline, BaseMode, nullptr);
    auto T1 = Clock::now();
    RunOnce(*Instrumented, LogMode, &LogBytes);
    auto T2 = Clock::now();
    BaseSeconds += std::chrono::duration<double>(T1 - T0).count();
    LogSeconds += std::chrono::duration<double>(T2 - T1).count();
    State.SetIterationTime(
        std::chrono::duration<double>(T2 - T0).count());
  }
  State.counters["BaselineMs"] =
      benchmark::Counter(1e3 * BaseSeconds / double(State.iterations()));
  State.counters["LoggingMs"] =
      benchmark::Counter(1e3 * LogSeconds / double(State.iterations()));
  double OverheadPct = 100.0 * (LogSeconds / BaseSeconds - 1.0);
  State.counters["OverheadPct"] = benchmark::Counter(OverheadPct);
  // The paper's §7 bound, as a pass/fail flag the E1 table can aggregate:
  // 1 when this workload's logging overhead stayed under 15%.
  State.counters["WithinPaperBound"] =
      benchmark::Counter(OverheadPct < 15.0 ? 1.0 : 0.0);
  State.counters["LogBytes"] = double(LogBytes);
  State.counters["VmSteps"] = double(Steps);
}

void compute(benchmark::State &State) {
  overheadBench(State, computeWorkload(unsigned(State.range(0))));
}
void mixed(benchmark::State &State) {
  overheadBench(State, mixedWorkload(unsigned(State.range(0)), 200));
}
void calls(benchmark::State &State) {
  overheadBench(State, callsWorkload(unsigned(State.range(0))));
}
void calls_inherited(benchmark::State &State) {
  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = true;
  overheadBench(State, callsWorkload(unsigned(State.range(0))), COpts);
}
void sync(benchmark::State &State) {
  overheadBench(State, syncWorkload(unsigned(State.range(0))));
}
void pipeline(benchmark::State &State) {
  overheadBench(State, pipelineWorkload(unsigned(State.range(0))));
}

} // namespace

BENCHMARK(compute)->Arg(2000)->Arg(20000)->UseManualTime();
BENCHMARK(mixed)->Arg(20)->Arg(100)->UseManualTime();
BENCHMARK(calls)->Arg(500)->Arg(5000)->UseManualTime();
BENCHMARK(calls_inherited)->Arg(500)->Arg(5000)->UseManualTime();
BENCHMARK(sync)->Arg(250)->Arg(2500)->UseManualTime();
BENCHMARK(pipeline)->Arg(250)->Arg(2500)->UseManualTime();

BENCHMARK_MAIN();
