//===- bench/bench_logging_overhead.cpp - Experiment E1 -------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E1 reproduces the paper's only quantitative claim (§7):
//
//   "Our measurements show that the tracing added less than 15% to the
//    program execution time."
//
// Each iteration runs the workload twice, back to back: once as the
// uninstrumented baseline (object code compiled without instrumentation,
// Plain mode) and once as the execution phase proper (instrumented object
// code, Logging mode). Interleaving the two inside one timing loop cancels
// CPU-frequency drift; the OverheadPct counter is the paper's number, and
// LogBytes the log volume per run.
//
// The `calls_inherited` row shows §5.4's leaf-inheritance knob rescuing
// the call-dominated worst case.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace ppd;
using namespace ppd::bench;

namespace {

void overheadBench(benchmark::State &State, const std::string &Source,
                   CompileOptions COpts = {}) {
  CompileOptions BaseOpts = COpts;
  BaseOpts.Instrument = false;
  auto Baseline = mustCompile(Source, BaseOpts);
  COpts.Instrument = true;
  auto Instrumented = mustCompile(Source, COpts);

  MachineOptions BaseMode;
  BaseMode.Mode = RunMode::Plain;
  BaseMode.Seed = 11;
  MachineOptions LogMode;
  LogMode.Mode = RunMode::Logging;
  LogMode.Seed = 11;

  auto RunOnce = [](const CompiledProgram &Prog, const MachineOptions &MOpts,
                    size_t *LogBytes, ExecutionLog *OutLog) {
    Machine M(Prog, MOpts);
    RunResult Result = M.run();
    if (Result.Outcome != RunResult::Status::Completed) {
      std::fprintf(stderr, "benchmark workload did not complete\n");
      std::abort();
    }
    if (LogBytes)
      *LogBytes = M.log().byteSize();
    if (OutLog)
      *OutLog = M.takeLog();
    return Result.Steps;
  };

  using Clock = std::chrono::steady_clock;
  double BaseSeconds = 0, LogSeconds = 0;
  size_t LogBytes = 0;
  uint64_t Steps = 0;
  ExecutionLog FinalLog;
  for (auto _ : State) {
    auto T0 = Clock::now();
    Steps = RunOnce(*Baseline, BaseMode, nullptr, nullptr);
    auto T1 = Clock::now();
    RunOnce(*Instrumented, LogMode, &LogBytes, &FinalLog);
    auto T2 = Clock::now();
    BaseSeconds += std::chrono::duration<double>(T1 - T0).count();
    LogSeconds += std::chrono::duration<double>(T2 - T1).count();
    State.SetIterationTime(
        std::chrono::duration<double>(T2 - T0).count());
  }
  State.counters["BaselineMs"] =
      benchmark::Counter(1e3 * BaseSeconds / double(State.iterations()));
  State.counters["LoggingMs"] =
      benchmark::Counter(1e3 * LogSeconds / double(State.iterations()));
  double OverheadPct = 100.0 * (LogSeconds / BaseSeconds - 1.0);
  State.counters["OverheadPct"] = benchmark::Counter(OverheadPct);
  // The paper's §7 bound, as a pass/fail flag the E1 table can aggregate
  // (1 when this workload's logging overhead stayed under 15%), plus the
  // measured overhead as a percentage OF that bound — 100 means exactly at
  // the limit, so the margin is readable without mental arithmetic.
  State.counters["WithinPaperBound"] =
      benchmark::Counter(OverheadPct < 15.0 ? 1.0 : 0.0);
  State.counters["PctOfPaperBound"] =
      benchmark::Counter(100.0 * OverheadPct / 15.0);
  State.counters["LogBytes"] = double(LogBytes);
  State.counters["VmSteps"] = double(Steps);

  // Log volume and emit throughput per event (E2 methodology columns).
  uint64_t Records = 0;
  for (const ProcessLog &P : FinalLog.Procs)
    Records += P.Records.size();
  State.counters["LogRecords"] = double(Records);
  if (Records != 0)
    State.counters["BytesPerEvent"] = double(LogBytes) / double(Records);
  if (LogSeconds > 0)
    State.counters["EmitEventsPerSec"] =
        double(Records) * double(State.iterations()) / LogSeconds;

  // On-disk formats, measured on the last run's log: file volume and
  // save+load throughput, v1 vs v2.
  SaveLoadStats V1 = measureSaveLoad(FinalLog, LogFormat::V1);
  SaveLoadStats V2 = measureSaveLoad(FinalLog, LogFormat::V2);
  State.counters["FileBytesV1"] = double(V1.FileBytes);
  State.counters["FileBytesV2"] = double(V2.FileBytes);
  State.counters["SaveMBpsV1"] = V1.SaveMBps;
  State.counters["SaveMBpsV2"] = V2.SaveMBps;
  State.counters["LoadMBpsV1"] = V1.LoadMBps;
  State.counters["LoadMBpsV2"] = V2.LoadMBps;
}

void compute(benchmark::State &State) {
  overheadBench(State, computeWorkload(unsigned(State.range(0))));
}
void mixed(benchmark::State &State) {
  overheadBench(State, mixedWorkload(unsigned(State.range(0)), 200));
}
void calls(benchmark::State &State) {
  overheadBench(State, callsWorkload(unsigned(State.range(0))));
}
void calls_inherited(benchmark::State &State) {
  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = true;
  overheadBench(State, callsWorkload(unsigned(State.range(0))), COpts);
}
void sync(benchmark::State &State) {
  overheadBench(State, syncWorkload(unsigned(State.range(0))));
}
void pipeline(benchmark::State &State) {
  overheadBench(State, pipelineWorkload(unsigned(State.range(0))));
}

} // namespace

BENCHMARK(compute)->Arg(2000)->Arg(20000)->UseManualTime();
BENCHMARK(mixed)->Arg(20)->Arg(100)->UseManualTime();
BENCHMARK(calls)->Arg(500)->Arg(5000)->UseManualTime();
BENCHMARK(calls_inherited)->Arg(500)->Arg(5000)->UseManualTime();
BENCHMARK(sync)->Arg(250)->Arg(2500)->UseManualTime();
BENCHMARK(pipeline)->Arg(250)->Arg(2500)->UseManualTime();

BENCHMARK_MAIN();
