//===- bench/bench_race_detection.cpp - Experiments E4/E5 -----------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E4: race detection over the parallel dynamic graph (Defs 6.1–6.4) —
// detection itself and its scaling with the number of internal edges.
//
// E5 reproduces §7's closing concern:
//
//   "The problem of finding all pairs of possible conflicting edges is
//    more expensive. We are currently investigating algorithms to reduce
//    the cost of detecting these conflicts."
//
// `naive_*` is the all-pairs algorithm; `indexed_*` buckets edges by the
// shared variables they touch first; `vectorized_*` is the hardware-speed
// tier (SIMD kernels + batched happens-before closure + optional sharded
// sweep). All must report identical races (asserted by tests); the
// PairsExamined counter shows the pruning, Pairs/s the throughput gap, and
// ClosureBuildMs the vectorized tier's up-front cost.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "pardyn/RaceDetector.h"
#include "support/ThreadPool.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace ppd;
using namespace ppd::bench;

namespace {

/// N workers, each doing R rounds over V shared variables; Protected
/// selects mutexed or racy access.
std::string raceWorkload(unsigned Workers, unsigned Rounds, unsigned Vars,
                         bool Protected) {
  std::string Source;
  for (unsigned V = 0; V != Vars; ++V)
    Source += "shared int g" + std::to_string(V) + ";\n";
  Source += "sem lock = 1;\nsem done;\n";
  Source += "func worker(int id) {\n  int i = 0;\n";
  Source += "  for (i = 0; i < " + std::to_string(Rounds) +
            "; i = i + 1) {\n";
  if (Protected)
    Source += "    P(lock);\n";
  else
    Source += "    P(lock);\n    V(lock);\n"; // sync points without
                                              // protection: racy edges
  for (unsigned V = 0; V != Vars; ++V)
    Source += "    g" + std::to_string(V) + " = g" + std::to_string(V) +
              " + id;\n";
  if (Protected)
    Source += "    V(lock);\n";
  Source += "  }\n  V(done);\n}\n";
  Source += "func main() {\n";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "  spawn worker(" + std::to_string(W + 1) + ");\n";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "  P(done);\n";
  Source += "  print(g0);\n}\n";
  return Source;
}

/// Sparse sharing: each worker has a private shared variable and touches a
/// common one only rarely — the realistic shape where variable indexing
/// prunes most pairs (cf. §7's search for cheaper conflict detection).
std::string sparseWorkload(unsigned Workers, unsigned Rounds) {
  std::string Source = "shared int common;\n";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "shared int own" + std::to_string(W) + ";\n";
  Source += "sem lock = 1;\nsem done;\n";
  for (unsigned W = 0; W != Workers; ++W) {
    std::string Own = "own" + std::to_string(W);
    Source += "func worker" + std::to_string(W) + "() {\n  int i = 0;\n";
    Source += "  for (i = 0; i < " + std::to_string(Rounds) +
              "; i = i + 1) {\n";
    Source += "    P(lock);\n    V(lock);\n"; // sync points, no protection
    Source += "    " + Own + " = " + Own + " + i;\n";
    Source += "    if (i % 16 == 0) common = common + 1;\n";
    Source += "  }\n  V(done);\n}\n";
  }
  Source += "func main() {\n";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "  spawn worker" + std::to_string(W) + "();\n";
  for (unsigned W = 0; W != Workers; ++W)
    Source += "  P(done);\n";
  Source += "  print(common);\n}\n";
  return Source;
}

struct Prepared {
  std::unique_ptr<CompiledProgram> Prog;
  std::unique_ptr<ParallelDynamicGraph> Graph;
};

Prepared prepareSource(const std::string &Source) {
  Prepared Out;
  Out.Prog = mustCompile(Source);
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Out.Prog, MOpts);
  M.run();
  Out.Graph = std::make_unique<ParallelDynamicGraph>(
      M.log(), Out.Prog->Symbols->NumSharedVars);
  return Out;
}

Prepared prepare(unsigned Workers, unsigned Rounds, bool Protected) {
  Prepared Out;
  Out.Prog = mustCompile(raceWorkload(Workers, Rounds, 4, Protected));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Out.Prog, MOpts);
  M.run();
  Out.Graph = std::make_unique<ParallelDynamicGraph>(
      M.log(), Out.Prog->Symbols->NumSharedVars);
  return Out;
}

void detectOn(benchmark::State &State, const Prepared &P,
              RaceAlgorithm Algorithm, ThreadPool *Pool = nullptr) {
  RaceDetector Detector(*P.Graph, *P.Prog->Symbols);

  uint64_t Pairs = 0;
  uint64_t ClosureNs = 0;
  size_t Races = 0;
  unsigned Edges = 0;
  for (uint32_t Pid = 0; Pid != P.Graph->numProcs(); ++Pid)
    Edges += P.Graph->edges(Pid).size();
  for (auto _ : State) {
    auto Result = Detector.detect(Algorithm, Pool);
    benchmark::DoNotOptimize(Result.Races.size());
    Pairs = Result.PairsExamined;
    Races = Result.Races.size();
    ClosureNs = Result.ClosureBuildNs;
  }
  State.counters["Edges"] = double(Edges);
  State.counters["PairsExamined"] = double(Pairs);
  State.counters["Races"] = double(Races);
  // The E5 throughput column: candidate combinations tested per second.
  // Comparable across algorithms only on identical workloads — the
  // algorithms count different candidate universes (see RaceDetector.h).
  State.counters["Pairs/s"] = benchmark::Counter(
      double(Pairs), benchmark::Counter::kIsIterationInvariantRate);
  if (Algorithm == RaceAlgorithm::Vectorized)
    State.counters["ClosureBuildMs"] = double(ClosureNs) / 1e6;
}

void naive_racy(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   false);
  detectOn(State, P, RaceAlgorithm::NaiveAllPairs);
}
void indexed_racy(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   false);
  detectOn(State, P, RaceAlgorithm::VarIndexed);
}
void naive_racefree(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   true);
  detectOn(State, P, RaceAlgorithm::NaiveAllPairs);
}
void indexed_racefree(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   true);
  detectOn(State, P, RaceAlgorithm::VarIndexed);
}
void naive_sparse(benchmark::State &State) {
  auto P = prepareSource(
      sparseWorkload(unsigned(State.range(0)), unsigned(State.range(1))));
  detectOn(State, P, RaceAlgorithm::NaiveAllPairs);
}
void indexed_sparse(benchmark::State &State) {
  auto P = prepareSource(
      sparseWorkload(unsigned(State.range(0)), unsigned(State.range(1))));
  detectOn(State, P, RaceAlgorithm::VarIndexed);
}
void vectorized_racy(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   false);
  detectOn(State, P, RaceAlgorithm::Vectorized);
}
void vectorized_racefree(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   true);
  detectOn(State, P, RaceAlgorithm::Vectorized);
}
void vectorized_sparse(benchmark::State &State) {
  auto P = prepareSource(
      sparseWorkload(unsigned(State.range(0)), unsigned(State.range(1))));
  detectOn(State, P, RaceAlgorithm::Vectorized);
}
/// The sharded sweep on a pool sized to the host (the deployed shape:
/// detectRaces rides the replay service's pool).
void vectorized_pooled_racy(benchmark::State &State) {
  auto P = prepare(unsigned(State.range(0)), unsigned(State.range(1)),
                   false);
  unsigned Workers = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool Pool(Workers);
  State.counters["PoolWorkers"] = double(Workers);
  detectOn(State, P, RaceAlgorithm::Vectorized, &Pool);
}

} // namespace

// Args: {workers, rounds per worker}.
#define RACE_ARGS ->Args({2, 8})->Args({4, 8})->Args({4, 32})->Args({8, 32})

BENCHMARK(naive_racy) RACE_ARGS;
BENCHMARK(indexed_racy) RACE_ARGS;
BENCHMARK(vectorized_racy) RACE_ARGS;
BENCHMARK(vectorized_pooled_racy) RACE_ARGS;
BENCHMARK(naive_racefree) RACE_ARGS;
BENCHMARK(indexed_racefree) RACE_ARGS;
BENCHMARK(vectorized_racefree) RACE_ARGS;
BENCHMARK(naive_sparse) RACE_ARGS;
BENCHMARK(indexed_sparse) RACE_ARGS;
BENCHMARK(vectorized_sparse) RACE_ARGS;

BENCHMARK_MAIN();
