//===- bench/bench_transport.cpp - Experiment E13 -------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E13 measures the epoll transport under connection scale — the axis the
// in-process E10 cannot see (E10 deliberately excludes kernel buffers
// and sockets):
//
//   * `transport_warm_p99/N`   — N concurrent TCP bot connections, each
//     holding a warmed session and issuing queries; P50us/P99us are the
//     client-observed round-trip percentiles from the fleet's histogram.
//     The tentpole acceptance bar reads from this curve: warm p99 at
//     high N vs the single-connection baseline.
//   * `transport_fd_churn/N`   — N connect/round-trip/disconnect cycles
//     against the epoll server; FdDelta is the process fd-count change
//     across the run (flat = no leak, the satellite-1 regression).
//   * `transport_threaded_churn/N` — the same churn against the legacy
//     thread-per-connection transport (unix only), for comparison at
//     small N; each cycle pays a thread spawn + join.
//
// All servers run in-process with inline request execution (ServerThreads
// = 0): the transport is the variable, the scheduler is not.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "server/Bots.h"
#include "server/DebugServer.h"
#include "server/Transport.h"
#include "server/Wire.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <dirent.h>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

size_t openFdCount() {
  DIR *D = ::opendir("/proc/self/fd");
  if (!D)
    return 0;
  size_t N = 0;
  while (struct dirent *E = ::readdir(D)) {
    if (E->d_name[0] == '.')
      continue;
    ++N;
  }
  ::closedir(D);
  return N - 1;
}

std::string transportWorkload() { return mixedWorkload(6, 40); }

/// An in-process epoll server on an ephemeral TCP port, loop on a
/// background thread, sessions uncapped (the fleet opens one per bot).
struct BenchEpollServer {
  std::unique_ptr<DebugServer> Server;
  uint16_t Port = 0;
  std::string UnixPath;
  std::thread Loop;

  void start(bool WithUnix = false) {
    DebugServerOptions SOpts;
    SOpts.Registry.MaxSessions = 1u << 20;
    SOpts.QueueLimit = 4096;
    Server = std::make_unique<DebugServer>(SOpts);
    auto Prog = mustCompile(transportWorkload());
    MachineOptions MOpts;
    MOpts.Seed = 11;
    Machine M(*Prog, MOpts);
    M.run();
    Server->addProgram(std::move(Prog), M.takeLog());

    EpollServerOptions TOpts;
    TOpts.TcpListenFd = listenTcp("127.0.0.1:0", &Port);
    if (TOpts.TcpListenFd < 0)
      std::abort();
    if (WithUnix) {
      UnixPath = "/tmp/ppd-bench-transport-" + std::to_string(::getpid()) +
                 ".sock";
      TOpts.UnixListenFd = listenUnix(UnixPath);
      TOpts.UnixPath = UnixPath;
    }
    DebugServer *S = Server.get();
    Loop = std::thread([S, TOpts] { runEpollServer(*S, TOpts); });
    // Wait until the loop thread is serving: the dispatcher's own fds
    // (epoll + eventfd) are created on that thread, and the churn
    // benchmark counts open fds right after start() returns.
    for (int W = 0; W != 1000; ++W) {
      ClientConnection Conn;
      if (Conn.connect(endpoint())) {
        Request Stats;
        Stats.Type = MsgType::Stats;
        Response Resp;
        if (Conn.roundTrip(Stats, Resp))
          break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::string endpoint() const {
    return "tcp:127.0.0.1:" + std::to_string(Port);
  }

  void stop() {
    ClientConnection Conn;
    if (Conn.connect(endpoint())) {
      Request Shut;
      Shut.Type = MsgType::Shutdown;
      Response Ack;
      Conn.roundTrip(Shut, Ack);
    }
    Loop.join();
    if (!UnixPath.empty())
      ::unlink(UnixPath.c_str());
  }
};

/// Connections-vs-latency: one fleet run per iteration, every bot holds
/// its connection until the whole fleet has finished querying, so the
/// percentiles are measured AT the plateau of N concurrent connections.
void transport_warm_p99(benchmark::State &State) {
  unsigned NumBots = unsigned(State.range(0));
  BenchEpollServer Server;
  Server.start();
  raiseFdLimit();

  BotFleetResult Last;
  for (auto _ : State) {
    BotFleetOptions Opts;
    Opts.Address = Server.endpoint();
    Opts.NumBots = NumBots;
    Opts.QueriesPerBot = 8;
    Opts.Command = "where 0";
    Opts.HoldOpen = true;
    Last = runBotFleet(Opts);
    if (Last.Failed != 0 || !Last.Error.empty()) {
      State.SkipWithError(("fleet failure: " + Last.Error).c_str());
      break;
    }
    benchmark::DoNotOptimize(Last.QueriesAnswered);
  }
  Server.stop();
  State.SetItemsProcessed(int64_t(State.iterations()) * NumBots * 8);
  State.counters["Conns"] = double(NumBots);
  State.counters["PeakConns"] = double(Last.PeakConcurrent);
  State.counters["P50us"] = double(Last.P50us);
  State.counters["P99us"] = double(Last.P99us);
  State.counters["BusyRetries"] = double(Last.BusyRetries);
}

/// Fd-count-vs-churn: each iteration is one connect/round-trip/
/// disconnect cycle; FdDelta is the leak check across the whole run.
void transport_fd_churn(benchmark::State &State) {
  unsigned Cycles = unsigned(State.range(0));
  BenchEpollServer Server;
  Server.start();

  // Let the readiness probe's server-side fd finish reaping: sample
  // until the count holds still so Before is a stable baseline.
  size_t Before = openFdCount();
  for (int W = 0; W != 200; ++W) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    size_t Now = openFdCount();
    if (Now == Before)
      break;
    Before = Now;
  }
  for (auto _ : State) {
    for (unsigned I = 0; I != Cycles; ++I) {
      ClientConnection Conn;
      if (!Conn.connect(Server.endpoint())) {
        State.SkipWithError("connect failed");
        break;
      }
      Request Stats;
      Stats.Type = MsgType::Stats;
      Response Resp;
      Conn.roundTrip(Stats, Resp);
    }
  }
  // Give the loop a beat to reap the last EOFs before counting.
  for (int W = 0; W != 200 && openFdCount() > Before; ++W)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double Delta = double(openFdCount()) - double(Before);
  Server.stop();
  State.SetItemsProcessed(int64_t(State.iterations()) * Cycles);
  State.counters["Cycles"] = double(Cycles);
  State.counters["FdDelta"] = Delta;
}

/// The legacy transport under the same churn, for the comparison column:
/// thread spawn + join per connection, unix only.
void transport_threaded_churn(benchmark::State &State) {
  unsigned Cycles = unsigned(State.range(0));
  DebugServerOptions SOpts;
  SOpts.Registry.MaxSessions = 1u << 20;
  DebugServer Server(SOpts);
  auto Prog = mustCompile(transportWorkload());
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Prog, MOpts);
  M.run();
  Server.addProgram(std::move(Prog), M.takeLog());
  std::string Path = "/tmp/ppd-bench-threaded-" +
                     std::to_string(::getpid()) + ".sock";
  int ListenFd = listenUnix(Path);
  if (ListenFd < 0)
    std::abort();
  std::thread Loop([&] { runUnixServer(Server, ListenFd, Path); });

  size_t Before = openFdCount();
  for (auto _ : State) {
    for (unsigned I = 0; I != Cycles; ++I) {
      ClientConnection Conn;
      if (!Conn.connect(Path)) {
        State.SkipWithError("connect failed");
        break;
      }
      Request Stats;
      Stats.Type = MsgType::Stats;
      Response Resp;
      Conn.roundTrip(Stats, Resp);
    }
  }
  for (int W = 0; W != 200 && openFdCount() > Before; ++W)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double Delta = double(openFdCount()) - double(Before);
  {
    ClientConnection Conn;
    if (Conn.connect(Path)) {
      Request Shut;
      Shut.Type = MsgType::Shutdown;
      Response Ack;
      Conn.roundTrip(Shut, Ack);
    }
  }
  Loop.join();
  ::unlink(Path.c_str());
  State.SetItemsProcessed(int64_t(State.iterations()) * Cycles);
  State.counters["Cycles"] = double(Cycles);
  State.counters["FdDelta"] = Delta;
}

} // namespace

BENCHMARK(transport_warm_p99)->Arg(1)->Arg(64)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(transport_fd_churn)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(transport_threaded_churn)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
