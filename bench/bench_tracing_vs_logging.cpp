//===- bench/bench_tracing_vs_logging.cpp - Experiment E2 -----------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E2 quantifies the paper's core motivation (§3.1): tracing *every* event
// during execution — Balzer's original flowback scheme — is expensive in
// time and space, while incremental tracing generates only the small log.
//
//   * `logging`   — the execution phase proper (incremental tracing's
//                   run-time cost); the Bytes counter is the log volume.
//   * `fulltrace` — the strawman: the emulation package runs for every
//                   process during execution, recording one TraceEvent per
//                   statement; Bytes is the trace volume.
//
// The paper predicts fulltrace ≫ logging on both axes, with the gap
// growing with the amount of computation between synchronization points.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

void runMode(benchmark::State &State, const std::string &Source,
             RunMode Mode) {
  auto Prog = mustCompile(Source);
  MachineOptions MOpts;
  MOpts.Mode = Mode;
  MOpts.Seed = 11;

  size_t Bytes = 0;
  uint64_t Events = 0;
  for (auto _ : State) {
    Machine M(*Prog, MOpts);
    RunResult Result = M.run();
    benchmark::DoNotOptimize(Result.Steps);
    if (Mode == RunMode::FullTrace) {
      Bytes = 0;
      Events = 0;
      for (const TraceBuffer &T : M.traces()) {
        Bytes += T.byteSize();
        Events += T.Events.size();
      }
      // Balzer still needs the sync events for cross-process ordering.
      Bytes += M.log().byteSize();
    } else {
      Bytes = M.log().byteSize();
      Events = 0;
      for (const ProcessLog &P : M.log().Procs)
        Events += P.Records.size();
    }
  }
  State.counters["Bytes"] = double(Bytes);
  State.counters["EventsOrRecords"] = double(Events);
}

void compute_logging(benchmark::State &State) {
  runMode(State, computeWorkload(unsigned(State.range(0))),
          RunMode::Logging);
}
void compute_fulltrace(benchmark::State &State) {
  runMode(State, computeWorkload(unsigned(State.range(0))),
          RunMode::FullTrace);
}
void calls_logging(benchmark::State &State) {
  runMode(State, callsWorkload(unsigned(State.range(0))), RunMode::Logging);
}
void calls_fulltrace(benchmark::State &State) {
  runMode(State, callsWorkload(unsigned(State.range(0))),
          RunMode::FullTrace);
}
void sync_logging(benchmark::State &State) {
  runMode(State, syncWorkload(unsigned(State.range(0))), RunMode::Logging);
}
void sync_fulltrace(benchmark::State &State) {
  runMode(State, syncWorkload(unsigned(State.range(0))),
          RunMode::FullTrace);
}

} // namespace

BENCHMARK(compute_logging)->Arg(2000)->Arg(20000);
BENCHMARK(compute_fulltrace)->Arg(2000)->Arg(20000);
BENCHMARK(calls_logging)->Arg(500)->Arg(5000);
BENCHMARK(calls_fulltrace)->Arg(500)->Arg(5000);
BENCHMARK(sync_logging)->Arg(250)->Arg(2500);
BENCHMARK(sync_fulltrace)->Arg(250)->Arg(2500);

BENCHMARK_MAIN();
