//===- bench/bench_tracing_vs_logging.cpp - Experiment E2 -----------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E2 quantifies the paper's core motivation (§3.1): tracing *every* event
// during execution — Balzer's original flowback scheme — is expensive in
// time and space, while incremental tracing generates only the small log.
//
//   * `logging`   — the execution phase proper (incremental tracing's
//                   run-time cost); the Bytes counter is the log volume.
//   * `fulltrace` — the strawman: the emulation package runs for every
//                   process during execution, recording one TraceEvent per
//                   statement; Bytes is the trace volume.
//
// The paper predicts fulltrace ≫ logging on both axes, with the gap
// growing with the amount of computation between synchronization points.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "support/ThreadPool.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

void runMode(benchmark::State &State, const std::string &Source,
             RunMode Mode) {
  auto Prog = mustCompile(Source);
  MachineOptions MOpts;
  MOpts.Mode = Mode;
  MOpts.Seed = 11;

  size_t Bytes = 0;
  uint64_t Events = 0;
  ExecutionLog FinalLog;
  for (auto _ : State) {
    Machine M(*Prog, MOpts);
    RunResult Result = M.run();
    benchmark::DoNotOptimize(Result.Steps);
    if (Mode == RunMode::FullTrace) {
      Bytes = 0;
      Events = 0;
      for (const TraceBuffer &T : M.traces()) {
        Bytes += T.byteSize();
        Events += T.Events.size();
      }
      // Balzer still needs the sync events for cross-process ordering.
      Bytes += M.log().byteSize();
    } else {
      Bytes = M.log().byteSize();
      Events = 0;
      for (const ProcessLog &P : M.log().Procs)
        Events += P.Records.size();
      FinalLog = M.takeLog();
    }
  }
  State.counters["Bytes"] = double(Bytes);
  State.counters["EventsOrRecords"] = double(Events);
  if (Events != 0)
    State.counters["BytesPerEvent"] = double(Bytes) / double(Events);
  State.counters["EventsPerSec"] = benchmark::Counter(
      double(Events) * double(State.iterations()), benchmark::Counter::kIsRate);

  if (Mode != RunMode::Logging)
    return;
  // E2's save/load methodology columns: on-disk volume and throughput of
  // both log formats, with v2's per-process sections decoded in parallel
  // when the workload actually has multiple processes.
  SaveLoadStats V1 = measureSaveLoad(FinalLog, LogFormat::V1);
  // Size the pool to the machine: workers beyond the physical cores (or on
  // a single-core host, any workers at all) only add scheduling overhead
  // to millisecond-scale operations.
  unsigned Cores = ThreadPool::defaultConcurrency();
  ThreadPool Pool(Cores > 1 ? std::min(4u, Cores) : 0);
  SaveLoadStats V2 = measureSaveLoad(
      FinalLog, LogFormat::V2, FinalLog.Procs.size() > 1 ? &Pool : nullptr);
  State.counters["FileBytesV1"] = double(V1.FileBytes);
  State.counters["FileBytesV2"] = double(V2.FileBytes);
  State.counters["SaveMsV1"] = V1.SaveMs;
  State.counters["SaveMsV2"] = V2.SaveMs;
  State.counters["LoadMsV1"] = V1.LoadMs;
  State.counters["LoadMsV2"] = V2.LoadMs;
  State.counters["SaveMBpsV1"] = V1.SaveMBps;
  State.counters["SaveMBpsV2"] = V2.SaveMBps;
  State.counters["LoadMBpsV1"] = V1.LoadMBps;
  State.counters["LoadMBpsV2"] = V2.LoadMBps;
}

void compute_logging(benchmark::State &State) {
  runMode(State, computeWorkload(unsigned(State.range(0))),
          RunMode::Logging);
}
void compute_fulltrace(benchmark::State &State) {
  runMode(State, computeWorkload(unsigned(State.range(0))),
          RunMode::FullTrace);
}
void calls_logging(benchmark::State &State) {
  runMode(State, callsWorkload(unsigned(State.range(0))), RunMode::Logging);
}
void calls_fulltrace(benchmark::State &State) {
  runMode(State, callsWorkload(unsigned(State.range(0))),
          RunMode::FullTrace);
}
void sync_logging(benchmark::State &State) {
  runMode(State, syncWorkload(unsigned(State.range(0))), RunMode::Logging);
}
void sync_fulltrace(benchmark::State &State) {
  runMode(State, syncWorkload(unsigned(State.range(0))),
          RunMode::FullTrace);
}

} // namespace

BENCHMARK(compute_logging)->Arg(2000)->Arg(20000);
BENCHMARK(compute_fulltrace)->Arg(2000)->Arg(20000);
BENCHMARK(calls_logging)->Arg(500)->Arg(5000);
BENCHMARK(calls_fulltrace)->Arg(500)->Arg(5000);
BENCHMARK(sync_logging)->Arg(250)->Arg(2500);
BENCHMARK(sync_fulltrace)->Arg(250)->Arg(2500);

BENCHMARK_MAIN();
