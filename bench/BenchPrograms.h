//===- bench/BenchPrograms.h - Shared benchmark workloads -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PPL workload generators shared by the benchmark binaries. Each stresses
/// a different cost center of the logging instrumentation:
///
///  * compute   — tight arithmetic loops: instrumentation is amortized
///                over many uninstrumented instructions (the paper's best
///                case for the <15% claim);
///  * calls     — many small subroutine invocations: one prelog+postlog
///                per call, the worst case §5.4's knobs exist for;
///  * sync      — semaphore-heavy critical sections: unit logs dominate;
///  * pipeline  — multi-process message flow.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_BENCH_BENCHPROGRAMS_H
#define PPD_BENCH_BENCHPROGRAMS_H

#include "compiler/Compiler.h"
#include "core/ReplayService.h"
#include "log/ExecutionLog.h"
#include "log/LogIO.h"
#include "vm/Machine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace ppd::bench {

inline std::string computeWorkload(unsigned Iters) {
  return R"(
func main() {
  int i = 0;
  int acc = 1;
  while (i < )" +
         std::to_string(Iters) + R"() {
    acc = (acc * 31 + i) % 1000003;
    if (acc % 2 == 0) acc = acc + 7;
    i = i + 1;
  }
  print(acc);
}
)";
}

inline std::string callsWorkload(unsigned Calls) {
  return R"(
shared int total;
func step(int x) {
  total = total + x % 17;
  return total;
}
func main() {
  int i = 0;
  int last = 0;
  for (i = 0; i < )" +
         std::to_string(Calls) + R"(; i = i + 1) last = step(i);
  print(last);
}
)";
}

inline std::string syncWorkload(unsigned Rounds) {
  return R"(
shared int counter;
sem lock = 1;
sem done;
func worker(int rounds) {
  int i = 0;
  for (i = 0; i < rounds; i = i + 1) {
    P(lock);
    counter = counter + 1;
    V(lock);
  }
  V(done);
}
func main() {
  spawn worker()" +
         std::to_string(Rounds) + R"();
  spawn worker()" +
         std::to_string(Rounds) + R"();
  P(done);
  P(done);
  print(counter);
}
)";
}

inline std::string pipelineWorkload(unsigned Messages) {
  return R"(
chan stage1[8];
chan stage2[8];
func transform() {
  int i = 0;
  for (i = 0; i < )" +
         std::to_string(Messages) + R"(; i = i + 1)
    send(stage2, recv(stage1) * 3 + 1);
}
func main() {
  spawn transform();
  int i = 0;
  int sum = 0;
  for (i = 0; i < )" +
         std::to_string(Messages) + R"(; i = i + 1) {
    send(stage1, i);
    sum = sum + recv(stage2);
  }
  print(sum);
}
)";
}

/// A realistic mix (the shape the paper's <15% claim was measured on):
/// compute-dominated workers that synchronize once per \p Grain loop
/// iterations.
inline std::string mixedWorkload(unsigned Rounds, unsigned Grain) {
  std::string G = std::to_string(Grain);
  return R"(
shared int checkpoint;
sem lock = 1;
sem done;
func worker(int rounds) {
  int r = 0;
  int acc = 1;
  for (r = 0; r < rounds; r = r + 1) {
    int i = 0;
    while (i < )" + G + R"() {
      acc = (acc * 31 + i) % 1000003;
      i = i + 1;
    }
    P(lock);
    checkpoint = checkpoint + acc % 101;
    V(lock);
  }
  V(done);
}
func main() {
  spawn worker()" + std::to_string(Rounds) + R"();
  spawn worker()" + std::to_string(Rounds) + R"();
  P(done);
  P(done);
  print(checkpoint);
}
)";
}

/// One format's save+load cost for a given log (experiment E2's
/// methodology columns: on-disk volume, wall time, and throughput).
struct SaveLoadStats {
  size_t FileBytes = 0;
  double SaveMs = 0;  ///< mean wall time of one save.
  double LoadMs = 0;  ///< mean wall time of one load.
  double SaveMBps = 0;
  double LoadMBps = 0;
};

/// Times \p Reps save+load round trips of \p Log in \p Format and keeps
/// the fastest of each (minimum-of-reps filters scheduler and page-cache
/// noise out of millisecond-scale operations). \p Pool, if given,
/// parallelizes the v2 section decode (v1 ignores it).
inline SaveLoadStats measureSaveLoad(const ExecutionLog &Log, LogFormat Format,
                                     ThreadPool *Pool = nullptr,
                                     unsigned Reps = 15) {
  std::string Path = "/tmp/ppd_bench_saveload_v" +
                     std::to_string(unsigned(Format)) + ".bin";
  using Clock = std::chrono::steady_clock;
  double SaveSeconds = 1e30, LoadSeconds = 1e30;
  for (unsigned I = 0; I != Reps; ++I) {
    auto T0 = Clock::now();
    bool Saved = Log.save(Path, Format, Pool);
    auto T1 = Clock::now();
    ExecutionLog Loaded;
    bool LoadedOk = Saved && ExecutionLog::load(Path, Loaded, Pool);
    auto T2 = Clock::now();
    if (!LoadedOk) {
      std::fprintf(stderr, "benchmark save/load round trip failed\n");
      std::abort();
    }
    SaveSeconds =
        std::min(SaveSeconds, std::chrono::duration<double>(T1 - T0).count());
    LoadSeconds =
        std::min(LoadSeconds, std::chrono::duration<double>(T2 - T1).count());
  }
  SaveLoadStats Stats;
  std::vector<uint8_t> Bytes;
  if (readFileBytes(Path, Bytes))
    Stats.FileBytes = Bytes.size();
  std::remove(Path.c_str());
  Stats.SaveMs = 1e3 * SaveSeconds;
  Stats.LoadMs = 1e3 * LoadSeconds;
  double MB = double(Stats.FileBytes) / 1e6;
  if (SaveSeconds > 0)
    Stats.SaveMBps = MB / SaveSeconds;
  if (LoadSeconds > 0)
    Stats.LoadMBps = MB / LoadSeconds;
  return Stats;
}

/// Compiles or aborts — benchmark setup code.
inline std::unique_ptr<CompiledProgram>
mustCompile(const std::string &Source, const CompileOptions &Options = {}) {
  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, Options, Diags);
  if (!Prog) {
    std::fprintf(stderr, "benchmark program failed to compile:\n%s",
                 Diags.str().c_str());
    std::abort();
  }
  return Prog;
}

//===----------------------------------------------------------------------===//
// Shared replay-phase world: the E8b and E9 replay rows regenerate the
// same interval sets from the same generator, so their cold/warm numbers
// are comparable across binaries.
//===----------------------------------------------------------------------===//

/// Many sibling intervals under main: each unit() call is its own logged
/// interval of ~6*InnerIters mostly-compute instructions, so a query over
/// all of them is a wide, embarrassingly parallel replay fan-out — and,
/// per interval, the JIT tier's target shape (straight-line arithmetic
/// between rare side-exits).
inline std::string manyIntervalWorkload(unsigned Units,
                                        unsigned InnerIters = 60) {
  return R"(
func unit(int k) {
  int i = 0;
  int s = 0;
  for (i = 0; i < )" +
         std::to_string(InnerIters) + R"(; i = i + 1) s = (s + k * i) % 9973;
  return s;
}
func main() {
  int j = 0;
  int acc = 0;
  for (j = 0; j < )" +
         std::to_string(Units) + R"(; j = j + 1) acc = acc + unit(j);
  print(acc);
}
)";
}

/// The JIT tier's best case, and E9's "compute-heavy e-block" row: the
/// same many-interval shape as manyIntervalWorkload, but each loop
/// iteration is two statements of long chained arithmetic (~45
/// instructions per traced statement instead of ~3). Replay cost here is
/// dispatch-bound rather than trace-event-bound, which is exactly the
/// cost the JIT removes; the manyIntervalWorkload rows show the
/// event-bound other end.
inline std::string computeHeavyUnitWorkload(unsigned Units,
                                            unsigned InnerIters = 40) {
  return R"(
func unit(int k) {
  int i = 0;
  int s = k + 1;
  for (i = 0; i < )" +
         std::to_string(InnerIters) + R"(; i = i + 1) {
    s = ((((((((((((((((((((s * 31 + 7) * 17 + 5) * 13 + 3) * 11 + 2)
        * 7 + 1) * 29 + 4) * 23 + 6) * 19 + 8) * 5 + 9) * 3 + 2)
        * 31 + 6) * 17 + 2) * 13 + 8) * 11 + 4) * 7 + 9) * 29 + 1)
        * 23 + 5) * 19 + 3) * 5 + 7) * 3 + 4) % 999983;
    s = ((((((((((((((((((((s * 29 + 1) * 23 + 4) * 19 + 6) * 5 + 8)
        * 3 + 9) * 31 + 3) * 17 + 5) * 13 + 7) * 11 + 1) * 7 + 6)
        * 29 + 2) * 23 + 8) * 19 + 4) * 5 + 1) * 3 + 5) * 31 + 9)
        * 17 + 7) * 13 + 2) * 11 + 3) * 7 + 8) % 999979;
  }
  return s;
}
func main() {
  int j = 0;
  int acc = 0;
  for (j = 0; j < )" +
         std::to_string(Units) + R"(; j = j + 1) acc = acc + unit(j);
  print(acc);
}
)";
}

/// A compiled program, its execution log, and every closed interval — the
/// fixed input of one replay benchmark.
struct ReplayWorld {
  std::unique_ptr<CompiledProgram> Prog;
  ExecutionLog Log;
  std::unique_ptr<LogIndex> Index;
  std::vector<ParallelReplayer::IntervalRef> All;
};

inline ReplayWorld makeReplayWorldFor(const std::string &Source) {
  ReplayWorld W;
  W.Prog = mustCompile(Source);
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*W.Prog, MOpts);
  M.run();
  W.Log = M.takeLog();
  W.Index = std::make_unique<LogIndex>(W.Log);
  for (uint32_t Pid = 0; Pid != W.Log.Procs.size(); ++Pid)
    for (const LogInterval &Interval : W.Index->intervals(Pid))
      if (Interval.PostlogRecord != InvalidId)
        W.All.push_back({Pid, Interval.Index});
  return W;
}

inline ReplayWorld makeReplayWorld(unsigned Units, unsigned InnerIters = 60) {
  return makeReplayWorldFor(manyIntervalWorkload(Units, InnerIters));
}

/// One full sweep: replays every closed interval of \p W on \p Kind and
/// returns the instructions retired. Doubles as the warm-up pass (fills
/// the JIT hotness counters and triggers compiles) and as the timed body,
/// so warm rows measure exactly what the warm-up produced.
inline uint64_t sweepIntervals(ReplayEngine &Engine, const ReplayWorld &W,
                               ReplayEngineKind Kind) {
  uint64_t Instructions = 0;
  ReplayOptions Options;
  Options.Engine = Kind;
  for (const auto &[Pid, Idx] : W.All) {
    ReplayResult R =
        Engine.replay(W.Log, Pid, W.Index->intervals(Pid)[Idx], Options);
    if (!R.Ok) {
      std::fprintf(stderr, "benchmark replay failed: %s\n", R.Error.c_str());
      std::abort();
    }
    Instructions += R.Instructions;
  }
  return Instructions;
}

} // namespace ppd::bench

#endif // PPD_BENCH_BENCHPROGRAMS_H
