//===- bench/bench_server.cpp - Experiment E10 ----------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E10 measures the debug server's request path over the in-process frame
// transport (no socket: the wire codec and dispatch are the variables,
// kernel buffers are not):
//
//   * `server_cold_open`  — the price of admission: a fresh server per
//     iteration, N sessions opened, each answering its first `where`
//     (graph fragment build + first replay, all cache-cold).
//   * `server_warm_query` — the steady interactive state: N warmed
//     sessions polled round-robin; every replay is a shared-cache lookup.
//     P50us/P99us come from the server's own latency histogram (bucket
//     upper bounds).
//   * `server_concurrent_clients` — T client threads over one server,
//     one private session each, synchronous handleFrame round-trips:
//     dispatch-path scalability (sessions only share the replay cache and
//     the metrics atomics).
//
// The session counts (1/4/16) bracket a single user, a small team on one
// failure, and a classroom-sized fan-in.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "server/DebugServer.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <vector>

using namespace ppd;
using namespace ppd::bench;

namespace {

/// A logged execution with enough intervals that `where` has real replay
/// work: two synchronizing workers plus a call-heavy main.
std::string serverWorkload() { return mixedWorkload(6, 40); }

struct ProgramAndLog {
  std::unique_ptr<CompiledProgram> Prog;
  ExecutionLog Log;
};

ProgramAndLog makeWorkload() {
  ProgramAndLog Out;
  Out.Prog = mustCompile(serverWorkload());
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Out.Prog, MOpts);
  M.run();
  Out.Log = M.takeLog();
  return Out;
}

/// Encodes one frame payload (length prefix stripped — handleFrame takes
/// the payload).
std::vector<uint8_t> queryPayload(uint64_t Session, const std::string &Cmd,
                                  uint64_t RequestId) {
  Request Req;
  Req.Type = MsgType::Query;
  Req.RequestId = RequestId;
  Req.SessionId = Session;
  Req.Command = Cmd;
  LogWriter W;
  encodeRequest(Req, W);
  return std::vector<uint8_t>(W.data() + 4, W.data() + W.size());
}

uint64_t openSession(DebugServer &Server) {
  Request Req;
  Req.Type = MsgType::OpenSession;
  Response Resp = Server.handle(Req);
  if (Resp.Type != RespType::SessionOpened) {
    std::fprintf(stderr, "benchmark session open failed\n");
    std::abort();
  }
  return Resp.SessionId;
}

void closeSession(DebugServer &Server, uint64_t Session) {
  Request Req;
  Req.Type = MsgType::CloseSession;
  Req.SessionId = Session;
  Server.handle(Req);
}

void runQuery(DebugServer &Server, const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Frame =
      Server.handleFrame(Payload.data(), Payload.size());
  benchmark::DoNotOptimize(Frame.data());
}

/// Cold: fresh server, N sessions, first `where 0` each — nothing cached
/// anywhere.
void server_cold_open(benchmark::State &State) {
  unsigned Sessions = unsigned(State.range(0));
  ProgramAndLog W = makeWorkload();
  for (auto _ : State) {
    State.PauseTiming();
    // Re-compiling is setup noise; re-running isn't needed — but the
    // server owns its program, so each iteration re-compiles outside the
    // timed region and re-uses the same log.
    auto Prog = mustCompile(serverWorkload());
    State.ResumeTiming();
    DebugServer Server;
    Server.addProgram(std::move(Prog), W.Log);
    for (unsigned S = 0; S != Sessions; ++S) {
      uint64_t Id = openSession(Server);
      runQuery(Server, queryPayload(Id, "where 0", S + 1));
    }
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Sessions);
  State.counters["Sessions"] = double(Sessions);
}

/// Warm: persistent server, N sessions already past their first query;
/// each iteration answers one query per session round-robin.
void server_warm_query(benchmark::State &State) {
  unsigned Sessions = unsigned(State.range(0));
  ProgramAndLog W = makeWorkload();
  DebugServer Server;
  Server.addProgram(std::move(W.Prog), std::move(W.Log));
  std::vector<std::vector<uint8_t>> Payloads;
  for (unsigned S = 0; S != Sessions; ++S) {
    uint64_t Id = openSession(Server);
    Payloads.push_back(queryPayload(Id, "where 0", S + 1));
    runQuery(Server, Payloads.back()); // warm the fragment + replay cache
  }
  for (auto _ : State)
    for (const std::vector<uint8_t> &P : Payloads)
      runQuery(Server, P);
  State.SetItemsProcessed(int64_t(State.iterations()) * Sessions);
  State.counters["Sessions"] = double(Sessions);
  State.counters["P50us"] =
      double(Server.metrics().latency().percentileMicros(50));
  State.counters["P99us"] =
      double(Server.metrics().latency().percentileMicros(99));
  ReplayServiceStats RS = Server.registry().aggregateReplayStats();
  State.counters["CacheHits"] = double(RS.Cache.Hits);
}

/// Concurrency: one server, one private warmed session per benchmark
/// thread, synchronous round-trips. google-benchmark scales the thread
/// count; per-thread state lives in the function-local holder.
struct SharedServer {
  std::mutex Mutex;
  std::unique_ptr<DebugServer> Server;
  void ensure() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Server)
      return;
    ProgramAndLog W = makeWorkload();
    Server = std::make_unique<DebugServer>();
    Server->addProgram(std::move(W.Prog), std::move(W.Log));
  }
};

void server_concurrent_clients(benchmark::State &State) {
  static SharedServer Shared;
  Shared.ensure();
  uint64_t Session = openSession(*Shared.Server);
  std::vector<uint8_t> Payload =
      queryPayload(Session, "where 0", uint64_t(State.thread_index()) + 1);
  runQuery(*Shared.Server, Payload); // warm this session
  for (auto _ : State)
    runQuery(*Shared.Server, Payload);
  // Calibration re-enters this function many times per thread config;
  // leaked sessions would trip the registry's MaxSessions cap.
  closeSession(*Shared.Server, Session);
  State.SetItemsProcessed(State.iterations());
  if (State.thread_index() == 0) {
    State.counters["P50us"] =
        double(Shared.Server->metrics().latency().percentileMicros(50));
    State.counters["P99us"] =
        double(Shared.Server->metrics().latency().percentileMicros(99));
  }
}

} // namespace

BENCHMARK(server_cold_open)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(server_warm_query)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(server_concurrent_clients)->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime();

BENCHMARK_MAIN();
