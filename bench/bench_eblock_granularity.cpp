//===- bench/bench_eblock_granularity.cpp - Experiment E3 -----------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E3 reproduces §5.4's trade-off discussion:
//
//   "if we make the size of the e-blocks large in favor of the execution
//    phase, the debugging phase performance will suffer. On the other
//    hand, if we make the size of the e-blocks small in favor of the
//    debugging phase, execution phase performance will suffer."
//
// The workload is one function with heavy loops. Partitioner configs
// range from coarse (whole function = one e-block) to fine (loop e-blocks
// + small segments). For each config:
//
//   * `exec_*`  — execution-phase wall time; LogBytes counts the log;
//   * `debug_*` — debugging-phase cost of one flowback query at the *end*
//                 of the function (replay of the interval containing the
//                 last statement); ReplayInstr counts replayed
//                 instructions. Coarse blocks must re-execute the loops to
//                 answer; fine blocks replay only the final segment.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/Controller.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

using namespace ppd;
using namespace ppd::bench;

namespace {

/// A function with two heavy loops followed by a cheap epilogue — the
/// flowback target sits in the epilogue.
std::string granularityWorkload(unsigned Iters) {
  std::string N = std::to_string(Iters);
  return R"(
shared int checksum;
func main() {
  int i = 0;
  int a = 0;
  while (i < )" + N + R"() { a = (a * 7 + i) % 99991; i = i + 1; }
  int b = 0;
  for (i = 0; i < )" + N + R"(; i = i + 1) b = (b + a * i) % 99991;
  checksum = a + b;
  int verdict = checksum % 97;
  print(verdict);
}
)";
}

CompileOptions configOf(int Config) {
  CompileOptions Opts;
  switch (Config) {
  case 0: // coarse: whole function is one e-block
    break;
  case 1: // loop e-blocks
    Opts.EBlocks.LoopBlocks = true;
    break;
  case 2: // loop e-blocks + segments of ≤4 top-level statements
    Opts.EBlocks.LoopBlocks = true;
    Opts.EBlocks.SplitLargeFunctions = true;
    Opts.EBlocks.MaxSegmentStmts = 4;
    break;
  case 3: // very fine: segments of ≤1 top-level statement
    Opts.EBlocks.LoopBlocks = true;
    Opts.EBlocks.SplitLargeFunctions = true;
    Opts.EBlocks.MaxSegmentStmts = 1;
    break;
  }
  return Opts;
}

void execPhase(benchmark::State &State) {
  auto Prog = mustCompile(granularityWorkload(unsigned(State.range(1))),
                          configOf(int(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  size_t LogBytes = 0;
  for (auto _ : State) {
    Machine M(*Prog, MOpts);
    M.run();
    LogBytes = M.log().byteSize();
  }
  State.counters["LogBytes"] = double(LogBytes);
  State.counters["EBlocks"] = double(Prog->EBlocks.size());
}

void debugPhase(benchmark::State &State) {
  auto Prog = mustCompile(granularityWorkload(unsigned(State.range(1))),
                          configOf(int(State.range(0))));
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Prog, MOpts);
  M.run();
  ExecutionLog Log = M.takeLog();

  uint64_t ReplayInstr = 0;
  for (auto _ : State) {
    // A fresh debugging session each iteration: ask about the final print.
    PpdController Controller(*Prog, Log);
    DynNodeId Node = Controller.startAtLastEvent(0);
    benchmark::DoNotOptimize(Controller.dependencesOf(Node).size());
    ReplayInstr = Controller.stats().ReplayInstructions;
  }
  State.counters["ReplayInstr"] = double(ReplayInstr);
}

} // namespace

// Args: {config, loop iterations}.
BENCHMARK(execPhase)
    ->Args({0, 5000})
    ->Args({1, 5000})
    ->Args({2, 5000})
    ->Args({3, 5000});
BENCHMARK(debugPhase)
    ->Args({0, 5000})
    ->Args({1, 5000})
    ->Args({2, 5000})
    ->Args({3, 5000});

BENCHMARK_MAIN();
