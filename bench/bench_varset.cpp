//===- bench/bench_varset.cpp - Experiment E6 -----------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E6 reproduces the paper's §7 remark:
//
//   "using bit-mask representations for sets of variables (as opposed to a
//    list structure) can have a large payoff"
//
// Two layers are measured:
//  * micro: union / intersects / popcount on synthetic variable sets of
//    varying universe size and density — intersects() is the inner loop of
//    race detection (Def 6.3). FixedVarSet rows measure the vectorized
//    tier's flat-arena representation (contiguous fixed-width words, SIMD
//    kernels) against the two growable representations on the same
//    workloads;
//  * macro: the real MOD/REF interprocedural fixpoint (the paper's cited
//    semantic analysis) over a generated program, with each representation.
//
//===----------------------------------------------------------------------===//

#include "dataflow/ModRef.h"
#include "lang/Parser.h"
#include "sema/CallGraph.h"
#include "sema/Sema.h"
#include "support/FixedVarSet.h"
#include "support/Rng.h"
#include "support/VarSet.h"

#include <benchmark/benchmark.h>

using namespace ppd;

namespace {

template <VariableSet Set>
std::vector<Set> makeSets(unsigned Count, unsigned Universe,
                          unsigned Density) {
  Rng R(1234);
  std::vector<Set> Sets(Count);
  for (Set &S : Sets)
    for (unsigned I = 0; I != Density; ++I)
      S.insert(unsigned(R.nextBelow(Universe)));
  return Sets;
}

template <VariableSet Set> void unionChain(benchmark::State &State) {
  unsigned Universe = unsigned(State.range(0));
  unsigned Density = unsigned(State.range(1));
  auto Sets = makeSets<Set>(64, Universe, Density);
  for (auto _ : State) {
    Set Acc;
    for (const Set &S : Sets)
      Acc.unionWith(S);
    benchmark::DoNotOptimize(Acc.size());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 64);
}

template <VariableSet Set> void intersectsAllPairs(benchmark::State &State) {
  unsigned Universe = unsigned(State.range(0));
  unsigned Density = unsigned(State.range(1));
  auto Sets = makeSets<Set>(64, Universe, Density);
  for (auto _ : State) {
    unsigned Conflicts = 0;
    for (size_t I = 0; I != Sets.size(); ++I)
      for (size_t J = I + 1; J != Sets.size(); ++J)
        Conflicts += Sets[I].intersects(Sets[J]);
    benchmark::DoNotOptimize(Conflicts);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 64 * 63 / 2);
}

/// The same populations as makeSets, laid out as arena rows.
VarSetArena makeArena(unsigned Count, unsigned Universe, unsigned Density) {
  Rng R(1234);
  VarSetArena Arena(Count, Universe);
  for (unsigned S = 0; S != Count; ++S)
    for (unsigned I = 0; I != Density; ++I)
      Arena.row(S).insert(unsigned(R.nextBelow(Universe)));
  return Arena;
}

void unionChainFixed(benchmark::State &State) {
  unsigned Universe = unsigned(State.range(0));
  unsigned Density = unsigned(State.range(1));
  auto Arena = makeArena(64, Universe, Density);
  VarSetArena AccArena(1, Universe);
  for (auto _ : State) {
    FixedVarSet Acc = AccArena.row(0);
    Acc.clear();
    for (unsigned S = 0; S != 64; ++S)
      Acc.unionWith(Arena.row(S));
    benchmark::DoNotOptimize(Acc.size());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 64);
}

void intersectsAllPairsFixed(benchmark::State &State) {
  unsigned Universe = unsigned(State.range(0));
  unsigned Density = unsigned(State.range(1));
  auto Arena = makeArena(64, Universe, Density);
  for (auto _ : State) {
    unsigned Conflicts = 0;
    for (unsigned I = 0; I != 64; ++I)
      for (unsigned J = I + 1; J != 64; ++J)
        Conflicts += Arena.row(I).intersects(Arena.row(J));
    benchmark::DoNotOptimize(Conflicts);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 64 * 63 / 2);
}

/// |A| over every set — the PairsExamined accounting loop of the
/// vectorized sweep. BitVarSet counts per-word scalar popcount over its
/// (trimmed) words; FixedVarSet routes through the simd kernel.
template <VariableSet Set> void popcountAll(benchmark::State &State) {
  unsigned Universe = unsigned(State.range(0));
  unsigned Density = unsigned(State.range(1));
  auto Sets = makeSets<Set>(64, Universe, Density);
  for (auto _ : State) {
    unsigned Total = 0;
    for (const Set &S : Sets)
      Total += S.size();
    benchmark::DoNotOptimize(Total);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 64);
}

void popcountAllFixed(benchmark::State &State) {
  unsigned Universe = unsigned(State.range(0));
  unsigned Density = unsigned(State.range(1));
  auto Arena = makeArena(64, Universe, Density);
  for (auto _ : State) {
    unsigned Total = 0;
    for (unsigned S = 0; S != 64; ++S)
      Total += Arena.row(S).size();
    benchmark::DoNotOptimize(Total);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 64);
}

/// Generates a program with \p Funcs functions in a call chain, each
/// touching a few of \p Globals shared globals — a workload whose MOD/REF
/// fixpoint moves large variable sets around.
std::string makeModRefProgram(unsigned Funcs, unsigned Globals) {
  std::string Source;
  for (unsigned G = 0; G != Globals; ++G)
    Source += "shared int g" + std::to_string(G) + ";\n";
  for (unsigned F = 0; F != Funcs; ++F) {
    Source += "func f" + std::to_string(F) + "(int x) {\n";
    for (unsigned K = 0; K != 4; ++K) {
      unsigned G = (F * 7 + K * 13) % Globals;
      Source += "  g" + std::to_string(G) + " = g" + std::to_string(G) +
                " + x;\n";
    }
    if (F + 1 != Funcs)
      Source += "  return f" + std::to_string(F + 1) + "(x + 1);\n";
    Source += "  return x;\n}\n";
  }
  Source += "func main() { print(f0(1)); }\n";
  return Source;
}

struct ModRefInput {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<SymbolTable> Symbols;
  std::unique_ptr<CallGraph> CG;
};

ModRefInput prepare(unsigned Funcs, unsigned Globals) {
  ModRefInput In;
  DiagnosticEngine Diags;
  In.Prog = Parser::parse(makeModRefProgram(Funcs, Globals), Diags);
  if (!In.Prog)
    std::abort();
  Sema S(*In.Prog, Diags);
  In.Symbols = S.run();
  if (!In.Symbols)
    std::abort();
  In.CG = std::make_unique<CallGraph>(*In.Prog);
  return In;
}

template <VariableSet Set> void modRefFixpoint(benchmark::State &State) {
  auto In = prepare(unsigned(State.range(0)), unsigned(State.range(1)));
  for (auto _ : State) {
    auto MR = computeModRef<Set>(*In.Prog, *In.Symbols, *In.CG);
    benchmark::DoNotOptimize(MR.Mod.back().size());
  }
}

} // namespace

// Universe sizes bracket what real programs see: a handful of shared
// globals up to thousands of program variables.
#define SET_ARGS                                                              \
  ->Args({64, 8})->Args({64, 32})->Args({1024, 32})->Args({1024, 256})        \
      ->Args({8192, 512})

BENCHMARK(unionChain<BitVarSet>) SET_ARGS;
BENCHMARK(unionChain<ListVarSet>) SET_ARGS;
BENCHMARK(unionChainFixed) SET_ARGS;
BENCHMARK(intersectsAllPairs<BitVarSet>) SET_ARGS;
BENCHMARK(intersectsAllPairs<ListVarSet>) SET_ARGS;
BENCHMARK(intersectsAllPairsFixed) SET_ARGS;
BENCHMARK(popcountAll<BitVarSet>) SET_ARGS;
BENCHMARK(popcountAll<ListVarSet>) SET_ARGS;
BENCHMARK(popcountAllFixed) SET_ARGS;

BENCHMARK(modRefFixpoint<BitVarSet>)->Args({20, 50})->Args({100, 200});
BENCHMARK(modRefFixpoint<ListVarSet>)->Args({20, 50})->Args({100, 200});

BENCHMARK_MAIN();
