//===- bench/bench_interp.cpp - Interpreter dispatch throughput -----------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// Dispatch-bound microbenchmarks for the execution engine itself, the cost
// center under every experiment row (E1 emit rate, E2 tracing-vs-logging,
// E8b flowback replay). Each workload is run back to back on the decoded
// fast path (pre-decoded stream + threaded dispatch + mode-specialized
// loop) and on the legacy one-instruction switch engine, in the same
// benchmark iteration so CPU-frequency drift cancels. Counters report
// million instructions per second for both engines and the resulting
// speedup; the two runs' step counts and outputs are asserted identical,
// so the benchmark doubles as a coarse differential check.
//
// Workloads:
//  * arith     — tight arithmetic/branch loop: pure dispatch, the fusion
//                (compare+branch, push-const+store) best case;
//  * calls     — call-heavy recursion (fib): frame push/pop, the per-
//                process slot arena's best case;
//  * array     — array sweep: indexed loads/stores with bounds checks.
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace ppd;
using namespace ppd::bench;

namespace {

std::string recursionWorkload(unsigned Depth, unsigned Reps) {
  return R"(
func fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
func main() {
  int i = 0;
  int acc = 0;
  for (i = 0; i < )" +
         std::to_string(Reps) + R"(; i = i + 1) acc = acc + fib()" +
         std::to_string(Depth) + R"();
  print(acc);
}
)";
}

std::string arraySweepWorkload(unsigned Sweeps) {
  return R"(
func main() {
  int a[256];
  int i = 0;
  int k = 0;
  int sum = 0;
  for (k = 0; k < )" +
         std::to_string(Sweeps) + R"(; k = k + 1)
    for (i = 0; i < 256; i = i + 1)
      a[i] = a[i] + i + k;
  for (i = 0; i < 256; i = i + 1) sum = sum + a[i];
  print(sum);
}
)";
}

/// Runs \p Source in \p Mode on both engines inside one timing loop and
/// reports Minstr/sec each plus the speedup. A large quantum keeps the
/// scheduler out of the measurement (the workloads are single-process, so
/// the interleaving is unaffected).
void interpBench(benchmark::State &State, const std::string &Source,
                 RunMode Mode) {
  auto Prog = mustCompile(Source);

  MachineOptions Decoded;
  Decoded.Mode = Mode;
  Decoded.Seed = 11;
  Decoded.Quantum = 1024;
  Decoded.UseDecoded = true;
  MachineOptions Legacy = Decoded;
  Legacy.UseDecoded = false;

  auto RunOnce = [&](const MachineOptions &MOpts,
                     std::vector<int64_t> *Outputs) {
    Machine M(*Prog, MOpts);
    RunResult Result = M.run();
    if (Result.Outcome != RunResult::Status::Completed) {
      std::fprintf(stderr, "benchmark workload did not complete\n");
      std::abort();
    }
    if (Outputs) {
      Outputs->clear();
      for (const OutputRecord &R : M.output())
        Outputs->push_back(R.Value);
    }
    return Result.Steps;
  };

  using Clock = std::chrono::steady_clock;
  double DecodedSeconds = 0, LegacySeconds = 0;
  uint64_t Steps = 0;
  std::vector<int64_t> DecodedOut, LegacyOut;
  for (auto _ : State) {
    auto T0 = Clock::now();
    Steps = RunOnce(Decoded, &DecodedOut);
    auto T1 = Clock::now();
    uint64_t LegacySteps = RunOnce(Legacy, &LegacyOut);
    auto T2 = Clock::now();
    if (Steps != LegacySteps || DecodedOut != LegacyOut) {
      std::fprintf(stderr, "decoded/legacy engines diverged\n");
      std::abort();
    }
    DecodedSeconds += std::chrono::duration<double>(T1 - T0).count();
    LegacySeconds += std::chrono::duration<double>(T2 - T1).count();
    State.SetIterationTime(std::chrono::duration<double>(T2 - T0).count());
  }

  double Iters = double(State.iterations());
  double DecodedRate = 1e-6 * double(Steps) * Iters / DecodedSeconds;
  double LegacyRate = 1e-6 * double(Steps) * Iters / LegacySeconds;
  State.counters["MinstrPerSecDecoded"] = benchmark::Counter(DecodedRate);
  State.counters["MinstrPerSecLegacy"] = benchmark::Counter(LegacyRate);
  State.counters["SpeedupVsLegacy"] =
      benchmark::Counter(DecodedRate / LegacyRate);
  State.counters["VmSteps"] = double(Steps);
}

std::string arith(unsigned N) { return computeWorkload(N); }

void arith_plain(benchmark::State &State) {
  interpBench(State, arith(unsigned(State.range(0))), RunMode::Plain);
}
void arith_logging(benchmark::State &State) {
  interpBench(State, arith(unsigned(State.range(0))), RunMode::Logging);
}
void arith_fulltrace(benchmark::State &State) {
  interpBench(State, arith(unsigned(State.range(0))), RunMode::FullTrace);
}

void calls_plain(benchmark::State &State) {
  interpBench(State, recursionWorkload(unsigned(State.range(0)), 50),
              RunMode::Plain);
}
void calls_logging(benchmark::State &State) {
  interpBench(State, recursionWorkload(unsigned(State.range(0)), 50),
              RunMode::Logging);
}
void calls_fulltrace(benchmark::State &State) {
  interpBench(State, recursionWorkload(unsigned(State.range(0)), 50),
              RunMode::FullTrace);
}

void array_plain(benchmark::State &State) {
  interpBench(State, arraySweepWorkload(unsigned(State.range(0))),
              RunMode::Plain);
}
void array_logging(benchmark::State &State) {
  interpBench(State, arraySweepWorkload(unsigned(State.range(0))),
              RunMode::Logging);
}
void array_fulltrace(benchmark::State &State) {
  interpBench(State, arraySweepWorkload(unsigned(State.range(0))),
              RunMode::FullTrace);
}

} // namespace

BENCHMARK(arith_plain)->Arg(20000)->Arg(200000)->UseManualTime();
BENCHMARK(arith_logging)->Arg(20000)->Arg(200000)->UseManualTime();
BENCHMARK(arith_fulltrace)->Arg(20000)->UseManualTime();

BENCHMARK(calls_plain)->Arg(12)->Arg(16)->UseManualTime();
BENCHMARK(calls_logging)->Arg(12)->UseManualTime();
BENCHMARK(calls_fulltrace)->Arg(12)->UseManualTime();

BENCHMARK(array_plain)->Arg(100)->Arg(1000)->UseManualTime();
BENCHMARK(array_logging)->Arg(100)->Arg(1000)->UseManualTime();
BENCHMARK(array_fulltrace)->Arg(100)->UseManualTime();

BENCHMARK_MAIN();
