//===- bench/bench_interp.cpp - Interpreter dispatch throughput -----------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// Dispatch-bound microbenchmarks for the execution engine itself, the cost
// center under every experiment row (E1 emit rate, E2 tracing-vs-logging,
// E8b flowback replay). Each workload is run back to back on the decoded
// fast path (pre-decoded stream + threaded dispatch + mode-specialized
// loop) and on the legacy one-instruction switch engine, in the same
// benchmark iteration so CPU-frequency drift cancels. Counters report
// million instructions per second for both engines and the resulting
// speedup; the two runs' step counts and outputs are asserted identical,
// so the benchmark doubles as a coarse differential check.
//
// Workloads:
//  * arith     — tight arithmetic/branch loop: pure dispatch, the fusion
//                (compare+branch, push-const+store) best case;
//  * calls     — call-heavy recursion (fib): frame push/pop, the per-
//                process slot arena's best case;
//  * array     — array sweep: indexed loads/stores with bounds checks.
//
// The replay_* rows measure the replay tiers (legacy / decoded / JIT):
// replay_compute_* on compute-heavy e-blocks (dispatch-bound, the JIT's
// target shape), replay_interval_* on the E8b manyIntervalWorkload
// (trace-event-bound, shared with bench_flowback). Each iteration is one
// warm full-interval sweep, with compile time and bailouts reported as
// separate counters so the JIT's amortization story is visible
// (replay_jit_cold pays the compiles inside the timed region;
// replay_compute_jit runs the already-published code).
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/Replay.h"
#include "vm/Jit.h"
#include "vm/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace ppd;
using namespace ppd::bench;

namespace {

std::string recursionWorkload(unsigned Depth, unsigned Reps) {
  return R"(
func fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
func main() {
  int i = 0;
  int acc = 0;
  for (i = 0; i < )" +
         std::to_string(Reps) + R"(; i = i + 1) acc = acc + fib()" +
         std::to_string(Depth) + R"();
  print(acc);
}
)";
}

std::string arraySweepWorkload(unsigned Sweeps) {
  return R"(
func main() {
  int a[256];
  int i = 0;
  int k = 0;
  int sum = 0;
  for (k = 0; k < )" +
         std::to_string(Sweeps) + R"(; k = k + 1)
    for (i = 0; i < 256; i = i + 1)
      a[i] = a[i] + i + k;
  for (i = 0; i < 256; i = i + 1) sum = sum + a[i];
  print(sum);
}
)";
}

/// Runs \p Source in \p Mode on both engines inside one timing loop and
/// reports Minstr/sec each plus the speedup. A large quantum keeps the
/// scheduler out of the measurement (the workloads are single-process, so
/// the interleaving is unaffected).
void interpBench(benchmark::State &State, const std::string &Source,
                 RunMode Mode) {
  auto Prog = mustCompile(Source);

  MachineOptions Decoded;
  Decoded.Mode = Mode;
  Decoded.Seed = 11;
  Decoded.Quantum = 1024;
  Decoded.UseDecoded = true;
  MachineOptions Legacy = Decoded;
  Legacy.UseDecoded = false;

  auto RunOnce = [&](const MachineOptions &MOpts,
                     std::vector<int64_t> *Outputs) {
    Machine M(*Prog, MOpts);
    RunResult Result = M.run();
    if (Result.Outcome != RunResult::Status::Completed) {
      std::fprintf(stderr, "benchmark workload did not complete\n");
      std::abort();
    }
    if (Outputs) {
      Outputs->clear();
      for (const OutputRecord &R : M.output())
        Outputs->push_back(R.Value);
    }
    return Result.Steps;
  };

  using Clock = std::chrono::steady_clock;
  double DecodedSeconds = 0, LegacySeconds = 0;
  uint64_t Steps = 0;
  std::vector<int64_t> DecodedOut, LegacyOut;
  for (auto _ : State) {
    auto T0 = Clock::now();
    Steps = RunOnce(Decoded, &DecodedOut);
    auto T1 = Clock::now();
    uint64_t LegacySteps = RunOnce(Legacy, &LegacyOut);
    auto T2 = Clock::now();
    if (Steps != LegacySteps || DecodedOut != LegacyOut) {
      std::fprintf(stderr, "decoded/legacy engines diverged\n");
      std::abort();
    }
    DecodedSeconds += std::chrono::duration<double>(T1 - T0).count();
    LegacySeconds += std::chrono::duration<double>(T2 - T1).count();
    State.SetIterationTime(std::chrono::duration<double>(T2 - T0).count());
  }

  double Iters = double(State.iterations());
  double DecodedRate = 1e-6 * double(Steps) * Iters / DecodedSeconds;
  double LegacyRate = 1e-6 * double(Steps) * Iters / LegacySeconds;
  State.counters["MinstrPerSecDecoded"] = benchmark::Counter(DecodedRate);
  State.counters["MinstrPerSecLegacy"] = benchmark::Counter(LegacyRate);
  State.counters["SpeedupVsLegacy"] =
      benchmark::Counter(DecodedRate / LegacyRate);
  State.counters["VmSteps"] = double(Steps);
}

std::string arith(unsigned N) { return computeWorkload(N); }

void arith_plain(benchmark::State &State) {
  interpBench(State, arith(unsigned(State.range(0))), RunMode::Plain);
}
void arith_logging(benchmark::State &State) {
  interpBench(State, arith(unsigned(State.range(0))), RunMode::Logging);
}
void arith_fulltrace(benchmark::State &State) {
  interpBench(State, arith(unsigned(State.range(0))), RunMode::FullTrace);
}

void calls_plain(benchmark::State &State) {
  interpBench(State, recursionWorkload(unsigned(State.range(0)), 50),
              RunMode::Plain);
}
void calls_logging(benchmark::State &State) {
  interpBench(State, recursionWorkload(unsigned(State.range(0)), 50),
              RunMode::Logging);
}
void calls_fulltrace(benchmark::State &State) {
  interpBench(State, recursionWorkload(unsigned(State.range(0)), 50),
              RunMode::FullTrace);
}

void array_plain(benchmark::State &State) {
  interpBench(State, arraySweepWorkload(unsigned(State.range(0))),
              RunMode::Plain);
}
void array_logging(benchmark::State &State) {
  interpBench(State, arraySweepWorkload(unsigned(State.range(0))),
              RunMode::Logging);
}
void array_fulltrace(benchmark::State &State) {
  interpBench(State, arraySweepWorkload(unsigned(State.range(0))),
              RunMode::FullTrace);
}

//===----------------------------------------------------------------------===//
// Replay-tier throughput (E9 jit rows)
//===----------------------------------------------------------------------===//

/// Warm replay throughput of one tier: every closed interval of the
/// shared world replayed per iteration. The JIT engine is warmed by one
/// untimed sweep (hotness threshold 1, so the warm-up compiles
/// everything); compiles therefore land outside the timed region and are
/// reported separately via JitCompileMs.
void replayBench(benchmark::State &State, ReplayEngineKind Kind,
                 const std::string &Source) {
  ReplayWorld W = makeReplayWorldFor(Source);
  std::shared_ptr<JitProgram> JP;
  if (Kind == ReplayEngineKind::Jit) {
    JitOptions JOpts;
    JOpts.HotThreshold = 1;
    JP = JitProgram::create(*W.Prog, JOpts);
  }
  ReplayEngine Engine(*W.Prog, JP);
  uint64_t Instructions = sweepIntervals(Engine, W, Kind); // warm-up
  for (auto _ : State) {
    uint64_t Sum = sweepIntervals(Engine, W, Kind);
    if (Sum != Instructions) {
      std::fprintf(stderr, "replay sweep not idempotent\n");
      std::abort();
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.counters["MinstrPerSec"] = benchmark::Counter(
      1e-6 * double(Instructions) * double(State.iterations()),
      benchmark::Counter::kIsRate);
  State.counters["Intervals"] = double(W.All.size());
  if (JP) {
    JitStats S = JP->stats();
    State.counters["JitCompiles"] = double(S.Compiles);
    State.counters["JitCompileMs"] = 1e-6 * double(S.CompileNs);
    State.counters["JitBailouts"] =
        double(S.Bailouts) / double(S.JittedReplays ? S.JittedReplays : 1);
  }
}

// The compute_* rows replay compute-heavy e-blocks (long chained
// arithmetic per statement — dispatch-bound, the JIT's target shape); the
// interval_* rows replay the E8b manyIntervalWorkload (short statements —
// trace-event-bound, the JIT's worst case, shared with bench_flowback).
void replay_compute_legacy(benchmark::State &State) {
  replayBench(State, ReplayEngineKind::Legacy,
              computeHeavyUnitWorkload(unsigned(State.range(0)),
                                       unsigned(State.range(1))));
}
void replay_compute_decoded(benchmark::State &State) {
  replayBench(State, ReplayEngineKind::Decoded,
              computeHeavyUnitWorkload(unsigned(State.range(0)),
                                       unsigned(State.range(1))));
}
void replay_compute_jit(benchmark::State &State) {
  replayBench(State, ReplayEngineKind::Jit,
              computeHeavyUnitWorkload(unsigned(State.range(0)),
                                       unsigned(State.range(1))));
}
void replay_interval_legacy(benchmark::State &State) {
  replayBench(State, ReplayEngineKind::Legacy,
              manyIntervalWorkload(unsigned(State.range(0)),
                                   unsigned(State.range(1))));
}
void replay_interval_decoded(benchmark::State &State) {
  replayBench(State, ReplayEngineKind::Decoded,
              manyIntervalWorkload(unsigned(State.range(0)),
                                   unsigned(State.range(1))));
}
void replay_interval_jit(benchmark::State &State) {
  replayBench(State, ReplayEngineKind::Jit,
              manyIntervalWorkload(unsigned(State.range(0)),
                                   unsigned(State.range(1))));
}

/// The cold half of the amortization story: every iteration builds a
/// fresh JitProgram and pays every compile inside the timed region, then
/// sweeps once. Compare against replay_compute_jit (compiles amortized)
/// and replay_compute_decoded (no compiles at all).
void replay_jit_cold(benchmark::State &State) {
  ReplayWorld W = makeReplayWorldFor(computeHeavyUnitWorkload(
      unsigned(State.range(0)), unsigned(State.range(1))));
  uint64_t Compiles = 0;
  for (auto _ : State) {
    JitOptions JOpts;
    JOpts.HotThreshold = 1;
    std::shared_ptr<JitProgram> JP = JitProgram::create(*W.Prog, JOpts);
    ReplayEngine Engine(*W.Prog, JP);
    benchmark::DoNotOptimize(sweepIntervals(Engine, W, ReplayEngineKind::Jit));
    Compiles = JP ? JP->stats().Compiles : 0;
  }
  State.counters["JitCompiles"] = double(Compiles);
  State.counters["Intervals"] = double(W.All.size());
}

} // namespace

BENCHMARK(arith_plain)->Arg(20000)->Arg(200000)->UseManualTime();
BENCHMARK(arith_logging)->Arg(20000)->Arg(200000)->UseManualTime();
BENCHMARK(arith_fulltrace)->Arg(20000)->UseManualTime();

BENCHMARK(calls_plain)->Arg(12)->Arg(16)->UseManualTime();
BENCHMARK(calls_logging)->Arg(12)->UseManualTime();
BENCHMARK(calls_fulltrace)->Arg(12)->UseManualTime();

BENCHMARK(array_plain)->Arg(100)->Arg(1000)->UseManualTime();
BENCHMARK(array_logging)->Arg(100)->Arg(1000)->UseManualTime();
BENCHMARK(array_fulltrace)->Arg(100)->UseManualTime();

// (units, inner loop iterations): compute rows are 32 e-blocks of ~2.2k
// mostly-arithmetic instructions each; interval rows are the E8b shape
// (60 short-statement iterations per unit), shared with bench_flowback.
BENCHMARK(replay_compute_legacy)->Args({32, 40});
BENCHMARK(replay_compute_decoded)->Args({32, 40});
BENCHMARK(replay_compute_jit)->Args({32, 40});
BENCHMARK(replay_interval_legacy)->Args({32, 60});
BENCHMARK(replay_interval_decoded)->Args({32, 60});
BENCHMARK(replay_interval_jit)->Args({32, 60});
BENCHMARK(replay_jit_cold)->Args({32, 40});

BENCHMARK_MAIN();
