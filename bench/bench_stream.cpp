//===- bench/bench_stream.cpp - Experiment E12 ----------------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// E12 measures live attach (DESIGN.md §13) off the socket — the sealer,
// the credit loop, and the ingest path are the variables, kernel buffers
// are not:
//
//   * `stream_ingest/<W>` — a traced run streams consistent cuts through
//     a bounded hand-off queue of depth W (the credit window) into an
//     IngestRegistry drained by one server thread. The tracer blocks at
//     zero credit exactly as the socket client does. Counters: ingest
//     MB/s, cuts, and StallPct — the share of tracer wall-clock spent
//     blocked on credit. Growing W should push StallPct toward zero;
//     that curve is the experiment.
//   * `tail_query_warm` — repeated TailQuery against a live stream's
//     frontier snapshot (cached per frontier version).
//   * `batch_query_warm` — the same query against a warm batch
//     DebugSession over the final log: the baseline for the acceptance
//     bound (tail within 2x of warm batch).
//
//===----------------------------------------------------------------------===//

#include "BenchPrograms.h"

#include "core/DebugSession.h"
#include "log/ProgramDb.h"
#include "server/DebugServer.h"
#include "stream/Ingest.h"
#include "stream/StreamClient.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

using namespace ppd;
using namespace ppd::bench;

namespace {

std::string streamWorkload() { return mixedWorkload(6, 60); }

/// A DebugServer + IngestRegistry pair over one registered program.
struct IngestRig {
  DebugServer Server;
  stream::IngestRegistry Ingest;
  std::unique_ptr<CompiledProgram> Prog; ///< tracer-side compile.
  uint32_t ProgramIndex = 0;
  uint64_t Hash = 0;

  explicit IngestRig(stream::IngestOptions Options = {})
      : Ingest(Server, std::move(Options)) {
    Prog = mustCompile(streamWorkload());
    auto SrvProg = mustCompile(streamWorkload());
    Hash = programHash(*SrvProg);
    ProgramIndex = Server.addProgram(std::move(SrvProg), ExecutionLog());
  }

  uint64_t hello() {
    Request Req;
    Req.Type = MsgType::StreamHello;
    Req.ProgramIndex = ProgramIndex;
    Req.ProgramHash = Hash;
    Response Resp = Ingest.dispatch(Req);
    if (Resp.Type != RespType::Ack) {
      std::fprintf(stderr, "benchmark stream hello failed\n");
      std::abort();
    }
    return Resp.StreamId;
  }
};

/// Bounded frame hand-off modeling the credit loop: capacity = the credit
/// window, producer blocks at zero credit (timing the stall), a server
/// thread drains into the registry.
struct CreditQueue {
  explicit CreditQueue(size_t Window) : Window(Window) {}

  /// Returns microseconds spent blocked waiting for credit.
  uint64_t push(Request Frame) {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Frames.size() < Window) {
      Frames.push_back(std::move(Frame));
      Cv.notify_all();
      return 0;
    }
    auto T0 = std::chrono::steady_clock::now();
    Cv.wait(Lock, [&] { return Frames.size() < Window; });
    Frames.push_back(std::move(Frame));
    Cv.notify_all();
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - T0)
                        .count());
  }

  void close() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
    Cv.notify_all();
  }

  bool pop(Request &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return !Frames.empty() || Closed; });
    if (Frames.empty())
      return false;
    Out = std::move(Frames.front());
    Frames.pop_front();
    Cv.notify_all();
    return true;
  }

  size_t Window;
  std::mutex Mutex;
  std::condition_variable Cv;
  std::deque<Request> Frames;
  bool Closed = false;
};

/// One streamed run through a window-W credit loop. Returns the tracer's
/// stall micros; Bytes/Cuts report the ingest volume.
struct StreamedRunStats {
  uint64_t StallMicros = 0;
  uint64_t Bytes = 0;
  uint64_t Cuts = 0;
  uint64_t Sid = 0;
};

StreamedRunStats streamOnce(IngestRig &Rig, uint32_t Window,
                            uint32_t SectionRecords) {
  StreamedRunStats Stats;
  Stats.Sid = Rig.hello();

  stream::SealerOptions SOpts;
  SOpts.ProgramIndex = Rig.ProgramIndex;
  SOpts.ProgramHash = Rig.Hash;
  SOpts.SectionRecords = SectionRecords;
  stream::StreamSealer Sealer(SOpts);
  Sealer.setStreamId(Stats.Sid);

  CreditQueue Queue(Window);
  std::thread Drainer([&] {
    Request Frame;
    while (Queue.pop(Frame)) {
      Response Resp = Rig.Ingest.dispatch(Frame);
      if (Resp.Type != RespType::Ack) {
        std::fprintf(stderr, "benchmark ingest rejected a frame: %s\n",
                     Resp.Text.c_str());
        std::abort();
      }
    }
  });

  auto Ship = [&](std::vector<Request> Frames) {
    for (Request &Fr : Frames) {
      Stats.Bytes += Fr.Blob.size();
      if (Fr.Flags & SectionLastInCut)
        ++Stats.Cuts;
      Stats.StallMicros += Queue.push(std::move(Fr));
    }
  };

  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Rig.Prog, MOpts);
  M.onRound([&](Machine &Mach) { Ship(Sealer.sealRound(Mach.log())); });
  M.run();
  Ship(Sealer.sealRound(M.log(), /*Force=*/true));
  Ship({Sealer.endFrame(M.log())});
  Queue.close();
  Drainer.join();
  return Stats;
}

/// Ingest throughput and tracer stall share as a function of the credit
/// window — the E12 curve.
void stream_ingest(benchmark::State &State) {
  uint32_t Window = uint32_t(State.range(0));
  uint64_t Bytes = 0, Cuts = 0, StallMicros = 0, WallMicros = 0;
  for (auto _ : State) {
    IngestRig Rig;
    auto T0 = std::chrono::steady_clock::now();
    StreamedRunStats Stats = streamOnce(Rig, Window, /*SectionRecords=*/8);
    WallMicros += uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - T0)
                               .count());
    Bytes += Stats.Bytes;
    Cuts += Stats.Cuts;
    StallMicros += Stats.StallMicros;
  }
  State.SetBytesProcessed(int64_t(Bytes));
  State.counters["Window"] = double(Window);
  State.counters["Cuts"] = double(Cuts) / double(State.iterations());
  State.counters["StallPct"] =
      WallMicros ? 100.0 * double(StallMicros) / double(WallMicros) : 0.0;
}

/// Tail query against the cached frontier snapshot of an ended stream.
void tail_query_warm(benchmark::State &State) {
  IngestRig Rig;
  StreamedRunStats Stats = streamOnce(Rig, /*Window=*/8, /*SectionRecords=*/8);
  Request Req;
  Req.Type = MsgType::TailQuery;
  Req.StreamId = Stats.Sid;
  Req.Command = "where 0";
  // First query builds the snapshot; timed iterations hit it warm — the
  // apples-to-apples partner of batch_query_warm.
  Response First = Rig.Ingest.dispatch(Req);
  if (First.Type != RespType::Result) {
    std::fprintf(stderr, "benchmark tail query failed\n");
    std::abort();
  }
  for (auto _ : State) {
    Response Resp = Rig.Ingest.dispatch(Req);
    benchmark::DoNotOptimize(Resp.Text.data());
  }
  State.SetItemsProcessed(State.iterations());
}

/// The batch baseline: the same query against a warm DebugSession over
/// the equivalent batch log.
void batch_query_warm(benchmark::State &State) {
  auto Prog = mustCompile(streamWorkload());
  MachineOptions MOpts;
  MOpts.Seed = 11;
  Machine M(*Prog, MOpts);
  M.run();
  PpdController Controller(*Prog, M.takeLog());
  DebugSession Session(*Prog, Controller);
  std::string First = Session.execute("where 0"); // warm caches
  benchmark::DoNotOptimize(First.data());
  for (auto _ : State) {
    std::string Text = Session.execute("where 0");
    benchmark::DoNotOptimize(Text.data());
  }
  State.SetItemsProcessed(State.iterations());
}

} // namespace

BENCHMARK(stream_ingest)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(tail_query_warm);
BENCHMARK(batch_query_warm);

BENCHMARK_MAIN();
