//===- lang/AstPrinter.h - PPL pretty printer -------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ASTs back to PPL source text. Used by tests (parse/print
/// round-trip stability) and by the debugger UI to show program text next
/// to dependence-graph nodes (the paper's §7 interface requirement).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LANG_ASTPRINTER_H
#define PPD_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace ppd {

/// Pretty-prints PPL ASTs with 2-space indentation.
class AstPrinter {
public:
  /// Renders a whole program.
  std::string print(const Program &P);

  /// Renders one expression.
  std::string print(const Expr &E);

  /// Renders one statement (with trailing newline).
  std::string print(const Stmt &S);

  /// One-line summary of a statement, e.g. `d = SubD(a, b, a + b + c)`; used
  /// as dependence-graph node labels.
  static std::string summarize(const Stmt &S);

private:
  void printStmt(const Stmt &S, unsigned Indent, std::string &Out);
  void printExpr(const Expr &E, std::string &Out);
  void indentTo(unsigned Indent, std::string &Out);
};

} // namespace ppd

#endif // PPD_LANG_ASTPRINTER_H
