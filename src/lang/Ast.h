//===- lang/Ast.h - PPL abstract syntax trees -------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for PPL. Statements carry dense per-program ids
/// (StmtId) assigned at parse time; these ids are the node identities of the
/// static and dynamic program dependence graphs (paper §4) and the targets
/// of the program database. Name references carry resolution slots (VarId,
/// function pointers, semaphore/channel ids) that semantic analysis fills
/// in; the slots are InvalidId until then.
///
/// The hierarchy uses LLVM-style kind discriminators with isa/cast/dyn_cast
/// helpers instead of C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LANG_AST_H
#define PPD_LANG_AST_H

#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ppd {

using StmtId = uint32_t;
using VarId = uint32_t;
/// Sentinel for unresolved/absent ids.
inline constexpr uint32_t InvalidId = ~0u;

class FuncDecl;

//===----------------------------------------------------------------------===//
// Casting helpers
//===----------------------------------------------------------------------===//

/// Minimal isa/cast/dyn_cast over nodes exposing `getKind()` and a static
/// `ClassKind`. (We deliberately mirror LLVM's opt-in RTTI style.)
template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa on null node");
  return Node->getKind() == To::ClassKind;
}

template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> To *dyn_cast(From *Node) {
  return isa<To>(Node) ? static_cast<To *>(Node) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  VarRef,
  ArrayIndex,
  Unary,
  Binary,
  Call,
  Recv,
  Input,
};

class Expr {
public:
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::IntLit;
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(ClassKind, Loc), Value(Value) {}

  int64_t Value;
};

/// A reference to a scalar variable (local, parameter, or global).
class VarRefExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::VarRef;
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(ClassKind, Loc), Name(std::move(Name)) {}

  std::string Name;
  VarId Var = InvalidId; // filled by sema
};

/// `a[i]` — PPL arrays are 1-D with a compile-time size.
class ArrayIndexExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::ArrayIndex;
  ArrayIndexExpr(std::string Name, ExprPtr Index, SourceLoc Loc)
      : Expr(ClassKind, Loc), Name(std::move(Name)), Index(std::move(Index)) {}

  std::string Name;
  ExprPtr Index;
  VarId Var = InvalidId; // filled by sema
};

enum class UnaryOp { Neg, Not };

class UnaryExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::Unary;
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(ClassKind, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp Op;
  ExprPtr Operand;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, // short-circuiting
  Or,  // short-circuiting
};

/// Spelling of a binary operator ("+", "==" ...), for printing.
const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::Binary;
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(ClassKind, Loc), Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {
  }

  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

/// Built-in pure functions usable in expressions. `sqrt` is the integer
/// square root from the paper's Fig 4.1 example.
enum class Builtin { None, Sqrt, Abs, Min, Max };

/// A call `f(a, b)` to a user function or a pure builtin. Calls may appear
/// in expressions (value used) or as expression statements (value dropped).
class CallExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::Call;
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ClassKind, Loc), Callee(std::move(Callee)), Args(std::move(Args)) {
  }

  std::string Callee;
  std::vector<ExprPtr> Args;
  FuncDecl *ResolvedFunc = nullptr;  // filled by sema (user functions)
  Builtin BuiltinKind = Builtin::None; // or one of the builtins
};

/// `recv(c)` — receives the next message from channel c; blocks when empty.
class RecvExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::Recv;
  RecvExpr(std::string Channel, SourceLoc Loc)
      : Expr(ClassKind, Loc), Channel(std::move(Channel)) {}

  std::string Channel;
  uint32_t Chan = InvalidId; // filled by sema
};

/// `input()` — reads the next value of the process's input stream. Input
/// values are always logged (paper §3.2.2: replay uses "the same input as
/// originally fed to the program").
class InputExpr : public Expr {
public:
  static constexpr ExprKind ClassKind = ExprKind::Input;
  explicit InputExpr(SourceLoc Loc) : Expr(ClassKind, Loc) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  VarDecl,
  Assign,
  If,
  While,
  For,
  Return,
  Expr, // call whose value is discarded
  P,
  V,
  Send,
  Spawn,
  Print,
};

class Stmt {
public:
  virtual ~Stmt() = default;

  StmtKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }

  /// Dense per-program id; index into Program::Stmts.
  StmtId Id = InvalidId;

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Block;
  explicit BlockStmt(SourceLoc Loc) : Stmt(ClassKind, Loc) {}

  std::vector<StmtPtr> Body;
};

/// `int x = e;` or `int a[n];` — declares a function-local variable.
class VarDeclStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::VarDecl;
  VarDeclStmt(std::string Name, int64_t ArraySize, ExprPtr Init, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Name(std::move(Name)), ArraySize(ArraySize),
        Init(std::move(Init)) {}

  std::string Name;
  int64_t ArraySize; // -1 for scalars
  ExprPtr Init;      // may be null
  VarId Var = InvalidId;

  bool isArray() const { return ArraySize >= 0; }
};

/// `x = e;` or `a[i] = e;`.
class AssignStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Assign;
  AssignStmt(std::string Name, ExprPtr Index, ExprPtr Value, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Name(std::move(Name)), Index(std::move(Index)),
        Value(std::move(Value)) {}

  std::string Name;
  ExprPtr Index; // null for scalar targets
  ExprPtr Value;
  VarId Var = InvalidId;
};

class IfStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::If;
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // may be null
};

class WhileStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::While;
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  ExprPtr Cond;
  StmtPtr Body;
};

/// `for (init; cond; step) body` — init and step are assignments.
class ForStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::For;
  ForStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(ClassKind, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  StmtPtr Init; // may be null; AssignStmt or VarDeclStmt
  ExprPtr Cond; // may be null (infinite loop)
  StmtPtr Step; // may be null; AssignStmt
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Return;
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Value(std::move(Value)) {}

  ExprPtr Value; // may be null
};

/// A call evaluated for effect only, e.g. `update(x);`.
class ExprStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Expr;
  ExprStmt(ExprPtr Callee, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Call(std::move(Callee)) {}

  ExprPtr Call; // always a CallExpr after parsing
};

/// `P(s);` — semaphore wait.
class PStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::P;
  PStmt(std::string Sem, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Sem(std::move(Sem)) {}

  std::string Sem;
  uint32_t SemId = InvalidId;
};

/// `V(s);` — semaphore signal.
class VStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::V;
  VStmt(std::string Sem, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Sem(std::move(Sem)) {}

  std::string Sem;
  uint32_t SemId = InvalidId;
};

/// `send(c, e);` — enqueues a message. On a capacity-0 channel the sender
/// blocks until the receiver takes the message (the paper's blocking send,
/// Fig 6.1 nodes n3/n4/n5); on a bounded channel it blocks only when full.
class SendStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Send;
  SendStmt(std::string Channel, ExprPtr Value, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Channel(std::move(Channel)),
        Value(std::move(Value)) {}

  std::string Channel;
  ExprPtr Value;
  uint32_t Chan = InvalidId;
};

/// `spawn f(a, b);` — creates a co-operating process running f.
class SpawnStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Spawn;
  SpawnStmt(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Callee(std::move(Callee)), Args(std::move(Args)) {
  }

  std::string Callee;
  std::vector<ExprPtr> Args;
  FuncDecl *ResolvedFunc = nullptr;
};

/// `print(e);` — the externally visible output where failures are observed.
class PrintStmt : public Stmt {
public:
  static constexpr StmtKind ClassKind = StmtKind::Print;
  PrintStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(ClassKind, Loc), Value(std::move(Value)) {}

  ExprPtr Value;
};

//===----------------------------------------------------------------------===//
// Declarations and the program
//===----------------------------------------------------------------------===//

struct Param {
  std::string Name;
  SourceLoc Loc;
  VarId Var = InvalidId;
};

class FuncDecl {
public:
  FuncDecl(std::string Name, std::vector<Param> Params,
           std::unique_ptr<BlockStmt> Body, SourceLoc Loc)
      : Name(std::move(Name)), Params(std::move(Params)),
        Body(std::move(Body)), Loc(Loc) {}

  std::string Name;
  std::vector<Param> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
  /// Dense index within Program::Funcs.
  uint32_t Index = InvalidId;
};

/// A top-level variable. `shared` globals live in the simulated shared
/// memory and are visible to all processes; plain globals are per-process
/// (each spawned process starts from the initializers).
struct GlobalDecl {
  std::string Name;
  bool Shared = false;
  int64_t ArraySize = -1; // -1 for scalars
  int64_t Init = 0;
  SourceLoc Loc;
  VarId Var = InvalidId;

  bool isArray() const { return ArraySize >= 0; }
};

/// `sem s = n;` — counting semaphore; always shared.
struct SemDecl {
  std::string Name;
  int64_t Init = 0;
  SourceLoc Loc;
  uint32_t Id = InvalidId;
};

/// `chan c[n];` — FIFO message channel with capacity n (0 = blocking send).
struct ChanDecl {
  std::string Name;
  int64_t Capacity = 0;
  SourceLoc Loc;
  uint32_t Id = InvalidId;
};

/// One parsed PPL compilation unit plus its statement table. The statement
/// table gives every Stmt a dense id so later phases can use flat arrays.
class Program {
public:
  std::vector<GlobalDecl> Globals;
  std::vector<SemDecl> Sems;
  std::vector<ChanDecl> Chans;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  /// All statements, indexed by StmtId.
  std::vector<Stmt *> Stmts;

  /// Registers \p S in the statement table, assigning its id.
  void registerStmt(Stmt *S) {
    assert(S && "registering null statement");
    S->Id = StmtId(Stmts.size());
    Stmts.push_back(S);
  }

  Stmt *stmt(StmtId Id) const {
    assert(Id < Stmts.size() && "statement id out of range");
    return Stmts[Id];
  }

  /// Finds a function by name, or null.
  FuncDecl *findFunc(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }

  unsigned numStmts() const { return unsigned(Stmts.size()); }
};

} // namespace ppd

#endif // PPD_LANG_AST_H
