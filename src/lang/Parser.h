//===- lang/Parser.h - PPL parser -------------------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a Program. On syntax errors the
/// parser reports a diagnostic and synchronizes at statement boundaries, so
/// one run reports as many independent errors as possible. parseProgram
/// returns null iff any error was emitted.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LANG_PARSER_H
#define PPD_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace ppd {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole compilation unit. Returns null if any diagnostics of
  /// error severity were emitted.
  std::unique_ptr<Program> parseProgram();

  /// Convenience: lex + parse \p Source in one call.
  static std::unique_ptr<Program> parse(const std::string &Source,
                                        DiagnosticEngine &Diags);

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &previous() const;
  Token advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeStmt();
  void synchronizeTop();

  // Top-level declarations.
  void parseTopDecl(Program &P);
  void parseGlobal(Program &P, bool Shared);
  void parseSem(Program &P);
  void parseChan(Program &P);
  void parseFunc(Program &P);

  // Statements. All returned statements are registered in the program's
  // statement table.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseSimpleAssign(const char *Context); // no trailing ';'
  StmtPtr parseAssignOrCallStmt();

  // Expressions by precedence.
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  Program *Prog = nullptr;
};

} // namespace ppd

#endif // PPD_LANG_PARSER_H
