//===- lang/AstPrinter.cpp ------------------------------------------------===//
//
// Part of PPD. See AstPrinter.h.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

using namespace ppd;

void AstPrinter::indentTo(unsigned Indent, std::string &Out) {
  Out.append(Indent * 2, ' ');
}

void AstPrinter::printExpr(const Expr &E, std::string &Out) {
  switch (E.getKind()) {
  case ExprKind::IntLit:
    Out += std::to_string(cast<IntLitExpr>(&E)->Value);
    return;
  case ExprKind::VarRef:
    Out += cast<VarRefExpr>(&E)->Name;
    return;
  case ExprKind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(&E);
    Out += A->Name;
    Out += '[';
    printExpr(*A->Index, Out);
    Out += ']';
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Out += U->Op == UnaryOp::Neg ? "-" : "!";
    bool Paren = U->Operand->getKind() == ExprKind::Binary;
    if (Paren)
      Out += '(';
    printExpr(*U->Operand, Out);
    if (Paren)
      Out += ')';
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    auto PrintSide = [&](const Expr &Side) {
      bool Paren = Side.getKind() == ExprKind::Binary;
      if (Paren)
        Out += '(';
      printExpr(Side, Out);
      if (Paren)
        Out += ')';
    };
    PrintSide(*B->Lhs);
    Out += ' ';
    Out += binaryOpSpelling(B->Op);
    Out += ' ';
    PrintSide(*B->Rhs);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    Out += C->Callee;
    Out += '(';
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (I)
        Out += ", ";
      printExpr(*C->Args[I], Out);
    }
    Out += ')';
    return;
  }
  case ExprKind::Recv:
    Out += "recv(";
    Out += cast<RecvExpr>(&E)->Channel;
    Out += ')';
    return;
  case ExprKind::Input:
    Out += "input()";
    return;
  }
}

void AstPrinter::printStmt(const Stmt &S, unsigned Indent, std::string &Out) {
  switch (S.getKind()) {
  case StmtKind::Block: {
    indentTo(Indent, Out);
    Out += "{\n";
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->Body)
      printStmt(*Child, Indent + 1, Out);
    indentTo(Indent, Out);
    Out += "}\n";
    return;
  }
  case StmtKind::VarDecl: {
    const auto *D = cast<VarDeclStmt>(&S);
    indentTo(Indent, Out);
    Out += "int ";
    Out += D->Name;
    if (D->isArray()) {
      Out += '[';
      Out += std::to_string(D->ArraySize);
      Out += ']';
    }
    if (D->Init) {
      Out += " = ";
      printExpr(*D->Init, Out);
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    indentTo(Indent, Out);
    Out += A->Name;
    if (A->Index) {
      Out += '[';
      printExpr(*A->Index, Out);
      Out += ']';
    }
    Out += " = ";
    printExpr(*A->Value, Out);
    Out += ";\n";
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    indentTo(Indent, Out);
    Out += "if (";
    printExpr(*I->Cond, Out);
    Out += ")\n";
    printStmt(*I->Then, Indent + 1, Out);
    if (I->Else) {
      indentTo(Indent, Out);
      Out += "else\n";
      printStmt(*I->Else, Indent + 1, Out);
    }
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(&S);
    indentTo(Indent, Out);
    Out += "while (";
    printExpr(*W->Cond, Out);
    Out += ")\n";
    printStmt(*W->Body, Indent + 1, Out);
    return;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    indentTo(Indent, Out);
    Out += "for (";
    if (F->Init)
      Out += summarize(*F->Init);
    Out += "; ";
    if (F->Cond)
      printExpr(*F->Cond, Out);
    Out += "; ";
    if (F->Step)
      Out += summarize(*F->Step);
    Out += ")\n";
    printStmt(*F->Body, Indent + 1, Out);
    return;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    indentTo(Indent, Out);
    Out += "return";
    if (R->Value) {
      Out += ' ';
      printExpr(*R->Value, Out);
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Expr: {
    indentTo(Indent, Out);
    printExpr(*cast<ExprStmt>(&S)->Call, Out);
    Out += ";\n";
    return;
  }
  case StmtKind::P: {
    indentTo(Indent, Out);
    Out += "P(";
    Out += cast<PStmt>(&S)->Sem;
    Out += ");\n";
    return;
  }
  case StmtKind::V: {
    indentTo(Indent, Out);
    Out += "V(";
    Out += cast<VStmt>(&S)->Sem;
    Out += ");\n";
    return;
  }
  case StmtKind::Send: {
    const auto *M = cast<SendStmt>(&S);
    indentTo(Indent, Out);
    Out += "send(";
    Out += M->Channel;
    Out += ", ";
    printExpr(*M->Value, Out);
    Out += ");\n";
    return;
  }
  case StmtKind::Spawn: {
    const auto *Sp = cast<SpawnStmt>(&S);
    indentTo(Indent, Out);
    Out += "spawn ";
    Out += Sp->Callee;
    Out += '(';
    for (size_t I = 0; I != Sp->Args.size(); ++I) {
      if (I)
        Out += ", ";
      printExpr(*Sp->Args[I], Out);
    }
    Out += ");\n";
    return;
  }
  case StmtKind::Print: {
    indentTo(Indent, Out);
    Out += "print(";
    printExpr(*cast<PrintStmt>(&S)->Value, Out);
    Out += ");\n";
    return;
  }
  }
}

std::string AstPrinter::print(const Expr &E) {
  std::string Out;
  printExpr(E, Out);
  return Out;
}

std::string AstPrinter::print(const Stmt &S) {
  std::string Out;
  printStmt(S, 0, Out);
  return Out;
}

std::string AstPrinter::print(const Program &P) {
  std::string Out;
  for (const GlobalDecl &G : P.Globals) {
    if (G.Shared)
      Out += "shared ";
    Out += "int ";
    Out += G.Name;
    if (G.isArray()) {
      Out += '[';
      Out += std::to_string(G.ArraySize);
      Out += ']';
    }
    if (G.Init != 0) {
      Out += " = ";
      Out += std::to_string(G.Init);
    }
    Out += ";\n";
  }
  for (const SemDecl &S : P.Sems) {
    Out += "sem ";
    Out += S.Name;
    if (S.Init != 0) {
      Out += " = ";
      Out += std::to_string(S.Init);
    }
    Out += ";\n";
  }
  for (const ChanDecl &C : P.Chans) {
    Out += "chan ";
    Out += C.Name;
    if (C.Capacity != 0) {
      Out += '[';
      Out += std::to_string(C.Capacity);
      Out += ']';
    }
    Out += ";\n";
  }
  for (const auto &F : P.Funcs) {
    Out += "func ";
    Out += F->Name;
    Out += '(';
    for (size_t I = 0; I != F->Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "int ";
      Out += F->Params[I].Name;
    }
    Out += ")\n";
    printStmt(*F->Body, 0, Out);
  }
  return Out;
}

std::string AstPrinter::summarize(const Stmt &S) {
  AstPrinter Printer;
  switch (S.getKind()) {
  case StmtKind::Block:
    return "{...}";
  case StmtKind::VarDecl: {
    const auto *D = cast<VarDeclStmt>(&S);
    std::string Out = "int " + D->Name;
    if (D->Init) {
      Out += " = ";
      Out += Printer.print(*D->Init);
    }
    return Out;
  }
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    std::string Out = A->Name;
    if (A->Index)
      Out += "[" + Printer.print(*A->Index) + "]";
    Out += " = " + Printer.print(*A->Value);
    return Out;
  }
  case StmtKind::If:
    return "if (" + Printer.print(*cast<IfStmt>(&S)->Cond) + ")";
  case StmtKind::While:
    return "while (" + Printer.print(*cast<WhileStmt>(&S)->Cond) + ")";
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    return "for (...; " + (F->Cond ? Printer.print(*F->Cond) : "") + "; ...)";
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    return R->Value ? "return " + Printer.print(*R->Value) : "return";
  }
  case StmtKind::Expr:
    return Printer.print(*cast<ExprStmt>(&S)->Call);
  case StmtKind::P:
    return "P(" + cast<PStmt>(&S)->Sem + ")";
  case StmtKind::V:
    return "V(" + cast<VStmt>(&S)->Sem + ")";
  case StmtKind::Send: {
    const auto *M = cast<SendStmt>(&S);
    return "send(" + M->Channel + ", " + Printer.print(*M->Value) + ")";
  }
  case StmtKind::Spawn:
    return "spawn " + cast<SpawnStmt>(&S)->Callee + "(...)";
  case StmtKind::Print:
    return "print(" + Printer.print(*cast<PrintStmt>(&S)->Value) + ")";
  }
  return "?";
}
