//===- lang/Ast.cpp -------------------------------------------------------===//
//
// Part of PPD. See Ast.h.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace ppd;

const char *ppd::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}
