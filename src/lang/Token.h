//===- lang/Token.h - PPL tokens --------------------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for PPL, the small C-like parallel language PPD debugs. PPL
/// plays the role of the C dialect in the paper: sequential core (ints,
/// arrays, functions, control flow) plus the parallel constructs the paper's
/// §5/§6 analyses target — `shared` variables, semaphores with P/V,
/// message channels with send/recv, and `spawn`.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LANG_TOKEN_H
#define PPD_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace ppd {

enum class TokenKind {
  // Literals and identifiers.
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwFunc,
  KwInt,
  KwShared,
  KwSem,
  KwChan,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwSpawn,
  KwSend,
  KwRecv,
  KwPrint,
  KwInput,
  KwP,
  KwV,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,

  // Operators.
  Assign,    // =
  Plus,      // +
  Minus,     // -
  Star,      // *
  Slash,     // /
  Percent,   // %
  EqEq,      // ==
  NotEq,     // !=
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  AmpAmp,    // &&
  PipePipe,  // ||
  Bang,      // !
};

/// Human-readable spelling of a token kind, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text is only meaningful for identifiers; Value only for
/// integer literals.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t Value = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace ppd

#endif // PPD_LANG_TOKEN_H
