//===- lang/Lexer.h - PPL lexer ---------------------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for PPL. Comments are `//` to end of line and
/// `/* ... */`. Unknown characters produce a diagnostic and are skipped so
/// that the parser always sees a well-formed stream terminated by Eof.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LANG_LEXER_H
#define PPD_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace ppd {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the next token (Eof forever once exhausted).
  Token lex();

  /// Lexes the entire buffer; the last element is always Eof.
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  SourceLoc here() const { return SourceLoc(Line, Column); }

  Token makeToken(TokenKind Kind, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace ppd

#endif // PPD_LANG_LEXER_H
