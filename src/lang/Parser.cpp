//===- lang/Parser.cpp ----------------------------------------------------===//
//
// Part of PPD. See Parser.h.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

using namespace ppd;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  // The lexer always Eof-terminates its stream, but hand-built or truncated
  // token vectors reach this constructor too (fuzzers, embedders). A missing
  // terminator must not be undefined behavior in release builds: append a
  // synthetic Eof at the last known location so every peek() stays in
  // bounds and parsing fails with ordinary diagnostics instead.
  if (this->Tokens.empty() || !this->Tokens.back().is(TokenKind::Eof)) {
    Token Eof;
    Eof.Kind = TokenKind::Eof;
    if (!this->Tokens.empty())
      Eof.Loc = this->Tokens.back().Loc;
    this->Tokens.push_back(Eof);
  }
}

std::unique_ptr<Program> Parser::parse(const std::string &Source,
                                       DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseProgram();
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
  return Tokens[Index];
}

const Token &Parser::previous() const {
  // Callers only ask for the previous token after a successful match, but
  // malformed input can reach error paths before anything was consumed;
  // answer with the current token rather than indexing out of bounds.
  return Tokens[Pos > 0 ? Pos - 1 : 0];
}

Token Parser::advance() {
  Token T = peek();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(Kind) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return false;
}

/// Skips tokens until a likely statement boundary so parsing can continue.
void Parser::synchronizeStmt() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semicolon))
      return;
    switch (peek().Kind) {
    case TokenKind::RBrace:
    case TokenKind::KwIf:
    case TokenKind::KwWhile:
    case TokenKind::KwFor:
    case TokenKind::KwReturn:
    case TokenKind::KwFunc:
      return;
    default:
      advance();
    }
  }
}

void Parser::synchronizeTop() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwFunc) &&
         !check(TokenKind::KwInt) && !check(TokenKind::KwShared) &&
         !check(TokenKind::KwSem) && !check(TokenKind::KwChan))
    advance();
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto P = std::make_unique<Program>();
  Prog = P.get();
  while (!check(TokenKind::Eof)) {
    unsigned Before = Diags.errorCount();
    parseTopDecl(*P);
    if (Diags.errorCount() != Before)
      synchronizeTop();
  }
  Prog = nullptr;
  if (Diags.hasErrors())
    return nullptr;
  return P;
}

void Parser::parseTopDecl(Program &P) {
  if (match(TokenKind::KwShared)) {
    if (!expect(TokenKind::KwInt, "after 'shared'"))
      return;
    parseGlobal(P, /*Shared=*/true);
    return;
  }
  if (match(TokenKind::KwInt)) {
    parseGlobal(P, /*Shared=*/false);
    return;
  }
  if (match(TokenKind::KwSem)) {
    parseSem(P);
    return;
  }
  if (match(TokenKind::KwChan)) {
    parseChan(P);
    return;
  }
  if (match(TokenKind::KwFunc)) {
    parseFunc(P);
    return;
  }
  Diags.error(peek().Loc,
              std::string("expected a top-level declaration, found ") +
                  tokenKindName(peek().Kind));
  advance();
}

void Parser::parseGlobal(Program &P, bool Shared) {
  GlobalDecl G;
  G.Shared = Shared;
  G.Loc = peek().Loc;
  if (!expect(TokenKind::Identifier, "in global declaration"))
    return;
  G.Name = previous().Text;
  if (match(TokenKind::LBracket)) {
    if (!expect(TokenKind::IntLiteral, "as array size"))
      return;
    G.ArraySize = previous().Value;
    if (G.ArraySize <= 0)
      Diags.error(previous().Loc, "array size must be positive");
    if (!expect(TokenKind::RBracket, "after array size"))
      return;
  }
  if (match(TokenKind::Assign)) {
    bool Negative = match(TokenKind::Minus);
    if (!expect(TokenKind::IntLiteral, "as global initializer"))
      return;
    G.Init = Negative ? -previous().Value : previous().Value;
    if (G.isArray())
      Diags.error(previous().Loc,
                  "array globals cannot have scalar initializers");
  }
  expect(TokenKind::Semicolon, "after global declaration");
  P.Globals.push_back(std::move(G));
}

void Parser::parseSem(Program &P) {
  SemDecl S;
  S.Loc = peek().Loc;
  if (!expect(TokenKind::Identifier, "in semaphore declaration"))
    return;
  S.Name = previous().Text;
  if (match(TokenKind::Assign)) {
    if (!expect(TokenKind::IntLiteral, "as semaphore initial value"))
      return;
    S.Init = previous().Value;
    if (S.Init < 0)
      Diags.error(previous().Loc, "semaphore initial value must be >= 0");
  }
  expect(TokenKind::Semicolon, "after semaphore declaration");
  P.Sems.push_back(std::move(S));
}

void Parser::parseChan(Program &P) {
  ChanDecl C;
  C.Loc = peek().Loc;
  if (!expect(TokenKind::Identifier, "in channel declaration"))
    return;
  C.Name = previous().Text;
  if (match(TokenKind::LBracket)) {
    if (!expect(TokenKind::IntLiteral, "as channel capacity"))
      return;
    C.Capacity = previous().Value;
    if (C.Capacity < 0)
      Diags.error(previous().Loc, "channel capacity must be >= 0");
    if (!expect(TokenKind::RBracket, "after channel capacity"))
      return;
  }
  expect(TokenKind::Semicolon, "after channel declaration");
  P.Chans.push_back(std::move(C));
}

void Parser::parseFunc(Program &P) {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokenKind::Identifier, "as function name"))
    return;
  std::string Name = previous().Text;

  std::vector<Param> Params;
  if (!expect(TokenKind::LParen, "after function name"))
    return;
  if (!check(TokenKind::RParen)) {
    do {
      if (!expect(TokenKind::KwInt, "before parameter name"))
        return;
      if (!expect(TokenKind::Identifier, "as parameter name"))
        return;
      Params.push_back({previous().Text, previous().Loc, InvalidId});
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameter list"))
    return;

  if (!check(TokenKind::LBrace)) {
    Diags.error(peek().Loc, "expected '{' to begin function body");
    return;
  }
  StmtPtr Body = parseBlock();
  auto *BodyBlock = cast<BlockStmt>(Body.release());
  P.Funcs.push_back(std::make_unique<FuncDecl>(
      std::move(Name), std::move(Params),
      std::unique_ptr<BlockStmt>(BodyBlock), Loc));
  P.Funcs.back()->Index = uint32_t(P.Funcs.size() - 1);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to begin block");
  auto Block = std::make_unique<BlockStmt>(Loc);
  Prog->registerStmt(Block.get());
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    unsigned Before = Diags.errorCount();
    StmtPtr S = parseStmt();
    if (S)
      Block->Body.push_back(std::move(S));
    if (Diags.errorCount() != Before)
      synchronizeStmt();
  }
  expect(TokenKind::RBrace, "to end block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  switch (peek().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwInt:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwP: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::LParen, "after 'P'");
    expect(TokenKind::Identifier, "as semaphore name");
    std::string Sem = previous().Text;
    expect(TokenKind::RParen, "after semaphore name");
    expect(TokenKind::Semicolon, "after P operation");
    auto S = std::make_unique<PStmt>(std::move(Sem), Loc);
    Prog->registerStmt(S.get());
    return S;
  }
  case TokenKind::KwV: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::LParen, "after 'V'");
    expect(TokenKind::Identifier, "as semaphore name");
    std::string Sem = previous().Text;
    expect(TokenKind::RParen, "after semaphore name");
    expect(TokenKind::Semicolon, "after V operation");
    auto S = std::make_unique<VStmt>(std::move(Sem), Loc);
    Prog->registerStmt(S.get());
    return S;
  }
  case TokenKind::KwSend: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::LParen, "after 'send'");
    expect(TokenKind::Identifier, "as channel name");
    std::string Chan = previous().Text;
    expect(TokenKind::Comma, "after channel name");
    ExprPtr Value = parseExpr();
    expect(TokenKind::RParen, "after message value");
    expect(TokenKind::Semicolon, "after send");
    auto S = std::make_unique<SendStmt>(std::move(Chan), std::move(Value), Loc);
    Prog->registerStmt(S.get());
    return S;
  }
  case TokenKind::KwSpawn: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Identifier, "as spawned function name");
    std::string Callee = previous().Text;
    expect(TokenKind::LParen, "after spawned function name");
    std::vector<ExprPtr> Args = parseArgs();
    expect(TokenKind::RParen, "after spawn arguments");
    expect(TokenKind::Semicolon, "after spawn");
    auto S =
        std::make_unique<SpawnStmt>(std::move(Callee), std::move(Args), Loc);
    Prog->registerStmt(S.get());
    return S;
  }
  case TokenKind::KwPrint: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::LParen, "after 'print'");
    ExprPtr Value = parseExpr();
    expect(TokenKind::RParen, "after print argument");
    expect(TokenKind::Semicolon, "after print");
    auto S = std::make_unique<PrintStmt>(std::move(Value), Loc);
    Prog->registerStmt(S.get());
    return S;
  }
  default:
    return parseAssignOrCallStmt();
  }
}

StmtPtr Parser::parseVarDecl() {
  SourceLoc Loc = advance().Loc; // 'int'
  if (!expect(TokenKind::Identifier, "as variable name"))
    return nullptr;
  std::string Name = previous().Text;
  int64_t ArraySize = -1;
  if (match(TokenKind::LBracket)) {
    if (!expect(TokenKind::IntLiteral, "as array size"))
      return nullptr;
    ArraySize = previous().Value;
    if (ArraySize <= 0)
      Diags.error(previous().Loc, "array size must be positive");
    if (!expect(TokenKind::RBracket, "after array size"))
      return nullptr;
  }
  ExprPtr Init;
  if (match(TokenKind::Assign)) {
    if (ArraySize >= 0)
      Diags.error(previous().Loc, "array locals cannot have initializers");
    Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "after variable declaration");
  auto S = std::make_unique<VarDeclStmt>(std::move(Name), ArraySize,
                                         std::move(Init), Loc);
  Prog->registerStmt(S.get());
  return S;
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  // Register the if node before its children so a predicate's StmtId is
  // smaller than the ids of statements it controls; several analyses rely
  // on parents preceding children in the statement table.
  auto S = std::make_unique<IfStmt>(std::move(Cond), nullptr, nullptr, Loc);
  Prog->registerStmt(S.get());
  S->Then = parseStmt();
  if (match(TokenKind::KwElse))
    S->Else = parseStmt();
  return S;
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  auto S = std::make_unique<WhileStmt>(std::move(Cond), nullptr, Loc);
  Prog->registerStmt(S.get());
  S->Body = parseStmt();
  return S;
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");

  StmtPtr Init;
  if (!check(TokenKind::Semicolon)) {
    if (check(TokenKind::KwInt)) {
      Diags.error(peek().Loc, "declarations are not allowed in for "
                              "initializers; declare before the loop");
      return nullptr;
    }
    Init = parseSimpleAssign("in for initializer");
  }
  expect(TokenKind::Semicolon, "after for initializer");

  ExprPtr Cond;
  if (!check(TokenKind::Semicolon))
    Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for condition");

  StmtPtr Step;
  if (!check(TokenKind::RParen))
    Step = parseSimpleAssign("in for step");
  expect(TokenKind::RParen, "after for clauses");

  auto S = std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), nullptr, Loc);
  Prog->registerStmt(S.get());
  S->Body = parseStmt();
  return S;
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = advance().Loc; // 'return'
  ExprPtr Value;
  if (!check(TokenKind::Semicolon))
    Value = parseExpr();
  expect(TokenKind::Semicolon, "after return");
  auto S = std::make_unique<ReturnStmt>(std::move(Value), Loc);
  Prog->registerStmt(S.get());
  return S;
}

StmtPtr Parser::parseSimpleAssign(const char *Context) {
  if (!expect(TokenKind::Identifier, Context))
    return nullptr;
  SourceLoc Loc = previous().Loc;
  std::string Name = previous().Text;
  ExprPtr Index;
  if (match(TokenKind::LBracket)) {
    Index = parseExpr();
    expect(TokenKind::RBracket, "after array index");
  }
  if (!expect(TokenKind::Assign, Context))
    return nullptr;
  ExprPtr Value = parseExpr();
  auto S = std::make_unique<AssignStmt>(std::move(Name), std::move(Index),
                                        std::move(Value), Loc);
  Prog->registerStmt(S.get());
  return S;
}

StmtPtr Parser::parseAssignOrCallStmt() {
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, std::string("expected a statement, found ") +
                                tokenKindName(peek().Kind));
    advance();
    return nullptr;
  }

  // Distinguish `f(...)` calls from `x = ...` / `a[i] = ...` assignments.
  if (peek(1).is(TokenKind::LParen)) {
    SourceLoc Loc = peek().Loc;
    std::string Callee = advance().Text;
    advance(); // '('
    std::vector<ExprPtr> Args = parseArgs();
    expect(TokenKind::RParen, "after call arguments");
    expect(TokenKind::Semicolon, "after call statement");
    auto Call =
        std::make_unique<CallExpr>(std::move(Callee), std::move(Args), Loc);
    auto S = std::make_unique<ExprStmt>(std::move(Call), Loc);
    Prog->registerStmt(S.get());
    return S;
  }

  StmtPtr S = parseSimpleAssign("in assignment");
  expect(TokenKind::Semicolon, "after assignment");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  while (match(TokenKind::PipePipe)) {
    SourceLoc Loc = previous().Loc;
    ExprPtr Rhs = parseAnd();
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseEquality();
  while (match(TokenKind::AmpAmp)) {
    SourceLoc Loc = previous().Loc;
    ExprPtr Rhs = parseEquality();
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr Lhs = parseComparison();
  for (;;) {
    BinaryOp Op;
    if (match(TokenKind::EqEq))
      Op = BinaryOp::Eq;
    else if (match(TokenKind::NotEq))
      Op = BinaryOp::Ne;
    else
      return Lhs;
    SourceLoc Loc = previous().Loc;
    ExprPtr Rhs = parseComparison();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseComparison() {
  ExprPtr Lhs = parseAdditive();
  for (;;) {
    BinaryOp Op;
    if (match(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (match(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (match(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (match(TokenKind::GreaterEq))
      Op = BinaryOp::Ge;
    else
      return Lhs;
    SourceLoc Loc = previous().Loc;
    ExprPtr Rhs = parseAdditive();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  for (;;) {
    BinaryOp Op;
    if (match(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (match(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return Lhs;
    SourceLoc Loc = previous().Loc;
    ExprPtr Rhs = parseMultiplicative();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    BinaryOp Op;
    if (match(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (match(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (match(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return Lhs;
    SourceLoc Loc = previous().Loc;
    ExprPtr Rhs = parseUnary();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseUnary() {
  if (match(TokenKind::Minus)) {
    SourceLoc Loc = previous().Loc;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  }
  if (match(TokenKind::Bang)) {
    SourceLoc Loc = previous().Loc;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  if (match(TokenKind::IntLiteral))
    return std::make_unique<IntLitExpr>(previous().Value, previous().Loc);

  if (match(TokenKind::LParen)) {
    ExprPtr Inner = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Inner;
  }

  if (match(TokenKind::KwRecv)) {
    SourceLoc Loc = previous().Loc;
    expect(TokenKind::LParen, "after 'recv'");
    expect(TokenKind::Identifier, "as channel name");
    std::string Chan = previous().Text;
    expect(TokenKind::RParen, "after channel name");
    return std::make_unique<RecvExpr>(std::move(Chan), Loc);
  }

  if (match(TokenKind::KwInput)) {
    SourceLoc Loc = previous().Loc;
    expect(TokenKind::LParen, "after 'input'");
    expect(TokenKind::RParen, "after 'input('");
    return std::make_unique<InputExpr>(Loc);
  }

  if (match(TokenKind::Identifier)) {
    SourceLoc Loc = previous().Loc;
    std::string Name = previous().Text;
    if (match(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseArgs();
      expect(TokenKind::RParen, "after call arguments");
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                        Loc);
    }
    if (match(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      return std::make_unique<ArrayIndexExpr>(std::move(Name),
                                              std::move(Index), Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }

  Diags.error(peek().Loc, std::string("expected an expression, found ") +
                              tokenKindName(peek().Kind));
  advance();
  return std::make_unique<IntLitExpr>(0, peek().Loc);
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  if (check(TokenKind::RParen))
    return Args;
  do {
    Args.push_back(parseExpr());
  } while (match(TokenKind::Comma));
  return Args;
}
