//===- lang/Lexer.cpp -----------------------------------------------------===//
//
// Part of PPD. See Lexer.h.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace ppd;

const char *ppd::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwFunc:
    return "'func'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwShared:
    return "'shared'";
  case TokenKind::KwSem:
    return "'sem'";
  case TokenKind::KwChan:
    return "'chan'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwSend:
    return "'send'";
  case TokenKind::KwRecv:
    return "'recv'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwInput:
    return "'input'";
  case TokenKind::KwP:
    return "'P'";
  case TokenKind::KwV:
    return "'V'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  return "unknown";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  int64_t Value = 0;
  bool Overflow = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) {
    int Digit = advance() - '0';
    if (Value > (INT64_MAX - Digit) / 10)
      Overflow = true;
    else
      Value = Value * 10 + Digit;
  }
  if (Overflow)
    Diags.error(Loc, "integer literal does not fit in 64 bits");
  Token T = makeToken(TokenKind::IntLiteral, Loc);
  T.Value = Value;
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"func", TokenKind::KwFunc},     {"int", TokenKind::KwInt},
      {"shared", TokenKind::KwShared}, {"sem", TokenKind::KwSem},
      {"chan", TokenKind::KwChan},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},       {"return", TokenKind::KwReturn},
      {"spawn", TokenKind::KwSpawn},   {"send", TokenKind::KwSend},
      {"recv", TokenKind::KwRecv},     {"print", TokenKind::KwPrint},
      {"input", TokenKind::KwInput},   {"P", TokenKind::KwP},
      {"V", TokenKind::KwV},
  };

  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();

  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc);

  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  SourceLoc Loc = here();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Loc);

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ';':
    return makeToken(TokenKind::Semicolon, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Loc);
  case '=':
    return makeToken(match('=') ? TokenKind::EqEq : TokenKind::Assign, Loc);
  case '!':
    return makeToken(match('=') ? TokenKind::NotEq : TokenKind::Bang, Loc);
  case '<':
    return makeToken(match('=') ? TokenKind::LessEq : TokenKind::Less, Loc);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEq : TokenKind::Greater,
                     Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc);
    Diags.error(Loc, "expected '&&'; PPL has no bitwise operators");
    return lex();
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc);
    Diags.error(Loc, "expected '||'; PPL has no bitwise operators");
    return lex();
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return lex();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(lex());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
