//===- stream/Spill.h - Streamed-ingest spill file --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side durability layer of live attach (DESIGN.md §13): every
/// consistent cut an ingest session applies is appended to a spill file
/// as one length-prefixed chunk and flushed, so a tracer crash — or a
/// server crash — mid-stream loses at most the cut in flight. The chunk
/// payload keeps the SectionData blobs verbatim (the v2 record codec with
/// per-blob delta state), and loadSpill() recovers the longest complete-
/// cut prefix from a truncated file instead of failing.
///
/// When the stream ends, the accumulated log is re-encoded as a canonical
/// v2 log file (ExecutionLog::save, temp + rename). Concatenated blob
/// encodings are *not* byte-identical to whole-section v2 encodings — the
/// sequence-delta state resets per blob — which is why finalization
/// re-encodes instead of splicing: the finalized file is exactly what a
/// batch run would have saved, openable by PageStore and `ppd serve`.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_STREAM_SPILL_H
#define PPD_STREAM_SPILL_H

#include "log/ExecutionLog.h"
#include "log/LogIO.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ppd {
namespace stream {

/// Injectable stand-in for fdatasync/fsync, so tests can count (or fail)
/// sync calls without strace. Takes the fd, returns 0 on success. An
/// empty function means the real thing.
using SyncFn = std::function<int(int Fd)>;

/// fsyncs the file at \p Path (opened read-only for the purpose). Part
/// of the publish-by-rename protocol: the tmp file's bytes must be
/// durable before the rename makes them the canonical name.
bool syncFileDurable(const std::string &Path, const SyncFn &Sync = {});

/// fsyncs \p Path's parent directory, making a completed rename (or the
/// tmp file's dirent) durable. "." when the path has no directory part.
bool syncParentDir(const std::string &Path, const SyncFn &Sync = {});

/// "PPDS" (little-endian), followed by u32 version and the u64 program
/// hash the stream was opened with.
inline constexpr uint32_t SpillMagic = 0x53445050u;
inline constexpr uint32_t SpillVersion = 1;

/// One process's share of a consistent cut: the records appended since
/// the previous cut, as an encoded section blob.
struct SpillSection {
  uint32_t Pid = 0;
  uint32_t FirstRecord = 0; ///< absolute index of the blob's first record.
  std::vector<uint8_t> Blob;
};

struct SpillCut {
  uint64_t CutSeq = 0;
  std::vector<SpillSection> Sections;
};

/// Encodes records [FromRecord, FromRecord + NumRecords) of \p PL as a
/// section blob: varint RootFunc, varint NumArgs, svarint args, varint
/// NumRecords, then the v2 record codec with fresh delta state.
void encodeSectionBlob(const ProcessLog &PL, uint32_t FromRecord,
                       uint32_t NumRecords, std::vector<uint8_t> &Out);

/// Decodes a section blob into \p Out (RootFunc, Args, Records,
/// PrelogCount; Pid is the caller's). False on any malformed byte,
/// including trailing garbage.
bool decodeSectionBlob(const std::vector<uint8_t> &Blob, ProcessLog &Out);

/// Append-only spill writer; one chunk per applied cut, flushed before
/// appendCut returns.
class SpillWriter {
public:
  SpillWriter() = default;
  ~SpillWriter() { close(); }
  SpillWriter(const SpillWriter &) = delete;
  SpillWriter &operator=(const SpillWriter &) = delete;

  /// \p SyncEachCut makes every appendCut fdatasync after its flush (the
  /// `--spill-sync` durability level: an acked cut survives power loss,
  /// not just a process crash). \p Sync overrides the syscall for tests.
  bool open(const std::string &Path, uint64_t ProgramHash,
            bool SyncEachCut = false, SyncFn Sync = {});
  bool isOpen() const { return File != nullptr; }
  const std::string &path() const { return FilePath; }

  /// Appends one cut chunk and flushes (plus fdatasync under
  /// SyncEachCut). False on I/O failure (the file is then unusable; the
  /// caller kills the stream).
  bool appendCut(const SpillCut &Cut);

  /// Bytes appendCut would write for \p Cut — the spill-budget currency,
  /// computable before committing anything.
  static size_t chunkSize(const SpillCut &Cut);

  void close();

private:
  FILE *File = nullptr;
  std::string FilePath;
  bool SyncEachCut = false;
  SyncFn Sync;
};

/// Reads back a spill file: the header's program hash and every
/// *complete* cut chunk. A file truncated mid-chunk (connection drop,
/// crash) yields the intact prefix with \p Truncated set — never a
/// failure — so a spill is openable up to the last sealed cut by
/// construction. False only when the header itself is damaged.
bool loadSpill(const std::string &Path, uint64_t &ProgramHash,
               std::vector<SpillCut> &Cuts, bool *Truncated = nullptr);

/// Replays the first \p NumCuts cuts into an ExecutionLog (no output —
/// that travels only in StreamEnd). The spill-recovery path and the
/// streamed-vs-batch oracle's prefix loads. False on malformed blobs or
/// inconsistent cut bookkeeping.
bool buildLogFromCuts(const std::vector<SpillCut> &Cuts, size_t NumCuts,
                      ExecutionLog &Out);

} // namespace stream
} // namespace ppd

#endif // PPD_STREAM_SPILL_H
