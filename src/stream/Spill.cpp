//===- stream/Spill.cpp ---------------------------------------------------===//
//
// Part of PPD. See Spill.h.
//
//===----------------------------------------------------------------------===//

#include "stream/Spill.h"

#include "log/LogFormatV2.h"

#include <fcntl.h>
#include <unistd.h>

using namespace ppd;
using namespace ppd::stream;

bool stream::syncFileDurable(const std::string &Path, const SyncFn &Sync) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  int Rc = Sync ? Sync(Fd) : ::fsync(Fd);
  ::close(Fd);
  return Rc == 0;
}

bool stream::syncParentDir(const std::string &Path, const SyncFn &Sync) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos
                        ? std::string(".")
                        : (Slash == 0 ? std::string("/")
                                      : Path.substr(0, Slash));
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  int Rc = Sync ? Sync(Fd) : ::fsync(Fd);
  ::close(Fd);
  return Rc == 0;
}

void stream::encodeSectionBlob(const ProcessLog &PL, uint32_t FromRecord,
                               uint32_t NumRecords,
                               std::vector<uint8_t> &Out) {
  assert(size_t(FromRecord) + NumRecords <= PL.Records.size() &&
         "blob range past the log");
  LogWriter W;
  W.varint(PL.RootFunc);
  W.varint(PL.Args.size());
  for (int64_t A : PL.Args)
    W.svarint(A);
  W.varint(NumRecords);
  // Fresh delta state per blob: a blob decodes standalone, at the price
  // that concatenated blobs are not a whole-section v2 encoding (see the
  // header comment on finalization).
  uint64_t PrevSeq = 0;
  for (uint32_t I = 0; I != NumRecords; ++I)
    v2::writeRecord(W, PL.Records[FromRecord + I], PrevSeq);
  Out.assign(W.data(), W.data() + W.size());
}

bool stream::decodeSectionBlob(const std::vector<uint8_t> &Blob,
                               ProcessLog &Out) {
  ByteReader R(Blob.data(), Blob.size());
  Out.RootFunc = uint32_t(R.varint());
  uint64_t NumArgs = R.varint();
  if (!R.ok() || !R.plausibleCount(NumArgs))
    return false;
  Out.Args.clear();
  Out.Args.reserve(size_t(NumArgs));
  for (uint64_t I = 0; I != NumArgs; ++I)
    Out.Args.push_back(R.svarint());
  uint64_t NumRecords = R.varint();
  if (!R.ok() || (NumRecords != 0 && !R.plausibleCount(NumRecords)))
    return false;
  Out.PrelogCount = 0;
  uint64_t PrevSeq = 0;
  for (uint64_t I = 0; I != NumRecords; ++I) {
    LogRecord &Rec = Out.Records.emplace_back();
    if (!v2::readRecord(R, Rec, PrevSeq))
      return false;
    if (Rec.Kind == LogRecordKind::Prelog)
      ++Out.PrelogCount;
  }
  return R.ok() && R.atEnd();
}

//===----------------------------------------------------------------------===//
// SpillWriter
//===----------------------------------------------------------------------===//

namespace {

void encodeChunk(const SpillCut &Cut, LogWriter &W) {
  W.varint(Cut.CutSeq);
  W.varint(Cut.Sections.size());
  for (const SpillSection &S : Cut.Sections) {
    W.varint(S.Pid);
    W.varint(S.FirstRecord);
    W.varint(S.Blob.size());
    for (uint8_t B : S.Blob)
      W.u8(B);
  }
}

} // namespace

bool SpillWriter::open(const std::string &Path, uint64_t ProgramHash,
                       bool SyncEachCutIn, SyncFn SyncIn) {
  close();
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  FilePath = Path;
  SyncEachCut = SyncEachCutIn;
  Sync = std::move(SyncIn);
  LogWriter W;
  W.u32(SpillMagic);
  W.u32(SpillVersion);
  W.u64(ProgramHash);
  if (std::fwrite(W.data(), 1, W.size(), File) != W.size() ||
      std::fflush(File) != 0) {
    close();
    return false;
  }
  return true;
}

size_t SpillWriter::chunkSize(const SpillCut &Cut) {
  LogWriter W;
  encodeChunk(Cut, W);
  return 4 + W.size();
}

bool SpillWriter::appendCut(const SpillCut &Cut) {
  if (!File)
    return false;
  LogWriter Chunk;
  encodeChunk(Cut, Chunk);
  LogWriter Framed;
  Framed.u32(uint32_t(Chunk.size()));
  Framed.bytes(Chunk);
  // Flush per cut: the durability unit of live attach is the consistent
  // cut, so a crash can only lose the chunk in flight.
  if (std::fwrite(Framed.data(), 1, Framed.size(), File) != Framed.size() ||
      std::fflush(File) != 0) {
    close();
    return false;
  }
  // fflush only moves bytes into the page cache — that survives the
  // process, not the power. --spill-sync pushes each acked cut to the
  // platter before the ack.
  if (SyncEachCut) {
    int Fd = ::fileno(File);
    if ((Sync ? Sync(Fd) : ::fdatasync(Fd)) != 0) {
      close();
      return false;
    }
  }
  return true;
}

void SpillWriter::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

bool stream::loadSpill(const std::string &Path, uint64_t &ProgramHash,
                       std::vector<SpillCut> &Cuts, bool *Truncated) {
  if (Truncated)
    *Truncated = false;
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return false;
  ByteReader R(Bytes.data(), Bytes.size());
  if (R.u32() != SpillMagic || R.u32() != SpillVersion)
    return false;
  ProgramHash = R.u64();
  if (!R.ok())
    return false;

  Cuts.clear();
  while (!R.atEnd()) {
    // Anything short or malformed from here on is a torn tail, not an
    // error: keep the cuts that made it to disk whole.
    if (R.remaining() < 4) {
      if (Truncated)
        *Truncated = true;
      break;
    }
    uint32_t Len = R.u32();
    if (Len > R.remaining()) {
      if (Truncated)
        *Truncated = true;
      break;
    }
    ByteReader C = R.sub(Len);
    SpillCut Cut;
    Cut.CutSeq = C.varint();
    uint64_t NumSections = C.varint();
    bool Ok = C.ok() && C.plausibleCount(NumSections);
    for (uint64_t I = 0; Ok && I != NumSections; ++I) {
      SpillSection S;
      S.Pid = uint32_t(C.varint());
      S.FirstRecord = uint32_t(C.varint());
      uint64_t BlobLen = C.varint();
      if (!C.ok() || BlobLen > C.remaining()) {
        Ok = false;
        break;
      }
      S.Blob.resize(size_t(BlobLen));
      for (uint64_t B = 0; B != BlobLen; ++B)
        S.Blob[size_t(B)] = C.u8();
      Cut.Sections.push_back(std::move(S));
    }
    if (!Ok || !C.ok() || !C.atEnd()) {
      if (Truncated)
        *Truncated = true;
      break;
    }
    Cuts.push_back(std::move(Cut));
  }
  return true;
}

bool stream::buildLogFromCuts(const std::vector<SpillCut> &Cuts,
                              size_t NumCuts, ExecutionLog &Out) {
  Out = ExecutionLog();
  if (NumCuts > Cuts.size())
    return false;
  for (size_t I = 0; I != NumCuts; ++I) {
    for (const SpillSection &S : Cuts[I].Sections) {
      if (S.Pid > Out.Procs.size())
        return false; // pids arrive densely
      if (S.Pid == Out.Procs.size())
        Out.Procs.emplace_back();
      ProcessLog Frag;
      if (!decodeSectionBlob(S.Blob, Frag))
        return false;
      ProcessLog &P = Out.Procs[S.Pid];
      if (S.FirstRecord != P.Records.size())
        return false;
      if (P.Records.size() == 0) {
        P.Pid = S.Pid;
        P.RootFunc = Frag.RootFunc;
        P.Args = Frag.Args;
      } else if (P.RootFunc != Frag.RootFunc || P.Args != Frag.Args) {
        return false;
      }
      for (size_t Idx = 0; Idx != Frag.Records.size(); ++Idx)
        P.Records.push_back(Frag.Records[Idx]);
      P.PrelogCount += Frag.PrelogCount;
    }
  }
  return true;
}
