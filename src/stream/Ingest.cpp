//===- stream/Ingest.cpp --------------------------------------------------===//
//
// Part of PPD. See Ingest.h.
//
//===----------------------------------------------------------------------===//

#include "stream/Ingest.h"

#include "core/DebugSession.h"
#include "log/LogFormatV2.h"
#include "log/ProgramDb.h"

#include <cstdio>
#include <set>
#include <sstream>

using namespace ppd;
using namespace ppd::stream;

namespace {

Response makeAck(uint64_t StreamId, uint32_t Credits) {
  Response Resp;
  Resp.Type = RespType::Ack;
  Resp.StreamId = StreamId;
  Resp.Credits = Credits;
  return Resp;
}

Response makeError(ErrCode Code, std::string Msg) {
  Response Resp;
  Resp.Type = RespType::Error;
  Resp.Code = Code;
  Resp.Text = std::move(Msg);
  return Resp;
}

Response makeBusy() {
  Response Resp;
  Resp.Type = RespType::Busy;
  return Resp;
}

Response makeResult(std::string Text) {
  Response Resp;
  Resp.Type = RespType::Result;
  Resp.Text = std::move(Text);
  return Resp;
}

} // namespace

/// One live (or finished) ingest session. All log/index/graph state is
/// guarded by M; the registry map itself by the registry's Mutex.
struct IngestRegistry::IngestStream {
  IngestStream(unsigned NumShared)
      : Index(ExecutionLog()), Graph(NumShared, 0) {}

  uint64_t Id = 0;
  uint32_t ProgramIndex = 0;
  const CompiledProgram *Prog = nullptr;

  mutable std::mutex M;
  ExecutionLog Accum;          ///< the frontier: every applied cut.
  LogIndex Index;              ///< extended per cut via appendRecords.
  ParallelDynamicGraph Graph;  ///< extended per cut via appendProcess.
  /// Every sync Seq applied so far is < NextSeqFloor; new cuts must stay
  /// at or above it. Starts at 0 — the first sync record of a run has
  /// Seq 0, so the floor is inclusive.
  uint64_t NextSeqFloor = 0;
  uint64_t LastCutSeq = 0;
  /// SectionData frames of the cut in flight, staged until LastInCut.
  std::vector<Request> Staged;
  SpillWriter Spill;
  std::string FinalLogPath;
  uint64_t PrevStalls = 0; ///< last cumulative stall count seen.
  uint64_t FrontierVersion = 0;
  bool Ended = false;
  bool Dead = false; ///< protocol violation or I/O failure; frames rejected.

  /// Tail-query snapshot, cached per frontier version: a controller and
  /// session over *copies* of the frontier state, so later cuts never
  /// mutate under a query and the replay cache stays valid per frontier.
  uint64_t SnapVersion = ~0ull;
  std::unique_ptr<PpdController> SnapCtrl;
  std::unique_ptr<DebugSession> SnapSession;
};

IngestRegistry::IngestRegistry(DebugServer &Server, IngestOptions Options)
    : Server(Server), Options(std::move(Options)) {}

IngestRegistry::~IngestRegistry() = default;

std::shared_ptr<IngestRegistry::IngestStream>
IngestRegistry::find(uint64_t StreamId) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Streams.find(StreamId);
  return It == Streams.end() ? nullptr : It->second;
}

size_t IngestRegistry::numStreams() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Streams.size();
}

bool IngestRegistry::frontierLog(uint64_t StreamId, ExecutionLog &Out) const {
  auto S = find(StreamId);
  if (!S)
    return false;
  std::lock_guard<std::mutex> Lock(S->M);
  Out = S->Accum;
  return true;
}

uint64_t IngestRegistry::frontierVersion(uint64_t StreamId) const {
  auto S = find(StreamId);
  if (!S)
    return 0;
  std::lock_guard<std::mutex> Lock(S->M);
  return S->FrontierVersion;
}

std::string IngestRegistry::spillPathOf(uint64_t StreamId) const {
  auto S = find(StreamId);
  if (!S)
    return {};
  std::lock_guard<std::mutex> Lock(S->M);
  return S->Spill.path();
}

std::string IngestRegistry::finalLogPathOf(uint64_t StreamId) const {
  auto S = find(StreamId);
  if (!S)
    return {};
  std::lock_guard<std::mutex> Lock(S->M);
  return S->FinalLogPath;
}

Response IngestRegistry::dispatch(const Request &Req) {
  switch (Req.Type) {
  case MsgType::StreamHello:
    return handleHello(Req);
  case MsgType::SectionData:
    return handleSection(Req);
  case MsgType::StreamEnd:
    return handleEnd(Req);
  case MsgType::TailQuery:
    return handleTail(Req);
  case MsgType::Frontier:
    return handleFrontier(Req);
  default:
    return makeError(ErrCode::UnknownType, "not a stream message");
  }
}

//===----------------------------------------------------------------------===//
// StreamHello
//===----------------------------------------------------------------------===//

Response IngestRegistry::handleHello(const Request &Req) {
  const CompiledProgram *Prog = Server.registry().program(Req.ProgramIndex);
  if (!Prog)
    return makeError(ErrCode::NoSuchProgram, "unknown program index");
  if (programHash(*Prog) != Req.ProgramHash) {
    Server.metrics().countError();
    return makeError(ErrCode::StreamProtocol,
                     "program hash mismatch: tracer and server were built "
                     "from different sources");
  }
  if (Options.SpillBudget && SpillBytes.load() >= Options.SpillBudget) {
    Server.metrics().countBusy();
    return makeBusy();
  }

  auto S = std::make_shared<IngestStream>(Prog->Symbols->NumSharedVars);
  S->ProgramIndex = Req.ProgramIndex;
  S->Prog = Prog;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S->Id = NextStreamId++;
    Streams[S->Id] = S;
  }
  if (!Options.SpillDir.empty()) {
    std::string Path =
        Options.SpillDir + "/stream-" + std::to_string(S->Id) + ".spill";
    if (!S->Spill.open(Path, Req.ProgramHash, Options.SpillSync,
                       Options.Sync)) {
      std::lock_guard<std::mutex> Lock(Mutex);
      Streams.erase(S->Id);
      return makeError(ErrCode::StreamProtocol,
                       "cannot open spill file " + Path);
    }
    SpillBytes += 16; // spill header: magic, version, program hash.
  }
  return makeAck(S->Id, Options.CreditWindow);
}

//===----------------------------------------------------------------------===//
// SectionData
//===----------------------------------------------------------------------===//

Response IngestRegistry::handleSection(const Request &Req) {
  auto S = find(Req.StreamId);
  if (!S)
    return makeError(ErrCode::NoSuchStream, "unknown stream id");
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Dead || S->Ended)
    return makeError(ErrCode::NoSuchStream, "stream is not live");

  Server.metrics().countSectionIngested(Req.Blob.size());
  uint64_t Stalls = Req.Stalls;
  if (Stalls > S->PrevStalls) {
    Server.metrics().countCreditStalls(Stalls - S->PrevStalls);
    S->PrevStalls = Stalls;
  }

  auto Kill = [&](const char *Msg) {
    S->Dead = true;
    S->Staged.clear();
    S->Spill.close();
    Server.metrics().countError();
    return makeError(ErrCode::StreamProtocol, Msg);
  };

  // Staging invariants: one cut at a time, strictly increasing cut
  // sequence, pid-non-descending within the cut (a pid repeats only when
  // its share was split across frames).
  if (S->Staged.empty()) {
    if (Req.CutSeq <= S->LastCutSeq)
      return Kill("cut sequence did not increase");
  } else {
    if (Req.CutSeq != S->Staged.front().CutSeq)
      return Kill("interleaved cuts");
    if (Req.Pid < S->Staged.back().Pid)
      return Kill("pids out of order within a cut");
  }
  bool Last = (Req.Flags & SectionLastInCut) != 0;
  S->Staged.push_back(Req);
  Server.metrics().noteIngestQueueDepth(S->Staged.size());
  if (!Last)
    return makeAck(S->Id, 1);

  // Budget gate before any mutation: the cut's spill chunk is the
  // accounting unit whether or not a spill file is attached.
  SpillCut Cut;
  Cut.CutSeq = Req.CutSeq;
  for (const Request &F : S->Staged)
    Cut.Sections.push_back({F.Pid, F.FirstRecord, F.Blob});
  size_t ChunkBytes = SpillWriter::chunkSize(Cut);
  if (Options.SpillBudget &&
      SpillBytes.load() + ChunkBytes > Options.SpillBudget) {
    S->Dead = true;
    S->Staged.clear();
    S->Spill.close();
    Server.metrics().countBusy();
    return makeBusy();
  }

  std::string Err = applyCut(*S);
  if (!Err.empty()) {
    S->Dead = true;
    S->Staged.clear();
    S->Spill.close();
    Server.metrics().countError();
    return makeError(ErrCode::StreamProtocol, std::move(Err));
  }

  if (S->Spill.isOpen() && !S->Spill.appendCut(Cut))
    return Kill("spill I/O failure");
  SpillBytes += ChunkBytes;

  S->Staged.clear();
  S->LastCutSeq = Cut.CutSeq;
  ++S->FrontierVersion;
  return makeAck(S->Id, 1);
}

std::string IngestRegistry::applyCut(IngestStream &S) {
  // Pass 1 — validate the whole cut before touching the frontier. Frags
  // holds the decoded blobs, parallel to Staged; ExpectedFirst tracks
  // record-count continuity per pid across split frames; NextPid the
  // dense-growth frontier for new processes.
  size_t NumFrames = S.Staged.size();
  std::vector<ProcessLog> Frags(NumFrames);
  std::vector<std::pair<uint32_t, uint32_t>> ExpectedFirst; // pid, next rec
  uint32_t NextPid = uint32_t(S.Accum.Procs.size());
  uint64_t NumSyncInCut = 0;
  std::set<uint64_t> NewSeqs;

  for (size_t I = 0; I != NumFrames; ++I) {
    const Request &F = S.Staged[I];
    ProcessLog &Frag = Frags[I];
    if (!decodeSectionBlob(F.Blob, Frag))
      return "undecodable section blob";
    if (Frag.RootFunc >= S.Prog->Funcs.size())
      return "root function out of range";

    uint32_t *Next = nullptr;
    for (auto &E : ExpectedFirst)
      if (E.first == F.Pid)
        Next = &E.second;
    if (!Next) {
      // First frame for this pid in the cut: either an existing process
      // continuing at its record count, or the next dense pid at 0.
      uint32_t Start;
      if (F.Pid < S.Accum.Procs.size()) {
        const ProcessLog &P = S.Accum.Procs[F.Pid];
        if (P.RootFunc != Frag.RootFunc || P.Args != Frag.Args)
          return "root function or arguments changed mid-stream";
        Start = uint32_t(P.Records.size());
      } else if (F.Pid == NextPid) {
        ++NextPid;
        Start = 0;
      } else {
        return "process ids must arrive densely";
      }
      ExpectedFirst.emplace_back(F.Pid, Start);
      Next = &ExpectedFirst.back().second;
    }
    if (F.FirstRecord != *Next)
      return "section does not continue the process's record stream";
    *Next += uint32_t(Frag.Records.size());

    for (size_t R = 0; R != Frag.Records.size(); ++R)
      if (Frag.Records[R].Kind == LogRecordKind::SyncEvent)
        ++NumSyncInCut;
  }

  // Sequence numbers: every new sync Seq must be fresh (>= the floor),
  // distinct, and inside the window the cut's own sync-record count
  // allows — the bound that keeps a hostile Seq from ballooning the
  // graph's seq table.
  uint64_t SeqCeiling = S.NextSeqFloor + NumSyncInCut;
  for (size_t I = 0; I != NumFrames; ++I)
    for (size_t R = 0; R != Frags[I].Records.size(); ++R) {
      const LogRecord &Rec = Frags[I].Records[R];
      if (Rec.Kind != LogRecordKind::SyncEvent)
        continue;
      if (Rec.Seq < S.NextSeqFloor || Rec.Seq >= SeqCeiling)
        return "sync sequence number outside the cut's window";
      if (!NewSeqs.insert(Rec.Seq).second)
        return "duplicate sync sequence number";
    }

  // Partner closure (the consistent-cut invariant): every partner is
  // either already applied or part of this same cut.
  for (size_t I = 0; I != NumFrames; ++I)
    for (size_t R = 0; R != Frags[I].Records.size(); ++R) {
      const LogRecord &Rec = Frags[I].Records[R];
      if (Rec.Kind != LogRecordKind::SyncEvent || Rec.PartnerSeq == NoPartner)
        continue;
      if (!S.Graph.hasSeq(Rec.PartnerSeq) && !NewSeqs.count(Rec.PartnerSeq))
        return "synchronization partner outside the cut";
    }

  // Pass 2 — apply. Per-pid FromRecord is the pre-cut record count
  // (ExpectedFirst recorded it before advancing); records append first,
  // then index and graph extend once per touched pid, then one
  // finalizeTail closes the new clocks.
  std::vector<std::pair<uint32_t, uint32_t>> From; // pid, pre-cut count
  for (size_t I = 0; I != NumFrames; ++I) {
    const Request &F = S.Staged[I];
    const ProcessLog &Frag = Frags[I];
    if (F.Pid == S.Accum.Procs.size()) {
      S.Accum.Procs.emplace_back();
      ProcessLog &P = S.Accum.Procs.back();
      P.Pid = F.Pid;
      P.RootFunc = Frag.RootFunc;
      P.Args = Frag.Args;
    }
    ProcessLog &P = S.Accum.Procs[F.Pid];
    bool Seen = false;
    for (auto &E : From)
      Seen |= E.first == F.Pid;
    if (!Seen)
      From.emplace_back(F.Pid, F.FirstRecord);
    for (size_t R = 0; R != Frag.Records.size(); ++R)
      P.Records.push_back(Frag.Records[R]);
    P.PrelogCount += Frag.PrelogCount;
  }

  for (auto &E : From) {
    if (!S.Index.appendRecords(E.first, S.Accum.Procs[E.first], E.second))
      return "malformed interval structure";
    S.Graph.appendProcess(E.first, S.Accum.Procs[E.first], E.second);
  }
  S.Graph.finalizeTail();
  if (!NewSeqs.empty())
    S.NextSeqFloor = *NewSeqs.rbegin() + 1;
  return {};
}

//===----------------------------------------------------------------------===//
// StreamEnd
//===----------------------------------------------------------------------===//

Response IngestRegistry::handleEnd(const Request &Req) {
  auto S = find(Req.StreamId);
  if (!S)
    return makeError(ErrCode::NoSuchStream, "unknown stream id");
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Dead || S->Ended)
    return makeError(ErrCode::NoSuchStream, "stream is not live");

  auto Kill = [&](const char *Msg) {
    S->Dead = true;
    S->Staged.clear();
    S->Spill.close();
    Server.metrics().countError();
    return makeError(ErrCode::StreamProtocol, Msg);
  };
  if (!S->Staged.empty())
    return Kill("StreamEnd inside an open cut");

  ByteReader R(Req.Blob.data(), Req.Blob.size());
  std::vector<OutputRecord> Output;
  if (!v2::readOutput(R, Output) || !R.ok() || !R.atEnd())
    return Kill("undecodable output blob");
  S->Accum.Output = std::move(Output);

  if (Req.Stalls > S->PrevStalls) {
    Server.metrics().countCreditStalls(Req.Stalls - S->PrevStalls);
    S->PrevStalls = Req.Stalls;
  }

  // Finalize: the spill stays as the crash-recovery artifact; the
  // canonical v2 log — exactly what a batch `ppd run --log` would have
  // saved — is written beside it via temp + rename, so a reader never
  // sees a half-written file.
  S->Spill.close();
  if (!Options.SpillDir.empty()) {
    std::string Path = Options.SpillDir + "/stream-" +
                       std::to_string(S->Id) + ".ppdlog";
    std::string Tmp = Path + ".tmp";
    if (!S->Accum.save(Tmp, LogFormat::V2))
      return Kill("cannot write finalized log");
    // Publish-by-rename is only atomic *and durable* if the tmp file's
    // bytes hit the platter before the rename and the directory entry
    // after it; otherwise a power cut can leave the canonical name
    // pointing at a hole.
    if (!syncFileDurable(Tmp, Options.Sync)) {
      std::remove(Tmp.c_str());
      return Kill("cannot sync finalized log");
    }
    if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
      std::remove(Tmp.c_str());
      return Kill("cannot publish finalized log");
    }
    syncParentDir(Path, Options.Sync);
    S->FinalLogPath = Path;
  }
  S->Ended = true;
  ++S->FrontierVersion; // the output is now part of the frontier.
  return makeAck(S->Id, 0);
}

//===----------------------------------------------------------------------===//
// TailQuery / Frontier
//===----------------------------------------------------------------------===//

Response IngestRegistry::handleTail(const Request &Req) {
  auto S = find(Req.StreamId);
  if (!S)
    return makeError(ErrCode::NoSuchStream, "unknown stream id");
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Dead)
    return makeError(ErrCode::NoSuchStream, "stream is dead");
  if (S->Accum.Procs.empty())
    return makeResult("frontier is empty: no cuts applied yet");

  if (S->SnapVersion != S->FrontierVersion) {
    // New frontier since the last query: snapshot it. Copies keep the
    // controller's replay cache coherent — it indexes into a log that
    // will never grow under it — and adoption skips re-deriving the
    // index and graph the ingest path already maintains.
    PpdControllerOptions Opts;
    Opts.AdoptedIndex = std::make_shared<LogIndex>(S->Index);
    Opts.AdoptedGraph = std::make_shared<ParallelDynamicGraph>(S->Graph);
    S->SnapCtrl = std::make_unique<PpdController>(*S->Prog, S->Accum, Opts);
    S->SnapSession = std::make_unique<DebugSession>(*S->Prog, *S->SnapCtrl);
    S->SnapVersion = S->FrontierVersion;
  }
  return makeResult(S->SnapSession->execute(Req.Command));
}

Response IngestRegistry::handleFrontier(const Request &Req) {
  auto Describe = [](const IngestStream &S) {
    std::lock_guard<std::mutex> Lock(S.M);
    uint64_t Records = 0;
    for (const ProcessLog &P : S.Accum.Procs)
      Records += P.Records.size();
    std::ostringstream OS;
    OS << "stream " << S.Id << ": program " << S.ProgramIndex << ", cuts "
       << S.LastCutSeq << ", procs " << S.Accum.Procs.size() << ", records "
       << Records << ", frontier " << S.FrontierVersion << ", "
       << (S.Dead ? "dead" : S.Ended ? "ended" : "live");
    return OS.str();
  };

  if (Req.StreamId != 0) {
    auto S = find(Req.StreamId);
    if (!S)
      return makeError(ErrCode::NoSuchStream, "unknown stream id");
    return makeResult(Describe(*S));
  }

  std::vector<std::shared_ptr<IngestStream>> All;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (auto &E : Streams)
      All.push_back(E.second);
  }
  if (All.empty())
    return makeResult("no streams");
  std::string Text;
  for (size_t I = 0; I != All.size(); ++I) {
    if (I)
      Text += '\n';
    Text += Describe(*All[I]);
  }
  return makeResult(std::move(Text));
}
