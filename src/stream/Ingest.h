//===- stream/Ingest.h - Server-side streaming ingest -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server side of live attach (DESIGN.md §13). An IngestRegistry is
/// installed as the DebugServer's stream dispatcher and owns one
/// IngestStream per live tracer:
///
///   * SectionData frames are staged until the cut's SectionLastInCut
///     frame, then the whole cut validates and applies *atomically* under
///     the stream's mutex — a tail query can never observe half a cut,
///     which is what makes every frontier a consistent prefix of the
///     final execution;
///   * the LogIndex and ParallelDynamicGraph extend incrementally
///     (appendRecords / appendProcess + finalizeTail) instead of
///     rebuilding — identical, by the append invariants, to a batch
///     build over the same prefix;
///   * every applied cut is flushed to the spill file before it is
///     acknowledged, so the spill is openable up to the last sealed cut
///     whenever the connection drops;
///   * validation happens *before* mutation (dense pids, record-count
///     continuity, strictly increasing sequence numbers, partner closure
///     within {already applied} ∪ {this cut}) — a hostile stream gets a
///     typed StreamProtocol error, never release-mode UB;
///   * tail debugging: TailQuery builds (and caches, per frontier
///     version) a snapshot PpdController/DebugSession from copies of the
///     accumulated log, index, and graph, so queries run at full batch
///     speed without re-deriving anything.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_STREAM_INGEST_H
#define PPD_STREAM_INGEST_H

#include "server/DebugServer.h"
#include "stream/Spill.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppd {

class DebugSession;
class PpdController;
class ParallelDynamicGraph;

namespace stream {

struct IngestOptions {
  /// Directory for spill files; empty keeps streams memory-only (tests).
  std::string SpillDir;
  /// Send credit granted at StreamHello; one credit returns per
  /// SectionData ack. The E12 knob.
  uint32_t CreditWindow = 8;
  /// Total spill bytes across every ingest session; past it new cuts get
  /// a typed Busy rejection. 0 = unbounded.
  uint64_t SpillBudget = 0;
  /// `--spill-sync`: fdatasync the spill after every acked cut, so an
  /// acked cut survives power loss rather than just a process crash.
  /// Stream finalization is always durable (fsync tmp + dir around the
  /// rename) — this flag buys per-cut durability on top.
  bool SpillSync = false;
  /// Test hook standing in for fdatasync/fsync; empty = the real
  /// syscalls. Lets tests count sync calls without strace.
  SyncFn Sync;
};

class IngestRegistry {
public:
  IngestRegistry(DebugServer &Server, IngestOptions Options);
  ~IngestRegistry();
  IngestRegistry(const IngestRegistry &) = delete;
  IngestRegistry &operator=(const IngestRegistry &) = delete;

  /// The stream dispatcher body; wire up with
  /// Server.setStreamDispatcher([&](const Request &R) {
  ///   return Registry.dispatch(R); }).
  Response dispatch(const Request &Req);

  // Introspection (tests, the streamed-vs-batch oracle).
  size_t numStreams() const;
  uint64_t spillBytes() const { return SpillBytes.load(); }
  /// Copies stream \p StreamId's accumulated frontier log. False on an
  /// unknown stream.
  bool frontierLog(uint64_t StreamId, ExecutionLog &Out) const;
  /// Applied-cut count of the stream (frontier version).
  uint64_t frontierVersion(uint64_t StreamId) const;
  std::string spillPathOf(uint64_t StreamId) const;
  /// Path of the canonical v2 log written when the stream ended (empty
  /// while live or spill-less).
  std::string finalLogPathOf(uint64_t StreamId) const;

private:
  struct IngestStream;

  Response handleHello(const Request &Req);
  Response handleSection(const Request &Req);
  Response handleEnd(const Request &Req);
  Response handleTail(const Request &Req);
  Response handleFrontier(const Request &Req);

  /// Validates + applies one staged cut. Returns an empty string on
  /// success, the protocol-violation message otherwise.
  std::string applyCut(IngestStream &S);

  std::shared_ptr<IngestStream> find(uint64_t StreamId) const;

  DebugServer &Server;
  IngestOptions Options;
  mutable std::mutex Mutex; ///< guards Streams/NextStreamId.
  std::map<uint64_t, std::shared_ptr<IngestStream>> Streams;
  uint64_t NextStreamId = 1;
  std::atomic<uint64_t> SpillBytes{0};
};

} // namespace stream
} // namespace ppd

#endif // PPD_STREAM_INGEST_H
