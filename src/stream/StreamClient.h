//===- stream/StreamClient.h - Tracer-side streaming sink -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracer side of live attach (DESIGN.md §13). Two layers:
///
///   * StreamSealer — transport-independent cut policy. Hooked into the
///     machine's scheduler round, it watches the growing ExecutionLog and,
///     once any process accumulates SectionRecords unsealed records,
///     seals a *consistent cut*: one SectionData request per process with
///     new records, covering everything logged so far. Cuts are
///     consistent by construction — a sync record's partner was logged
///     before it, so a cut that ships every unsealed record can never
///     ship a receive without its send. The oracle legs drive the sealer
///     straight into DebugServer::handleFrame; no socket required.
///
///   * StreamClient — the socket wrapper `ppd run --stream` uses:
///     connect, StreamHello, credit-gated SectionData shipping
///     (blocking on the server's Acks at zero credit — the backpressure
///     that throttles the tracer instead of dropping or buffering
///     unboundedly), StreamEnd with the program output.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_STREAM_STREAMCLIENT_H
#define PPD_STREAM_STREAMCLIENT_H

#include "log/ExecutionLog.h"
#include "server/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {
namespace stream {

struct SealerOptions {
  uint32_t ProgramIndex = 0;
  uint64_t ProgramHash = 0;
  /// Unsealed-record threshold that triggers a cut.
  uint32_t SectionRecords = 64;
  /// Soft cap on one SectionData blob; a process's share of a cut splits
  /// into multiple frames past it (FirstRecord keeps them ordered), so a
  /// blob can never approach MaxFramePayload.
  uint32_t SoftBlobBytes = 1u << 18;
};

class StreamSealer {
public:
  explicit StreamSealer(SealerOptions Options) : Options(Options) {}

  Request helloFrame() const;

  /// SectionData requests for one consistent cut over \p Log, pid-ascending,
  /// last one flagged SectionLastInCut. Empty when no process reached the
  /// threshold (or, with \p Force, when nothing is unsealed at all —
  /// except that a never-shipped pid is always shipped under Force, even
  /// record-empty, so the stream's process count matches the batch log's).
  std::vector<Request> sealRound(const ExecutionLog &Log, bool Force = false);

  /// The StreamEnd request carrying \p Log's output stream. Call after a
  /// final sealRound(Log, /*Force=*/true).
  Request endFrame(const ExecutionLog &Log) const;

  void setStreamId(uint64_t Id) { StreamId = Id; }
  uint64_t streamId() const { return StreamId; }

  /// Cumulative credit stalls, stamped into every outgoing frame so the
  /// server's CreditStalls metric sees tracer-side backpressure.
  void noteStall() { ++Stalls; }
  uint64_t stalls() const { return Stalls; }
  uint64_t cutsSealed() const { return NextCutSeq - 1; }

private:
  SealerOptions Options;
  uint64_t StreamId = 0;
  std::vector<uint32_t> Shipped; ///< records shipped, per pid.
  uint64_t NextCutSeq = 1;
  uint64_t Stalls = 0;
};

struct StreamClientOptions {
  /// Server endpoint: unix socket path or "tcp:HOST:PORT".
  std::string SocketPath;
  SealerOptions Sealer;
};

/// Synchronous streaming connection; single-threaded (driven from the
/// machine's round hook). Any transport or protocol failure latches
/// failed() and turns the remaining calls into no-ops — the program run
/// itself is never aborted by a lost debugger.
class StreamClient {
public:
  explicit StreamClient(StreamClientOptions Options);
  ~StreamClient();
  StreamClient(const StreamClient &) = delete;
  StreamClient &operator=(const StreamClient &) = delete;

  /// Connects, sends StreamHello, blocks for the credit-granting Ack.
  bool start();

  /// Machine round hook body: seal + ship if the threshold was reached.
  void pollRound(const ExecutionLog &Log);

  /// Ships the final cut (Force) and StreamEnd, then drains outstanding
  /// Acks. True when the whole stream was accepted.
  bool finish(const ExecutionLog &Log);

  bool failed() const { return Failed; }
  const std::string &error() const { return Error; }
  uint64_t streamId() const { return Sealer.streamId(); }
  uint64_t stalls() const { return Sealer.stalls(); }
  /// Wall-clock microseconds spent blocked at zero credit (E12's tracer
  /// stall time).
  uint64_t stallMicros() const { return StallMicros; }
  uint64_t sectionsShipped() const { return Sections; }
  uint64_t cutsSealed() const { return Sealer.cutsSealed(); }

private:
  bool ship(Request Req);      ///< credit-gated send of one SectionData.
  bool awaitResponse(Response &Resp); ///< ordered recv + decode.
  void fail(std::string Msg);

  StreamClientOptions Options;
  StreamSealer Sealer;
  int Fd = -1;
  uint64_t NextRequestId = 1;
  uint32_t Credits = 0;
  uint32_t Outstanding = 0; ///< SectionData frames not yet acked.
  uint64_t StallMicros = 0;
  uint64_t Sections = 0;
  bool Failed = false;
  std::string Error;
};

} // namespace stream
} // namespace ppd

#endif // PPD_STREAM_STREAMCLIENT_H
