//===- stream/StreamClient.cpp --------------------------------------------===//
//
// Part of PPD. See StreamClient.h.
//
//===----------------------------------------------------------------------===//

#include "stream/StreamClient.h"

#include "log/LogFormatV2.h"
#include "server/Wire.h"
#include "stream/Spill.h"

#include <chrono>

#include <unistd.h>

using namespace ppd;
using namespace ppd::stream;

//===----------------------------------------------------------------------===//
// StreamSealer
//===----------------------------------------------------------------------===//

Request StreamSealer::helloFrame() const {
  Request Req;
  Req.Type = MsgType::StreamHello;
  Req.ProgramIndex = Options.ProgramIndex;
  Req.ProgramHash = Options.ProgramHash;
  return Req;
}

std::vector<Request> StreamSealer::sealRound(const ExecutionLog &Log,
                                             bool Force) {
  if (Shipped.size() < Log.Procs.size())
    Shipped.resize(Log.Procs.size(), 0);

  bool Trigger = Force;
  for (uint32_t Pid = 0; !Trigger && Pid != Log.Procs.size(); ++Pid)
    Trigger = Log.Procs[Pid].Records.size() - Shipped[Pid] >=
              Options.SectionRecords;
  if (!Trigger)
    return {};

  std::vector<Request> Frames;
  for (uint32_t Pid = 0; Pid != Log.Procs.size(); ++Pid) {
    const ProcessLog &PL = Log.Procs[Pid];
    uint32_t Unsealed = uint32_t(PL.Records.size()) - Shipped[Pid];
    // A record-empty process ships only in the Force round (and only if
    // never shipped): the final cut must pin the process count, but
    // intermediate cuts skip processes with nothing new.
    if (Unsealed == 0 && !(Force && Shipped[Pid] == 0 &&
                           PL.Records.size() == 0))
      continue;
    // Split a large share into several frames: FirstRecord advances, so
    // the cut stays one atomic unit server-side while no blob ever
    // approaches the frame cap.
    uint32_t From = Shipped[Pid];
    do {
      uint32_t Take = 0;
      size_t Bytes = 0;
      while (Take != Unsealed && Bytes < Options.SoftBlobBytes) {
        Bytes += PL.Records[From + Take].byteSize();
        ++Take;
      }
      Request Req;
      Req.Type = MsgType::SectionData;
      Req.StreamId = StreamId;
      Req.CutSeq = NextCutSeq;
      Req.Pid = Pid;
      Req.FirstRecord = From;
      Req.Stalls = Stalls;
      encodeSectionBlob(PL, From, Take, Req.Blob);
      Frames.push_back(std::move(Req));
      From += Take;
      Unsealed -= Take;
    } while (Unsealed != 0);
    Shipped[Pid] = From;
  }
  if (Frames.empty())
    return {};
  Frames.back().Flags = SectionLastInCut;
  ++NextCutSeq;
  return Frames;
}

Request StreamSealer::endFrame(const ExecutionLog &Log) const {
  Request Req;
  Req.Type = MsgType::StreamEnd;
  Req.StreamId = StreamId;
  Req.Stalls = Stalls;
  LogWriter W;
  v2::writeOutput(W, Log.Output);
  Req.Blob.assign(W.data(), W.data() + W.size());
  return Req;
}

//===----------------------------------------------------------------------===//
// StreamClient
//===----------------------------------------------------------------------===//

StreamClient::StreamClient(StreamClientOptions Options)
    : Options(Options), Sealer(Options.Sealer) {}

StreamClient::~StreamClient() {
  if (Fd >= 0)
    ::close(Fd);
}

void StreamClient::fail(std::string Msg) {
  Failed = true;
  if (Error.empty())
    Error = std::move(Msg);
}

bool StreamClient::awaitResponse(Response &Resp) {
  std::vector<uint8_t> Payload;
  if (!recvFrame(Fd, Payload)) {
    fail("connection lost");
    return false;
  }
  if (!decodeResponse(Payload.data(), Payload.size(), Resp)) {
    fail("malformed response frame");
    return false;
  }
  if (Resp.Type == RespType::Busy) {
    fail("server rejected the stream: busy (spill budget exhausted?)");
    return false;
  }
  if (Resp.Type == RespType::Error) {
    fail("server error: " + Resp.Text);
    return false;
  }
  return true;
}

bool StreamClient::start() {
  Fd = connectEndpoint(Options.SocketPath);
  if (Fd < 0) {
    fail("cannot connect to " + Options.SocketPath);
    return false;
  }
  Request Hello = Sealer.helloFrame();
  Hello.RequestId = NextRequestId++;
  LogWriter W;
  encodeRequest(Hello, W);
  // sendFrame prefixes the length itself; skip encodeRequest's prefix.
  if (!sendFrame(Fd, W.data() + 4, W.size() - 4)) {
    fail("cannot send StreamHello");
    return false;
  }
  Response Resp;
  if (!awaitResponse(Resp))
    return false;
  if (Resp.Type != RespType::Ack || Resp.Credits == 0) {
    fail("expected a credit-granting Ack for StreamHello");
    return false;
  }
  Sealer.setStreamId(Resp.StreamId);
  Credits = Resp.Credits;
  return true;
}

bool StreamClient::ship(Request Req) {
  if (Failed)
    return false;
  // Credit gate: at zero, block until the server returns credit. This is
  // the tracer stall E12 measures — the alternative is unbounded
  // buffering on one side or the other.
  while (Credits == 0) {
    auto T0 = std::chrono::steady_clock::now();
    Sealer.noteStall();
    Response Resp;
    if (!awaitResponse(Resp))
      return false;
    StallMicros += uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    if (Resp.Type != RespType::Ack) {
      fail("expected an Ack while stalled");
      return false;
    }
    Credits += Resp.Credits;
    --Outstanding;
  }
  Req.RequestId = NextRequestId++;
  Req.Stalls = Sealer.stalls(); // include stalls from the gate above
  LogWriter W;
  encodeRequest(Req, W);
  if (!sendFrame(Fd, W.data() + 4, W.size() - 4)) {
    fail("connection lost mid-section");
    return false;
  }
  --Credits;
  ++Outstanding;
  ++Sections;
  return true;
}

void StreamClient::pollRound(const ExecutionLog &Log) {
  if (Failed)
    return;
  for (Request &Req : Sealer.sealRound(Log, /*Force=*/false))
    if (!ship(std::move(Req)))
      return;
}

bool StreamClient::finish(const ExecutionLog &Log) {
  if (Failed)
    return false;
  for (Request &Req : Sealer.sealRound(Log, /*Force=*/true))
    if (!ship(std::move(Req)))
      return false;

  Request End = Sealer.endFrame(Log);
  End.RequestId = NextRequestId++;
  LogWriter W;
  encodeRequest(End, W);
  if (!sendFrame(Fd, W.data() + 4, W.size() - 4)) {
    fail("connection lost at StreamEnd");
    return false;
  }
  // Responses arrive in order: the outstanding SectionData acks first,
  // then StreamEnd's.
  for (uint32_t I = 0; I != Outstanding; ++I) {
    Response Resp;
    if (!awaitResponse(Resp))
      return false;
    if (Resp.Type == RespType::Ack)
      Credits += Resp.Credits;
  }
  Outstanding = 0;
  Response Resp;
  if (!awaitResponse(Resp))
    return false;
  if (Resp.Type != RespType::Ack) {
    fail("expected an Ack for StreamEnd");
    return false;
  }
  return true;
}
