//===- compiler/EBlockPartition.h - E-block planning ------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides how the program is divided into *emulation blocks* (§5.4). The
/// options reproduce the paper's three refinements over the natural
/// one-e-block-per-subroutine rule:
///
///   * **leaf inheritance** — "it may be better not to make e-blocks out of
///     the small subroutines that correspond to leaf nodes in the call
///     graph"; their direct ancestors inherit their USED/DEFINED sets and
///     log on their behalf;
///   * **loop e-blocks** — long-running for/while loops become their own
///     e-blocks "so that the debugging phase can proceed without excessive
///     time spent in re-executing the loops";
///   * **splitting large subroutines** — "we can act conservatively to
///     construct several e-blocks out of such a large subroutine".
///
/// A logged function's body is planned as an ordered list of single-entry
/// *regions* over its top-level statement list: plain segments and loop
/// regions. Regions are disjoint and sequential, so their dynamic log
/// intervals are sequential too; only calls nest intervals (Fig 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_COMPILER_EBLOCKPARTITION_H
#define PPD_COMPILER_EBLOCKPARTITION_H

#include "lang/Ast.h"
#include "sema/CallGraph.h"

#include <vector>

namespace ppd {

/// Tuning knobs for the partitioner; the defaults reproduce the paper's
/// natural choice (one e-block per subroutine). bench_eblock_granularity
/// sweeps these for experiment E3.
struct EBlockOptions {
  /// Unlog small call-graph leaves; callers inherit their sets.
  bool LeafInheritance = false;
  /// A leaf is "small" when its body has at most this many statements.
  unsigned LeafMaxStmts = 8;
  /// Make top-level loops their own e-blocks.
  bool LoopBlocks = false;
  /// Only loops whose bodies have at least this many statements qualify.
  unsigned LoopMinStmts = 0;
  /// Split function bodies into segments of bounded size.
  bool SplitLargeFunctions = false;
  /// Maximum top-level statements per segment when splitting.
  unsigned MaxSegmentStmts = 50;
};

enum class EBlockKind {
  FunctionSegment, ///< a run of top-level statements (possibly the whole
                   ///< body; possibly empty, owning only the implicit
                   ///< return)
  Loop,            ///< one top-level while/for loop
};

/// One single-entry region of a function body.
struct EBlockRegion {
  EBlockKind Kind = EBlockKind::FunctionSegment;
  /// The top-level statements covered (empty only for a trailing segment
  /// that owns just the implicit return). For Loop: exactly one loop
  /// statement.
  std::vector<const Stmt *> TopStmts;
};

/// The e-block plan of one function.
struct FuncPlan {
  /// False for inherited leaves: no prelogs/postlogs of their own.
  bool Logged = true;
  /// Regions in execution order; empty iff !Logged.
  std::vector<EBlockRegion> Regions;
};

struct PartitionPlan {
  std::vector<FuncPlan> Funcs; ///< by FuncDecl::Index.

  bool isLogged(const FuncDecl &F) const { return Funcs[F.Index].Logged; }
};

/// Computes the plan. Invariants guaranteed:
///  * `main` and all spawn targets are logged (they are process roots, and
///    replay must be able to start at their entries);
///  * every logged function's last region is a FunctionSegment (it owns the
///    implicit return, so every return path emits an exits-function
///    postlog);
///  * only call-graph leaves are unlogged, so every unlogged body replays
///    inline within some logged caller.
PartitionPlan planEBlocks(const Program &P, const CallGraph &CG,
                          const EBlockOptions &Options);

/// Number of statements in the subtree of \p S (including itself).
unsigned countStmts(const Stmt &S);

} // namespace ppd

#endif // PPD_COMPILER_EBLOCKPARTITION_H
