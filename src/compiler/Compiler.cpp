//===- compiler/Compiler.cpp ----------------------------------------------===//
//
// Part of PPD. See Compiler.h.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"

#include "compiler/CodeGen.h"
#include "dataflow/UsedDefined.h"
#include "lang/Parser.h"
#include "sema/Sema.h"

using namespace ppd;

/// The statement where control first lands when \p S executes: blocks
/// forward to their first executable child, a for loop starts at its init.
/// Null for empty blocks.
static const Stmt *firstExecutableStmt(const Stmt *S) {
  if (const auto *B = dyn_cast<BlockStmt>(S)) {
    for (const StmtPtr &Child : B->Body)
      if (const Stmt *First = firstExecutableStmt(Child.get()))
        return First;
    return nullptr;
  }
  if (const auto *F = dyn_cast<ForStmt>(S))
    if (F->Init)
      return F->Init.get();
  return S;
}

std::unique_ptr<CompiledProgram>
Compiler::compile(const std::string &Source, const CompileOptions &Options,
                  DiagnosticEngine &Diags) {
  std::unique_ptr<Program> Ast = Parser::parse(Source, Diags);
  if (!Ast)
    return nullptr;
  return compile(std::move(Ast), Options, Diags);
}

std::unique_ptr<CompiledProgram>
Compiler::compile(std::unique_ptr<Program> Ast, const CompileOptions &Options,
                  DiagnosticEngine &Diags) {
  auto Out = std::make_unique<CompiledProgram>();
  Out->Ast = std::move(Ast);
  Out->Options = Options;
  Program &P = *Out->Ast;

  Sema SemaPass(P, Diags);
  Out->Symbols = SemaPass.run();
  if (!Out->Symbols)
    return nullptr;
  const SymbolTable &Symbols = *Out->Symbols;

  Out->Database = std::make_unique<ProgramDatabase>(P, Symbols);
  Out->Callgraph = std::make_unique<CallGraph>(P);
  Out->ModRef = computeModRef<BitVarSet>(P, Symbols, *Out->Callgraph);
  Out->Plan = planEBlocks(P, *Out->Callgraph, Options.EBlocks);
  Out->MainIndex = P.findFunc("main")->Index;

  for (const SemDecl &S : P.Sems)
    Out->SemInit.push_back(S.Init);
  for (const ChanDecl &C : P.Chans)
    Out->ChanCapacity.push_back(C.Capacity);

  auto IsLogged = [&Out](const FuncDecl &F) { return Out->Plan.isLogged(F); };

  // Per-function static analyses and e-block metadata.
  Out->Funcs.resize(P.Funcs.size());
  Out->Cfgs.resize(P.Funcs.size());
  Out->Pdgs.resize(P.Funcs.size());
  Out->Simplified.resize(P.Funcs.size());

  std::vector<std::vector<uint32_t>> RegionEBlockIds(P.Funcs.size());
  std::vector<std::unordered_map<StmtId, uint32_t>> UnitAtStmt(
      P.Funcs.size());

  for (const auto &F : P.Funcs) {
    uint32_t FI = F->Index;
    Out->Cfgs[FI] = std::make_unique<Cfg>(P, *F);
    const Cfg &G = *Out->Cfgs[FI];
    Out->Pdgs[FI] = std::make_unique<StaticPdg>(P, Symbols, G, Out->ModRef);
    Out->Simplified[FI] = std::make_unique<SimplifiedStaticGraph>(
        P, Symbols, G, Out->ModRef, IsLogged);

    // Global unit numbering. Every unit gets a program-wide id; UnitLog
    // instructions are only emitted for units that actually log (nonempty
    // shared-read set, not the entry unit — the e-block prelog covers it).
    for (const SyncUnit &U : Out->Simplified[FI]->units()) {
      uint32_t GlobalId = uint32_t(Out->Units.size());
      UnitInfo Info;
      Info.Id = GlobalId;
      Info.Func = FI;
      Info.SharedReads = U.SharedReads;
      Out->Units.push_back(std::move(Info));
      if (U.Start != Cfg::EntryId && !U.SharedReads.empty()) {
        const CfgNode &N = G.node(U.Start);
        assert(N.Kind == CfgNodeKind::Stmt && "unit starts at a statement");
        UnitAtStmt[FI][N.Stmt] = GlobalId;
      }
    }

    // E-block metadata with USED/DEFINED summaries.
    const FuncPlan &FP = Out->Plan.Funcs[FI];
    for (const EBlockRegion &Region : FP.Regions) {
      EBlockInfo Info;
      Info.Id = uint32_t(Out->EBlocks.size());
      Info.Func = FI;
      Info.Kind = Region.Kind;

      std::vector<CfgNodeId> Nodes;
      const Stmt *EntryStmt = nullptr;
      for (const Stmt *Top : Region.TopStmts) {
        forEachStmt(*Top, [&](const Stmt &S) {
          if (G.nodeOf(S.Id) != InvalidId)
            Nodes.push_back(G.nodeOf(S.Id));
        });
        if (!EntryStmt)
          EntryStmt = firstExecutableStmt(Top);
      }
      if (EntryStmt && !Nodes.empty()) {
        CfgNodeId Entry = G.nodeOf(EntryStmt->Id);
        assert(Entry != InvalidId && "region entry has no CFG node");
        auto Summary = computeUsedDefined<BitVarSet>(
            P, Symbols, G, Nodes, Entry, Out->ModRef, IsLogged);
        for (unsigned V : Summary.Used.toVector())
          Info.Used.push_back(VarId(V));
        for (unsigned V : Summary.Defined.toVector())
          Info.Defined.push_back(VarId(V));
      }
      RegionEBlockIds[FI].push_back(Info.Id);
      Out->EBlocks.push_back(std::move(Info));
    }

    CompiledFunction &CF = Out->Funcs[FI];
    CF.Name = F->Name;
    CF.Index = FI;
    CF.NumParams = uint32_t(F->Params.size());
    CF.FrameSize = Symbols.frame(*F).FrameSize;
    CF.Logged = FP.Logged;
  }

  // Code generation, both artifacts per function.
  CodeGen Gen(P, Symbols, *Out);
  for (const auto &F : P.Funcs)
    Gen.genFunction(*F, RegionEBlockIds[F->Index], UnitAtStmt[F->Index]);

  // Pre-decode both artifacts for the fast-path interpreters.
  for (CompiledFunction &CF : Out->Funcs) {
    CF.ObjectDecoded = DecodedChunk::decode(CF.Object);
    CF.EmuDecoded = DecodedChunk::decode(CF.Emu);
  }

  return Out;
}
