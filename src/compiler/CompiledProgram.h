//===- compiler/CompiledProgram.h - Preparatory-phase output ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything the Compiler/Linker produces during the preparatory phase
/// (paper Fig 3.1): the object code, the emulation package, the static
/// program dependence graphs, the simplified static graphs with their
/// synchronization units, and the program database — plus the e-block
/// metadata (USED/DEFINED sets, entry pcs) that prelogs/postlogs and replay
/// are driven by.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_COMPILER_COMPILEDPROGRAM_H
#define PPD_COMPILER_COMPILEDPROGRAM_H

#include "bytecode/Chunk.h"
#include "bytecode/Decoded.h"
#include "cfg/Cfg.h"
#include "compiler/EBlockPartition.h"
#include "dataflow/ModRef.h"
#include "pdg/SimplifiedStaticGraph.h"
#include "pdg/StaticPdg.h"
#include "sema/CallGraph.h"
#include "sema/ProgramDatabase.h"
#include "sema/Symbols.h"

#include <memory>
#include <string>
#include <vector>

namespace ppd {

/// Static description of one e-block.
struct EBlockInfo {
  uint32_t Id = 0;
  uint32_t Func = 0; ///< FuncDecl::Index of the owning function.
  EBlockKind Kind = EBlockKind::FunctionSegment;
  /// Pc of the Prelog instruction in each artifact; replay starts at
  /// EmuEntryPc.
  uint32_t ObjectEntryPc = 0;
  uint32_t EmuEntryPc = 0;
  /// USED(i): the prelog contents (§5.1).
  std::vector<VarId> Used;
  /// DEFINED(i): the postlog contents.
  std::vector<VarId> Defined;
};

/// Static description of one synchronization unit (program-wide id).
struct UnitInfo {
  uint32_t Id = 0;
  uint32_t Func = 0;
  /// Shared variables captured by the unit's additional prelog (§5.5).
  std::vector<VarId> SharedReads;
};

/// One compiled function: both instrumentation artifacts share the frame
/// layout and function index.
struct CompiledFunction {
  std::string Name;
  uint32_t Index = 0;
  uint32_t NumParams = 0;
  uint32_t FrameSize = 0;
  bool Logged = true;
  Chunk Object; ///< execution-phase artifact (Prelog/Postlog/UnitLog)
  Chunk Emu;    ///< debugging-phase artifact (adds TraceStmt/TraceCall*)
  /// Pre-decoded fast-path streams (slot i == pc i of the source chunk);
  /// built once by the compiler, shared read-only by every interpreter.
  DecodedChunk ObjectDecoded;
  DecodedChunk EmuDecoded;
};

struct CompileOptions {
  EBlockOptions EBlocks;
  /// When false, the object code is emitted without Prelog/Postlog/UnitLog
  /// instructions — the uninstrumented baseline of experiment E1 (the
  /// paper's "<15% execution-time overhead" claim is measured against it).
  /// The emulation package is unaffected.
  bool Instrument = true;
};

/// The complete preparatory-phase output. Owns the AST and all analysis
/// results; the VM, logging, and debugging subsystems only ever borrow it.
class CompiledProgram {
public:
  std::unique_ptr<Program> Ast;
  std::unique_ptr<SymbolTable> Symbols;
  std::unique_ptr<ProgramDatabase> Database;
  std::unique_ptr<CallGraph> Callgraph;
  ModRefResult<BitVarSet> ModRef;
  PartitionPlan Plan;
  CompileOptions Options;

  std::vector<CompiledFunction> Funcs; ///< by FuncDecl::Index.
  std::vector<EBlockInfo> EBlocks;     ///< by e-block id.
  std::vector<UnitInfo> Units;         ///< by program-wide unit id.

  /// Per-function static analyses (preparatory phase, Fig 3.1).
  std::vector<std::unique_ptr<Cfg>> Cfgs;
  std::vector<std::unique_ptr<StaticPdg>> Pdgs;
  std::vector<std::unique_ptr<SimplifiedStaticGraph>> Simplified;

  /// Semaphore initial counts and channel capacities, by id.
  std::vector<int64_t> SemInit;
  std::vector<int64_t> ChanCapacity;

  uint32_t MainIndex = InvalidId;

  const CompiledFunction &func(uint32_t Index) const {
    assert(Index < Funcs.size() && "function index out of range");
    return Funcs[Index];
  }

  const EBlockInfo &eblock(uint32_t Id) const {
    assert(Id < EBlocks.size() && "e-block id out of range");
    return EBlocks[Id];
  }

  const UnitInfo &unit(uint32_t Id) const {
    assert(Id < Units.size() && "unit id out of range");
    return Units[Id];
  }
};

} // namespace ppd

#endif // PPD_COMPILER_COMPILEDPROGRAM_H
