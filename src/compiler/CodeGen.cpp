//===- compiler/CodeGen.cpp -----------------------------------------------===//
//
// Part of PPD. See CodeGen.h.
//
//===----------------------------------------------------------------------===//

#include "compiler/CodeGen.h"

using namespace ppd;

CodeGen::CodeGen(const Program &P, const SymbolTable &Symbols,
                 CompiledProgram &Out)
    : P(P), Symbols(Symbols), Out(Out) {}

uint32_t CodeGen::emit(GenState &S, Op Opcode, int32_t A, int32_t B,
                       int64_t Imm) {
  return S.Code->emit({Opcode, A, B, Imm}, S.CurStmt);
}

void CodeGen::genLoad(VarId Var, GenState &S) {
  const VarInfo &Info = Symbols.var(Var);
  assert(!Info.isArray() && "whole-array loads are rejected by sema");
  switch (Info.Kind) {
  case VarKind::SharedGlobal:
    emit(S, Op::LoadShared, int32_t(Info.Offset), int32_t(Var));
    return;
  case VarKind::PrivateGlobal:
    emit(S, Op::LoadPriv, int32_t(Info.Offset), int32_t(Var));
    return;
  case VarKind::Param:
  case VarKind::Local:
    emit(S, Op::LoadLocal, int32_t(Info.Offset), int32_t(Var));
    return;
  }
}

void CodeGen::genLoadElem(VarId Var, GenState &S) {
  const VarInfo &Info = Symbols.var(Var);
  assert(Info.isArray() && "element load of a scalar");
  switch (Info.Kind) {
  case VarKind::SharedGlobal:
    emit(S, Op::LoadSharedElem, int32_t(Info.Offset), int32_t(Var),
         Info.ArraySize);
    return;
  case VarKind::PrivateGlobal:
    emit(S, Op::LoadPrivElem, int32_t(Info.Offset), int32_t(Var),
         Info.ArraySize);
    return;
  case VarKind::Param:
  case VarKind::Local:
    emit(S, Op::LoadLocalElem, int32_t(Info.Offset), int32_t(Var),
         Info.ArraySize);
    return;
  }
}

void CodeGen::genAssignTarget(VarId Var, bool HasIndex, GenState &S) {
  const VarInfo &Info = Symbols.var(Var);
  if (HasIndex) {
    switch (Info.Kind) {
    case VarKind::SharedGlobal:
      emit(S, Op::StoreSharedElem, int32_t(Info.Offset), int32_t(Var),
           Info.ArraySize);
      return;
    case VarKind::PrivateGlobal:
      emit(S, Op::StorePrivElem, int32_t(Info.Offset), int32_t(Var),
           Info.ArraySize);
      return;
    case VarKind::Param:
    case VarKind::Local:
      emit(S, Op::StoreLocalElem, int32_t(Info.Offset), int32_t(Var),
           Info.ArraySize);
      return;
    }
  }
  switch (Info.Kind) {
  case VarKind::SharedGlobal:
    emit(S, Op::StoreShared, int32_t(Info.Offset), int32_t(Var));
    return;
  case VarKind::PrivateGlobal:
    emit(S, Op::StorePriv, int32_t(Info.Offset), int32_t(Var));
    return;
  case VarKind::Param:
  case VarKind::Local:
    emit(S, Op::StoreLocal, int32_t(Info.Offset), int32_t(Var));
    return;
  }
}

void CodeGen::genExpr(const Expr &E, GenState &S) {
  switch (E.getKind()) {
  case ExprKind::IntLit:
    emit(S, Op::PushConst, 0, 0, cast<IntLitExpr>(&E)->Value);
    return;
  case ExprKind::VarRef:
    genLoad(cast<VarRefExpr>(&E)->Var, S);
    return;
  case ExprKind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(&E);
    genExpr(*A->Index, S);
    genLoadElem(A->Var, S);
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    genExpr(*U->Operand, S);
    emit(S, U->Op == UnaryOp::Neg ? Op::Neg : Op::Not);
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    if (B->Op == BinaryOp::And) {
      // a && b: short-circuit, producing 0/1.
      genExpr(*B->Lhs, S);
      uint32_t ToFalse = emit(S, Op::JumpIfFalse);
      genExpr(*B->Rhs, S);
      emit(S, Op::ToBool);
      uint32_t ToEnd = emit(S, Op::Jump);
      S.Code->patchA(ToFalse, int32_t(S.Code->size()));
      emit(S, Op::PushConst, 0, 0, 0);
      S.Code->patchA(ToEnd, int32_t(S.Code->size()));
      return;
    }
    if (B->Op == BinaryOp::Or) {
      genExpr(*B->Lhs, S);
      uint32_t ToTrue = emit(S, Op::JumpIfTrue);
      genExpr(*B->Rhs, S);
      emit(S, Op::ToBool);
      uint32_t ToEnd = emit(S, Op::Jump);
      S.Code->patchA(ToTrue, int32_t(S.Code->size()));
      emit(S, Op::PushConst, 0, 0, 1);
      S.Code->patchA(ToEnd, int32_t(S.Code->size()));
      return;
    }
    genExpr(*B->Lhs, S);
    genExpr(*B->Rhs, S);
    switch (B->Op) {
    case BinaryOp::Add:
      emit(S, Op::Add);
      return;
    case BinaryOp::Sub:
      emit(S, Op::Sub);
      return;
    case BinaryOp::Mul:
      emit(S, Op::Mul);
      return;
    case BinaryOp::Div:
      emit(S, Op::Div);
      return;
    case BinaryOp::Mod:
      emit(S, Op::Mod);
      return;
    case BinaryOp::Eq:
      emit(S, Op::CmpEq);
      return;
    case BinaryOp::Ne:
      emit(S, Op::CmpNe);
      return;
    case BinaryOp::Lt:
      emit(S, Op::CmpLt);
      return;
    case BinaryOp::Le:
      emit(S, Op::CmpLe);
      return;
    case BinaryOp::Gt:
      emit(S, Op::CmpGt);
      return;
    case BinaryOp::Ge:
      emit(S, Op::CmpGe);
      return;
    case BinaryOp::And:
    case BinaryOp::Or:
      break; // handled above
    }
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    for (const ExprPtr &Arg : C->Args)
      genExpr(*Arg, S);
    if (C->BuiltinKind != Builtin::None) {
      emit(S, Op::CallBuiltin, int32_t(C->BuiltinKind),
           int32_t(C->Args.size()));
      return;
    }
    uint32_t Callee = C->ResolvedFunc->Index;
    if (S.Emu)
      emit(S, Op::TraceCallBegin, int32_t(Callee), int32_t(S.CurStmt));
    emit(S, Op::Call, int32_t(Callee), int32_t(C->Args.size()));
    if (S.Emu)
      emit(S, Op::TraceCallEnd, int32_t(Callee));
    return;
  }
  case ExprKind::Recv:
    emit(S, Op::RecvCh, int32_t(cast<RecvExpr>(&E)->Chan));
    return;
  case ExprKind::Input:
    emit(S, Op::InputVal);
    return;
  }
}

void CodeGen::maybeUnitLog(const Stmt &St, GenState &S) {
  if (!S.Emu && !Out.Options.Instrument)
    return;
  auto It = S.UnitAtStmt->find(St.Id);
  if (It != S.UnitAtStmt->end())
    emit(S, Op::UnitLog, int32_t(It->second));
}

/// Emits \p Opcode unless logging instrumentation is disabled for this
/// artifact (object code with Instrument=false).
uint32_t CodeGen::emitLogOp(GenState &S, Op Opcode, int32_t A, int32_t B) {
  if (!S.Emu && !Out.Options.Instrument)
    return S.Code->size();
  return emit(S, Opcode, A, B);
}

void CodeGen::genStmt(const Stmt &St, GenState &S) {
  StmtId Saved = S.CurStmt;
  S.CurStmt = St.Id;
  // Every executable statement begins a trace event in the emulation
  // package. Blocks are structural; a For's event is emitted at its loop
  // top (after the init statement) so each condition evaluation — and only
  // those — is an event.
  if (S.Emu && !isa<BlockStmt>(&St) && !isa<ForStmt>(&St))
    emit(S, Op::TraceStmt, int32_t(St.Id));

  switch (St.getKind()) {
  case StmtKind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(&St)->Body)
      genStmt(*Child, S);
    break;

  case StmtKind::VarDecl: {
    const auto *D = cast<VarDeclStmt>(&St);
    const VarInfo &Info = Symbols.var(D->Var);
    if (D->isArray()) {
      emit(S, Op::ZeroLocal, int32_t(Info.Offset), int32_t(D->Var),
           D->ArraySize);
      break;
    }
    if (D->Init)
      genExpr(*D->Init, S);
    else
      emit(S, Op::PushConst, 0, 0, 0);
    emit(S, Op::StoreLocal, int32_t(Info.Offset), int32_t(D->Var));
    maybeUnitLog(St, S); // init may contain a logged call / recv
    break;
  }

  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&St);
    if (A->Index)
      genExpr(*A->Index, S);
    genExpr(*A->Value, S);
    genAssignTarget(A->Var, A->Index != nullptr, S);
    maybeUnitLog(St, S);
    break;
  }

  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&St);
    genExpr(*I->Cond, S);
    maybeUnitLog(St, S); // boundary (recv/logged call in condition)
    uint32_t ToElse = emit(S, Op::JumpIfFalse);
    genStmt(*I->Then, S);
    if (I->Else) {
      uint32_t ToEnd = emit(S, Op::Jump);
      S.Code->patchA(ToElse, int32_t(S.Code->size()));
      genStmt(*I->Else, S);
      S.Code->patchA(ToEnd, int32_t(S.Code->size()));
    } else {
      S.Code->patchA(ToElse, int32_t(S.Code->size()));
    }
    break;
  }

  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(&St);
    // The prologue TraceStmt sits right before the condition; jumping back
    // to it makes every iteration's predicate evaluation a fresh event.
    uint32_t LoopTop = S.Emu ? S.Code->size() - 1 : S.Code->size();
    genExpr(*W->Cond, S);
    maybeUnitLog(St, S);
    uint32_t ToExit = emit(S, Op::JumpIfFalse);
    genStmt(*W->Body, S);
    emit(S, Op::Jump, int32_t(LoopTop));
    S.Code->patchA(ToExit, int32_t(S.Code->size()));
    break;
  }

  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&St);
    if (F->Init)
      genStmt(*F->Init, S);
    S.CurStmt = St.Id;
    uint32_t LoopTop;
    if (S.Emu)
      LoopTop = emit(S, Op::TraceStmt, int32_t(St.Id));
    else
      LoopTop = S.Code->size();
    if (F->Cond)
      genExpr(*F->Cond, S);
    else
      emit(S, Op::PushConst, 0, 0, 1);
    maybeUnitLog(St, S);
    uint32_t ToExit = emit(S, Op::JumpIfFalse);
    genStmt(*F->Body, S);
    if (F->Step)
      genStmt(*F->Step, S);
    emit(S, Op::Jump, int32_t(LoopTop));
    S.Code->patchA(ToExit, int32_t(S.Code->size()));
    break;
  }

  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&St);
    if (R->Value)
      genExpr(*R->Value, S);
    else
      emit(S, Op::PushConst, 0, 0, 0);
    maybeUnitLog(St, S);
    if (S.CurrentEBlock != InvalidId)
      emitLogOp(S, Op::Postlog, int32_t(S.CurrentEBlock),
                PostlogExitsFunction);
    emit(S, Op::Ret);
    break;
  }

  case StmtKind::Expr:
    genExpr(*cast<ExprStmt>(&St)->Call, S);
    emit(S, Op::Pop);
    maybeUnitLog(St, S);
    break;

  case StmtKind::P:
    emit(S, Op::SemP, int32_t(cast<PStmt>(&St)->SemId));
    maybeUnitLog(St, S);
    break;

  case StmtKind::V:
    emit(S, Op::SemV, int32_t(cast<VStmt>(&St)->SemId));
    maybeUnitLog(St, S);
    break;

  case StmtKind::Send: {
    const auto *M = cast<SendStmt>(&St);
    genExpr(*M->Value, S);
    emit(S, Op::SendCh, int32_t(M->Chan));
    maybeUnitLog(St, S);
    break;
  }

  case StmtKind::Spawn: {
    const auto *Sp = cast<SpawnStmt>(&St);
    for (const ExprPtr &Arg : Sp->Args)
      genExpr(*Arg, S);
    emit(S, Op::SpawnProc, int32_t(Sp->ResolvedFunc->Index),
         int32_t(Sp->Args.size()));
    maybeUnitLog(St, S);
    break;
  }

  case StmtKind::Print:
    genExpr(*cast<PrintStmt>(&St)->Value, S);
    emit(S, Op::PrintVal);
    maybeUnitLog(St, S);
    break;
  }
  S.CurStmt = Saved;
}

void CodeGen::genOneArtifact(const FuncDecl &F,
                             const std::vector<uint32_t> &RegionEBlockIds,
                             GenState &S) {
  const FuncPlan &FP = Out.Plan.Funcs[F.Index];

  if (!FP.Logged) {
    for (const StmtPtr &Top : F.Body->Body)
      genStmt(*Top, S);
    S.CurStmt = InvalidId;
    emit(S, Op::PushConst, 0, 0, 0);
    emit(S, Op::Ret);
    return;
  }

  assert(FP.Regions.size() == RegionEBlockIds.size() &&
         "region/e-block mismatch");
  for (size_t R = 0; R != FP.Regions.size(); ++R) {
    const EBlockRegion &Region = FP.Regions[R];
    uint32_t EbId = RegionEBlockIds[R];
    EBlockInfo &Info = Out.EBlocks[EbId];
    uint32_t EntryPc = S.Code->size();
    if (S.Emu)
      Info.EmuEntryPc = EntryPc;
    else
      Info.ObjectEntryPc = EntryPc;

    S.CurStmt = InvalidId;
    emitLogOp(S, Op::Prelog, int32_t(EbId));
    S.CurrentEBlock = EbId;

    for (const Stmt *Top : Region.TopStmts)
      genStmt(*Top, S);

    // Segment/loop boundary postlog (flag 0); a trailing return inside the
    // region already emitted an exits-function postlog and left this
    // unreachable. The final region's boundary postlog is the implicit
    // return's, below.
    S.CurStmt = InvalidId;
    if (R + 1 != FP.Regions.size())
      emitLogOp(S, Op::Postlog, int32_t(EbId), 0);
  }

  // Implicit return, owned by the last region.
  S.CurStmt = InvalidId;
  emit(S, Op::PushConst, 0, 0, 0);
  emitLogOp(S, Op::Postlog, int32_t(RegionEBlockIds.back()),
       PostlogExitsFunction);
  emit(S, Op::Ret);
}

void CodeGen::genFunction(
    const FuncDecl &F, const std::vector<uint32_t> &RegionEBlockIds,
    const std::unordered_map<StmtId, uint32_t> &UnitAtStmt) {
  CompiledFunction &CF = Out.Funcs[F.Index];

  GenState Obj;
  Obj.Code = &CF.Object;
  Obj.Emu = false;
  Obj.UnitAtStmt = &UnitAtStmt;
  genOneArtifact(F, RegionEBlockIds, Obj);

  GenState Emu;
  Emu.Code = &CF.Emu;
  Emu.Emu = true;
  Emu.UnitAtStmt = &UnitAtStmt;
  genOneArtifact(F, RegionEBlockIds, Emu);
}
