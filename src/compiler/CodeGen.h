//===- compiler/CodeGen.h - Bytecode generation -----------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates both instrumentation artifacts for one function from one walk
/// structure: the *object code* (Prelog/Postlog/UnitLog) and the
/// *emulation package* (adds TraceStmt/TraceCallBegin/TraceCallEnd). Both
/// runs perform the same statement walk, so the sequence of log-record
/// producing instructions is identical by construction — the property the
/// replay engine's linear log cursor relies on (§5.3).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_COMPILER_CODEGEN_H
#define PPD_COMPILER_CODEGEN_H

#include "compiler/CompiledProgram.h"

#include <unordered_map>

namespace ppd {

class CodeGen {
public:
  CodeGen(const Program &P, const SymbolTable &Symbols,
          CompiledProgram &Out);

  /// Emits both chunks of \p F into Out.Funcs[F.Index], recording e-block
  /// entry pcs in Out.EBlocks. \p RegionEBlockIds maps the function's
  /// region index to its global e-block id; \p UnitAtStmt maps a boundary
  /// statement to the global id of the unit starting there (only present
  /// when the unit logs something).
  void genFunction(const FuncDecl &F,
                   const std::vector<uint32_t> &RegionEBlockIds,
                   const std::unordered_map<StmtId, uint32_t> &UnitAtStmt);

private:
  struct GenState {
    Chunk *Code = nullptr;
    bool Emu = false;
    /// Innermost enclosing e-block (for Postlog at returns); InvalidId in
    /// unlogged functions.
    uint32_t CurrentEBlock = InvalidId;
    /// Statement currently being compiled (tags instructions).
    StmtId CurStmt = InvalidId;
    const std::unordered_map<StmtId, uint32_t> *UnitAtStmt = nullptr;
  };

  uint32_t emit(GenState &S, Op Opcode, int32_t A = 0, int32_t B = 0,
                int64_t Imm = 0);
  uint32_t emitLogOp(GenState &S, Op Opcode, int32_t A = 0, int32_t B = 0);
  void genExpr(const Expr &E, GenState &S);
  void genStmt(const Stmt &St, GenState &S);
  void genAssignTarget(VarId Var, bool HasIndex, GenState &S);
  void genLoad(VarId Var, GenState &S);
  void genLoadElem(VarId Var, GenState &S);
  /// Emits the UnitLog for the unit starting at \p St, if any.
  void maybeUnitLog(const Stmt &St, GenState &S);
  void genOneArtifact(const FuncDecl &F,
                      const std::vector<uint32_t> &RegionEBlockIds,
                      GenState &S);

  const Program &P;
  const SymbolTable &Symbols;
  CompiledProgram &Out;
};

} // namespace ppd

#endif // PPD_COMPILER_CODEGEN_H
