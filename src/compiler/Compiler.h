//===- compiler/Compiler.h - Preparatory-phase driver -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Compiler/Linker of the paper's preparatory phase (Fig 3.1). One
/// call runs the full pipeline — parse, semantic analysis, call graph,
/// interprocedural MOD/REF, program database, e-block partitioning,
/// per-function CFG / static PDG / simplified static graph with
/// synchronization units, USED/DEFINED summaries, and code generation of
/// both artifacts — and returns the CompiledProgram that the execution
/// phase (vm/) and debugging phase (core/) operate on.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_COMPILER_COMPILER_H
#define PPD_COMPILER_COMPILER_H

#include "compiler/CompiledProgram.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace ppd {

class Compiler {
public:
  /// Compiles PPL source text. Returns null (with diagnostics) on any
  /// lexical, syntactic, or semantic error.
  static std::unique_ptr<CompiledProgram>
  compile(const std::string &Source, const CompileOptions &Options,
          DiagnosticEngine &Diags);

  /// Compiles an already-parsed program (takes ownership).
  static std::unique_ptr<CompiledProgram>
  compile(std::unique_ptr<Program> Ast, const CompileOptions &Options,
          DiagnosticEngine &Diags);
};

} // namespace ppd

#endif // PPD_COMPILER_COMPILER_H
