//===- compiler/EBlockPartition.cpp ---------------------------------------===//
//
// Part of PPD. See EBlockPartition.h.
//
//===----------------------------------------------------------------------===//

#include "compiler/EBlockPartition.h"

#include "sema/Accesses.h"

#include <algorithm>

using namespace ppd;

unsigned ppd::countStmts(const Stmt &S) {
  unsigned N = 0;
  forEachStmt(S, [&](const Stmt &) { ++N; });
  return N;
}

PartitionPlan ppd::planEBlocks(const Program &P, const CallGraph &CG,
                               const EBlockOptions &Options) {
  PartitionPlan Plan;
  Plan.Funcs.resize(P.Funcs.size());

  // Which functions must stay logged no matter what: process roots.
  std::vector<bool> MustLog(P.Funcs.size(), false);
  if (const FuncDecl *Main = P.findFunc("main"))
    MustLog[Main->Index] = true;
  for (const FuncDecl *Spawned : CG.spawnTargets())
    MustLog[Spawned->Index] = true;

  for (const auto &F : P.Funcs) {
    FuncPlan &FP = Plan.Funcs[F->Index];

    if (Options.LeafInheritance && !MustLog[F->Index] && CG.isLeaf(*F) &&
        countStmts(*F->Body) <= Options.LeafMaxStmts &&
        !CG.callers(*F).empty()) {
      FP.Logged = false;
      continue;
    }

    FP.Logged = true;

    // Walk the top-level statement list, cutting at loop regions and (when
    // splitting) at segment size limits.
    EBlockRegion Segment;
    unsigned SegmentTopCount = 0;
    auto FlushSegment = [&] {
      if (!Segment.TopStmts.empty()) {
        FP.Regions.push_back(std::move(Segment));
        Segment = EBlockRegion();
        SegmentTopCount = 0;
      }
    };

    for (const StmtPtr &Top : F->Body->Body) {
      bool IsLoop = isa<WhileStmt>(Top.get()) || isa<ForStmt>(Top.get());
      if (Options.LoopBlocks && IsLoop &&
          countStmts(*Top) >= Options.LoopMinStmts) {
        FlushSegment();
        EBlockRegion Loop;
        Loop.Kind = EBlockKind::Loop;
        Loop.TopStmts.push_back(Top.get());
        FP.Regions.push_back(std::move(Loop));
        continue;
      }
      if (Options.SplitLargeFunctions &&
          SegmentTopCount >= Options.MaxSegmentStmts)
        FlushSegment();
      Segment.TopStmts.push_back(Top.get());
      ++SegmentTopCount;
    }
    FlushSegment();

    // The last region must be a FunctionSegment so the implicit return has
    // an owner; append an empty one after a trailing loop (or for an empty
    // body).
    if (FP.Regions.empty() ||
        FP.Regions.back().Kind != EBlockKind::FunctionSegment)
      FP.Regions.push_back(EBlockRegion());
  }
  return Plan;
}
