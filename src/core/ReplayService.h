//===- core/ReplayService.h - Parallel need-to-generate replay --*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay service: the need-to-generate half of incremental tracing
/// (§5.3) as a memoized, parallel engine.
///
/// Log intervals are independent by construction — each is seeded
/// entirely from its prelog and unit logs, and on a race-free instance a
/// replay is interleaving-independent (§5.5) — so regenerating many
/// intervals is embarrassingly parallel. ParallelReplayer exploits that:
///
///   * every replay goes through a sharded LRU ReplayCache keyed by
///     (process, interval, override fingerprint), so a repeated flowback
///     query costs a lookup instead of an emulation run;
///   * concurrent requests for the same interval are deduplicated
///     (single-flight): one thread replays, the rest share the result;
///   * getMany() fans a query's interval set out across a work-stealing
///     ThreadPool, with the calling thread helping to drain the queue;
///   * prefetchNeighbors() warms the intervals a flowback walk is likely
///     to enter next — the parent and the preceding sibling in the
///     nested-interval tree (Fig 5.2), where the values read by a prelog
///     were produced — in the background.
///
/// The service never touches the dynamic graph: trace regeneration is the
/// parallel part; graph splicing stays on the controller's thread.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_REPLAYSERVICE_H
#define PPD_CORE_REPLAYSERVICE_H

#include "core/Replay.h"
#include "log/BufferPool.h"
#include "log/ExecutionLog.h"
#include "log/PageStore.h"
#include "support/ThreadPool.h"
#include "trace/ReplayCache.h"

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ppd {

/// Single-flight table shared by every replayer of one log: key → future
/// of the in-progress replay. Kept as a standalone (shareable) object so
/// concurrent debugging sessions over the same execution deduplicate
/// replays across sessions, not just within one.
struct ReplayFlightTable {
  using ReplayPtr = std::shared_ptr<const ReplayResult>;
  std::mutex Mutex;
  std::unordered_map<ReplayKey, std::shared_future<ReplayPtr>,
                     ReplayKeyHash>
      Pending;
};

struct ReplayServiceOptions {
  /// Worker threads for parallel replay; 0 = serial (inline on the
  /// caller, fully deterministic scheduling). Ignored when SharedPool is
  /// set.
  unsigned Threads = 0;
  /// Cache budget for regenerated traces (0 = unbounded). Ignored when
  /// SharedCache is set.
  size_t CacheBytes = size_t(64) << 20;
  unsigned CacheShards = 8;
  /// Warm parent/preceding-sibling intervals in the background after each
  /// replay request.
  bool Prefetch = false;

  /// A cache shared with other replayers of the same log (the server's
  /// per-program cache). Valid only when every sharer replays identical
  /// log content, since cache keys are (pid, interval, fingerprint).
  /// Null: the replayer owns a private cache sized by CacheBytes.
  std::shared_ptr<ReplayCache<ReplayResult>> SharedCache;
  /// A single-flight table shared with other replayers of the same log;
  /// must be non-null iff SharedCache is (they dedupe the same keyspace).
  std::shared_ptr<ReplayFlightTable> SharedFlights;
  /// An externally owned pool to run on (the server's worker pool). Null:
  /// the replayer owns a private pool with `Threads` workers. The pool
  /// must outlive the replayer.
  ThreadPool *SharedPool = nullptr;

  /// Paged mode: when set, the ExecutionLog passed to the replayer is the
  /// store's facade (headers only) and every cache miss pins the
  /// replayed process's section in the buffer pool for the duration of
  /// the interval re-execution, unpinning on completion. Unset: records
  /// come from the whole-loaded log, as before.
  PagedLog Paged;

  /// The replay tier every miss runs with.
  ReplayEngineKind Engine = ReplayEngineKind::Jit;
  /// JIT state shared with other replayers of the same program (the
  /// server's per-program JitProgram), so compiled code and hotness
  /// aggregate across sessions. Null: the engine owns a private one.
  std::shared_ptr<JitProgram> SharedJit;
};

struct ReplayServiceStats {
  ReplayCacheStats Cache;
  ThreadPoolStats Pool;
  /// Buffer-pool counters; meaningful only when HasBuffer (paged mode).
  BufferPoolStats Buffer;
  bool HasBuffer = false;
  /// Replays actually executed by the engine (cache misses).
  uint64_t EngineReplays = 0;
  /// Instructions executed across those replays.
  uint64_t EngineInstructions = 0;
  /// Background prefetch tasks issued.
  uint64_t PrefetchesIssued = 0;
  // JIT tier counters (all zero when the backend is unavailable).
  uint64_t JitCompiles = 0;
  uint64_t JitCompileNs = 0;
  uint64_t JitExecNs = 0;
  uint64_t JitBailouts = 0;
  uint64_t JitReplays = 0;
};

/// Canonical text rendering of a stats snapshot — the single source of
/// truth shared by the debugger `stats` command and the server metrics
/// report ("cache: ..." and "pool: ..." lines).
std::string renderReplayServiceStats(const ReplayServiceStats &Stats);

/// Cached, parallel front end to ReplayEngine.
class ParallelReplayer {
public:
  using ReplayPtr = std::shared_ptr<const ReplayResult>;
  /// (pid, interval index) request.
  using IntervalRef = std::pair<uint32_t, uint32_t>;

  ParallelReplayer(const CompiledProgram &Prog, const ExecutionLog &Log,
                   const LogIndex &Index, ReplayServiceOptions Options = {});
  ~ParallelReplayer();

  /// The memoized replay of one interval; replays on miss. Thread-safe.
  ReplayPtr get(uint32_t Pid, uint32_t IntervalIdx,
                const std::vector<ReplayOverride> &Overrides = {});

  /// Replays every requested interval, fanning misses out across the
  /// pool. Results are in request order. Blocks until all complete; the
  /// calling thread helps drain the queue.
  std::vector<ReplayPtr> getMany(const std::vector<IntervalRef> &Requests);

  /// The interval set a flowback query rooted at (Pid, IntervalIdx) can
  /// transitively need (Fig 5.2): the interval itself, its ancestors
  /// (whose traces hold the surrounding events), the preceding siblings
  /// at each level (whose postlogs produced the values the prelog read),
  /// and its direct children (expandable sub-graph nodes).
  std::vector<IntervalRef> transitiveIntervals(uint32_t Pid,
                                               uint32_t IntervalIdx) const;

  /// Queues background replays of the parent and preceding sibling of
  /// (Pid, IntervalIdx) — the likely next stops of a backward walk.
  /// No-op unless Options.Prefetch is set and the pool has workers.
  void prefetchNeighbors(uint32_t Pid, uint32_t IntervalIdx);

  /// Waits for all outstanding background work.
  void drain();

  ReplayServiceStats stats() const;
  const ReplayServiceOptions &options() const { return Options; }

  /// The worker pool replays fan out on (owned or shared). Other
  /// shardable work in a session — the vectorized race sweep — reuses it
  /// rather than spinning up a second pool.
  ThreadPool *pool() { return Pool; }

  /// Stable hash of an override list; 0 iff the list is empty, so the
  /// faithful replay owns fingerprint 0.
  static uint64_t fingerprint(const std::vector<ReplayOverride> &Overrides);

private:
  ReplayPtr replayMiss(const ReplayKey &Key,
                       const std::vector<ReplayOverride> &Overrides);
  void finishBackgroundTask();

  const CompiledProgram &Prog;
  const ExecutionLog &Log;
  const LogIndex &Index;
  ReplayServiceOptions Options;
  ReplayEngine Engine;
  /// Shared with sibling sessions when Options.SharedCache was set;
  /// privately owned otherwise.
  std::shared_ptr<ReplayCache<ReplayResult>> Cache;
  std::shared_ptr<ReplayFlightTable> Flights;
  /// Null when running on an external pool (Options.SharedPool).
  std::unique_ptr<ThreadPool> OwnedPool;
  ThreadPool *Pool;

  std::atomic<uint64_t> EngineReplays{0};
  std::atomic<uint64_t> EngineInstructions{0};
  std::atomic<uint64_t> PrefetchesIssued{0};

  std::mutex BackgroundMutex;
  std::condition_variable BackgroundCv;
  uint64_t BackgroundPending = 0;
};

} // namespace ppd

#endif // PPD_CORE_REPLAYSERVICE_H
