//===- core/Replay.h - Emulation-package replay -----------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay engine: executes one log interval through the emulation
/// package to regenerate the fine-grained trace the dynamic graph needs —
/// the "need-to-generate" half of incremental tracing (§3.1, §5.3).
///
/// Replay is strictly single-process. The log supplies everything the
/// original environment did:
///   * the interval's prelog seeds the frame and the globals (USED set),
///   * unit logs re-seed shared variables at synchronization-unit entries
///     (§5.5) — valid when the execution instance is race-free,
///   * input and receive records supply external values,
///   * P/V/send/spawn become no-ops (their records are consumed to keep
///     the cursor aligned),
///   * calls to logged callees are *not* re-executed: the nested
///     interval's postlog(s) are applied instead (Fig 5.2), producing a
///     CallSkipped sub-graph event.
///
/// When the interval completed (has a postlog), the replayed final values
/// are verified against the logged postlog: mismatches indicate the logs
/// were invalidated — on a race-free instance there are none (a property
/// the test suite asserts across schedules).
///
/// What-if overrides (§5.7) let the user change a variable's value at a
/// chosen event and observe downstream effects; if the modified run's
/// control flow departs from the logged record sequence the engine
/// switches to lenient synthesis and flags Diverged.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_REPLAY_H
#define PPD_CORE_REPLAY_H

#include "compiler/CompiledProgram.h"
#include "log/ExecutionLog.h"
#include "trace/TraceEvent.h"
#include "vm/Machine.h"

#include <memory>
#include <string>
#include <vector>

namespace ppd {

class JitProgram;

/// The replay tier. Jit compiles hot e-blocks to native code with the
/// decoded engine underneath (warm-up replays, side-exits, unsupported
/// hosts all run decoded); Decoded is the pre-decoded threaded
/// interpreter; Legacy is the one-instruction switch reference. All three
/// produce bit-identical results — tests/jit_test.cpp, interp_test.cpp,
/// and the fuzz oracle matrix assert it.
enum class ReplayEngineKind : uint8_t { Jit, Decoded, Legacy };

/// Maps "jit" / "decoded" / "legacy" to the kind; false on anything else.
bool parseReplayEngine(const std::string &Name, ReplayEngineKind &Kind);
const char *replayEngineName(ReplayEngineKind Kind);

/// A §5.7 experiment: before the event numbered AtEvent is executed, set
/// Var (element Index, or -1 for scalars) to Value.
struct ReplayOverride {
  uint32_t AtEvent = 0;
  VarId Var = InvalidId;
  int64_t Index = -1;
  int64_t Value = 0;
};

struct ReplayOptions {
  std::vector<ReplayOverride> Overrides;
  uint64_t MaxInstructions = 50'000'000;
  /// Which replay tier executes the interval. Jit degrades to Decoded
  /// transparently when the backend is compiled out (PPD_JIT=OFF), the
  /// host is not x86-64, or the function's e-blocks are not hot yet.
  ReplayEngineKind Engine = ReplayEngineKind::Jit;
};

/// A replayed value that disagrees with the logged postlog.
struct ReplayMismatch {
  VarId Var = InvalidId;
  int64_t Index = 0;
  int64_t Expected = 0;
  int64_t Actual = 0;
};

struct ReplayResult {
  TraceBuffer Events;
  /// False only on internal divergence (a PPD bug or corrupted log).
  bool Ok = false;
  /// The log ended inside the interval (execution stopped there).
  bool Partial = false;
  /// Replay re-hit the original failure; Failure names it. The last event
  /// in Events is the failing statement — the flowback root.
  bool FailureHit = false;
  RuntimeError Failure;
  /// What-if replays only: control flow left the logged path.
  bool Diverged = false;
  std::string Error;
  /// Postlog verification (closed, non-overridden intervals only).
  std::vector<ReplayMismatch> PostlogMismatches;
  uint64_t Instructions = 0;

  /// Final shadow state, for inspection and what-if comparison.
  std::vector<int64_t> Shared;
  std::vector<int64_t> PrivateGlobals;
  std::vector<int64_t> RootSlots;
  std::vector<OutputRecord> Output;
  bool HasReturn = false;
  int64_t ReturnValue = 0;
};

class ReplayEngine {
public:
  /// \p SharedJit lets several engines of one program (server sessions,
  /// the parallel replayer's workers) share compiled code and hotness;
  /// by default each engine owns a JitProgram (null when the backend is
  /// unavailable — the Jit tier then degrades to Decoded).
  explicit ReplayEngine(const CompiledProgram &Prog,
                        std::shared_ptr<JitProgram> SharedJit = nullptr);

  /// Replays the given interval of process \p Pid.
  ReplayResult replay(const ExecutionLog &Log, uint32_t Pid,
                      const LogInterval &Interval,
                      const ReplayOptions &Options = {}) const;

  /// Same, over one process's log directly — the paged path, where the
  /// section arrives as a buffer-pool pin rather than a whole
  /// ExecutionLog. Replay only ever reads the replayed process's records,
  /// so both overloads produce identical results.
  ReplayResult replay(const ProcessLog &Proc, uint32_t Pid,
                      const LogInterval &Interval,
                      const ReplayOptions &Options = {}) const;

  /// The JIT state backing this engine; null when unavailable.
  JitProgram *jit() const { return Jit.get(); }

private:
  const CompiledProgram &Prog;
  std::shared_ptr<JitProgram> Jit;
};

} // namespace ppd

#endif // PPD_CORE_REPLAY_H
