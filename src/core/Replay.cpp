//===- core/Replay.cpp ----------------------------------------------------===//
//
// Part of PPD. See Replay.h.
//
//===----------------------------------------------------------------------===//

#include "core/Replay.h"

#include "support/Arith.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ppd;

namespace {

/// Integer square root (floor), mirroring the VM's builtin.
int64_t isqrt(int64_t X) {
  assert(X >= 0 && "isqrt of negative value");
  int64_t R = int64_t(std::sqrt(double(X)));
  // Compare in uint64: sqrt's rounding can overshoot enough that R*R (or
  // (R+1)^2 near INT64_MAX) overflows int64.
  while (R > 0 && uint64_t(R) * uint64_t(R) > uint64_t(X))
    --R;
  while (uint64_t(R + 1) * uint64_t(R + 1) <= uint64_t(X))
    ++R;
  return R;
}

struct RFrame {
  uint32_t Func = 0;
  uint32_t ReturnPc = 0;
  uint32_t StackBase = 0;
  std::vector<int64_t> Slots;
  uint32_t OpenEvent = InvalidId;
};

/// The single-process replay interpreter.
class Replayer {
public:
  Replayer(const CompiledProgram &Prog, const ExecutionLog &Log,
           uint32_t Pid, const LogInterval &Interval,
           const ReplayOptions &Options)
      : Prog(Prog), Records(Log.Procs[Pid].Records), Pid(Pid),
        Interval(Interval), Options(Options) {}

  ReplayResult run();

private:
  enum class StepOutcome { Continue, Stop };

  const Chunk &chunk() const { return Prog.func(Frames.back().Func).Emu; }

  void finish(bool OkFlag) {
    Result.Ok = OkFlag;
    Done = true;
  }
  void diverge(const std::string &Message) {
    if (WhatIf) {
      Result.Diverged = true;
      return;
    }
    Result.Error = Message;
    finish(false);
  }

  /// Consumes the next record if it has the expected shape; returns null
  /// otherwise. At end-of-log sets Partial and stops (the process stopped
  /// mid-interval). Under what-if divergence, synthesis is the caller's
  /// job.
  /// True when the cursor sits at the end of what actually executed: the
  /// log is exhausted or a Stop marker (machine freeze) is next.
  bool atExecutionEnd() const {
    return Cursor >= Records.size() ||
           Records[Cursor].Kind == LogRecordKind::Stop;
  }

  const LogRecord *consume(LogRecordKind Kind) {
    if (atExecutionEnd()) {
      if (!WhatIf) {
        Result.Partial = true;
        finish(true);
      }
      return nullptr;
    }
    const LogRecord &R = Records[Cursor];
    if (R.Kind != Kind)
      return nullptr;
    ++Cursor;
    return &R;
  }

  const LogRecord *consumeSync(SyncKind Kind) {
    if (atExecutionEnd()) {
      if (!WhatIf) {
        Result.Partial = true;
        finish(true);
      }
      return nullptr;
    }
    if (Records[Cursor].Kind == LogRecordKind::SyncEvent &&
        Records[Cursor].Sync == Kind)
      return &Records[Cursor++];
    return nullptr;
  }

  void restoreVars(const LogRecord &R) {
    for (const VarValue &V : R.Vars)
      writeVarWhole(V.Var, V.Values);
  }

  void writeVarWhole(VarId Var, const SmallVec<int64_t, 2> &Values) {
    const VarInfo &Info = Prog.Symbols->var(Var);
    int64_t *Base = baseOf(Info);
    if (!Base)
      return;
    std::copy(Values.begin(), Values.end(), Base);
  }

  int64_t *baseOf(const VarInfo &Info) {
    switch (Info.Kind) {
    case VarKind::SharedGlobal:
      return &Shared[Info.Offset];
    case VarKind::PrivateGlobal:
      return &Priv[Info.Offset];
    case VarKind::Param:
    case VarKind::Local:
      // Restoration targets the interval's own function frame (the root);
      // callee locals of skipped intervals are ignored.
      if (!Info.Func || Info.Func->Index != RootFunc)
        return nullptr;
      return &Frames.front().Slots[Info.Offset];
    }
    return nullptr;
  }

  /// Applies the global (shared + per-process) values of a skipped
  /// interval's postlog.
  void applyPostlogGlobals(const LogRecord &R) {
    for (const VarValue &V : R.Vars) {
      const VarInfo &Info = Prog.Symbols->var(V.Var);
      if (!Info.isGlobal())
        continue;
      writeVarWhole(V.Var, V.Values);
    }
  }

  TraceEvent *openEvent() {
    uint32_t Idx = Frames.back().OpenEvent;
    return Idx == InvalidId ? nullptr : &Result.Events.Events[Idx];
  }
  void traceRead(VarId Var, int64_t Value, int64_t Index) {
    if (TraceEvent *E = openEvent())
      E->Reads.push_back({Var, Value, Index});
  }
  void traceWrite(VarId Var, int64_t Value, int64_t Index) {
    if (TraceEvent *E = openEvent())
      E->Writes.push_back({Var, Value, Index});
  }

  void failHere(RuntimeErrorKind Kind, StmtId Stmt) {
    Result.FailureHit = true;
    Result.Failure = {Kind, Pid, Stmt};
    finish(true); // reproducing the failure is a *successful* replay
  }

  void applyOverrides() {
    for (const ReplayOverride &O : Options.Overrides) {
      if (O.AtEvent != Result.Events.Events.size())
        continue;
      const VarInfo &Info = Prog.Symbols->var(O.Var);
      int64_t *Base = baseOf(Info);
      if (!Base)
        continue;
      uint32_t Offset = O.Index < 0 ? 0 : uint32_t(O.Index);
      if (Offset < Info.slotCount())
        Base[Offset] = O.Value;
    }
  }

  void skipNestedCall(uint32_t Callee, StmtId Stmt);
  StepOutcome step();

  const CompiledProgram &Prog;
  const RecordSeq &Records;
  uint32_t Pid;
  const LogInterval &Interval;
  const ReplayOptions &Options;

  ReplayResult Result;
  bool Done = false;
  bool WhatIf = false;

  std::vector<RFrame> Frames;
  std::vector<int64_t> Stack;
  std::vector<int64_t> Shared;
  std::vector<int64_t> Priv;
  uint32_t Pc = 0;
  uint32_t Cursor = 0;
  uint32_t RootFunc = 0;
};

void Replayer::skipNestedCall(uint32_t Callee, StmtId Stmt) {
  // Where the nested invocation's records begin: the controller uses this
  // to locate the interval when the user expands the sub-graph node.
  uint32_t StartCursor = Cursor;
  // The next records must be the nested invocation's intervals (Fig 5.2).
  if (atExecutionEnd() || Records[Cursor].Kind != LogRecordKind::Prelog) {
    if (atExecutionEnd() && !WhatIf) {
      Result.Partial = true;
      finish(true);
      return;
    }
    diverge("expected nested interval prelog at call");
    if (WhatIf) {
      // Synthesize: pop args, push 0.
      uint32_t Argc = Prog.func(Callee).NumParams;
      Stack.resize(Stack.size() - Argc);
      Stack.push_back(0);
    }
    return;
  }

  int64_t RetVal = 0;
  bool SawExit = false;
  unsigned Depth = 0;
  while (Cursor < Records.size()) {
    const LogRecord &R = Records[Cursor++];
    if (R.Kind == LogRecordKind::Prelog) {
      ++Depth;
    } else if (R.Kind == LogRecordKind::Postlog) {
      if (Depth == 0) {
        diverge("unbalanced postlog while skipping nested call");
        return;
      }
      --Depth;
      if (Depth == 0) {
        // A directly nested interval completed: its effects on globals
        // become visible to the caller.
        applyPostlogGlobals(R);
        if (R.Flags & PostlogExitsFunction) {
          RetVal = R.Value;
          SawExit = true;
          break;
        }
      }
    }
  }
  if (!SawExit) {
    // The callee never returned: execution stopped inside it. The caller
    // cannot continue either.
    Result.Partial = true;
    finish(true);
    return;
  }

  uint32_t Argc = Prog.func(Callee).NumParams;
  assert(Stack.size() >= Argc && "call arguments missing");
  std::vector<int64_t> Args(Stack.end() - Argc, Stack.end());
  Stack.resize(Stack.size() - Argc);
  Stack.push_back(RetVal);

  TraceEvent E;
  E.Kind = TraceEventKind::CallSkipped;
  E.Pid = Pid;
  E.Stmt = Stmt;
  E.Callee = Callee;
  E.Value = RetVal;
  E.Args = std::move(Args);
  E.LogCursor = StartCursor;
  Result.Events.append(std::move(E));
}

Replayer::StepOutcome Replayer::step() {
  const Chunk &Code = chunk();
  assert(Pc < Code.size() && "replay pc out of range");
  const Instr I = Code.at(Pc);
  StmtId Stmt = Code.stmtAt(Pc);
  ++Pc;

  auto Push = [&](int64_t V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow in replay");
    int64_t V = Stack.back();
    Stack.pop_back();
    return V;
  };

  bool IsShared = false;
  switch (I.Opcode) {
  case Op::PushConst:
    Push(I.Imm);
    return StepOutcome::Continue;
  case Op::Pop:
    Pop();
    return StepOutcome::Continue;
  case Op::ToBool:
    Stack.back() = Stack.back() != 0;
    return StepOutcome::Continue;

  case Op::LoadLocal: {
    int64_t V = Frames.back().Slots[I.A];
    Push(V);
    traceRead(VarId(I.B), V, -1);
    return StepOutcome::Continue;
  }
  case Op::StoreLocal: {
    int64_t V = Pop();
    Frames.back().Slots[I.A] = V;
    traceWrite(VarId(I.B), V, -1);
    return StepOutcome::Continue;
  }
  case Op::LoadLocalElem: {
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return StepOutcome::Stop;
    }
    int64_t V = Frames.back().Slots[I.A + Idx];
    Push(V);
    traceRead(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }
  case Op::StoreLocalElem: {
    int64_t V = Pop();
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return StepOutcome::Stop;
    }
    Frames.back().Slots[I.A + Idx] = V;
    traceWrite(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }
  case Op::ZeroLocal:
    std::fill_n(Frames.back().Slots.begin() + I.A, I.Imm, 0);
    traceWrite(VarId(I.B), 0, -1);
    return StepOutcome::Continue;

  case Op::LoadShared:
  case Op::LoadSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::LoadPriv:
  case Op::LoadPrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : Priv;
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::LoadSharedElem || I.Opcode == Op::LoadPrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return StepOutcome::Stop;
      }
      Offset += uint32_t(Idx);
    }
    int64_t V = Mem[Offset];
    Push(V);
    traceRead(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }
  case Op::StoreShared:
  case Op::StoreSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::StorePriv:
  case Op::StorePrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : Priv;
    int64_t V = Pop();
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::StoreSharedElem || I.Opcode == Op::StorePrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return StepOutcome::Stop;
      }
      Offset += uint32_t(Idx);
    }
    Mem[Offset] = V;
    traceWrite(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }

  case Op::Add: {
    int64_t B = Pop(), A = Pop();
    Push(wrapAdd(A, B));
    return StepOutcome::Continue;
  }
  case Op::Sub: {
    int64_t B = Pop(), A = Pop();
    Push(wrapSub(A, B));
    return StepOutcome::Continue;
  }
  case Op::Mul: {
    int64_t B = Pop(), A = Pop();
    Push(wrapMul(A, B));
    return StepOutcome::Continue;
  }
  case Op::Div: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      failHere(RuntimeErrorKind::DivideByZero, Stmt);
      return StepOutcome::Stop;
    }
    Push(wrapDiv(A, B));
    return StepOutcome::Continue;
  }
  case Op::Mod: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      failHere(RuntimeErrorKind::ModuloByZero, Stmt);
      return StepOutcome::Stop;
    }
    Push(wrapMod(A, B));
    return StepOutcome::Continue;
  }
  case Op::Neg:
    Stack.back() = wrapNeg(Stack.back());
    return StepOutcome::Continue;
  case Op::Not:
    Stack.back() = Stack.back() == 0;
    return StepOutcome::Continue;
  case Op::CmpEq: {
    int64_t B = Pop(), A = Pop();
    Push(A == B);
    return StepOutcome::Continue;
  }
  case Op::CmpNe: {
    int64_t B = Pop(), A = Pop();
    Push(A != B);
    return StepOutcome::Continue;
  }
  case Op::CmpLt: {
    int64_t B = Pop(), A = Pop();
    Push(A < B);
    return StepOutcome::Continue;
  }
  case Op::CmpLe: {
    int64_t B = Pop(), A = Pop();
    Push(A <= B);
    return StepOutcome::Continue;
  }
  case Op::CmpGt: {
    int64_t B = Pop(), A = Pop();
    Push(A > B);
    return StepOutcome::Continue;
  }
  case Op::CmpGe: {
    int64_t B = Pop(), A = Pop();
    Push(A >= B);
    return StepOutcome::Continue;
  }

  case Op::Jump:
    Pc = uint32_t(I.A);
    return StepOutcome::Continue;
  case Op::JumpIfFalse:
  case Op::JumpIfTrue: {
    int64_t Cond = Pop();
    if (TraceEvent *E = openEvent()) {
      E->IsPredicate = true;
      E->BranchTaken = Cond != 0;
    }
    bool Taken = I.Opcode == Op::JumpIfFalse ? Cond == 0 : Cond != 0;
    if (Taken)
      Pc = uint32_t(I.A);
    return StepOutcome::Continue;
  }

  case Op::Call: {
    uint32_t Callee = uint32_t(I.A);
    if (Prog.func(Callee).Logged) {
      skipNestedCall(Callee, Stmt);
      return Done ? StepOutcome::Stop : StepOutcome::Continue;
    }
    // Inherited leaf: re-execute inline through the emulation package.
    std::vector<int64_t> Args(Stack.end() - I.B, Stack.end());
    Stack.resize(Stack.size() - I.B);
    RFrame Fr;
    Fr.Func = Callee;
    Fr.ReturnPc = Pc;
    Fr.StackBase = uint32_t(Stack.size());
    Fr.Slots.assign(Prog.func(Callee).FrameSize, 0);
    std::copy(Args.begin(), Args.end(), Fr.Slots.begin());
    Frames.push_back(std::move(Fr));
    Pc = 0;
    return StepOutcome::Continue;
  }
  case Op::Ret: {
    int64_t ReturnValue = Pop();
    if (Frames.size() == 1) {
      // Root return without a postlog stop: only possible for unlogged
      // root replay, which the controller never requests.
      Result.HasReturn = true;
      Result.ReturnValue = ReturnValue;
      finish(true);
      return StepOutcome::Stop;
    }
    RFrame Top = std::move(Frames.back());
    Frames.pop_back();
    Stack.resize(Top.StackBase);
    Stack.push_back(ReturnValue);
    Pc = Top.ReturnPc;
    return StepOutcome::Continue;
  }
  case Op::CallBuiltin: {
    switch (Builtin(I.A)) {
    case Builtin::Sqrt: {
      int64_t X = Pop();
      if (X < 0) {
        failHere(RuntimeErrorKind::NegativeSqrt, Stmt);
        return StepOutcome::Stop;
      }
      Push(isqrt(X));
      return StepOutcome::Continue;
    }
    case Builtin::Abs: {
      int64_t X = Pop();
      Push(X < 0 ? -X : X);
      return StepOutcome::Continue;
    }
    case Builtin::Min: {
      int64_t B = Pop(), A = Pop();
      Push(std::min(A, B));
      return StepOutcome::Continue;
    }
    case Builtin::Max: {
      int64_t B = Pop(), A = Pop();
      Push(std::max(A, B));
      return StepOutcome::Continue;
    }
    case Builtin::None:
      break;
    }
    assert(false && "unknown builtin in replay");
    return StepOutcome::Continue;
  }

  case Op::SemP:
    if (!consumeSync(SyncKind::SemAcquire) && !Done && !WhatIf)
      diverge("missing P record");
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  case Op::SemV:
    if (!consumeSync(SyncKind::SemSignal) && !Done && !WhatIf)
      diverge("missing V record");
    return Done ? StepOutcome::Stop : StepOutcome::Continue;

  case Op::SendCh: {
    Pop(); // the sent value leaves this process
    if (!consumeSync(SyncKind::ChanSend) && !Done && !WhatIf)
      diverge("missing send record");
    if (!Done)
      consumeSync(SyncKind::ChanSendUnblock); // present iff the send blocked
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }
  case Op::RecvCh: {
    if (const LogRecord *R = consumeSync(SyncKind::ChanRecv)) {
      Push(R->Value);
      return StepOutcome::Continue;
    }
    if (Done)
      return StepOutcome::Stop;
    diverge("missing receive record");
    if (WhatIf)
      Push(0);
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }
  case Op::SpawnProc: {
    Stack.resize(Stack.size() - I.B);
    if (!consumeSync(SyncKind::SpawnChild) && !Done && !WhatIf)
      diverge("missing spawn record");
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }

  case Op::PrintVal: {
    int64_t Value = Pop();
    Result.Output.push_back({Pid, Value, Stmt});
    return StepOutcome::Continue;
  }
  case Op::InputVal: {
    if (const LogRecord *R = consume(LogRecordKind::Input)) {
      Push(R->Value);
      return StepOutcome::Continue;
    }
    if (Done)
      return StepOutcome::Stop;
    diverge("missing input record");
    if (WhatIf)
      Push(0);
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }

  case Op::Prelog: {
    // Only the interval's own prelog is ever executed (nested logged calls
    // are skipped; unlogged callees have none).
    if (uint32_t(I.A) != Interval.EBlock) {
      diverge("unexpected prelog");
      return Done ? StepOutcome::Stop : StepOutcome::Continue;
    }
    if (const LogRecord *R = consume(LogRecordKind::Prelog))
      restoreVars(*R);
    else if (!Done && !WhatIf)
      diverge("missing prelog record");
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }
  case Op::Postlog: {
    // Reaching a postlog in the root frame ends the interval.
    if (uint32_t(I.A) != Interval.EBlock) {
      diverge("unexpected postlog");
      return Done ? StepOutcome::Stop : StepOutcome::Continue;
    }
    if ((I.B & PostlogExitsFunction) && !Stack.empty()) {
      Result.HasReturn = true;
      Result.ReturnValue = Stack.back();
    }
    // Verify the replayed values against the logged postlog. Shared
    // variables are excluded: even on a race-free instance another process
    // may write a shared variable between our last synchronized access and
    // the postlog capture, so the logged value can legitimately postdate
    // ours. Reads remain faithful regardless — they are re-seeded from
    // unit logs at every synchronization-unit entry (§5.5).
    if (!WhatIf) {
      if (const LogRecord *R = consume(LogRecordKind::Postlog)) {
        for (const VarValue &V : R->Vars) {
          const VarInfo &Info = Prog.Symbols->var(V.Var);
          if (Info.isShared())
            continue;
          const int64_t *Base = baseOf(Info);
          if (!Base)
            continue;
          for (size_t K = 0; K != V.Values.size(); ++K)
            if (Base[K] != V.Values[K])
              Result.PostlogMismatches.push_back(
                  {V.Var, int64_t(K), V.Values[K], Base[K]});
        }
      }
    }
    finish(true);
    return StepOutcome::Stop;
  }
  case Op::UnitLog: {
    if (const LogRecord *R = consume(LogRecordKind::UnitLog)) {
      if (R->Id != uint32_t(I.A)) {
        --Cursor; // put it back; report divergence
        diverge("unit record id mismatch");
      } else {
        restoreVars(*R);
      }
    } else if (!Done && !WhatIf) {
      diverge("missing unit record");
    }
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }

  case Op::TraceStmt: {
    // A Stop marker at the cursor means the machine froze with this
    // process somewhere in the record-free tail. Stop the replay when the
    // marker's statement comes up (breakpoints fire before the statement
    // executes, so its event must not be fabricated); a marker without a
    // statement stops immediately.
    if (!WhatIf && Cursor < Records.size() &&
        Records[Cursor].Kind == LogRecordKind::Stop &&
        (Records[Cursor].Stmt == InvalidId ||
         Records[Cursor].Stmt == StmtId(I.A))) {
      Result.Partial = true;
      finish(true);
      return StepOutcome::Stop;
    }
    applyOverrides();
    TraceEvent E;
    E.Kind = TraceEventKind::Stmt;
    E.Pid = Pid;
    E.Stmt = StmtId(I.A);
    E.LogCursor = Cursor;
    Frames.back().OpenEvent = Result.Events.append(std::move(E)).Index;
    return StepOutcome::Continue;
  }
  case Op::TraceCallBegin: {
    // Logged callees become CallSkipped events at the Call instruction.
    if (Prog.func(uint32_t(I.A)).Logged)
      return StepOutcome::Continue;
    TraceEvent E;
    E.Kind = TraceEventKind::CallBegin;
    E.Pid = Pid;
    E.Stmt = StmtId(I.B);
    E.Callee = uint32_t(I.A);
    uint32_t Argc = Prog.func(uint32_t(I.A)).NumParams;
    E.Args.assign(Stack.end() - Argc, Stack.end());
    E.LogCursor = Cursor;
    Result.Events.append(std::move(E));
    return StepOutcome::Continue;
  }
  case Op::TraceCallEnd: {
    if (Prog.func(uint32_t(I.A)).Logged)
      return StepOutcome::Continue;
    TraceEvent E;
    E.Kind = TraceEventKind::CallEnd;
    E.Pid = Pid;
    E.Callee = uint32_t(I.A);
    E.Value = Stack.back();
    E.LogCursor = Cursor;
    Result.Events.append(std::move(E));
    return StepOutcome::Continue;
  }

  case Op::Halt:
    finish(true);
    return StepOutcome::Stop;
  }
  assert(false && "unknown opcode in replay");
  return StepOutcome::Stop;
}

ReplayResult Replayer::run() {
  WhatIf = !Options.Overrides.empty();

  const EBlockInfo &EBlock = Prog.eblock(Interval.EBlock);
  RootFunc = EBlock.Func;

  Shared.assign(Prog.Symbols->SharedMemorySize, 0);
  Priv.assign(Prog.Symbols->PrivateGlobalSize, 0);

  RFrame Root;
  Root.Func = RootFunc;
  Root.Slots.assign(Prog.func(RootFunc).FrameSize, 0);
  Frames.push_back(std::move(Root));

  Pc = EBlock.EmuEntryPc;
  Cursor = Interval.PrelogRecord;

  while (!Done) {
    if (Result.Instructions++ >= Options.MaxInstructions) {
      Result.Error = "replay instruction budget exceeded";
      Result.Ok = false;
      break;
    }
    if (step() == StepOutcome::Stop)
      break;
  }

  Result.Shared = std::move(Shared);
  Result.PrivateGlobals = std::move(Priv);
  Result.RootSlots = std::move(Frames.front().Slots);
  return Result;
}

} // namespace

ReplayResult ReplayEngine::replay(const ExecutionLog &Log, uint32_t Pid,
                                  const LogInterval &Interval,
                                  const ReplayOptions &Options) const {
  Replayer R(Prog, Log, Pid, Interval, Options);
  return R.run();
}
