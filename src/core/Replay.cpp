//===- core/Replay.cpp ----------------------------------------------------===//
//
// Part of PPD. See Replay.h.
//
// Three replay tiers live here, mirroring vm/Machine.cpp: the JIT runner
// (runJit) drives natively compiled e-block code with interpreter
// side-exits; the decoded fast path (runDecoded) is a token-threaded loop
// over the emulation package's pre-decoded stream; the legacy engine
// (step) remains as the portable reference. Every record-cursor
// operation — the sync no-ops, prelog/postlog/unit-log handling, trace
// event construction, nested-call skipping — is a helper shared verbatim
// by all engines, so the paths cannot drift. The JIT additionally routes
// its side-exit instructions through step() and its trace events through
// the same helpers, which is what makes it bit-identical by construction.
//
//===----------------------------------------------------------------------===//

#include "core/Replay.h"

#include "support/Arith.h"
#include "vm/Dispatch.h"
#include "vm/InterpCore.h"
#include "vm/Jit.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace ppd;

namespace {

struct RFrame {
  uint32_t Func = 0;
  uint32_t ReturnPc = 0;
  uint32_t StackBase = 0;
  /// The frame's local slots live in Replayer::SlotArena at
  /// [SlotBase, SlotBase + SlotCount) — call/return only moves the arena's
  /// end, so re-executed inherited calls never allocate in steady state.
  uint32_t SlotBase = 0;
  uint32_t SlotCount = 0;
  uint32_t OpenEvent = InvalidId;
};

/// The single-process replay interpreter.
class Replayer {
public:
  Replayer(const CompiledProgram &Prog, const ProcessLog &Proc,
           uint32_t Pid, const LogInterval &Interval,
           const ReplayOptions &Options, JitProgram *Jit)
      : Prog(Prog), Records(Proc.Records), Pid(Pid), Interval(Interval),
        Options(Options), Jit(Jit) {}

  ReplayResult run();

private:
  enum class StepOutcome { Continue, Stop };

  const Chunk &chunk() const { return Prog.func(Frames.back().Func).Emu; }

  /// Local slots of the innermost frame.
  int64_t *topSlots() { return SlotArena.data() + Frames.back().SlotBase; }

  void finish(bool OkFlag) {
    Result.Ok = OkFlag;
    Done = true;
  }
  void diverge(const std::string &Message) {
    if (WhatIf) {
      Result.Diverged = true;
      return;
    }
    Result.Error = Message;
    finish(false);
  }

  /// True when the cursor sits at the end of what actually executed: the
  /// log is exhausted or a Stop marker (machine freeze) is next.
  bool atExecutionEnd() const {
    return Cursor >= Records.size() ||
           Records[Cursor].Kind == LogRecordKind::Stop;
  }

  /// Consumes the next record if it has the expected shape; returns null
  /// otherwise. At end-of-log sets Partial and stops (the process stopped
  /// mid-interval). Under what-if divergence, synthesis is the caller's
  /// job.
  const LogRecord *consume(LogRecordKind Kind) {
    if (atExecutionEnd()) {
      if (!WhatIf) {
        Result.Partial = true;
        finish(true);
      }
      return nullptr;
    }
    const LogRecord &R = Records[Cursor];
    if (R.Kind != Kind)
      return nullptr;
    ++Cursor;
    return &R;
  }

  const LogRecord *consumeSync(SyncKind Kind) {
    if (atExecutionEnd()) {
      if (!WhatIf) {
        Result.Partial = true;
        finish(true);
      }
      return nullptr;
    }
    if (Records[Cursor].Kind == LogRecordKind::SyncEvent &&
        Records[Cursor].Sync == Kind)
      return &Records[Cursor++];
    return nullptr;
  }

  void restoreVars(const LogRecord &R) {
    for (const VarValue &V : R.Vars)
      writeVarWhole(V.Var, V.Values);
  }

  void writeVarWhole(VarId Var, const SmallVec<int64_t, 2> &Values) {
    const VarInfo &Info = Prog.Symbols->var(Var);
    int64_t *Base = baseOf(Info);
    if (!Base)
      return;
    std::copy(Values.begin(), Values.end(), Base);
  }

  int64_t *baseOf(const VarInfo &Info) {
    switch (Info.Kind) {
    case VarKind::SharedGlobal:
      return &Shared[Info.Offset];
    case VarKind::PrivateGlobal:
      return &Priv[Info.Offset];
    case VarKind::Param:
    case VarKind::Local:
      // Restoration targets the interval's own function frame (the root);
      // callee locals of skipped intervals are ignored.
      if (!Info.Func || Info.Func->Index != RootFunc)
        return nullptr;
      return SlotArena.data() + Frames.front().SlotBase + Info.Offset;
    }
    return nullptr;
  }

  /// Applies the global (shared + per-process) values of a skipped
  /// interval's postlog.
  void applyPostlogGlobals(const LogRecord &R) {
    for (const VarValue &V : R.Vars) {
      const VarInfo &Info = Prog.Symbols->var(V.Var);
      if (!Info.isGlobal())
        continue;
      writeVarWhole(V.Var, V.Values);
    }
  }

  TraceEvent *openEvent() {
    uint32_t Idx = Frames.back().OpenEvent;
    return Idx == InvalidId ? nullptr : &Result.Events.Events[Idx];
  }
  void traceRead(VarId Var, int64_t Value, int64_t Index) {
    if (TraceEvent *E = openEvent())
      E->Reads.push_back({Var, Value, Index});
  }
  void traceWrite(VarId Var, int64_t Value, int64_t Index) {
    if (TraceEvent *E = openEvent())
      E->Writes.push_back({Var, Value, Index});
  }

  /// Drains the JIT access buffers into the open event (in recording
  /// order, appending exactly what traceRead/traceWrite would have) and
  /// resets the cursors. Must run before anything that reads or changes
  /// the open event: every statement helper, every side exit.
  void flushJitAccesses() {
    JitContext &Ctx = *ActiveJitCtx;
    if (TraceEvent *E = openEvent()) {
      for (const TraceAccess *P = JitReadBuf.data(); P != Ctx.ReadTop; ++P)
        E->Reads.push_back({VarId(P->Var), P->Value, P->Index});
      for (const TraceAccess *P = JitWriteBuf.data(); P != Ctx.WriteTop; ++P)
        E->Writes.push_back({VarId(P->Var), P->Value, P->Index});
    }
    Ctx.ReadTop = JitReadBuf.data();
    Ctx.WriteTop = JitWriteBuf.data();
  }

  void failHere(RuntimeErrorKind Kind, StmtId Stmt) {
    Result.FailureHit = true;
    Result.Failure = {Kind, Pid, Stmt};
    finish(true); // reproducing the failure is a *successful* replay
  }

  void applyOverrides() {
    for (const ReplayOverride &O : Options.Overrides) {
      if (O.AtEvent != Result.Events.Events.size())
        continue;
      const VarInfo &Info = Prog.Symbols->var(O.Var);
      int64_t *Base = baseOf(Info);
      if (!Base)
        continue;
      uint32_t Offset = O.Index < 0 ? 0 : uint32_t(O.Index);
      if (Offset < Info.slotCount())
        Base[Offset] = O.Value;
    }
  }

  void skipNestedCall(uint32_t Callee, StmtId Stmt);

  // Cold operations shared verbatim by the legacy switch engine and the
  // decoded handlers. They operate on the member state (Stack, Pc,
  // Cursor, Frames); the decoded loop syncs its Ip with Pc around the two
  // that transfer control (doCall, doRet).
  StepOutcome doSemP();
  StepOutcome doSemV();
  StepOutcome doSend();
  StepOutcome doRecv();
  StepOutcome doSpawn(uint32_t Argc);
  StepOutcome doInput();
  StepOutcome doPrelog(uint32_t EBlockId);
  StepOutcome doPostlog(uint32_t EBlockId, uint32_t Flags);
  StepOutcome doUnitLog(uint32_t UnitId);
  StepOutcome doTraceStmt(StmtId Stmt);
  void doTraceCallBegin(uint32_t Callee, StmtId Stmt);
  void doTraceCallEnd(uint32_t Callee);
  StepOutcome doCall(uint32_t Callee, uint32_t Argc, StmtId Stmt);
  StepOutcome doRet();

  StepOutcome step();
  void runDecoded();
  /// The JIT runner: native execution with interpreter side-exits.
  /// Returns the number of Interp bailouts taken; \p NativeEntries counts
  /// how many times native code was actually entered.
  uint64_t runJit(uint64_t &NativeEntries);

  const CompiledProgram &Prog;
  const RecordSeq &Records;
  uint32_t Pid;
  const LogInterval &Interval;
  const ReplayOptions &Options;

  ReplayResult Result;
  bool Done = false;
  bool WhatIf = false;

  std::vector<RFrame> Frames;
  std::vector<int64_t> Stack;
  /// Backing store for every frame's local slots (grows at Call, shrinks
  /// at Ret; capacity is retained across both).
  std::vector<int64_t> SlotArena;
  std::vector<int64_t> Shared;
  std::vector<int64_t> Priv;
  uint32_t Pc = 0;
  uint32_t Cursor = 0;
  uint32_t RootFunc = 0;
  JitProgram *Jit = nullptr;
  /// Native code records accesses here (three stores + bump per access);
  /// stencils side-exit before overflowing, so 128 bounds one native
  /// run's un-flushed accesses, not a statement's total.
  std::array<TraceAccess, 128> JitReadBuf;
  std::array<TraceAccess, 128> JitWriteBuf;
  JitContext *ActiveJitCtx = nullptr;
};

void Replayer::skipNestedCall(uint32_t Callee, StmtId Stmt) {
  // Where the nested invocation's records begin: the controller uses this
  // to locate the interval when the user expands the sub-graph node.
  uint32_t StartCursor = Cursor;
  // The next records must be the nested invocation's intervals (Fig 5.2).
  if (atExecutionEnd() || Records[Cursor].Kind != LogRecordKind::Prelog) {
    if (atExecutionEnd() && !WhatIf) {
      Result.Partial = true;
      finish(true);
      return;
    }
    diverge("expected nested interval prelog at call");
    if (WhatIf) {
      // Synthesize: pop args, push 0.
      uint32_t Argc = Prog.func(Callee).NumParams;
      Stack.resize(Stack.size() - Argc);
      Stack.push_back(0);
    }
    return;
  }

  int64_t RetVal = 0;
  bool SawExit = false;
  unsigned Depth = 0;
  while (Cursor < Records.size()) {
    const LogRecord &R = Records[Cursor++];
    if (R.Kind == LogRecordKind::Prelog) {
      ++Depth;
    } else if (R.Kind == LogRecordKind::Postlog) {
      if (Depth == 0) {
        diverge("unbalanced postlog while skipping nested call");
        return;
      }
      --Depth;
      if (Depth == 0) {
        // A directly nested interval completed: its effects on globals
        // become visible to the caller.
        applyPostlogGlobals(R);
        if (R.Flags & PostlogExitsFunction) {
          RetVal = R.Value;
          SawExit = true;
          break;
        }
      }
    }
  }
  if (!SawExit) {
    // The callee never returned: execution stopped inside it. The caller
    // cannot continue either.
    Result.Partial = true;
    finish(true);
    return;
  }

  uint32_t Argc = Prog.func(Callee).NumParams;
  assert(Stack.size() >= Argc && "call arguments missing");

  TraceEvent E;
  E.Kind = TraceEventKind::CallSkipped;
  E.Pid = Pid;
  E.Stmt = Stmt;
  E.Callee = Callee;
  E.Value = RetVal;
  E.Args.assign(Stack.end() - Argc, Stack.end());
  Stack.resize(Stack.size() - Argc);
  Stack.push_back(RetVal);
  E.LogCursor = StartCursor;
  Result.Events.append(std::move(E));
}

//===----------------------------------------------------------------------===//
// Cold operations shared by both engines
//===----------------------------------------------------------------------===//

Replayer::StepOutcome Replayer::doSemP() {
  if (!consumeSync(SyncKind::SemAcquire) && !Done && !WhatIf)
    diverge("missing P record");
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doSemV() {
  if (!consumeSync(SyncKind::SemSignal) && !Done && !WhatIf)
    diverge("missing V record");
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doSend() {
  assert(!Stack.empty() && "send value missing");
  Stack.pop_back(); // the sent value leaves this process
  if (!consumeSync(SyncKind::ChanSend) && !Done && !WhatIf)
    diverge("missing send record");
  if (!Done)
    consumeSync(SyncKind::ChanSendUnblock); // present iff the send blocked
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doRecv() {
  if (const LogRecord *R = consumeSync(SyncKind::ChanRecv)) {
    Stack.push_back(R->Value);
    return StepOutcome::Continue;
  }
  if (Done)
    return StepOutcome::Stop;
  diverge("missing receive record");
  if (WhatIf)
    Stack.push_back(0);
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doSpawn(uint32_t Argc) {
  Stack.resize(Stack.size() - Argc);
  if (!consumeSync(SyncKind::SpawnChild) && !Done && !WhatIf)
    diverge("missing spawn record");
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doInput() {
  if (const LogRecord *R = consume(LogRecordKind::Input)) {
    Stack.push_back(R->Value);
    return StepOutcome::Continue;
  }
  if (Done)
    return StepOutcome::Stop;
  diverge("missing input record");
  if (WhatIf)
    Stack.push_back(0);
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doPrelog(uint32_t EBlockId) {
  // Only the interval's own prelog is ever executed (nested logged calls
  // are skipped; unlogged callees have none).
  if (EBlockId != Interval.EBlock) {
    diverge("unexpected prelog");
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }
  if (const LogRecord *R = consume(LogRecordKind::Prelog))
    restoreVars(*R);
  else if (!Done && !WhatIf)
    diverge("missing prelog record");
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doPostlog(uint32_t EBlockId, uint32_t Flags) {
  // Reaching a postlog in the root frame ends the interval.
  if (EBlockId != Interval.EBlock) {
    diverge("unexpected postlog");
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }
  if ((Flags & PostlogExitsFunction) && !Stack.empty()) {
    Result.HasReturn = true;
    Result.ReturnValue = Stack.back();
  }
  // Verify the replayed values against the logged postlog. Shared
  // variables are excluded: even on a race-free instance another process
  // may write a shared variable between our last synchronized access and
  // the postlog capture, so the logged value can legitimately postdate
  // ours. Reads remain faithful regardless — they are re-seeded from
  // unit logs at every synchronization-unit entry (§5.5).
  if (!WhatIf) {
    if (const LogRecord *R = consume(LogRecordKind::Postlog)) {
      for (const VarValue &V : R->Vars) {
        const VarInfo &Info = Prog.Symbols->var(V.Var);
        if (Info.isShared())
          continue;
        const int64_t *Base = baseOf(Info);
        if (!Base)
          continue;
        for (size_t K = 0; K != V.Values.size(); ++K)
          if (Base[K] != V.Values[K])
            Result.PostlogMismatches.push_back(
                {V.Var, int64_t(K), V.Values[K], Base[K]});
      }
    }
  }
  finish(true);
  return StepOutcome::Stop;
}

Replayer::StepOutcome Replayer::doUnitLog(uint32_t UnitId) {
  if (const LogRecord *R = consume(LogRecordKind::UnitLog)) {
    if (R->Id != UnitId) {
      --Cursor; // put it back; report divergence
      diverge("unit record id mismatch");
    } else {
      restoreVars(*R);
    }
  } else if (!Done && !WhatIf) {
    diverge("missing unit record");
  }
  return Done ? StepOutcome::Stop : StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doTraceStmt(StmtId Stmt) {
  // A Stop marker at the cursor means the machine froze with this
  // process somewhere in the record-free tail. Stop the replay when the
  // marker's statement comes up (breakpoints fire before the statement
  // executes, so its event must not be fabricated); a marker without a
  // statement stops immediately.
  if (!WhatIf && Cursor < Records.size() &&
      Records[Cursor].Kind == LogRecordKind::Stop &&
      (Records[Cursor].Stmt == InvalidId || Records[Cursor].Stmt == Stmt)) {
    Result.Partial = true;
    finish(true);
    return StepOutcome::Stop;
  }
  applyOverrides();
  TraceEvent &E = Result.Events.emplace();
  E.Pid = Pid;
  E.Stmt = Stmt;
  E.LogCursor = Cursor;
  Frames.back().OpenEvent = E.Index;
  return StepOutcome::Continue;
}

void Replayer::doTraceCallBegin(uint32_t Callee, StmtId Stmt) {
  // Logged callees become CallSkipped events at the Call instruction.
  if (Prog.func(Callee).Logged)
    return;
  TraceEvent E;
  E.Kind = TraceEventKind::CallBegin;
  E.Pid = Pid;
  E.Stmt = Stmt;
  E.Callee = Callee;
  uint32_t Argc = Prog.func(Callee).NumParams;
  E.Args.assign(Stack.end() - Argc, Stack.end());
  E.LogCursor = Cursor;
  Result.Events.append(std::move(E));
}

void Replayer::doTraceCallEnd(uint32_t Callee) {
  if (Prog.func(Callee).Logged)
    return;
  TraceEvent E;
  E.Kind = TraceEventKind::CallEnd;
  E.Pid = Pid;
  E.Callee = Callee;
  E.Value = Stack.back();
  E.LogCursor = Cursor;
  Result.Events.append(std::move(E));
}

Replayer::StepOutcome Replayer::doCall(uint32_t Callee, uint32_t Argc,
                                       StmtId Stmt) {
  if (Prog.func(Callee).Logged) {
    skipNestedCall(Callee, Stmt);
    return Done ? StepOutcome::Stop : StepOutcome::Continue;
  }
  // Inherited leaf: re-execute inline through the emulation package.
  assert(Stack.size() >= Argc && "call arguments missing");
  RFrame Fr;
  Fr.Func = Callee;
  Fr.ReturnPc = Pc;
  Fr.StackBase = uint32_t(Stack.size() - Argc);
  Fr.SlotBase = uint32_t(SlotArena.size());
  Fr.SlotCount = Prog.func(Callee).FrameSize;
  SlotArena.resize(Fr.SlotBase + Fr.SlotCount, 0);
  std::copy(Stack.end() - Argc, Stack.end(),
            SlotArena.begin() + Fr.SlotBase);
  Stack.resize(Stack.size() - Argc);
  Frames.push_back(Fr);
  Pc = 0;
  return StepOutcome::Continue;
}

Replayer::StepOutcome Replayer::doRet() {
  assert(!Stack.empty() && "return value missing");
  int64_t ReturnValue = Stack.back();
  Stack.pop_back();
  if (Frames.size() == 1) {
    // Root return without a postlog stop: only possible for unlogged
    // root replay, which the controller never requests.
    Result.HasReturn = true;
    Result.ReturnValue = ReturnValue;
    finish(true);
    return StepOutcome::Stop;
  }
  RFrame Top = Frames.back();
  Frames.pop_back();
  SlotArena.resize(Top.SlotBase);
  Stack.resize(Top.StackBase);
  Stack.push_back(ReturnValue);
  Pc = Top.ReturnPc;
  return StepOutcome::Continue;
}

//===----------------------------------------------------------------------===//
// The legacy switch engine
//===----------------------------------------------------------------------===//

Replayer::StepOutcome Replayer::step() {
  const Chunk &Code = chunk();
  assert(Pc < Code.size() && "replay pc out of range");
  const Instr I = Code.at(Pc);
  StmtId Stmt = Code.stmtAt(Pc);
  ++Pc;

  auto Push = [&](int64_t V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow in replay");
    int64_t V = Stack.back();
    Stack.pop_back();
    return V;
  };

  bool IsShared = false;
  switch (I.Opcode) {
  case Op::PushConst:
    Push(I.Imm);
    return StepOutcome::Continue;
  case Op::Pop:
    Pop();
    return StepOutcome::Continue;
  case Op::ToBool:
    Stack.back() = Stack.back() != 0;
    return StepOutcome::Continue;

  case Op::LoadLocal: {
    int64_t V = topSlots()[I.A];
    Push(V);
    traceRead(VarId(I.B), V, -1);
    return StepOutcome::Continue;
  }
  case Op::StoreLocal: {
    int64_t V = Pop();
    topSlots()[I.A] = V;
    traceWrite(VarId(I.B), V, -1);
    return StepOutcome::Continue;
  }
  case Op::LoadLocalElem: {
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return StepOutcome::Stop;
    }
    int64_t V = topSlots()[I.A + Idx];
    Push(V);
    traceRead(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }
  case Op::StoreLocalElem: {
    int64_t V = Pop();
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return StepOutcome::Stop;
    }
    topSlots()[I.A + Idx] = V;
    traceWrite(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }
  case Op::ZeroLocal:
    std::fill_n(topSlots() + I.A, I.Imm, 0);
    traceWrite(VarId(I.B), 0, -1);
    return StepOutcome::Continue;

  case Op::LoadShared:
  case Op::LoadSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::LoadPriv:
  case Op::LoadPrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : Priv;
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::LoadSharedElem || I.Opcode == Op::LoadPrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return StepOutcome::Stop;
      }
      Offset += uint32_t(Idx);
    }
    int64_t V = Mem[Offset];
    Push(V);
    traceRead(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }
  case Op::StoreShared:
  case Op::StoreSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::StorePriv:
  case Op::StorePrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : Priv;
    int64_t V = Pop();
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::StoreSharedElem || I.Opcode == Op::StorePrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        failHere(RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return StepOutcome::Stop;
      }
      Offset += uint32_t(Idx);
    }
    Mem[Offset] = V;
    traceWrite(VarId(I.B), V, Idx);
    return StepOutcome::Continue;
  }

  case Op::Add: {
    int64_t B = Pop(), A = Pop();
    Push(wrapAdd(A, B));
    return StepOutcome::Continue;
  }
  case Op::Sub: {
    int64_t B = Pop(), A = Pop();
    Push(wrapSub(A, B));
    return StepOutcome::Continue;
  }
  case Op::Mul: {
    int64_t B = Pop(), A = Pop();
    Push(wrapMul(A, B));
    return StepOutcome::Continue;
  }
  case Op::Div: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      failHere(RuntimeErrorKind::DivideByZero, Stmt);
      return StepOutcome::Stop;
    }
    Push(wrapDiv(A, B));
    return StepOutcome::Continue;
  }
  case Op::Mod: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      failHere(RuntimeErrorKind::ModuloByZero, Stmt);
      return StepOutcome::Stop;
    }
    Push(wrapMod(A, B));
    return StepOutcome::Continue;
  }
  case Op::Neg:
    Stack.back() = wrapNeg(Stack.back());
    return StepOutcome::Continue;
  case Op::Not:
    Stack.back() = Stack.back() == 0;
    return StepOutcome::Continue;
  case Op::CmpEq: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Eq, A, B));
    return StepOutcome::Continue;
  }
  case Op::CmpNe: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Ne, A, B));
    return StepOutcome::Continue;
  }
  case Op::CmpLt: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Lt, A, B));
    return StepOutcome::Continue;
  }
  case Op::CmpLe: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Le, A, B));
    return StepOutcome::Continue;
  }
  case Op::CmpGt: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Gt, A, B));
    return StepOutcome::Continue;
  }
  case Op::CmpGe: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Ge, A, B));
    return StepOutcome::Continue;
  }

  case Op::Jump:
    Pc = uint32_t(I.A);
    return StepOutcome::Continue;
  case Op::JumpIfFalse:
  case Op::JumpIfTrue: {
    int64_t Cond = Pop();
    if (TraceEvent *E = openEvent()) {
      E->IsPredicate = true;
      E->BranchTaken = Cond != 0;
    }
    bool Taken = I.Opcode == Op::JumpIfFalse ? Cond == 0 : Cond != 0;
    if (Taken)
      Pc = uint32_t(I.A);
    return StepOutcome::Continue;
  }

  case Op::Call:
    return doCall(uint32_t(I.A), uint32_t(I.B), Stmt);
  case Op::Ret:
    return doRet();
  case Op::CallBuiltin: {
    if (!applyBuiltin(Builtin(I.A), Stack)) {
      failHere(RuntimeErrorKind::NegativeSqrt, Stmt);
      return StepOutcome::Stop;
    }
    return StepOutcome::Continue;
  }

  case Op::SemP:
    return doSemP();
  case Op::SemV:
    return doSemV();
  case Op::SendCh:
    return doSend();
  case Op::RecvCh:
    return doRecv();
  case Op::SpawnProc:
    return doSpawn(uint32_t(I.B));

  case Op::PrintVal: {
    int64_t Value = Pop();
    Result.Output.push_back({Pid, Value, Stmt});
    return StepOutcome::Continue;
  }
  case Op::InputVal:
    return doInput();

  case Op::Prelog:
    return doPrelog(uint32_t(I.A));
  case Op::Postlog:
    return doPostlog(uint32_t(I.A), uint32_t(I.B));
  case Op::UnitLog:
    return doUnitLog(uint32_t(I.A));

  case Op::TraceStmt:
    return doTraceStmt(StmtId(I.A));
  case Op::TraceCallBegin:
    doTraceCallBegin(uint32_t(I.A), StmtId(I.B));
    return StepOutcome::Continue;
  case Op::TraceCallEnd:
    doTraceCallEnd(uint32_t(I.A));
    return StepOutcome::Continue;

  case Op::Halt:
    finish(true);
    return StepOutcome::Stop;
  }
  assert(false && "unknown opcode in replay");
  return StepOutcome::Stop;
}

//===----------------------------------------------------------------------===//
// The decoded fast path
//===----------------------------------------------------------------------===//

void Replayer::runDecoded() {
  PPD_DISPATCH_TABLE();

  // Hot state lives in locals and is synced back to the members on every
  // exit path. Slots caches the arena pointer of the innermost frame; it
  // is reloaded after Call and Ret (the arena may reallocate, and the
  // frame changes).
  auto BaseOf = [&](uint32_t Func) {
    return Prog.func(Func).EmuDecoded.data();
  };
  const DecodedInstr *Base = BaseOf(Frames.back().Func);
  uint32_t Ip = Pc;
  int64_t *Slots = topSlots();

  auto Push = [&](int64_t V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow in replay");
    int64_t V = Stack.back();
    Stack.pop_back();
    return V;
  };

  for (;;) {
    // Per-instruction prologue: exact legacy accounting — the budget
    // check charges the instruction even when it fails.
    if (Result.Instructions++ >= Options.MaxInstructions) {
      Result.Error = "replay instruction budget exceeded";
      Result.Ok = false;
      goto Exit;
    }
    const DecodedInstr &I = Base[Ip];
    ++Ip;

    PPD_DISPATCH(I.Opcode) {
      PPD_OP(PushConst) {
        Push(I.Imm);
        continue;
      }
      PPD_OP(Pop) {
        Pop();
        continue;
      }
      PPD_OP(ToBool) {
        Stack.back() = Stack.back() != 0;
        continue;
      }

      PPD_OP(LoadLocal) {
        int64_t V = Slots[I.A];
        Push(V);
        traceRead(VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(StoreLocal) {
        int64_t V = Pop();
        Slots[I.A] = V;
        traceWrite(VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(LoadLocalElem) {
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          failHere(RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        int64_t V = Slots[I.A + Idx];
        Push(V);
        traceRead(VarId(I.B), V, Idx);
        continue;
      }
      PPD_OP(StoreLocalElem) {
        int64_t V = Pop();
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          failHere(RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        Slots[I.A + Idx] = V;
        traceWrite(VarId(I.B), V, Idx);
        continue;
      }
      PPD_OP(ZeroLocal) {
        std::fill_n(Slots + I.A, I.Imm, 0);
        traceWrite(VarId(I.B), 0, -1);
        continue;
      }

      PPD_OP(LoadShared) {
        int64_t V = Shared[uint32_t(I.A)];
        Push(V);
        traceRead(VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(LoadSharedElem) {
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          failHere(RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        int64_t V = Shared[uint32_t(I.A) + uint32_t(Idx)];
        Push(V);
        traceRead(VarId(I.B), V, Idx);
        continue;
      }
      PPD_OP(LoadPriv) {
        int64_t V = Priv[uint32_t(I.A)];
        Push(V);
        traceRead(VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(LoadPrivElem) {
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          failHere(RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        int64_t V = Priv[uint32_t(I.A) + uint32_t(Idx)];
        Push(V);
        traceRead(VarId(I.B), V, Idx);
        continue;
      }

      PPD_OP(StoreShared) {
        int64_t V = Pop();
        Shared[uint32_t(I.A)] = V;
        traceWrite(VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(StoreSharedElem) {
        int64_t V = Pop();
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          failHere(RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        Shared[uint32_t(I.A) + uint32_t(Idx)] = V;
        traceWrite(VarId(I.B), V, Idx);
        continue;
      }
      PPD_OP(StorePriv) {
        int64_t V = Pop();
        Priv[uint32_t(I.A)] = V;
        traceWrite(VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(StorePrivElem) {
        int64_t V = Pop();
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          failHere(RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        Priv[uint32_t(I.A) + uint32_t(Idx)] = V;
        traceWrite(VarId(I.B), V, Idx);
        continue;
      }

      PPD_OP(Add) {
        int64_t B = Pop();
        Stack.back() = wrapAdd(Stack.back(), B);
        continue;
      }
      PPD_OP(Sub) {
        int64_t B = Pop();
        Stack.back() = wrapSub(Stack.back(), B);
        continue;
      }
      PPD_OP(Mul) {
        int64_t B = Pop();
        Stack.back() = wrapMul(Stack.back(), B);
        continue;
      }
      PPD_OP(Div) {
        int64_t B = Pop();
        if (B == 0) {
          failHere(RuntimeErrorKind::DivideByZero, I.Stmt);
          goto Exit;
        }
        Stack.back() = wrapDiv(Stack.back(), B);
        continue;
      }
      PPD_OP(Mod) {
        int64_t B = Pop();
        if (B == 0) {
          failHere(RuntimeErrorKind::ModuloByZero, I.Stmt);
          goto Exit;
        }
        Stack.back() = wrapMod(Stack.back(), B);
        continue;
      }
      PPD_OP(Neg) {
        Stack.back() = wrapNeg(Stack.back());
        continue;
      }
      PPD_OP(Not) {
        Stack.back() = Stack.back() == 0;
        continue;
      }

      PPD_OP(CmpEq)
      PPD_OP(CmpNe)
      PPD_OP(CmpLt)
      PPD_OP(CmpLe)
      PPD_OP(CmpGt)
      PPD_OP(CmpGe) {
        int64_t B = Pop();
        Stack.back() = evalCmp(CmpKind(I.Sub), Stack.back(), B);
        continue;
      }

      PPD_OP(Jump) {
        Ip = uint32_t(I.A);
        continue;
      }
      PPD_OP(JumpIfFalse)
      PPD_OP(JumpIfTrue) {
        int64_t Cond = Pop();
        if (TraceEvent *E = openEvent()) {
          E->IsPredicate = true;
          E->BranchTaken = Cond != 0;
        }
        bool Taken = I.Opcode == DOp::JumpIfFalse ? Cond == 0 : Cond != 0;
        if (Taken)
          Ip = uint32_t(I.A);
        continue;
      }
      PPD_OP(JumpIfCmp) {
        // Fused Cmp + JumpIf. The compare is this instruction; the branch
        // is the next one and only executes if the budget still has room —
        // otherwise the compare result is pushed and the pc stays on the
        // branch's own (still fully decoded) slot, so the legacy engine's
        // instruction accounting is preserved exactly.
        int64_t B = Pop(), A = Pop();
        int64_t Cond = evalCmp(CmpKind(I.Sub >> 1), A, B);
        if (Result.Instructions < Options.MaxInstructions) {
          ++Result.Instructions;
          if (TraceEvent *E = openEvent()) {
            E->IsPredicate = true;
            E->BranchTaken = Cond != 0;
          }
          bool Taken = (I.Sub & 1) ? Cond != 0 : Cond == 0;
          Ip = Taken ? uint32_t(I.A) : Ip + 1;
        } else {
          Push(Cond);
        }
        continue;
      }
      PPD_OP(StoreLocalImm) {
        // Fused PushConst + StoreLocal, split the same way.
        if (Result.Instructions < Options.MaxInstructions) {
          ++Result.Instructions;
          ++Ip; // skip the second half's slot
          Slots[I.A] = I.Imm;
          traceWrite(VarId(I.B), I.Imm, -1);
        } else {
          Push(I.Imm);
        }
        continue;
      }

      PPD_OP(Call) {
        Pc = Ip;
        if (doCall(uint32_t(I.A), uint32_t(I.B), I.Stmt) ==
            StepOutcome::Stop)
          goto Exit;
        Ip = Pc;
        Base = BaseOf(Frames.back().Func);
        Slots = topSlots();
        continue;
      }
      PPD_OP(Ret) {
        if (doRet() == StepOutcome::Stop)
          goto Exit;
        Ip = Pc;
        Base = BaseOf(Frames.back().Func);
        Slots = topSlots();
        continue;
      }
      PPD_OP(CallBuiltin) {
        if (!applyBuiltin(Builtin(I.A), Stack)) {
          failHere(RuntimeErrorKind::NegativeSqrt, I.Stmt);
          goto Exit;
        }
        continue;
      }

      PPD_OP(SemP) {
        if (doSemP() == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(SemV) {
        if (doSemV() == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(SendCh) {
        if (doSend() == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(RecvCh) {
        if (doRecv() == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(SpawnProc) {
        if (doSpawn(uint32_t(I.B)) == StepOutcome::Stop)
          goto Exit;
        continue;
      }

      PPD_OP(PrintVal) {
        int64_t Value = Pop();
        Result.Output.push_back({Pid, Value, I.Stmt});
        continue;
      }
      PPD_OP(InputVal) {
        if (doInput() == StepOutcome::Stop)
          goto Exit;
        continue;
      }

      PPD_OP(Prelog) {
        if (doPrelog(uint32_t(I.A)) == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(Postlog) {
        if (doPostlog(uint32_t(I.A), uint32_t(I.B)) == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(UnitLog) {
        if (doUnitLog(uint32_t(I.A)) == StepOutcome::Stop)
          goto Exit;
        continue;
      }

      PPD_OP(TraceStmt) {
        if (doTraceStmt(StmtId(I.A)) == StepOutcome::Stop)
          goto Exit;
        continue;
      }
      PPD_OP(TraceCallBegin) {
        doTraceCallBegin(uint32_t(I.A), StmtId(I.B));
        continue;
      }
      PPD_OP(TraceCallEnd) {
        doTraceCallEnd(uint32_t(I.A));
        continue;
      }

      PPD_OP(Halt) {
        finish(true);
        goto Exit;
      }
    }
    PPD_END_DISPATCH();
    assert(false && "unknown opcode in replay");
  }

Exit:
  Pc = Ip;
}

//===----------------------------------------------------------------------===//
// The JIT tier
//===----------------------------------------------------------------------===//

// Drives natively compiled code (vm/Jit.cpp). The loop alternates between
// native runs and single interpreter steps: native code executes the pure
// stack/arithmetic/memory/branch instructions (with its budget prologue
// matching runDecoded's loop header instruction for instruction) and
// side-exits for everything that touches the log cursor or the frame
// stack; those slots — and any pc whose stack depth the compiler could
// not prove — execute through the legacy step(), which shares every cold
// helper with the decoded engine. Instruction accounting, events, output,
// and final state are therefore bit-identical across all three tiers.
uint64_t Replayer::runJit(uint64_t &NativeEntries) {
  JitContext Ctx;
  Ctx.Shared = Shared.data();
  Ctx.Priv = Priv.data();
  Ctx.MaxInstructions = Options.MaxInstructions;
  Ctx.Host = this;
  Ctx.ReadTop = JitReadBuf.data();
  Ctx.ReadLimit = JitReadBuf.data() + JitReadBuf.size();
  Ctx.WriteTop = JitWriteBuf.data();
  Ctx.WriteLimit = JitWriteBuf.data() + JitWriteBuf.size();
  ActiveJitCtx = &Ctx;
  Ctx.TraceStmt = [](void *Host, uint32_t Ip) -> int {
    Replayer *R = static_cast<Replayer *>(Host);
    // The buffered accesses belong to the event this statement closes.
    R->flushJitAccesses();
    const DecodedInstr &I =
        R->Prog.func(R->Frames.back().Func).EmuDecoded.at(Ip);
    return R->doTraceStmt(StmtId(I.A)) == StepOutcome::Stop ? 1 : 0;
  };
  Ctx.TraceBranch = [](void *Host, int64_t Cond) {
    Replayer *R = static_cast<Replayer *>(Host);
    if (TraceEvent *E = R->openEvent()) {
      E->IsPredicate = true;
      E->BranchTaken = Cond != 0;
    }
  };
  Ctx.Print = [](void *Host, int64_t Value, uint32_t Ip) {
    Replayer *R = static_cast<Replayer *>(Host);
    const DecodedInstr &I =
        R->Prog.func(R->Frames.back().Func).EmuDecoded.at(Ip);
    R->Result.Output.push_back({R->Pid, Value, I.Stmt});
  };

  uint64_t Bailouts = 0;
  while (!Done) {
    const RFrame &Top = Frames.back();
    const JitCode *Code = Jit->getOrCompile(Top.Func);
    if (Code && Pc < Code->DepthAt.size() && Code->DepthAt[Pc] >= 0 &&
        Stack.size() == Top.StackBase + uint32_t(Code->DepthAt[Pc])) {
      // Entry protocol: pre-reserve the proven maximum operand-stack
      // depth so native pushes are straight stores, run, then trim the
      // stack back to the logical depth the exit reported.
      size_t Logical = Stack.size();
      size_t Reserve = size_t(Top.StackBase) + Code->MaxStackDepth;
      Stack.resize(std::max(Reserve, Logical));
      Ctx.StackTop = Stack.data() + Logical;
      Ctx.Slots = topSlots();
      Ctx.Instructions = Result.Instructions;
      ++NativeEntries;
      JitExit Exit = Code->enter(Ctx, Pc);
      Result.Instructions = Ctx.Instructions;
      Stack.resize(size_t(Ctx.StackTop - Stack.data()));
      // Accesses recorded since the last in-native flush belong to the
      // still-open event; drain them before any interpreter step, failure
      // report, or result read below.
      flushJitAccesses();
      Pc = Exit.Ip;
      if (Exit.Kind == JitExitKind::Budget) {
        Result.Error = "replay instruction budget exceeded";
        Result.Ok = false;
        break;
      }
      if (Exit.Kind == JitExitKind::Stop)
        break; // the statement helper already finished the replay
      if (Exit.Kind != JitExitKind::Interp) {
        StmtId Stmt =
            Prog.func(Frames.back().Func).EmuDecoded.at(Exit.Ip).Stmt;
        failHere(Exit.Kind == JitExitKind::FailDiv0
                     ? RuntimeErrorKind::DivideByZero
                 : Exit.Kind == JitExitKind::FailMod0
                     ? RuntimeErrorKind::ModuloByZero
                     : RuntimeErrorKind::IndexOutOfBounds,
                 Stmt);
        break;
      }
      ++Bailouts;
    }
    // One interpreter step: a side-exit instruction, a function whose
    // compile failed, or a pc without a proven depth. Charge first,
    // exactly like runDecoded's prologue and run()'s legacy loop.
    if (Result.Instructions++ >= Options.MaxInstructions) {
      Result.Error = "replay instruction budget exceeded";
      Result.Ok = false;
      break;
    }
    if (step() == StepOutcome::Stop)
      break;
  }
  return Bailouts;
}

ReplayResult Replayer::run() {
  WhatIf = !Options.Overrides.empty();

  const EBlockInfo &EBlock = Prog.eblock(Interval.EBlock);
  RootFunc = EBlock.Func;

  Shared.assign(Prog.Symbols->SharedMemorySize, 0);
  Priv.assign(Prog.Symbols->PrivateGlobalSize, 0);

  RFrame Root;
  Root.Func = RootFunc;
  Root.SlotBase = 0;
  Root.SlotCount = Prog.func(RootFunc).FrameSize;
  SlotArena.assign(Root.SlotCount, 0);
  Frames.push_back(Root);

  Pc = EBlock.EmuEntryPc;
  Cursor = Interval.PrelogRecord;

  // Tier selection. The decoded and JIT paths need usable decoded
  // emulation streams for every function (hand-assembled CompiledPrograms
  // may lack them). The JIT tier additionally needs a live JitProgram
  // (compiled in, x86-64 host) and a warm e-block — cold intervals replay
  // decoded and only cache-driven re-executions pay the compile, which
  // then amortizes across the session.
  ReplayEngineKind Engine = Options.Engine;
  for (const CompiledFunction &F : Prog.Funcs)
    if (F.EmuDecoded.size() != F.Emu.size())
      Engine = ReplayEngineKind::Legacy;
  if (Engine == ReplayEngineKind::Jit &&
      (!Jit || !Jit->shouldTier(Interval.EBlock)))
    Engine = ReplayEngineKind::Decoded;

  switch (Engine) {
  case ReplayEngineKind::Jit: {
    auto T0 = std::chrono::steady_clock::now();
    uint64_t NativeEntries = 0;
    uint64_t Bailouts = runJit(NativeEntries);
    Jit->noteExec(
        uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count()),
        Bailouts, NativeEntries != 0);
    break;
  }
  case ReplayEngineKind::Decoded:
    runDecoded();
    break;
  case ReplayEngineKind::Legacy:
    while (!Done) {
      if (Result.Instructions++ >= Options.MaxInstructions) {
        Result.Error = "replay instruction budget exceeded";
        Result.Ok = false;
        break;
      }
      if (step() == StepOutcome::Stop)
        break;
    }
    break;
  }

  Result.Shared = std::move(Shared);
  Result.PrivateGlobals = std::move(Priv);
  Result.RootSlots.assign(SlotArena.begin(),
                          SlotArena.begin() + Frames.front().SlotCount);
  return Result;
}

} // namespace

bool ppd::parseReplayEngine(const std::string &Name,
                            ReplayEngineKind &Kind) {
  if (Name == "jit")
    Kind = ReplayEngineKind::Jit;
  else if (Name == "decoded")
    Kind = ReplayEngineKind::Decoded;
  else if (Name == "legacy")
    Kind = ReplayEngineKind::Legacy;
  else
    return false;
  return true;
}

const char *ppd::replayEngineName(ReplayEngineKind Kind) {
  switch (Kind) {
  case ReplayEngineKind::Jit:
    return "jit";
  case ReplayEngineKind::Decoded:
    return "decoded";
  case ReplayEngineKind::Legacy:
    return "legacy";
  }
  return "?";
}

ReplayEngine::ReplayEngine(const CompiledProgram &Prog,
                           std::shared_ptr<JitProgram> SharedJit)
    : Prog(Prog),
      Jit(SharedJit ? std::move(SharedJit) : JitProgram::create(Prog)) {}

ReplayResult ReplayEngine::replay(const ExecutionLog &Log, uint32_t Pid,
                                  const LogInterval &Interval,
                                  const ReplayOptions &Options) const {
  return replay(Log.Procs[Pid], Pid, Interval, Options);
}

ReplayResult ReplayEngine::replay(const ProcessLog &Proc, uint32_t Pid,
                                  const LogInterval &Interval,
                                  const ReplayOptions &Options) const {
  Replayer R(Prog, Proc, Pid, Interval, Options, Jit.get());
  return R.run();
}
