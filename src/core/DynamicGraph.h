//===- core/DynamicGraph.h - §4.2 dynamic dependence graph ------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *dynamic program dependence graph* (§4.2, Fig 4.1): actual run-time
/// dependences between program events. Node kinds mirror the paper's —
/// ENTRY/EXIT nodes, *singular* nodes (one statement execution, carrying
/// the assigned or predicate value), *sub-graph* nodes (one call,
/// expandable on demand), plus the %n parameter-binding nodes of Fig 4.1
/// (including the "fictional" nodes for expression arguments) and
/// synthetic Initial/Unresolved nodes standing for values that flowed in
/// from outside the traced region.
///
/// The graph is built *incrementally*: the PPD controller appends node
/// fragments per replayed log interval and splices cross-interval and
/// cross-process edges as the user's queries demand (§3.2.3).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_DYNAMICGRAPH_H
#define PPD_CORE_DYNAMICGRAPH_H

#include "lang/Ast.h"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace ppd {

class Program;

using DynNodeId = uint32_t;

enum class DynNodeKind : uint8_t {
  Entry,     ///< e-block/interval entry (labelled with the function)
  Singular,  ///< one executed statement
  SubGraph,  ///< one call — expanded or not
  Param,     ///< %n parameter binding (Fig 4.1)
  Initial,   ///< value present before the traced region / program start
  Unresolved ///< value produced by another process/interval, not yet
             ///< traced (expand via the controller)
};

enum class DynEdgeKind : uint8_t {
  Data,    ///< value flow (paper: solid arrow)
  Control, ///< control dependence (paper: dashed arrow)
  Flow,    ///< execution order between consecutive events
  Sync,    ///< synchronization edge (cross-process)
  CrossData ///< data dependence resolved across processes (§6.3)
};

struct DynNode {
  DynNodeId Id = InvalidId;
  DynNodeKind Kind = DynNodeKind::Singular;
  /// Event identity: process, log interval, event index within the
  /// interval's trace. Synthetic nodes use InvalidId components.
  uint32_t Pid = InvalidId;
  uint32_t Interval = InvalidId;
  uint32_t Event = InvalidId;
  StmtId Stmt = InvalidId;
  /// The associated value (assigned value, predicate outcome, return
  /// value, parameter value) — §4.2 associates one with every node.
  int64_t Value = 0;
  bool HasValue = false;
  /// Enclosing sub-graph node, or InvalidId at top level.
  DynNodeId Parent = InvalidId;
  /// SubGraph nodes: callee and whether the detail was generated.
  uint32_t Callee = InvalidId;
  bool Expanded = false;
  std::string Label;
};

struct DynEdge {
  DynEdgeKind Kind = DynEdgeKind::Data;
  DynNodeId From = InvalidId;
  DynNodeId To = InvalidId;
  VarId Var = InvalidId; ///< Data/CrossData: the variable carrying the value.
  int8_t Branch = -1;    ///< Control: 1 = true arm, 0 = false arm.
};

class DynamicGraph {
public:
  DynNodeId addNode(DynNode Node);
  void addEdge(DynEdge Edge);

  const DynNode &node(DynNodeId Id) const { return Nodes[Id]; }
  DynNode &node(DynNodeId Id) { return Nodes[Id]; }
  unsigned numNodes() const { return unsigned(Nodes.size()); }
  const std::vector<DynEdge> &edges() const { return Edges; }

  /// Incoming edges of \p Id (the flowback direction).
  std::vector<DynEdge> inEdges(DynNodeId Id) const;
  /// Outgoing edges of \p Id (forward flow).
  std::vector<DynEdge> outEdges(DynNodeId Id) const;

  /// Looks up the node of event (pid, interval, event), or InvalidId.
  DynNodeId nodeOfEvent(uint32_t Pid, uint32_t Interval,
                        uint32_t Event) const;

  /// True if the interval's fragment was already added.
  bool hasInterval(uint32_t Pid, uint32_t Interval) const {
    return TracedIntervals.count({Pid, Interval}) != 0;
  }
  void markInterval(uint32_t Pid, uint32_t Interval) {
    TracedIntervals.insert({Pid, Interval});
  }

  /// Graphviz rendering of the whole graph (or, with \p Roots nonempty,
  /// of the backward slice from those nodes) in Fig 4.1's style: solid
  /// data edges, dashed control edges.
  std::string dot(const Program &P,
                  const std::vector<DynNodeId> &Roots = {}) const;

private:
  std::vector<DynNode> Nodes;
  std::vector<DynEdge> Edges;
  std::vector<std::vector<uint32_t>> In;  ///< edge indices by target.
  std::vector<std::vector<uint32_t>> Out; ///< edge indices by source.
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, DynNodeId> ByEvent;
  std::set<std::pair<uint32_t, uint32_t>> TracedIntervals;
};

} // namespace ppd

#endif // PPD_CORE_DYNAMICGRAPH_H
