//===- core/DeadlockAnalyzer.cpp ------------------------------------------===//
//
// Part of PPD. See DeadlockAnalyzer.h.
//
//===----------------------------------------------------------------------===//

#include "core/DeadlockAnalyzer.h"

#include <map>

using namespace ppd;

DeadlockReport DeadlockAnalyzer::analyze(const DeadlockInfo &Info) const {
  DeadlockReport Report;

  // Semaphore balances per process: acquires minus signals.
  unsigned NumSems = unsigned(Prog.SemInit.size());
  std::vector<std::vector<int64_t>> Balance(
      Log.Procs.size(), std::vector<int64_t>(NumSems, 0));
  for (uint32_t Pid = 0; Pid != Log.Procs.size(); ++Pid) {
    for (const LogRecord &R : Log.Procs[Pid].Records) {
      if (R.Kind != LogRecordKind::SyncEvent)
        continue;
      if (R.Sync == SyncKind::SemAcquire)
        ++Balance[Pid][R.Id];
      else if (R.Sync == SyncKind::SemSignal)
        --Balance[Pid][R.Id];
    }
  }

  auto HoldersOf = [&](uint32_t Sem) {
    std::vector<uint32_t> Holders;
    for (uint32_t Pid = 0; Pid != Balance.size(); ++Pid)
      if (Sem < Balance[Pid].size() && Balance[Pid][Sem] > 0)
        Holders.push_back(Pid);
    return Holders;
  };

  std::map<uint32_t, std::vector<uint32_t>> WaitsOn; // pid → holder pids
  for (const DeadlockInfo::WaitEdge &W : Info.Blocked) {
    DeadlockReport::Wait Wait;
    Wait.Pid = W.Pid;
    Wait.Status = W.Status;
    Wait.Object = W.Object;
    if (W.Status == ProcStatus::BlockedSem) {
      Wait.Holders = HoldersOf(W.Object);
      WaitsOn[W.Pid] = Wait.Holders;
    }
    Report.Waits.push_back(std::move(Wait));
  }

  // Cycle detection over the wait-for graph (DFS with path marking).
  std::map<uint32_t, int> Mark; // 0 unvisited, 1 on path, 2 done
  std::vector<uint32_t> Path;
  std::function<bool(uint32_t)> Dfs = [&](uint32_t Pid) -> bool {
    Mark[Pid] = 1;
    Path.push_back(Pid);
    for (uint32_t Next : WaitsOn[Pid]) {
      if (Mark[Next] == 1) {
        // Found a cycle: trim the path prefix before Next.
        auto It = std::find(Path.begin(), Path.end(), Next);
        Report.Cycle.assign(It, Path.end());
        return true;
      }
      if (Mark[Next] == 0 && WaitsOn.count(Next) && Dfs(Next))
        return true;
    }
    Path.pop_back();
    Mark[Pid] = 2;
    return false;
  };
  for (const auto &[Pid, Holders] : WaitsOn)
    if (Mark[Pid] == 0 && Dfs(Pid))
      break;

  return Report;
}

std::string DeadlockReport::str(const Program &P) const {
  std::string Out;
  for (const Wait &W : Waits) {
    Out += "process " + std::to_string(W.Pid) + " blocked ";
    switch (W.Status) {
    case ProcStatus::BlockedSem:
      Out += "on P(" +
             (W.Object < P.Sems.size() ? P.Sems[W.Object].Name
                                       : std::to_string(W.Object)) +
             ")";
      if (!W.Holders.empty()) {
        Out += ", held by";
        for (uint32_t H : W.Holders)
          Out += " p" + std::to_string(H);
      }
      break;
    case ProcStatus::BlockedSend:
      Out += "sending on channel " +
             (W.Object < P.Chans.size() ? P.Chans[W.Object].Name
                                        : std::to_string(W.Object));
      break;
    case ProcStatus::BlockedRecv:
      Out += "receiving on channel " +
             (W.Object < P.Chans.size() ? P.Chans[W.Object].Name
                                        : std::to_string(W.Object));
      break;
    default:
      Out += "(unknown)";
    }
    Out += "\n";
  }
  if (hasCycle()) {
    Out += "wait-for cycle:";
    for (uint32_t Pid : Cycle)
      Out += " p" + std::to_string(Pid);
    Out += "\n";
  }
  return Out;
}
