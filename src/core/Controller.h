//===- core/Controller.h - The PPD Controller -------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PPD Controller of the debugging phase (Fig 3.3): it owns the
/// execution log, directs the emulation package to regenerate traces for
/// exactly the log intervals the user's queries need ("incremental
/// tracing", §5.3), and incrementally assembles the dynamic program
/// dependence graph:
///
///   * a session starts at the failure — the last prelog without a
///     matching postlog in the failed process (§5.3) — whose replay
///     re-derives the failing event as the flowback root;
///   * flowback queries walk the graph backwards; requests that leave the
///     traced region trigger further interval replays;
///   * shared reads fed by other processes are resolved through the
///     parallel dynamic graph (§6.3), pulling the producer's interval in
///     on demand — or reporting a race when the writer is simultaneous;
///   * sub-graph nodes for skipped nested intervals expand on demand
///     (Fig 5.2);
///   * what-if experiments and postlog-based state restoration implement
///     §5.7.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_CONTROLLER_H
#define PPD_CORE_CONTROLLER_H

#include "compiler/CompiledProgram.h"
#include "core/DynamicGraph.h"
#include "core/GraphBuilder.h"
#include "core/Replay.h"
#include "core/ReplayService.h"
#include "log/ExecutionLog.h"
#include "pardyn/ParallelDynamicGraph.h"
#include "pardyn/RaceDetector.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ppd {

/// How a cross-process read was resolved.
struct CrossReadResolution {
  enum class Kind {
    Resolved,   ///< producer found and traced; edge added.
    Initial,    ///< no writer happens-before: the initial shared value.
    Race,       ///< a simultaneous writer exists — the §6.3 race case.
    Unknown     ///< producer's interval is missing from the log.
  };
  Kind Outcome = Kind::Unknown;
  DynNodeId Producer = InvalidId; ///< when Resolved.
  EdgeRef RaceEdge;               ///< when Race: the conflicting edge.
};

/// Restored global state (§5.7: accumulated postlogs).
struct RestoredState {
  std::vector<int64_t> Shared;
  std::vector<int64_t> PrivateGlobals;
};

/// Cost counters for the experiments (E2/E3/E8). Replays and
/// ReplayInstructions mirror the replay service's engine counters: cache
/// hits do not increment them — the point of memoization.
struct ControllerStats {
  uint64_t Replays = 0;
  uint64_t ReplayInstructions = 0;
  uint64_t EventsTraced = 0;
  size_t TraceBytes = 0;
};

struct PpdControllerOptions {
  /// Replay service configuration: worker threads, trace-cache budget,
  /// background prefetch. Defaults are serial and prefetch-free, which
  /// keeps the controller fully deterministic and its Replays counter
  /// equal to exactly the intervals queries demanded.
  ReplayServiceOptions Service;
  /// A pre-built parallel dynamic graph (the `.ppdb` sidecar's) to adopt
  /// instead of constructing one on first use. Constructing it scans
  /// every process's sync records — in paged mode that faults every
  /// section in — so adoption is what makes a warm open's first query
  /// touch only the sections it actually replays.
  std::shared_ptr<const ParallelDynamicGraph> AdoptedGraph;
  /// A pre-built interval index to adopt instead of deriving one from the
  /// log. The streaming ingest session maintains its index incrementally
  /// (LogIndex::appendRecords) and hands frontier snapshots a copy, so a
  /// tail query's controller never re-scans the accumulated records.
  std::shared_ptr<const LogIndex> AdoptedIndex;
};

class PpdController {
public:
  PpdController(const CompiledProgram &Prog, ExecutionLog Log,
                PpdControllerOptions Options = {});

  /// Paged session: record streams stay in \p Paged's store and fault in
  /// through its buffer pool; the controller's log() is the store's
  /// facade (headers + output, empty records). \p Index may carry a
  /// pre-built index (the `.ppdb` sidecar's); null skims one from the
  /// store without decoding record bodies.
  PpdController(const CompiledProgram &Prog, PagedLog Paged,
                std::shared_ptr<const LogIndex> Index = nullptr,
                PpdControllerOptions Options = {});

  const CompiledProgram &program() const { return Prog; }
  const ExecutionLog &log() const { return Log; }
  /// Paged mode's store/pool pair; falsy for whole-load sessions.
  const PagedLog &paged() const { return Paged; }
  const LogIndex &logIndex() const { return Index; }
  DynamicGraph &graph() { return Graph; }
  const DynamicGraph &graph() const { return Graph; }
  const ControllerStats &stats() const { return Stats; }

  /// Replays interval \p IntervalIdx of \p Pid (through the replay
  /// cache) and splices its fragment into the graph. Returns null on
  /// replay divergence.
  const BuiltFragment *ensureInterval(uint32_t Pid, uint32_t IntervalIdx);

  /// Traces every requested interval: trace regeneration for the misses
  /// fans out across the replay service's thread pool, then the fragments
  /// are spliced serially in request order (graph construction stays
  /// deterministic regardless of worker count). Returns the number of
  /// fragments newly added.
  unsigned
  ensureIntervals(const std::vector<ParallelReplayer::IntervalRef> &Requests);

  /// The cached, parallel replay layer (cache counters, transitive
  /// interval sets, prefetch).
  ParallelReplayer &replayService() { return Service; }
  const ParallelReplayer &replayService() const { return Service; }

  /// The replay result backing a traced interval (null if not traced).
  const ReplayResult *replayOf(uint32_t Pid, uint32_t IntervalIdx) const;

  /// Starts a session at the failure point of \p Pid: replays the last
  /// open interval and returns the failing event's node (InvalidId if the
  /// process has no open interval).
  DynNodeId startAtFailure(uint32_t Pid);

  /// Starts a session at the last executed event of \p Pid's last
  /// interval (user-initiated halt).
  DynNodeId startAtLastEvent(uint32_t Pid);

  /// Backward flowback step: the dependence edges into \p Node,
  /// after resolving this node's pending cross-process reads.
  std::vector<DynEdge> dependencesOf(DynNodeId Node);

  /// Forward flow (the paper's §1: "the programmer can see, either forward
  /// or backward, how information flowed"): dependence edges out of
  /// \p Node within the traced region. Consumers not yet traced are not
  /// discovered — forward influence is bounded by what has been replayed.
  std::vector<DynEdge> influencesOf(DynNodeId Node) const {
    return Graph.outEdges(Node);
  }

  /// Resolves every unresolved shared read of every traced fragment,
  /// pulling producer intervals in as needed. Returns the number of
  /// resolutions performed.
  unsigned resolveAllCrossReads();

  /// Expands a sub-graph node created for a skipped nested interval:
  /// replays the callee's first interval and links it in. Returns the
  /// callee fragment's entry node.
  DynNodeId expandCall(DynNodeId SubGraphNode);

  /// The parallel dynamic graph (§6.1), built on first use.
  const ParallelDynamicGraph &parallelGraph();

  /// Race detection over the parallel dynamic graph (Defs 6.1–6.4). The
  /// default is the vectorized tier — the debugger `races` command and the
  /// server's race query ride on it; the legacy algorithms stay available
  /// as differential oracles and for the CLI --race-strategy flag. All
  /// three produce byte-identical race lists.
  RaceDetectionResult detectRaces(
      RaceAlgorithm Algorithm = RaceAlgorithm::Vectorized);

  /// §5.7 what-if: replays an interval with value overrides. Memoized
  /// like faithful replays — the override list's fingerprint is part of
  /// the cache key, so distinct experiments never alias.
  ReplayResult whatIf(uint32_t Pid, uint32_t IntervalIdx,
                      const std::vector<ReplayOverride> &Overrides);

  /// §5.7 restoration: global state as of process \p Pid's postlog of
  /// interval \p UptoInterval, from accumulated postlogs.
  RestoredState restoreGlobals(uint32_t Pid, uint32_t UptoInterval) const;

private:
  struct CacheEntry {
    /// Shared with the replay cache; stays valid if evicted there.
    ParallelReplayer::ReplayPtr Replay;
    BuiltFragment Fragment;
  };

  /// One past the last record of \p Pid — the open-interval end marker.
  /// Comes from the section header in paged mode (the facade log has no
  /// records) and from the loaded records otherwise.
  uint32_t recordEnd(uint32_t Pid) const;

  CrossReadResolution resolveCrossRead(uint32_t ReaderPid,
                                       const UnresolvedRead &Read);
  /// Finds the node of the write to (Var) within \p Producer's internal
  /// edge, tracing the producer's interval.
  DynNodeId materializeWriter(EdgeRef Producer, VarId Var, int64_t Index,
                              bool &TraceOk);
  void spliceSyncEdges(uint32_t Pid, uint32_t IntervalIdx);
  DynNodeId eventNodeNear(uint32_t Pid, uint32_t RecordIdx, StmtId Stmt);

  /// Splices a freshly replayed interval's fragment into the graph.
  const BuiltFragment *addFragment(uint32_t Pid, uint32_t IntervalIdx,
                                   ParallelReplayer::ReplayPtr Replay);
  void syncServiceStats();

  const CompiledProgram &Prog;
  /// Falsy in whole-load mode; in paged mode Log below is the facade.
  PagedLog Paged;
  ExecutionLog Log;
  LogIndex Index;
  ParallelReplayer Service;
  DynamicGraph Graph;
  GraphBuilder Builder;
  std::map<std::pair<uint32_t, uint32_t>, CacheEntry> Cache;
  std::shared_ptr<const ParallelDynamicGraph> ParGraph;
  ControllerStats Stats;
};

} // namespace ppd

#endif // PPD_CORE_CONTROLLER_H
