//===- core/GraphBuilder.h - Trace → dynamic graph --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns one replayed interval's trace into a dynamic-graph fragment:
/// singular nodes per statement execution, sub-graph nodes per call
/// (expanded inline for inherited leaves, unexpanded CallSkipped for
/// logged callees), %n parameter nodes (Fig 4.1), data-dependence edges
/// resolved against the actual writer events, dynamic control-dependence
/// edges to the most recent execution of the governing predicate, and
/// flow edges in execution order.
///
/// Reads whose producer lies outside the interval are returned as
/// *unresolved*: locals fall back to the interval's ENTRY node (their
/// values came from the prelog); shared globals are reported to the
/// controller, which resolves them across intervals and processes (§6.3)
/// — the incremental step of incremental tracing.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_GRAPHBUILDER_H
#define PPD_CORE_GRAPHBUILDER_H

#include "compiler/CompiledProgram.h"
#include "core/DynamicGraph.h"
#include "trace/TraceEvent.h"

#include <map>
#include <vector>

namespace ppd {

/// A read whose producing write lies outside the built fragment.
struct UnresolvedRead {
  DynNodeId Node = InvalidId; ///< the reading node.
  VarId Var = InvalidId;
  int64_t Index = -1;
  int64_t Value = 0;
  /// Log-record position of the reading event (locates its internal edge
  /// for cross-process resolution).
  uint32_t LogCursor = 0;
};

/// An unexpanded sub-graph node and where its callee's records begin.
struct SkippedCall {
  DynNodeId Node = InvalidId;
  uint32_t CalleeRecordsAt = 0; ///< record index of the nested prelog.
};

struct BuiltFragment {
  DynNodeId EntryNode = InvalidId;
  /// Event index → node id (CallEnd events map to their sub-graph node).
  std::vector<DynNodeId> EventNodes;
  std::vector<UnresolvedRead> Unresolved;
  std::vector<SkippedCall> Skipped;
  /// The last event node — the failure statement when the replay re-hit
  /// the error.
  DynNodeId LastNode = InvalidId;
};

class GraphBuilder {
public:
  GraphBuilder(const CompiledProgram &Prog, DynamicGraph &Graph)
      : Prog(Prog), Graph(Graph) {}

  /// Appends the fragment for interval \p IntervalIdx of \p Pid.
  BuiltFragment addInterval(uint32_t Pid, uint32_t IntervalIdx,
                            const TraceBuffer &Events);

private:
  using WriterKey = std::pair<VarId, int64_t>; // (var, element or -1)

  struct Scope {
    uint32_t Func = InvalidId;
    DynNodeId SubGraph = InvalidId; ///< enclosing sub-graph node.
    DynNodeId Entry = InvalidId;    ///< callee-local ENTRY node.
    std::map<WriterKey, DynNodeId> LocalWriters;
    std::map<StmtId, DynNodeId> LastPredicate;
    DynNodeId LastStmtNode = InvalidId;
  };

  /// Most recent writer of (var, index), honoring whole-array writes.
  DynNodeId lookupWriter(const std::map<WriterKey, DynNodeId> &Map,
                         VarId Var, int64_t Index) const;
  void recordWrite(std::map<WriterKey, DynNodeId> &Map, VarId Var,
                   int64_t Index, DynNodeId Node) const;

  const CompiledProgram &Prog;
  DynamicGraph &Graph;
};

} // namespace ppd

#endif // PPD_CORE_GRAPHBUILDER_H
