//===- core/DynamicGraph.cpp ----------------------------------------------===//
//
// Part of PPD. See DynamicGraph.h.
//
//===----------------------------------------------------------------------===//

#include "core/DynamicGraph.h"

#include "lang/AstPrinter.h"
#include "support/DotWriter.h"

#include <deque>

using namespace ppd;

DynNodeId DynamicGraph::addNode(DynNode Node) {
  Node.Id = DynNodeId(Nodes.size());
  if (Node.Pid != InvalidId && Node.Event != InvalidId)
    ByEvent[{Node.Pid, Node.Interval, Node.Event}] = Node.Id;
  Nodes.push_back(std::move(Node));
  In.emplace_back();
  Out.emplace_back();
  return Nodes.back().Id;
}

void DynamicGraph::addEdge(DynEdge Edge) {
  assert(Edge.From < Nodes.size() && Edge.To < Nodes.size() &&
         "edge endpoints must exist");
  uint32_t Idx = uint32_t(Edges.size());
  In[Edge.To].push_back(Idx);
  Out[Edge.From].push_back(Idx);
  Edges.push_back(Edge);
}

std::vector<DynEdge> DynamicGraph::inEdges(DynNodeId Id) const {
  std::vector<DynEdge> Result;
  for (uint32_t Idx : In[Id])
    Result.push_back(Edges[Idx]);
  return Result;
}

std::vector<DynEdge> DynamicGraph::outEdges(DynNodeId Id) const {
  std::vector<DynEdge> Result;
  for (uint32_t Idx : Out[Id])
    Result.push_back(Edges[Idx]);
  return Result;
}

DynNodeId DynamicGraph::nodeOfEvent(uint32_t Pid, uint32_t Interval,
                                    uint32_t Event) const {
  auto It = ByEvent.find({Pid, Interval, Event});
  return It == ByEvent.end() ? InvalidId : It->second;
}

std::string DynamicGraph::dot(const Program & /*P: labels are prebuilt*/,
                              const std::vector<DynNodeId> &Roots) const {
  // Select nodes: everything, or the backward slice from the roots.
  std::vector<bool> Keep(Nodes.size(), Roots.empty());
  if (!Roots.empty()) {
    std::deque<DynNodeId> Work(Roots.begin(), Roots.end());
    for (DynNodeId Id : Roots)
      Keep[Id] = true;
    while (!Work.empty()) {
      DynNodeId Id = Work.front();
      Work.pop_front();
      for (uint32_t EdgeIdx : In[Id]) {
        // The backward slice follows dependences only; flow edges are mere
        // execution order and would drag in every earlier event.
        if (Edges[EdgeIdx].Kind == DynEdgeKind::Flow)
          continue;
        DynNodeId From = Edges[EdgeIdx].From;
        if (!Keep[From]) {
          Keep[From] = true;
          Work.push_back(From);
        }
      }
    }
  }

  DotWriter W("dynamic_graph");
  auto Name = [](DynNodeId Id) { return "d" + std::to_string(Id); };

  for (const DynNode &N : Nodes) {
    if (!Keep[N.Id])
      continue;
    std::string Label = N.Label;
    if (N.HasValue)
      Label += "\n= " + std::to_string(N.Value);
    std::vector<std::string> Attrs;
    switch (N.Kind) {
    case DynNodeKind::Entry:
      Attrs.push_back("shape=box");
      break;
    case DynNodeKind::Singular:
      Attrs.push_back("shape=ellipse");
      break;
    case DynNodeKind::SubGraph:
      // Fig 4.1 draws sub-graph nodes as double circles.
      Attrs.push_back("shape=doublecircle");
      break;
    case DynNodeKind::Param:
      Attrs.push_back("shape=plaintext");
      break;
    case DynNodeKind::Initial:
    case DynNodeKind::Unresolved:
      Attrs.push_back("shape=box");
      Attrs.push_back("style=dotted");
      break;
    }
    W.node(Name(N.Id), Label, Attrs);
  }

  for (const DynEdge &E : Edges) {
    if (!Keep[E.From] || !Keep[E.To])
      continue;
    std::vector<std::string> Attrs;
    switch (E.Kind) {
    case DynEdgeKind::Data:
      break; // solid, the default
    case DynEdgeKind::Control:
      Attrs.push_back("style=dashed");
      if (E.Branch == 1)
        Attrs.push_back("label=\"T\"");
      else if (E.Branch == 0)
        Attrs.push_back("label=\"F\"");
      break;
    case DynEdgeKind::Flow:
      Attrs.push_back("style=dotted");
      Attrs.push_back("arrowhead=open");
      break;
    case DynEdgeKind::Sync:
      Attrs.push_back("style=bold");
      Attrs.push_back("color=blue");
      break;
    case DynEdgeKind::CrossData:
      Attrs.push_back("color=red");
      break;
    }
    W.edge(Name(E.From), Name(E.To), Attrs);
  }
  return W.str();
}
