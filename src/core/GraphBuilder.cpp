//===- core/GraphBuilder.cpp ----------------------------------------------===//
//
// Part of PPD. See GraphBuilder.h.
//
//===----------------------------------------------------------------------===//

#include "core/GraphBuilder.h"

#include "lang/AstPrinter.h"
#include "sema/Accesses.h"

using namespace ppd;

DynNodeId
GraphBuilder::lookupWriter(const std::map<WriterKey, DynNodeId> &Map,
                           VarId Var, int64_t Index) const {
  auto It = Map.find({Var, Index});
  if (It != Map.end())
    return It->second;
  if (Index >= 0) {
    // An element read may be satisfied by a whole-variable write.
    It = Map.find({Var, -1});
    if (It != Map.end())
      return It->second;
  }
  return InvalidId;
}

void GraphBuilder::recordWrite(std::map<WriterKey, DynNodeId> &Map,
                               VarId Var, int64_t Index,
                               DynNodeId Node) const {
  if (Index < 0) {
    // Whole-variable write: supersedes all element entries.
    auto It = Map.lower_bound({Var, INT64_MIN});
    while (It != Map.end() && It->first.first == Var)
      It = Map.erase(It);
  }
  Map[{Var, Index}] = Node;
}

/// Finds the CallExpr in \p S whose callee is \p Callee (first match).
static const CallExpr *findCallExpr(const Expr &E, const FuncDecl *Callee) {
  switch (E.getKind()) {
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    if (C->ResolvedFunc == Callee)
      return C;
    for (const ExprPtr &Arg : C->Args)
      if (const CallExpr *Found = findCallExpr(*Arg, Callee))
        return Found;
    return nullptr;
  }
  case ExprKind::ArrayIndex:
    return findCallExpr(*cast<ArrayIndexExpr>(&E)->Index, Callee);
  case ExprKind::Unary:
    return findCallExpr(*cast<UnaryExpr>(&E)->Operand, Callee);
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    if (const CallExpr *Found = findCallExpr(*B->Lhs, Callee))
      return Found;
    return findCallExpr(*B->Rhs, Callee);
  }
  default:
    return nullptr;
  }
}

static const CallExpr *findCallInStmt(const Stmt &S, const FuncDecl *Callee) {
  const CallExpr *Found = nullptr;
  auto Check = [&](const Expr *E) {
    if (!Found && E)
      Found = findCallExpr(*E, Callee);
  };
  switch (S.getKind()) {
  case StmtKind::VarDecl:
    Check(cast<VarDeclStmt>(&S)->Init.get());
    break;
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    Check(A->Value.get());
    Check(A->Index.get());
    break;
  }
  case StmtKind::If:
    Check(cast<IfStmt>(&S)->Cond.get());
    break;
  case StmtKind::While:
    Check(cast<WhileStmt>(&S)->Cond.get());
    break;
  case StmtKind::For:
    Check(cast<ForStmt>(&S)->Cond.get());
    break;
  case StmtKind::Return:
    Check(cast<ReturnStmt>(&S)->Value.get());
    break;
  case StmtKind::Expr:
    Check(cast<ExprStmt>(&S)->Call.get());
    break;
  case StmtKind::Print:
    Check(cast<PrintStmt>(&S)->Value.get());
    break;
  case StmtKind::Send:
    Check(cast<SendStmt>(&S)->Value.get());
    break;
  default:
    break;
  }
  return Found;
}

BuiltFragment GraphBuilder::addInterval(uint32_t Pid, uint32_t IntervalIdx,
                                        const TraceBuffer &Events) {
  BuiltFragment Out;
  const Program &P = *Prog.Ast;

  // Writers of globals are shared across scopes.
  std::map<WriterKey, DynNodeId> GlobalWriters;
  std::vector<Scope> Scopes;
  DynNodeId PrevNode = InvalidId;

  // The interval's ENTRY node.
  {
    // Identify the e-block's function for the label.
    DynNode Entry;
    Entry.Kind = DynNodeKind::Entry;
    Entry.Pid = Pid;
    Entry.Interval = IntervalIdx;
    Scopes.emplace_back();
    Out.EntryNode = InvalidId; // fill after we know the function below
    Entry.Label = "ENTRY";
    Out.EntryNode = Graph.addNode(std::move(Entry));
    Scopes.back().Entry = Out.EntryNode;
    PrevNode = Out.EntryNode;
  }

  auto ResolveRead = [&](DynNodeId Reader, VarId Var, int64_t Index,
                         int64_t Value, uint32_t LogCursor) {
    const VarInfo &Info = Prog.Symbols->var(Var);
    if (Info.isGlobal()) {
      DynNodeId Writer = lookupWriter(GlobalWriters, Var, Index);
      if (Writer != InvalidId) {
        Graph.addEdge({DynEdgeKind::Data, Writer, Reader, Var, -1});
        return;
      }
      if (Info.Kind == VarKind::SharedGlobal) {
        // Possibly produced by another process: leave to the controller.
        Out.Unresolved.push_back({Reader, Var, Index, Value, LogCursor});
        return;
      }
      // Private global from before the interval: prelog supplied it.
      Graph.addEdge(
          {DynEdgeKind::Data, Scopes.front().Entry, Reader, Var, -1});
      return;
    }
    // Locals/params resolve in the innermost scope.
    DynNodeId Writer = lookupWriter(Scopes.back().LocalWriters, Var, Index);
    if (Writer != InvalidId) {
      Graph.addEdge({DynEdgeKind::Data, Writer, Reader, Var, -1});
      return;
    }
    // From the prelog (root scope) or uninitialized: the scope's entry.
    Graph.addEdge({DynEdgeKind::Data, Scopes.back().Entry, Reader, Var, -1});
  };

  auto AddControlDeps = [&](DynNodeId Node, StmtId Stmt) {
    const FuncDecl *Func = Prog.Database->owningFunc(Stmt);
    if (!Func)
      return;
    const Cfg &G = *Prog.Cfgs[Func->Index];
    CfgNodeId Node_ = G.nodeOf(Stmt);
    if (Node_ == InvalidId)
      return;
    for (const ControlDep &Dep :
         Prog.Pdgs[Func->Index]->controlParents(Node_)) {
      if (Dep.Branch == Cfg::EntryId) {
        Graph.addEdge({DynEdgeKind::Control, Scopes.back().Entry, Node,
                       InvalidId, int8_t(-1)});
        continue;
      }
      StmtId BranchStmt = G.node(Dep.Branch).Stmt;
      auto It = Scopes.back().LastPredicate.find(BranchStmt);
      if (It != Scopes.back().LastPredicate.end() && It->second != Node)
        Graph.addEdge({DynEdgeKind::Control, It->second, Node, InvalidId,
                       int8_t(Dep.Label)});
    }
  };

  /// Creates the %n parameter nodes of a call and wires argument sources.
  auto AddParamNodes = [&](DynNodeId SubGraphNode, const TraceEvent &E,
                           const FuncDecl *Callee) {
    std::vector<DynNodeId> ParamNodes;
    const CallExpr *Call =
        E.Stmt != InvalidId ? findCallInStmt(*P.stmt(E.Stmt), Callee)
                            : nullptr;
    for (size_t ArgIdx = 0; ArgIdx != E.Args.size(); ++ArgIdx) {
      DynNode PN;
      PN.Kind = DynNodeKind::Param;
      PN.Pid = Pid;
      PN.Interval = IntervalIdx;
      PN.Stmt = E.Stmt;
      PN.Label = "%" + std::to_string(ArgIdx + 1);
      PN.Value = E.Args[ArgIdx];
      PN.HasValue = true;
      PN.Parent = SubGraphNode;
      DynNodeId PNId = Graph.addNode(std::move(PN));
      ParamNodes.push_back(PNId);
      // Wire the argument expression's reads into the %n node.
      if (Call && ArgIdx < Call->Args.size()) {
        std::vector<VarId> Reads;
        std::vector<const FuncDecl *> Callees;
        collectExprReads(*Call->Args[ArgIdx], Reads, Callees);
        for (VarId Var : Reads)
          ResolveRead(PNId, Var, -1, E.Args[ArgIdx], E.LogCursor);
      }
      Graph.addEdge({DynEdgeKind::Data, PNId, SubGraphNode, InvalidId, -1});
    }
    return ParamNodes;
  };

  for (const TraceEvent &E : Events.Events) {
    switch (E.Kind) {
    case TraceEventKind::Stmt: {
      DynNode N;
      N.Kind = DynNodeKind::Singular;
      N.Pid = Pid;
      N.Interval = IntervalIdx;
      N.Event = E.Index;
      N.Stmt = E.Stmt;
      N.Parent = Scopes.back().SubGraph;
      N.Label = AstPrinter::summarize(*P.stmt(E.Stmt)) + "  s" +
                std::to_string(E.Stmt);
      if (E.IsPredicate) {
        N.Value = E.BranchTaken;
        N.HasValue = true;
      } else if (!E.Writes.empty()) {
        N.Value = E.Writes.front().Value;
        N.HasValue = true;
      }
      DynNodeId Node = Graph.addNode(std::move(N));
      Out.EventNodes.push_back(Node);

      if (PrevNode != InvalidId)
        Graph.addEdge({DynEdgeKind::Flow, PrevNode, Node, InvalidId, -1});
      PrevNode = Node;

      for (const TraceAccess &R : E.Reads)
        ResolveRead(Node, R.Var, R.Index, R.Value, E.LogCursor);
      AddControlDeps(Node, E.Stmt);
      for (const TraceAccess &W : E.Writes) {
        const VarInfo &Info = Prog.Symbols->var(W.Var);
        auto &Map = Info.isGlobal() ? GlobalWriters
                                    : Scopes.back().LocalWriters;
        recordWrite(Map, W.Var, W.Index, Node);
      }
      if (E.IsPredicate)
        Scopes.back().LastPredicate[E.Stmt] = Node;
      Scopes.back().LastStmtNode = Node;
      Out.LastNode = Node;
      break;
    }

    case TraceEventKind::CallBegin: {
      const FuncDecl *Callee = P.Funcs[E.Callee].get();
      DynNode SG;
      SG.Kind = DynNodeKind::SubGraph;
      SG.Pid = Pid;
      SG.Interval = IntervalIdx;
      SG.Event = E.Index;
      SG.Stmt = E.Stmt;
      SG.Callee = E.Callee;
      SG.Expanded = true;
      SG.Parent = Scopes.back().SubGraph;
      SG.Label = Callee->Name + "(...)";
      DynNodeId SGId = Graph.addNode(std::move(SG));
      Out.EventNodes.push_back(SGId);
      std::vector<DynNodeId> Params = AddParamNodes(SGId, E, Callee);

      // Open the callee scope with params seeded by the %n nodes.
      Scope S;
      S.Func = E.Callee;
      S.SubGraph = SGId;
      DynNode CalleeEntry;
      CalleeEntry.Kind = DynNodeKind::Entry;
      CalleeEntry.Pid = Pid;
      CalleeEntry.Interval = IntervalIdx;
      CalleeEntry.Label = "ENTRY " + Callee->Name;
      CalleeEntry.Parent = SGId;
      S.Entry = Graph.addNode(std::move(CalleeEntry));
      for (size_t ArgIdx = 0;
           ArgIdx != std::min(Params.size(), Callee->Params.size());
           ++ArgIdx)
        S.LocalWriters[{Callee->Params[ArgIdx].Var, -1}] = Params[ArgIdx];
      Scopes.push_back(std::move(S));
      break;
    }

    case TraceEventKind::CallEnd: {
      assert(Scopes.size() > 1 && "call end without matching begin");
      DynNodeId SGId = Scopes.back().SubGraph;
      Scopes.pop_back();
      DynNode &SG = Graph.node(SGId);
      SG.Value = E.Value;
      SG.HasValue = true;
      Out.EventNodes.push_back(SGId);
      // The returned value flows into the enclosing statement.
      if (Scopes.back().LastStmtNode != InvalidId)
        Graph.addEdge({DynEdgeKind::Data, SGId, Scopes.back().LastStmtNode,
                       InvalidId, -1});
      break;
    }

    case TraceEventKind::CallSkipped: {
      const FuncDecl *Callee = P.Funcs[E.Callee].get();
      DynNode SG;
      SG.Kind = DynNodeKind::SubGraph;
      SG.Pid = Pid;
      SG.Interval = IntervalIdx;
      SG.Event = E.Index;
      SG.Stmt = E.Stmt;
      SG.Callee = E.Callee;
      SG.Expanded = false;
      SG.Parent = Scopes.back().SubGraph;
      SG.Label = Callee->Name + "(...)  [not expanded]";
      SG.Value = E.Value;
      SG.HasValue = true;
      DynNodeId SGId = Graph.addNode(std::move(SG));
      Out.EventNodes.push_back(SGId);
      Out.Skipped.push_back({SGId, E.LogCursor});
      AddParamNodes(SGId, E, Callee);

      if (Scopes.back().LastStmtNode != InvalidId)
        Graph.addEdge({DynEdgeKind::Data, SGId, Scopes.back().LastStmtNode,
                       InvalidId, -1});
      // The callee may have rewritten globals: later reads point at the
      // unexpanded node, inviting the user to expand it.
      for (unsigned G : Prog.ModRef.Mod[E.Callee].toVector())
        recordWrite(GlobalWriters, VarId(G), -1, SGId);
      if (PrevNode != InvalidId)
        Graph.addEdge({DynEdgeKind::Flow, PrevNode, SGId, InvalidId, -1});
      PrevNode = SGId;
      break;
    }
    }
  }

  // Label the entry with the e-block's function now that events are known.
  // (The e-block's function is recorded in the interval; the controller
  // sets a nicer label.)
  return Out;
}
