//===- core/Controller.cpp ------------------------------------------------===//
//
// Part of PPD. See Controller.h.
//
//===----------------------------------------------------------------------===//

#include "core/Controller.h"

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ppd;

namespace {

/// Builds the log's interval index, fanning per-process construction over
/// a transient pool when the controller is configured for parallelism.
/// (The replay service's pool doesn't exist yet at this point — it is
/// constructed after the index it consumes.)
LogIndex buildIndex(const ExecutionLog &Log,
                    const std::shared_ptr<const LogIndex> &Adopted,
                    unsigned Threads) {
  if (Adopted)
    return *Adopted;
  if (Threads == 0 || Log.Procs.size() < 2)
    return LogIndex(Log);
  ThreadPool Pool(Threads);
  return LogIndex(Log, &Pool);
}

/// Paged-mode index: adopt the caller's (the `.ppdb` sidecar's) when one
/// came along, else skim the store — record bodies stay on disk either
/// way.
LogIndex buildPagedIndex(const PageStore &Store,
                         std::shared_ptr<const LogIndex> Index,
                         unsigned Threads) {
  if (Index)
    return *Index;
  if (Threads == 0 || Store.numProcs() < 2)
    return LogIndex(Store);
  ThreadPool Pool(Threads);
  return LogIndex(Store, &Pool);
}

ReplayServiceOptions withPaged(ReplayServiceOptions Options,
                               const PagedLog &Paged) {
  Options.Paged = Paged;
  return Options;
}

} // namespace

PpdController::PpdController(const CompiledProgram &Prog, ExecutionLog Log,
                             PpdControllerOptions Options)
    : Prog(Prog), Log(std::move(Log)),
      Index(buildIndex(this->Log, Options.AdoptedIndex,
                       Options.Service.Threads)),
      Service(Prog, this->Log, Index, Options.Service),
      Builder(Prog, Graph), ParGraph(std::move(Options.AdoptedGraph)) {}

PpdController::PpdController(const CompiledProgram &Prog, PagedLog PagedIn,
                             std::shared_ptr<const LogIndex> IndexIn,
                             PpdControllerOptions Options)
    : Prog(Prog), Paged(std::move(PagedIn)), Log(Paged.Store->facadeLog()),
      Index(buildPagedIndex(*Paged.Store, std::move(IndexIn),
                            Options.Service.Threads)),
      Service(Prog, this->Log, Index, withPaged(Options.Service, Paged)),
      Builder(Prog, Graph), ParGraph(std::move(Options.AdoptedGraph)) {
  assert(Paged && "paged controller needs both a store and a pool");
}

void PpdController::syncServiceStats() {
  ReplayServiceStats S = Service.stats();
  Stats.Replays = S.EngineReplays;
  Stats.ReplayInstructions = S.EngineInstructions;
}

const ReplayResult *PpdController::replayOf(uint32_t Pid,
                                            uint32_t IntervalIdx) const {
  auto It = Cache.find({Pid, IntervalIdx});
  return It == Cache.end() ? nullptr : It->second.Replay.get();
}

const BuiltFragment *
PpdController::addFragment(uint32_t Pid, uint32_t IntervalIdx,
                           ParallelReplayer::ReplayPtr Replay) {
  syncServiceStats();
  if (!Replay->Ok)
    return nullptr;
  Stats.EventsTraced += Replay->Events.Events.size();
  Stats.TraceBytes += Replay->Events.byteSize();

  CacheEntry Entry;
  Entry.Replay = std::move(Replay);
  Entry.Fragment =
      Builder.addInterval(Pid, IntervalIdx, Entry.Replay->Events);
  // Give the entry node a descriptive label.
  const LogInterval &Interval = Index.intervals(Pid)[IntervalIdx];
  const EBlockInfo &EBlock = Prog.eblock(Interval.EBlock);
  Graph.node(Entry.Fragment.EntryNode).Label =
      "ENTRY " + Prog.func(EBlock.Func).Name + " [p" + std::to_string(Pid) +
      " i" + std::to_string(IntervalIdx) + "]";
  Graph.markInterval(Pid, IntervalIdx);

  auto [Pos, Inserted] =
      Cache.emplace(std::make_pair(Pid, IntervalIdx), std::move(Entry));
  assert(Inserted && "interval cached twice");
  spliceSyncEdges(Pid, IntervalIdx);
  return &Pos->second.Fragment;
}

const BuiltFragment *PpdController::ensureInterval(uint32_t Pid,
                                                   uint32_t IntervalIdx) {
  auto It = Cache.find({Pid, IntervalIdx});
  if (It != Cache.end())
    return &It->second.Fragment;

  assert(IntervalIdx < Index.intervals(Pid).size() &&
         "interval index out of range");
  const BuiltFragment *Fragment =
      addFragment(Pid, IntervalIdx, Service.get(Pid, IntervalIdx));
  // Warm the intervals a backward walk from here reaches next.
  Service.prefetchNeighbors(Pid, IntervalIdx);
  return Fragment;
}

unsigned PpdController::ensureIntervals(
    const std::vector<ParallelReplayer::IntervalRef> &Requests) {
  // Regenerate the missing traces in parallel...
  std::vector<ParallelReplayer::IntervalRef> Missing;
  for (const auto &[Pid, IntervalIdx] : Requests)
    if (!Cache.count({Pid, IntervalIdx}))
      Missing.push_back({Pid, IntervalIdx});
  std::vector<ParallelReplayer::ReplayPtr> Replays =
      Service.getMany(Missing);
  // ...then splice serially, in request order.
  unsigned Added = 0;
  for (size_t I = 0; I != Missing.size(); ++I)
    if (!Cache.count(Missing[I]) &&
        addFragment(Missing[I].first, Missing[I].second,
                    std::move(Replays[I])))
      ++Added;
  return Added;
}

DynNodeId PpdController::startAtFailure(uint32_t Pid) {
  const LogInterval *Open = Index.lastOpenInterval(Pid);
  if (!Open)
    return InvalidId;
  const BuiltFragment *Fragment = ensureInterval(Pid, Open->Index);
  return Fragment ? Fragment->LastNode : InvalidId;
}

DynNodeId PpdController::startAtLastEvent(uint32_t Pid) {
  if (const LogInterval *Open = Index.lastOpenInterval(Pid))
    if (const BuiltFragment *Fragment = ensureInterval(Pid, Open->Index))
      return Fragment->LastNode;
  // All intervals closed: the process's last event lives in the interval
  // whose postlog was written last (the outermost/final segment), not in
  // the interval with the highest number (that's the most deeply nested
  // call).
  const LogInterval *Latest = nullptr;
  for (const LogInterval &Interval : Index.intervals(Pid))
    if (!Latest || Interval.PostlogRecord > Latest->PostlogRecord)
      Latest = &Interval;
  if (!Latest)
    return InvalidId;
  const BuiltFragment *Fragment = ensureInterval(Pid, Latest->Index);
  return Fragment ? Fragment->LastNode : InvalidId;
}

std::vector<DynEdge> PpdController::dependencesOf(DynNodeId Node) {
  // Resolve any cross-process reads still pending on this node. Copy the
  // node's coordinates up front: resolveCrossRead adds nodes, which can
  // reallocate the graph's node storage and invalidate references into it.
  const uint32_t Pid = Graph.node(Node).Pid;
  const uint32_t Interval = Graph.node(Node).Interval;
  if (Pid != InvalidId && Interval != InvalidId) {
    auto It = Cache.find({Pid, Interval});
    if (It != Cache.end()) {
      std::vector<UnresolvedRead> &Pending = It->second.Fragment.Unresolved;
      for (auto ReadIt = Pending.begin(); ReadIt != Pending.end();) {
        if (ReadIt->Node == Node) {
          resolveCrossRead(Pid, *ReadIt);
          ReadIt = Pending.erase(ReadIt);
        } else {
          ++ReadIt;
        }
      }
    }
  }
  return Graph.inEdges(Node);
}

unsigned PpdController::resolveAllCrossReads() {
  unsigned Resolutions = 0;
  // Fragments may be added while resolving; iterate until stable.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (auto &[Key, Entry] : Cache) {
      if (Entry.Fragment.Unresolved.empty())
        continue;
      std::vector<UnresolvedRead> Pending;
      Pending.swap(Entry.Fragment.Unresolved);
      for (const UnresolvedRead &Read : Pending) {
        resolveCrossRead(Key.first, Read);
        ++Resolutions;
      }
      Changed = true;
      break; // Cache may have grown; restart iteration.
    }
  }
  return Resolutions;
}

CrossReadResolution
PpdController::resolveCrossRead(uint32_t ReaderPid,
                                const UnresolvedRead &Read) {
  CrossReadResolution Result;
  const ParallelDynamicGraph &PG = parallelGraph();
  uint32_t SharedIdx = Prog.Symbols->var(Read.Var).SharedIndex;

  EdgeRef ReaderEdge = PG.edgeContaining(ReaderPid, Read.LogCursor);
  if (!ReaderEdge.valid()) {
    // Before the first sync node or no edges: treat as initial state.
    DynNode N;
    N.Kind = DynNodeKind::Initial;
    N.Label = "initial " + Prog.Symbols->var(Read.Var).Name;
    DynNodeId Init = Graph.addNode(std::move(N));
    Graph.addEdge({DynEdgeKind::CrossData, Init, Read.Node, Read.Var, -1});
    Result.Outcome = CrossReadResolution::Kind::Initial;
    Result.Producer = Init;
    return Result;
  }

  EdgeRef RaceWitness;
  std::vector<EdgeRef> Producers =
      PG.writersBefore(ReaderEdge, SharedIdx, &RaceWitness);

  if (RaceWitness.valid()) {
    DynNode N;
    N.Kind = DynNodeKind::Unresolved;
    N.Label = "RACE on " + Prog.Symbols->var(Read.Var).Name + " (p" +
              std::to_string(RaceWitness.Pid) + ")";
    DynNodeId RaceNode = Graph.addNode(std::move(N));
    Graph.addEdge(
        {DynEdgeKind::CrossData, RaceNode, Read.Node, Read.Var, -1});
    Result.Outcome = CrossReadResolution::Kind::Race;
    Result.RaceEdge = RaceWitness;
    return Result;
  }

  // WRITE_SETs are variable-granular: for an array element read, the
  // latest writing edge may have written only *other* elements. Walk the
  // writers latest-first and take the first that traces to an event
  // actually covering the element; if none did, the element still holds
  // its initial value.
  for (EdgeRef Producer : Producers) {
    bool TraceOk = false;
    DynNodeId Writer =
        materializeWriter(Producer, Read.Var, Read.Index, TraceOk);
    if (!TraceOk) {
      Result.Outcome = CrossReadResolution::Kind::Unknown;
      return Result;
    }
    if (Writer == InvalidId)
      continue; // wrote the variable, but not this element
    Graph.addEdge(
        {DynEdgeKind::CrossData, Writer, Read.Node, Read.Var, -1});
    Result.Outcome = CrossReadResolution::Kind::Resolved;
    Result.Producer = Writer;
    return Result;
  }

  DynNode N;
  N.Kind = DynNodeKind::Initial;
  N.Label = "initial " + Prog.Symbols->var(Read.Var).Name;
  DynNodeId Init = Graph.addNode(std::move(N));
  Graph.addEdge({DynEdgeKind::CrossData, Init, Read.Node, Read.Var, -1});
  Result.Outcome = CrossReadResolution::Kind::Initial;
  Result.Producer = Init;
  return Result;
}

DynNodeId PpdController::materializeWriter(EdgeRef Producer, VarId Var,
                                           int64_t Index, bool &TraceOk) {
  const ParallelDynamicGraph &PG = parallelGraph();
  const std::vector<SyncNode> &ProcNodes = PG.nodes(Producer.Pid);
  uint32_t Begin = ProcNodes[Producer.EndNode - 1].RecordIdx;
  uint32_t End = ProcNodes[Producer.EndNode].RecordIdx;

  // Locate the log interval covering the edge's record span and trace it.
  TraceOk = false;
  const LogInterval *Interval = this->Index.enclosing(Producer.Pid, End);
  if (!Interval)
    return InvalidId;
  const BuiltFragment *Fragment =
      ensureInterval(Producer.Pid, Interval->Index);
  if (!Fragment)
    return InvalidId;
  const ReplayResult *Replay = replayOf(Producer.Pid, Interval->Index);
  if (!Replay)
    return InvalidId;
  TraceOk = true;

  // Last event within the edge's record span writing the variable.
  DynNodeId Best = InvalidId;
  for (const TraceEvent &E : Replay->Events.Events) {
    if (E.LogCursor <= Begin || E.LogCursor > End)
      continue;
    bool WritesVar = false;
    if (E.Kind == TraceEventKind::Stmt) {
      for (const TraceAccess &W : E.Writes)
        if (W.Var == Var && (W.Index == Index || W.Index < 0 || Index < 0))
          WritesVar = true;
    } else if (E.Kind == TraceEventKind::CallSkipped) {
      WritesVar = Prog.ModRef.Mod[E.Callee].contains(Var);
    }
    if (WritesVar && E.Index < Fragment->EventNodes.size())
      Best = Fragment->EventNodes[E.Index];
  }
  return Best;
}

uint32_t PpdController::recordEnd(uint32_t Pid) const {
  if (Paged)
    return uint32_t(Paged.Store->section(Pid).NumRecords);
  return uint32_t(Log.Procs[Pid].Records.size());
}

const ParallelDynamicGraph &PpdController::parallelGraph() {
  if (ParGraph)
    return *ParGraph;
  if (Paged) {
    // Incremental build, pinning one section at a time: peak memory is
    // the largest single section (plus whatever else the pool caches),
    // never the whole log. The result is identical to the whole-log
    // constructor's.
    auto PG = std::make_unique<ParallelDynamicGraph>(
        Prog.Symbols->NumSharedVars, uint32_t(Paged.Store->numProcs()));
    for (uint32_t Pid = 0; Pid != Paged.Store->numProcs(); ++Pid) {
      BufferPool::Pin Pin = Paged.Pool->pin(*Paged.Store, Pid);
      if (Pin)
        PG->addProcess(Pid, Pin.log());
    }
    PG->finalize();
    ParGraph = std::move(PG);
  } else {
    ParGraph = std::make_unique<ParallelDynamicGraph>(
        Log, Prog.Symbols->NumSharedVars);
  }
  return *ParGraph;
}

RaceDetectionResult PpdController::detectRaces(RaceAlgorithm Algorithm) {
  RaceDetector Detector(parallelGraph(), *Prog.Symbols);
  // The vectorized sweep shards across the replay service's pool (serial
  // sessions have a worker-less pool and run it inline); results are
  // byte-identical at any worker count.
  return Detector.detect(Algorithm, Service.pool());
}

DynNodeId PpdController::expandCall(DynNodeId SubGraphNode) {
  // Copy the coordinates: ensureInterval below adds nodes, which can
  // reallocate the graph's node storage and invalidate references.
  const uint32_t Pid = Graph.node(SubGraphNode).Pid;
  const uint32_t Interval = Graph.node(SubGraphNode).Interval;
  if (Graph.node(SubGraphNode).Kind != DynNodeKind::SubGraph ||
      Graph.node(SubGraphNode).Expanded)
    return InvalidId;
  auto It = Cache.find({Pid, Interval});
  if (It == Cache.end())
    return InvalidId;
  for (const SkippedCall &Skip : It->second.Fragment.Skipped) {
    if (Skip.Node != SubGraphNode)
      continue;
    const LogInterval *Nested =
        Index.intervalAtRecord(Pid, Skip.CalleeRecordsAt);
    if (!Nested)
      return InvalidId;
    const BuiltFragment *Fragment = ensureInterval(Pid, Nested->Index);
    if (!Fragment)
      return InvalidId;
    Graph.node(SubGraphNode).Expanded = true;
    Graph.addEdge({DynEdgeKind::Flow, SubGraphNode, Fragment->EntryNode,
                   InvalidId, -1});
    return Fragment->EntryNode;
  }
  return InvalidId;
}

DynNodeId PpdController::eventNodeNear(uint32_t Pid, uint32_t RecordIdx,
                                       StmtId Stmt) {
  const LogInterval *Interval = Index.enclosing(Pid, RecordIdx);
  if (!Interval)
    return InvalidId;
  auto It = Cache.find({Pid, Interval->Index});
  if (It == Cache.end())
    return InvalidId;
  const ReplayResult &Replay = *It->second.Replay;
  const BuiltFragment &Fragment = It->second.Fragment;
  DynNodeId Best = InvalidId;
  for (const TraceEvent &E : Replay.Events.Events) {
    if (E.Stmt != Stmt || E.LogCursor > RecordIdx)
      continue;
    if (E.Index < Fragment.EventNodes.size())
      Best = Fragment.EventNodes[E.Index];
  }
  return Best;
}

void PpdController::spliceSyncEdges(uint32_t Pid, uint32_t IntervalIdx) {
  // Add synchronization edges whose endpoints both have traced fragments.
  const ParallelDynamicGraph &PG = parallelGraph();
  const LogInterval &Interval = Index.intervals(Pid)[IntervalIdx];
  uint32_t End = Interval.PostlogRecord == InvalidId
                     ? recordEnd(Pid)
                     : Interval.PostlogRecord;

  for (uint32_t NodeIdx = 0; NodeIdx != PG.nodes(Pid).size(); ++NodeIdx) {
    const SyncNode &N = PG.nodes(Pid)[NodeIdx];
    if (N.RecordIdx < Interval.PrelogRecord || N.RecordIdx > End)
      continue;
    // Edge into this node (partner → here).
    SyncNodeRef Partner = PG.partnerOf({Pid, NodeIdx});
    if (Partner.valid()) {
      const SyncNode &PN = PG.node(Partner);
      DynNodeId From =
          eventNodeNear(Partner.Pid, PN.RecordIdx, PN.Stmt);
      DynNodeId To = eventNodeNear(Pid, N.RecordIdx, N.Stmt);
      if (From != InvalidId && To != InvalidId)
        Graph.addEdge({DynEdgeKind::Sync, From, To, InvalidId, -1});
    }
    // Edges out of this node: partners in other processes pointing here.
    for (uint32_t OtherPid = 0; OtherPid != PG.numProcs(); ++OtherPid) {
      if (OtherPid == Pid)
        continue;
      for (uint32_t OtherIdx = 0; OtherIdx != PG.nodes(OtherPid).size();
           ++OtherIdx) {
        SyncNodeRef OtherPartner = PG.partnerOf({OtherPid, OtherIdx});
        if (!(OtherPartner == SyncNodeRef{Pid, NodeIdx}))
          continue;
        const SyncNode &ON = PG.nodes(OtherPid)[OtherIdx];
        DynNodeId From = eventNodeNear(Pid, N.RecordIdx, N.Stmt);
        DynNodeId To = eventNodeNear(OtherPid, ON.RecordIdx, ON.Stmt);
        if (From != InvalidId && To != InvalidId)
          Graph.addEdge({DynEdgeKind::Sync, From, To, InvalidId, -1});
      }
    }
  }
}

ReplayResult
PpdController::whatIf(uint32_t Pid, uint32_t IntervalIdx,
                      const std::vector<ReplayOverride> &Overrides) {
  assert(IntervalIdx < Index.intervals(Pid).size() &&
         "interval index out of range");
  ReplayResult Result = *Service.get(Pid, IntervalIdx, Overrides);
  syncServiceStats();
  return Result;
}

RestoredState PpdController::restoreGlobals(uint32_t Pid,
                                            uint32_t UptoInterval) const {
  RestoredState State;
  State.Shared.assign(Prog.Symbols->SharedMemorySize, 0);
  State.PrivateGlobals.assign(Prog.Symbols->PrivateGlobalSize, 0);
  for (const VarInfo &Info : Prog.Symbols->Vars) {
    if (Info.Kind == VarKind::SharedGlobal && !Info.isArray())
      State.Shared[Info.Offset] = Info.Init;
    if (Info.Kind == VarKind::PrivateGlobal && !Info.isArray())
      State.PrivateGlobals[Info.Offset] = Info.Init;
  }

  assert(UptoInterval < Index.intervals(Pid).size() &&
         "interval index out of range");
  uint32_t EndRecord = Index.intervals(Pid)[UptoInterval].PostlogRecord;
  if (EndRecord == InvalidId)
    EndRecord = recordEnd(Pid);

  // §5.7: "the accumulation of the information carried by all the postlogs
  // from postlog(1) up to postlog(i) is the same as the program state at
  // the time postlog(i) is made." (Globals; unit logs refresh shared
  // values read from other processes.) In paged mode the walk pins the
  // process's section for its duration; the facade log has no records.
  BufferPool::Pin Pin;
  const RecordSeq *Records = &Log.Procs[Pid].Records;
  if (Paged) {
    Pin = Paged.Pool->pin(*Paged.Store, Pid);
    if (!Pin)
      return State;
    Records = &Pin.log().Records;
  }
  for (uint32_t Idx = 0; Idx <= EndRecord && Idx < Records->size(); ++Idx) {
    const LogRecord &R = (*Records)[Idx];
    if (R.Kind != LogRecordKind::Postlog && R.Kind != LogRecordKind::UnitLog)
      continue;
    for (const VarValue &V : R.Vars) {
      const VarInfo &Info = Prog.Symbols->var(V.Var);
      if (Info.Kind == VarKind::SharedGlobal)
        std::copy(V.Values.begin(), V.Values.end(),
                  State.Shared.begin() + Info.Offset);
      else if (Info.Kind == VarKind::PrivateGlobal)
        std::copy(V.Values.begin(), V.Values.end(),
                  State.PrivateGlobals.begin() + Info.Offset);
    }
  }
  return State;
}
