//===- core/DebugSession.h - Command-driven debugging session ---*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive debugging phase as a text-command API: a thin,
/// deterministic shell over PpdController so the same logic backs the
/// `ppd debug` REPL and the test suite. The paper's §7 asks for an
/// easy-to-use interface relating the graphs to program text; every
/// response names statements with their source lines.
///
/// Commands (one per call; the response is the printable result):
///   where [pid]            focus the failure/last event of a process
///   node N                 focus node N and show its dependences
///   back                   follow the first data dependence backwards
///   fwd                    follow the first traced data flow forwards
///   expand N               expand an unexpanded sub-graph node
///   races                  §6.4 race detection
///   restore PID I          §5.7 restoration at interval I
///   whatif PID I E VAR V   §5.7 what-if replay
///   list                   the program source
///   graphdot [N]           DOT text of the (sliced) dynamic graph
///   pardot                 DOT text of the parallel dynamic graph
///   stats                  controller counters
///   help
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_DEBUGSESSION_H
#define PPD_CORE_DEBUGSESSION_H

#include "core/Controller.h"

#include <string>

namespace ppd {

class DebugSession {
public:
  DebugSession(const CompiledProgram &Prog, PpdController &Controller)
      : Prog(Prog), Controller(Controller) {}

  /// Executes one command line; returns the printable response (never
  /// empty — unknown commands yield a hint).
  std::string execute(const std::string &Line);

  /// The currently focused node, or InvalidId.
  DynNodeId current() const { return Current; }

private:
  std::string showNode(DynNodeId Id);
  std::string cmdWhere(std::istream &Args);
  std::string cmdNode(std::istream &Args);
  std::string cmdBack();
  std::string cmdFwd();
  std::string cmdExpand(std::istream &Args);
  std::string cmdRaces();
  std::string cmdRestore(std::istream &Args);
  std::string cmdWhatIf(std::istream &Args);
  std::string cmdStats();

  const CompiledProgram &Prog;
  PpdController &Controller;
  DynNodeId Current = InvalidId;
};

} // namespace ppd

#endif // PPD_CORE_DEBUGSESSION_H
