//===- core/DebugSession.cpp ----------------------------------------------===//
//
// Part of PPD. See DebugSession.h.
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"

#include "lang/AstPrinter.h"

#include <sstream>

using namespace ppd;

static std::string lineOf(const CompiledProgram &Prog, StmtId Stmt) {
  if (Stmt == InvalidId)
    return "";
  return " (line " +
         std::to_string(Prog.Ast->stmt(Stmt)->getLoc().Line) + ")";
}

std::string DebugSession::showNode(DynNodeId Id) {
  const DynNode &N = Controller.graph().node(Id);
  std::string Out = "node " + std::to_string(Id) + ": " + N.Label;
  if (N.HasValue)
    Out += "  = " + std::to_string(N.Value);
  if (N.Pid != InvalidId)
    Out += "  (p" + std::to_string(N.Pid) + ")";
  Out += lineOf(Prog, N.Stmt);
  Out += "\n";
  for (const DynEdge &E : Controller.dependencesOf(Id)) {
    const char *Kind = nullptr;
    switch (E.Kind) {
    case DynEdgeKind::Data:
      Kind = "data   ";
      break;
    case DynEdgeKind::Control:
      Kind = "control";
      break;
    case DynEdgeKind::CrossData:
      Kind = "cross  ";
      break;
    case DynEdgeKind::Sync:
      Kind = "sync   ";
      break;
    case DynEdgeKind::Flow:
      continue;
    }
    const DynNode &From = Controller.graph().node(E.From);
    Out += "  <- " + std::string(Kind) + " node " +
           std::to_string(E.From) + "  " + From.Label;
    if (E.Var != InvalidId)
      Out += "  [" + Prog.Symbols->var(E.Var).Name + "]";
    Out += "\n";
  }
  return Out;
}

std::string DebugSession::cmdWhere(std::istream &Args) {
  uint32_t Pid = 0;
  Args >> Pid;
  if (Pid >= Controller.log().Procs.size())
    return "no such process\n";
  DynNodeId Node = Controller.startAtFailure(Pid);
  if (Node == InvalidId)
    Node = Controller.startAtLastEvent(Pid);
  if (Node == InvalidId)
    return "no events for process " + std::to_string(Pid) + "\n";
  Current = Node;
  return showNode(Node);
}

std::string DebugSession::cmdNode(std::istream &Args) {
  DynNodeId Node = InvalidId;
  Args >> Node;
  if (Node >= Controller.graph().numNodes())
    return "no such node\n";
  Current = Node;
  return showNode(Node);
}

std::string DebugSession::cmdBack() {
  if (Current == InvalidId)
    return "no current node; use 'where' first\n";
  for (const DynEdge &E : Controller.dependencesOf(Current)) {
    if (E.Kind != DynEdgeKind::Data && E.Kind != DynEdgeKind::CrossData)
      continue;
    if (Controller.graph().node(E.From).Kind == DynNodeKind::Entry)
      continue;
    Current = E.From;
    return showNode(Current);
  }
  return "no data dependence to follow\n";
}

std::string DebugSession::cmdFwd() {
  if (Current == InvalidId)
    return "no current node; use 'where' first\n";
  for (const DynEdge &E : Controller.influencesOf(Current)) {
    if (E.Kind != DynEdgeKind::Data && E.Kind != DynEdgeKind::CrossData)
      continue;
    Current = E.To;
    return showNode(Current);
  }
  return "no traced forward flow from here\n";
}

std::string DebugSession::cmdExpand(std::istream &Args) {
  DynNodeId Node = InvalidId;
  Args >> Node;
  DynNodeId Entry = Controller.expandCall(Node);
  if (Entry == InvalidId)
    return "node is not an unexpanded sub-graph node\n";
  return "expanded; callee detail begins at node " + std::to_string(Entry) +
         "\n" + showNode(Entry);
}

std::string DebugSession::cmdRaces() {
  auto Races = Controller.detectRaces();
  RaceDetector Detector(Controller.parallelGraph(), *Prog.Symbols);
  return Detector.summarize(Races, *Prog.Ast);
}

std::string DebugSession::cmdRestore(std::istream &Args) {
  uint32_t Pid = 0, Interval = 0;
  Args >> Pid >> Interval;
  if (Pid >= Controller.log().Procs.size() ||
      Interval >= Controller.logIndex().intervals(Pid).size())
    return "no such interval\n";
  RestoredState State = Controller.restoreGlobals(Pid, Interval);
  std::string Out;
  for (const VarInfo &Info : Prog.Symbols->Vars) {
    if (!Info.isGlobal() || Info.isArray())
      continue;
    int64_t Value = Info.isShared() ? State.Shared[Info.Offset]
                                    : State.PrivateGlobals[Info.Offset];
    Out += "  " + Info.Name + " = " + std::to_string(Value) + "\n";
  }
  return Out.empty() ? "(no scalar globals)\n" : Out;
}

std::string DebugSession::cmdWhatIf(std::istream &Args) {
  uint32_t Pid = 0, Interval = 0, Event = 0;
  std::string VarName;
  int64_t Value = 0;
  Args >> Pid >> Interval >> Event >> VarName >> Value;
  VarId Var = InvalidId;
  for (const VarInfo &Info : Prog.Symbols->Vars)
    if (Info.Name == VarName)
      Var = Info.Id;
  if (Var == InvalidId || Pid >= Controller.log().Procs.size() ||
      Interval >= Controller.logIndex().intervals(Pid).size())
    return "usage: whatif PID INTERVAL EVENT VAR VALUE\n";
  ReplayResult Res =
      Controller.whatIf(Pid, Interval, {{Event, Var, -1, Value}});
  std::string Out = "what-if run";
  if (Res.Diverged)
    Out += " (control flow diverged from the logged path)";
  Out += " printed:";
  for (const OutputRecord &O : Res.Output)
    Out += " " + std::to_string(O.Value);
  Out += "\n";
  return Out;
}

std::string DebugSession::cmdStats() {
  const ControllerStats &S = Controller.stats();
  ReplayServiceStats RS = Controller.replayService().stats();
  std::string Out =
      "replays " + std::to_string(S.Replays) + ", events traced " +
      std::to_string(S.EventsTraced) + ", trace bytes " +
      std::to_string(S.TraceBytes) + ", graph nodes " +
      std::to_string(Controller.graph().numNodes()) + "\n";
  Out += renderReplayServiceStats(RS);
  return Out;
}

std::string DebugSession::execute(const std::string &Line) {
  std::stringstream Args(Line);
  std::string Cmd;
  Args >> Cmd;
  if (Cmd.empty())
    return "";
  if (Cmd == "help")
    return R"(commands:
  where [pid]        start/refocus at the failure or last event of pid
  node N             show node N with its dependences
  back               follow the first data dependence backwards
  fwd                follow the first traced data flow forwards
  expand N           expand sub-graph node N (replays the nested interval)
  races              detect races on this execution instance (Def 6.4)
  restore PID I      globals restored at interval I of process PID (5.7)
  whatif PID I E VAR VALUE   replay interval I with VAR=VALUE at event E
  list               the program source
  graphdot [N]       dynamic graph as DOT (optionally sliced from node N)
  pardot             parallel dynamic graph as DOT
  stats              controller counters
  quit
)";
  if (Cmd == "where")
    return cmdWhere(Args);
  if (Cmd == "node")
    return cmdNode(Args);
  if (Cmd == "back")
    return cmdBack();
  if (Cmd == "fwd")
    return cmdFwd();
  if (Cmd == "expand")
    return cmdExpand(Args);
  if (Cmd == "races")
    return cmdRaces();
  if (Cmd == "restore")
    return cmdRestore(Args);
  if (Cmd == "whatif")
    return cmdWhatIf(Args);
  if (Cmd == "list") {
    AstPrinter Printer;
    return Printer.print(*Prog.Ast);
  }
  if (Cmd == "graphdot") {
    DynNodeId Root = InvalidId;
    Args >> Root;
    std::vector<DynNodeId> Roots;
    if (Root != InvalidId && Root < Controller.graph().numNodes())
      Roots.push_back(Root);
    return Controller.graph().dot(*Prog.Ast, Roots);
  }
  if (Cmd == "pardot")
    return Controller.parallelGraph().dot(*Prog.Ast);
  if (Cmd == "stats")
    return cmdStats();
  return "unknown command '" + Cmd + "' (try 'help')\n";
}
