//===- core/ReplayService.cpp ---------------------------------------------===//
//
// Part of PPD. See ReplayService.h.
//
//===----------------------------------------------------------------------===//

#include "core/ReplayService.h"

#include "vm/Jit.h"

#include <algorithm>
#include <cassert>

using namespace ppd;

namespace {

/// Accounted size of one cached replay: the trace itself plus the shadow
/// state vectors the controller inspects.
size_t replayBytes(const ReplayResult &R) {
  size_t Bytes = sizeof(ReplayResult) + R.Events.byteSize();
  Bytes += 8 * (R.Shared.size() + R.PrivateGlobals.size() +
                R.RootSlots.size());
  Bytes += sizeof(OutputRecord) * R.Output.size();
  Bytes += sizeof(ReplayMismatch) * R.PostlogMismatches.size();
  return Bytes;
}

} // namespace

uint64_t
ParallelReplayer::fingerprint(const std::vector<ReplayOverride> &Overrides) {
  uint64_t H = 0;
  for (const ReplayOverride &O : Overrides) {
    uint64_t Fields[4] = {O.AtEvent, O.Var, uint64_t(O.Index),
                          uint64_t(O.Value)};
    for (uint64_t F : Fields) {
      H ^= F + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    }
  }
  // Reserve 0 for the faithful (override-free) replay.
  return Overrides.empty() ? 0 : (H ? H : 1);
}

std::string ppd::renderReplayServiceStats(const ReplayServiceStats &Stats) {
  std::string Out;
  Out += "cache: hits " + std::to_string(Stats.Cache.Hits) + ", misses " +
         std::to_string(Stats.Cache.Misses) + ", entries " +
         std::to_string(Stats.Cache.Entries) + ", bytes " +
         std::to_string(Stats.Cache.Bytes) + ", evictions " +
         std::to_string(Stats.Cache.Evictions) + ", prefetches " +
         std::to_string(Stats.PrefetchesIssued) + "\n";
  Out += "pool: submitted " + std::to_string(Stats.Pool.Submitted) +
         ", executed " + std::to_string(Stats.Pool.Executed) + ", stolen " +
         std::to_string(Stats.Pool.Stolen) + ", inline " +
         std::to_string(Stats.Pool.InlineRuns) + "\n";
  Out += "jit: compiles " + std::to_string(Stats.JitCompiles) +
         ", compile_ms " + std::to_string(Stats.JitCompileNs / 1000000) +
         ", exec_ms " + std::to_string(Stats.JitExecNs / 1000000) +
         ", replays " + std::to_string(Stats.JitReplays) + ", bailouts " +
         std::to_string(Stats.JitBailouts) + "\n";
  if (Stats.HasBuffer)
    Out += "bufferpool: hits " + std::to_string(Stats.Buffer.Hits) +
           ", misses " + std::to_string(Stats.Buffer.Misses) +
           ", evictions " + std::to_string(Stats.Buffer.Evictions) +
           ", resident " + std::to_string(Stats.Buffer.BytesResident) +
           ", pinned " + std::to_string(Stats.Buffer.BytesPinned) +
           ", peak " + std::to_string(Stats.Buffer.PeakBytes) +
           ", budget " + std::to_string(Stats.Buffer.Budget) + "\n";
  return Out;
}

ParallelReplayer::ParallelReplayer(const CompiledProgram &Prog,
                                   const ExecutionLog &Log,
                                   const LogIndex &Index,
                                   ReplayServiceOptions Options)
    : Prog(Prog), Log(Log), Index(Index), Options(Options),
      Engine(Prog, this->Options.SharedJit) {
  assert(bool(this->Options.SharedCache) ==
             bool(this->Options.SharedFlights) &&
         "a shared cache needs a shared single-flight table (and vice "
         "versa) — they dedupe the same keyspace");
  if (this->Options.SharedCache) {
    Cache = this->Options.SharedCache;
    Flights = this->Options.SharedFlights;
  } else {
    Cache = std::make_shared<ReplayCache<ReplayResult>>(
        this->Options.CacheBytes, this->Options.CacheShards);
    Flights = std::make_shared<ReplayFlightTable>();
  }
  if (this->Options.SharedPool) {
    Pool = this->Options.SharedPool;
  } else {
    OwnedPool = std::make_unique<ThreadPool>(this->Options.Threads);
    Pool = OwnedPool.get();
  }
}

ParallelReplayer::~ParallelReplayer() { drain(); }

void ParallelReplayer::drain() {
  std::unique_lock<std::mutex> Lock(BackgroundMutex);
  BackgroundCv.wait(Lock, [this] { return BackgroundPending == 0; });
}

void ParallelReplayer::finishBackgroundTask() {
  std::lock_guard<std::mutex> Lock(BackgroundMutex);
  if (--BackgroundPending == 0)
    BackgroundCv.notify_all();
}

ParallelReplayer::ReplayPtr
ParallelReplayer::replayMiss(const ReplayKey &Key,
                             const std::vector<ReplayOverride> &Overrides) {
  // Single-flight: the first requester replays; concurrent requesters for
  // the same key share its future instead of redoing the work.
  std::promise<ReplayPtr> Promise;
  {
    std::unique_lock<std::mutex> Lock(Flights->Mutex);
    auto It = Flights->Pending.find(Key);
    if (It != Flights->Pending.end()) {
      std::shared_future<ReplayPtr> Future = It->second;
      Lock.unlock();
      return Future.get();
    }
    // No flight in progress — but a leader may have finished between our
    // caller's cache miss and this lock: it inserts into the cache before
    // erasing its flight, so re-checking the cache here closes the window
    // where we would redo its replay.
    if (ReplayPtr Cached = Cache->peek(Key))
      return Cached;
    Flights->Pending.emplace(Key, Promise.get_future().share());
  }

  assert(Key.Interval < Index.intervals(Key.Pid).size() &&
         "interval index out of range");
  ReplayOptions ROpts;
  ROpts.Overrides = Overrides;
  ROpts.Engine = Options.Engine;
  std::shared_ptr<const ReplayResult> Result;
  if (Options.Paged) {
    // Paged mode: fault the section in and pin it for exactly the span of
    // the interval re-execution; the pin releases before the result is
    // published, so cached hits hold no pool memory.
    BufferPool::Pin Pin =
        Options.Paged.Pool->pin(*Options.Paged.Store, Key.Pid);
    if (!Pin) {
      ReplayResult Failed;
      Failed.Ok = false;
      Failed.Error = "section decode failed (corrupt log bytes)";
      Result = std::make_shared<const ReplayResult>(std::move(Failed));
    } else {
      Result = std::make_shared<const ReplayResult>(
          Engine.replay(Pin.log(), Key.Pid,
                        Index.intervals(Key.Pid)[Key.Interval], ROpts));
    }
  } else {
    Result = std::make_shared<const ReplayResult>(Engine.replay(
        Log, Key.Pid, Index.intervals(Key.Pid)[Key.Interval], ROpts));
  }
  EngineReplays.fetch_add(1, std::memory_order_relaxed);
  EngineInstructions.fetch_add(Result->Instructions,
                               std::memory_order_relaxed);
  Cache->insert(Key, Result, replayBytes(*Result));

  Promise.set_value(Result);
  {
    std::lock_guard<std::mutex> Lock(Flights->Mutex);
    Flights->Pending.erase(Key);
  }
  return Result;
}

ParallelReplayer::ReplayPtr
ParallelReplayer::get(uint32_t Pid, uint32_t IntervalIdx,
                      const std::vector<ReplayOverride> &Overrides) {
  ReplayKey Key{Pid, IntervalIdx, fingerprint(Overrides)};
  if (ReplayPtr Cached = Cache->lookup(Key))
    return Cached;
  return replayMiss(Key, Overrides);
}

std::vector<ParallelReplayer::ReplayPtr>
ParallelReplayer::getMany(const std::vector<IntervalRef> &Requests) {
  std::vector<ReplayPtr> Results(Requests.size());
  if (Requests.empty())
    return Results;

  // Serial pool (or a single request): no coordination needed.
  if (Pool->numThreads() == 0 || Requests.size() == 1) {
    for (size_t I = 0; I != Requests.size(); ++I)
      Results[I] = get(Requests[I].first, Requests[I].second);
    return Results;
  }

  struct FanOut {
    std::mutex Mutex;
    std::condition_variable Cv;
    size_t Remaining;
  };
  auto State = std::make_shared<FanOut>();
  State->Remaining = Requests.size();

  for (size_t I = 0; I != Requests.size(); ++I) {
    Pool->submit([this, &Results, &Requests, State, I] {
      Results[I] = get(Requests[I].first, Requests[I].second);
      std::lock_guard<std::mutex> Lock(State->Mutex);
      if (--State->Remaining == 0)
        State->Cv.notify_all();
    });
  }

  // Help drain the queue rather than idling; the single-flight table
  // guarantees we never duplicate a replay already in progress.
  while (Pool->runOneTask())
    ;
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Cv.wait(Lock, [&] { return State->Remaining == 0; });
  return Results;
}

std::vector<ParallelReplayer::IntervalRef>
ParallelReplayer::transitiveIntervals(uint32_t Pid,
                                      uint32_t IntervalIdx) const {
  const std::vector<LogInterval> &Intervals = Index.intervals(Pid);
  std::vector<IntervalRef> Out;
  if (IntervalIdx >= Intervals.size())
    return Out;
  std::vector<bool> Seen(Intervals.size(), false);
  auto Add = [&](uint32_t Idx) {
    if (Idx < Intervals.size() && !Seen[Idx]) {
      Seen[Idx] = true;
      Out.push_back({Pid, Idx});
    }
  };

  // The interval itself, then the ancestor chain with each level's
  // preceding siblings (their postlogs produced the prelog's values).
  for (uint32_t Walk = IntervalIdx; Walk != InvalidId;
       Walk = Intervals[Walk].Parent) {
    Add(Walk);
    for (const LogInterval &Other : Intervals)
      if (Other.Parent == Intervals[Walk].Parent &&
          Other.PrelogRecord < Intervals[Walk].PrelogRecord)
        Add(Other.Index);
  }
  // Direct children: the sub-graph nodes an expand query opens.
  for (const LogInterval &Other : Intervals)
    if (Other.Parent == IntervalIdx)
      Add(Other.Index);
  return Out;
}

void ParallelReplayer::prefetchNeighbors(uint32_t Pid,
                                         uint32_t IntervalIdx) {
  if (!Options.Prefetch || Pool->numThreads() == 0)
    return;
  const std::vector<LogInterval> &Intervals = Index.intervals(Pid);
  if (IntervalIdx >= Intervals.size())
    return;
  const LogInterval &Interval = Intervals[IntervalIdx];

  std::vector<uint32_t> Targets;
  if (Interval.Parent != InvalidId)
    Targets.push_back(Interval.Parent);
  // Preceding sibling: same parent, greatest prelog before ours.
  const LogInterval *Sibling = nullptr;
  for (const LogInterval &Other : Intervals)
    if (Other.Parent == Interval.Parent &&
        Other.PrelogRecord < Interval.PrelogRecord &&
        (!Sibling || Other.PrelogRecord > Sibling->PrelogRecord))
      Sibling = &Other;
  if (Sibling)
    Targets.push_back(Sibling->Index);

  for (uint32_t Target : Targets) {
    {
      std::lock_guard<std::mutex> Lock(BackgroundMutex);
      ++BackgroundPending;
    }
    PrefetchesIssued.fetch_add(1, std::memory_order_relaxed);
    Pool->submit([this, Pid, Target] {
      get(Pid, Target);
      finishBackgroundTask();
    });
  }
}

ReplayServiceStats ParallelReplayer::stats() const {
  ReplayServiceStats Out;
  Out.Cache = Cache->stats();
  Out.Pool = Pool->stats();
  Out.EngineReplays = EngineReplays.load(std::memory_order_relaxed);
  Out.EngineInstructions =
      EngineInstructions.load(std::memory_order_relaxed);
  Out.PrefetchesIssued = PrefetchesIssued.load(std::memory_order_relaxed);
  if (Options.Paged) {
    Out.Buffer = Options.Paged.Pool->stats();
    Out.HasBuffer = true;
  }
  if (const JitProgram *Jit = Engine.jit()) {
    JitStats JS = Jit->stats();
    Out.JitCompiles = JS.Compiles;
    Out.JitCompileNs = JS.CompileNs;
    Out.JitExecNs = JS.ExecNs;
    Out.JitBailouts = JS.Bailouts;
    Out.JitReplays = JS.JittedReplays;
  }
  return Out;
}
