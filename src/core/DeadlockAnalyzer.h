//===- core/DeadlockAnalyzer.h - Deadlock cause analysis --------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The parallel dynamic graph can also help the user analyze the causes
/// of deadlocks" (§6). When the VM reports a deadlock, this analyzer
/// reconstructs, from the execution log, which process holds which
/// semaphore (acquires minus signals) and builds the wait-for graph over
/// the blocked processes; a cycle is reported as the deadlock's cause.
/// Channel waits are reported descriptively (a blocked sender/receiver has
/// no single "holder").
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CORE_DEADLOCKANALYZER_H
#define PPD_CORE_DEADLOCKANALYZER_H

#include "compiler/CompiledProgram.h"
#include "log/ExecutionLog.h"
#include "vm/Machine.h"

#include <string>
#include <vector>

namespace ppd {

struct DeadlockReport {
  struct Wait {
    uint32_t Pid = 0;
    ProcStatus Status = ProcStatus::BlockedSem;
    uint32_t Object = 0; ///< semaphore/channel id.
    /// Processes currently holding the semaphore (BlockedSem only).
    std::vector<uint32_t> Holders;
  };
  std::vector<Wait> Waits;
  /// Pids forming a wait-for cycle, if one exists (each waits on a
  /// semaphore held by the next).
  std::vector<uint32_t> Cycle;

  bool hasCycle() const { return !Cycle.empty(); }
  std::string str(const Program &P) const;
};

class DeadlockAnalyzer {
public:
  DeadlockAnalyzer(const CompiledProgram &Prog, const ExecutionLog &Log)
      : Prog(Prog), Log(Log) {}

  DeadlockReport analyze(const DeadlockInfo &Info) const;

private:
  const CompiledProgram &Prog;
  const ExecutionLog &Log;
};

} // namespace ppd

#endif // PPD_CORE_DEADLOCKANALYZER_H
