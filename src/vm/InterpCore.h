//===- vm/InterpCore.h - Pure evaluation kernels ----------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The side-effect-free evaluation kernels shared by every interpreter in
/// the system: the VM's legacy switch engine, its decoded fast path, and
/// the replay engine's emulation interpreter (legacy and decoded). The
/// paper's correctness story requires the execution phase and the
/// debugging phase to compute bit-identical values; routing comparisons,
/// builtins, and integer sqrt through one set of inline kernels makes
/// divergence structurally impossible (arithmetic already flows through
/// support/Arith.h for the same reason).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_VM_INTERPCORE_H
#define PPD_VM_INTERPCORE_H

#include "bytecode/Decoded.h"
#include "lang/Ast.h"
#include "support/Arith.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ppd {

/// Integer square root (floor), defined for nonnegative inputs.
inline int64_t interpSqrt(int64_t X) {
  assert(X >= 0 && "isqrt of negative value");
  int64_t R = int64_t(std::sqrt(double(X)));
  // Compare in uint64: sqrt's rounding can overshoot enough that R*R (or
  // (R+1)^2 near INT64_MAX) overflows int64.
  while (R > 0 && uint64_t(R) * uint64_t(R) > uint64_t(X))
    --R;
  while (uint64_t(R + 1) * uint64_t(R + 1) <= uint64_t(X))
    ++R;
  return R;
}

/// Evaluates one comparison; the result is the canonical 0/1 the stack
/// machine pushes.
inline int64_t evalCmp(CmpKind Kind, int64_t A, int64_t B) {
  switch (Kind) {
  case CmpKind::Eq:
    return A == B;
  case CmpKind::Ne:
    return A != B;
  case CmpKind::Lt:
    return A < B;
  case CmpKind::Le:
    return A <= B;
  case CmpKind::Gt:
    return A > B;
  case CmpKind::Ge:
    return A >= B;
  }
  return 0;
}

/// Applies builtin \p Kind to the operand stack (args already pushed).
/// Returns false for sqrt of a negative value — the operands are consumed
/// either way, matching both engines' historical behavior.
inline bool applyBuiltin(Builtin Kind, std::vector<int64_t> &Stack) {
  switch (Kind) {
  case Builtin::Sqrt: {
    assert(!Stack.empty() && "builtin operand missing");
    int64_t X = Stack.back();
    Stack.pop_back();
    if (X < 0)
      return false;
    Stack.push_back(interpSqrt(X));
    return true;
  }
  case Builtin::Abs: {
    assert(!Stack.empty() && "builtin operand missing");
    int64_t X = Stack.back();
    Stack.back() = X < 0 ? wrapNeg(X) : X;
    return true;
  }
  case Builtin::Min: {
    assert(Stack.size() >= 2 && "builtin operands missing");
    int64_t B = Stack.back();
    Stack.pop_back();
    Stack.back() = std::min(Stack.back(), B);
    return true;
  }
  case Builtin::Max: {
    assert(Stack.size() >= 2 && "builtin operands missing");
    int64_t B = Stack.back();
    Stack.pop_back();
    Stack.back() = std::max(Stack.back(), B);
    return true;
  }
  case Builtin::None:
    break;
  }
  assert(false && "unknown builtin");
  return true;
}

} // namespace ppd

#endif // PPD_VM_INTERPCORE_H
