//===- vm/Dispatch.h - Threaded / switch dispatch machinery -----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dispatch macros for the decoded interpreters (vm/Machine.cpp's
/// execution engine and core/Replay.cpp's emulation engine). Both engines
/// write each handler exactly once; these macros expand the body into
/// either classic Bell-style token-threaded dispatch (computed goto, GCC
/// and Clang) or a plain switch — selected by the PPD_COMPUTED_GOTO
/// feature macro, which the build exports as a CMake option so the
/// portable fallback stays continuously tested.
///
/// Usage inside an interpreter loop:
///
///   PPD_DISPATCH_TABLE();           // once, before the loop
///   for (;;) {
///     ... per-instruction prologue (budget, breakpoints) ...
///     PPD_DISPATCH(I.Opcode) {
///       PPD_OP(PushConst) { ...; continue; }   // continue = next instr
///       PPD_OP(SemP)      { ...; goto Exit; }  // goto to leave the loop
///       ...
///     }
///     PPD_END_DISPATCH();
///   }
///
/// Handlers must leave via `continue` (next instruction) or a `goto` out
/// of the loop — never by falling through, and never via `break` (which
/// would only leave the switch in fallback mode). PPD_OP labels stack, so
/// several opcodes can share one handler body. The dispatch-table order is
/// the DOp order, both generated from PPD_DECODED_OPCODES (OpcodeTable.h),
/// so a missing handler is a compile error in both modes.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_VM_DISPATCH_H
#define PPD_VM_DISPATCH_H

#include "bytecode/Decoded.h"

#ifndef PPD_COMPUTED_GOTO
#define PPD_COMPUTED_GOTO 1
#endif

#if PPD_COMPUTED_GOTO && (defined(__GNUC__) || defined(__clang__))
#define PPD_USE_COMPUTED_GOTO 1
#else
#define PPD_USE_COMPUTED_GOTO 0
#endif

#if PPD_USE_COMPUTED_GOTO

#define PPD_DISPATCH_TABLE_ENTRY(Name) &&PpdOp_##Name,
#define PPD_DISPATCH_TABLE()                                                 \
  static const void *const DispatchTable[ppd::NumDecodedOps] = {             \
      PPD_DECODED_OPCODES(PPD_DISPATCH_TABLE_ENTRY)}
#define PPD_DISPATCH(OpValue) goto *DispatchTable[size_t(OpValue)];
#define PPD_OP(Name) PpdOp_##Name:
#define PPD_END_DISPATCH() ((void)0)

#else

#define PPD_DISPATCH_TABLE() ((void)0)
#define PPD_DISPATCH(OpValue) switch (OpValue)
#define PPD_OP(Name) case ppd::DOp::Name:
#define PPD_END_DISPATCH() ((void)0)

#endif

#endif // PPD_VM_DISPATCH_H
