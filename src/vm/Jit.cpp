//===- vm/Jit.cpp - Copy-and-patch replay JIT -----------------------------===//
//
// Part of PPD. See Jit.h for the tier's contract.
//
// Compilation is per function: every slot of the DecodedChunk gets a
// stencil at a recorded native offset (so any pc is an entry point and a
// jump target), preceded by one entry thunk and one exit stub shared by
// the whole function. A forward depth analysis proves the operand-stack
// depth at every reachable slot first; functions where the depth cannot
// be proven (or that exceed the code budget) fail compilation permanently
// and replay decoded — fallback, never an error.
//
// Register plan (SysV, all callee-saved so helper calls preserve them):
//   rbx  operand-stack end pointer (one past top; top lives at [rbx-8])
//   r12  innermost frame's local slots
//   r13  the JitContext
//   r14  Instructions          r15  MaxInstructions
//
// Every slot that the decoded engine charges opens with the same budget
// prologue as runDecoded's loop header — charge-then-check, exiting with
// the instruction already counted — so step accounting is bit-identical.
// Fused superinstructions re-check the budget between their halves and
// fall through into the second half's own slot when it is exhausted,
// reproducing the decoded engine's split exactly (Decoded.h).
//
//===----------------------------------------------------------------------===//

#include "vm/Jit.h"

#include "compiler/CompiledProgram.h"
#include "lang/Ast.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <type_traits>

using namespace ppd;

static_assert(std::is_standard_layout_v<JitContext>,
              "the emitter addresses JitContext by offsetof");
// The access-buffer stencils store TraceAccess fields by hard-coded
// offset: Var (u32) at 0, Value at 8, Index at 16, 24-byte stride.
static_assert(offsetof(TraceAccess, Var) == 0 &&
                  offsetof(TraceAccess, Value) == 8 &&
                  offsetof(TraceAccess, Index) == 16 &&
                  sizeof(TraceAccess) == 24,
              "the emitter stores TraceAccess fields by fixed offset");

#if PPD_JIT_ENABLED

namespace {

//===----------------------------------------------------------------------===//
// A minimal x86-64 byte emitter
//===----------------------------------------------------------------------===//

enum Reg {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition codes (the tttn field of jcc/setcc).
enum Cond {
  CC_B = 0x2,
  CC_AE = 0x3,
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_S = 0x8,
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

class Asm {
public:
  std::vector<uint8_t> Buf;
  bool Ok = true;

  size_t size() const { return Buf.size(); }
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int K = 0; K != 4; ++K)
      Buf.push_back(uint8_t(V >> (8 * K)));
  }
  void i32(int32_t V) { u32(uint32_t(V)); }
  void u64(uint64_t V) {
    for (int K = 0; K != 8; ++K)
      Buf.push_back(uint8_t(V >> (8 * K)));
  }

  void rex(bool W, int R, int X, int B) {
    uint8_t V = 0x40 | (W << 3) | ((R >> 3) << 2) | ((X >> 3) << 1) | (B >> 3);
    if (V != 0x40 || W)
      u8(V);
  }
  void modrm(int Mod, int R, int M) {
    u8(uint8_t((Mod << 6) | ((R & 7) << 3) | (M & 7)));
  }

  /// ModRM+SIB+disp for [Base + Disp].
  void mem(int R, int Base, int32_t Disp) {
    bool NeedSib = (Base & 7) == 4; // rsp/r12
    int Mod = (Disp == 0 && (Base & 7) != 5) ? 0
              : (Disp >= -128 && Disp <= 127) ? 1
                                              : 2;
    modrm(Mod, R, NeedSib ? 4 : Base);
    if (NeedSib)
      u8(uint8_t(0x24 | ((Base & 7)))); // scale 0, index none, base
    if (Mod == 1)
      u8(uint8_t(int8_t(Disp)));
    else if (Mod == 2)
      i32(Disp);
  }

  /// ModRM+SIB+disp for [Base + Index*8 + Disp].
  void memIdx(int R, int Base, int Index, int32_t Disp) {
    int Mod = (Disp == 0 && (Base & 7) != 5) ? 0
              : (Disp >= -128 && Disp <= 127) ? 1
                                              : 2;
    modrm(Mod, R, 4);
    u8(uint8_t((3 << 6) | ((Index & 7) << 3) | (Base & 7)));
    if (Mod == 1)
      u8(uint8_t(int8_t(Disp)));
    else if (Mod == 2)
      i32(Disp);
  }

  // mov dst, src
  void movRR(int Dst, int Src) {
    rex(1, Dst, 0, Src);
    u8(0x8B);
    modrm(3, Dst, Src);
  }
  // mov dst, [base+disp]
  void movRM(int Dst, int Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    u8(0x8B);
    mem(Dst, Base, Disp);
  }
  // mov [base+disp], src
  void movMR(int Base, int32_t Disp, int Src) {
    rex(1, Src, 0, Base);
    u8(0x89);
    mem(Src, Base, Disp);
  }
  // mov dst, [base+idx*8+disp]
  void movRMIdx(int Dst, int Base, int Idx, int32_t Disp) {
    rex(1, Dst, Idx, Base);
    u8(0x8B);
    memIdx(Dst, Base, Idx, Disp);
  }
  // mov [base+idx*8+disp], src
  void movMRIdx(int Base, int Idx, int32_t Disp, int Src) {
    rex(1, Src, Idx, Base);
    u8(0x89);
    memIdx(Src, Base, Idx, Disp);
  }
  // movabs dst, imm64
  void movRI64(int Dst, uint64_t Imm) {
    rex(1, 0, 0, Dst);
    u8(uint8_t(0xB8 | (Dst & 7)));
    u64(Imm);
  }
  // mov dst, imm32 (sign-extended to 64)
  void movRIs32(int Dst, int32_t Imm) {
    rex(1, 0, 0, Dst);
    u8(0xC7);
    modrm(3, 0, Dst);
    i32(Imm);
  }
  // mov dst32, imm32 (zero-extends)
  void movRI32z(int Dst, uint32_t Imm) {
    if (Dst >= 8)
      u8(0x41);
    u8(uint8_t(0xB8 | (Dst & 7)));
    u32(Imm);
  }
  // mov qword [base+disp], imm32 (sign-extended)
  void movMIs32(int Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, 0, Base);
    u8(0xC7);
    mem(0, Base, Disp);
    i32(Imm);
  }
  // mov dword [base+disp], imm32 (32-bit store)
  void movM32I(int Base, int32_t Disp, uint32_t Imm) {
    rex(0, 0, 0, Base);
    u8(0xC7);
    mem(0, Base, Disp);
    u32(Imm);
  }
  void addRI8(int Reg, int8_t Imm) {
    rex(1, 0, 0, Reg);
    u8(0x83);
    modrm(3, 0, Reg);
    u8(uint8_t(Imm));
  }
  void subRI8(int Reg, int8_t Imm) {
    rex(1, 0, 0, Reg);
    u8(0x83);
    modrm(3, 5, Reg);
    u8(uint8_t(Imm));
  }
  // cmp a, b
  void cmpRR(int A, int B) {
    rex(1, B, 0, A);
    u8(0x39);
    modrm(3, B, A);
  }
  void cmpRI32(int Reg, int32_t Imm) {
    rex(1, 0, 0, Reg);
    u8(0x81);
    modrm(3, 7, Reg);
    i32(Imm);
  }
  void cmpRI8(int Reg, int8_t Imm) {
    rex(1, 0, 0, Reg);
    u8(0x83);
    modrm(3, 7, Reg);
    u8(uint8_t(Imm));
  }
  // cmp a, [base+disp]
  void cmpRM(int A, int Base, int32_t Disp) {
    rex(1, A, 0, Base);
    u8(0x3B);
    mem(A, Base, Disp);
  }
  void testRR(int A, int B) {
    rex(1, B, 0, A);
    u8(0x85);
    modrm(3, B, A);
  }
  void testEaxEax() {
    u8(0x85);
    u8(0xC0);
  }
  void incR(int Reg) {
    rex(1, 0, 0, Reg);
    u8(0xFF);
    modrm(3, 0, Reg);
  }
  // add/sub [base+disp], src
  void addMR(int Base, int32_t Disp, int Src) {
    rex(1, Src, 0, Base);
    u8(0x01);
    mem(Src, Base, Disp);
  }
  void subMR(int Base, int32_t Disp, int Src) {
    rex(1, Src, 0, Base);
    u8(0x29);
    mem(Src, Base, Disp);
  }
  // imul dst, [base+disp]
  void imulRM(int Dst, int Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    u8(0x0F);
    u8(0xAF);
    mem(Dst, Base, Disp);
  }
  // add/sub qword [base+disp], imm32 (sign-extended)
  void addMIs32(int Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, 0, Base);
    u8(0x81);
    mem(0, Base, Disp);
    i32(Imm);
  }
  void subMIs32(int Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, 0, Base);
    u8(0x81);
    mem(5, Base, Disp);
    i32(Imm);
  }
  // imul dst, src, imm32
  void imulRRI32(int Dst, int Src, int32_t Imm) {
    rex(1, Dst, 0, Src);
    u8(0x69);
    modrm(3, Dst, Src);
    i32(Imm);
  }
  // neg qword [base+disp]
  void negM(int Base, int32_t Disp) {
    rex(1, 0, 0, Base);
    u8(0xF7);
    mem(3, Base, Disp);
  }
  void cqo() {
    u8(0x48);
    u8(0x99);
  }
  void idivR(int Reg) {
    rex(1, 0, 0, Reg);
    u8(0xF7);
    modrm(3, 7, Reg);
  }
  void xorEaxEax() {
    u8(0x31);
    u8(0xC0);
  }
  void setccAl(int CC) {
    u8(0x0F);
    u8(uint8_t(0x90 | CC));
    u8(0xC0);
  }
  void movzxEaxAl() {
    u8(0x0F);
    u8(0xB6);
    u8(0xC0);
  }
  void leaRM(int Dst, int Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    u8(0x8D);
    mem(Dst, Base, Disp);
  }
  void repStosq() {
    u8(0xF3);
    u8(0x48);
    u8(0xAB);
  }
  /// jcc rel32 with a placeholder; returns the rel32's position.
  size_t jccRel32(int CC) {
    u8(0x0F);
    u8(uint8_t(0x80 | CC));
    size_t Pos = size();
    i32(0);
    return Pos;
  }
  size_t jmpRel32() {
    u8(0xE9);
    size_t Pos = size();
    i32(0);
    return Pos;
  }
  void jmpR(int Reg) {
    if (Reg >= 8)
      u8(0x41);
    u8(0xFF);
    modrm(3, 4, Reg);
  }
  // call qword [base+disp]
  void callM(int Base, int32_t Disp) {
    if (Base >= 8)
      u8(0x41);
    u8(0xFF);
    mem(2, Base, Disp);
  }
  void pushR(int Reg) {
    if (Reg >= 8)
      u8(0x41);
    u8(uint8_t(0x50 | (Reg & 7)));
  }
  void popR(int Reg) {
    if (Reg >= 8)
      u8(0x41);
    u8(uint8_t(0x58 | (Reg & 7)));
  }
  void ret() { u8(0xC3); }

  void patchAt(size_t Pos, int32_t V) {
    for (int K = 0; K != 4; ++K)
      Buf[Pos + K] = uint8_t(uint32_t(V) >> (8 * K));
  }
  /// Points the rel32 at \p Pos to the current position.
  void patchHere(size_t Pos) { patchAt(Pos, int32_t(size() - (Pos + 4))); }
  /// Points the rel32 at \p Pos to buffer offset \p Target.
  void patchTo(size_t Pos, size_t Target) {
    patchAt(Pos, int32_t(int64_t(Target) - int64_t(Pos + 4)));
  }
};

int ccOfCmp(CmpKind Kind) {
  switch (Kind) {
  case CmpKind::Eq:
    return CC_E;
  case CmpKind::Ne:
    return CC_NE;
  case CmpKind::Lt:
    return CC_L;
  case CmpKind::Le:
    return CC_LE;
  case CmpKind::Gt:
    return CC_G;
  case CmpKind::Ge:
    return CC_GE;
  }
  return CC_E;
}

constexpr int32_t off(size_t O) { return int32_t(O); }
#define CTX_OFF(Field) off(offsetof(JitContext, Field))

//===----------------------------------------------------------------------===//
// Per-function compiler: depth analysis + stencil emission
//===----------------------------------------------------------------------===//

class FuncCompiler {
public:
  FuncCompiler(const CompiledProgram &Prog, const CompiledFunction &F)
      : Prog(Prog), F(F), Ins(F.EmuDecoded.data()), N(F.EmuDecoded.size()) {}

  /// Emits the whole function into Code's byte buffer; false = fall back.
  bool compile(JitCode &Code, std::vector<uint8_t> &Buf);

private:
  bool analyze();
  bool effect(const DecodedInstr &I, uint32_t Ip, int &Pops, int &Pushes,
              uint32_t *Succs, int &NS) const;

  void emitThunks();
  void emitSlot(const DecodedInstr &I, uint32_t Ip);

  // Building blocks.
  void emitExit(JitExitKind Kind, uint32_t Ip);
  void emitPrologue(uint32_t Ip);
  void opPush(int Reg);
  void opPop(int Reg);
  /// Post-store/load trace helper call: value in rax, index in rcx when
  /// IdxInRcx (else -1).
  void emitAccessCheck(int32_t TopOff, int32_t LimitOff, uint32_t Ip);
  void emitAccessStore(int32_t TopOff, int32_t Var, bool IdxInRcx);
  struct Bounds {
    size_t J1, J2;
  };
  Bounds emitBoundsCheck(int64_t Limit);
  void finishBoundsCheck(Bounds B, uint32_t Ip);
  /// A*8 as an addressing displacement; clears Ok when it cannot encode.
  int32_t dispMul8(int32_t A);

  // One emitter per decoded opcode, required by the X-macro switch.
  void emitPushConst(const DecodedInstr &I, uint32_t Ip);
  void emitPop(const DecodedInstr &I, uint32_t Ip);
  void emitToBool(const DecodedInstr &I, uint32_t Ip);
  void emitLoadLocal(const DecodedInstr &I, uint32_t Ip);
  void emitStoreLocal(const DecodedInstr &I, uint32_t Ip);
  void emitLoadLocalElem(const DecodedInstr &I, uint32_t Ip);
  void emitStoreLocalElem(const DecodedInstr &I, uint32_t Ip);
  void emitZeroLocal(const DecodedInstr &I, uint32_t Ip);
  void emitLoadShared(const DecodedInstr &I, uint32_t Ip);
  void emitStoreShared(const DecodedInstr &I, uint32_t Ip);
  void emitLoadSharedElem(const DecodedInstr &I, uint32_t Ip);
  void emitStoreSharedElem(const DecodedInstr &I, uint32_t Ip);
  void emitLoadPriv(const DecodedInstr &I, uint32_t Ip);
  void emitStorePriv(const DecodedInstr &I, uint32_t Ip);
  void emitLoadPrivElem(const DecodedInstr &I, uint32_t Ip);
  void emitStorePrivElem(const DecodedInstr &I, uint32_t Ip);
  void emitAdd(const DecodedInstr &I, uint32_t Ip);
  void emitSub(const DecodedInstr &I, uint32_t Ip);
  void emitMul(const DecodedInstr &I, uint32_t Ip);
  void emitDiv(const DecodedInstr &I, uint32_t Ip);
  void emitMod(const DecodedInstr &I, uint32_t Ip);
  void emitNeg(const DecodedInstr &I, uint32_t Ip);
  void emitNot(const DecodedInstr &I, uint32_t Ip);
  void emitCmp(const DecodedInstr &I, uint32_t Ip);
  void emitCmpEq(const DecodedInstr &I, uint32_t Ip) { emitCmp(I, Ip); }
  void emitCmpNe(const DecodedInstr &I, uint32_t Ip) { emitCmp(I, Ip); }
  void emitCmpLt(const DecodedInstr &I, uint32_t Ip) { emitCmp(I, Ip); }
  void emitCmpLe(const DecodedInstr &I, uint32_t Ip) { emitCmp(I, Ip); }
  void emitCmpGt(const DecodedInstr &I, uint32_t Ip) { emitCmp(I, Ip); }
  void emitCmpGe(const DecodedInstr &I, uint32_t Ip) { emitCmp(I, Ip); }
  void emitJump(const DecodedInstr &I, uint32_t Ip);
  void emitJumpIfFalse(const DecodedInstr &I, uint32_t Ip);
  void emitJumpIfTrue(const DecodedInstr &I, uint32_t Ip);
  void emitJumpIfCmp(const DecodedInstr &I, uint32_t Ip);
  void emitStoreLocalImm(const DecodedInstr &I, uint32_t Ip);
  void emitPrintVal(const DecodedInstr &I, uint32_t Ip);
  void emitTraceStmt(const DecodedInstr &I, uint32_t Ip);
  // Side-exit opcodes: everything that touches the log cursor or the
  // frame stack leaves native code; the replay engine executes the slot
  // with the interpreters' shared helpers and re-enters.
  void emitInterp(const DecodedInstr &, uint32_t Ip) {
    emitExit(JitExitKind::Interp, Ip);
  }
  void emitCall(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitRet(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitCallBuiltin(const DecodedInstr &I, uint32_t Ip) {
    emitInterp(I, Ip);
  }
  void emitSemP(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitSemV(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitSendCh(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitRecvCh(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitSpawnProc(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitInputVal(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitPrelog(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitPostlog(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitUnitLog(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }
  void emitTraceCallBegin(const DecodedInstr &I, uint32_t Ip) {
    emitInterp(I, Ip);
  }
  void emitTraceCallEnd(const DecodedInstr &I, uint32_t Ip) {
    emitInterp(I, Ip);
  }
  void emitHalt(const DecodedInstr &I, uint32_t Ip) { emitInterp(I, Ip); }

  const CompiledProgram &Prog;
  const CompiledFunction &F;
  const DecodedInstr *Ins;
  uint32_t N;

  Asm A;
  std::vector<int32_t> DepthAt;
  std::vector<int32_t> NativeOff;
  uint32_t MaxDepth = 0;
  size_t ExitStubOff = 0;
  /// Pending rel32s into other slots, patched once every offset is known.
  std::vector<std::pair<size_t, uint32_t>> Fixups;
  bool Ok = true;
};

int32_t FuncCompiler::dispMul8(int32_t V) {
  if (V < 0 || int64_t(V) * 8 > INT32_MAX) {
    Ok = false;
    return 0;
  }
  return V * 8;
}

void FuncCompiler::opPush(int Reg) {
  A.movMR(RBX, 0, Reg);
  A.addRI8(RBX, 8);
}

void FuncCompiler::opPop(int Reg) {
  A.subRI8(RBX, 8);
  A.movRM(Reg, RBX, 0);
}

void FuncCompiler::emitExit(JitExitKind Kind, uint32_t Ip) {
  A.movRI64(RAX, (uint64_t(uint32_t(Kind)) << 32) | Ip);
  size_t Pos = A.jmpRel32();
  A.patchTo(Pos, ExitStubOff);
}

// The decoded loop's header, verbatim: charge the instruction, then exit
// if the budget was already exhausted (so the count ends one past Max,
// exactly like `Result.Instructions++ >= Options.MaxInstructions`).
void FuncCompiler::emitPrologue(uint32_t Ip) {
  A.cmpRR(R14, R15);
  size_t Jb = A.jccRel32(CC_B);
  A.incR(R14);
  emitExit(JitExitKind::Budget, Ip);
  A.patchHere(Jb);
  A.incR(R14);
}

// Buffered access tracing: emitAccessCheck runs BEFORE the budget
// prologue — a full buffer takes an uncharged Interp exit, so the
// interpreter executes (and traces) the instruction with identical
// accounting. It leaves the cursor in rdx; the code between check and
// store (prologue, stack ops, bounds checks) must preserve rdx.
// emitAccessStore appends {Var, rax, rcx-or--1} and bumps the cursor —
// three stores instead of a helper call, the decoded engine's
// traceRead/traceWrite deferred to the next flush point.
void FuncCompiler::emitAccessCheck(int32_t TopOff, int32_t LimitOff,
                                   uint32_t Ip) {
  A.movRM(RDX, R13, TopOff);
  A.cmpRM(RDX, R13, LimitOff);
  size_t JOk = A.jccRel32(CC_B);
  emitExit(JitExitKind::Interp, Ip);
  A.patchHere(JOk);
}

void FuncCompiler::emitAccessStore(int32_t TopOff, int32_t Var,
                                   bool IdxInRcx) {
  A.movM32I(RDX, 0, uint32_t(Var)); // TraceAccess::Var
  A.movMR(RDX, 8, RAX);             // ::Value
  if (IdxInRcx)
    A.movMR(RDX, 16, RCX); // ::Index
  else
    A.movMIs32(RDX, 16, -1);
  A.addRI8(RDX, 24);
  A.movMR(R13, TopOff, RDX);
}

FuncCompiler::Bounds FuncCompiler::emitBoundsCheck(int64_t Limit) {
  A.testRR(RCX, RCX);
  size_t J1 = A.jccRel32(CC_S);
  if (Limit >= INT32_MIN && Limit <= INT32_MAX) {
    A.cmpRI32(RCX, int32_t(Limit));
  } else {
    // rsi, not rdx: the access-buffer cursor is live in rdx here.
    A.movRI64(RSI, uint64_t(Limit));
    A.cmpRR(RCX, RSI);
  }
  size_t J2 = A.jccRel32(CC_GE);
  return {J1, J2};
}

void FuncCompiler::finishBoundsCheck(Bounds B, uint32_t Ip) {
  size_t Over = A.jmpRel32();
  A.patchHere(B.J1);
  A.patchHere(B.J2);
  emitExit(JitExitKind::FailIndexOOB, Ip);
  A.patchHere(Over);
}

// PushConst fuses with an immediately following pure binop into one
// immediate ALU op on the live top-of-stack slot (the dominant pattern of
// compute-heavy expression chains — it halves their op count). The budget
// is re-checked between the halves like emitJumpIfCmp: on expiry the
// const is pushed and control falls through into the binop's own slot,
// whose prologue then reports the expiry, so accounting stays
// bit-identical to the decoded engine executing two instructions. The
// second slot keeps its standalone stencil, so jumps to it and side-exit
// re-entry at Ip + 1 still work.
void FuncCompiler::emitPushConst(const DecodedInstr &I, uint32_t Ip) {
  DOp Next = Ip + 1 < N ? Ins[Ip + 1].Opcode : DOp::Halt;
  bool ImmFits = I.Imm >= INT32_MIN && I.Imm <= INT32_MAX;
  bool Fuse = ImmFits && (Next == DOp::Add || Next == DOp::Sub ||
                          Next == DOp::Mul ||
                          // Div/Mod only with a divisor that can neither
                          // fail nor take the wrap path.
                          ((Next == DOp::Div || Next == DOp::Mod) &&
                           I.Imm != 0 && I.Imm != -1));
  emitPrologue(Ip);
  if (Fuse) {
    A.cmpRR(R14, R15);
    size_t JExh = A.jccRel32(CC_AE);
    A.incR(R14);
    switch (Next) {
    case DOp::Add:
      A.addMIs32(RBX, -8, int32_t(I.Imm));
      break;
    case DOp::Sub:
      A.subMIs32(RBX, -8, int32_t(I.Imm));
      break;
    case DOp::Mul:
      A.movRM(RAX, RBX, -8);
      A.imulRRI32(RAX, RAX, int32_t(I.Imm));
      A.movMR(RBX, -8, RAX);
      break;
    case DOp::Div:
    case DOp::Mod:
      A.movRIs32(RCX, int32_t(I.Imm));
      A.movRM(RAX, RBX, -8);
      A.cqo();
      A.idivR(RCX);
      A.movMR(RBX, -8, Next == DOp::Div ? RAX : RDX);
      break;
    default:
      break;
    }
    Fixups.emplace_back(A.jmpRel32(), Ip + 2);
    A.patchHere(JExh);
  }
  A.movRI64(RAX, uint64_t(I.Imm));
  opPush(RAX);
}

void FuncCompiler::emitPop(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  A.subRI8(RBX, 8);
}

void FuncCompiler::emitToBool(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  A.movRM(RAX, RBX, -8);
  A.testRR(RAX, RAX);
  A.setccAl(CC_NE);
  A.movzxEaxAl();
  A.movMR(RBX, -8, RAX);
}

void FuncCompiler::emitLoadLocal(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(ReadTop), CTX_OFF(ReadLimit), Ip);
  emitPrologue(Ip);
  A.movRM(RAX, R12, dispMul8(I.A));
  opPush(RAX);
  emitAccessStore(CTX_OFF(ReadTop), I.B, false);
}

void FuncCompiler::emitStoreLocal(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  opPop(RAX);
  A.movMR(R12, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, false);
}

void FuncCompiler::emitLoadLocalElem(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(ReadTop), CTX_OFF(ReadLimit), Ip);
  emitPrologue(Ip);
  opPop(RCX);
  Bounds B = emitBoundsCheck(I.Imm);
  A.movRMIdx(RAX, R12, RCX, dispMul8(I.A));
  opPush(RAX);
  emitAccessStore(CTX_OFF(ReadTop), I.B, true);
  finishBoundsCheck(B, Ip);
}

void FuncCompiler::emitStoreLocalElem(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  opPop(RAX); // value first, then index — the decoded pop order
  opPop(RCX);
  Bounds B = emitBoundsCheck(I.Imm);
  A.movMRIdx(R12, RCX, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, true);
  finishBoundsCheck(B, Ip);
}

void FuncCompiler::emitZeroLocal(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  A.leaRM(RDI, R12, dispMul8(I.A));
  A.movRI64(RCX, uint64_t(I.Imm));
  A.xorEaxEax();
  A.repStosq(); // preserves rdx, the access cursor
  emitAccessStore(CTX_OFF(WriteTop), I.B, false); // rax is the 0 written
}

void FuncCompiler::emitLoadShared(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(ReadTop), CTX_OFF(ReadLimit), Ip);
  emitPrologue(Ip);
  A.movRM(RSI, R13, CTX_OFF(Shared));
  A.movRM(RAX, RSI, dispMul8(I.A));
  opPush(RAX);
  emitAccessStore(CTX_OFF(ReadTop), I.B, false);
}

void FuncCompiler::emitStoreShared(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  opPop(RAX);
  A.movRM(RSI, R13, CTX_OFF(Shared));
  A.movMR(RSI, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, false);
}

void FuncCompiler::emitLoadSharedElem(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(ReadTop), CTX_OFF(ReadLimit), Ip);
  emitPrologue(Ip);
  opPop(RCX);
  Bounds B = emitBoundsCheck(I.Imm);
  A.movRM(RSI, R13, CTX_OFF(Shared));
  A.movRMIdx(RAX, RSI, RCX, dispMul8(I.A));
  opPush(RAX);
  emitAccessStore(CTX_OFF(ReadTop), I.B, true);
  finishBoundsCheck(B, Ip);
}

void FuncCompiler::emitStoreSharedElem(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  opPop(RAX);
  opPop(RCX);
  Bounds B = emitBoundsCheck(I.Imm);
  A.movRM(RSI, R13, CTX_OFF(Shared));
  A.movMRIdx(RSI, RCX, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, true);
  finishBoundsCheck(B, Ip);
}

void FuncCompiler::emitLoadPriv(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(ReadTop), CTX_OFF(ReadLimit), Ip);
  emitPrologue(Ip);
  A.movRM(RSI, R13, CTX_OFF(Priv));
  A.movRM(RAX, RSI, dispMul8(I.A));
  opPush(RAX);
  emitAccessStore(CTX_OFF(ReadTop), I.B, false);
}

void FuncCompiler::emitStorePriv(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  opPop(RAX);
  A.movRM(RSI, R13, CTX_OFF(Priv));
  A.movMR(RSI, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, false);
}

void FuncCompiler::emitLoadPrivElem(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(ReadTop), CTX_OFF(ReadLimit), Ip);
  emitPrologue(Ip);
  opPop(RCX);
  Bounds B = emitBoundsCheck(I.Imm);
  A.movRM(RSI, R13, CTX_OFF(Priv));
  A.movRMIdx(RAX, RSI, RCX, dispMul8(I.A));
  opPush(RAX);
  emitAccessStore(CTX_OFF(ReadTop), I.B, true);
  finishBoundsCheck(B, Ip);
}

void FuncCompiler::emitStorePrivElem(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  opPop(RAX);
  opPop(RCX);
  Bounds B = emitBoundsCheck(I.Imm);
  A.movRM(RSI, R13, CTX_OFF(Priv));
  A.movMRIdx(RSI, RCX, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, true);
  finishBoundsCheck(B, Ip);
}

void FuncCompiler::emitAdd(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);
  A.addMR(RBX, -8, RAX); // two's-complement wrap == wrapAdd
}

void FuncCompiler::emitSub(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);
  A.subMR(RBX, -8, RAX);
}

void FuncCompiler::emitMul(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);
  A.imulRM(RAX, RBX, -8);
  A.movMR(RBX, -8, RAX);
}

// Div/Mod: the B==-1 cases take the wrapDiv/wrapMod special paths inline
// (INT64_MIN / -1 traps on x86; the helpers define it as wrapNeg / 0).
void FuncCompiler::emitDiv(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RCX);            // B
  A.movRM(RAX, RBX, -8); // A
  A.testRR(RCX, RCX);
  size_t JFail = A.jccRel32(CC_E);
  A.cmpRI8(RCX, -1);
  size_t JNeg = A.jccRel32(CC_E);
  A.cqo();
  A.idivR(RCX);
  A.movMR(RBX, -8, RAX);
  size_t Over1 = A.jmpRel32();
  A.patchHere(JNeg);
  A.negM(RBX, -8);
  size_t Over2 = A.jmpRel32();
  A.patchHere(JFail);
  emitExit(JitExitKind::FailDiv0, Ip);
  A.patchHere(Over1);
  A.patchAt(Over2, int32_t(A.size() - (Over2 + 4)));
}

void FuncCompiler::emitMod(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RCX);
  A.movRM(RAX, RBX, -8);
  A.testRR(RCX, RCX);
  size_t JFail = A.jccRel32(CC_E);
  A.cmpRI8(RCX, -1);
  size_t JNeg = A.jccRel32(CC_E);
  A.cqo();
  A.idivR(RCX);
  A.movMR(RBX, -8, RDX); // remainder
  size_t Over1 = A.jmpRel32();
  A.patchHere(JNeg);
  A.movMIs32(RBX, -8, 0); // wrapMod(A, -1) == 0
  size_t Over2 = A.jmpRel32();
  A.patchHere(JFail);
  emitExit(JitExitKind::FailMod0, Ip);
  A.patchHere(Over1);
  A.patchAt(Over2, int32_t(A.size() - (Over2 + 4)));
}

void FuncCompiler::emitNeg(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  A.negM(RBX, -8);
}

void FuncCompiler::emitNot(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  A.movRM(RAX, RBX, -8);
  A.testRR(RAX, RAX);
  A.setccAl(CC_E);
  A.movzxEaxAl();
  A.movMR(RBX, -8, RAX);
}

void FuncCompiler::emitCmp(const DecodedInstr &I, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);            // B
  A.movRM(RCX, RBX, -8); // A
  A.cmpRR(RCX, RAX);
  A.setccAl(ccOfCmp(CmpKind(I.Sub)));
  A.movzxEaxAl();
  A.movMR(RBX, -8, RAX);
}

void FuncCompiler::emitJump(const DecodedInstr &I, uint32_t Ip) {
  emitPrologue(Ip);
  Fixups.emplace_back(A.jmpRel32(), uint32_t(I.A));
}

void FuncCompiler::emitJumpIfFalse(const DecodedInstr &I, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);
  // The branch helper records IsPredicate/BranchTaken on the open event,
  // unconditionally like the decoded handler. The condition survives the
  // call at [rbx] — the slot it was just popped from.
  A.movRR(RSI, RAX);
  A.movRM(RDI, R13, CTX_OFF(Host));
  A.callM(R13, CTX_OFF(TraceBranch));
  A.movRM(RAX, RBX, 0);
  A.testRR(RAX, RAX);
  Fixups.emplace_back(A.jccRel32(CC_E), uint32_t(I.A));
}

void FuncCompiler::emitJumpIfTrue(const DecodedInstr &I, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);
  A.movRR(RSI, RAX);
  A.movRM(RDI, R13, CTX_OFF(Host));
  A.callM(R13, CTX_OFF(TraceBranch));
  A.movRM(RAX, RBX, 0);
  A.testRR(RAX, RAX);
  Fixups.emplace_back(A.jccRel32(CC_NE), uint32_t(I.A));
}

// Fused Cmp + JumpIf: charge the compare; the branch half re-checks the
// budget and, when exhausted, pushes the compare result and falls through
// into the branch's own slot — whose prologue then reports the expiry —
// reproducing the decoded engine's superinstruction split bit for bit.
void FuncCompiler::emitJumpIfCmp(const DecodedInstr &I, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX); // B
  opPop(RCX); // A
  A.cmpRR(RCX, RAX);
  A.setccAl(ccOfCmp(CmpKind(I.Sub >> 1)));
  A.movzxEaxAl(); // rax = Cond
  A.cmpRR(R14, R15);
  size_t JExh = A.jccRel32(CC_AE);
  A.incR(R14);
  A.movMR(RBX, 0, RAX); // stash Cond in the free slot above the stack
  A.movRR(RSI, RAX);
  A.movRM(RDI, R13, CTX_OFF(Host));
  A.callM(R13, CTX_OFF(TraceBranch));
  A.movRM(RAX, RBX, 0);
  A.testRR(RAX, RAX);
  Fixups.emplace_back(A.jccRel32((I.Sub & 1) ? CC_NE : CC_E), uint32_t(I.A));
  Fixups.emplace_back(A.jmpRel32(), Ip + 2);
  A.patchHere(JExh);
  opPush(RAX); // leave Cond for the branch slot, fall through into it
}

// Fused PushConst + StoreLocal, split the same way.
void FuncCompiler::emitStoreLocalImm(const DecodedInstr &I, uint32_t Ip) {
  emitAccessCheck(CTX_OFF(WriteTop), CTX_OFF(WriteLimit), Ip);
  emitPrologue(Ip);
  A.cmpRR(R14, R15);
  size_t JExh = A.jccRel32(CC_AE);
  A.incR(R14);
  A.movRI64(RAX, uint64_t(I.Imm));
  A.movMR(R12, dispMul8(I.A), RAX);
  emitAccessStore(CTX_OFF(WriteTop), I.B, false);
  Fixups.emplace_back(A.jmpRel32(), Ip + 2);
  A.patchHere(JExh);
  A.movRI64(RAX, uint64_t(I.Imm));
  opPush(RAX);
}

void FuncCompiler::emitPrintVal(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  opPop(RAX);
  A.movRR(RSI, RAX);
  A.movRM(RDI, R13, CTX_OFF(Host));
  A.movRI32z(RDX, Ip); // the helper resolves the slot's statement id
  A.callM(R13, CTX_OFF(Print));
}

void FuncCompiler::emitTraceStmt(const DecodedInstr &, uint32_t Ip) {
  emitPrologue(Ip);
  A.movRM(RDI, R13, CTX_OFF(Host));
  A.movRI32z(RSI, Ip);
  A.callM(R13, CTX_OFF(TraceStmt));
  A.testEaxEax();
  size_t JCont = A.jccRel32(CC_E);
  emitExit(JitExitKind::Stop, Ip);
  A.patchHere(JCont);
}

void FuncCompiler::emitSlot(const DecodedInstr &I, uint32_t Ip) {
  // Generated from the opcode table: a new opcode without an emitter is a
  // compile error here, so the JIT cannot silently drift from the
  // interpreters' instruction set.
  switch (I.Opcode) {
#define PPD_EMIT_CASE(Name)                                                    \
  case DOp::Name:                                                              \
    emit##Name(I, Ip);                                                         \
    break;
    PPD_DECODED_OPCODES(PPD_EMIT_CASE)
#undef PPD_EMIT_CASE
  }
}

void FuncCompiler::emitThunks() {
  // Entry thunk at offset 0: uint64_t(*)(JitContext *rdi, const void *rsi).
  A.pushR(RBP);
  A.movRR(RBP, RSP);
  A.pushR(RBX);
  A.pushR(R12);
  A.pushR(R13);
  A.pushR(R14);
  A.pushR(R15);
  A.subRI8(RSP, 8); // 16-byte alignment for helper calls
  A.movRR(R13, RDI);
  A.movRM(RBX, R13, CTX_OFF(StackTop));
  A.movRM(R12, R13, CTX_OFF(Slots));
  A.movRM(R14, R13, CTX_OFF(Instructions));
  A.movRM(R15, R13, CTX_OFF(MaxInstructions));
  A.jmpR(RSI);

  // Exit stub: every stencil reaches it with the packed (kind, pc) in rax.
  ExitStubOff = A.size();
  A.movMR(R13, CTX_OFF(StackTop), RBX);
  A.movMR(R13, CTX_OFF(Instructions), R14);
  A.addRI8(RSP, 8);
  A.popR(R15);
  A.popR(R14);
  A.popR(R13);
  A.popR(R12);
  A.popR(RBX);
  A.popR(RBP);
  A.ret();
}

bool FuncCompiler::effect(const DecodedInstr &I, uint32_t Ip, int &Pops,
                          int &Pushes, uint32_t *Succs, int &NS) const {
  NS = 0;
  auto Next = [&](uint32_t S) { Succs[NS++] = S; };
  switch (I.Opcode) {
  case DOp::PushConst:
  case DOp::LoadLocal:
  case DOp::LoadShared:
  case DOp::LoadPriv:
  case DOp::RecvCh:
  case DOp::InputVal:
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::Pop:
  case DOp::StoreLocal:
  case DOp::StoreShared:
  case DOp::StorePriv:
  case DOp::SendCh:
  case DOp::PrintVal:
    Pops = 1;
    Next(Ip + 1);
    break;
  case DOp::ToBool:
  case DOp::Neg:
  case DOp::Not:
  case DOp::LoadLocalElem:
  case DOp::LoadSharedElem:
  case DOp::LoadPrivElem:
    Pops = 1;
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::StoreLocalElem:
  case DOp::StoreSharedElem:
  case DOp::StorePrivElem:
    Pops = 2;
    Next(Ip + 1);
    break;
  case DOp::ZeroLocal:
    if (I.Imm < 0)
      return false;
    Next(Ip + 1);
    break;
  case DOp::Add:
  case DOp::Sub:
  case DOp::Mul:
  case DOp::Div:
  case DOp::Mod:
  case DOp::CmpEq:
  case DOp::CmpNe:
  case DOp::CmpLt:
  case DOp::CmpLe:
  case DOp::CmpGt:
  case DOp::CmpGe:
    Pops = 2;
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::Jump:
    Next(uint32_t(I.A));
    break;
  case DOp::JumpIfFalse:
  case DOp::JumpIfTrue:
    Pops = 1;
    Next(Ip + 1);
    Next(uint32_t(I.A));
    break;
  case DOp::JumpIfCmp:
    // Analyzed as its first half (the compare); the following slot is the
    // still-individually-decoded branch, which propagates to the real
    // successors — exactly the depths the fused stencil's fast path jumps
    // with. Validate the pairing the decoder guarantees.
    if (Ip + 1 >= N ||
        (Ins[Ip + 1].Opcode != DOp::JumpIfFalse &&
         Ins[Ip + 1].Opcode != DOp::JumpIfTrue) ||
        Ins[Ip + 1].A != I.A)
      return false;
    Pops = 2;
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::StoreLocalImm:
    if (Ip + 1 >= N || Ins[Ip + 1].Opcode != DOp::StoreLocal ||
        Ins[Ip + 1].A != I.A)
      return false;
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::Call:
    if (I.B < 0)
      return false;
    Pops = I.B;
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::CallBuiltin:
    switch (Builtin(I.A)) {
    case Builtin::Sqrt:
    case Builtin::Abs:
      Pops = 1;
      break;
    case Builtin::Min:
    case Builtin::Max:
      Pops = 2;
      break;
    case Builtin::None:
      return false;
    }
    Pushes = 1;
    Next(Ip + 1);
    break;
  case DOp::SpawnProc:
    if (I.B < 0)
      return false;
    Pops = I.B;
    Next(Ip + 1);
    break;
  case DOp::SemP:
  case DOp::SemV:
  case DOp::Prelog:
  case DOp::UnitLog:
  case DOp::TraceStmt:
  case DOp::TraceCallBegin:
  case DOp::TraceCallEnd:
    Next(Ip + 1);
    break;
  case DOp::Postlog:
    // Normally terminal, but a what-if divergence continues past it.
    Next(Ip + 1);
    break;
  case DOp::Ret:
  case DOp::Halt:
    break; // terminal
  }
  return true;
}

bool FuncCompiler::analyze() {
  if (N == 0)
    return false;
  DepthAt.assign(N, -1);
  std::vector<uint32_t> Work;
  auto Seed = [&](uint32_t Ip) {
    if (Ip >= N)
      return false;
    if (DepthAt[Ip] == -1) {
      DepthAt[Ip] = 0;
      Work.push_back(Ip);
    }
    return DepthAt[Ip] == 0;
  };
  // Entry points: the function head (doCall) and every e-block entry of
  // this function (interval replay starts there with an empty stack).
  if (!Seed(0))
    return false;
  for (const EBlockInfo &EB : Prog.EBlocks)
    if (EB.Func == F.Index && !Seed(EB.EmuEntryPc))
      return false;

  while (!Work.empty()) {
    uint32_t Ip = Work.back();
    Work.pop_back();
    int32_t D = DepthAt[Ip];
    int Pops = 0, Pushes = 0, NS = 0;
    uint32_t Succs[2];
    if (!effect(Ins[Ip], Ip, Pops, Pushes, Succs, NS))
      return false;
    if (D < Pops)
      return false;
    int32_t DN = D - Pops + Pushes;
    MaxDepth = std::max(MaxDepth, uint32_t(std::max(D, DN)));
    for (int K = 0; K != NS; ++K) {
      uint32_t S = Succs[K];
      if (S >= N)
        return false;
      if (DepthAt[S] == -1) {
        DepthAt[S] = DN;
        Work.push_back(S);
      } else if (DepthAt[S] != DN) {
        return false; // conflicting depths: not a static stack machine?
      }
    }
  }
  return true;
}

bool FuncCompiler::compile(JitCode &Code, std::vector<uint8_t> &Buf) {
  if (!analyze())
    return false;

  emitThunks();
  NativeOff.assign(N, -1);
  for (uint32_t Ip = 0; Ip != N; ++Ip) {
    NativeOff[Ip] = int32_t(A.size());
    if (DepthAt[Ip] < 0) {
      // Unreachable in the analysis: keep the slot enterable but punt it
      // straight back to the interpreter.
      emitExit(JitExitKind::Interp, Ip);
      continue;
    }
    emitSlot(Ins[Ip], Ip);
  }
  for (auto &[Pos, Target] : Fixups) {
    if (Target >= N)
      return false;
    A.patchTo(Pos, size_t(NativeOff[Target]));
  }
  if (!A.Ok || !Ok)
    return false;

  Code.NativeOff = std::move(NativeOff);
  Code.DepthAt = std::move(DepthAt);
  Code.MaxStackDepth = MaxDepth;
  Buf = std::move(A.Buf);
  return true;
}

} // namespace

#endif // PPD_JIT_ENABLED

//===----------------------------------------------------------------------===//
// JitCode / JitProgram
//===----------------------------------------------------------------------===//

JitExit JitCode::enter(JitContext &Ctx, uint32_t Ip) const {
#if PPD_JIT_ENABLED
  using Fn = uint64_t (*)(JitContext *, const void *);
  Fn Entry = reinterpret_cast<Fn>(reinterpret_cast<void *>(Block->Data));
  uint64_t Packed = Entry(&Ctx, Block->Data + NativeOff[Ip]);
  return {JitExitKind(uint32_t(Packed >> 32)), uint32_t(Packed)};
#else
  (void)Ctx;
  (void)Ip;
  return {};
#endif
}

JitProgram::JitProgram(const CompiledProgram &Prog, const JitOptions &Options)
    : Prog(Prog), Options(Options), Arena(Options.CodeBudgetBytes),
      Funcs(Prog.Funcs.size()), Hotness(Prog.EBlocks.size()) {}

JitProgram::~JitProgram() = default;

std::shared_ptr<JitProgram> JitProgram::create(const CompiledProgram &Prog,
                                               const JitOptions &Options) {
#if PPD_JIT_ENABLED
  if (!ExecMemArena::supported())
    return nullptr;
  // The stencils mirror the decoded streams; a program without usable ones
  // (hand-assembled tests) has no JIT tier, like it has no decoded tier.
  for (const CompiledFunction &F : Prog.Funcs)
    if (F.EmuDecoded.size() != F.Emu.size())
      return nullptr;
  return std::shared_ptr<JitProgram>(new JitProgram(Prog, Options));
#else
  (void)Prog;
  (void)Options;
  return nullptr;
#endif
}

bool JitProgram::shouldTier(uint32_t EBlockId) {
  if (EBlockId >= Hotness.size())
    return false;
  std::atomic<uint32_t> &H = Hotness[EBlockId];
  uint32_t Count = H.load(std::memory_order_relaxed);
  if (Count < UINT32_MAX)
    H.fetch_add(1, std::memory_order_relaxed);
  return Count + 1 >= Options.HotThreshold;
}

const JitCode *JitProgram::getOrCompile(uint32_t Func) {
#if PPD_JIT_ENABLED
  if (Func >= Funcs.size())
    return nullptr;
  FuncEntry &E = Funcs[Func];
  if (const JitCode *C = E.Code.load(std::memory_order_acquire))
    return C;
  if (E.Failed.load(std::memory_order_relaxed))
    return nullptr;

  std::lock_guard<std::mutex> Lock(CompileMutex);
  if (const JitCode *C = E.Code.load(std::memory_order_acquire))
    return C;
  if (E.Failed.load(std::memory_order_relaxed))
    return nullptr;

  auto T0 = std::chrono::steady_clock::now();
  auto Code = std::make_unique<JitCode>();
  std::vector<uint8_t> Buf;
  bool CompiledOk = FuncCompiler(Prog, Prog.func(Func)).compile(*Code, Buf);
  if (CompiledOk) {
    Code->Block = Arena.allocate(Buf.size());
    if (Code->Block) {
      std::memcpy(Code->Block->Data, Buf.data(), Buf.size());
      CompiledOk = Arena.makeExecutable(*Code->Block);
      if (!CompiledOk)
        Arena.release(Code->Block);
    } else {
      CompiledOk = false; // over the code budget: decoded tier forever
    }
  }
  CompileNs.fetch_add(
      uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - T0)
                   .count()),
      std::memory_order_relaxed);

  if (!CompiledOk) {
    CompileFailures.fetch_add(1, std::memory_order_relaxed);
    E.Failed.store(true, std::memory_order_release);
    return nullptr;
  }
  Compiles.fetch_add(1, std::memory_order_relaxed);
  const JitCode *Raw = Code.get();
  Owned.push_back(std::move(Code));
  E.Code.store(Raw, std::memory_order_release);
  return Raw;
#else
  (void)Func;
  return nullptr;
#endif
}

JitStats JitProgram::stats() const {
  JitStats S;
  S.Compiles = Compiles.load(std::memory_order_relaxed);
  S.CompileFailures = CompileFailures.load(std::memory_order_relaxed);
  S.CompileNs = CompileNs.load(std::memory_order_relaxed);
  S.ExecNs = ExecNs.load(std::memory_order_relaxed);
  S.Bailouts = Bailouts.load(std::memory_order_relaxed);
  S.JittedReplays = JittedReplays.load(std::memory_order_relaxed);
  return S;
}

void JitProgram::noteExec(uint64_t Ns, uint64_t ExitCount,
                          bool EnteredNative) {
  ExecNs.fetch_add(Ns, std::memory_order_relaxed);
  Bailouts.fetch_add(ExitCount, std::memory_order_relaxed);
  if (EnteredNative)
    JittedReplays.fetch_add(1, std::memory_order_relaxed);
}
