//===- vm/Jit.h - Copy-and-patch replay JIT ---------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay JIT tier (DESIGN.md §11). Hot e-block regions of the
/// emulation package compile to straight-line native x86-64: every slot of
/// a function's DecodedChunk gets a per-opcode stencil emitted at a known
/// native offset, so jump targets patch directly and a re-entry after a
/// side-exit lands on any pc. The emitter set is generated from the same
/// OpcodeTable.h X-macro as both interpreters — a new opcode that lacks a
/// stencil is a compile error here, not a silent drift.
///
/// Side-exit contract: native code handles the pure stack/arithmetic/
/// memory/branch ops inline (calling tiny trace helpers through
/// JitContext where the decoded engine would append to the open event) and
/// exits to the interpreter for everything that touches the log cursor or
/// the frame stack — sync records, prelog/postlog/unit logs, calls,
/// returns, builtins, I/O — plus quantum (budget) expiry and runtime
/// failures. The exit reports (kind, pc); the replay engine performs the
/// operation with the exact same shared helpers the decoded engine uses
/// and re-enters native code at the new pc. Instruction accounting is
/// carried in a register and synced at every exit, so step counts are
/// bit-identical to the decoded engine — which stays on as the always-on
/// differential oracle (tests/jit_test.cpp, the fuzz oracle matrix).
///
/// Tier-up: compilation is per function, deferred until an e-block of that
/// function has replayed HotThreshold times (the first, cold replay runs
/// decoded; cache-driven re-executions amortize the compile). A function
/// whose stack depths cannot be proven statically, or that would exceed
/// the code budget, marks itself failed and its e-blocks replay decoded
/// forever — fallback is always transparent, never an error.
///
/// PPD_JIT=OFF builds and non-x86-64 hosts compile the backend out:
/// JitProgram::create returns null and every caller falls back to the
/// decoded tier.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_VM_JIT_H
#define PPD_VM_JIT_H

#include "support/ExecMem.h"
#include "trace/TraceEvent.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#ifndef PPD_JIT
#define PPD_JIT 1
#endif

#if PPD_JIT && defined(__x86_64__) && PPD_EXECMEM_SUPPORTED
#define PPD_JIT_ENABLED 1
#else
#define PPD_JIT_ENABLED 0
#endif

namespace ppd {

class CompiledProgram;

/// Why native code handed control back to the replay engine.
enum class JitExitKind : uint32_t {
  /// The pc needs an interpreter step (sync, log, call, builtin, I/O).
  Interp = 0,
  /// The instruction budget (quantum) expired; the budget check already
  /// charged the failing instruction, exactly like the decoded prologue.
  Budget,
  /// A trace-statement helper saw the Stop marker / end condition.
  Stop,
  /// Runtime failures detected inline; the engine reports them with the
  /// failing slot's statement id.
  FailIndexOOB,
  FailDiv0,
  FailMod0,
};

struct JitExit {
  JitExitKind Kind = JitExitKind::Interp;
  /// The pc the exit refers to: the instruction to execute next (Interp),
  /// or the instruction that failed / exhausted the budget.
  uint32_t Ip = 0;
};

/// The register file native code runs against. Standard-layout; the
/// emitter addresses fields by offsetof, the replay engine fills them in
/// before entry and reads them back after exit.
struct JitContext {
  /// One past the live top of the operand stack (grows up). The engine
  /// pre-reserves the function's proven maximum depth, so native pushes
  /// never reallocate.
  int64_t *StackTop = nullptr;
  /// Innermost frame's local slots.
  int64_t *Slots = nullptr;
  int64_t *Shared = nullptr;
  int64_t *Priv = nullptr;
  /// Instruction accounting, live in a register while native code runs.
  uint64_t Instructions = 0;
  uint64_t MaxInstructions = 0;
  /// Opaque host (the Replayer) passed to every helper.
  void *Host = nullptr;
  /// Access-trace bump buffers: native code records each variable read/
  /// write as three inline stores plus a cursor bump instead of a helper
  /// call; the engine flushes the buffered accesses into the open trace
  /// event at every helper call and side exit, preserving the decoded
  /// engine's event content and order exactly. Stencils check for space
  /// *before* charging the instruction and take an uncharged Interp exit
  /// when a buffer is full, so the interpreter replays that instruction
  /// (and traces it directly) with identical accounting.
  TraceAccess *ReadTop = nullptr;
  TraceAccess *ReadLimit = nullptr;
  TraceAccess *WriteTop = nullptr;
  TraceAccess *WriteLimit = nullptr;
  /// Returns nonzero when replay must stop (Stop marker / end-of-log).
  int (*TraceStmt)(void *Host, uint32_t Pc) = nullptr;
  void (*TraceBranch)(void *Host, int64_t Cond) = nullptr;
  void (*Print)(void *Host, int64_t Value, uint32_t Pc) = nullptr;
};

/// One function's compiled code: native offsets per decoded slot plus the
/// static stack depths the entry protocol checks.
class JitCode {
public:
  /// Enters native code at decoded pc \p Ip. The context must be fully
  /// populated; returns the side exit that ended the native run.
  JitExit enter(JitContext &Ctx, uint32_t Ip) const;

  /// Native offset of each decoded slot; -1 where no stencil was emitted
  /// (the entry check routes those pcs to the interpreter).
  std::vector<int32_t> NativeOff;
  /// Proven operand-stack depth at each slot; -1 = unreachable/unknown.
  std::vector<int32_t> DepthAt;
  /// Maximum depth any emitted stencil can reach (reserve this much).
  uint32_t MaxStackDepth = 0;

  ExecMemArena::Block *Block = nullptr;
};

struct JitOptions {
  /// E-block replay count at which its function compiles. 2 = first
  /// (cold) replay runs decoded, cache-driven re-executions run native.
  uint32_t HotThreshold = 2;
  size_t CodeBudgetBytes = ExecMemArena::DefaultBudget;
};

struct JitStats {
  uint64_t Compiles = 0;
  uint64_t CompileFailures = 0;
  uint64_t CompileNs = 0;
  uint64_t ExecNs = 0;
  /// Side exits taken to the interpreter (Interp kind only).
  uint64_t Bailouts = 0;
  /// Replays that entered native code at least once.
  uint64_t JittedReplays = 0;
};

/// Program-wide JIT state: per-function compiled code (published
/// lock-free), per-e-block hotness counters, the code arena, counters.
/// Shared by every ReplayEngine of a program (server sessions share one
/// via SessionRegistry), so hotness and compiles aggregate per program.
class JitProgram {
public:
  /// Null when the backend is compiled out, the host is not x86-64, or
  /// the program lacks usable decoded emulation streams — callers fall
  /// back to the decoded tier on null.
  static std::shared_ptr<JitProgram> create(const CompiledProgram &Prog,
                                            const JitOptions &Options = {});

  ~JitProgram();

  /// Bumps the e-block's replay counter; true once it is hot enough that
  /// this replay should use native code.
  bool shouldTier(uint32_t EBlockId);

  /// The function's compiled code, compiling on first demand. Null when
  /// compilation failed (unsupported shape / code budget) — permanently,
  /// so callers stop asking.
  const JitCode *getOrCompile(uint32_t Func);

  JitStats stats() const;
  /// Accounts one replay that ran through the JIT tier; JittedReplays only
  /// counts it when native code was actually entered (a replay whose every
  /// compile failed runs fully interpreted and does not count).
  void noteExec(uint64_t Ns, uint64_t Bailouts, bool EnteredNative);

  const JitOptions &options() const { return Options; }

private:
  JitProgram(const CompiledProgram &Prog, const JitOptions &Options);

  const CompiledProgram &Prog;
  JitOptions Options;
  ExecMemArena Arena;

  struct FuncEntry {
    std::atomic<const JitCode *> Code{nullptr};
    std::atomic<bool> Failed{false};
  };
  std::vector<FuncEntry> Funcs;
  std::vector<std::unique_ptr<JitCode>> Owned;
  std::vector<std::atomic<uint32_t>> Hotness;
  std::mutex CompileMutex;

  mutable std::atomic<uint64_t> Compiles{0};
  mutable std::atomic<uint64_t> CompileFailures{0};
  mutable std::atomic<uint64_t> CompileNs{0};
  mutable std::atomic<uint64_t> ExecNs{0};
  mutable std::atomic<uint64_t> Bailouts{0};
  mutable std::atomic<uint64_t> JittedReplays{0};
};

} // namespace ppd

#endif // PPD_VM_JIT_H
