//===- vm/Machine.cpp -----------------------------------------------------===//
//
// Part of PPD. See Machine.h.
//
// Two interpreters live here. The decoded fast path (runSlice) is a
// mode-specialized, token-threaded engine over the pre-decoded instruction
// stream; the legacy engine (step) executes the raw Chunk one instruction
// at a time. They share every cold operation (the do* helpers) and every
// pure kernel (vm/InterpCore.h), and the fast path counts steps, checks
// breakpoints, and splits superinstructions so that schedules, sync
// sequence numbers, and log bytes are bit-identical between the two —
// tests/interp_test.cpp holds them to that.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/Arith.h"
#include "vm/Dispatch.h"
#include "vm/InterpCore.h"

#include <algorithm>
#include <cassert>

using namespace ppd;

const char *ppd::runtimeErrorName(RuntimeErrorKind Kind) {
  switch (Kind) {
  case RuntimeErrorKind::None:
    return "none";
  case RuntimeErrorKind::DivideByZero:
    return "divide by zero";
  case RuntimeErrorKind::ModuloByZero:
    return "modulo by zero";
  case RuntimeErrorKind::IndexOutOfBounds:
    return "array index out of bounds";
  case RuntimeErrorKind::NegativeSqrt:
    return "sqrt of a negative value";
  case RuntimeErrorKind::InputExhausted:
    return "input exhausted";
  case RuntimeErrorKind::StackOverflow:
    return "call stack overflow";
  }
  return "?";
}

std::string RuntimeError::str() const {
  std::string Out = "process ";
  Out += std::to_string(Pid);
  Out += ": ";
  Out += runtimeErrorName(Kind);
  if (Stmt != InvalidId)
    Out += " at s" + std::to_string(Stmt);
  return Out;
}

Machine::Machine(const CompiledProgram &Prog, MachineOptions Options)
    : Prog(Prog), Options(std::move(Options)), SchedRng(this->Options.Seed) {
  // The fast path needs a decoded stream mirroring every chunk slot for
  // slot; hand-assembled CompiledPrograms may not carry one.
  DecodedOk = this->Options.UseDecoded;
  for (const CompiledFunction &F : Prog.Funcs)
    if (F.ObjectDecoded.size() != F.Object.size() ||
        F.EmuDecoded.size() != F.Emu.size())
      DecodedOk = false;

  BreakSet.insert(this->Options.Breakpoints.begin(),
                  this->Options.Breakpoints.end());
  // Shared memory with initial values.
  Shared.assign(Prog.Symbols->SharedMemorySize, 0);
  for (const VarInfo &Info : Prog.Symbols->Vars)
    if (Info.Kind == VarKind::SharedGlobal && !Info.isArray())
      Shared[Info.Offset] = Info.Init;

  for (int64_t Init : Prog.SemInit) {
    Semaphore S;
    S.Count = Init;
    Sems.push_back(std::move(S));
  }
  for (int64_t Capacity : Prog.ChanCapacity) {
    Channel C;
    C.Capacity = Capacity;
    Chans.push_back(std::move(C));
  }

  spawnProcess(Prog.MainIndex, {}, NoPartner);
}

const Chunk &Machine::chunkOf(const Process &P) const {
  const CompiledFunction &F = Prog.func(P.Frames.back().Func);
  return tracing() ? F.Emu : F.Object;
}

uint32_t Machine::spawnProcess(uint32_t Func, std::vector<int64_t> Args,
                               uint64_t ParentSpawnSeq) {
  uint32_t Pid = uint32_t(Procs.size());
  Procs.emplace_back();
  Process &P = Procs.back();
  P.Pid = Pid;

  P.PrivateGlobals.assign(Prog.Symbols->PrivateGlobalSize, 0);
  for (const VarInfo &Info : Prog.Symbols->Vars)
    if (Info.Kind == VarKind::PrivateGlobal && !Info.isArray())
      P.PrivateGlobals[Info.Offset] = Info.Init;

  // The edge sets only ever hold shared-variable indices: size them to the
  // shared segment once so the hot insert path never reallocates.
  P.EdgeReads.reserveFor(Prog.Symbols->NumSharedVars);
  P.EdgeWrites.reserveFor(Prog.Symbols->NumSharedVars);

  if (Pid < Options.ProcessInputs.size())
    P.Inputs.assign(Options.ProcessInputs[Pid].begin(),
                    Options.ProcessInputs[Pid].end());

  Log.Procs.emplace_back();
  Log.Procs.back().Pid = Pid;
  Log.Procs.back().RootFunc = Func;
  Log.Procs.back().Args = Args;
  if (logging())
    Log.Procs.back().Records.reserve(64);
  Traces.emplace_back();

  pushFrame(P, Func, std::move(Args), /*ReturnPc=*/0);

  if (logging()) {
    uint64_t Seq;
    emitSync(P, SyncKind::ProcStart, Func, InvalidId, Seq, ParentSpawnSeq);
  }
  return Pid;
}

void Machine::pushFrame(Process &P, uint32_t Func, std::vector<int64_t> Args,
                        uint32_t ReturnPc) {
  const CompiledFunction &F = Prog.func(Func);
  Frame Fr;
  Fr.Func = Func;
  Fr.ReturnPc = ReturnPc;
  Fr.StackBase = uint32_t(P.Stack.size());
  Fr.SlotBase = uint32_t(P.SlotArena.size());
  Fr.SlotCount = F.FrameSize;
  // resize() value-initializes the new slots; capacity freed by returns is
  // reused, so steady-state call/return does not allocate.
  P.SlotArena.resize(Fr.SlotBase + F.FrameSize, 0);
  assert(Args.size() == F.NumParams && "arity checked by sema");
  std::copy(Args.begin(), Args.end(), P.SlotArena.begin() + Fr.SlotBase);
  P.Frames.push_back(Fr);
  P.Pc = 0;
}

std::vector<int64_t> Machine::popArgs(Process &P, uint32_t Argc) {
  assert(P.Stack.size() >= Argc && "operand stack underflow");
  std::vector<int64_t> Args(P.Stack.end() - Argc, P.Stack.end());
  P.Stack.resize(P.Stack.size() - Argc);
  return Args;
}

void Machine::fail(Process &P, RuntimeErrorKind Kind, StmtId Stmt) {
  P.Status = ProcStatus::Failed;
  P.Error = {Kind, P.Pid, Stmt};
}

//===----------------------------------------------------------------------===//
// Logging helpers
//===----------------------------------------------------------------------===//

LogRecord &Machine::appendRecord(Process &P, LogRecordKind Kind) {
  ProcessLog &PL = Log.Procs[P.Pid];
  LogRecord &R = PL.Records.emplace_back();
  R.Kind = Kind;
  if (Kind == LogRecordKind::Prelog)
    ++PL.PrelogCount;
  return R;
}

void Machine::captureVars(Process &P, const std::vector<VarId> &Vars,
                          LogRecord &Record) {
  Record.Vars.reserve(Record.Vars.size() + Vars.size());
  for (VarId Var : Vars) {
    const VarInfo &Info = Prog.Symbols->var(Var);
    VarValue Value;
    Value.Var = Var;
    uint32_t Count = Info.slotCount();
    const int64_t *Base = nullptr;
    switch (Info.Kind) {
    case VarKind::SharedGlobal:
      Base = &Shared[Info.Offset];
      break;
    case VarKind::PrivateGlobal:
      Base = &P.PrivateGlobals[Info.Offset];
      break;
    case VarKind::Param:
    case VarKind::Local:
      // USED/DEFINED sets only name variables of the function the e-block
      // lives in, so the top frame is the right one.
      Base = P.topSlots() + Info.Offset;
      break;
    }
    Value.Values.assign(Base, Base + Count);
    Record.Vars.push_back(std::move(Value));
  }
}

void Machine::emitSync(Process &P, SyncKind Kind, uint32_t Object,
                       StmtId Stmt, uint64_t &SeqOut, uint64_t Partner,
                       int64_t Value) {
  SeqOut = NextSyncSeq++;
  if (!logging())
    return;
  LogRecord &R = appendRecord(P, LogRecordKind::SyncEvent);
  R.Sync = Kind;
  R.Id = Object;
  R.Stmt = Stmt;
  R.Seq = SeqOut;
  R.PartnerSeq = Partner;
  R.Value = Value;
  // The internal edge ending at this synchronization node (Def 6.2).
  R.ReadSet.reserve(P.EdgeReads.size());
  P.EdgeReads.forEach([&R](unsigned S) { R.ReadSet.push_back(S); });
  R.WriteSet.reserve(P.EdgeWrites.size());
  P.EdgeWrites.forEach([&R](unsigned S) { R.WriteSet.push_back(S); });
  P.EdgeReads.clear();
  P.EdgeWrites.clear();
}

//===----------------------------------------------------------------------===//
// Tracing helpers (FullTrace mode)
//===----------------------------------------------------------------------===//

TraceEvent *Machine::openEventOf(Process &P) {
  if (!tracing())
    return nullptr;
  uint32_t Idx = P.Frames.back().OpenEvent;
  if (Idx == InvalidId)
    return nullptr;
  return &Traces[P.Pid].Events[Idx];
}

void Machine::traceRead(Process &P, VarId Var, int64_t Value, int64_t Index) {
  if (TraceEvent *E = openEventOf(P))
    E->Reads.push_back({Var, Value, Index});
}

void Machine::traceWrite(Process &P, VarId Var, int64_t Value,
                         int64_t Index) {
  if (TraceEvent *E = openEventOf(P))
    E->Writes.push_back({Var, Value, Index});
}

//===----------------------------------------------------------------------===//
// Cold operations shared by both interpreters
//===----------------------------------------------------------------------===//

bool Machine::doSemP(Process &P, uint32_t Sem, StmtId Stmt) {
  Semaphore &S = Sems[Sem];
  if (S.Count > 0) {
    uint64_t Partner = NoPartner;
    if (S.PendingVEdge && S.PendingVPid != P.Pid)
      Partner = S.PendingVSeq;
    S.PendingVEdge = false;
    --S.Count;
    uint64_t Seq;
    emitSync(P, SyncKind::SemAcquire, Sem, Stmt, Seq, Partner);
    return true;
  }
  S.PendingVEdge = false;
  S.Waiters.push_back(P.Pid);
  P.Status = ProcStatus::BlockedSem;
  P.WaitObject = Sem;
  return false;
}

void Machine::doSemV(Process &P, uint32_t Sem, StmtId Stmt) {
  Semaphore &S = Sems[Sem];
  uint64_t VSeq;
  emitSync(P, SyncKind::SemSignal, Sem, Stmt, VSeq);
  if (!S.Waiters.empty()) {
    // Direct handoff: the V unblocks a blocked P (§6.2.1 rule 1).
    uint32_t WaiterPid = S.Waiters.front();
    S.Waiters.pop_front();
    Process &W = Procs[WaiterPid];
    uint64_t WSeq;
    // The waiter's P statement is the instruction before its (already
    // advanced) pc.
    StmtId WStmt = chunkOf(W).stmtAt(W.Pc - 1);
    emitSync(W, SyncKind::SemAcquire, Sem, WStmt, WSeq, VSeq);
    W.Status = ProcStatus::Runnable;
    W.WaitObject = InvalidId;
    S.PendingVEdge = false;
    return;
  }
  bool WasZero = S.Count == 0;
  ++S.Count;
  S.PendingVEdge = WasZero;
  S.PendingVSeq = VSeq;
  S.PendingVPid = P.Pid;
}

bool Machine::doSend(Process &P, uint32_t Chan, int64_t Value, StmtId Stmt) {
  Channel &C = Chans[Chan];
  uint64_t SendSeq;
  emitSync(P, SyncKind::ChanSend, Chan, Stmt, SendSeq);
  if (!C.BlockedReceivers.empty()) {
    // Hand the message straight to a waiting receiver.
    uint32_t ReceiverPid = C.BlockedReceivers.front();
    C.BlockedReceivers.pop_front();
    Process &R = Procs[ReceiverPid];
    uint64_t RecvSeq;
    StmtId RStmt = chunkOf(R).stmtAt(R.Pc - 1);
    emitSync(R, SyncKind::ChanRecv, Chan, RStmt, RecvSeq, SendSeq, Value);
    R.Stack.push_back(Value);
    R.Status = ProcStatus::Runnable;
    R.WaitObject = InvalidId;
    return true;
  }
  if (int64_t(C.Queue.size()) < C.Capacity) {
    C.Queue.push_back({Value, SendSeq});
    return true;
  }
  // Blocking send (Fig 6.1: node n3; the unblock event n5 follows the
  // matching receive).
  P.PendingSendValue = Value;
  P.PendingSendSeq = SendSeq;
  P.PendingSendStmt = Stmt;
  C.BlockedSenders.push_back(P.Pid);
  P.Status = ProcStatus::BlockedSend;
  P.WaitObject = Chan;
  return false;
}

bool Machine::doRecv(Process &P, uint32_t Chan, StmtId Stmt) {
  Channel &C = Chans[Chan];
  auto UnblockSender = [&](uint64_t RecvSeq, bool IntoQueue) {
    if (C.BlockedSenders.empty())
      return;
    uint32_t SenderPid = C.BlockedSenders.front();
    C.BlockedSenders.pop_front();
    Process &Sender = Procs[SenderPid];
    if (IntoQueue)
      C.Queue.push_back({Sender.PendingSendValue, Sender.PendingSendSeq});
    uint64_t USeq;
    emitSync(Sender, SyncKind::ChanSendUnblock, Chan, Sender.PendingSendStmt,
             USeq, RecvSeq);
    Sender.Status = ProcStatus::Runnable;
    Sender.WaitObject = InvalidId;
  };

  if (!C.Queue.empty()) {
    Message M = C.Queue.front();
    C.Queue.pop_front();
    uint64_t RecvSeq;
    emitSync(P, SyncKind::ChanRecv, Chan, Stmt, RecvSeq, M.SendSeq, M.Value);
    P.Stack.push_back(M.Value);
    UnblockSender(RecvSeq, /*IntoQueue=*/true);
    return true;
  }
  if (!C.BlockedSenders.empty()) {
    // Capacity-0 rendezvous: take the pending message directly.
    uint32_t SenderPid = C.BlockedSenders.front();
    Process &Sender = Procs[SenderPid];
    uint64_t RecvSeq;
    emitSync(P, SyncKind::ChanRecv, Chan, Stmt, RecvSeq,
             Sender.PendingSendSeq, Sender.PendingSendValue);
    P.Stack.push_back(Sender.PendingSendValue);
    UnblockSender(RecvSeq, /*IntoQueue=*/false);
    return true;
  }
  P.Status = ProcStatus::BlockedRecv;
  P.WaitObject = Chan;
  C.BlockedReceivers.push_back(P.Pid);
  return false;
}

void Machine::doSpawn(Process &P, uint32_t Func, uint32_t Argc, StmtId Stmt) {
  std::vector<int64_t> Args = popArgs(P, Argc);
  uint32_t ChildPid = uint32_t(Procs.size());
  uint64_t Seq;
  emitSync(P, SyncKind::SpawnChild, Func, Stmt, Seq, NoPartner,
           int64_t(ChildPid));
  spawnProcess(Func, std::move(Args), Seq);
}

bool Machine::doInput(Process &P, StmtId Stmt) {
  if (P.Inputs.empty()) {
    fail(P, RuntimeErrorKind::InputExhausted, Stmt);
    return false;
  }
  int64_t Value = P.Inputs.front();
  P.Inputs.pop_front();
  if (logging()) {
    LogRecord &R = appendRecord(P, LogRecordKind::Input);
    R.Value = Value;
  }
  P.Stack.push_back(Value);
  return true;
}

void Machine::doPrelog(Process &P, uint32_t EBlock) {
  if (Options.Mode != RunMode::Logging)
    return;
  LogRecord &R = appendRecord(P, LogRecordKind::Prelog);
  R.Id = EBlock;
  captureVars(P, Prog.eblock(EBlock).Used, R);
}

void Machine::doPostlog(Process &P, uint32_t EBlock, uint32_t Flags) {
  if (Options.Mode != RunMode::Logging)
    return;
  LogRecord &R = appendRecord(P, LogRecordKind::Postlog);
  R.Id = EBlock;
  R.Flags = Flags;
  if (Flags & PostlogExitsFunction) {
    assert(!P.Stack.empty() && "return value expected on stack");
    R.Value = P.Stack.back();
  }
  captureVars(P, Prog.eblock(EBlock).Defined, R);
}

void Machine::doUnitLog(Process &P, uint32_t Unit) {
  if (Options.Mode != RunMode::Logging)
    return;
  LogRecord &R = appendRecord(P, LogRecordKind::UnitLog);
  R.Id = Unit;
  captureVars(P, Prog.unit(Unit).SharedReads, R);
}

//===----------------------------------------------------------------------===//
// The legacy interpreter
//===----------------------------------------------------------------------===//

bool Machine::step(Process &P) {
  const Chunk &Code = chunkOf(P);
  assert(P.Pc < Code.size() && "pc out of range");
  const Instr I = Code.at(P.Pc);
  StmtId Stmt = Code.stmtAt(P.Pc);

  // Breakpoints fire on the transition into a new statement, before any of
  // its instructions execute — the "user intervention" halt that begins a
  // debugging session (§3.2.2).
  if (Stmt != P.CurrentStmt) {
    P.CurrentStmt = Stmt;
    if (Stmt != InvalidId && !BreakSet.empty() && BreakSet.count(Stmt)) {
      BreakHit = true;
      BreakPid = P.Pid;
      BreakStmt = Stmt;
      return false;
    }
  }
  ++P.Pc;

  auto Push = [&](int64_t V) { P.Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!P.Stack.empty() && "operand stack underflow");
    int64_t V = P.Stack.back();
    P.Stack.pop_back();
    return V;
  };

  bool IsShared = false;
  switch (I.Opcode) {
  case Op::PushConst:
    Push(I.Imm);
    return true;
  case Op::Pop:
    Pop();
    return true;
  case Op::ToBool:
    P.Stack.back() = P.Stack.back() != 0;
    return true;

  case Op::LoadLocal: {
    int64_t V = P.topSlots()[I.A];
    Push(V);
    traceRead(P, VarId(I.B), V, -1);
    return true;
  }
  case Op::StoreLocal: {
    int64_t V = Pop();
    P.topSlots()[I.A] = V;
    traceWrite(P, VarId(I.B), V, -1);
    return true;
  }
  case Op::LoadLocalElem: {
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return false;
    }
    int64_t V = P.topSlots()[I.A + Idx];
    Push(V);
    traceRead(P, VarId(I.B), V, Idx);
    return true;
  }
  case Op::StoreLocalElem: {
    int64_t V = Pop();
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return false;
    }
    P.topSlots()[I.A + Idx] = V;
    traceWrite(P, VarId(I.B), V, Idx);
    return true;
  }
  case Op::ZeroLocal: {
    std::fill_n(P.topSlots() + I.A, I.Imm, 0);
    traceWrite(P, VarId(I.B), 0, -1);
    return true;
  }

  case Op::LoadShared:
  case Op::LoadSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::LoadPriv:
  case Op::LoadPrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : P.PrivateGlobals;
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::LoadSharedElem || I.Opcode == Op::LoadPrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return false;
      }
      Offset += uint32_t(Idx);
    }
    int64_t V = Mem[Offset];
    Push(V);
    traceRead(P, VarId(I.B), V, Idx);
    if (IsShared && logging())
      P.EdgeReads.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
    return true;
  }

  case Op::StoreShared:
  case Op::StoreSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::StorePriv:
  case Op::StorePrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : P.PrivateGlobals;
    int64_t V = Pop();
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::StoreSharedElem || I.Opcode == Op::StorePrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return false;
      }
      Offset += uint32_t(Idx);
    }
    Mem[Offset] = V;
    traceWrite(P, VarId(I.B), V, Idx);
    if (IsShared && logging())
      P.EdgeWrites.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
    return true;
  }

  case Op::Add: {
    int64_t B = Pop(), A = Pop();
    Push(wrapAdd(A, B));
    return true;
  }
  case Op::Sub: {
    int64_t B = Pop(), A = Pop();
    Push(wrapSub(A, B));
    return true;
  }
  case Op::Mul: {
    int64_t B = Pop(), A = Pop();
    Push(wrapMul(A, B));
    return true;
  }
  case Op::Div: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      fail(P, RuntimeErrorKind::DivideByZero, Stmt);
      return false;
    }
    Push(wrapDiv(A, B));
    return true;
  }
  case Op::Mod: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      fail(P, RuntimeErrorKind::ModuloByZero, Stmt);
      return false;
    }
    Push(wrapMod(A, B));
    return true;
  }
  case Op::Neg:
    P.Stack.back() = wrapNeg(P.Stack.back());
    return true;
  case Op::Not:
    P.Stack.back() = P.Stack.back() == 0;
    return true;
  case Op::CmpEq: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Eq, A, B));
    return true;
  }
  case Op::CmpNe: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Ne, A, B));
    return true;
  }
  case Op::CmpLt: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Lt, A, B));
    return true;
  }
  case Op::CmpLe: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Le, A, B));
    return true;
  }
  case Op::CmpGt: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Gt, A, B));
    return true;
  }
  case Op::CmpGe: {
    int64_t B = Pop(), A = Pop();
    Push(evalCmp(CmpKind::Ge, A, B));
    return true;
  }

  case Op::Jump:
    P.Pc = uint32_t(I.A);
    return true;
  case Op::JumpIfFalse:
  case Op::JumpIfTrue: {
    int64_t Cond = Pop();
    if (TraceEvent *E = openEventOf(P)) {
      E->IsPredicate = true;
      E->BranchTaken = Cond != 0;
    }
    bool Taken = I.Opcode == Op::JumpIfFalse ? Cond == 0 : Cond != 0;
    if (Taken)
      P.Pc = uint32_t(I.A);
    return true;
  }

  case Op::Call: {
    if (P.Frames.size() >= 4096) {
      fail(P, RuntimeErrorKind::StackOverflow, Stmt);
      return false;
    }
    std::vector<int64_t> Args = popArgs(P, uint32_t(I.B));
    pushFrame(P, uint32_t(I.A), std::move(Args), P.Pc);
    return true;
  }
  case Op::Ret: {
    int64_t Result = Pop();
    Frame Top = P.Frames.back();
    P.Frames.pop_back();
    P.SlotArena.resize(Top.SlotBase);
    P.Stack.resize(Top.StackBase);
    if (P.Frames.empty()) {
      if (logging()) {
        uint64_t Seq;
        emitSync(P, SyncKind::ProcEnd, 0, Stmt, Seq);
      }
      P.Status = ProcStatus::Done;
      return false;
    }
    Push(Result);
    P.Pc = Top.ReturnPc;
    return true;
  }
  case Op::CallBuiltin:
    if (!applyBuiltin(Builtin(I.A), P.Stack)) {
      fail(P, RuntimeErrorKind::NegativeSqrt, Stmt);
      return false;
    }
    return true;

  case Op::SemP:
    return doSemP(P, uint32_t(I.A), Stmt);
  case Op::SemV:
    doSemV(P, uint32_t(I.A), Stmt);
    return true;

  case Op::SendCh:
    return doSend(P, uint32_t(I.A), Pop(), Stmt);
  case Op::RecvCh:
    return doRecv(P, uint32_t(I.A), Stmt);

  case Op::SpawnProc:
    doSpawn(P, uint32_t(I.A), uint32_t(I.B), Stmt);
    return true;

  case Op::PrintVal: {
    int64_t Value = Pop();
    Log.Output.push_back({P.Pid, Value, Stmt});
    return true;
  }
  case Op::InputVal:
    return doInput(P, Stmt);

  case Op::Prelog:
    doPrelog(P, uint32_t(I.A));
    return true;
  case Op::Postlog:
    doPostlog(P, uint32_t(I.A), uint32_t(I.B));
    return true;
  case Op::UnitLog:
    doUnitLog(P, uint32_t(I.A));
    return true;

  case Op::TraceStmt: {
    if (tracing()) {
      TraceEvent &E = Traces[P.Pid].emplace();
      E.Pid = P.Pid;
      E.Stmt = StmtId(I.A);
      P.Frames.back().OpenEvent = E.Index;
    }
    return true;
  }
  case Op::TraceCallBegin: {
    if (tracing()) {
      TraceEvent E;
      E.Kind = TraceEventKind::CallBegin;
      E.Pid = P.Pid;
      E.Stmt = StmtId(I.B);
      E.Callee = uint32_t(I.A);
      uint32_t Argc = Prog.func(uint32_t(I.A)).NumParams;
      assert(P.Stack.size() >= Argc && "call arguments missing");
      E.Args.assign(P.Stack.end() - Argc, P.Stack.end());
      Traces[P.Pid].append(std::move(E));
    }
    return true;
  }
  case Op::TraceCallEnd: {
    if (tracing()) {
      TraceEvent E;
      E.Kind = TraceEventKind::CallEnd;
      E.Pid = P.Pid;
      E.Callee = uint32_t(I.A);
      E.Value = P.Stack.back();
      Traces[P.Pid].append(std::move(E));
    }
    return true;
  }

  case Op::Halt:
    P.Status = ProcStatus::Done;
    return false;
  }
  assert(false && "unknown opcode");
  return false;
}

//===----------------------------------------------------------------------===//
// The decoded fast path
//===----------------------------------------------------------------------===//

template <RunMode Mode>
uint32_t Machine::runSlice(Process &P, uint32_t Budget) {
  PPD_DISPATCH_TABLE();
  constexpr bool DoLog = Mode != RunMode::Plain;
  constexpr bool DoTrace = Mode == RunMode::FullTrace;

  // Hot state lives in locals for the duration of the slice and is synced
  // back to the Process on every exit path. Slots caches the arena pointer
  // of the innermost frame; it is reloaded after Call and Ret (the arena
  // may reallocate, and the frame changes).
  auto BaseOf = [&](uint32_t Func) {
    const CompiledFunction &CF = Prog.func(Func);
    return (DoTrace ? CF.EmuDecoded : CF.ObjectDecoded).data();
  };
  const DecodedInstr *Base = BaseOf(P.Frames.back().Func);
  uint32_t Ip = P.Pc;
  int64_t *Slots = P.topSlots();
  std::vector<int64_t> &Stack = P.Stack;
  StmtId CurStmt = P.CurrentStmt;
  uint32_t Used = 0;

  auto Push = [&](int64_t V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow");
    int64_t V = Stack.back();
    Stack.pop_back();
    return V;
  };

  for (;;) {
    // Per-step prologue: exact legacy accounting. Budget already folds in
    // both the quantum and the global step limit; a step is consumed even
    // when it blocks, fails, or stops at a breakpoint.
    if (Used == Budget)
      break;
    ++Used;
    const DecodedInstr &I = Base[Ip];
    if (I.Stmt != CurStmt) {
      CurStmt = I.Stmt;
      if (I.Stmt != InvalidId && !BreakSet.empty() && BreakSet.count(I.Stmt)) {
        BreakHit = true;
        BreakPid = P.Pid;
        BreakStmt = I.Stmt;
        goto Exit; // pc not advanced, like the legacy engine.
      }
    }
    ++Ip;

    PPD_DISPATCH(I.Opcode) {
      PPD_OP(PushConst) {
        Push(I.Imm);
        continue;
      }
      PPD_OP(Pop) {
        Pop();
        continue;
      }
      PPD_OP(ToBool) {
        Stack.back() = Stack.back() != 0;
        continue;
      }

      PPD_OP(LoadLocal) {
        int64_t V = Slots[I.A];
        Push(V);
        if constexpr (DoTrace)
          traceRead(P, VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(StoreLocal) {
        int64_t V = Pop();
        Slots[I.A] = V;
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(LoadLocalElem) {
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          fail(P, RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        int64_t V = Slots[I.A + Idx];
        Push(V);
        if constexpr (DoTrace)
          traceRead(P, VarId(I.B), V, Idx);
        continue;
      }
      PPD_OP(StoreLocalElem) {
        int64_t V = Pop();
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          fail(P, RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        Slots[I.A + Idx] = V;
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), V, Idx);
        continue;
      }
      PPD_OP(ZeroLocal) {
        std::fill_n(Slots + I.A, I.Imm, 0);
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), 0, -1);
        continue;
      }

      PPD_OP(LoadShared) {
        int64_t V = Shared[uint32_t(I.A)];
        Push(V);
        if constexpr (DoTrace)
          traceRead(P, VarId(I.B), V, -1);
        if constexpr (DoLog)
          P.EdgeReads.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
        continue;
      }
      PPD_OP(LoadSharedElem) {
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          fail(P, RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        int64_t V = Shared[uint32_t(I.A) + uint32_t(Idx)];
        Push(V);
        if constexpr (DoTrace)
          traceRead(P, VarId(I.B), V, Idx);
        if constexpr (DoLog)
          P.EdgeReads.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
        continue;
      }
      PPD_OP(LoadPriv) {
        int64_t V = P.PrivateGlobals[uint32_t(I.A)];
        Push(V);
        if constexpr (DoTrace)
          traceRead(P, VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(LoadPrivElem) {
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          fail(P, RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        int64_t V = P.PrivateGlobals[uint32_t(I.A) + uint32_t(Idx)];
        Push(V);
        if constexpr (DoTrace)
          traceRead(P, VarId(I.B), V, Idx);
        continue;
      }

      PPD_OP(StoreShared) {
        int64_t V = Pop();
        Shared[uint32_t(I.A)] = V;
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), V, -1);
        if constexpr (DoLog)
          P.EdgeWrites.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
        continue;
      }
      PPD_OP(StoreSharedElem) {
        int64_t V = Pop();
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          fail(P, RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        Shared[uint32_t(I.A) + uint32_t(Idx)] = V;
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), V, Idx);
        if constexpr (DoLog)
          P.EdgeWrites.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
        continue;
      }
      PPD_OP(StorePriv) {
        int64_t V = Pop();
        P.PrivateGlobals[uint32_t(I.A)] = V;
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), V, -1);
        continue;
      }
      PPD_OP(StorePrivElem) {
        int64_t V = Pop();
        int64_t Idx = Pop();
        if (Idx < 0 || Idx >= I.Imm) {
          fail(P, RuntimeErrorKind::IndexOutOfBounds, I.Stmt);
          goto Exit;
        }
        P.PrivateGlobals[uint32_t(I.A) + uint32_t(Idx)] = V;
        if constexpr (DoTrace)
          traceWrite(P, VarId(I.B), V, Idx);
        continue;
      }

      PPD_OP(Add) {
        int64_t B = Pop();
        Stack.back() = wrapAdd(Stack.back(), B);
        continue;
      }
      PPD_OP(Sub) {
        int64_t B = Pop();
        Stack.back() = wrapSub(Stack.back(), B);
        continue;
      }
      PPD_OP(Mul) {
        int64_t B = Pop();
        Stack.back() = wrapMul(Stack.back(), B);
        continue;
      }
      PPD_OP(Div) {
        int64_t B = Pop();
        if (B == 0) {
          fail(P, RuntimeErrorKind::DivideByZero, I.Stmt);
          goto Exit;
        }
        Stack.back() = wrapDiv(Stack.back(), B);
        continue;
      }
      PPD_OP(Mod) {
        int64_t B = Pop();
        if (B == 0) {
          fail(P, RuntimeErrorKind::ModuloByZero, I.Stmt);
          goto Exit;
        }
        Stack.back() = wrapMod(Stack.back(), B);
        continue;
      }
      PPD_OP(Neg) {
        Stack.back() = wrapNeg(Stack.back());
        continue;
      }
      PPD_OP(Not) {
        Stack.back() = Stack.back() == 0;
        continue;
      }

      PPD_OP(CmpEq)
      PPD_OP(CmpNe)
      PPD_OP(CmpLt)
      PPD_OP(CmpLe)
      PPD_OP(CmpGt)
      PPD_OP(CmpGe) {
        int64_t B = Pop();
        Stack.back() = evalCmp(CmpKind(I.Sub), Stack.back(), B);
        continue;
      }

      PPD_OP(Jump) {
        Ip = uint32_t(I.A);
        continue;
      }
      PPD_OP(JumpIfFalse)
      PPD_OP(JumpIfTrue) {
        int64_t Cond = Pop();
        if constexpr (DoTrace) {
          if (TraceEvent *E = openEventOf(P)) {
            E->IsPredicate = true;
            E->BranchTaken = Cond != 0;
          }
        }
        bool Taken = I.Opcode == DOp::JumpIfFalse ? Cond == 0 : Cond != 0;
        if (Taken)
          Ip = uint32_t(I.A);
        continue;
      }
      PPD_OP(JumpIfCmp) {
        // Fused Cmp + JumpIf. The compare is this step; the branch is the
        // next one and only executes if the budget still has room —
        // otherwise the compare result is pushed and the pc stays on the
        // branch's own (still fully decoded) slot, so preemption points
        // match the legacy engine exactly.
        int64_t B = Pop(), A = Pop();
        int64_t Cond = evalCmp(CmpKind(I.Sub >> 1), A, B);
        if (Used != Budget) {
          ++Used;
          if constexpr (DoTrace) {
            if (TraceEvent *E = openEventOf(P)) {
              E->IsPredicate = true;
              E->BranchTaken = Cond != 0;
            }
          }
          bool Taken = (I.Sub & 1) ? Cond != 0 : Cond == 0;
          Ip = Taken ? uint32_t(I.A) : Ip + 1;
        } else {
          Push(Cond);
        }
        continue;
      }
      PPD_OP(StoreLocalImm) {
        // Fused PushConst + StoreLocal, split the same way.
        if (Used != Budget) {
          ++Used;
          ++Ip; // skip the second half's slot
          Slots[I.A] = I.Imm;
          if constexpr (DoTrace)
            traceWrite(P, VarId(I.B), I.Imm, -1);
        } else {
          Push(I.Imm);
        }
        continue;
      }

      PPD_OP(Call) {
        if (P.Frames.size() >= 4096) {
          fail(P, RuntimeErrorKind::StackOverflow, I.Stmt);
          goto Exit;
        }
        uint32_t Argc = uint32_t(I.B);
        const CompiledFunction &Callee = Prog.func(uint32_t(I.A));
        assert(Argc == Callee.NumParams && "arity checked by sema");
        assert(Stack.size() >= Argc && "operand stack underflow");
        Frame Fr;
        Fr.Func = uint32_t(I.A);
        Fr.ReturnPc = Ip;
        Fr.StackBase = uint32_t(Stack.size() - Argc);
        Fr.SlotBase = uint32_t(P.SlotArena.size());
        Fr.SlotCount = Callee.FrameSize;
        P.SlotArena.resize(Fr.SlotBase + Callee.FrameSize, 0);
        std::copy(Stack.end() - Argc, Stack.end(),
                  P.SlotArena.begin() + Fr.SlotBase);
        Stack.resize(Stack.size() - Argc);
        P.Frames.push_back(Fr);
        Base = BaseOf(Fr.Func);
        Ip = 0;
        Slots = P.SlotArena.data() + Fr.SlotBase;
        continue;
      }
      PPD_OP(Ret) {
        int64_t Result = Pop();
        Frame Top = P.Frames.back();
        P.Frames.pop_back();
        P.SlotArena.resize(Top.SlotBase);
        Stack.resize(Top.StackBase);
        if (P.Frames.empty()) {
          if constexpr (DoLog) {
            uint64_t Seq;
            emitSync(P, SyncKind::ProcEnd, 0, I.Stmt, Seq);
          }
          P.Status = ProcStatus::Done;
          goto Exit;
        }
        Push(Result);
        Ip = Top.ReturnPc;
        Base = BaseOf(P.Frames.back().Func);
        Slots = P.topSlots();
        continue;
      }
      PPD_OP(CallBuiltin) {
        if (!applyBuiltin(Builtin(I.A), Stack)) {
          fail(P, RuntimeErrorKind::NegativeSqrt, I.Stmt);
          goto Exit;
        }
        continue;
      }

      PPD_OP(SemP) {
        if (!doSemP(P, uint32_t(I.A), I.Stmt))
          goto Exit;
        continue;
      }
      PPD_OP(SemV) {
        doSemV(P, uint32_t(I.A), I.Stmt);
        continue;
      }
      PPD_OP(SendCh) {
        if (!doSend(P, uint32_t(I.A), Pop(), I.Stmt))
          goto Exit;
        continue;
      }
      PPD_OP(RecvCh) {
        if (!doRecv(P, uint32_t(I.A), I.Stmt))
          goto Exit;
        continue;
      }
      PPD_OP(SpawnProc) {
        doSpawn(P, uint32_t(I.A), uint32_t(I.B), I.Stmt);
        continue;
      }

      PPD_OP(PrintVal) {
        int64_t Value = Pop();
        Log.Output.push_back({P.Pid, Value, I.Stmt});
        continue;
      }
      PPD_OP(InputVal) {
        if (!doInput(P, I.Stmt))
          goto Exit;
        continue;
      }

      PPD_OP(Prelog) {
        if constexpr (Mode == RunMode::Logging)
          doPrelog(P, uint32_t(I.A));
        continue;
      }
      PPD_OP(Postlog) {
        if constexpr (Mode == RunMode::Logging)
          doPostlog(P, uint32_t(I.A), uint32_t(I.B));
        continue;
      }
      PPD_OP(UnitLog) {
        if constexpr (Mode == RunMode::Logging)
          doUnitLog(P, uint32_t(I.A));
        continue;
      }

      PPD_OP(TraceStmt) {
        if constexpr (DoTrace) {
          TraceEvent &E = Traces[P.Pid].emplace();
          E.Pid = P.Pid;
          E.Stmt = StmtId(I.A);
          P.Frames.back().OpenEvent = E.Index;
        }
        continue;
      }
      PPD_OP(TraceCallBegin) {
        if constexpr (DoTrace) {
          TraceEvent E;
          E.Kind = TraceEventKind::CallBegin;
          E.Pid = P.Pid;
          E.Stmt = StmtId(I.B);
          E.Callee = uint32_t(I.A);
          uint32_t Argc = Prog.func(uint32_t(I.A)).NumParams;
          assert(Stack.size() >= Argc && "call arguments missing");
          E.Args.assign(Stack.end() - Argc, Stack.end());
          Traces[P.Pid].append(std::move(E));
        }
        continue;
      }
      PPD_OP(TraceCallEnd) {
        if constexpr (DoTrace) {
          TraceEvent E;
          E.Kind = TraceEventKind::CallEnd;
          E.Pid = P.Pid;
          E.Callee = uint32_t(I.A);
          E.Value = Stack.back();
          Traces[P.Pid].append(std::move(E));
        }
        continue;
      }

      PPD_OP(Halt) {
        P.Status = ProcStatus::Done;
        goto Exit;
      }
    }
    PPD_END_DISPATCH();
    assert(false && "unknown opcode");
  }

Exit:
  P.Pc = Ip;
  P.CurrentStmt = CurStmt;
  return Used;
}

//===----------------------------------------------------------------------===//
// The scheduler
//===----------------------------------------------------------------------===//

RunResult Machine::run() {
  RunResult Result;
  // Any non-completed outcome freezes the machine mid-flight; Stop markers
  // let replay halt each process exactly where it actually stopped instead
  // of running ahead deterministically.
  auto Freeze = [&](RunResult::Status Outcome) {
    Result.Outcome = Outcome;
    Result.Steps = Steps;
    if (logging())
      for (Process &P : Procs) {
        // The failed process gets no marker: its log already ends at the
        // failure, which replay re-derives (the flowback root).
        if (P.Status == ProcStatus::Done || P.Status == ProcStatus::Failed)
          continue;
        LogRecord &R = Log.Procs[P.Pid].Records.emplace_back();
        R.Kind = LogRecordKind::Stop;
        // Which statement the process was in/about to enter: lets replay
        // stop at the right occurrence, not merely at the right record.
        R.Stmt = P.CurrentStmt;
        // Shared accesses since the last sync node would otherwise vanish
        // with the process: flush them as a terminal sync node so §6.4
        // race detection sees the unterminated final edge. Placed after
        // the Stop marker, replay halts before ever reaching it.
        if (!P.EdgeReads.empty() || !P.EdgeWrites.empty()) {
          uint64_t Seq;
          emitSync(P, SyncKind::Stopped, 0, P.CurrentStmt, Seq, NoPartner);
        }
      }
    return Result;
  };

  for (;;) {
    if (RoundHook)
      RoundHook(*this);
    if (BreakHit) {
      Result.BreakPid = BreakPid;
      Result.BreakStmt = BreakStmt;
      return Freeze(RunResult::Status::Breakpoint);
    }
    // A failure freezes the machine: the program "halts due to an error"
    // and the debugging phase takes over (§3.2.2).
    for (const Process &P : Procs)
      if (P.Status == ProcStatus::Failed) {
        Result.Error = P.Error;
        return Freeze(RunResult::Status::Failed);
      }

    Runnable.clear();
    bool AnyBlocked = false;
    for (const Process &P : Procs) {
      if (P.Status == ProcStatus::Runnable)
        Runnable.push_back(P.Pid);
      else if (P.Status != ProcStatus::Done)
        AnyBlocked = true;
    }

    if (Runnable.empty()) {
      if (!AnyBlocked) {
        Result.Outcome = RunResult::Status::Completed;
        Result.Steps = Steps;
        return Result;
      }
      for (const Process &P : Procs)
        if (P.Status == ProcStatus::BlockedSem ||
            P.Status == ProcStatus::BlockedSend ||
            P.Status == ProcStatus::BlockedRecv)
          Result.Deadlock.Blocked.push_back(
              {P.Pid, P.Status, P.WaitObject});
      return Freeze(RunResult::Status::Deadlock);
    }

    uint32_t Pid = Runnable[SchedRng.nextBelow(Runnable.size())];

    if (DecodedOk) {
      if (Steps >= Options.MaxSteps)
        return Freeze(RunResult::Status::StepLimit);
      // One bound for the whole slice: the quantum and the global step
      // budget collapse into a single per-slice budget, checked once per
      // step inside the threaded loop.
      uint32_t Budget = uint32_t(
          std::min<uint64_t>(Options.Quantum, Options.MaxSteps - Steps));
      uint32_t Used = 0;
      switch (Options.Mode) {
      case RunMode::Plain:
        Used = runSlice<RunMode::Plain>(Procs[Pid], Budget);
        break;
      case RunMode::Logging:
        Used = runSlice<RunMode::Logging>(Procs[Pid], Budget);
        break;
      case RunMode::FullTrace:
        Used = runSlice<RunMode::FullTrace>(Procs[Pid], Budget);
        break;
      }
      Steps += Used;
      continue;
    }

    for (uint32_t Slice = 0; Slice != Options.Quantum; ++Slice) {
      if (Steps >= Options.MaxSteps)
        return Freeze(RunResult::Status::StepLimit);
      ++Steps;
      if (!step(Procs[Pid]))
        break;
    }
  }
}
