//===- vm/Machine.cpp -----------------------------------------------------===//
//
// Part of PPD. See Machine.h.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/Arith.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ppd;

const char *ppd::runtimeErrorName(RuntimeErrorKind Kind) {
  switch (Kind) {
  case RuntimeErrorKind::None:
    return "none";
  case RuntimeErrorKind::DivideByZero:
    return "divide by zero";
  case RuntimeErrorKind::ModuloByZero:
    return "modulo by zero";
  case RuntimeErrorKind::IndexOutOfBounds:
    return "array index out of bounds";
  case RuntimeErrorKind::NegativeSqrt:
    return "sqrt of a negative value";
  case RuntimeErrorKind::InputExhausted:
    return "input exhausted";
  case RuntimeErrorKind::StackOverflow:
    return "call stack overflow";
  }
  return "?";
}

std::string RuntimeError::str() const {
  std::string Out = "process ";
  Out += std::to_string(Pid);
  Out += ": ";
  Out += runtimeErrorName(Kind);
  if (Stmt != InvalidId)
    Out += " at s" + std::to_string(Stmt);
  return Out;
}

/// Integer square root (floor), defined for nonnegative inputs.
static int64_t isqrt(int64_t X) {
  assert(X >= 0 && "isqrt of negative value");
  int64_t R = int64_t(std::sqrt(double(X)));
  // Compare in uint64: sqrt's rounding can overshoot enough that R*R (or
  // (R+1)^2 near INT64_MAX) overflows int64.
  while (R > 0 && uint64_t(R) * uint64_t(R) > uint64_t(X))
    --R;
  while (uint64_t(R + 1) * uint64_t(R + 1) <= uint64_t(X))
    ++R;
  return R;
}

Machine::Machine(const CompiledProgram &Prog, MachineOptions Options)
    : Prog(Prog), Options(std::move(Options)), SchedRng(this->Options.Seed) {
  BreakSet.insert(this->Options.Breakpoints.begin(),
                  this->Options.Breakpoints.end());
  // Shared memory with initial values.
  Shared.assign(Prog.Symbols->SharedMemorySize, 0);
  for (const VarInfo &Info : Prog.Symbols->Vars)
    if (Info.Kind == VarKind::SharedGlobal && !Info.isArray())
      Shared[Info.Offset] = Info.Init;

  for (int64_t Init : Prog.SemInit) {
    Semaphore S;
    S.Count = Init;
    Sems.push_back(std::move(S));
  }
  for (int64_t Capacity : Prog.ChanCapacity) {
    Channel C;
    C.Capacity = Capacity;
    Chans.push_back(std::move(C));
  }

  spawnProcess(Prog.MainIndex, {}, NoPartner);
}

const Chunk &Machine::chunkOf(const Process &P) const {
  const CompiledFunction &F = Prog.func(P.Frames.back().Func);
  return tracing() ? F.Emu : F.Object;
}

uint32_t Machine::spawnProcess(uint32_t Func, std::vector<int64_t> Args,
                               uint64_t ParentSpawnSeq) {
  uint32_t Pid = uint32_t(Procs.size());
  Procs.emplace_back();
  Process &P = Procs.back();
  P.Pid = Pid;

  P.PrivateGlobals.assign(Prog.Symbols->PrivateGlobalSize, 0);
  for (const VarInfo &Info : Prog.Symbols->Vars)
    if (Info.Kind == VarKind::PrivateGlobal && !Info.isArray())
      P.PrivateGlobals[Info.Offset] = Info.Init;

  if (Pid < Options.ProcessInputs.size())
    P.Inputs.assign(Options.ProcessInputs[Pid].begin(),
                    Options.ProcessInputs[Pid].end());

  Log.Procs.emplace_back();
  Log.Procs.back().Pid = Pid;
  Log.Procs.back().RootFunc = Func;
  Log.Procs.back().Args = Args;
  if (logging())
    Log.Procs.back().Records.reserve(64);
  Traces.emplace_back();

  pushFrame(P, Func, std::move(Args), /*ReturnPc=*/0);

  if (logging()) {
    uint64_t Seq;
    emitSync(P, SyncKind::ProcStart, Func, InvalidId, Seq, ParentSpawnSeq);
  }
  return Pid;
}

void Machine::pushFrame(Process &P, uint32_t Func, std::vector<int64_t> Args,
                        uint32_t ReturnPc) {
  const CompiledFunction &F = Prog.func(Func);
  Frame Fr;
  Fr.Func = Func;
  Fr.ReturnPc = ReturnPc;
  Fr.StackBase = uint32_t(P.Stack.size());
  Fr.Slots.assign(F.FrameSize, 0);
  assert(Args.size() == F.NumParams && "arity checked by sema");
  std::copy(Args.begin(), Args.end(), Fr.Slots.begin());
  P.Frames.push_back(std::move(Fr));
  P.Pc = 0;
}

std::vector<int64_t> Machine::popArgs(Process &P, uint32_t Argc) {
  assert(P.Stack.size() >= Argc && "operand stack underflow");
  std::vector<int64_t> Args(P.Stack.end() - Argc, P.Stack.end());
  P.Stack.resize(P.Stack.size() - Argc);
  return Args;
}

void Machine::fail(Process &P, RuntimeErrorKind Kind, StmtId Stmt) {
  P.Status = ProcStatus::Failed;
  P.Error = {Kind, P.Pid, Stmt};
}

//===----------------------------------------------------------------------===//
// Logging helpers
//===----------------------------------------------------------------------===//

LogRecord &Machine::appendRecord(Process &P, LogRecordKind Kind) {
  ProcessLog &PL = Log.Procs[P.Pid];
  LogRecord &R = PL.Records.emplace_back();
  R.Kind = Kind;
  if (Kind == LogRecordKind::Prelog)
    ++PL.PrelogCount;
  return R;
}

void Machine::captureVars(Process &P, const std::vector<VarId> &Vars,
                          LogRecord &Record) {
  Record.Vars.reserve(Record.Vars.size() + Vars.size());
  for (VarId Var : Vars) {
    const VarInfo &Info = Prog.Symbols->var(Var);
    VarValue Value;
    Value.Var = Var;
    uint32_t Count = Info.slotCount();
    const int64_t *Base = nullptr;
    switch (Info.Kind) {
    case VarKind::SharedGlobal:
      Base = &Shared[Info.Offset];
      break;
    case VarKind::PrivateGlobal:
      Base = &P.PrivateGlobals[Info.Offset];
      break;
    case VarKind::Param:
    case VarKind::Local:
      // USED/DEFINED sets only name variables of the function the e-block
      // lives in, so the top frame is the right one.
      Base = &P.Frames.back().Slots[Info.Offset];
      break;
    }
    Value.Values.assign(Base, Base + Count);
    Record.Vars.push_back(std::move(Value));
  }
}

void Machine::emitSync(Process &P, SyncKind Kind, uint32_t Object,
                       StmtId Stmt, uint64_t &SeqOut, uint64_t Partner,
                       int64_t Value) {
  SeqOut = NextSyncSeq++;
  if (!logging())
    return;
  LogRecord &R = appendRecord(P, LogRecordKind::SyncEvent);
  R.Sync = Kind;
  R.Id = Object;
  R.Stmt = Stmt;
  R.Seq = SeqOut;
  R.PartnerSeq = Partner;
  R.Value = Value;
  // The internal edge ending at this synchronization node (Def 6.2).
  R.ReadSet.reserve(P.EdgeReads.size());
  P.EdgeReads.forEach([&R](unsigned S) { R.ReadSet.push_back(S); });
  R.WriteSet.reserve(P.EdgeWrites.size());
  P.EdgeWrites.forEach([&R](unsigned S) { R.WriteSet.push_back(S); });
  P.EdgeReads.clear();
  P.EdgeWrites.clear();
}

//===----------------------------------------------------------------------===//
// Tracing helpers (FullTrace mode)
//===----------------------------------------------------------------------===//

TraceEvent *Machine::openEventOf(Process &P) {
  if (!tracing())
    return nullptr;
  uint32_t Idx = P.Frames.back().OpenEvent;
  if (Idx == InvalidId)
    return nullptr;
  return &Traces[P.Pid].Events[Idx];
}

void Machine::traceRead(Process &P, VarId Var, int64_t Value, int64_t Index) {
  if (TraceEvent *E = openEventOf(P))
    E->Reads.push_back({Var, Value, Index});
}

void Machine::traceWrite(Process &P, VarId Var, int64_t Value,
                         int64_t Index) {
  if (TraceEvent *E = openEventOf(P))
    E->Writes.push_back({Var, Value, Index});
}

//===----------------------------------------------------------------------===//
// The interpreter
//===----------------------------------------------------------------------===//

bool Machine::step(Process &P) {
  const Chunk &Code = chunkOf(P);
  assert(P.Pc < Code.size() && "pc out of range");
  const Instr I = Code.at(P.Pc);
  StmtId Stmt = Code.stmtAt(P.Pc);

  // Breakpoints fire on the transition into a new statement, before any of
  // its instructions execute — the "user intervention" halt that begins a
  // debugging session (§3.2.2).
  if (Stmt != P.CurrentStmt) {
    P.CurrentStmt = Stmt;
    if (Stmt != InvalidId && !BreakSet.empty() && BreakSet.count(Stmt)) {
      BreakHit = true;
      BreakPid = P.Pid;
      BreakStmt = Stmt;
      return false;
    }
  }
  ++P.Pc;

  auto Push = [&](int64_t V) { P.Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!P.Stack.empty() && "operand stack underflow");
    int64_t V = P.Stack.back();
    P.Stack.pop_back();
    return V;
  };

  bool IsShared = false;
  switch (I.Opcode) {
  case Op::PushConst:
    Push(I.Imm);
    return true;
  case Op::Pop:
    Pop();
    return true;
  case Op::ToBool:
    P.Stack.back() = P.Stack.back() != 0;
    return true;

  case Op::LoadLocal: {
    int64_t V = P.Frames.back().Slots[I.A];
    Push(V);
    traceRead(P, VarId(I.B), V, -1);
    return true;
  }
  case Op::StoreLocal: {
    int64_t V = Pop();
    P.Frames.back().Slots[I.A] = V;
    traceWrite(P, VarId(I.B), V, -1);
    return true;
  }
  case Op::LoadLocalElem: {
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return false;
    }
    int64_t V = P.Frames.back().Slots[I.A + Idx];
    Push(V);
    traceRead(P, VarId(I.B), V, Idx);
    return true;
  }
  case Op::StoreLocalElem: {
    int64_t V = Pop();
    int64_t Idx = Pop();
    if (Idx < 0 || Idx >= I.Imm) {
      fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
      return false;
    }
    P.Frames.back().Slots[I.A + Idx] = V;
    traceWrite(P, VarId(I.B), V, Idx);
    return true;
  }
  case Op::ZeroLocal: {
    std::fill_n(P.Frames.back().Slots.begin() + I.A, I.Imm, 0);
    traceWrite(P, VarId(I.B), 0, -1);
    return true;
  }

  case Op::LoadShared:
  case Op::LoadSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::LoadPriv:
  case Op::LoadPrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : P.PrivateGlobals;
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::LoadSharedElem || I.Opcode == Op::LoadPrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return false;
      }
      Offset += uint32_t(Idx);
    }
    int64_t V = Mem[Offset];
    Push(V);
    traceRead(P, VarId(I.B), V, Idx);
    if (IsShared && logging())
      P.EdgeReads.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
    return true;
  }

  case Op::StoreShared:
  case Op::StoreSharedElem:
    IsShared = true;
    [[fallthrough]];
  case Op::StorePriv:
  case Op::StorePrivElem: {
    std::vector<int64_t> &Mem = IsShared ? Shared : P.PrivateGlobals;
    int64_t V = Pop();
    int64_t Idx = -1;
    uint32_t Offset = uint32_t(I.A);
    if (I.Opcode == Op::StoreSharedElem || I.Opcode == Op::StorePrivElem) {
      Idx = Pop();
      if (Idx < 0 || Idx >= I.Imm) {
        fail(P, RuntimeErrorKind::IndexOutOfBounds, Stmt);
        return false;
      }
      Offset += uint32_t(Idx);
    }
    Mem[Offset] = V;
    traceWrite(P, VarId(I.B), V, Idx);
    if (IsShared && logging())
      P.EdgeWrites.insert(Prog.Symbols->var(VarId(I.B)).SharedIndex);
    return true;
  }

  case Op::Add: {
    int64_t B = Pop(), A = Pop();
    Push(wrapAdd(A, B));
    return true;
  }
  case Op::Sub: {
    int64_t B = Pop(), A = Pop();
    Push(wrapSub(A, B));
    return true;
  }
  case Op::Mul: {
    int64_t B = Pop(), A = Pop();
    Push(wrapMul(A, B));
    return true;
  }
  case Op::Div: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      fail(P, RuntimeErrorKind::DivideByZero, Stmt);
      return false;
    }
    Push(wrapDiv(A, B));
    return true;
  }
  case Op::Mod: {
    int64_t B = Pop(), A = Pop();
    if (B == 0) {
      fail(P, RuntimeErrorKind::ModuloByZero, Stmt);
      return false;
    }
    Push(wrapMod(A, B));
    return true;
  }
  case Op::Neg:
    P.Stack.back() = wrapNeg(P.Stack.back());
    return true;
  case Op::Not:
    P.Stack.back() = P.Stack.back() == 0;
    return true;
  case Op::CmpEq: {
    int64_t B = Pop(), A = Pop();
    Push(A == B);
    return true;
  }
  case Op::CmpNe: {
    int64_t B = Pop(), A = Pop();
    Push(A != B);
    return true;
  }
  case Op::CmpLt: {
    int64_t B = Pop(), A = Pop();
    Push(A < B);
    return true;
  }
  case Op::CmpLe: {
    int64_t B = Pop(), A = Pop();
    Push(A <= B);
    return true;
  }
  case Op::CmpGt: {
    int64_t B = Pop(), A = Pop();
    Push(A > B);
    return true;
  }
  case Op::CmpGe: {
    int64_t B = Pop(), A = Pop();
    Push(A >= B);
    return true;
  }

  case Op::Jump:
    P.Pc = uint32_t(I.A);
    return true;
  case Op::JumpIfFalse:
  case Op::JumpIfTrue: {
    int64_t Cond = Pop();
    if (TraceEvent *E = openEventOf(P)) {
      E->IsPredicate = true;
      E->BranchTaken = Cond != 0;
    }
    bool Taken = I.Opcode == Op::JumpIfFalse ? Cond == 0 : Cond != 0;
    if (Taken)
      P.Pc = uint32_t(I.A);
    return true;
  }

  case Op::Call: {
    if (P.Frames.size() >= 4096) {
      fail(P, RuntimeErrorKind::StackOverflow, Stmt);
      return false;
    }
    std::vector<int64_t> Args = popArgs(P, uint32_t(I.B));
    pushFrame(P, uint32_t(I.A), std::move(Args), P.Pc);
    return true;
  }
  case Op::Ret: {
    int64_t Result = Pop();
    Frame Top = std::move(P.Frames.back());
    P.Frames.pop_back();
    P.Stack.resize(Top.StackBase);
    if (P.Frames.empty()) {
      if (logging()) {
        uint64_t Seq;
        emitSync(P, SyncKind::ProcEnd, 0, Stmt, Seq);
      }
      P.Status = ProcStatus::Done;
      return false;
    }
    Push(Result);
    P.Pc = Top.ReturnPc;
    return true;
  }
  case Op::CallBuiltin: {
    switch (Builtin(I.A)) {
    case Builtin::Sqrt: {
      int64_t X = Pop();
      if (X < 0) {
        fail(P, RuntimeErrorKind::NegativeSqrt, Stmt);
        return false;
      }
      Push(isqrt(X));
      return true;
    }
    case Builtin::Abs: {
      int64_t X = Pop();
      Push(X < 0 ? -X : X);
      return true;
    }
    case Builtin::Min: {
      int64_t B = Pop(), A = Pop();
      Push(std::min(A, B));
      return true;
    }
    case Builtin::Max: {
      int64_t B = Pop(), A = Pop();
      Push(std::max(A, B));
      return true;
    }
    case Builtin::None:
      break;
    }
    assert(false && "unknown builtin");
    return true;
  }

  case Op::SemP: {
    Semaphore &S = Sems[I.A];
    if (S.Count > 0) {
      uint64_t Partner = NoPartner;
      if (S.PendingVEdge && S.PendingVPid != P.Pid)
        Partner = S.PendingVSeq;
      S.PendingVEdge = false;
      --S.Count;
      uint64_t Seq;
      emitSync(P, SyncKind::SemAcquire, uint32_t(I.A), Stmt, Seq, Partner);
      return true;
    }
    S.PendingVEdge = false;
    S.Waiters.push_back(P.Pid);
    P.Status = ProcStatus::BlockedSem;
    P.WaitObject = uint32_t(I.A);
    return false;
  }
  case Op::SemV: {
    Semaphore &S = Sems[I.A];
    uint64_t VSeq;
    emitSync(P, SyncKind::SemSignal, uint32_t(I.A), Stmt, VSeq);
    if (!S.Waiters.empty()) {
      // Direct handoff: the V unblocks a blocked P (§6.2.1 rule 1).
      uint32_t WaiterPid = S.Waiters.front();
      S.Waiters.pop_front();
      Process &W = Procs[WaiterPid];
      uint64_t WSeq;
      // The waiter's P statement is the instruction before its (already
      // advanced) pc.
      StmtId WStmt = chunkOf(W).stmtAt(W.Pc - 1);
      emitSync(W, SyncKind::SemAcquire, uint32_t(I.A), WStmt, WSeq, VSeq);
      W.Status = ProcStatus::Runnable;
      W.WaitObject = InvalidId;
      S.PendingVEdge = false;
      return true;
    }
    bool WasZero = S.Count == 0;
    ++S.Count;
    S.PendingVEdge = WasZero;
    S.PendingVSeq = VSeq;
    S.PendingVPid = P.Pid;
    return true;
  }

  case Op::SendCh: {
    Channel &C = Chans[I.A];
    int64_t Value = Pop();
    uint64_t SendSeq;
    emitSync(P, SyncKind::ChanSend, uint32_t(I.A), Stmt, SendSeq);
    if (!C.BlockedReceivers.empty()) {
      // Hand the message straight to a waiting receiver.
      uint32_t ReceiverPid = C.BlockedReceivers.front();
      C.BlockedReceivers.pop_front();
      Process &R = Procs[ReceiverPid];
      uint64_t RecvSeq;
      StmtId RStmt = chunkOf(R).stmtAt(R.Pc - 1);
      emitSync(R, SyncKind::ChanRecv, uint32_t(I.A), RStmt, RecvSeq, SendSeq,
               Value);
      R.Stack.push_back(Value);
      R.Status = ProcStatus::Runnable;
      R.WaitObject = InvalidId;
      return true;
    }
    if (int64_t(C.Queue.size()) < C.Capacity) {
      C.Queue.push_back({Value, SendSeq});
      return true;
    }
    // Blocking send (Fig 6.1: node n3; the unblock event n5 follows the
    // matching receive).
    P.PendingSendValue = Value;
    P.PendingSendSeq = SendSeq;
    P.PendingSendStmt = Stmt;
    C.BlockedSenders.push_back(P.Pid);
    P.Status = ProcStatus::BlockedSend;
    P.WaitObject = uint32_t(I.A);
    return false;
  }
  case Op::RecvCh: {
    Channel &C = Chans[I.A];
    auto UnblockSender = [&](uint64_t RecvSeq, bool IntoQueue) {
      if (C.BlockedSenders.empty())
        return;
      uint32_t SenderPid = C.BlockedSenders.front();
      C.BlockedSenders.pop_front();
      Process &Sender = Procs[SenderPid];
      if (IntoQueue)
        C.Queue.push_back({Sender.PendingSendValue, Sender.PendingSendSeq});
      uint64_t USeq;
      emitSync(Sender, SyncKind::ChanSendUnblock, uint32_t(I.A),
               Sender.PendingSendStmt, USeq, RecvSeq);
      Sender.Status = ProcStatus::Runnable;
      Sender.WaitObject = InvalidId;
    };

    if (!C.Queue.empty()) {
      Message M = C.Queue.front();
      C.Queue.pop_front();
      uint64_t RecvSeq;
      emitSync(P, SyncKind::ChanRecv, uint32_t(I.A), Stmt, RecvSeq, M.SendSeq,
               M.Value);
      Push(M.Value);
      UnblockSender(RecvSeq, /*IntoQueue=*/true);
      return true;
    }
    if (!C.BlockedSenders.empty()) {
      // Capacity-0 rendezvous: take the pending message directly.
      uint32_t SenderPid = C.BlockedSenders.front();
      Process &Sender = Procs[SenderPid];
      uint64_t RecvSeq;
      emitSync(P, SyncKind::ChanRecv, uint32_t(I.A), Stmt, RecvSeq,
               Sender.PendingSendSeq, Sender.PendingSendValue);
      Push(Sender.PendingSendValue);
      UnblockSender(RecvSeq, /*IntoQueue=*/false);
      return true;
    }
    P.Status = ProcStatus::BlockedRecv;
    P.WaitObject = uint32_t(I.A);
    C.BlockedReceivers.push_back(P.Pid);
    return false;
  }

  case Op::SpawnProc: {
    std::vector<int64_t> Args = popArgs(P, uint32_t(I.B));
    uint32_t ChildPid = uint32_t(Procs.size());
    uint64_t Seq;
    emitSync(P, SyncKind::SpawnChild, uint32_t(I.A), Stmt, Seq, NoPartner,
             int64_t(ChildPid));
    spawnProcess(uint32_t(I.A), std::move(Args), Seq);
    return true;
  }

  case Op::PrintVal: {
    int64_t Value = Pop();
    Log.Output.push_back({P.Pid, Value, Stmt});
    return true;
  }
  case Op::InputVal: {
    if (P.Inputs.empty()) {
      fail(P, RuntimeErrorKind::InputExhausted, Stmt);
      return false;
    }
    int64_t Value = P.Inputs.front();
    P.Inputs.pop_front();
    if (logging()) {
      LogRecord &R = appendRecord(P, LogRecordKind::Input);
      R.Value = Value;
    }
    Push(Value);
    return true;
  }

  case Op::Prelog: {
    if (Options.Mode == RunMode::Logging) {
      LogRecord &R = appendRecord(P, LogRecordKind::Prelog);
      R.Id = uint32_t(I.A);
      captureVars(P, Prog.eblock(uint32_t(I.A)).Used, R);
    }
    return true;
  }
  case Op::Postlog: {
    if (Options.Mode == RunMode::Logging) {
      LogRecord &R = appendRecord(P, LogRecordKind::Postlog);
      R.Id = uint32_t(I.A);
      R.Flags = uint32_t(I.B);
      if (I.B & PostlogExitsFunction) {
        assert(!P.Stack.empty() && "return value expected on stack");
        R.Value = P.Stack.back();
      }
      captureVars(P, Prog.eblock(uint32_t(I.A)).Defined, R);
    }
    return true;
  }
  case Op::UnitLog: {
    if (Options.Mode == RunMode::Logging) {
      LogRecord &R = appendRecord(P, LogRecordKind::UnitLog);
      R.Id = uint32_t(I.A);
      captureVars(P, Prog.unit(uint32_t(I.A)).SharedReads, R);
    }
    return true;
  }

  case Op::TraceStmt: {
    if (tracing()) {
      TraceEvent E;
      E.Kind = TraceEventKind::Stmt;
      E.Pid = P.Pid;
      E.Stmt = StmtId(I.A);
      P.Frames.back().OpenEvent = Traces[P.Pid].append(std::move(E)).Index;
    }
    return true;
  }
  case Op::TraceCallBegin: {
    if (tracing()) {
      TraceEvent E;
      E.Kind = TraceEventKind::CallBegin;
      E.Pid = P.Pid;
      E.Stmt = StmtId(I.B);
      E.Callee = uint32_t(I.A);
      uint32_t Argc = Prog.func(uint32_t(I.A)).NumParams;
      assert(P.Stack.size() >= Argc && "call arguments missing");
      E.Args.assign(P.Stack.end() - Argc, P.Stack.end());
      Traces[P.Pid].append(std::move(E));
    }
    return true;
  }
  case Op::TraceCallEnd: {
    if (tracing()) {
      TraceEvent E;
      E.Kind = TraceEventKind::CallEnd;
      E.Pid = P.Pid;
      E.Callee = uint32_t(I.A);
      E.Value = P.Stack.back();
      Traces[P.Pid].append(std::move(E));
    }
    return true;
  }

  case Op::Halt:
    P.Status = ProcStatus::Done;
    return false;
  }
  assert(false && "unknown opcode");
  return false;
}

RunResult Machine::run() {
  RunResult Result;
  // Any non-completed outcome freezes the machine mid-flight; Stop markers
  // let replay halt each process exactly where it actually stopped instead
  // of running ahead deterministically.
  auto Freeze = [&](RunResult::Status Outcome) {
    Result.Outcome = Outcome;
    Result.Steps = Steps;
    if (logging())
      for (const Process &P : Procs) {
        // The failed process gets no marker: its log already ends at the
        // failure, which replay re-derives (the flowback root).
        if (P.Status == ProcStatus::Done || P.Status == ProcStatus::Failed)
          continue;
        LogRecord &R = Log.Procs[P.Pid].Records.emplace_back();
        R.Kind = LogRecordKind::Stop;
        // Which statement the process was in/about to enter: lets replay
        // stop at the right occurrence, not merely at the right record.
        R.Stmt = P.CurrentStmt;
      }
    return Result;
  };

  for (;;) {
    if (BreakHit) {
      Result.BreakPid = BreakPid;
      Result.BreakStmt = BreakStmt;
      return Freeze(RunResult::Status::Breakpoint);
    }
    // A failure freezes the machine: the program "halts due to an error"
    // and the debugging phase takes over (§3.2.2).
    for (const Process &P : Procs)
      if (P.Status == ProcStatus::Failed) {
        Result.Error = P.Error;
        return Freeze(RunResult::Status::Failed);
      }

    std::vector<uint32_t> Runnable;
    bool AnyBlocked = false;
    for (const Process &P : Procs) {
      if (P.Status == ProcStatus::Runnable)
        Runnable.push_back(P.Pid);
      else if (P.Status != ProcStatus::Done)
        AnyBlocked = true;
    }

    if (Runnable.empty()) {
      if (!AnyBlocked) {
        Result.Outcome = RunResult::Status::Completed;
        Result.Steps = Steps;
        return Result;
      }
      for (const Process &P : Procs)
        if (P.Status == ProcStatus::BlockedSem ||
            P.Status == ProcStatus::BlockedSend ||
            P.Status == ProcStatus::BlockedRecv)
          Result.Deadlock.Blocked.push_back(
              {P.Pid, P.Status, P.WaitObject});
      return Freeze(RunResult::Status::Deadlock);
    }

    uint32_t Pid = Runnable[SchedRng.nextBelow(Runnable.size())];
    for (uint32_t Slice = 0; Slice != Options.Quantum; ++Slice) {
      if (Steps >= Options.MaxSteps)
        return Freeze(RunResult::Status::StepLimit);
      ++Steps;
      if (!step(Procs[Pid]))
        break;
    }
  }
}
