//===- vm/Machine.h - Shared-memory multiprocessor simulator ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-phase substrate: a simulated shared-memory multiprocessor
/// (the paper's SMMP) running the compiled bytecode. Processes share the
/// `shared` global segment, synchronize through counting semaphores (P/V)
/// and FIFO message channels, and are created with `spawn`.
///
/// Scheduling is preemptive with an instruction-granular quantum and a
/// seeded PRNG: one seed is one "execution instance" in the paper's sense
/// (§6.4) — fully reproducible here, while different seeds exercise
/// different interleavings. PPD itself never relies on re-running a seed:
/// the debugging phase works exclusively from the log, which is the
/// paper's central claim.
///
/// Run modes:
///  * Plain      — instrumentation instructions are no-ops (baseline),
///  * Logging    — the execution phase proper: prelogs/postlogs/unit logs,
///                 input and sync-event records, per-edge shared
///                 READ/WRITE sets,
///  * FullTrace  — the Balzer-style strawman of experiment E2: run the
///                 emulation package for every process and record a
///                 TraceEvent per statement, alongside the normal log.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_VM_MACHINE_H
#define PPD_VM_MACHINE_H

#include "compiler/CompiledProgram.h"
#include "log/ExecutionLog.h"
#include "support/Rng.h"
#include "support/VarSet.h"
#include "trace/TraceEvent.h"

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace ppd {

enum class RunMode { Plain, Logging, FullTrace };

enum class ProcStatus : uint8_t {
  Runnable,
  BlockedSem,
  BlockedSend,
  BlockedRecv,
  Done,
  Failed,
};

enum class RuntimeErrorKind : uint8_t {
  None,
  DivideByZero,
  ModuloByZero,
  IndexOutOfBounds,
  NegativeSqrt,
  InputExhausted,
  StackOverflow,
};

const char *runtimeErrorName(RuntimeErrorKind Kind);

/// A process failure: the paper's externally visible *failure* that starts
/// a debugging session. Stmt is the statement whose execution failed — the
/// root of the flowback analysis.
struct RuntimeError {
  RuntimeErrorKind Kind = RuntimeErrorKind::None;
  uint32_t Pid = 0;
  StmtId Stmt = InvalidId;

  std::string str() const;
};

struct Frame {
  uint32_t Func = 0;
  uint32_t ReturnPc = 0;
  uint32_t StackBase = 0;
  /// The frame's local slots live in Process::SlotArena at
  /// [SlotBase, SlotBase + SlotCount) — call/return only moves the arena's
  /// end, so steady-state calls never allocate.
  uint32_t SlotBase = 0;
  uint32_t SlotCount = 0;
  /// Open trace event of this frame (FullTrace mode), or InvalidId.
  uint32_t OpenEvent = InvalidId;
};

struct Process {
  uint32_t Pid = 0;
  ProcStatus Status = ProcStatus::Runnable;
  uint32_t Pc = 0;
  std::vector<Frame> Frames;
  std::vector<int64_t> Stack;
  /// Backing store for every frame's local slots (grows at Call, shrinks
  /// at Ret; capacity is retained across both).
  std::vector<int64_t> SlotArena;
  std::vector<int64_t> PrivateGlobals;
  std::deque<int64_t> Inputs;

  /// Local slots of the innermost frame.
  int64_t *topSlots() { return SlotArena.data() + Frames.back().SlotBase; }
  const int64_t *topSlots() const {
    return SlotArena.data() + Frames.back().SlotBase;
  }

  // Shared accesses on the current internal edge (since the last sync
  // node), as SharedIndex bits.
  BitVarSet EdgeReads;
  BitVarSet EdgeWrites;

  // Blocking state.
  uint32_t WaitObject = InvalidId; ///< semaphore or channel id.
  int64_t PendingSendValue = 0;
  uint64_t PendingSendSeq = 0;
  StmtId PendingSendStmt = InvalidId;

  /// Statement whose instructions are currently executing (breakpoints
  /// fire on the transition into a new statement).
  StmtId CurrentStmt = InvalidId;

  RuntimeError Error;
};

struct MachineOptions {
  uint64_t Seed = 1;
  /// Instructions between involuntary preemptions.
  uint32_t Quantum = 8;
  RunMode Mode = RunMode::Logging;
  /// Global step budget; exceeding it stops the run with StepLimit.
  uint64_t MaxSteps = 100'000'000;
  /// Input stream per process, indexed by pid (spawn order; pid 0 = main).
  std::vector<std::vector<int64_t>> ProcessInputs;
  /// Statements that halt the whole machine when any process reaches them
  /// — the paper's "user intervention" entry into the debugging phase.
  std::vector<StmtId> Breakpoints;
  /// Run on the pre-decoded fast path (threaded dispatch over
  /// DecodedChunk). Off = the legacy one-instruction switch interpreter;
  /// both produce bit-identical logs, which tests/interp_test.cpp asserts.
  bool UseDecoded = true;
};

struct DeadlockInfo {
  struct WaitEdge {
    uint32_t Pid;
    ProcStatus Status;
    uint32_t Object; ///< semaphore/channel id.
  };
  std::vector<WaitEdge> Blocked;
};

struct RunResult {
  enum class Status { Completed, Deadlock, Failed, StepLimit, Breakpoint };
  Status Outcome = Status::Completed;
  RuntimeError Error;       ///< valid when Outcome == Failed.
  DeadlockInfo Deadlock;    ///< valid when Outcome == Deadlock.
  /// Breakpoint hit (Outcome == Breakpoint): which process, where.
  uint32_t BreakPid = InvalidId;
  StmtId BreakStmt = InvalidId;
  uint64_t Steps = 0;
};

class Machine {
public:
  Machine(const CompiledProgram &Prog, MachineOptions Options);

  /// Runs to completion, deadlock, failure, or the step budget.
  RunResult run();

  /// Installs a hook invoked once per scheduler round, before the next
  /// process is picked. The streaming tracer uses it to seal and ship
  /// completed log sections while the program is still running; the hook
  /// may block (credit backpressure) but must not mutate the machine
  /// beyond reading log().
  void onRound(std::function<void(Machine &)> Hook) {
    RoundHook = std::move(Hook);
  }

  const ExecutionLog &log() const { return Log; }
  ExecutionLog takeLog() { return std::move(Log); }
  const std::vector<OutputRecord> &output() const { return Log.Output; }
  const std::deque<Process> &processes() const { return Procs; }
  const std::vector<int64_t> &sharedMemory() const { return Shared; }
  /// FullTrace mode: per-process event streams.
  const std::vector<TraceBuffer> &traces() const { return Traces; }

private:
  struct Semaphore {
    int64_t Count = 0;
    std::deque<uint32_t> Waiters;
    /// Set when a V raised the count 0→1; cleared by the next operation on
    /// this semaphore (paper §6.2.1 rule 2: "the P operation is the next
    /// semaphore operation on the same semaphore variable").
    bool PendingVEdge = false;
    uint64_t PendingVSeq = 0;
    uint32_t PendingVPid = 0;
  };

  struct Message {
    int64_t Value;
    uint64_t SendSeq;
  };

  struct Channel {
    int64_t Capacity = 0;
    std::deque<Message> Queue;
    std::deque<uint32_t> BlockedSenders;
    std::deque<uint32_t> BlockedReceivers;
  };

  const Chunk &chunkOf(const Process &P) const;
  bool logging() const { return Options.Mode != RunMode::Plain; }
  bool tracing() const { return Options.Mode == RunMode::FullTrace; }

  uint32_t spawnProcess(uint32_t Func, std::vector<int64_t> Args,
                        uint64_t ParentSpawnSeq);
  /// Executes one instruction of process \p P (legacy engine). Returns
  /// false when the process can no longer run (blocked, done, failed).
  bool step(Process &P);
  /// Decoded fast path: runs up to \p Budget instructions of \p P with the
  /// mode-specialized threaded interpreter; returns the number of steps
  /// consumed (each counted exactly as the legacy engine counts them).
  template <RunMode Mode> uint32_t runSlice(Process &P, uint32_t Budget);
  void fail(Process &P, RuntimeErrorKind Kind, StmtId Stmt);

  // Cold operations shared verbatim by the legacy switch engine and the
  // decoded handlers, so the two paths cannot drift. The bool-returning
  // ones yield false when the process stops running here (blocked or
  // failed).
  bool doSemP(Process &P, uint32_t Sem, StmtId Stmt);
  void doSemV(Process &P, uint32_t Sem, StmtId Stmt);
  bool doSend(Process &P, uint32_t Chan, int64_t Value, StmtId Stmt);
  bool doRecv(Process &P, uint32_t Chan, StmtId Stmt);
  void doSpawn(Process &P, uint32_t Func, uint32_t Argc, StmtId Stmt);
  bool doInput(Process &P, StmtId Stmt);
  void doPrelog(Process &P, uint32_t EBlock);
  void doPostlog(Process &P, uint32_t EBlock, uint32_t Flags);
  void doUnitLog(Process &P, uint32_t Unit);

  void pushFrame(Process &P, uint32_t Func, std::vector<int64_t> Args,
                 uint32_t ReturnPc);
  std::vector<int64_t> popArgs(Process &P, uint32_t Argc);

  // Logging helpers.
  LogRecord &appendRecord(Process &P, LogRecordKind Kind);
  void captureVars(Process &P, const std::vector<VarId> &Vars,
                   LogRecord &Record);
  void emitSync(Process &P, SyncKind Kind, uint32_t Object, StmtId Stmt,
                uint64_t &SeqOut, uint64_t Partner = NoPartner,
                int64_t Value = 0);

  // Tracing helpers (FullTrace mode; the replay engine has its own copy of
  // this logic for single-process replay).
  TraceEvent *openEventOf(Process &P);
  void traceRead(Process &P, VarId Var, int64_t Value, int64_t Index);
  void traceWrite(Process &P, VarId Var, int64_t Value, int64_t Index);

  const CompiledProgram &Prog;
  MachineOptions Options;
  Rng SchedRng;
  /// True when every function carries usable decoded streams and the
  /// options ask for the fast path (hand-assembled CompiledPrograms may
  /// lack them; the machine then falls back to the legacy engine).
  bool DecodedOk = false;
  std::set<StmtId> BreakSet;
  bool BreakHit = false;
  uint32_t BreakPid = InvalidId;
  StmtId BreakStmt = InvalidId;

  std::vector<int64_t> Shared;
  std::vector<Semaphore> Sems;
  std::vector<Channel> Chans;
  /// deque: processes are spawned mid-step and references must stay valid.
  std::deque<Process> Procs;
  /// Scheduler scratch, reused across rounds to avoid per-round allocation.
  std::vector<uint32_t> Runnable;
  std::vector<TraceBuffer> Traces;
  ExecutionLog Log;
  uint64_t NextSyncSeq = 0;
  uint64_t Steps = 0;
  std::function<void(Machine &)> RoundHook;
};

} // namespace ppd

#endif // PPD_VM_MACHINE_H
