//===- pdg/StaticPdg.h - Static program dependence graph --------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static program dependence graph of one function (§4.1): the
/// *possible* data and control dependences between program components, as
/// opposed to the dynamic graph's *actual* run-time dependences. A
/// variation of the PDG of Kuck [13] / Ferrante et al. [17] / Horwitz et
/// al. [18], over the same node space as the Cfg (statements + ENTRY/EXIT).
///
/// The PPD controller consults this graph during the debugging phase to
/// decide which log interval can contain the producer of a value (§5.3),
/// and race detection uses its per-function summaries.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PDG_STATICPDG_H
#define PPD_PDG_STATICPDG_H

#include "cfg/Cfg.h"
#include "dataflow/ModRef.h"
#include "dataflow/ReachingDefs.h"
#include "pdg/ControlDependence.h"
#include "support/VarSet.h"

#include <string>
#include <vector>

namespace ppd {

/// A data-dependence edge: \p To reads \p Var which \p From may have
/// written (flow dependence).
struct DataDep {
  CfgNodeId From;
  CfgNodeId To;
  VarId Var;
};

class StaticPdg {
public:
  StaticPdg(const Program &P, const SymbolTable &Symbols, const Cfg &G,
            const ModRefResult<BitVarSet> &MR);

  const Cfg &cfg() const { return G; }

  /// Control-dependence parents of \p Node.
  const std::vector<ControlDep> &controlParents(CfgNodeId Node) const {
    return CD.parents(Node);
  }

  /// Data-dependence predecessors of \p Node (deduplicated).
  const std::vector<DataDep> &dataDepsOf(CfgNodeId Node) const {
    return DataIn[Node];
  }

  /// All data-dependence edges of the function.
  std::vector<DataDep> allDataDeps() const;

  /// Graphviz rendering with the paper's edge styles: solid arrows for
  /// data dependence, dashed for control dependence (cf. Fig 4.1 legend).
  std::string dot(const Program &P) const;

private:
  const Program &P;
  const SymbolTable &Symbols;
  const Cfg &G;
  DomTree PostDom;
  ControlDependence CD;
  std::vector<std::vector<DataDep>> DataIn; ///< by node id.
};

} // namespace ppd

#endif // PPD_PDG_STATICPDG_H
