//===- pdg/ControlDependence.h - Control-dependence edges -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependences per Ferrante–Ottenstein–Warren [17], computed from
/// the Cfg and its postdominator tree: node N is control dependent on
/// branch B (with edge label L) iff B's L-successor path always reaches N
/// but B does not, i.e. N postdominates a successor of B without
/// postdominating B. These are the control-dependence edges of the static
/// program dependence graph (§4.1) and, instantiated per execution, of the
/// dynamic graph (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PDG_CONTROLDEPENDENCE_H
#define PPD_PDG_CONTROLDEPENDENCE_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <vector>

namespace ppd {

/// One control-dependence parent: the branch node and the branch label
/// (1 = true arm, 0 = false arm, -1 = unconditional, only for ENTRY).
struct ControlDep {
  CfgNodeId Branch;
  int Label;
};

class ControlDependence {
public:
  /// \p PostDom must be the postdominator tree of \p G.
  ControlDependence(const Cfg &G, const DomTree &PostDom);

  /// The control-dependence parents of \p Node (usually one; loop
  /// predicates may depend on themselves). Nodes with no governing branch
  /// depend on ENTRY.
  const std::vector<ControlDep> &parents(CfgNodeId Node) const {
    return Parents[Node];
  }

private:
  std::vector<std::vector<ControlDep>> Parents;
};

} // namespace ppd

#endif // PPD_PDG_CONTROLDEPENDENCE_H
