//===- pdg/StaticPdg.cpp --------------------------------------------------===//
//
// Part of PPD. See StaticPdg.h.
//
//===----------------------------------------------------------------------===//

#include "pdg/StaticPdg.h"

#include "lang/AstPrinter.h"
#include "sema/Accesses.h"
#include "support/DotWriter.h"

#include <set>

using namespace ppd;

StaticPdg::StaticPdg(const Program &P, const SymbolTable &Symbols,
                     const Cfg &G, const ModRefResult<BitVarSet> &MR)
    : P(P), Symbols(Symbols), G(G), PostDom(G, /*Post=*/true),
      CD(G, PostDom) {
  ReachingDefs<BitVarSet> RD(P, Symbols, G, MR);

  DataIn.resize(G.size());
  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    const CfgNode &N = G.node(Node);
    if (N.Kind != CfgNodeKind::Stmt)
      continue;
    StmtAccesses Acc = collectStmtAccesses(*P.stmt(N.Stmt));

    // Reads: the statement's own, plus REF of called functions (the callee
    // may read the global, so its value flows into the call).
    BitVarSet ReadVars;
    for (VarId V : Acc.Reads)
      ReadVars.insert(V);
    for (const FuncDecl *Callee : Acc.Callees)
      ReadVars.unionWith(MR.Ref[Callee->Index]);

    std::set<std::pair<CfgNodeId, VarId>> Seen;
    for (unsigned V : ReadVars.toVector()) {
      for (unsigned DefId : RD.reachingDefsOf(Node, VarId(V))) {
        const Definition &D = RD.definitions()[DefId];
        if (Seen.insert({D.Node, VarId(V)}).second)
          DataIn[Node].push_back({D.Node, Node, VarId(V)});
      }
    }
  }
}

std::vector<DataDep> StaticPdg::allDataDeps() const {
  std::vector<DataDep> Out;
  for (const std::vector<DataDep> &Deps : DataIn)
    Out.insert(Out.end(), Deps.begin(), Deps.end());
  return Out;
}

std::string StaticPdg::dot(const Program &P) const {
  DotWriter W("static_pdg_" + G.func().Name);
  auto NodeId = [](CfgNodeId Node) { return "n" + std::to_string(Node); };

  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    const CfgNode &N = G.node(Node);
    switch (N.Kind) {
    case CfgNodeKind::Entry:
      W.node(NodeId(Node), "ENTRY " + G.func().Name, {"shape=box"});
      break;
    case CfgNodeKind::Exit:
      W.node(NodeId(Node), "EXIT", {"shape=box"});
      break;
    case CfgNodeKind::Stmt:
      W.node(NodeId(Node), AstPrinter::summarize(*P.stmt(N.Stmt)) + "  s" +
                               std::to_string(N.Stmt),
             {"shape=ellipse"});
      break;
    }
  }

  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    for (const ControlDep &Dep : CD.parents(Node)) {
      std::vector<std::string> Attrs = {"style=dashed"};
      if (Dep.Label == 1)
        Attrs.push_back("label=\"T\"");
      else if (Dep.Label == 0)
        Attrs.push_back("label=\"F\"");
      W.edge(NodeId(Dep.Branch), NodeId(Node), Attrs);
    }
    for (const DataDep &Dep : DataIn[Node])
      W.edge(NodeId(Dep.From), NodeId(Dep.To),
             {"label=\"" + DotWriter::escape(Symbols.var(Dep.Var).Name) +
              "\""});
  }
  return W.str();
}
