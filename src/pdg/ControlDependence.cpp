//===- pdg/ControlDependence.cpp ------------------------------------------===//
//
// Part of PPD. See ControlDependence.h.
//
//===----------------------------------------------------------------------===//

#include "pdg/ControlDependence.h"

using namespace ppd;

ControlDependence::ControlDependence(const Cfg &G, const DomTree &PostDom) {
  Parents.resize(G.size());

  for (CfgNodeId A = 0; A != G.size(); ++A) {
    for (const CfgSucc &Succ : G.node(A).Succs) {
      CfgNodeId B = Succ.Node;
      // Walk the postdominator tree from B up to (not including)
      // ipostdom(A); every node on the way is control dependent on A.
      CfgNodeId Stop = PostDom.idom(A);
      CfgNodeId Runner = B;
      while (Runner != Stop && Runner != InvalidId) {
        Parents[Runner].push_back({A, Succ.Label});
        if (Runner == PostDom.root())
          break;
        Runner = PostDom.idom(Runner);
      }
    }
  }

  // Nodes with no governing branch are control dependent on ENTRY; this
  // gives the dynamic graph its ENTRY→top-level-statement edges.
  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    if (Node == Cfg::EntryId)
      continue;
    if (Parents[Node].empty())
      Parents[Node].push_back({Cfg::EntryId, -1});
  }
}
