//===- pdg/SimplifiedStaticGraph.h - §5.5 simplified graph ------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's *simplified static program dependence graph* (§5.5, Fig
/// 5.3): the subset of the static graph with only flow edges and only the
/// nodes relevant to parallel behaviour —
///
///   non-branching nodes: ENTRY, EXIT, synchronization operations (P, V,
///   send, recv, spawn) and calls to logged subroutines;
///   branching nodes: if/while/for predicates.
///
/// From it we derive the *synchronization units* (Def 5.1): all edges
/// reachable from a given non-branching node without passing through
/// another non-branching node. A unit's shared-read set tells the object
/// code which shared variables to capture in the unit's additional prelog
/// (the §5.5 mechanism that makes per-process replay deterministic on
/// race-free executions); units therefore carry the shared variables that
/// may be read within them, including REF of *unlogged* callees, whose
/// execution is inlined into the caller's replay.
///
/// Units may overlap (the paper's Fig 5.3 units share e8 and e9); we store
/// memberships per unit, not a partition.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PDG_SIMPLIFIEDSTATICGRAPH_H
#define PPD_PDG_SIMPLIFIEDSTATICGRAPH_H

#include "cfg/Cfg.h"
#include "dataflow/ModRef.h"
#include "sema/Symbols.h"
#include "support/VarSet.h"

#include <functional>
#include <string>
#include <vector>

namespace ppd {

/// One synchronization unit of a function.
struct SyncUnit {
  /// Function-local unit id (the compiler assigns program-wide ids).
  uint32_t Id = 0;
  /// The non-branching node the unit starts at.
  CfgNodeId Start = InvalidId;
  /// Statements reachable without crossing another non-branching node
  /// (terminating boundary nodes included, conservatively).
  std::vector<CfgNodeId> Members;
  /// Shared variables that may be read inside the unit — the contents of
  /// the unit's additional prelog.
  std::vector<VarId> SharedReads;
};

class SimplifiedStaticGraph {
public:
  /// \p IsLogged tells whether a called function is its own e-block (its
  /// calls become unit boundaries) or is inlined into the caller's logs.
  SimplifiedStaticGraph(const Program &P, const SymbolTable &Symbols,
                        const Cfg &G, const ModRefResult<BitVarSet> &MR,
                        const std::function<bool(const FuncDecl &)> &IsLogged);

  /// True if \p Node is a non-branching node of the simplified graph
  /// (a synchronization-unit boundary).
  bool isBoundary(CfgNodeId Node) const { return Boundary[Node]; }

  const std::vector<SyncUnit> &units() const { return Units; }

  /// The unit starting at boundary node \p Node, or null.
  const SyncUnit *unitStartingAt(CfgNodeId Node) const;

  /// Graphviz rendering in the style of Fig 5.3: filled squares for
  /// non-branching nodes, circles for branching nodes.
  std::string dot(const Program &P) const;

private:
  void computeBoundaries(const Program &P,
                         const std::function<bool(const FuncDecl &)> &IsLogged);
  void buildUnits(const Program &P, const SymbolTable &Symbols,
                  const ModRefResult<BitVarSet> &MR,
                  const std::function<bool(const FuncDecl &)> &IsLogged);

  const Cfg &G;
  std::vector<bool> Boundary;  ///< by node id.
  std::vector<bool> Branching; ///< by node id.
  std::vector<SyncUnit> Units;
};

/// True if evaluating \p E performs a receive (recv is a synchronization
/// point wherever it appears).
bool exprContainsRecv(const Expr &E);

} // namespace ppd

#endif // PPD_PDG_SIMPLIFIEDSTATICGRAPH_H
