//===- pdg/SimplifiedStaticGraph.cpp --------------------------------------===//
//
// Part of PPD. See SimplifiedStaticGraph.h.
//
//===----------------------------------------------------------------------===//

#include "pdg/SimplifiedStaticGraph.h"

#include "lang/AstPrinter.h"
#include "sema/Accesses.h"
#include "support/DotWriter.h"

#include <algorithm>
#include <deque>

using namespace ppd;

bool ppd::exprContainsRecv(const Expr &E) {
  switch (E.getKind()) {
  case ExprKind::Recv:
    return true;
  case ExprKind::IntLit:
  case ExprKind::VarRef:
  case ExprKind::Input:
    return false;
  case ExprKind::ArrayIndex:
    return exprContainsRecv(*cast<ArrayIndexExpr>(&E)->Index);
  case ExprKind::Unary:
    return exprContainsRecv(*cast<UnaryExpr>(&E)->Operand);
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    return exprContainsRecv(*B->Lhs) || exprContainsRecv(*B->Rhs);
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    for (const ExprPtr &Arg : C->Args)
      if (exprContainsRecv(*Arg))
        return true;
    return false;
  }
  }
  return false;
}

/// True if the statement's own expressions perform a receive.
static bool stmtContainsRecv(const Stmt &S) {
  switch (S.getKind()) {
  case StmtKind::VarDecl: {
    const auto *D = cast<VarDeclStmt>(&S);
    return D->Init && exprContainsRecv(*D->Init);
  }
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    return exprContainsRecv(*A->Value) ||
           (A->Index && exprContainsRecv(*A->Index));
  }
  case StmtKind::If:
    return exprContainsRecv(*cast<IfStmt>(&S)->Cond);
  case StmtKind::While:
    return exprContainsRecv(*cast<WhileStmt>(&S)->Cond);
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    return F->Cond && exprContainsRecv(*F->Cond);
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    return R->Value && exprContainsRecv(*R->Value);
  }
  case StmtKind::Expr:
    return exprContainsRecv(*cast<ExprStmt>(&S)->Call);
  case StmtKind::Print:
    return exprContainsRecv(*cast<PrintStmt>(&S)->Value);
  case StmtKind::Send:
    return exprContainsRecv(*cast<SendStmt>(&S)->Value);
  default:
    return false;
  }
}

SimplifiedStaticGraph::SimplifiedStaticGraph(
    const Program &P, const SymbolTable &Symbols, const Cfg &G,
    const ModRefResult<BitVarSet> &MR,
    const std::function<bool(const FuncDecl &)> &IsLogged)
    : G(G) {
  computeBoundaries(P, IsLogged);
  buildUnits(P, Symbols, MR, IsLogged);
}

void SimplifiedStaticGraph::computeBoundaries(
    const Program &P, const std::function<bool(const FuncDecl &)> &IsLogged) {
  Boundary.assign(G.size(), false);
  Branching.assign(G.size(), false);
  Boundary[Cfg::EntryId] = true;
  Boundary[Cfg::ExitId] = true;

  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    const CfgNode &N = G.node(Node);
    if (N.Kind != CfgNodeKind::Stmt)
      continue;
    const Stmt *S = P.stmt(N.Stmt);

    switch (S->getKind()) {
    case StmtKind::P:
    case StmtKind::V:
    case StmtKind::Send:
    case StmtKind::Spawn:
      Boundary[Node] = true;
      continue;
    case StmtKind::If:
    case StmtKind::While:
    case StmtKind::For:
      Branching[Node] = true;
      break;
    default:
      break;
    }

    if (stmtContainsRecv(*S)) {
      Boundary[Node] = true;
      continue;
    }
    // Calls to logged subroutines are unit boundaries: the callee replays
    // from its own logs, so shared state may be arbitrarily stale on
    // return.
    StmtAccesses Acc = collectStmtAccesses(*S);
    for (const FuncDecl *Callee : Acc.Callees)
      if (IsLogged(*Callee))
        Boundary[Node] = true;
  }
}

void SimplifiedStaticGraph::buildUnits(
    const Program &P, const SymbolTable &Symbols,
    const ModRefResult<BitVarSet> &MR,
    const std::function<bool(const FuncDecl &)> &IsLogged) {
  for (CfgNodeId Start = 0; Start != G.size(); ++Start) {
    if (!Boundary[Start] || Start == Cfg::ExitId)
      continue;

    SyncUnit Unit;
    Unit.Id = uint32_t(Units.size());
    Unit.Start = Start;

    // BFS: include the start node and everything reachable without
    // crossing another boundary; a terminating boundary node is included
    // (its operand reads execute before its synchronization point) but not
    // expanded.
    std::vector<bool> Visited(G.size(), false);
    std::deque<CfgNodeId> Work;
    Work.push_back(Start);
    Visited[Start] = true;
    while (!Work.empty()) {
      CfgNodeId Node = Work.front();
      Work.pop_front();
      Unit.Members.push_back(Node);
      if (Boundary[Node] && Node != Start)
        continue;
      for (const CfgSucc &Succ : G.node(Node).Succs)
        if (!Visited[Succ.Node]) {
          Visited[Succ.Node] = true;
          Work.push_back(Succ.Node);
        }
    }
    std::sort(Unit.Members.begin(), Unit.Members.end());

    // Shared variables possibly read inside the unit. Pre-sized to the
    // variable universe so the insert loops never reallocate.
    BitVarSet Shared(Symbols.numVars());
    for (CfgNodeId Member : Unit.Members) {
      const CfgNode &N = G.node(Member);
      if (N.Kind != CfgNodeKind::Stmt)
        continue;
      StmtAccesses Acc = collectStmtAccesses(*P.stmt(N.Stmt));
      for (VarId V : Acc.Reads)
        if (Symbols.var(V).isShared())
          Shared.insert(V);
      for (const FuncDecl *Callee : Acc.Callees) {
        if (IsLogged(*Callee))
          continue; // the callee's own units cover its shared reads
        for (unsigned V : MR.Ref[Callee->Index].toVector())
          if (Symbols.var(VarId(V)).isShared())
            Shared.insert(V);
      }
    }
    for (unsigned V : Shared.toVector())
      Unit.SharedReads.push_back(VarId(V));

    Units.push_back(std::move(Unit));
  }
}

const SyncUnit *SimplifiedStaticGraph::unitStartingAt(CfgNodeId Node) const {
  for (const SyncUnit &U : Units)
    if (U.Start == Node)
      return &U;
  return nullptr;
}

std::string SimplifiedStaticGraph::dot(const Program &P) const {
  DotWriter W("simplified_static_" + G.func().Name);
  auto NodeId = [](CfgNodeId Node) { return "n" + std::to_string(Node); };

  // Nodes of the simplified graph: boundaries and branch predicates.
  std::vector<bool> Keep(G.size(), false);
  for (CfgNodeId Node = 0; Node != G.size(); ++Node)
    Keep[Node] = Boundary[Node] || Branching[Node];

  for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
    if (!Keep[Node])
      continue;
    const CfgNode &N = G.node(Node);
    std::string Label;
    if (N.Kind == CfgNodeKind::Entry)
      Label = "ENTRY";
    else if (N.Kind == CfgNodeKind::Exit)
      Label = "EXIT";
    else
      Label = AstPrinter::summarize(*P.stmt(N.Stmt));
    // Fig 5.3 legend: squares for non-branching, circles for branching.
    W.node(NodeId(Node), Label,
           {Branching[Node] ? std::string("shape=circle")
                            : std::string("shape=box, style=filled, "
                                          "fillcolor=lightgray")});
  }

  // Flow edges: compress CFG paths between kept nodes.
  for (CfgNodeId From = 0; From != G.size(); ++From) {
    if (!Keep[From])
      continue;
    // BFS over skipped nodes to the next kept nodes.
    for (const CfgSucc &First : G.node(From).Succs) {
      std::vector<bool> Visited(G.size(), false);
      std::deque<CfgNodeId> Work;
      std::vector<std::string> Attrs;
      if (First.Label == 1)
        Attrs.push_back("label=\"T\"");
      else if (First.Label == 0)
        Attrs.push_back("label=\"F\"");
      if (Keep[First.Node]) {
        W.edge(NodeId(From), NodeId(First.Node), Attrs);
        continue;
      }
      Work.push_back(First.Node);
      Visited[First.Node] = true;
      while (!Work.empty()) {
        CfgNodeId Node = Work.front();
        Work.pop_front();
        for (const CfgSucc &Succ : G.node(Node).Succs) {
          if (Keep[Succ.Node]) {
            W.edge(NodeId(From), NodeId(Succ.Node), Attrs);
            continue;
          }
          if (!Visited[Succ.Node]) {
            Visited[Succ.Node] = true;
            Work.push_back(Succ.Node);
          }
        }
      }
    }
  }
  return W.str();
}
