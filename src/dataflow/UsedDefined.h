//===- dataflow/UsedDefined.h - E-block USED/DEFINED sets -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the paper's USED(i)/DEFINED(i) sets (§5.1) for an e-block,
/// viewed as a single-entry region of a function's Cfg:
///
///   USED(i)    = variables that may be read by E_i before being written —
///                the prelog contents. Computed as upward-exposed reads by
///                a backward fixpoint restricted to the region.
///   DEFINED(i) = variables that may be written by E_i — the postlog
///                contents. A simple union over the region.
///
/// Interprocedural refinement (this is where incremental tracing gets its
/// savings, §5.4):
///   * calls to functions that are themselves e-blocks ("logged") add
///     nothing to USED — replay applies the callee's postlog instead of
///     re-executing it (Fig 5.2) — but their MOD is still in DEFINED so
///     the outer postlog captures the final state;
///   * calls to unlogged (inherited leaf) functions add REF to reads and
///     MOD to writes: the caller logs on the leaf's behalf.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_DATAFLOW_USEDDEFINED_H
#define PPD_DATAFLOW_USEDDEFINED_H

#include "cfg/Cfg.h"
#include "dataflow/ModRef.h"
#include "sema/Accesses.h"
#include "sema/Symbols.h"
#include "support/VarSet.h"

#include <functional>
#include <vector>

namespace ppd {

template <VariableSet Set> struct RegionSummary {
  Set Used;
  Set Defined;
};

/// Computes USED/DEFINED for the region consisting of \p RegionNodes
/// (which must include \p EntryNode and be closed under the paths replay
/// can take, i.e. single-entry). \p IsLogged says whether a callee is
/// itself an e-block.
template <VariableSet Set>
RegionSummary<Set>
computeUsedDefined(const Program &P, const SymbolTable &Symbols, const Cfg &G,
                   const std::vector<CfgNodeId> &RegionNodes,
                   CfgNodeId EntryNode, const ModRefResult<Set> &MR,
                   const std::function<bool(const FuncDecl &)> &IsLogged) {
  std::vector<bool> InRegion(G.size(), false);
  for (CfgNodeId Node : RegionNodes)
    InRegion[Node] = true;
  assert(InRegion[EntryNode] && "region must contain its entry");

  // Per-node contributions.
  std::vector<Set> Reads(G.size());
  std::vector<Set> StrongKills(G.size());
  RegionSummary<Set> Result;

  for (CfgNodeId Node : RegionNodes) {
    const CfgNode &N = G.node(Node);
    if (N.Kind != CfgNodeKind::Stmt)
      continue;
    const Stmt *S = P.stmt(N.Stmt);
    StmtAccesses Acc = collectStmtAccesses(*S);
    for (VarId V : Acc.Reads)
      Reads[Node].insert(V);
    for (VarId V : Acc.Writes) {
      Result.Defined.insert(V);
      const VarInfo &Info = Symbols.var(V);
      if (!Info.isArray() || isa<VarDeclStmt>(S))
        StrongKills[Node].insert(V);
    }
    for (const FuncDecl *Callee : Acc.Callees) {
      if (!IsLogged(*Callee))
        Reads[Node].unionWith(MR.Ref[Callee->Index]);
      Result.Defined.unionWith(MR.Mod[Callee->Index]);
    }
  }

  // Backward fixpoint for upward-exposed reads:
  //   Exposed(n) = Reads(n) ∪ (∪_{s∈succ(n)∩region} Exposed(s)) −
  //                StrongKills(n)
  // Note reads of n happen before n's own writes, so Reads(n) is added
  // after subtracting kills.
  std::vector<Set> Exposed(G.size());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Reverse RPO approximates a backward-friendly order.
    const std::vector<CfgNodeId> &Rpo = G.reversePostOrder();
    for (auto It = Rpo.rbegin(), E = Rpo.rend(); It != E; ++It) {
      CfgNodeId Node = *It;
      if (!InRegion[Node])
        continue;
      Set NewExposed;
      for (const CfgSucc &Succ : G.node(Node).Succs)
        if (InRegion[Succ.Node])
          NewExposed.unionWith(Exposed[Succ.Node]);
      NewExposed.subtract(StrongKills[Node]);
      NewExposed.unionWith(Reads[Node]);
      if (!(NewExposed == Exposed[Node])) {
        Exposed[Node] = std::move(NewExposed);
        Changed = true;
      }
    }
  }

  Result.Used = Exposed[EntryNode];
  return Result;
}

} // namespace ppd

#endif // PPD_DATAFLOW_USEDDEFINED_H
