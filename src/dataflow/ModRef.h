//===- dataflow/ModRef.h - Interprocedural MOD/REF --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural side-effect analysis in the style the paper cites
/// (Cooper–Kennedy [2], Banning [22]): for every function F, MOD(F) is the
/// set of *global* variables that executing F may write and REF(F) the set
/// it may read, including effects of transitively called functions.
/// Parameters are by-value and locals are invisible to callers, so only
/// globals appear in the summaries.
///
/// The computation is a fixpoint over the call graph's bottom-up order —
/// a single pass suffices for acyclic call graphs; recursion iterates to
/// convergence.
///
/// The analysis is templated over the set representation (BitVarSet or
/// ListVarSet) to support experiment E6, the paper's §7 remark that
/// bit-masks "can have a large payoff" over list structures.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_DATAFLOW_MODREF_H
#define PPD_DATAFLOW_MODREF_H

#include "lang/Ast.h"
#include "sema/Accesses.h"
#include "sema/CallGraph.h"
#include "sema/Symbols.h"
#include "support/VarSet.h"

#include <vector>

namespace ppd {

template <VariableSet Set> struct ModRefResult {
  /// Indexed by FuncDecl::Index; elements are VarIds of globals.
  std::vector<Set> Mod;
  std::vector<Set> Ref;
};

/// Computes MOD/REF summaries for every function of \p P.
template <VariableSet Set>
ModRefResult<Set> computeModRef(const Program &P, const SymbolTable &Symbols,
                                const CallGraph &CG) {
  unsigned N = unsigned(P.Funcs.size());
  ModRefResult<Set> Result;
  Result.Mod.resize(N);
  Result.Ref.resize(N);

  // Local (direct) contributions: global accesses of each function's own
  // statements.
  for (const auto &F : P.Funcs) {
    Set &Mod = Result.Mod[F->Index];
    Set &Ref = Result.Ref[F->Index];
    forEachStmt(*F->Body, [&](const Stmt &S) {
      StmtAccesses Acc = collectStmtAccesses(S);
      for (VarId V : Acc.Reads)
        if (Symbols.var(V).isGlobal())
          Ref.insert(V);
      for (VarId V : Acc.Writes)
        if (Symbols.var(V).isGlobal())
          Mod.insert(V);
    });
  }

  // Propagate callee summaries bottom-up; iterate for recursive SCCs.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const FuncDecl *F : CG.bottomUpOrder()) {
      for (const FuncDecl *Callee : CG.callees(*F)) {
        Changed |= Result.Mod[F->Index].unionWith(Result.Mod[Callee->Index]);
        Changed |= Result.Ref[F->Index].unionWith(Result.Ref[Callee->Index]);
      }
    }
  }
  return Result;
}

} // namespace ppd

#endif // PPD_DATAFLOW_MODREF_H
